package repro_test

import (
	"os/exec"
	"strings"
	"testing"
)

// Smoke test: every example main must build, run, and print its headline
// result. Skipped in -short mode (each run compiles a binary).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke tests skipped in -short mode")
	}
	cases := map[string][]string{
		"./examples/quickstart":  {"minimal CWA-solution", "T2 is a CWA-solution: true", "T1 is a CWA-solution: false"},
		"./examples/anomaly":     {"18 answers", "9 answers", "true"},
		"./examples/exponential": {"paper: ≥ 2^1 = 2", "paper: ≥ 2^2 = 4", "is a CWA-solution: true"},
		"./examples/turing":      {"interpreter-match ✓", "CWA-solution exists: true", "chase still running"},
		"./examples/semigroup":   {"is a solution: true", "still growing", "budget exceeded"},
		"./examples/hr":          {"certainly in ada's department", "CWA-solution exists: false"},
	}
	for pkg, wants := range cases {
		pkg, wants := pkg, wants
		t.Run(strings.TrimPrefix(pkg, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", pkg).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", pkg, err, out)
			}
			for _, want := range wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q\n%s", pkg, want, out)
				}
			}
		})
	}
}
