// Package repro is a Go implementation of closed-world-assumption data
// exchange following Hernich & Schweikardt, "CWA-Solutions for Data
// Exchange Settings with Target Dependencies" (PODS 2007).
//
// It provides relational instances with labeled nulls, data exchange
// settings with source-to-target tgds, target tgds and egds, the standard
// chase and the paper's justification-controlled α-chase, universal
// solutions and cores, CWA-presolutions and CWA-solutions, and the four
// certain/maybe query-answering semantics of Section 7.
//
// Quick start:
//
//	s, _ := repro.ParseSetting(`
//	source M/2, N/2.
//	target E/2, F/2, G/2.
//	st:
//	  d1: M(x1,x2) -> E(x1,x2).
//	  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
//	target-deps:
//	  d3: F(y,x) -> exists z : G(x,z).
//	  d4: F(x,y) & F(x,z) -> y = z.
//	`)
//	src, _ := repro.ParseInstance(`M(a,b). N(a,b). N(a,c).`)
//	sol, _ := repro.CWASolution(s, src, repro.ChaseOptions{})
//	q, _ := repro.ParseUCQ(`q(x,y) :- E(x,y).`)
//	ans, _ := repro.CertainAnswersUCQ(s, q, src, repro.ChaseOptions{})
package repro

import (
	"repro/internal/certain"
	"repro/internal/chase"
	"repro/internal/cwa"
	"repro/internal/dependency"
	"repro/internal/hom"
	"repro/internal/instance"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/score"
)

// Core data model types.
type (
	// Value is a constant or labeled null.
	Value = instance.Value
	// Atom is a fact R(u1,…,ur).
	Atom = instance.Atom
	// Instance is a finite set of atoms over constants and nulls.
	Instance = instance.Instance
	// Schema maps relation names to arities.
	Schema = instance.Schema
	// Setting is a data exchange setting (σ, τ, Σst, Σt).
	Setting = dependency.Setting
	// TGD is a tuple-generating dependency.
	TGD = dependency.TGD
	// EGD is an equality-generating dependency.
	EGD = dependency.EGD
	// ChaseOptions bounds chase runs.
	ChaseOptions = chase.Options
	// ChaseResult is the outcome of a terminating chase.
	ChaseResult = chase.Result
	// AlphaChaseResult is the outcome of an α-chase.
	AlphaChaseResult = chase.AlphaResult
	// Justification identifies a potential justification (d, ū, v̄, z).
	Justification = chase.Justification
	// Alpha maps justifications to values.
	Alpha = chase.Alpha
	// EnumOptions bounds CWA-solution enumeration.
	EnumOptions = cwa.EnumOptions
	// CertainOptions configures certain-answer computation.
	CertainOptions = certain.Options
	// Semantics selects certain⊓, certain⊔, maybe⊓ or maybe⊔.
	Semantics = certain.Semantics
	// CQ is a conjunctive query, optionally with inequalities.
	CQ = query.CQ
	// UCQ is a union of conjunctive queries.
	UCQ = query.UCQ
	// FOQuery is a first-order query.
	FOQuery = query.FOQuery
	// Query is the common interface of the query classes.
	Query = query.Evaluable
	// TupleSet is a set of answer tuples.
	TupleSet = query.TupleSet
	// Tuple is one answer tuple.
	Tuple = query.Tuple
	// Mapping is a homomorphism's value mapping.
	Mapping = hom.Mapping
)

// Sentinel errors for aborted evaluations. Both may accompany a partial
// result; errors.Is distinguishes a run that exhausted its step budget from
// one whose ChaseOptions.Ctx was canceled (deadline or explicit cancel).
var (
	// ErrBudgetExceeded reports that a chase exceeded its MaxSteps budget.
	ErrBudgetExceeded = chase.ErrBudgetExceeded
	// ErrCanceled reports that ChaseOptions.Ctx was done; it wraps the
	// context's error.
	ErrCanceled = chase.ErrCanceled
)

// The four query-answering semantics of Section 7.1.
const (
	CertainCap = certain.CertainCap // certain⊓
	CertainCup = certain.CertainCup // certain⊔
	MaybeCap   = certain.MaybeCap   // maybe⊓
	MaybeCup   = certain.MaybeCup   // maybe⊔
)

// Const interns a constant by name.
func Const(name string) Value { return instance.Const(name) }

// Null returns the labeled null with the given label.
func Null(label int64) Value { return instance.Null(label) }

// NewInstance builds an instance from atoms.
func NewInstance(atoms ...Atom) *Instance { return instance.FromAtoms(atoms...) }

// NewAtom builds an atom.
func NewAtom(rel string, args ...Value) Atom { return instance.NewAtom(rel, args...) }

// ParseSetting parses a data exchange setting (see package parser for the
// syntax) and validates it.
func ParseSetting(text string) (*Setting, error) { return parser.ParseSetting(text) }

// ParseInstance parses a list of ground atoms such as "M(a,b). N(a,_0)."
func ParseInstance(text string) (*Instance, error) { return parser.ParseInstance(text) }

// ParseCQ parses a conjunctive query "q(x) :- E(x,y), x != y."
func ParseCQ(text string) (CQ, error) { return parser.ParseCQ(text) }

// ParseUCQ parses one or more CQ rules forming a union.
func ParseUCQ(text string) (UCQ, error) { return parser.ParseUCQ(text) }

// ParseFOQuery parses "(x) . formula" or a Boolean formula.
func ParseFOQuery(text string) (FOQuery, error) { return parser.ParseFOQuery(text) }

// Chase runs the standard chase, whose target reduct is a universal
// solution when it terminates without egd failure.
func Chase(s *Setting, src *Instance, opt ChaseOptions) (*ChaseResult, error) {
	return chase.Standard(s, src, opt)
}

// AlphaChase runs the justification-controlled chase of Definition 4.1
// under a fixed α.
func AlphaChase(s *Setting, src *Instance, a Alpha, opt ChaseOptions) (*AlphaChaseResult, error) {
	return chase.AlphaChase(s, src, a, opt)
}

// UniversalSolution chases and returns the target reduct.
func UniversalSolution(s *Setting, src *Instance, opt ChaseOptions) (*Instance, error) {
	return chase.UniversalSolution(s, src, opt)
}

// IsSolution reports whether t is a solution for src under s.
func IsSolution(s *Setting, src, t *Instance) bool { return chase.IsSolution(s, src, t) }

// Core computes the core of an instance.
func Core(t *Instance) *Instance { return score.Core(t) }

// CWASolution computes the minimal CWA-solution Core_D(S) (Theorem 5.1,
// Proposition 6.6). It fails with an error when no solution exists or the
// chase exceeds its budget.
func CWASolution(s *Setting, src *Instance, opt ChaseOptions) (*Instance, error) {
	return cwa.Minimal(s, src, opt)
}

// CanSol computes the canonical solution (maximal CWA-solution for egd-only
// and full+egd settings, Proposition 5.4).
func CanSol(s *Setting, src *Instance, opt ChaseOptions) (*Instance, error) {
	return cwa.CanSol(s, src, opt)
}

// ExistsCWASolution decides Existence-of-CWA-Solutions (Corollary 5.2:
// equivalent to the existence of universal solutions).
func ExistsCWASolution(s *Setting, src *Instance, opt ChaseOptions) (bool, error) {
	return cwa.Exists(s, src, opt)
}

// IsCWASolution decides whether t is a CWA-solution via Theorem 4.8.
func IsCWASolution(s *Setting, src, t *Instance, opt ChaseOptions) (bool, error) {
	return cwa.IsCWASolution(s, src, t, opt)
}

// IsCWAPresolution decides whether S ∪ T arises from a successful α-chase.
func IsCWAPresolution(s *Setting, src, t *Instance) bool {
	return cwa.IsCWAPresolution(s, src, t)
}

// EnumerateCWASolutions lists all CWA-solutions up to isomorphism, within
// the given bounds.
func EnumerateCWASolutions(s *Setting, src *Instance, opt EnumOptions) ([]*Instance, error) {
	return cwa.Enumerate(s, src, opt)
}

// Answers computes the chosen semantics (certain⊓/certain⊔/maybe⊓/maybe⊔)
// using the Theorem 7.1 characterisations where available.
func Answers(s *Setting, q Query, src *Instance, sem Semantics, opt CertainOptions) (*TupleSet, error) {
	return certain.Answers(s, q, src, sem, opt)
}

// CertainAnswersUCQ computes certain⊓ = certain⊔ of a pure UCQ in
// polynomial time (Theorem 7.6 / Lemma 7.7).
func CertainAnswersUCQ(s *Setting, u UCQ, src *Instance, opt ChaseOptions) (*TupleSet, error) {
	return certain.CertainUCQ(s, u, src, certain.Options{Chase: opt})
}

// HomomorphismExists reports whether a homomorphism from → to exists.
func HomomorphismExists(from, to *Instance) bool { return hom.Exists(from, to) }

// Isomorphic reports equality up to renaming of nulls.
func Isomorphic(a, b *Instance) bool { return hom.Isomorphic(a, b) }

// WeaklyAcyclic reports weak acyclicity of the setting (Definition 6.5).
func WeaklyAcyclic(s *Setting) bool { return s.WeaklyAcyclic() }

// RichlyAcyclic reports rich acyclicity of the setting (Definition 7.3).
func RichlyAcyclic(s *Setting) bool { return s.RichlyAcyclic() }

// ObliviousChase runs the per-trigger (oblivious) chase variant, which
// terminates on all sources exactly for richly acyclic settings.
func ObliviousChase(s *Setting, src *Instance, opt ChaseOptions) (*ChaseResult, error) {
	return chase.Oblivious(s, src, opt)
}

// ChaseTerminationBound returns a safe step budget for the standard chase
// on a weakly acyclic setting (ok=false otherwise).
func ChaseTerminationBound(s *Setting, domSize int) (bound int, ok bool) {
	return chase.TerminationBound(s, domSize)
}

// FindPresolutionAlpha returns the justification witnesses behind a
// CWA-presolution: the fragment of the α whose successful chase produces t.
func FindPresolutionAlpha(s *Setting, src, t *Instance) (map[string]query.Binding, bool) {
	return cwa.FindPresolutionAlpha(s, src, t)
}

// CertainAnswersUCQIneq computes certain⊓ for a UCQ with at most one
// inequality per disjunct, using the polynomial algorithms for the Table 1
// classes where they apply.
func CertainAnswersUCQIneq(s *Setting, u UCQ, src *Instance, opt CertainOptions) (*TupleSet, error) {
	return certain.AnswersUCQIneq(s, u, src, opt)
}

// PossibleUCQ decides the Boolean maybe answer ◇Q(T) ≠ ∅ in polynomial
// time for settings without target dependencies.
func PossibleUCQ(s *Setting, u UCQ, t *Instance) (bool, error) {
	return certain.PossibleUCQ(s, u, t)
}

// CQContainedIn decides conjunctive-query containment (Chandra–Merlin).
func CQContainedIn(q1, q2 CQ) (bool, error) { return query.ContainedIn(q1, q2) }

// CQMinimize returns an equivalent minimal conjunctive query.
func CQMinimize(q CQ) (CQ, error) { return query.Minimize(q) }

// CanonicalFact builds the canonical fact ϕ_T of a target instance
// (Section 4): the Boolean sentence true in I iff a homomorphism T → I
// exists.
func CanonicalFact(t *Instance) FOQuery { return query.CanonicalFact(t) }
