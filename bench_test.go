// Benchmarks regenerating the paper's Table 1 and the experiment series
// E1–E13 of DESIGN.md. Every cell of the table and every worked example has
// a bench target; EXPERIMENTS.md records the paper-vs-measured comparison.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/certain"
	"repro/internal/chase"
	"repro/internal/circuit"
	"repro/internal/cwa"
	"repro/internal/genwl"
	"repro/internal/hom"
	"repro/internal/instance"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/sat"
	"repro/internal/score"
	"repro/internal/semigroup"
	"repro/internal/turing"
)

func mustUCQb(b *testing.B, text string) query.UCQ {
	b.Helper()
	u, err := parser.ParseUCQ(text)
	if err != nil {
		b.Fatal(err)
	}
	return u
}

// --- Table 1, column 1: union of CQ (PTIME for every row) — E1 ---

func BenchmarkTable1_UCQ_WeaklyAcyclic(b *testing.B) {
	s, err := parser.ParseSetting(`
source S/2.
target E/2.
st:
  s1: S(x,y) -> E(x,y).
target-deps:
  t1: E(x,y) -> exists z : E(x,z).
`)
	if err != nil {
		b.Fatal(err)
	}
	u := mustUCQb(b, "q(x,y) :- E(x,y).")
	for _, n := range []int{16, 64, 256} {
		src := genwl.RandomEdges("S", n, int64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := certain.CertainUCQ(s, u, src, certain.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable1_UCQ_RichlyAcyclic(b *testing.B) {
	s := genwl.WeaklyAcyclicChain(4)
	u := mustUCQb(b, "q(x,y) :- T1(x,y).\nq(x,y) :- T2(x,y).")
	for _, n := range []int{16, 64, 256} {
		src := genwl.RandomEdges("R0", n, int64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := certain.CertainUCQ(s, u, src, certain.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable1_UCQ_EgdOnly(b *testing.B) {
	s := genwl.EgdOnly()
	u := mustUCQb(b, "q(x,y) :- F(x,y).")
	for _, n := range []int{16, 64, 256} {
		src := genwl.EgdOnlySource(n, true, int64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := certain.CertainUCQ(s, u, src, certain.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable1_UCQ_FullTgds(b *testing.B) {
	s := genwl.FullTgds()
	u := mustUCQb(b, "q(x,y) :- T(x,y).")
	for _, n := range []int{16, 64, 128} {
		src := genwl.RandomEdges("R", n, int64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := certain.CertainUCQ(s, u, src, certain.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 1, column 2, rows 1–2: co-NP via the Theorem 7.5 reduction — E2 ---

func BenchmarkTable1_CQNeq_CoNP(b *testing.B) {
	for _, vars := range []int{3, 4, 5} {
		f := sat.Random3CNF(vars, vars+2, int64(vars))
		b.Run(fmt.Sprintf("vars=%d", vars), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sat.CertainUnsat(f, chase.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDPLL_Baseline(b *testing.B) {
	for _, vars := range []int{3, 4, 5} {
		f := sat.Random3CNF(vars, vars+2, int64(vars))
		b.Run(fmt.Sprintf("vars=%d", vars), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sat.Solve(f)
			}
		})
	}
}

// --- Table 1, column 2, rows 3–4: PTIME fixpoint — E3 ---

func BenchmarkTable1_CQNeq_PTIME(b *testing.B) {
	s := genwl.EgdOnly()
	u := mustUCQb(b, "q(x) :- F(x,y), y != x.")
	for _, n := range []int{16, 64, 256} {
		src := genwl.EgdOnlySource(n, true, int64(n))
		can, err := cwa.CanSol(s, src, chase.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := certain.BoxUCQIneqPTime(s, u, can); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 1, column 3: FO queries (co-NP upper bound) — E4 ---

func BenchmarkFO_Certain(b *testing.B) {
	s := genwl.EgdOnly()
	q, err := parser.ParseFOQuery(`(x) . exists y (F(x,y) & !(exists z (F(z,x))))`)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{2, 3, 4} {
		src := genwl.EgdOnlySource(n, true, 7)
		core, err := cwa.Minimal(s, src, chase.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d/nulls=%d", n, len(core.Nulls())), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := certain.Box(s, q, core, certain.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Example 5.3: exhaustive CWA-solution enumeration — E5 ---

func BenchmarkExample53_Enumeration(b *testing.B) {
	s := genwl.Example53()
	for _, n := range []int{1, 2} {
		src := genwl.Example53Source(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cwa.Enumerate(s, src, cwa.EnumOptions{MaxStates: 500000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Proposition 6.6: computing CWA-solutions + PTIME-hardness — E6 ---

func BenchmarkCWASolution_WeaklyAcyclic(b *testing.B) {
	s := genwl.WeaklyAcyclicChain(5)
	for _, n := range []int{16, 64, 256} {
		src := genwl.RandomEdges("R0", n, int64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cwa.Minimal(s, src, chase.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMCVP_Reduction(b *testing.B) {
	s := circuit.ExistenceSetting()
	for _, gates := range []int{8, 32, 128} {
		c := circuit.Random(4, gates, int64(gates))
		src, err := circuit.SourceInstance(c, true)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("gates=%d", gates), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cwa.Exists(s, src, chase.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMCVP_Baseline(b *testing.B) {
	for _, gates := range []int{8, 32, 128} {
		c := circuit.Random(4, gates, int64(gates))
		b.Run(fmt.Sprintf("gates=%d", gates), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Eval()
			}
		})
	}
}

// --- Theorem 6.2: the chase simulating Turing machines — E7 ---

func BenchmarkTuring_ChaseSimulation(b *testing.B) {
	s := turing.DHaltSetting()
	for _, steps := range []int{2, 4, 8} {
		m := turing.WriterMachine(steps)
		src, err := turing.SourceInstance(m)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("steps=%d", steps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chase.Standard(s, src, chase.Options{MaxSteps: 500000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTuring_InterpreterBaseline(b *testing.B) {
	for _, steps := range []int{2, 4, 8} {
		m := turing.WriterMachine(steps)
		b.Run(fmt.Sprintf("steps=%d", steps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Run(1000)
			}
		})
	}
}

// --- Example 6.1: the never-terminating D_emb chase — E8 ---

func BenchmarkSemigroup_DembChase(b *testing.B) {
	s := semigroup.DembSetting()
	src, err := semigroup.SourceInstance(semigroup.Example61Partial())
	if err != nil {
		b.Fatal(err)
	}
	for _, budget := range []int{100, 400} {
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				chase.Standard(s, src, chase.Options{MaxSteps: budget}) //nolint:errcheck // budget exceeded by design
			}
		})
	}
}

// --- Theorem 5.1: core computation ablation — E9 ---

func coreWorkload(b *testing.B, n int) *instance.Instance {
	b.Helper()
	s := genwl.Example21()
	src := instance.New()
	for i := 0; i < n; i++ {
		a := instance.Const(fmt.Sprintf("a%d", i))
		c := instance.Const(fmt.Sprintf("b%d", i))
		src.Add(instance.NewAtom("M", a, c))
		src.Add(instance.NewAtom("N", a, c))
	}
	u, err := chase.UniversalSolution(s, src, chase.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return u
}

func BenchmarkCore_Blocks(b *testing.B) {
	for _, n := range []int{10, 40} {
		u := coreWorkload(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				score.Core(u)
			}
		})
	}
}

func BenchmarkCore_Naive(b *testing.B) {
	for _, n := range []int{10, 40} {
		u := coreWorkload(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				score.CoreNaive(u)
			}
		})
	}
}

// --- Section 3 anomaly — E10 ---

func BenchmarkAnomaly_Copying(b *testing.B) {
	s := genwl.Copying()
	src := genwl.TwoNineCycles()
	q, err := parser.ParseFOQuery(`(x) . Pp(x) | exists y,z (Pp(y) & Ep(y,z) & !(Pp(z)))`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := certain.Answers(s, q, src, certain.CertainCap, certain.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Theorem 7.1 / Corollary 7.2 cross-check — E11 ---

func BenchmarkSemantics_CrossCheck(b *testing.B) {
	s := genwl.Example21()
	src, err := parser.ParseInstance(`M(a,b). N(a,b).`)
	if err != nil {
		b.Fatal(err)
	}
	u := mustUCQb(b, "q(x) :- E(x,y).")
	for i := 0; i < b.N; i++ {
		for _, sem := range []certain.Semantics{certain.CertainCap, certain.CertainCup, certain.MaybeCap, certain.MaybeCup} {
			if _, err := certain.ByDefinition(s, u, src, sem, certain.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Proposition 5.4: CanSol maximality — E12 ---

func BenchmarkCanSol_Maximality(b *testing.B) {
	s := genwl.EgdOnly()
	src, err := parser.ParseInstance(`N(a,b). N(c,d). W(a,e).`)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		can, err := cwa.CanSol(s, src, chase.Options{})
		if err != nil {
			b.Fatal(err)
		}
		sols, err := cwa.Enumerate(s, src, cwa.EnumOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for _, sol := range sols {
			if _, onto := hom.FindOnto(can, sol, 0); !onto {
				b.Fatal("maximality violated")
			}
		}
	}
}

// --- Engine micro-benchmarks ---

// BenchmarkMatchAtoms_Join exercises the join kernel alone: a three-hop
// path join over a random edge relation, the shape of tgd-body evaluation.
// Allocation counts here are the per-step cost of the evaluation engine.
func BenchmarkMatchAtoms_Join(b *testing.B) {
	ins := genwl.RandomEdges("E", 300, 7)
	atoms := []query.Atom{
		query.A("E", query.V("x"), query.V("y")),
		query.A("E", query.V("y"), query.V("z")),
		query.A("E", query.V("z"), query.V("w")),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		query.MatchAtoms(ins, atoms, query.Binding{}, func(query.Binding) bool { n++; return true })
		if n == 0 {
			b.Fatal("join must produce matches")
		}
	}
}

func BenchmarkChase_Standard(b *testing.B) {
	s := genwl.Example21()
	for _, n := range []int{10, 40, 160} {
		src := instance.New()
		for i := 0; i < n; i++ {
			a := instance.Const(fmt.Sprintf("a%d", i))
			c := instance.Const(fmt.Sprintf("b%d", i))
			src.Add(instance.NewAtom("M", a, c))
			src.Add(instance.NewAtom("N", a, c))
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chase.Standard(s, src, chase.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHomomorphism_Find(b *testing.B) {
	mkCycle := func(n int64, off int64) *instance.Instance {
		ins := instance.New()
		for i := int64(0); i < n; i++ {
			ins.Add(instance.NewAtom("E", instance.Null(off+i), instance.Null(off+(i+1)%n)))
		}
		return ins
	}
	from := mkCycle(15, 0)
	to := mkCycle(3, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !hom.Exists(from, to) {
			b.Fatal("hom must exist")
		}
	}
}

func BenchmarkAlphaChase_Canonical(b *testing.B) {
	s := genwl.Example21()
	src := genwl.Example21Source()
	for i := 0; i < b.N; i++ {
		if _, _, err := chase.Canonical(s, src, chase.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel evaluation engine: worker-count scaling — E13 ---

// BenchmarkForEachRep_Workers measures representative enumeration (via Box)
// on a multi-null universal solution at several worker counts. It reports
// wall-clock only — speedup depends on the host's core count, so nothing is
// asserted about it.
func BenchmarkForEachRep_Workers(b *testing.B) {
	s := genwl.Example21()
	// Two existential st-tgd firings plus the d3 target tgd give the
	// universal solution six nulls — a valuation space in the tens of
	// thousands, big enough to keep the workers busy without making the
	// one-shot bench smoke crawl.
	src, err := parser.ParseInstance(`M(a,b). N(a,b). N(c,d).`)
	if err != nil {
		b.Fatal(err)
	}
	tgt, err := chase.UniversalSolution(s, src, chase.Options{})
	if err != nil {
		b.Fatal(err)
	}
	u := mustUCQb(b, "q(x) :- E(x,y).")
	b.Logf("target nulls: %d", len(tgt.Nulls()))
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := certain.Box(s, u, tgt, certain.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEnumerate_Workers measures CWA-solution enumeration on the
// Example 5.3 family at several worker counts.
func BenchmarkEnumerate_Workers(b *testing.B) {
	s := genwl.Example53()
	src := genwl.Example53Source(1)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cwa.Enumerate(s, src, cwa.EnumOptions{MaxStates: 500000, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Possibility checking ablation (Libkin's case) ---

func BenchmarkPossibleUCQ_Unification(b *testing.B) {
	s, err := parser.ParseSetting(`
source M/2.
target E/2, F/2.
st:
  d1: M(x,y) -> exists z1,z2 : E(x,z1) & F(z1,z2).
`)
	if err != nil {
		b.Fatal(err)
	}
	src := genwl.RandomEdges("M", 12, 9)
	tgt, err := chase.UniversalSolution(s, src, chase.Options{})
	if err != nil {
		b.Fatal(err)
	}
	u, err := parser.ParseUCQ("q() :- E(x,y), F(y,x).")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := certain.PossibleUCQ(s, u, tgt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPossibleUCQ_DiamondBaseline(b *testing.B) {
	s, err := parser.ParseSetting(`
source M/2.
target E/2, F/2.
st:
  d1: M(x,y) -> exists z1,z2 : E(x,z1) & F(z1,z2).
`)
	if err != nil {
		b.Fatal(err)
	}
	src := genwl.RandomEdges("M", 4, 9) // tiny: the baseline is |base|^nulls
	tgt, err := chase.UniversalSolution(s, src, chase.Options{})
	if err != nil {
		b.Fatal(err)
	}
	u, err := parser.ParseUCQ("q() :- E(x,y), F(y,x).")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := certain.Diamond(s, u, tgt, certain.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
