package repro_test

import (
	"testing"

	"repro"
)

const setting = `
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
target-deps:
  d3: F(y,x) -> exists z : G(x,z).
  d4: F(x,y) & F(x,z) -> y = z.
`

func TestFacadeEndToEnd(t *testing.T) {
	s, err := repro.ParseSetting(setting)
	if err != nil {
		t.Fatal(err)
	}
	if !repro.WeaklyAcyclic(s) || !repro.RichlyAcyclic(s) {
		t.Fatal("Example 2.1 is richly acyclic")
	}
	src, err := repro.ParseInstance(`M(a,b). N(a,b). N(a,c).`)
	if err != nil {
		t.Fatal(err)
	}
	exists, err := repro.ExistsCWASolution(s, src, repro.ChaseOptions{})
	if err != nil || !exists {
		t.Fatalf("exists = %v, %v", exists, err)
	}
	sol, err := repro.CWASolution(s, src, repro.ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := repro.IsCWASolution(s, src, sol, repro.ChaseOptions{})
	if err != nil || !ok {
		t.Fatalf("minimal CWA-solution check: %v %v", ok, err)
	}
	want, err := repro.ParseInstance(`E(a,b). F(a,_1). G(_1,_2).`)
	if err != nil {
		t.Fatal(err)
	}
	if !repro.Isomorphic(sol, want) {
		t.Fatalf("CWASolution = %v, want ≅ %v", sol, want)
	}
	u, err := repro.ParseUCQ(`q(x,y) :- E(x,y).`)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := repro.CertainAnswersUCQ(s, u, src, repro.ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 1 || !ans.Has(repro.Tuple{repro.Const("a"), repro.Const("b")}) {
		t.Fatalf("certain answers = %v", ans)
	}
}

func TestFacadeSemantics(t *testing.T) {
	s, _ := repro.ParseSetting(setting)
	src, _ := repro.ParseInstance(`M(a,b). N(a,b).`)
	q, err := repro.ParseUCQ(`q(x) :- E(x,y).`)
	if err != nil {
		t.Fatal(err)
	}
	capAns, err := repro.Answers(s, q, src, repro.CertainCap, repro.CertainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cupAns, err := repro.Answers(s, q, src, repro.CertainCup, repro.CertainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !capAns.SubsetOf(cupAns) {
		t.Fatalf("certain⊓ %v ⊄ certain⊔ %v", capAns, cupAns)
	}
}

func TestFacadeEnumerate(t *testing.T) {
	s, _ := repro.ParseSetting(setting)
	src, _ := repro.ParseInstance(`M(a,b). N(a,b).`)
	sols, err := repro.EnumerateCWASolutions(s, src, repro.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) == 0 {
		t.Fatal("no CWA-solutions enumerated")
	}
	for _, sol := range sols {
		if !repro.IsSolution(s, src, sol) {
			t.Errorf("%v is not a solution", sol)
		}
		if !repro.IsCWAPresolution(s, src, sol) {
			t.Errorf("%v is not a presolution", sol)
		}
	}
}

func TestFacadeChaseAndCore(t *testing.T) {
	s, _ := repro.ParseSetting(setting)
	src, _ := repro.ParseInstance(`M(a,b). N(a,c).`)
	res, err := repro.Chase(s, src, repro.ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Target.Len() == 0 {
		t.Fatal("chase produced nothing")
	}
	core := repro.Core(res.Target)
	if !repro.HomomorphismExists(res.Target, core) || !repro.HomomorphismExists(core, res.Target) {
		t.Fatal("core must be hom-equivalent to the chase result")
	}
	u, err := repro.UniversalSolution(s, src, repro.ChaseOptions{})
	if err != nil || !u.Equal(res.Target) {
		t.Fatal("UniversalSolution must match the chase target")
	}
}

func TestFacadeExtendedAPI(t *testing.T) {
	s, _ := repro.ParseSetting(setting)
	src, _ := repro.ParseInstance(`M(a,b). N(a,b).`)

	// Oblivious chase terminates (Example 2.1 is richly acyclic).
	res, err := repro.ObliviousChase(s, src, repro.ChaseOptions{MaxSteps: 10000})
	if err != nil || !repro.IsSolution(s, src, res.Target) {
		t.Fatalf("oblivious: %v %v", res, err)
	}

	// Termination bound exists and suffices.
	bound, ok := repro.ChaseTerminationBound(s, 3)
	if !ok || bound < 1 {
		t.Fatalf("bound = %d, %v", bound, ok)
	}

	// Justification witnesses behind the minimal CWA-solution.
	core, err := repro.CWASolution(s, src, repro.ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	alpha, ok := repro.FindPresolutionAlpha(s, src, core)
	if !ok || len(alpha) == 0 {
		t.Fatalf("alpha = %v, %v", alpha, ok)
	}

	// Canonical fact of the core holds in every solution built here.
	fact := repro.CanonicalFact(core)
	u, _ := repro.UniversalSolution(s, src, repro.ChaseOptions{})
	if !fact.Holds(u) {
		t.Fatal("ϕ_core must hold in the universal solution")
	}

	// Containment and minimization.
	q1, _ := repro.ParseCQ("q(x) :- E(x,y), E(x,z).")
	q2, _ := repro.ParseCQ("q(x) :- E(x,y).")
	contained, err := repro.CQContainedIn(q1, q2)
	if err != nil || !contained {
		t.Fatalf("containment: %v %v", contained, err)
	}
	min, err := repro.CQMinimize(q1)
	if err != nil || len(min.Atoms) != 1 {
		t.Fatalf("minimize: %v %v", min, err)
	}
}

func TestFacadeUCQIneqAndPossible(t *testing.T) {
	egdOnly, err := repro.ParseSetting(`
source N/2, W/2.
target F/2.
st:
  N(x,y) -> exists z : F(x,z).
  W(x,y) -> F(x,y).
target-deps:
  F(x,y) & F(x,z) -> y = z.
`)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := repro.ParseInstance(`N(a,b). W(a,e).`)
	u, _ := repro.ParseUCQ("q(x) :- F(x,y), y != x.")
	ans, err := repro.CertainAnswersUCQIneq(egdOnly, u, src, repro.CertainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Has(repro.Tuple{repro.Const("a")}) {
		t.Fatalf("a is certain (F(a,e), e != a): %v", ans)
	}

	noDeps, _ := repro.ParseSetting(`
source M/2.
target E/2.
st:
  M(x,y) -> exists z : E(x,z).
`)
	tgt, _ := repro.ParseInstance(`E(a,_0).`)
	b, _ := repro.ParseUCQ("q() :- E('a','a').")
	possible, err := repro.PossibleUCQ(noDeps, b, tgt)
	if err != nil || !possible {
		t.Fatalf("possible: %v %v", possible, err)
	}
}
