package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// The paper's running example end to end: chase, core, certain answers.
func Example() {
	s, err := repro.ParseSetting(`
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
target-deps:
  d3: F(y,x) -> exists z : G(x,z).
  d4: F(x,y) & F(x,z) -> y = z.
`)
	if err != nil {
		log.Fatal(err)
	}
	src, err := repro.ParseInstance(`M(a,b). N(a,b). N(a,c).`)
	if err != nil {
		log.Fatal(err)
	}
	core, err := repro.CWASolution(s, src, repro.ChaseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(core)
	// Output: {E(a,b), F(a,_1), G(_1,_2)}
}

func ExampleCertainAnswersUCQ() {
	s, _ := repro.ParseSetting(`
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
target-deps:
  d3: F(y,x) -> exists z : G(x,z).
  d4: F(x,y) & F(x,z) -> y = z.
`)
	src, _ := repro.ParseInstance(`M(a,b). N(a,b). N(a,c).`)
	q, _ := repro.ParseUCQ(`q(x,y) :- E(x,y).`)
	ans, _ := repro.CertainAnswersUCQ(s, q, src, repro.ChaseOptions{})
	fmt.Println(ans)
	// Output: {(a,b)}
}

func ExampleIsCWASolution() {
	s, _ := repro.ParseSetting(`
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
target-deps:
  d3: F(y,x) -> exists z : G(x,z).
  d4: F(x,y) & F(x,z) -> y = z.
`)
	src, _ := repro.ParseInstance(`M(a,b). N(a,b). N(a,c).`)
	// The paper's T2 is a CWA-solution; T1 (which invents constants) is not.
	t2, _ := repro.ParseInstance(`E(a,b). E(a,_1). E(a,_2). F(a,_3). G(_3,_4).`)
	t1, _ := repro.ParseInstance(`E(a,b). E(a,_1). E(c,_2). F(a,d). G(d,_3).`)
	ok2, _ := repro.IsCWASolution(s, src, t2, repro.ChaseOptions{})
	ok1, _ := repro.IsCWASolution(s, src, t1, repro.ChaseOptions{})
	fmt.Println(ok2, ok1)
	// Output: true false
}

func ExampleEnumerateCWASolutions() {
	s, _ := repro.ParseSetting(`
source P/1.
target E/3, F/3.
st:
  d1: P(x) -> exists z1,z2,z3,z4 : E(x,z1,z3) & E(x,z2,z4).
target-deps:
  d2: E(x,x1,y) & E(x,x2,y) -> F(x,x1,x2).
`)
	src, _ := repro.ParseInstance(`P(1).`)
	sols, _ := repro.EnumerateCWASolutions(s, src, repro.EnumOptions{})
	fmt.Println(len(sols), "CWA-solutions up to isomorphism")
	// Output: 4 CWA-solutions up to isomorphism
}
