package turing

import (
	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/parser"
)

// DHaltCoSetting returns the Remark 6.3 variant of D_halt: the source
// additionally carries the machine's final states (Final) and a Clash fact
// with two distinct constants, and an egd tries to identify the clash
// constants as soon as a final state is reached. Under this setting the
// chase FAILS exactly when the machine halts, so (with infinite solutions
// admitted) a reduction from the complement of the halting problem shows
// Existence-of-CWA-Solutions undecidable even for infinite solutions:
// M does not halt ⟺ an (infinite) CWA-solution exists.
func DHaltCoSetting() *dependency.Setting {
	s, err := parser.ParseSetting(`
source Delta/5, Q0/1, Final/1, SClash/2.
target DeltaP/5, Succ/2, Q/3, I/3, NEXTPOS/3, END/2, COPYL/3, COPYR/3, FinalP/1, Clash/2.
st:
  copy: Delta(q,s,q2,s2,d) -> DeltaP(q,s,q2,s2,d).
  init: Q0(q) -> Q('0',q,'1') & I('0','1','B') & I('0','2','B') & NEXTPOS('0','1','2') & END('0','2').
  fin: Final(q) -> FinalP(q).
  cl: SClash(x,y) -> Clash(x,y).
target-deps:
  moveL: Q(t,q,p) & I(t,p,s) & NEXTPOS(t,pm,p) & DeltaP(q,s,q2,s2,'L') ->
    exists t2 : Succ(t,t2) & Q(t2,q2,pm) & I(t2,p,s2) & COPYL(t,t2,p) & COPYR(t,t2,p).
  moveR: Q(t,q,p) & I(t,p,s) & NEXTPOS(t,p,pp) & DeltaP(q,s,q2,s2,'R') ->
    exists t2 : Succ(t,t2) & Q(t2,q2,pp) & I(t2,p,s2) & COPYL(t,t2,p) & COPYR(t,t2,p).
  copyL: COPYL(t,t2,p) & NEXTPOS(t,pm,p) & I(t,pm,s) ->
    COPYL(t,t2,pm) & NEXTPOS(t2,pm,p) & I(t2,pm,s).
  copyR: COPYR(t,t2,p) & NEXTPOS(t,p,pp) & I(t,pp,s) ->
    COPYR(t,t2,pp) & NEXTPOS(t2,p,pp) & I(t2,pp,s).
  grow: END(t,p) & Succ(t,t2) ->
    exists p2 : NEXTPOS(t2,p,p2) & I(t2,p2,'B') & END(t2,p2).
  halt: Q(t,q,p) & FinalP(q) & Clash(x,y) -> x = y.
`)
	if err != nil {
		panic("turing: co-halting setting must parse: " + err.Error())
	}
	return s
}

// CoSourceInstance encodes the machine for DHaltCoSetting: δ, the start
// state, the final states, and the clash pair.
func CoSourceInstance(m *Machine) (*instance.Instance, error) {
	src, err := SourceInstance(m)
	if err != nil {
		return nil, err
	}
	for q := range m.Final {
		src.Add(instance.NewAtom("Final", instance.Const(q)))
	}
	src.Add(instance.NewAtom("SClash", instance.Const("clash0"), instance.Const("clash1")))
	return src, nil
}

// SaturatedSolution builds the Remark 6.3 witness: for ANY source instance
// over D_halt's source schema, the target instance containing every atom
// R(ū) with ū over Const(S) ∪ {0, 1, 2, B} is a solution — every tgd head
// is present and D_halt has no egds. Existence-of-Solutions is therefore
// trivial for D_halt, while Existence-of-CWA-Solutions is equivalent to
// halting (Theorem 6.2): the saturated instance is wildly unjustified
// under the closed world assumption.
//
// The instance has |pool|^arity atoms per relation; keep the machine small.
func SaturatedSolution(s *dependency.Setting, src *instance.Instance) *instance.Instance {
	poolSet := make(map[instance.Value]bool)
	for _, c := range src.Consts() {
		poolSet[c] = true
	}
	for _, name := range []string{"0", "1", "2", Blank} {
		poolSet[instance.Const(name)] = true
	}
	pool := make([]instance.Value, 0, len(poolSet))
	for v := range poolSet {
		pool = append(pool, v)
	}
	out := instance.New()
	for rel, arity := range s.Target {
		args := make([]instance.Value, arity)
		var rec func(i int)
		rec = func(i int) {
			if i == arity {
				out.Add(instance.NewAtom(rel, args...))
				return
			}
			for _, v := range pool {
				args[i] = v
				rec(i + 1)
			}
		}
		rec(0)
	}
	return out
}
