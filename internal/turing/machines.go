package turing

// Example machines used by tests, examples and the E7 benchmarks.

// WriterMachine writes the symbol "1" and moves right n times, then halts.
// It halts after exactly n steps.
func WriterMachine(n int) *Machine {
	m := &Machine{
		Name:     "writer",
		Alphabet: []string{Blank, "1"},
		Start:    "q0",
		Final:    map[string]bool{"halt": true},
		Delta:    map[string]map[string]Transition{},
	}
	for i := 0; i < n; i++ {
		q := stateName(i)
		nq := stateName(i + 1)
		if i+1 == n {
			nq = "halt"
		}
		m.States = append(m.States, q)
		m.Delta[q] = map[string]Transition{
			Blank: {NewState: nq, Write: "1", Move: Right},
			"1":   {NewState: nq, Write: "1", Move: Right},
		}
	}
	m.States = append(m.States, "halt")
	if n == 0 {
		m.Start = "halt"
	}
	return m
}

// ZigzagMachine walks right n cells writing "1", then walks left back to the
// first cell and halts (by attempting to move left off the tape, the stuck
// convention). It exercises both head directions and the tape copy rules.
func ZigzagMachine(n int) *Machine {
	m := &Machine{
		Name:     "zigzag",
		Alphabet: []string{Blank, "1"},
		Start:    "r0",
		Final:    map[string]bool{},
		Delta:    map[string]map[string]Transition{},
	}
	for i := 0; i < n; i++ {
		q := "r" + itoa(i)
		nq := "r" + itoa(i+1)
		if i+1 == n {
			nq = "back"
		}
		m.States = append(m.States, q)
		m.Delta[q] = map[string]Transition{
			Blank: {NewState: nq, Write: "1", Move: Right},
			"1":   {NewState: nq, Write: "1", Move: Right},
		}
	}
	m.States = append(m.States, "back")
	m.Delta["back"] = map[string]Transition{
		Blank: {NewState: "back", Write: Blank, Move: Left},
		"1":   {NewState: "back", Write: "1", Move: Left},
	}
	return m
}

// LoopMachine moves right forever — it never halts on any input.
func LoopMachine() *Machine {
	return &Machine{
		Name:     "loop",
		States:   []string{"go"},
		Alphabet: []string{Blank},
		Start:    "go",
		Final:    map[string]bool{},
		Delta: map[string]map[string]Transition{
			"go": {Blank: {NewState: "go", Write: Blank, Move: Right}},
		},
	}
}

// HaltMachine halts immediately: its start state is final.
func HaltMachine() *Machine {
	return &Machine{
		Name:     "halt",
		States:   []string{"h"},
		Alphabet: []string{Blank},
		Start:    "h",
		Final:    map[string]bool{"h": true},
		Delta:    map[string]map[string]Transition{},
	}
}

func stateName(i int) string { return "q" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}
