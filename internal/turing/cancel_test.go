package turing

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/chase"
)

// TestChaseCanceledOnNonTerminatingSetting: on D_halt with a looping
// machine the standard chase never reaches a fixpoint; a context deadline
// must abort it with chase.ErrCanceled (not ErrBudgetExceeded) and still
// hand back the partial result.
func TestChaseCanceledOnNonTerminatingSetting(t *testing.T) {
	s := DHaltSetting()
	src, err := SourceInstance(LoopMachine())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	// The step budget is far beyond what the deadline allows: only the
	// context can stop this run.
	res, err := chase.Standard(s, src, chase.Options{MaxSteps: 1 << 30, Ctx: ctx})
	if !errors.Is(err, chase.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if errors.Is(err, chase.ErrBudgetExceeded) {
		t.Fatal("cancellation must be distinguishable from budget exhaustion")
	}
	if res == nil || res.Instance == nil || res.Target == nil {
		t.Fatal("canceled chase must return its partial result")
	}
	if res.Steps == 0 {
		t.Error("the chase should have made progress before the deadline")
	}
}

// TestObliviousChaseCanceled: the oblivious chase honours the same contract
// on the non-terminating setting.
func TestObliviousChaseCanceled(t *testing.T) {
	s := DHaltSetting()
	src, err := SourceInstance(LoopMachine())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	res, err := chase.Oblivious(s, src, chase.Options{MaxSteps: 1 << 30, Ctx: ctx})
	if !errors.Is(err, chase.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if res == nil || res.Instance == nil {
		t.Fatal("canceled chase must return its partial result")
	}
}

// TestChaseCanceledBeforeStart: an already-done context aborts immediately,
// before any step fires.
func TestChaseCanceledBeforeStart(t *testing.T) {
	s := DHaltSetting()
	src, err := SourceInstance(LoopMachine())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := chase.Standard(s, src, chase.Options{Ctx: ctx})
	if !errors.Is(err, chase.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if res == nil || res.Steps != 0 {
		t.Fatalf("no step may fire under a pre-canceled context: %+v", res)
	}
}
