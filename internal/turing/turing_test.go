package turing

import (
	"errors"
	"testing"

	"repro/internal/chase"
	"repro/internal/cwa"
)

func TestValidate(t *testing.T) {
	for _, m := range []*Machine{WriterMachine(3), ZigzagMachine(2), LoopMachine(), HaltMachine()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	bad := &Machine{States: []string{"q"}, Alphabet: []string{Blank}, Start: "q", Final: map[string]bool{}}
	if err := bad.Validate(); err == nil {
		t.Error("partial δ on non-final state must fail")
	}
	noBlank := &Machine{States: []string{"q"}, Alphabet: []string{"x"}, Start: "q", Final: map[string]bool{"q": true}}
	if err := noBlank.Validate(); err == nil {
		t.Error("missing blank must fail")
	}
}

func TestInterpreterWriter(t *testing.T) {
	m := WriterMachine(3)
	configs, halted := m.Run(100)
	if !halted {
		t.Fatal("writer(3) must halt")
	}
	if len(configs) != 4 {
		t.Fatalf("writer(3) runs 3 steps, got %d configs", len(configs))
	}
	last := configs[len(configs)-1]
	if last.State != "halt" || last.Head != 4 {
		t.Fatalf("final config %v", last)
	}
	for i := 0; i < 3; i++ {
		if last.Tape[i] != "1" {
			t.Fatalf("tape %v", last.Tape)
		}
	}
}

func TestInterpreterLoop(t *testing.T) {
	if _, halted := LoopMachine().Run(200); halted {
		t.Fatal("loop machine must not halt")
	}
}

func TestInterpreterZigzagStuckConvention(t *testing.T) {
	m := ZigzagMachine(2)
	configs, halted := m.Run(100)
	if !halted {
		t.Fatal("zigzag halts by the stuck convention")
	}
	last := configs[len(configs)-1]
	if last.Head != 1 || last.State != "back" {
		t.Fatalf("final config %v", last)
	}
}

func TestDHaltSettingShape(t *testing.T) {
	s := DHaltSetting()
	if s.WeaklyAcyclic() {
		t.Fatal("D_halt must not be weakly acyclic (it simulates Turing machines)")
	}
}

// The chase over D_halt must reproduce the interpreter's run step for step.
func TestChaseSimulatesInterpreter(t *testing.T) {
	s := DHaltSetting()
	for _, m := range []*Machine{HaltMachine(), WriterMachine(1), WriterMachine(3), ZigzagMachine(2)} {
		src, err := SourceInstance(m)
		if err != nil {
			t.Fatal(err)
		}
		res, err := chase.Standard(s, src, chase.Options{MaxSteps: 100000})
		if err != nil {
			t.Fatalf("%s: chase: %v", m.Name, err)
		}
		got, err := DecodeRun(res.Target)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Name, err)
		}
		want, halted := m.Run(1000)
		if !halted {
			t.Fatalf("%s should halt", m.Name)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: chase has %d configs, interpreter %d\nchase: %v\ninterp: %v",
				m.Name, len(got), len(want), got, want)
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Errorf("%s step %d: chase %v != interpreter %v", m.Name, i, got[i], want[i])
			}
		}
	}
}

// Theorem 6.2, executable form: for halting machines a CWA-solution exists;
// for the looping machine the chase exceeds every budget.
func TestHaltingIffCWASolution(t *testing.T) {
	s := DHaltSetting()
	for _, m := range []*Machine{HaltMachine(), WriterMachine(2)} {
		src, err := SourceInstance(m)
		if err != nil {
			t.Fatal(err)
		}
		exists, err := cwa.Exists(s, src, chase.Options{MaxSteps: 100000})
		if err != nil || !exists {
			t.Errorf("%s halts: CWA-solution must exist (%v, %v)", m.Name, exists, err)
		}
	}
	src, err := SourceInstance(LoopMachine())
	if err != nil {
		t.Fatal(err)
	}
	_, err = chase.Standard(s, src, chase.Options{MaxSteps: 3000})
	if !errors.Is(err, chase.ErrBudgetExceeded) {
		t.Fatalf("looping machine: want budget exceeded, got %v", err)
	}
}

// The core of the chase result is a CWA-solution (Theorem 5.1 applies even
// though D_halt is not weakly acyclic, as long as the chase terminates).
func TestHaltingRunCoreIsCWASolution(t *testing.T) {
	s := DHaltSetting()
	m := WriterMachine(1)
	src, err := SourceInstance(m)
	if err != nil {
		t.Fatal(err)
	}
	core, err := cwa.Minimal(s, src, chase.Options{MaxSteps: 100000})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := cwa.IsCWASolution(s, src, core, chase.Options{MaxSteps: 100000})
	if err != nil || !ok {
		t.Fatalf("core of halting run must be a CWA-solution: %v %v", ok, err)
	}
}

func TestDecodeRunErrors(t *testing.T) {
	s := DHaltSetting()
	src, err := SourceInstance(HaltMachine())
	if err != nil {
		t.Fatal(err)
	}
	res, err := chase.Standard(s, src, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Remove the inscription at position 1 to break decoding.
	broken := res.Target.Clone()
	for _, a := range broken.Atoms() {
		if a.Rel == "I" {
			broken.Remove(a)
		}
	}
	if _, err := DecodeRun(broken); err == nil {
		t.Fatal("decoding a broken run must fail")
	}
}
