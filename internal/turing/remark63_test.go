package turing

import (
	"errors"
	"testing"

	"repro/internal/chase"
)

// Remark 6.3: for every source instance, the saturated target instance is a
// solution under D_halt — so the Kolaitis–Panttaja–Tan-style reduction via
// plain solutions cannot work for D_halt; the undecidability of
// Existence-of-CWA-Solutions really is about CWA-solutions. Even for the
// LOOPING machine (which has no CWA-solution), the saturated instance is a
// solution.
func TestRemark63SaturatedSolution(t *testing.T) {
	s := DHaltSetting()
	m := LoopMachine() // one state, blank-only alphabet: small pool
	src, err := SourceInstance(m)
	if err != nil {
		t.Fatal(err)
	}
	sat := SaturatedSolution(s, src)
	if sat.Len() == 0 {
		t.Fatal("saturated instance empty")
	}
	if !chase.IsSolution(s, src, sat) {
		t.Fatal("the saturated instance must be a solution for every source (Remark 6.3)")
	}
	// But it is certainly not a CWA-presolution: its atoms are unjustified.
	// (The full presolution search is too expensive on the saturated
	// instance; the non-existence of ANY CWA-solution for the looper is
	// covered by TestHaltingIffCWASolution.)
}

// Remark 6.3, second part: with final-state egds, the chase FAILS exactly
// when the machine halts in a final state — the complement reduction.
func TestRemark63CoHalting(t *testing.T) {
	s := DHaltCoSetting()
	// A machine that reaches its final state: the egd clash fires.
	m := WriterMachine(2)
	src, err := CoSourceInstance(m)
	if err != nil {
		t.Fatal(err)
	}
	_, err = chase.Standard(s, src, chase.Options{MaxSteps: 100000})
	if !chase.IsEgdFailure(err) {
		t.Fatalf("halting machine must clash: %v", err)
	}
	// The looper never reaches a final state: the chase just keeps running.
	loopSrc, err := CoSourceInstance(LoopMachine())
	if err != nil {
		t.Fatal(err)
	}
	_, err = chase.Standard(s, loopSrc, chase.Options{MaxSteps: 3000})
	if !errors.Is(err, chase.ErrBudgetExceeded) {
		t.Fatalf("looper must keep running: %v", err)
	}
	// The zigzag machine halts by the stuck convention WITHOUT entering a
	// final state — no clash, and the chase terminates normally.
	zig, err := CoSourceInstance(ZigzagMachine(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chase.Standard(s, zig, chase.Options{MaxSteps: 100000}); err != nil {
		t.Fatalf("stuck machine must terminate without clash: %v", err)
	}
}
