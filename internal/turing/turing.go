// Package turing implements deterministic one-tape Turing machines and the
// D_halt data exchange setting of Theorem 6.2, under which the chase
// simulates a machine's run on the empty input step for step. The theorem:
// Existence-of-CWA-Solutions(D_halt) is undecidable, because a CWA-solution
// for the source instance S_M exists iff M halts on the empty input.
//
// The machine is encoded in the SOURCE instance (the setting is fixed):
// Delta holds the graph of the transition function δ and Q0 the start
// state. The target dependencies drive the simulation: one tgd per head
// direction creates the successor configuration, two tgds copy the
// untouched tape cells leftwards and rightwards, and one tgd appends a
// fresh blank cell at the right end of the tape each step, so the tape is
// always long enough. The package also contains a direct interpreter used
// as the baseline for step-exact cross-checks (experiment E7).
package turing

import (
	"fmt"

	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/parser"
)

// Blank is the reserved blank tape symbol; every machine must use it.
const Blank = "B"

// Direction of a head move.
type Direction string

// Head move directions.
const (
	Left  Direction = "L"
	Right Direction = "R"
)

// Transition is one entry of the transition function δ.
type Transition struct {
	NewState string
	Write    string
	Move     Direction
}

// Machine is a deterministic one-tape Turing machine with a tape that is
// infinite only to the right (the paper's convention). δ must be total on
// (Q \ QF) × Σ.
type Machine struct {
	Name     string
	States   []string
	Alphabet []string // must contain Blank
	Start    string
	Final    map[string]bool
	Delta    map[string]map[string]Transition // state -> symbol -> transition
}

// Validate checks the totality of δ and membership of all components.
func (m *Machine) Validate() error {
	states := make(map[string]bool, len(m.States))
	for _, q := range m.States {
		states[q] = true
	}
	symbols := make(map[string]bool, len(m.Alphabet))
	hasBlank := false
	for _, s := range m.Alphabet {
		symbols[s] = true
		if s == Blank {
			hasBlank = true
		}
	}
	if !hasBlank {
		return fmt.Errorf("turing: alphabet must contain the blank %q", Blank)
	}
	if !states[m.Start] {
		return fmt.Errorf("turing: start state %q not declared", m.Start)
	}
	for q := range m.Final {
		if !states[q] {
			return fmt.Errorf("turing: final state %q not declared", q)
		}
	}
	for _, q := range m.States {
		if m.Final[q] {
			if len(m.Delta[q]) != 0 {
				return fmt.Errorf("turing: final state %q must have no transitions", q)
			}
			continue
		}
		for _, s := range m.Alphabet {
			tr, ok := m.Delta[q][s]
			if !ok {
				return fmt.Errorf("turing: δ undefined on (%q, %q)", q, s)
			}
			if !states[tr.NewState] || !symbols[tr.Write] {
				return fmt.Errorf("turing: transition (%q,%q) references unknown state or symbol", q, s)
			}
			if tr.Move != Left && tr.Move != Right {
				return fmt.Errorf("turing: bad direction %q", tr.Move)
			}
		}
	}
	return nil
}

// Config is a machine configuration: state, 1-based head position, and the
// tape contents (index 0 = position 1).
type Config struct {
	State string
	Head  int
	Tape  []string
}

// Clone returns an independent copy.
func (c Config) Clone() Config {
	cp := c
	cp.Tape = append([]string(nil), c.Tape...)
	return cp
}

func (c Config) String() string {
	out := c.State + " ["
	for i, s := range c.Tape {
		if i == c.Head-1 {
			out += "(" + s + ")"
		} else {
			out += s
		}
	}
	return out + "]"
}

// Run executes the machine on the empty input for at most maxSteps steps
// and returns the visited configurations (including the initial one) and
// whether the machine halted: by reaching a final state or by attempting to
// move left off the tape (the "stuck" convention matching the chase, whose
// transition tgds simply stop matching). halted = false means the budget
// was exhausted.
//
// To mirror D_halt exactly, the tape starts with two blank cells and grows
// by one blank cell per step.
func (m *Machine) Run(maxSteps int) (configs []Config, halted bool) {
	cur := Config{State: m.Start, Head: 1, Tape: []string{Blank, Blank}}
	configs = append(configs, cur.Clone())
	for step := 0; step < maxSteps; step++ {
		if m.Final[cur.State] {
			return configs, true
		}
		tr, ok := m.Delta[cur.State][cur.Tape[cur.Head-1]]
		if !ok {
			return configs, true // δ undefined: halt
		}
		next := cur.Clone()
		next.Tape[cur.Head-1] = tr.Write
		if tr.Move == Left {
			if cur.Head == 1 {
				return configs, true // fell off the left end: stuck = halt
			}
			next.Head = cur.Head - 1
		} else {
			next.Head = cur.Head + 1
		}
		next.State = tr.NewState
		next.Tape = append(next.Tape, Blank) // the END rule grows the tape
		cur = next
		configs = append(configs, cur.Clone())
	}
	return configs, m.Final[cur.State]
}

// DHaltSetting returns the fixed data exchange setting D_halt of
// Theorem 6.2. It is deliberately NOT weakly acyclic: the Succ-creating
// transition tgds and the tape-growing END tgd form existential cycles,
// which is what lets the chase run as long as the machine does.
func DHaltSetting() *dependency.Setting {
	s, err := parser.ParseSetting(`
source Delta/5, Q0/1.
target DeltaP/5, Succ/2, Q/3, I/3, NEXTPOS/3, END/2, COPYL/3, COPYR/3.
st:
  copy: Delta(q,s,q2,s2,d) -> DeltaP(q,s,q2,s2,d).
  init: Q0(q) -> Q('0',q,'1') & I('0','1','B') & I('0','2','B') & NEXTPOS('0','1','2') & END('0','2').
target-deps:
  moveL: Q(t,q,p) & I(t,p,s) & NEXTPOS(t,pm,p) & DeltaP(q,s,q2,s2,'L') ->
    exists t2 : Succ(t,t2) & Q(t2,q2,pm) & I(t2,p,s2) & COPYL(t,t2,p) & COPYR(t,t2,p).
  moveR: Q(t,q,p) & I(t,p,s) & NEXTPOS(t,p,pp) & DeltaP(q,s,q2,s2,'R') ->
    exists t2 : Succ(t,t2) & Q(t2,q2,pp) & I(t2,p,s2) & COPYL(t,t2,p) & COPYR(t,t2,p).
  copyL: COPYL(t,t2,p) & NEXTPOS(t,pm,p) & I(t,pm,s) ->
    COPYL(t,t2,pm) & NEXTPOS(t2,pm,p) & I(t2,pm,s).
  copyR: COPYR(t,t2,p) & NEXTPOS(t,p,pp) & I(t,pp,s) ->
    COPYR(t,t2,pp) & NEXTPOS(t2,p,pp) & I(t2,pp,s).
  grow: END(t,p) & Succ(t,t2) ->
    exists p2 : NEXTPOS(t2,p,p2) & I(t2,p2,'B') & END(t2,p2).
`)
	if err != nil {
		panic("turing: D_halt must parse: " + err.Error())
	}
	return s
}

// SourceInstance encodes the machine as the source instance S_M: the graph
// of δ plus the start state.
func SourceInstance(m *Machine) (*instance.Instance, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	src := instance.New()
	for q, row := range m.Delta {
		for s, tr := range row {
			src.Add(instance.NewAtom("Delta",
				instance.Const(q), instance.Const(s),
				instance.Const(tr.NewState), instance.Const(tr.Write),
				instance.Const(string(tr.Move))))
		}
	}
	src.Add(instance.NewAtom("Q0", instance.Const(m.Start)))
	return src, nil
}

// DecodeRun extracts the sequence of configurations encoded in a chase
// result over D_halt's target schema, starting from time constant 0 and
// following Succ. It reconstructs each tape by walking NEXTPOS from
// position 1 and reading I.
func DecodeRun(t *instance.Instance) ([]Config, error) {
	succ := make(map[instance.Value]instance.Value)
	t.Tuples("Succ", func(args []instance.Value) bool {
		succ[args[0]] = args[1]
		return true
	})
	var configs []Config
	cur := instance.Const("0")
	for {
		cfg, err := decodeConfig(t, cur)
		if err != nil {
			return nil, fmt.Errorf("turing: at time %v: %w", cur, err)
		}
		configs = append(configs, cfg)
		next, ok := succ[cur]
		if !ok {
			return configs, nil
		}
		cur = next
	}
}

func decodeConfig(t *instance.Instance, time instance.Value) (Config, error) {
	var cfg Config
	found := 0
	var headPos instance.Value
	t.MatchTuples("Q", []instance.Value{time, 0, 0}, []bool{true, false, false},
		func(args []instance.Value) bool {
			cfg.State = instance.ConstName(args[1])
			headPos = args[2]
			found++
			return true
		})
	if found != 1 {
		return cfg, fmt.Errorf("expected one Q atom, found %d", found)
	}
	// Tape: successor edges and inscriptions at this time.
	next := make(map[instance.Value]instance.Value)
	t.MatchTuples("NEXTPOS", []instance.Value{time, 0, 0}, []bool{true, false, false},
		func(args []instance.Value) bool {
			next[args[1]] = args[2]
			return true
		})
	content := make(map[instance.Value]string)
	t.MatchTuples("I", []instance.Value{time, 0, 0}, []bool{true, false, false},
		func(args []instance.Value) bool {
			content[args[1]] = instance.ConstName(args[2])
			return true
		})
	pos := instance.Const("1")
	for i := 1; ; i++ {
		s, ok := content[pos]
		if !ok {
			return cfg, fmt.Errorf("no inscription at position %v (cell %d)", pos, i)
		}
		cfg.Tape = append(cfg.Tape, s)
		if pos == headPos {
			cfg.Head = i
		}
		np, ok := next[pos]
		if !ok {
			break
		}
		pos = np
		if i > len(content)+1 {
			return cfg, fmt.Errorf("NEXTPOS cycle at time %v", time)
		}
	}
	if cfg.Head == 0 {
		return cfg, fmt.Errorf("head position %v not on tape", headPos)
	}
	return cfg, nil
}

// Equal reports whether two configurations agree on state, head and tape.
func (c Config) Equal(d Config) bool {
	if c.State != d.State || c.Head != d.Head || len(c.Tape) != len(d.Tape) {
		return false
	}
	for i := range c.Tape {
		if c.Tape[i] != d.Tape[i] {
			return false
		}
	}
	return true
}
