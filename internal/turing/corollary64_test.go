package turing

import (
	"errors"
	"testing"

	"repro/internal/chase"
	"repro/internal/cwa"
	"repro/internal/hom"
)

// Corollary 6.4: Existence-of-Universal-Solutions(D_halt) is undecidable —
// by Corollary 5.2 it coincides with Existence-of-CWA-Solutions, which
// tracks halting. Executable form: for a halting machine the chase result
// is a universal solution; for the looper no universal solution can be
// produced within any budget (while plain solutions exist, Remark 6.3).
func TestCorollary64UniversalSolutions(t *testing.T) {
	s := DHaltSetting()

	// Halting machine: the chase result is a universal solution and
	// in particular hom-maps into the saturated solution of Remark 6.3.
	m := WriterMachine(1)
	src, err := SourceInstance(m)
	if err != nil {
		t.Fatal(err)
	}
	u, err := chase.UniversalSolution(s, src, chase.Options{MaxSteps: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !chase.IsSolution(s, src, u) {
		t.Fatal("chase result must be a solution")
	}
	sat := SaturatedSolution(s, src)
	if !hom.Exists(u, sat) {
		t.Fatal("universal solution must map into every solution, including the saturated one")
	}
	universal, err := cwa.IsUniversal(s, src, u, chase.Options{MaxSteps: 100000})
	if err != nil || !universal {
		t.Fatalf("chase result must be universal: %v %v", universal, err)
	}
	// The saturated solution is NOT universal: it contains atoms (e.g. a
	// Succ-cycle) with no counterpart in the chase result.
	satUniversal, err := cwa.IsUniversal(s, src, sat, chase.Options{MaxSteps: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if satUniversal {
		t.Fatal("the saturated solution must not be universal")
	}

	// Looping machine: no universal solution within any budget.
	loopSrc, err := SourceInstance(LoopMachine())
	if err != nil {
		t.Fatal(err)
	}
	_, err = chase.UniversalSolution(s, loopSrc, chase.Options{MaxSteps: 4000})
	if !errors.Is(err, chase.ErrBudgetExceeded) {
		t.Fatalf("looper: want budget exceeded, got %v", err)
	}
}
