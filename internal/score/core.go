// Package score computes cores of instances with nulls. A core of an
// instance I is a sub-instance J ⊆ I with a homomorphism I → J but no
// homomorphism from J to a proper sub-instance of J; by Hell & Nešetřil it
// is unique up to renaming of nulls.
//
// Cores matter here because of Theorem 5.1: if universal solutions exist,
// their common core Core_D(S) is the unique minimal CWA-solution.
//
// The implementation rests on a decomposition fact: a null n is droppable —
// there is a homomorphism from I into the atoms of I avoiding n — iff the
// Gaifman block of n (the atoms reachable from n through shared nulls) maps
// into I avoiding n. Atoms outside the block never mention n and extend any
// block-local homomorphism by the identity; conversely a global
// homomorphism restricts to the block. Core therefore only ever searches
// homomorphisms for one block at a time, which keeps the search local (the
// FKP/Gottlob–Nash-style blocks technique); CoreNaive, which searches whole
// instance endomorphisms, remains as the ablation baseline of experiment E9
// and can backtrack exponentially across independent blocks on failures.
package score

import (
	"repro/internal/hom"
	"repro/internal/instance"
)

// CoreNaive computes the core by repeatedly searching, for each null n, a
// whole-instance homomorphism into the atoms avoiding n, and replacing the
// instance by the image. Correct but exponential across blocks; use Core.
func CoreNaive(t *instance.Instance) *instance.Instance {
	cur := t.Clone()
	for {
		dropped := false
		// Compile cur once per pass; the instance only changes when a null
		// is dropped, which restarts the pass.
		s := hom.CompileSource(cur)
		for _, n := range cur.Nulls() {
			if m, ok := s.Find(cur, hom.Avoiding(n)); ok {
				cur = m.ApplyInstance(cur)
				dropped = true
				break
			}
		}
		if !dropped {
			return cur
		}
	}
}

// Core computes the core via block-local retractions, in a single sweep:
// the instance is decomposed into Gaifman blocks once, and each block is
// driven to its own fixpoint (no null of it droppable) before moving on.
// That one sweep suffices because retractions cannot interfere across
// blocks in either direction:
//
//   - Retracting a block leaves every other block's atom list untouched. A
//     retraction's image atoms already exist in the instance (they are hom
//     images), so the instance only loses atoms — and the lost atoms all
//     belong to the retracted block, since no atom mentions nulls of two
//     different blocks.
//
//   - A shrinking target can only lose homomorphisms, never gain them
//     (restrict the hom), so a null found undroppable stays undroppable
//     after any later retraction. Earlier blocks therefore never need
//     re-probing.
//
// Each probe runs the compiled search's decision-mode arc-consistency pass
// first (hom.Search.FindAvoidingAC): undroppable nulls whose candidate
// domains empty out are refuted, and forced retractions (every domain a
// singleton) are confirmed with their mapping — both without any
// backtracking; only genuinely ambiguous probes search.
func Core(t *instance.Instance) *instance.Instance {
	cur := t.Clone()
	blks, atoms := blocksWithAtoms(cur)
	for i, block := range blks {
		dropBlockNulls(&cur, block, atoms[i])
	}
	return cur
}

// IsCore reports whether no null of t can be dropped. By the block
// decomposition this is checked block-locally, with the same compiled
// decision-mode probes as Core's passes.
func IsCore(t *instance.Instance) bool {
	blks, atoms := blocksWithAtoms(t)
	for i, block := range blks {
		s := hom.CompileAtoms(atoms[i])
		for _, n := range block {
			if _, ok := s.FindAvoidingAC(t, n); ok {
				return false
			}
		}
	}
	return true
}

// dropBlockNulls drives one Gaifman block to its local fixpoint: while some
// null of the block is droppable, the block-extended endomorphism is applied
// and the block-local view (atom list and null set) is rewritten through the
// retraction, without rescanning the instance. It reports whether any null
// was dropped.
//
// The rewritten view stays exact: after a retraction, the instance's atoms
// mentioning a surviving block null are precisely the retraction images of
// the old block atoms that still mention one (atoms outside the block never
// mention block nulls, and an image atom mentioning a block null was itself
// a block atom — no atom spans two blocks). Images that only mention foreign
// nulls or constants leave the block's view; they already existed in the
// instance and belong to other blocks' probes. The block may also split into
// disconnected components — probing from the coarser union stays sound, as
// the components not containing the avoided null embed by the identity.
func dropBlockNulls(cur **instance.Instance, block []instance.Value, atoms []instance.Atom) bool {
	progress := false
	own := make(map[instance.Value]bool, len(block))
	for _, b := range block {
		own[b] = true
	}
	for len(block) > 0 {
		// One compiled search per retraction round, shared by every probe:
		// only the avoided null changes between probes.
		s := hom.CompileAtoms(atoms)
		var m hom.Mapping
		found := false
		for _, n := range block {
			if fm, ok := s.FindAvoidingAC(*cur, n); ok {
				m, found = fm, true
				break
			}
		}
		if !found {
			return progress
		}
		full := hom.Mapping{}
		for _, b := range block {
			full[b] = m.Apply(b)
		}
		*cur = full.ApplyInstance(*cur)
		progress = true
		// Rewrite the block-local view through the retraction; the scratch
		// instance dedups coinciding images and owns the new Args.
		tmp := instance.New()
		for _, a := range atoms {
			args := make([]instance.Value, len(a.Args))
			hasOwn := false
			for i, v := range a.Args {
				args[i] = full.Apply(v)
				if own[args[i]] {
					hasOwn = true
				}
			}
			if hasOwn {
				tmp.Add(instance.Atom{Rel: a.Rel, Args: args})
			}
		}
		atoms = tmp.AtomsShared()
		block = tmp.Nulls()
	}
	return progress
}

// blocks partitions the nulls of t into Gaifman components: two nulls are
// connected when they co-occur in an atom. The returned blocks are in
// deterministic order (by smallest null).
func blocks(t *instance.Instance) [][]instance.Value {
	parent := make(map[instance.Value]instance.Value)
	var find func(v instance.Value) instance.Value
	find = func(v instance.Value) instance.Value {
		p, ok := parent[v]
		if !ok || p == v {
			parent[v] = v
			return v
		}
		r := find(p)
		parent[v] = r
		return r
	}
	union := func(a, b instance.Value) { parent[find(a)] = find(b) }
	for _, a := range t.AtomsShared() {
		var prev instance.Value
		hasPrev := false
		for _, v := range a.Args {
			if !v.IsNull() {
				continue
			}
			if hasPrev {
				union(prev, v)
			}
			prev, hasPrev = v, true
		}
	}
	grouped := make(map[instance.Value][]instance.Value)
	var roots []instance.Value
	for _, n := range t.Nulls() { // Nulls() is sorted, so blocks are ordered
		r := find(n)
		if _, seen := grouped[r]; !seen {
			roots = append(roots, r)
		}
		grouped[r] = append(grouped[r], n)
	}
	out := make([][]instance.Value, 0, len(roots))
	for _, r := range roots {
		out = append(out, grouped[r])
	}
	return out
}

// blocksWithAtoms returns the Gaifman blocks of t (as blocks does) paired
// with, for each block, the atoms mentioning one of its nulls — plain atom
// lists (hom.CompileAtoms compiles them directly), partitioned in a single
// pass. The lists preserve t's deterministic enumeration order, so compiling
// a block's list is identical to compiling a materialized sub-instance of
// the same atoms; the shared Args stay valid for the lifetime of t.
func blocksWithAtoms(t *instance.Instance) ([][]instance.Value, [][]instance.Atom) {
	blks := blocks(t)
	idx := make(map[instance.Value]int) // null -> block index
	for i, block := range blks {
		for _, n := range block {
			idx[n] = i
		}
	}
	atoms := make([][]instance.Atom, len(blks))
	for _, a := range t.AtomsShared() {
		for _, v := range a.Args {
			if i, ok := idx[v]; ok {
				atoms[i] = append(atoms[i], a)
				break
			}
		}
	}
	return blks, atoms
}
