package score

import (
	"testing"
	"testing/quick"

	"repro/internal/hom"
	"repro/internal/instance"
)

func c(n string) instance.Value { return instance.Const(n) }
func nl(i int64) instance.Value { return instance.Null(i) }

func TestCoreDropsDominatedNull(t *testing.T) {
	ins := instance.FromAtoms(
		instance.NewAtom("E", c("a"), c("b")),
		instance.NewAtom("E", c("a"), nl(0)),
	)
	want := instance.FromAtoms(instance.NewAtom("E", c("a"), c("b")))
	for name, f := range map[string]func(*instance.Instance) *instance.Instance{
		"Core": Core, "CoreNaive": CoreNaive,
	} {
		got := f(ins)
		if !got.Equal(want) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

// The paper's Example 2.1: Core of the universal solutions is T3 (up to
// renaming of nulls); T2's core must be isomorphic to T3.
func TestCoreExample21(t *testing.T) {
	t2 := instance.FromAtoms(
		instance.NewAtom("E", c("a"), c("b")),
		instance.NewAtom("E", c("a"), nl(1)),
		instance.NewAtom("E", c("a"), nl(2)),
		instance.NewAtom("F", c("a"), nl(3)),
		instance.NewAtom("G", nl(3), nl(4)),
	)
	t3 := instance.FromAtoms(
		instance.NewAtom("E", c("a"), c("b")),
		instance.NewAtom("F", c("a"), nl(1)),
		instance.NewAtom("G", nl(1), nl(2)),
	)
	got := Core(t2)
	if !hom.Isomorphic(got, t3) {
		t.Fatalf("Core(T2) = %v, want ≅ %v", got, t3)
	}
	if !hom.Isomorphic(CoreNaive(t2), t3) {
		t.Fatalf("CoreNaive(T2) not isomorphic to T3")
	}
}

func TestCoreOfCoreIsIdentityShape(t *testing.T) {
	t3 := instance.FromAtoms(
		instance.NewAtom("E", c("a"), c("b")),
		instance.NewAtom("F", c("a"), nl(1)),
		instance.NewAtom("G", nl(1), nl(2)),
	)
	if !IsCore(t3) {
		t.Fatal("T3 is a core")
	}
	if !hom.Isomorphic(Core(t3), t3) {
		t.Fatal("core of a core must be itself")
	}
}

func TestCoreTwoDisjointNullEdges(t *testing.T) {
	// {E(_0,_1), E(_2,_3)} has core a single edge.
	ins := instance.FromAtoms(
		instance.NewAtom("E", nl(0), nl(1)),
		instance.NewAtom("E", nl(2), nl(3)),
	)
	got := Core(ins)
	if got.Len() != 1 {
		t.Fatalf("core of two disjoint null edges = %v", got)
	}
}

func TestCoreNullCycleOntoConstantLoop(t *testing.T) {
	ins := instance.FromAtoms(
		instance.NewAtom("E", c("a"), c("a")),
		instance.NewAtom("E", nl(0), nl(1)),
		instance.NewAtom("E", nl(1), nl(0)),
	)
	want := instance.FromAtoms(instance.NewAtom("E", c("a"), c("a")))
	if got := Core(ins); !got.Equal(want) {
		t.Fatalf("core = %v, want %v", got, want)
	}
}

func TestCoreKeepsRigidStructure(t *testing.T) {
	// A null 9-cycle with no constants retracts onto... nothing smaller with
	// the same odd girth except odd cycles; its core is the 9-cycle itself?
	// No: a 9-cycle has homs onto any odd cycle dividing structure? A hom
	// from C9 to C3 exists, but C3 is not a sub-instance of C9 — cores are
	// sub-instances, and C9 has no proper retract (it is a core).
	ins := instance.New()
	for i := int64(0); i < 9; i++ {
		ins.Add(instance.NewAtom("E", nl(i), nl((i+1)%9)))
	}
	got := Core(ins)
	if got.Len() != 9 {
		t.Fatalf("C9 is a core; got %d atoms", got.Len())
	}
}

func TestCoreAgreesNaiveVsBlocks(t *testing.T) {
	// Random-ish chase-like instances: star of blocks around constants.
	mk := func(seed int64) *instance.Instance {
		ins := instance.New()
		for i := int64(0); i < 5; i++ {
			a := c("a")
			if (seed>>uint(i))&1 == 1 {
				a = c("b")
			}
			ins.Add(instance.NewAtom("E", a, nl(2*i)))
			ins.Add(instance.NewAtom("F", nl(2*i), nl(2*i+1)))
		}
		ins.Add(instance.NewAtom("E", c("a"), c("b")))
		ins.Add(instance.NewAtom("F", c("b"), c("a")))
		return ins
	}
	for seed := int64(0); seed < 8; seed++ {
		ins := mk(seed)
		a, b := Core(ins), CoreNaive(ins)
		if !hom.Isomorphic(a, b) {
			t.Fatalf("seed %d: Core %v vs CoreNaive %v", seed, a, b)
		}
	}
}

func TestCorePreservesHomEquivalence(t *testing.T) {
	ins := instance.FromAtoms(
		instance.NewAtom("E", c("a"), nl(0)),
		instance.NewAtom("E", nl(0), nl(1)),
		instance.NewAtom("E", c("a"), nl(2)),
	)
	core := Core(ins)
	if !hom.HomEquivalent(ins, core) {
		t.Fatal("core must be hom-equivalent to the original")
	}
	if !IsCore(core) {
		t.Fatal("Core output must be a core")
	}
}

// Property: Core is idempotent and hom-equivalent to its input on random
// bipartite-ish instances.
func TestQuickCoreInvariants(t *testing.T) {
	f := func(edges []uint8) bool {
		ins := instance.New()
		ins.Add(instance.NewAtom("E", c("a"), c("b")))
		for i, e := range edges {
			if i >= 6 {
				break
			}
			u := instance.Value(nl(int64(e % 4)))
			v := instance.Value(nl(int64(e / 4 % 4)))
			ins.Add(instance.NewAtom("E", u, v))
		}
		core := Core(ins)
		return hom.HomEquivalent(ins, core) && IsCore(core) && hom.Isomorphic(Core(core), core)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Egd-merged blocks (the Gottlob–Nash concern): after an egd identifies
// nulls from different tgd firings, Gaifman blocks grow; the block-local
// core must still agree with the naive one.
func TestCoreAgreesAfterEgdMerges(t *testing.T) {
	// Shape: star around a merged hub null, plus redundant satellites.
	hub := nl(0)
	ins := instance.FromAtoms(
		instance.NewAtom("F", c("a"), hub),
		instance.NewAtom("G", hub, nl(1)),
		instance.NewAtom("G", hub, nl(2)),
		instance.NewAtom("G", hub, c("b")),
		instance.NewAtom("H", nl(1), nl(3)),
	)
	a, b := Core(ins), CoreNaive(ins)
	if !hom.Isomorphic(a, b) {
		t.Fatalf("Core %v vs CoreNaive %v", a, b)
	}
	if !hom.HomEquivalent(a, ins) {
		t.Fatal("core must stay hom-equivalent")
	}
	// G(hub,_1)+H(_1,_3) cannot retract onto G(hub,b) (no H from b), but
	// G(hub,_2) can retract onto G(hub,b) or G(hub,_1).
	if a.Len() != 4 {
		t.Fatalf("core = %v, want 4 atoms", a)
	}
}

func TestBlocksPartition(t *testing.T) {
	ins := instance.FromAtoms(
		instance.NewAtom("E", nl(0), nl(1)),
		instance.NewAtom("E", nl(2), c("a")),
		instance.NewAtom("E", nl(3), nl(0)),
	)
	bs := blocks(ins)
	if len(bs) != 2 {
		t.Fatalf("blocks = %v, want 2 components", bs)
	}
	sizes := map[int]bool{}
	for _, b := range bs {
		sizes[len(b)] = true
	}
	if !sizes[3] || !sizes[1] {
		t.Fatalf("component sizes wrong: %v", bs)
	}
}
