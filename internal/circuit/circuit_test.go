package circuit

import (
	"testing"

	"repro/internal/certain"
	"repro/internal/chase"
	"repro/internal/cwa"
	"repro/internal/parser"
)

func TestEvalBasics(t *testing.T) {
	c := &Circuit{Gates: []Gate{
		{Kind: Input, Value: true},
		{Kind: Input, Value: false},
		{Kind: Or, A: 0, B: 1},  // true
		{Kind: And, A: 1, B: 2}, // false
		{Kind: Or, A: 3, B: 0},  // true
	}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c.Eval() {
		t.Fatal("circuit evaluates to true")
	}
}

func TestValidateRejectsForwardEdges(t *testing.T) {
	c := &Circuit{Gates: []Gate{{Kind: And, A: 0, B: 0}}}
	if err := c.Validate(); err == nil {
		t.Fatal("self-reference must fail")
	}
}

func TestLadder(t *testing.T) {
	c := Ladder(5)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c.Eval() {
		t.Fatal("ladder of true inputs is true")
	}
}

// Proposition 7.8 shape: the certain answer of q() :- Out(g), True(g)
// under the full-tgd setting equals the circuit value.
func TestCertainAnswerEqualsCircuitValue(t *testing.T) {
	s := MCVPSetting()
	if !s.FullAndEgds() {
		t.Fatal("MCVP setting must be in the full+egds class")
	}
	q, err := parser.ParseCQ(OutputQuery().Text)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		c := Random(3, 6, seed)
		src, err := SourceInstance(c, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := certain.Answers(s, q, src, certain.CertainCap, certain.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if (got.Len() == 1) != c.Eval() {
			t.Errorf("seed %d: certain=%v but Eval=%v", seed, got.Len() == 1, c.Eval())
		}
	}
}

// Proposition 6.6 shape: with the clash egd, a CWA-solution exists iff the
// circuit evaluates to false.
func TestExistenceEqualsCircuitValue(t *testing.T) {
	s := ExistenceSetting()
	if !s.WeaklyAcyclic() {
		t.Fatal("existence setting must be weakly acyclic")
	}
	for seed := int64(20); seed < 40; seed++ {
		c := Random(3, 6, seed)
		src, err := SourceInstance(c, true)
		if err != nil {
			t.Fatal(err)
		}
		exists, err := cwa.Exists(s, src, chase.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if exists == c.Eval() {
			t.Errorf("seed %d: exists=%v but Eval=%v (must be complementary)", seed, exists, c.Eval())
		}
	}
}

// The full-tgd chase produces the exact least fixpoint of true gates.
func TestChaseComputesFixpoint(t *testing.T) {
	s := MCVPSetting()
	c := &Circuit{Gates: []Gate{
		{Kind: Input, Value: true},
		{Kind: Input, Value: false},
		{Kind: And, A: 0, B: 1}, // false
		{Kind: Or, A: 0, B: 2},  // true
	}}
	src, err := SourceInstance(c, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := chase.Standard(s, src, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Target.RelLen("True"); got != 2 { // g0 and g3
		t.Fatalf("true gates = %d, want 2 (%v)", got, res.Target)
	}
}

func TestRandomReproducible(t *testing.T) {
	a, b := Random(4, 8, 7), Random(4, 8, 7)
	if len(a.Gates) != len(b.Gates) {
		t.Fatal("shape mismatch")
	}
	for i := range a.Gates {
		if a.Gates[i] != b.Gates[i] {
			t.Fatal("same seed must give same circuit")
		}
	}
}
