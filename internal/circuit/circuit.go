// Package circuit implements monotone boolean circuits, a direct evaluator
// (the baseline), and the reduction from the Monotone Circuit Value Problem
// to data exchange that witnesses the PTIME-hardness claims of
// Proposition 6.6 (Existence-of-CWA-Solutions can be PTIME-hard) and
// Proposition 7.8 (certain answers of a conjunctive query under a full-tgd
// setting can be PTIME-hard).
//
// The reduction uses a fixed setting whose target dependencies are full
// tgds computing the set of true gates as a least fixpoint:
//
//	True(g) for every true input gate,
//	And(g,a,b) ∧ True(a) ∧ True(b) → True(g),
//	Or(g,a,b)  ∧ True(a)           → True(g),
//	Or(g,a,b)  ∧ True(b)           → True(g).
//
// The circuit evaluates to true iff the certain answer q() :- True(out)
// holds — and, for Proposition 6.6, iff no CWA-solution exists for the
// variant setting with an egd that clashes two constants when the output
// gate is true.
package circuit

import (
	"fmt"
	"math/rand"

	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/parser"
)

// GateKind distinguishes the node types of a monotone circuit.
type GateKind int

// Gate kinds.
const (
	Input GateKind = iota
	And
	Or
)

// Gate is one node; And/Or gates reference two earlier gates.
type Gate struct {
	Kind  GateKind
	Value bool // inputs only
	A, B  int  // operand indexes for And/Or
}

// Circuit is a monotone boolean circuit in topological order; the last gate
// is the output.
type Circuit struct {
	Gates []Gate
}

// Validate checks topological well-formedness.
func (c *Circuit) Validate() error {
	if len(c.Gates) == 0 {
		return fmt.Errorf("circuit: empty circuit")
	}
	for i, g := range c.Gates {
		if g.Kind == Input {
			continue
		}
		if g.A < 0 || g.A >= i || g.B < 0 || g.B >= i {
			return fmt.Errorf("circuit: gate %d references non-earlier operand", i)
		}
	}
	return nil
}

// Eval computes the circuit value directly — the baseline evaluator.
func (c *Circuit) Eval() bool {
	vals := make([]bool, len(c.Gates))
	for i, g := range c.Gates {
		switch g.Kind {
		case Input:
			vals[i] = g.Value
		case And:
			vals[i] = vals[g.A] && vals[g.B]
		case Or:
			vals[i] = vals[g.A] || vals[g.B]
		}
	}
	return vals[len(vals)-1]
}

// MCVPSetting returns the fixed full-tgd setting computing gate truth.
// Its s-t tgds are full and its target dependencies are full tgds, so it
// falls into Table 1's last row (everything PTIME).
func MCVPSetting() *dependency.Setting {
	s, err := parser.ParseSetting(`
source STrue/1, SAnd/3, SOr/3, SOut/1.
target True/1, AndG/3, OrG/3, Out/1.
st:
  st1: STrue(g) -> True(g).
  st2: SAnd(g,a,b) -> AndG(g,a,b).
  st3: SOr(g,a,b) -> OrG(g,a,b).
  st4: SOut(g) -> Out(g).
target-deps:
  t1: AndG(g,a,b) & True(a) & True(b) -> True(g).
  t2: OrG(g,a,b) & True(a) -> True(g).
  t3: OrG(g,a,b) & True(b) -> True(g).
`)
	if err != nil {
		panic("circuit: MCVP setting must parse: " + err.Error())
	}
	return s
}

// ExistenceSetting returns the Proposition 6.6 variant: it adds an egd that
// clashes two distinct constants as soon as the output gate is true, so a
// (CWA-)solution exists iff the circuit evaluates to false.
func ExistenceSetting() *dependency.Setting {
	s, err := parser.ParseSetting(`
source STrue/1, SAnd/3, SOr/3, SOut/1, SClash/2.
target True/1, AndG/3, OrG/3, Out/1, Clash/2.
st:
  st1: STrue(g) -> True(g).
  st2: SAnd(g,a,b) -> AndG(g,a,b).
  st3: SOr(g,a,b) -> OrG(g,a,b).
  st4: SOut(g) -> Out(g).
  st5: SClash(x,y) -> Clash(x,y).
target-deps:
  t1: AndG(g,a,b) & True(a) & True(b) -> True(g).
  t2: OrG(g,a,b) & True(a) -> True(g).
  t3: OrG(g,a,b) & True(b) -> True(g).
  e1: Out(g) & True(g) & Clash(x,y) -> x = y.
`)
	if err != nil {
		panic("circuit: existence setting must parse: " + err.Error())
	}
	return s
}

func gateName(i int) instance.Value { return instance.Const(fmt.Sprintf("g%d", i)) }

// SourceInstance encodes the circuit for either setting; withClash adds the
// SClash(0,1) fact used by ExistenceSetting.
func SourceInstance(c *Circuit, withClash bool) (*instance.Instance, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	src := instance.New()
	for i, g := range c.Gates {
		switch g.Kind {
		case Input:
			if g.Value {
				src.Add(instance.NewAtom("STrue", gateName(i)))
			}
		case And:
			src.Add(instance.NewAtom("SAnd", gateName(i), gateName(g.A), gateName(g.B)))
		case Or:
			src.Add(instance.NewAtom("SOr", gateName(i), gateName(g.A), gateName(g.B)))
		}
	}
	src.Add(instance.NewAtom("SOut", gateName(len(c.Gates)-1)))
	if withClash {
		src.Add(instance.NewAtom("SClash", instance.Const("0"), instance.Const("1")))
	}
	return src, nil
}

// OutputQuery returns the Boolean conjunctive query q() :- Out(g), True(g).
func OutputQuery() (q struct{ Text string }) {
	q.Text = "q() :- Out(g), True(g)."
	return q
}

// Random generates a random monotone circuit with the given number of
// inputs and internal gates, reproducibly from the seed.
func Random(inputs, gates int, seed int64) *Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := &Circuit{}
	for i := 0; i < inputs; i++ {
		c.Gates = append(c.Gates, Gate{Kind: Input, Value: rng.Intn(2) == 0})
	}
	for i := 0; i < gates; i++ {
		n := len(c.Gates)
		kind := And
		if rng.Intn(2) == 0 {
			kind = Or
		}
		c.Gates = append(c.Gates, Gate{Kind: kind, A: rng.Intn(n), B: rng.Intn(n)})
	}
	return c
}

// Ladder builds a deterministic alternating And/Or ladder of the given
// depth over two true inputs — a scaling family for benches whose value is
// always true.
func Ladder(depth int) *Circuit {
	c := &Circuit{Gates: []Gate{
		{Kind: Input, Value: true},
		{Kind: Input, Value: true},
	}}
	for i := 0; i < depth; i++ {
		n := len(c.Gates)
		kind := And
		if i%2 == 1 {
			kind = Or
		}
		c.Gates = append(c.Gates, Gate{Kind: kind, A: n - 1, B: n - 2})
	}
	return c
}
