package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Every record the store writes — WAL records, snapshot blocks, page files —
// is framed identically: an 8-byte header (payload length, CRC-32C of the
// payload, both little-endian u32) followed by the payload. The frame is the
// unit of integrity: a torn write fails the length or CRC check, never
// yields a partial payload.

const (
	frameHeaderLen = 8
	// maxFramePayload bounds a single payload; anything larger in a header
	// is corruption, not data.
	maxFramePayload = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTorn reports a frame that ends early or fails its checksum — the
// expected state of the last record after a crash mid-append.
type errTorn struct {
	off  int64
	what string
}

func (e *errTorn) Error() string {
	return fmt.Sprintf("store: torn or corrupt frame at offset %d (%s)", e.off, e.what)
}

// appendFrame frames payload onto buf.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// frameScanner streams frames off a file, tracking offsets so callers can
// record where each frame starts (for later ReadAt) and where the valid
// prefix ends (for truncation repair).
type frameScanner struct {
	r   *bufio.Reader
	off int64
}

func newFrameScanner(f *os.File) *frameScanner {
	return &frameScanner{r: bufio.NewReaderSize(f, 1<<16)}
}

// next returns the next frame's payload and starting offset. io.EOF means a
// clean end; *errTorn means the remaining bytes do not form a whole valid
// frame.
func (s *frameScanner) next() (payload []byte, start int64, err error) {
	start = s.off
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(s.r, hdr[:1]); err != nil {
		return nil, start, io.EOF // clean end (possibly zero-length file)
	}
	if _, err := io.ReadFull(s.r, hdr[1:]); err != nil {
		return nil, start, &errTorn{off: start, what: "header"}
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxFramePayload {
		return nil, start, &errTorn{off: start, what: "length"}
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(s.r, payload); err != nil {
		return nil, start, &errTorn{off: start, what: "payload"}
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, start, &errTorn{off: start, what: "checksum"}
	}
	s.off += frameHeaderLen + int64(n)
	return payload, start, nil
}

// readFrameAt reads and verifies one frame at the given offset of a file.
func readFrameAt(path string, off int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [frameHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return nil, &errTorn{off: off, what: "header"}
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxFramePayload {
		return nil, &errTorn{off: off, what: "length"}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(f, off+frameHeaderLen, int64(n)), payload); err != nil {
		return nil, &errTorn{off: off, what: "payload"}
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, &errTorn{off: off, what: "checksum"}
	}
	return payload, nil
}

// syncDir fsyncs a directory, making a preceding rename durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
