package store

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A snapshot file snap-<N>.snap captures the full catalog as of WAL segment
// N: replaying it and then the WAL records of segments >= N reconstructs
// the acknowledged state, so segments below N can be deleted. The file is a
// header frame (magic, covered-from segment, block count) followed by one
// frame per scenario block. It is written to a temp file and renamed, so a
// snapshot either exists completely or not at all; recovery additionally
// verifies every frame and falls back to the previous snapshot on any
// mismatch.

const snapMagic = "DXSNAP1"

func snapshotPath(dir string, seg uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016d.snap", seg))
}

// listSnapshots returns the snapshot segment numbers present in dir, newest
// first.
func listSnapshots(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, n)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] > segs[j] })
	return segs, nil
}

// snapWriter streams a snapshot file: header first, then blocks, then an
// fsynced rename into place.
type snapWriter struct {
	dir, tmp string
	seg      uint64
	f        *os.File
	w        *bufio.Writer
	off      int64
}

func newSnapWriter(dir string, seg uint64, count int) (*snapWriter, error) {
	tmp := snapshotPath(dir, seg) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	sw := &snapWriter{dir: dir, tmp: tmp, seg: seg, f: f, w: bufio.NewWriterSize(f, 1<<16)}
	hdr := appendUvarint([]byte(snapMagic), seg)
	hdr = appendUvarint(hdr, uint64(count))
	return sw, sw.writeFrame(hdr)
}

func (sw *snapWriter) writeFrame(payload []byte) error {
	frame := appendFrame(nil, payload)
	if _, err := sw.w.Write(frame); err != nil {
		return err
	}
	sw.off += int64(len(frame))
	return nil
}

// writeBlock appends one scenario block and returns the offset of its
// frame in the finished file.
func (sw *snapWriter) writeBlock(block []byte) (int64, error) {
	off := sw.off
	return off, sw.writeFrame(block)
}

// finish makes the snapshot durable and returns its final path.
func (sw *snapWriter) finish() (string, error) {
	if err := sw.w.Flush(); err != nil {
		sw.abort()
		return "", err
	}
	if err := sw.f.Sync(); err != nil {
		sw.abort()
		return "", err
	}
	if err := sw.f.Close(); err != nil {
		os.Remove(sw.tmp)
		return "", err
	}
	final := snapshotPath(sw.dir, sw.seg)
	if err := os.Rename(sw.tmp, final); err != nil {
		os.Remove(sw.tmp)
		return "", err
	}
	return final, syncDir(sw.dir)
}

func (sw *snapWriter) abort() {
	sw.f.Close()
	os.Remove(sw.tmp)
}

// scanSnapshot verifies and walks a snapshot file, handing each block's
// metadata, embedded pending batches, and frame offset to fn. Any framing
// or decoding failure aborts the scan — the caller falls back to an older
// snapshot.
func scanSnapshot(path string, fn func(m blockMeta, pending []MutBatch, frameOff int64)) (walSeg uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := newFrameScanner(f)
	hdr, _, err := sc.next()
	if err != nil {
		return 0, fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	if len(hdr) < len(snapMagic) || string(hdr[:len(snapMagic)]) != snapMagic {
		return 0, fmt.Errorf("store: snapshot %s: bad magic", path)
	}
	r := &reader{data: hdr, off: len(snapMagic)}
	if walSeg, err = r.uvarint("snapshot wal segment"); err != nil {
		return 0, err
	}
	count, err := r.uvarint("snapshot block count")
	if err != nil {
		return 0, err
	}
	for i := uint64(0); i < count; i++ {
		block, off, err := sc.next()
		if err != nil {
			return 0, fmt.Errorf("store: snapshot %s: block %d: %w", path, i, err)
		}
		m, pending, err := decodeBlockMeta(block)
		if err != nil {
			return 0, fmt.Errorf("store: snapshot %s: block %d: %w", path, i, err)
		}
		fn(m, pending, off)
	}
	return walSeg, nil
}
