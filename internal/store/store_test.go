package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/instance"
	"repro/internal/metrics"
)

func mkSource(n int) *instance.Instance {
	src := instance.New()
	for i := 0; i < n; i++ {
		src.Add(instance.NewAtom("R", instance.Const(fmt.Sprintf("a%d", i)), instance.Const(fmt.Sprintf("b%d", i))))
	}
	return src
}

// mkState builds a scenario state whose fixpoint extends the source with
// null-bearing derived atoms, like a real chase result.
func mkState(id string, n int) *State {
	src := mkSource(n)
	fix := src.Clone()
	for i, a := range src.Atoms() {
		fix.Add(instance.NewAtom("T", a.Args[0], instance.Null(int64(i))))
	}
	return &State{
		ID:          id,
		ContentID:   "content-" + id,
		SettingText: "source R/2.\ntarget T/2.\nst:\n  R(x,y) -> exists z : T(x,z).\n",
		InitVersion: src.Version(),
		Steps:       n,
		Source:      src,
		Fixpoint:    fix,
	}
}

func openT(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func assertState(t *testing.T, got, want *State) {
	t.Helper()
	if got.ID != want.ID || got.ContentID != want.ContentID || got.SettingText != want.SettingText ||
		got.InitVersion != want.InitVersion {
		t.Fatalf("metadata mismatch:\n got  %+v\n want %+v", got, want)
	}
	if !got.Source.Equal(want.Source) || got.Version() != want.Version() {
		t.Fatalf("source mismatch for %s: got v%d %v, want v%d %v",
			want.ID, got.Version(), got.Source.Atoms(), want.Version(), want.Source.Atoms())
	}
	if (got.Fixpoint == nil) != (want.Fixpoint == nil) {
		t.Fatalf("fixpoint presence mismatch for %s: got %v, want %v", want.ID, got.Fixpoint != nil, want.Fixpoint != nil)
	}
	if got.Fixpoint != nil && !got.Fixpoint.Equal(want.Fixpoint) {
		t.Fatalf("fixpoint mismatch for %s", want.ID)
	}
	if got.Fixpoint != nil && got.Steps != want.Steps {
		t.Fatalf("steps = %d, want %d", got.Steps, want.Steps)
	}
}

func TestRegisterRecover(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Fsync: SyncOff})
	states := make([]*State, 5)
	for i := range states {
		states[i] = mkState(fmt.Sprintf("s%d", i+1), i+1)
		if err := s.Register(states[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{Fsync: SyncOff})
	defer s2.Close()
	if got := s2.Stats().Scenarios; got != 5 {
		t.Fatalf("recovered %d scenarios, want 5", got)
	}
	if s2.Stats().Replayed != 5 {
		t.Fatalf("replayed %d records, want 5", s2.Stats().Replayed)
	}
	for _, want := range states {
		got, err := s2.Load(want.ID)
		if err != nil {
			t.Fatal(err)
		}
		assertState(t, got, want)
		meta, ok := s2.GetMeta(want.ID)
		if !ok || meta.ContentID != want.ContentID || meta.Version != want.Version() || meta.InitVersion != want.InitVersion {
			t.Fatalf("meta mismatch: %+v", meta)
		}
	}
}

// applyMuts mirrors what the server does: apply to the live source, then
// journal the batch with the resulting version.
func applyMuts(t *testing.T, s *Store, src *instance.Instance, id string, muts []instance.Mutation) {
	t.Helper()
	for _, m := range muts {
		if m.Insert {
			src.Add(m.Atom)
		} else {
			src.Remove(m.Atom)
		}
	}
	if err := s.Mutate(id, src.Version(), muts); err != nil {
		t.Fatal(err)
	}
}

func TestMutateRecover(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Fsync: SyncOff})
	st := mkState("s1", 3)
	mirror := st.Source.Clone()
	if err := s.Register(st); err != nil {
		t.Fatal(err)
	}
	applyMuts(t, s, mirror, "s1", []instance.Mutation{
		{Insert: true, Atom: instance.NewAtom("R", instance.Const("x"), instance.Const("y"))},
		{Insert: false, Atom: instance.NewAtom("R", instance.Const("a0"), instance.Const("b0"))},
	})
	applyMuts(t, s, mirror, "s1", []instance.Mutation{
		{Insert: true, Atom: instance.NewAtom("R", instance.Const("p"), instance.Const("q"))},
	})
	s.Close()

	s2 := openT(t, dir, Options{Fsync: SyncOff})
	defer s2.Close()
	got, err := s2.Load("s1")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Source.Equal(mirror) || got.Version() != mirror.Version() {
		t.Fatalf("recovered source v%d %v, want v%d %v", got.Version(), got.Source.Atoms(), mirror.Version(), mirror.Atoms())
	}
	if got.Fixpoint != nil {
		t.Fatal("fixpoint must be dropped when mutations were folded in")
	}
}

func TestDropRecover(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Fsync: SyncOff})
	s.Register(mkState("keep", 2))
	s.Register(mkState("gone", 2))
	if err := s.Drop("gone"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openT(t, dir, Options{Fsync: SyncOff})
	defer s2.Close()
	if s2.Has("gone") {
		t.Fatal("dropped scenario recovered")
	}
	if !s2.Has("keep") {
		t.Fatal("kept scenario lost")
	}
}

func TestSnapshotCompactsAndRecoversCleanly(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Fsync: SyncOff})
	st := mkState("s1", 3)
	mirror := st.Source.Clone()
	s.Register(st)
	s.Register(mkState("s2", 2))
	applyMuts(t, s, mirror, "s1", []instance.Mutation{
		{Insert: true, Atom: instance.NewAtom("R", instance.Const("x"), instance.Const("y"))},
	})
	if err := s.Snapshot(func(string) *State { return nil }); err != nil {
		t.Fatal(err)
	}
	// Compaction: only the fresh (empty) segment remains.
	segs, _ := listSegments(dir)
	if len(segs) != 1 {
		t.Fatalf("expected 1 WAL segment after compaction, found %v", segs)
	}
	// The catalog now refs the snapshot; loads must survive the deleted WAL.
	got, err := s.Load("s1")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Source.Equal(mirror) {
		t.Fatal("post-snapshot load diverged")
	}
	s.Close()

	s2 := openT(t, dir, Options{Fsync: SyncOff})
	defer s2.Close()
	if r := s2.Stats().Replayed; r != 0 {
		t.Fatalf("clean restart replayed %d WAL records, want 0", r)
	}
	got, err = s2.Load("s1")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Source.Equal(mirror) || got.Version() != mirror.Version() {
		t.Fatal("snapshot recovery diverged")
	}
	if got.Fixpoint != nil {
		t.Fatal("cold block's fixpoint predates the mutations; it must be dropped")
	}
	got2, err := s2.Load("s2")
	if err != nil {
		t.Fatal(err)
	}
	if got2.Fixpoint == nil {
		t.Fatal("unmutated scenario must keep its fixpoint through a byte-copied snapshot block")
	}
}

func TestSnapshotWithCaptureFoldsFixpoint(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Fsync: SyncOff})
	st := mkState("s1", 3)
	mirror := st.Source.Clone()
	s.Register(st)
	applyMuts(t, s, mirror, "s1", []instance.Mutation{
		{Insert: true, Atom: instance.NewAtom("R", instance.Const("x"), instance.Const("y"))},
	})
	// The server holds s1 resident: capture provides a fresh state with a
	// fixpoint matching the mutated source.
	fresh := &State{
		ID: "s1", ContentID: st.ContentID, SettingText: st.SettingText,
		InitVersion: st.InitVersion, Steps: 7,
		Source:   mirror.Clone(),
		Fixpoint: mirror.Clone(),
	}
	if err := s.Snapshot(func(id string) *State { return fresh }); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openT(t, dir, Options{Fsync: SyncOff})
	defer s2.Close()
	got, err := s2.Load("s1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Fixpoint == nil || got.Steps != 7 {
		t.Fatal("captured fixpoint lost across snapshot recovery")
	}
	if got.Version() != mirror.Version() {
		t.Fatalf("version %d, want %d", got.Version(), mirror.Version())
	}
}

func TestPageOutLoad(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Fsync: SyncOff})
	defer s.Close()
	st := mkState("s1", 3)
	mirror := st.Source.Clone()
	s.Register(st)
	applyMuts(t, s, mirror, "s1", []instance.Mutation{
		{Insert: true, Atom: instance.NewAtom("R", instance.Const("x"), instance.Const("y"))},
	})
	paged := &State{
		ID: "s1", ContentID: st.ContentID, SettingText: st.SettingText,
		InitVersion: st.InitVersion, Steps: 9,
		Source:   mirror.Clone(),
		Fixpoint: mirror.Clone(),
	}
	if err := s.PageOut(paged); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("s1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Fixpoint == nil || got.Steps != 9 {
		t.Fatal("page-in lost the paged fixpoint")
	}
	if err := s.Drop("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("s1"); err == nil {
		t.Fatal("load after drop succeeded")
	}
	pages, _ := os.ReadDir(filepath.Join(dir, "pages"))
	if len(pages) != 0 {
		t.Fatalf("page file survived drop: %v", pages)
	}
}

// lastSegment returns the path and size of the highest-numbered WAL
// segment.
func lastSegment(t *testing.T, dir string) (string, int64) {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments: %v", err)
	}
	p := segmentPath(dir, segs[len(segs)-1])
	fi, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, fi.Size()
}

// TestCrashTornTail simulates kill -9 mid-append: the last WAL record is
// cut short. Recovery must keep every record before it and truncate the
// tail, and the repaired log must accept new appends.
func TestCrashTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Fsync: SyncOff})
	s.Register(mkState("s1", 2))
	s.Register(mkState("s2", 2))
	_, mid := lastSegment(t, dir)
	s.Register(mkState("s3", 2))
	// Abandon s without Close (the crash); cut the third record in half.
	p, end := lastSegment(t, dir)
	if err := os.Truncate(p, mid+(end-mid)/2); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{Fsync: SyncOff})
	if s2.Has("s3") {
		t.Fatal("half-written registration recovered")
	}
	for _, id := range []string{"s1", "s2"} {
		if _, err := s2.Load(id); err != nil {
			t.Fatalf("load %s: %v", id, err)
		}
	}
	// The repaired log keeps working across another restart.
	if err := s2.Register(mkState("s4", 1)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openT(t, dir, Options{Fsync: SyncOff})
	defer s3.Close()
	for _, id := range []string{"s1", "s2", "s4"} {
		if _, err := s3.Load(id); err != nil {
			t.Fatalf("after repair, load %s: %v", id, err)
		}
	}
}

// TestCrashCorruptTail flips bytes in the last record (a partial overwrite
// rather than a truncation) — the CRC must reject it.
func TestCrashCorruptTail(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Fsync: SyncOff})
	s.Register(mkState("s1", 2))
	_, mid := lastSegment(t, dir)
	s.Register(mkState("s2", 2))
	p, end := lastSegment(t, dir)
	f, err := os.OpenFile(p, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef}, mid+(end-mid)/2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openT(t, dir, Options{Fsync: SyncOff})
	defer s2.Close()
	if s2.Has("s2") {
		t.Fatal("corrupt registration recovered")
	}
	if _, err := s2.Load("s1"); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMidSnapshot simulates a crash while a snapshot temp file was
// being written: the temp file must be discarded and recovery must come
// from the WAL (plus any previous snapshot) alone.
func TestCrashMidSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Fsync: SyncOff})
	st := mkState("s1", 3)
	mirror := st.Source.Clone()
	s.Register(st)
	applyMuts(t, s, mirror, "s1", []instance.Mutation{
		{Insert: true, Atom: instance.NewAtom("R", instance.Const("x"), instance.Const("y"))},
	})
	// The "crash": a half-written snapshot temp file left behind.
	tmp := snapshotPath(dir, 99) + ".tmp"
	if err := os.WriteFile(tmp, []byte("partial snapshot garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{Fsync: SyncOff})
	defer s2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("snapshot temp file survived recovery")
	}
	got, err := s2.Load("s1")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Source.Equal(mirror) || got.Version() != mirror.Version() {
		t.Fatal("recovery diverged after aborted snapshot")
	}
}

// TestSegmentRotation drives appends through a tiny segment limit and
// verifies multi-segment recovery.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Fsync: SyncOff, SegmentBytes: 256})
	states := make([]*State, 8)
	for i := range states {
		states[i] = mkState(fmt.Sprintf("s%d", i+1), 2)
		if err := s.Register(states[i]); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("expected rotation, found segments %v", segs)
	}
	s.Close()
	s2 := openT(t, dir, Options{Fsync: SyncOff, SegmentBytes: 256})
	defer s2.Close()
	for _, want := range states {
		got, err := s2.Load(want.ID)
		if err != nil {
			t.Fatal(err)
		}
		assertState(t, got, want)
	}
}

// TestReRegisterAfterDrop: WAL replay must honor record order — a register
// after a drop of the same id wins.
func TestReRegisterAfterDrop(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Fsync: SyncOff})
	s.Register(mkState("s1", 2))
	s.Drop("s1")
	want := mkState("s1", 4)
	s.Register(want)
	s.Close()

	s2 := openT(t, dir, Options{Fsync: SyncOff})
	defer s2.Close()
	got, err := s2.Load("s1")
	if err != nil {
		t.Fatal(err)
	}
	assertState(t, got, want)
}

func TestFsyncModes(t *testing.T) {
	for _, mode := range []SyncMode{SyncAlways, SyncInterval, SyncOff} {
		dir := t.TempDir()
		s := openT(t, dir, Options{Fsync: mode, FsyncInterval: time.Millisecond})
		if err := s.Register(mkState("s1", 2)); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		s.Close()
		s2 := openT(t, dir, Options{Fsync: mode})
		if !s2.Has("s1") {
			t.Fatalf("mode %d lost an acknowledged registration across clean restart", mode)
		}
		s2.Close()
	}
}

func TestParseSyncMode(t *testing.T) {
	for in, want := range map[string]SyncMode{"always": SyncAlways, "interval": SyncInterval, "off": SyncOff} {
		got, err := ParseSyncMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncMode("sometimes"); err == nil {
		t.Fatal("invalid mode accepted")
	}
}

// TestGroupCommitConcurrentDurable hammers the WAL with concurrent
// registrations and mutations under SyncAlways and verifies (a) every
// acknowledged record survives a crash-style reopen and (b) group commit
// actually batched: the run issued fewer fsyncs than appends.
func TestGroupCommitConcurrentDurable(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Fsync: SyncAlways})
	before := metrics.Read()

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("s-%d-%d", g, i)
				if err := s.Register(mkState(id, 2)); err != nil {
					t.Errorf("register %s: %v", id, err)
					return
				}
				muts := []instance.Mutation{{Insert: true, Atom: instance.NewAtom("R", instance.Const(id), instance.Const("x"))}}
				if err := s.Mutate(id, 3, muts); err != nil {
					t.Errorf("mutate %s: %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	d := metrics.Read().Diff(before)
	if d["store_wal_fsyncs"] > d["store_wal_appends"] {
		t.Fatalf("fsyncs (%d) exceed appends (%d)", d["store_wal_fsyncs"], d["store_wal_appends"])
	}
	if d["store_wal_fsyncs"] <= 0 {
		t.Fatalf("no fsyncs recorded under SyncAlways")
	}
	t.Logf("group commit: %d appends, %d fsyncs", d["store_wal_appends"], d["store_wal_fsyncs"])

	// Crash-style: reopen without Close — every acknowledged record must be
	// in the recovered catalog at its post-mutation version.
	s2 := openT(t, dir, Options{Fsync: SyncOff})
	defer s2.Close()
	if got := s2.Stats().Scenarios; got != workers*perWorker {
		t.Fatalf("recovered %d scenarios, want %d", got, workers*perWorker)
	}
	for g := 0; g < workers; g++ {
		for i := 0; i < perWorker; i++ {
			id := fmt.Sprintf("s-%d-%d", g, i)
			meta, ok := s2.GetMeta(id)
			if !ok || meta.Version != 3 {
				t.Fatalf("scenario %s recovered to %+v (ok=%v), want version 3", id, meta, ok)
			}
		}
	}
	s.Close()
}
