package store

// Durability benchmarks for BENCH_8.json: cold-start recovery over a
// 10k-scenario catalog (WAL-only and snapshot-backed), and the page-in
// path a query pays for a cold scenario. The catalog holds metadata only —
// recovery never decodes an instance — which these numbers demonstrate.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/genwl"
	"repro/internal/instance"
	"repro/internal/parser"
)

const benchScenarios = 10_000

// mkGenwlState fabricates the durable form of one chased genwl
// existential-chain scenario: a small distinct source and the chain
// fixpoint it would chase to (nulls included), without paying 10k chases
// in benchmark setup.
func mkGenwlState(settingText string, i int) *State {
	src := instance.New()
	a := instance.Const(fmt.Sprintf("a%d", i))
	b := instance.Const(fmt.Sprintf("b%d", i))
	c := instance.Const(fmt.Sprintf("c%d", i))
	src.Add(instance.NewAtom("R0", a, b))
	src.Add(instance.NewAtom("R0", b, c))
	fix := src.Clone()
	null := int64(0)
	for _, row := range [][2]instance.Value{{a, b}, {b, c}} {
		prev := row[1]
		fix.Add(instance.NewAtom("T1", row[0], row[1]))
		for d := 2; d <= 3; d++ {
			next := instance.Null(null)
			null++
			fix.Add(instance.NewAtom(fmt.Sprintf("T%d", d), prev, next))
			prev = next
		}
	}
	return &State{
		ID:          fmt.Sprintf("s%d", i+1),
		ContentID:   fmt.Sprintf("genwl-%08d", i),
		SettingText: settingText,
		InitVersion: src.Version(),
		Steps:       fix.Len() - src.Len(),
		Source:      src,
		Fixpoint:    fix,
	}
}

// seedBenchStore registers benchScenarios scenarios into dir and returns
// the store still open.
func seedBenchStore(b *testing.B, dir string) *Store {
	b.Helper()
	settingText := parser.FormatSetting(genwl.WeaklyAcyclicChain(3))
	s, err := Open(dir, Options{Fsync: SyncOff})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchScenarios; i++ {
		if err := s.Register(mkGenwlState(settingText, i)); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkColdStart10kWAL measures boot recovery when the whole catalog
// lives in WAL registration records (the worst case: crash before any
// snapshot).
func BenchmarkColdStart10kWAL(b *testing.B) {
	dir := b.TempDir()
	seedBenchStore(b, dir).Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, Options{Fsync: SyncOff})
		if err != nil {
			b.Fatal(err)
		}
		if s.Stats().Scenarios != benchScenarios {
			b.Fatalf("recovered %d scenarios", s.Stats().Scenarios)
		}
		s.Close()
	}
	b.ReportMetric(benchScenarios, "scenarios")
}

// BenchmarkColdStart10kSnapshot measures boot recovery from a snapshot
// (the steady state after a clean shutdown: zero WAL records to replay).
func BenchmarkColdStart10kSnapshot(b *testing.B) {
	dir := b.TempDir()
	s := seedBenchStore(b, dir)
	if err := s.Snapshot(func(string) *State { return nil }); err != nil {
		b.Fatal(err)
	}
	s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, Options{Fsync: SyncOff})
		if err != nil {
			b.Fatal(err)
		}
		if st := s.Stats(); st.Scenarios != benchScenarios || st.Replayed != 0 {
			b.Fatalf("recovered %d scenarios, %d replayed", st.Scenarios, st.Replayed)
		}
		s.Close()
	}
	b.ReportMetric(benchScenarios, "scenarios")
}

// BenchmarkLoadCold is the disk half of a paged query: read and decode one
// scenario's full state (source + fixpoint) out of a 10k snapshot.
func BenchmarkLoadCold(b *testing.B) {
	dir := b.TempDir()
	s := seedBenchStore(b, dir)
	if err := s.Snapshot(func(string) *State { return nil }); err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := s.Load(fmt.Sprintf("s%d", i%benchScenarios+1))
		if err != nil {
			b.Fatal(err)
		}
		if st.Fixpoint == nil {
			b.Fatal("fixpoint lost")
		}
	}
}

// BenchmarkWALAppendFsyncAlways measures the durability cost concurrent
// mutation batches pay under -fsync always. With one goroutine every append
// pays its own disk sync; with many, group commit lets concurrent appends
// share one fsync, so per-op cost should fall roughly with the goroutine
// count instead of staying flat.
func BenchmarkWALAppendFsyncAlways(b *testing.B) {
	for _, par := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", par), func(b *testing.B) {
			dir := b.TempDir()
			s, err := Open(dir, Options{Fsync: SyncAlways})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			settingText := parser.FormatSetting(genwl.WeaklyAcyclicChain(3))
			if err := s.Register(mkGenwlState(settingText, 0)); err != nil {
				b.Fatal(err)
			}
			muts := []instance.Mutation{{Insert: true, Atom: instance.NewAtom("R0", instance.Const("x"), instance.Const("y"))}}
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < par; g++ {
				n := b.N / par
				if g < b.N%par {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						// endVersion 0 never outruns the registration blob, so
						// the catalog's pending list stays flat and the measured
						// work is exactly the encode + framed write + sync.
						if err := s.Mutate("s1", 0, muts); err != nil {
							b.Error(err)
							return
						}
					}
				}(n)
			}
			wg.Wait()
		})
	}
}

// BenchmarkWALAppendRegister is the durability cost a registration pays
// before its 2xx (fsync off — the encode and write, not the disk sync).
func BenchmarkWALAppendRegister(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{Fsync: SyncOff})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	settingText := parser.FormatSetting(genwl.WeaklyAcyclicChain(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Register(mkGenwlState(settingText, i)); err != nil {
			b.Fatal(err)
		}
	}
}
