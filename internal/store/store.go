// Package store is dxserver's durable scenario store: a pure-Go
// log-structured persistence layer with a write-ahead log, snapshots,
// crash recovery, and disk/RAM paging of scenario state.
//
// The durability contract is append-before-acknowledge: the server appends
// a registration, mutation batch, or drop to the WAL before sending the
// HTTP 2xx, so under -fsync always every acknowledged request survives a
// crash (interval/off trade the fsync for a bounded/unbounded loss window —
// but never of a clean process kill, which leaves the page cache intact).
//
// On disk a store directory holds numbered WAL segments (wal-N.log),
// at most a few snapshots (snap-N.snap, where N is the first WAL segment
// the snapshot does NOT cover), and a pages/ directory of per-scenario
// page files. Every record in every file is CRC-framed. Snapshots are
// written to a temp file and renamed; after a snapshot at segment N is
// durable, segments below N and older snapshots are deleted (compaction).
//
// The in-RAM catalog is deliberately small — per scenario: identity
// metadata, the acknowledged version, the disk location of the latest full
// state block, and the decoded mutation batches newer than that block.
// Instances live on disk until Load decodes them, which is what makes the
// registered-scenario count disk-bounded rather than RAM-bounded.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/instance"
	"repro/internal/metrics"
)

// Options configures a store.
type Options struct {
	// Fsync is the WAL sync mode (default SyncAlways).
	Fsync SyncMode
	// FsyncInterval is the background sync period under SyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes rotates the WAL when a segment exceeds this size
	// (default 64 MiB).
	SegmentBytes int64
}

// ref locates one CRC-framed record on disk. WAL frames carry a leading
// record-type byte before the block; snapshot and page frames are bare
// blocks.
type ref struct {
	path string
	off  int64
	wal  bool
}

// entry is the catalog's in-RAM knowledge of one scenario. version is the
// acknowledged source version; blob+pending reconstruct it: the block at
// blob holds the state at blobVersion, and pending lists every
// acknowledged batch after it in order.
type entry struct {
	id          string
	contentID   string
	initVersion uint64
	version     uint64
	blobVersion uint64
	blob        ref
	pending     []MutBatch
}

// Meta is the catalog metadata the server can read without touching disk.
type Meta struct {
	ID          string
	ContentID   string
	InitVersion uint64
	Version     uint64
}

// Stats summarizes the store for /healthz and /metricsz.
type Stats struct {
	// Scenarios is the catalog size (resident or not).
	Scenarios int
	// Replayed is the number of WAL records replayed at boot; 0 after a
	// clean shutdown.
	Replayed int
	// WALSegment is the segment currently appended to.
	WALSegment uint64
	// Recovering reports that boot-time rehydration is still running.
	Recovering bool
}

// Store is the durable scenario store. All methods are safe for concurrent
// use.
type Store struct {
	dir  string
	opts Options

	mu  sync.Mutex
	w   *wal
	cat map[string]*entry

	// snapMu serializes snapshots (writing, ref rewriting, compaction).
	snapMu sync.Mutex

	replayed   int
	recovering atomic.Bool
	closed     atomic.Bool
}

// Open opens (or initializes) the store in dir and recovers the catalog:
// load the newest valid snapshot, replay the WAL tail, repair a torn tail.
// Instances are not decoded — recovery cost is one sequential read of the
// snapshot and WAL, independent of scenario sizes.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 20
	}
	if err := os.MkdirAll(filepath.Join(dir, "pages"), 0o755); err != nil {
		return nil, err
	}
	// A crash can leave a half-written snapshot temp file; it was never
	// renamed, so it was never authoritative.
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	for _, t := range tmps {
		os.Remove(t)
	}

	s := &Store{dir: dir, opts: opts, cat: make(map[string]*entry)}

	// Newest valid snapshot wins; a corrupt one falls back to its
	// predecessor (whose WAL segments may be gone — recovery is then
	// best-effort, which is still strictly better than refusing to start).
	var fromSeg uint64
	var chosenSnap string
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, err
	}
	for _, n := range snaps {
		path := snapshotPath(dir, n)
		cat := make(map[string]*entry)
		walSeg, err := scanSnapshot(path, func(m blockMeta, pending []MutBatch, off int64) {
			cat[m.ID] = entryFromMeta(m, pending, ref{path: path, off: off})
		})
		if err != nil {
			continue
		}
		s.cat, fromSeg, chosenSnap = cat, walSeg, path
		break
	}

	seg, size, err := scanWAL(dir, fromSeg, func(seg uint64, off int64, payload []byte) {
		s.applyRecord(segmentPath(dir, seg), off, payload)
		s.replayed++
	})
	if err != nil {
		return nil, err
	}
	metrics.StoreRecoveryReplayed.Add(int64(s.replayed))

	w, err := openWAL(dir, seg, size, opts.Fsync, opts.FsyncInterval, opts.SegmentBytes)
	if err != nil {
		return nil, err
	}
	s.w = w

	// Compaction debris: a crash between snapshot rename and cleanup
	// leaves covered segments and older snapshots behind.
	segs, _ := listSegments(dir)
	for _, n := range segs {
		if n < fromSeg {
			os.Remove(segmentPath(dir, n))
		}
	}
	for _, n := range snaps {
		if p := snapshotPath(dir, n); chosenSnap != "" && p != chosenSnap {
			os.Remove(p)
		}
	}
	s.cleanOrphanPages()
	return s, nil
}

func entryFromMeta(m blockMeta, pending []MutBatch, r ref) *entry {
	e := &entry{
		id:          m.ID,
		contentID:   m.ContentID,
		initVersion: m.InitVersion,
		version:     m.Version,
		blobVersion: m.Version,
		blob:        r,
		pending:     pending,
	}
	for _, b := range pending {
		if b.EndVersion > e.version {
			e.version = b.EndVersion
		}
	}
	return e
}

// applyRecord replays one WAL record into the catalog. Replay is
// idempotent-by-construction against snapshot overlap: a register
// overwrites (the record and the snapshot block describe the same state),
// and mutate batches at or below the blob's version are skipped — the blob
// already folded them in.
func (s *Store) applyRecord(path string, off int64, payload []byte) {
	if len(payload) == 0 {
		return
	}
	switch payload[0] {
	case recRegister:
		m, pending, err := decodeBlockMeta(payload[1:])
		if err != nil {
			return // unreadable record: skip, the frame CRC already passed
		}
		s.cat[m.ID] = entryFromMeta(m, pending, ref{path: path, off: off, wal: true})
	case recMutate:
		id, endVersion, muts, err := decodeMutateRecord(payload[1:])
		if err != nil {
			return
		}
		e := s.cat[id]
		if e == nil || endVersion <= e.blobVersion {
			return
		}
		e.pending = append(e.pending, MutBatch{EndVersion: endVersion, Muts: muts})
		if endVersion > e.version {
			e.version = endVersion
		}
	case recDrop:
		r := &reader{data: payload[1:]}
		id, err := r.str("drop id")
		if err != nil {
			return
		}
		delete(s.cat, id)
	}
}

// Register journals a newly registered scenario. It must be called before
// the registration is acknowledged; an error means the scenario is not
// durable and must not be admitted. The WAL write happens under the store
// lock; the fsync (under SyncAlways) is group-committed outside it, so
// concurrent registrations share disk syncs.
func (s *Store) Register(st *State) error {
	payload := append([]byte{recRegister}, encodeBlock(nil, st, nil)...)
	s.mu.Lock()
	r, end, err := s.w.append(payload)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.cat[st.ID] = &entry{
		id:          st.ID,
		contentID:   st.ContentID,
		initVersion: st.InitVersion,
		version:     st.Version(),
		blobVersion: st.Version(),
		blob:        r,
	}
	s.mu.Unlock()
	return s.w.commit(end)
}

// Mutate journals an applied mutation batch (as submitted, with the source
// version it produced). Must be called before the mutation is acknowledged;
// like Register, the fsync is group-committed outside the store lock.
func (s *Store) Mutate(id string, endVersion uint64, muts []instance.Mutation) error {
	payload := encodeMutateRecord(id, endVersion, muts)
	s.mu.Lock()
	_, end, err := s.w.append(payload)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if e := s.cat[id]; e != nil && endVersion > e.blobVersion {
		e.pending = append(e.pending, MutBatch{EndVersion: endVersion, Muts: muts})
		if endVersion > e.version {
			e.version = endVersion
		}
	}
	s.mu.Unlock()
	return s.w.commit(end)
}

// Drop journals a scenario deletion and forgets it.
func (s *Store) Drop(id string) error {
	payload := appendString([]byte{recDrop}, id)
	s.mu.Lock()
	_, end, err := s.w.append(payload)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	delete(s.cat, id)
	s.mu.Unlock()
	if err := s.w.commit(end); err != nil {
		return err
	}
	os.Remove(s.pagePath(id))
	return nil
}

// PageOut writes a scenario's full state (fixpoint included) to its page
// file and points the catalog at it, so a later Load skips the re-chase.
// Page files are a cache, not a durability mechanism: they are not fsynced
// and recovery never reads them — the WAL/snapshot chain alone carries the
// acknowledged state.
func (s *Store) PageOut(st *State) error {
	block := encodeBlock(nil, st, nil)
	path := s.pagePath(st.ID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, appendFrame(nil, block), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.cat[st.ID]
	if e == nil {
		// Dropped while paging out; the page file is orphaned but harmless
		// (Drop already tried to remove it — remove again to be tidy).
		os.Remove(path)
		return nil
	}
	if st.Version() < e.blobVersion {
		return nil // a fresher blob already exists; keep it
	}
	e.blob = ref{path: path, off: 0}
	e.blobVersion = st.Version()
	e.pending = pendingAfter(e.pending, e.blobVersion)
	metrics.StorePageOuts.Inc()
	return nil
}

func pendingAfter(pending []MutBatch, version uint64) []MutBatch {
	out := pending[:0:0]
	for _, b := range pending {
		if b.EndVersion > version {
			out = append(out, b)
		}
	}
	return out
}

// Load reads a scenario's state back from disk: decode the latest full
// block and fold in the acknowledged mutation batches recorded after it.
// When batches had to be folded in, the block's fixpoint no longer matches
// the source and is dropped — the caller re-chases.
func (s *Store) Load(id string) (*State, error) {
	s.mu.Lock()
	e := s.cat[id]
	if e == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: unknown scenario %q", id)
	}
	blob := e.blob
	want := e.version
	pending := append([]MutBatch(nil), e.pending...)
	s.mu.Unlock()

	payload, err := readFrameAt(blob.path, blob.off)
	if err != nil {
		return nil, fmt.Errorf("store: loading %q: %w", id, err)
	}
	if blob.wal {
		if len(payload) == 0 || payload[0] != recRegister {
			return nil, fmt.Errorf("store: loading %q: not a registration record", id)
		}
		payload = payload[1:]
	}
	st, _, err := decodeBlock(payload)
	if err != nil {
		return nil, fmt.Errorf("store: loading %q: %w", id, err)
	}
	if st.ID != id {
		return nil, fmt.Errorf("store: loading %q: block belongs to %q", id, st.ID)
	}
	folded := false
	for _, b := range pending {
		if b.EndVersion <= st.Version() {
			continue
		}
		for _, m := range b.Muts {
			if m.Insert {
				st.Source.Add(m.Atom)
			} else {
				st.Source.Remove(m.Atom)
			}
		}
		folded = true
	}
	if folded {
		st.Fixpoint, st.Steps = nil, 0
	}
	if st.Version() != want {
		return nil, fmt.Errorf("store: scenario %q recovered to version %d, want %d", id, st.Version(), want)
	}
	metrics.StorePageIns.Inc()
	return st, nil
}

// Snapshot writes a full-catalog snapshot and compacts the WAL behind it.
// capture returns the live state for scenarios the server holds resident
// (folding in their current fixpoint) and nil for the rest, whose existing
// blocks are re-emitted by byte copy, pending batches spliced in — no
// instance decoding.
//
// Concurrent appends are safe: the WAL is rotated first, so everything
// acknowledged after the capture point lands in segments the snapshot does
// not claim to cover, and replay against the snapshot is idempotent.
func (s *Store) Snapshot(capture func(id string) *State) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	s.mu.Lock()
	newSeg, err := s.w.rotate()
	if err != nil {
		s.mu.Unlock()
		return err
	}
	type item struct {
		id      string
		blob    ref
		pending []MutBatch
	}
	items := make([]item, 0, len(s.cat))
	for id, e := range s.cat {
		items = append(items, item{id: id, blob: e.blob, pending: append([]MutBatch(nil), e.pending...)})
	}
	s.mu.Unlock()
	sort.Slice(items, func(i, j int) bool { return items[i].id < items[j].id })

	sw, err := newSnapWriter(s.dir, newSeg, len(items))
	if err != nil {
		return err
	}
	type rewrite struct {
		id   string
		was  ref
		now  ref
		bver uint64
	}
	rewrites := make([]rewrite, 0, len(items))
	for _, it := range items {
		var block []byte
		var bver uint64
		if st := capture(it.id); st != nil {
			block = encodeBlock(nil, st, nil)
			bver = st.Version()
		} else {
			payload, err := readFrameAt(it.blob.path, it.blob.off)
			if err != nil {
				sw.abort()
				return fmt.Errorf("store: snapshotting %q: %w", it.id, err)
			}
			if it.blob.wal {
				payload = payload[1:]
			}
			m, _, err := decodeBlockMeta(payload)
			if err != nil {
				sw.abort()
				return fmt.Errorf("store: snapshotting %q: %w", it.id, err)
			}
			block = splicePending(payload, m, pendingAfter(it.pending, m.Version))
			bver = m.Version
		}
		off, err := sw.writeBlock(block)
		if err != nil {
			sw.abort()
			return err
		}
		rewrites = append(rewrites, rewrite{id: it.id, was: it.blob, bver: bver, now: ref{off: off}})
	}
	final, err := sw.finish()
	if err != nil {
		return err
	}
	metrics.StoreSnapshots.Inc()

	// Point the catalog at the new snapshot before deleting the files the
	// old refs lived in. An entry whose blob changed mid-snapshot (a
	// concurrent register or page-out) keeps its fresher ref — those point
	// at files compaction does not touch.
	s.mu.Lock()
	for _, rw := range rewrites {
		e := s.cat[rw.id]
		if e == nil || e.blob != rw.was {
			continue
		}
		e.blob = ref{path: final, off: rw.now.off}
		e.blobVersion = rw.bver
		e.pending = pendingAfter(e.pending, rw.bver)
	}
	s.mu.Unlock()

	segs, _ := listSegments(s.dir)
	for _, n := range segs {
		if n < newSeg {
			os.Remove(segmentPath(s.dir, n))
		}
	}
	snaps, _ := listSnapshots(s.dir)
	for _, n := range snaps {
		if n != newSeg {
			os.Remove(snapshotPath(s.dir, n))
		}
	}
	return nil
}

// Flush forces WAL durability regardless of sync mode (used at drain).
func (s *Store) Flush() error { return s.w.sync() }

// Close flushes and closes the WAL. The catalog stays readable (Stats,
// Has); appends fail.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	return s.w.close()
}

// Has reports whether the scenario is in the catalog.
func (s *Store) Has(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cat[id] != nil
}

// GetMeta returns a scenario's catalog metadata without touching disk.
func (s *Store) GetMeta(id string) (Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.cat[id]
	if e == nil {
		return Meta{}, false
	}
	return Meta{ID: e.id, ContentID: e.contentID, InitVersion: e.initVersion, Version: e.version}, true
}

// IDs returns every cataloged scenario id, sorted.
func (s *Store) IDs() []string {
	s.mu.Lock()
	ids := make([]string, 0, len(s.cat))
	for id := range s.cat {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// Stats returns the store's health summary.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	n := len(s.cat)
	var seg uint64
	if s.w != nil {
		s.w.mu.Lock()
		seg = s.w.seg
		s.w.mu.Unlock()
	}
	s.mu.Unlock()
	return Stats{Scenarios: n, Replayed: s.replayed, WALSegment: seg, Recovering: s.recovering.Load()}
}

// SetRecovering flips the recovery-in-progress flag the server exposes on
// /healthz while it rehydrates scenarios after boot.
func (s *Store) SetRecovering(v bool) { s.recovering.Store(v) }

// Recovering reports whether boot-time rehydration is still running.
func (s *Store) Recovering() bool { return s.recovering.Load() }

func (s *Store) pagePath(id string) string {
	sum := sha256.Sum256([]byte(id))
	return filepath.Join(s.dir, "pages", hex.EncodeToString(sum[:12])+".page")
}

// cleanOrphanPages removes page files for scenarios no longer cataloged.
func (s *Store) cleanOrphanPages() {
	live := make(map[string]bool, len(s.cat))
	for id := range s.cat {
		live[filepath.Base(s.pagePath(id))] = true
	}
	ents, err := os.ReadDir(filepath.Join(s.dir, "pages"))
	if err != nil {
		return
	}
	for _, e := range ents {
		if !live[e.Name()] || strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(s.dir, "pages", e.Name()))
		}
	}
}
