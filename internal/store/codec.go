package store

import (
	"encoding/binary"
	"fmt"

	"repro/internal/instance"
)

// State is the full durable form of one scenario: everything the server
// needs to reconstruct it without re-parsing user input or re-chasing.
// The same block encoding carries it in WAL registration records, snapshot
// blocks, and page files.
type State struct {
	ID          string
	ContentID   string
	SettingText string // canonical form; re-parsed at rehydration
	InitVersion uint64 // source version at registration (pristine == current)
	// Steps is the lifetime chase-step count behind Fixpoint; 0 without one.
	Steps int
	// Source is the current source instance; its Version() is the
	// scenario's acknowledged version.
	Source *instance.Instance
	// Fixpoint is the chase fixpoint over σ ∪ τ when a clean one existed at
	// capture time, nil otherwise (recovery then re-chases Source).
	Fixpoint *instance.Instance
}

// Version returns the source version this state represents.
func (st *State) Version() uint64 { return st.Source.Version() }

// MutBatch is one acknowledged mutation batch: the submitted mutations and
// the source version after applying them. Replaying batches in order onto
// the state they followed reproduces exactly the acknowledged source.
type MutBatch struct {
	EndVersion uint64
	Muts       []instance.Mutation
}

// blockMagic versions the block encoding: header, pending batches, then the
// instances — metadata first so recovery can catalog a block without
// decoding instances.
const blockMagic = "DXB1"

const (
	flagFixpoint = 1 << iota
)

func appendUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// encodeBlock appends the block encoding of (st, pending) to buf. pending
// batches must all have EndVersion > st.Version().
func encodeBlock(buf []byte, st *State, pending []MutBatch) []byte {
	buf = append(buf, blockMagic...)
	buf = appendString(buf, st.ID)
	buf = appendString(buf, st.ContentID)
	buf = appendUvarint(buf, st.InitVersion)
	buf = appendUvarint(buf, st.Version())
	buf = appendUvarint(buf, uint64(st.Steps))
	var flags byte
	if st.Fixpoint != nil {
		flags |= flagFixpoint
	}
	buf = append(buf, flags)
	buf = appendPending(buf, pending)
	buf = appendString(buf, st.SettingText)
	buf = st.Source.AppendBinary(buf)
	if st.Fixpoint != nil {
		buf = st.Fixpoint.AppendBinary(buf)
	}
	return buf
}

func appendPending(buf []byte, pending []MutBatch) []byte {
	buf = appendUvarint(buf, uint64(len(pending)))
	for _, b := range pending {
		buf = appendUvarint(buf, b.EndVersion)
		buf = instance.AppendMutations(buf, b.Muts)
	}
	return buf
}

// blockMeta is the cheap prefix of a block: what recovery needs to catalog
// a scenario without decoding its instances.
type blockMeta struct {
	ID          string
	ContentID   string
	InitVersion uint64
	Version     uint64 // the embedded Source's version
	Steps       uint64
	Flags       byte
	// pendingStart/pendingEnd delimit the encoded pending section, so a
	// snapshot can splice in an extended pending list without touching the
	// (possibly large) instance bytes that follow.
	pendingStart, pendingEnd int
}

type reader struct {
	data []byte
	off  int
}

func (r *reader) fail(what string) error {
	return fmt.Errorf("store: decoding %s at offset %d: truncated or corrupt", what, r.off)
}

func (r *reader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, r.fail(what)
	}
	r.off += n
	return v, nil
}

func (r *reader) str(what string) (string, error) {
	n, err := r.uvarint(what)
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.data)-r.off) {
		return "", r.fail(what)
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *reader) byte(what string) (byte, error) {
	if r.off >= len(r.data) {
		return 0, r.fail(what)
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

// decodeBlockMeta decodes a block's metadata and pending batches, stopping
// before the setting text and instances.
func decodeBlockMeta(data []byte) (blockMeta, []MutBatch, error) {
	var m blockMeta
	r := &reader{data: data}
	if len(data) < len(blockMagic) || string(data[:len(blockMagic)]) != blockMagic {
		return m, nil, fmt.Errorf("store: bad block magic")
	}
	r.off = len(blockMagic)
	var err error
	if m.ID, err = r.str("block id"); err != nil {
		return m, nil, err
	}
	if m.ContentID, err = r.str("content id"); err != nil {
		return m, nil, err
	}
	if m.InitVersion, err = r.uvarint("init version"); err != nil {
		return m, nil, err
	}
	if m.Version, err = r.uvarint("version"); err != nil {
		return m, nil, err
	}
	if m.Steps, err = r.uvarint("steps"); err != nil {
		return m, nil, err
	}
	if m.Flags, err = r.byte("flags"); err != nil {
		return m, nil, err
	}
	m.pendingStart = r.off
	pending, err := decodePending(r)
	if err != nil {
		return m, nil, err
	}
	m.pendingEnd = r.off
	return m, pending, nil
}

func decodePending(r *reader) ([]MutBatch, error) {
	n, err := r.uvarint("pending count")
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)) {
		return nil, r.fail("pending count")
	}
	pending := make([]MutBatch, 0, n)
	for i := uint64(0); i < n; i++ {
		var b MutBatch
		if b.EndVersion, err = r.uvarint("pending end version"); err != nil {
			return nil, err
		}
		muts, n, err := instance.DecodeMutations(r.data[r.off:])
		if err != nil {
			return nil, err
		}
		r.off += n
		b.Muts = muts
		pending = append(pending, b)
	}
	return pending, nil
}

// decodeBlock fully decodes a block into a State plus its embedded pending
// batches.
func decodeBlock(data []byte) (*State, []MutBatch, error) {
	m, pending, err := decodeBlockMeta(data)
	if err != nil {
		return nil, nil, err
	}
	r := &reader{data: data, off: m.pendingEnd}
	st := &State{
		ID:          m.ID,
		ContentID:   m.ContentID,
		InitVersion: m.InitVersion,
		Steps:       int(m.Steps),
	}
	if st.SettingText, err = r.str("setting text"); err != nil {
		return nil, nil, err
	}
	src, n, err := instance.DecodeBinary(r.data[r.off:])
	if err != nil {
		return nil, nil, fmt.Errorf("store: decoding source of %q: %w", m.ID, err)
	}
	r.off += n
	st.Source = src
	if m.Flags&flagFixpoint != 0 {
		fix, n, err := instance.DecodeBinary(r.data[r.off:])
		if err != nil {
			return nil, nil, fmt.Errorf("store: decoding fixpoint of %q: %w", m.ID, err)
		}
		r.off += n
		st.Fixpoint = fix
	}
	if st.Version() != m.Version {
		return nil, nil, fmt.Errorf("store: block of %q declares version %d but source is at %d", m.ID, m.Version, st.Version())
	}
	return st, pending, nil
}

// EncodeState returns the standalone DXB1 scenario-block encoding of st
// with no pending mutation batches — the owner-to-owner wire format of
// cluster membership transfers. The block is self-contained: ID, content
// hash, version counter, setting text, source instance and (when present)
// the chase fixpoint, so the receiving owner resumes without re-chasing
// and the base_version contract survives the move.
func EncodeState(st *State) []byte {
	return encodeBlock(nil, st, nil)
}

// DecodeState decodes a standalone DXB1 scenario block produced by
// EncodeState. Blocks carrying pending mutation batches are rejected:
// transfer sources fold every acknowledged mutation into the state before
// encoding.
func DecodeState(data []byte) (*State, error) {
	st, pending, err := decodeBlock(data)
	if err != nil {
		return nil, err
	}
	if len(pending) > 0 {
		return nil, fmt.Errorf("store: transfer block of %q carries %d pending batches", st.ID, len(pending))
	}
	return st, nil
}

// splicePending returns a copy of block with its pending section replaced.
// The instance bytes are carried over verbatim — this is how a snapshot
// re-emits a cold scenario's block without decoding its instances.
func splicePending(block []byte, m blockMeta, pending []MutBatch) []byte {
	out := make([]byte, 0, len(block)+64)
	out = append(out, block[:m.pendingStart]...)
	out = appendPending(out, pending)
	return append(out, block[m.pendingEnd:]...)
}

// WAL record types (first payload byte of a WAL frame).
const (
	recRegister = byte(1) // body: block (state, no pending)
	recMutate   = byte(2) // body: id, end version, mutation list
	recDrop     = byte(3) // body: id
)

func encodeMutateRecord(id string, endVersion uint64, muts []instance.Mutation) []byte {
	buf := []byte{recMutate}
	buf = appendString(buf, id)
	buf = appendUvarint(buf, endVersion)
	return instance.AppendMutations(buf, muts)
}

func decodeMutateRecord(body []byte) (id string, endVersion uint64, muts []instance.Mutation, err error) {
	r := &reader{data: body}
	if id, err = r.str("mutate id"); err != nil {
		return
	}
	if endVersion, err = r.uvarint("mutate end version"); err != nil {
		return
	}
	muts, _, err = instance.DecodeMutations(r.data[r.off:])
	return
}
