package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// SyncMode controls when WAL appends reach stable storage.
type SyncMode int

const (
	// SyncAlways fsyncs after every append: an acknowledged write survives
	// power loss.
	SyncAlways SyncMode = iota
	// SyncInterval fsyncs in the background at a fixed interval (and at
	// rotation and close): a crash loses at most the last interval.
	SyncInterval
	// SyncOff never fsyncs explicitly: a crash loses whatever the OS had
	// not flushed. Process kills (as opposed to power loss) lose nothing —
	// the page cache survives the process.
	SyncOff
)

// ParseSyncMode maps the -fsync flag values.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("store: unknown fsync mode %q (want always, interval or off)", s)
}

func segmentPath(dir string, seg uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.log", seg))
}

// listSegments returns the WAL segment numbers present in dir, sorted.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, n)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// wal is the write-ahead log: an append-only sequence of framed records
// across numbered segment files. Writes are serialized by the Store's
// lock; durability under SyncAlways is group-committed — commit(end)
// callers queue on syncMu, the first one in fsyncs everything written so
// far, and everyone the sync covered returns without touching the disk —
// so concurrent registrations and mutations share one fsync instead of
// paying ~one disk sync each.
type wal struct {
	dir      string
	mode     SyncMode
	segBytes int64

	mu      sync.Mutex // guards f/seg/size/written/synced/fsErr
	f       *os.File
	seg     uint64
	size    int64
	written int64 // cumulative framed bytes written across all segments
	synced  int64 // prefix of written known durable (fsync or rotation)
	stop    chan struct{}
	done    chan struct{}
	fsErr   error // first write/sync failure; the wal is poisoned after one

	// syncMu serializes group commits: the holder fsyncs on behalf of every
	// append the sync covers. Lock order: syncMu before mu, never the
	// reverse.
	syncMu sync.Mutex
}

// openWAL opens segment seg for appending at offset size (creating it when
// absent) and starts the interval syncer if the mode asks for one.
func openWAL(dir string, seg uint64, size int64, mode SyncMode, interval time.Duration, segBytes int64) (*wal, error) {
	f, err := os.OpenFile(segmentPath(dir, seg), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return nil, err
	}
	w := &wal{dir: dir, mode: mode, segBytes: segBytes, f: f, seg: seg, size: size}
	if mode == SyncInterval {
		if interval <= 0 {
			interval = 100 * time.Millisecond
		}
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.syncLoop(interval)
	}
	return w, nil
}

func (w *wal) syncLoop(interval time.Duration) {
	defer close(w.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			if w.f != nil && w.fsErr == nil {
				if err := w.f.Sync(); err != nil {
					w.fsErr = err
				} else {
					w.synced = w.written
				}
			}
			w.mu.Unlock()
		}
	}
}

// append frames payload onto the current segment, rotating first when the
// segment is full, and returns the frame's location plus the cumulative
// byte position the record ends at. The write is buffered: durability is
// the caller's commit(end), issued after releasing whatever lock the
// caller serializes appends under, so concurrent commits can share fsyncs.
func (w *wal) append(payload []byte) (ref, int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fsErr != nil {
		return ref{}, 0, w.fsErr
	}
	if w.size > 0 && w.size+int64(len(payload))+frameHeaderLen > w.segBytes {
		if err := w.rotateLocked(); err != nil {
			w.fsErr = err
			return ref{}, 0, err
		}
	}
	frame := appendFrame(nil, payload)
	off := w.size
	if _, err := w.f.Write(frame); err != nil {
		w.fsErr = err
		return ref{}, 0, err
	}
	w.size += int64(len(frame))
	w.written += int64(len(frame))
	metrics.StoreWALAppends.Inc()
	metrics.StoreWALBytes.Add(int64(len(frame)))
	return ref{path: segmentPath(w.dir, w.seg), off: off, wal: true}, w.written, nil
}

// commit makes the append that returned end durable according to the sync
// mode: a no-op under interval/off, a group-committed fsync under
// SyncAlways. Safe to call without holding the Store's lock — that is the
// point: appenders serialize only the write, then share the sync.
func (w *wal) commit(end int64) error {
	if w.mode != SyncAlways {
		return nil
	}
	return w.syncTo(end)
}

// syncTo ensures every byte up to end is durable. Callers queue on syncMu;
// whoever holds it fsyncs the full written prefix, so by the time a waiter
// gets the lock an earlier holder's sync usually already covers it
// (group commit) and it returns without a disk operation.
func (w *wal) syncTo(end int64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	if w.fsErr != nil {
		err := w.fsErr
		w.mu.Unlock()
		return err
	}
	if w.synced >= end {
		w.mu.Unlock()
		return nil
	}
	f, target := w.f, w.written
	w.mu.Unlock()
	err := f.Sync()
	metrics.StoreWALFsyncs.Inc()
	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		// A concurrent rotation syncs and closes the segment we captured; if
		// its durability point already covers this commit, the failed Sync on
		// the closed handle is benign.
		if w.synced >= end {
			return nil
		}
		if w.fsErr == nil {
			w.fsErr = err
		}
		return err
	}
	// Everything in target was either in f (just synced) or in a segment a
	// rotation already made durable, so the full prefix is stable.
	if target > w.synced {
		w.synced = target
	}
	return nil
}

// rotate closes the current segment and starts the next one, returning the
// new segment's number. The closed segment is always fsynced — rotation is
// a durability point in every mode, so snapshot coverage ("segments below N
// are subsumed") never claims unsynced data.
func (w *wal) rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fsErr != nil {
		return 0, w.fsErr
	}
	if err := w.rotateLocked(); err != nil {
		w.fsErr = err
		return 0, err
	}
	return w.seg, nil
}

func (w *wal) rotateLocked() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	// Rotation is a durability point: everything written so far is stable,
	// so pending group commits over the old segment are already satisfied.
	w.synced = w.written
	if err := w.f.Close(); err != nil {
		return err
	}
	w.seg++
	f, err := os.OpenFile(segmentPath(w.dir, w.seg), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.size = 0
	return syncDir(w.dir)
}

// sync forces buffered appends to stable storage regardless of mode.
func (w *wal) sync() error {
	w.mu.Lock()
	if w.fsErr != nil {
		err := w.fsErr
		w.mu.Unlock()
		return err
	}
	end := w.written
	w.mu.Unlock()
	return w.syncTo(end)
}

// close stops the interval syncer and fsyncs and closes the current
// segment.
func (w *wal) close() error {
	if w.stop != nil {
		close(w.stop)
		<-w.done
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return w.fsErr
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	if w.fsErr == nil {
		w.fsErr = fmt.Errorf("store: wal closed")
	}
	return err
}

// scanWAL replays every intact record of the segments numbered >= fromSeg,
// in order, and repairs the log for appending: a torn or corrupt tail in
// the last segment is truncated away (the expected crash residue), and any
// record after a corrupt frame in an earlier segment is unreachable — the
// scan stops there, truncates, and deletes the later segments, because
// applying records across a hole would reorder acknowledged history.
// Returns the segment and size the wal should append at.
func scanWAL(dir string, fromSeg uint64, apply func(seg uint64, frameOff int64, payload []byte)) (seg uint64, size int64, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, 0, err
	}
	live := segs[:0]
	for _, s := range segs {
		if s >= fromSeg {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		first := fromSeg
		if first == 0 {
			first = 1
		}
		f, err := os.OpenFile(segmentPath(dir, first), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return 0, 0, err
		}
		f.Close()
		return first, 0, nil
	}
	for i, s := range live {
		f, err := os.Open(segmentPath(dir, s))
		if err != nil {
			return 0, 0, err
		}
		sc := newFrameScanner(f)
		var stopAt int64 = -1
		for {
			payload, off, err := sc.next()
			if err == nil {
				apply(s, off, payload)
				continue
			}
			if _, torn := err.(*errTorn); torn {
				stopAt = off
			}
			break
		}
		f.Close()
		if stopAt >= 0 {
			if err := os.Truncate(segmentPath(dir, s), stopAt); err != nil {
				return 0, 0, err
			}
			for _, later := range live[i+1:] {
				os.Remove(segmentPath(dir, later))
			}
			return s, stopAt, nil
		}
		if i == len(live)-1 {
			return s, sc.off, nil
		}
	}
	panic("unreachable")
}
