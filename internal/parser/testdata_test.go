package parser

import (
	"os"
	"path/filepath"
	"testing"
)

// The testdata files shipped for the CLI must stay parseable.
func TestTestdataFilesParse(t *testing.T) {
	root := filepath.Join("..", "..", "testdata")
	setting, err := os.ReadFile(filepath.Join(root, "example21.dx"))
	if err != nil {
		t.Skipf("testdata not present: %v", err)
	}
	s, err := ParseSetting(string(setting))
	if err != nil {
		t.Fatalf("example21.dx: %v", err)
	}
	if !s.WeaklyAcyclic() {
		t.Fatal("example21.dx must be weakly acyclic")
	}
	hr, err := os.ReadFile(filepath.Join(root, "hr.dx"))
	if err != nil {
		t.Fatalf("hr.dx: %v", err)
	}
	hrSetting, err := ParseSetting(string(hr))
	if err != nil {
		t.Fatalf("hr.dx: %v", err)
	}
	if !hrSetting.WeaklyAcyclic() {
		t.Fatal("hr.dx must be weakly acyclic")
	}
	for _, name := range []string{"source21.dx", "t2.dx", "hr_source.dx"} {
		data, err := os.ReadFile(filepath.Join(root, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := ParseInstance(string(data)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
