package parser

import (
	"testing"
	"testing/quick"

	"repro/internal/instance"
)

func TestFormatInstanceRoundTrip(t *testing.T) {
	ins := instance.FromAtoms(
		instance.NewAtom("E", instance.Const("a"), instance.Null(3)),
		instance.NewAtom("F", instance.Const("hello world"), instance.Const("42")),
		instance.NewAtom("P", instance.Const("exists")), // reserved word
		instance.NewAtom("P", instance.Const("x-y_1")),
	)
	text := FormatInstance(ins)
	back, err := ParseInstance(text)
	if err != nil {
		t.Fatalf("re-parsing failed: %v\n%s", err, text)
	}
	if !back.Equal(ins) {
		t.Fatalf("round trip lost atoms:\noriginal %v\nback     %v\ntext:\n%s", ins, back, text)
	}
}

func TestQuoteConstIfNeeded(t *testing.T) {
	cases := map[string]string{
		"abc":         "abc",
		"42":          "42",
		"a1_b-c":      "a1_b-c",
		"hello there": "'hello there'",
		"9lives":      "'9lives'",
		"_weird":      "'_weird'",
		"exists":      "'exists'",
		"":            "''",
	}
	for in, want := range cases {
		if got := quoteConstIfNeeded(in); got != want {
			t.Errorf("quote(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: FormatInstance → ParseInstance is the identity on instances over
// generated constant names and nulls.
func TestQuickFormatRoundTrip(t *testing.T) {
	f := func(vals []uint8) bool {
		ins := instance.New()
		for i := 0; i+1 < len(vals); i += 2 {
			var a, b instance.Value
			if vals[i]%2 == 0 {
				a = instance.Const(string(rune('a' + vals[i]%26)))
			} else {
				a = instance.Null(int64(vals[i] % 7))
			}
			if vals[i+1]%2 == 0 {
				b = instance.Const(string(rune('a' + vals[i+1]%26)))
			} else {
				b = instance.Null(int64(vals[i+1] % 7))
			}
			ins.Add(instance.NewAtom("R", a, b))
		}
		back, err := ParseInstance(FormatInstance(ins))
		return err == nil && back.Equal(ins)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
