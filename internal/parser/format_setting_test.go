package parser_test

import (
	"testing"

	"repro/internal/dependency"
	"repro/internal/genwl"
	. "repro/internal/parser"
	"repro/internal/semigroup"
	"repro/internal/turing"
)

// reparse asserts FormatSetting(s) parses back to a setting with the same
// schemas and the same dependencies (compared by their formatted text, which
// is deterministic).
func reparse(t *testing.T, name string, s *dependency.Setting) {
	t.Helper()
	text := FormatSetting(s)
	back, err := ParseSetting(text)
	if err != nil {
		t.Fatalf("%s: FormatSetting output does not re-parse: %v\n%s", name, err, text)
	}
	if got := FormatSetting(back); got != text {
		t.Fatalf("%s: round trip not a fixpoint:\nfirst:\n%s\nsecond:\n%s", name, text, got)
	}
	if len(back.ST) != len(s.ST) || len(back.TGDs) != len(s.TGDs) || len(back.EGDs) != len(s.EGDs) {
		t.Fatalf("%s: dependency counts changed: %d/%d/%d -> %d/%d/%d", name,
			len(s.ST), len(s.TGDs), len(s.EGDs), len(back.ST), len(back.TGDs), len(back.EGDs))
	}
}

func TestFormatSettingRoundTrip(t *testing.T) {
	ex21, err := ParseSetting(`
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
target-deps:
  d3: F(y,x) -> exists z : G(x,z).
  d4: F(x,y) & F(x,z) -> y = z.
`)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]*dependency.Setting{
		"example21": ex21,
		// D_halt carries quoted constants ('0', 'B', 'L', 'R') inside tgd
		// bodies and heads — the case Setting.String loses.
		"turing":    turing.DHaltSetting(),
		"semigroup": semigroup.DembSetting(),
		"copying":   genwl.Copying(),
	} {
		reparse(t, name, s)
	}
}

// An FO-bodied s-t tgd with a constant and nested connectives must survive
// the trip too.
func TestFormatSettingFOBody(t *testing.T) {
	s, err := ParseSetting(`
source P/1, E/2.
target Q/1.
st:
  d1: P(x) & !(E(x,'b')) -> Q(x).
  d2: (exists y (E(x,y) | P(x))) -> Q(x).
`)
	if err != nil {
		t.Fatal(err)
	}
	reparse(t, "fo-body", s)
}
