package parser

import (
	"fmt"
	"strconv"

	"repro/internal/instance"
	"repro/internal/query"
)

type parser struct {
	toks []token
	pos  int
}

func newParser(src string) (*parser, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks}, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(k tokenKind) bool {
	if p.cur().kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptIdent(text string) bool {
	if p.cur().kind == tokIdent && p.cur().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, fmt.Errorf("line %d: expected %v, found %v %q", t.line, k, t.kind, t.text)
	}
	p.pos++
	return t, nil
}

// ParseInstance parses a whitespace/period-separated list of ground atoms,
// e.g. "M(a,b). N(a,c)." — bare identifiers and numbers are constants, _N is
// the null with label N. Commas between atoms are also accepted.
func ParseInstance(src string) (*instance.Instance, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	ins := instance.New()
	for p.cur().kind != tokEOF {
		a, err := p.parseGroundAtom()
		if err != nil {
			return nil, err
		}
		ins.Add(a)
		for p.accept(tokDot) || p.accept(tokComma) {
		}
	}
	return ins, nil
}

func (p *parser) parseGroundAtom() (instance.Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return instance.Atom{}, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return instance.Atom{}, err
	}
	var args []instance.Value
	for {
		v, err := p.parseGroundValue()
		if err != nil {
			return instance.Atom{}, err
		}
		args = append(args, v)
		if p.accept(tokComma) {
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return instance.Atom{}, err
	}
	return instance.NewAtom(name.text, args...), nil
}

func (p *parser) parseGroundValue() (instance.Value, error) {
	t := p.next()
	switch t.kind {
	case tokIdent, tokNumber, tokQuoted:
		return instance.Const(t.text), nil
	case tokNull:
		label, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("line %d: bad null label %q", t.line, t.text)
		}
		return instance.Null(label), nil
	default:
		return 0, fmt.Errorf("line %d: expected value, found %v %q", t.line, t.kind, t.text)
	}
}

// term parses a formula term: bare identifiers are variables, numbers and
// quoted identifiers constants.
func (p *parser) parseTerm() (query.Term, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		if t.text == "true" || t.text == "false" || t.text == "exists" || t.text == "forall" {
			return query.Term{}, fmt.Errorf("line %d: keyword %q used as term", t.line, t.text)
		}
		return query.V(t.text), nil
	case tokNumber, tokQuoted:
		return query.C(instance.Const(t.text)), nil
	default:
		return query.Term{}, fmt.Errorf("line %d: expected term, found %v %q", t.line, t.kind, t.text)
	}
}

// ParseFormula parses a first-order formula. Grammar (quantifiers extend as
// far right as possible; '->' is right-associative):
//
//	formula := or ( '->' formula )?
//	or      := and ( '|' and )*
//	and     := unary ( '&' unary )*
//	unary   := '!' unary | 'exists' vars (':')? formula
//	         | 'forall' vars (':')? formula | '(' formula ')'
//	         | 'true' | 'false' | atom | term ('='|'!=') term
func ParseFormula(src string) (query.Formula, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("line %d: trailing input %q", p.cur().line, p.cur().text)
	}
	return f, nil
}

func (p *parser) parseFormula() (query.Formula, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.accept(tokArrow) {
		r, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		return query.Implies{L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseOr() (query.Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	fs := []query.Formula{l}
	for p.accept(tokPipe) {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		fs = append(fs, r)
	}
	return query.Disj(fs...), nil
}

func (p *parser) parseAnd() (query.Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	fs := []query.Formula{l}
	for p.accept(tokAmp) {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		fs = append(fs, r)
	}
	return query.Conj(fs...), nil
}

func (p *parser) parseUnary() (query.Formula, error) {
	switch {
	case p.accept(tokBang):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return query.Not{F: f}, nil
	case p.acceptIdent("exists"):
		return p.parseQuant(false)
	case p.acceptIdent("forall"):
		return p.parseQuant(true)
	case p.acceptIdent("true"):
		return query.Truth(true), nil
	case p.acceptIdent("false"):
		return query.Truth(false), nil
	case p.accept(tokLParen):
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return f, nil
	default:
		return p.parseAtomOrComparison()
	}
}

func (p *parser) parseQuant(universal bool) (query.Formula, error) {
	var vars []string
	for {
		v, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		vars = append(vars, v.text)
		if p.accept(tokComma) {
			continue
		}
		break
	}
	p.accept(tokColon) // optional separator
	body, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if universal {
		return query.Forall{Vars: vars, F: body}, nil
	}
	return query.Exists{Vars: vars, F: body}, nil
}

// parseAtomOrComparison parses R(t,…) or t = t / t != t.
func (p *parser) parseAtomOrComparison() (query.Formula, error) {
	if p.cur().kind == tokIdent && p.toks[p.pos+1].kind == tokLParen {
		return p.parseQueryAtom()
	}
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	switch {
	case p.accept(tokEq):
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return query.Eq{L: l, R: r}, nil
	case p.accept(tokNeq):
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return query.Not{F: query.Eq{L: l, R: r}}, nil
	default:
		return nil, fmt.Errorf("line %d: expected '=' or '!=' after term", p.cur().line)
	}
}

func (p *parser) parseQueryAtom() (query.Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return query.Atom{}, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return query.Atom{}, err
	}
	var terms []query.Term
	for {
		t, err := p.parseTerm()
		if err != nil {
			return query.Atom{}, err
		}
		terms = append(terms, t)
		if p.accept(tokComma) {
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return query.Atom{}, err
	}
	return query.A(name.text, terms...), nil
}
