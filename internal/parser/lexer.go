// Package parser implements the text syntax used throughout the library for
// data exchange settings, instances, formulas and queries.
//
// Conventions:
//   - In formulas, dependencies and queries, bare identifiers are variables;
//     numbers and 'quoted' identifiers are constants.
//   - In instances, bare identifiers and numbers are constants and _N is the
//     null with label N.
//
// Example setting (the paper's Example 2.1):
//
//	source M/2, N/2.
//	target E/2, F/2, G/2.
//	st:
//	  d1: M(x1,x2) -> E(x1,x2).
//	  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
//	target-deps:
//	  d3: F(y,x) -> exists z : G(x,z).
//	  d4: F(x,y) & F(x,z) -> y = z.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF       tokenKind = iota
	tokIdent               // bare identifier
	tokNumber              // digit sequence
	tokQuoted              // 'quoted' constant
	tokNull                // _N
	tokLParen              // (
	tokRParen              // )
	tokComma               // ,
	tokDot                 // .
	tokColon               // :
	tokAmp                 // &
	tokPipe                // |
	tokBang                // !
	tokArrow               // ->
	tokEq                  // =
	tokNeq                 // !=
	tokTurnstile           // :-
	tokSlash               // /
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokQuoted:
		return "quoted constant"
	case tokNull:
		return "null"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokColon:
		return "':'"
	case tokAmp:
		return "'&'"
	case tokPipe:
		return "'|'"
	case tokBang:
		return "'!'"
	case tokArrow:
		return "'->'"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'!='"
	case tokTurnstile:
		return "':-'"
	case tokSlash:
		return "'/'"
	}
	return "?"
}

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src    []rune
	pos    int
	line   int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: []rune(src), line: 1}
	for l.pos < len(l.src) {
		r := l.src[l.pos]
		switch {
		case r == '\n':
			l.line++
			l.pos++
		case unicode.IsSpace(r):
			l.pos++
		case r == '#' || (r == '/' && l.peekAt(1) == '/'):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case r == '(':
			l.emit(tokLParen, "(")
		case r == ')':
			l.emit(tokRParen, ")")
		case r == ',':
			l.emit(tokComma, ",")
		case r == '.':
			l.emit(tokDot, ".")
		case r == '&':
			l.emit(tokAmp, "&")
		case r == '|':
			l.emit(tokPipe, "|")
		case r == '=':
			l.emit(tokEq, "=")
		case r == '/':
			l.emit(tokSlash, "/")
		case r == ':':
			if l.peekAt(1) == '-' {
				l.emitN(tokTurnstile, ":-", 2)
			} else {
				l.emit(tokColon, ":")
			}
		case r == '!':
			if l.peekAt(1) == '=' {
				l.emitN(tokNeq, "!=", 2)
			} else {
				l.emit(tokBang, "!")
			}
		case r == '-':
			if l.peekAt(1) == '>' {
				l.emitN(tokArrow, "->", 2)
			} else {
				return nil, fmt.Errorf("line %d: unexpected '-'", l.line)
			}
		case r == '\'':
			start := l.pos + 1
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] != '\'' {
				if l.src[l.pos] == '\n' {
					return nil, fmt.Errorf("line %d: unterminated quoted constant", l.line)
				}
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("line %d: unterminated quoted constant", l.line)
			}
			l.tokens = append(l.tokens, token{kind: tokQuoted, text: string(l.src[start:l.pos]), line: l.line})
			l.pos++
		case r == '_':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && unicode.IsDigit(l.src[l.pos]) {
				l.pos++
			}
			if l.pos == start+1 {
				return nil, fmt.Errorf("line %d: '_' must be followed by a null label", l.line)
			}
			l.tokens = append(l.tokens, token{kind: tokNull, text: string(l.src[start+1 : l.pos]), line: l.line})
		case unicode.IsDigit(r):
			start := l.pos
			for l.pos < len(l.src) && unicode.IsDigit(l.src[l.pos]) {
				l.pos++
			}
			l.tokens = append(l.tokens, token{kind: tokNumber, text: string(l.src[start:l.pos]), line: l.line})
		case unicode.IsLetter(r):
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_' || l.src[l.pos] == '-') {
				l.pos++
			}
			text := string(l.src[start:l.pos])
			// A trailing '-' belongs to '->'; give it back.
			for strings.HasSuffix(text, "-") {
				text = text[:len(text)-1]
				l.pos--
			}
			l.tokens = append(l.tokens, token{kind: tokIdent, text: text, line: l.line})
		default:
			return nil, fmt.Errorf("line %d: unexpected character %q", l.line, string(r))
		}
	}
	l.tokens = append(l.tokens, token{kind: tokEOF, line: l.line})
	return l.tokens, nil
}

func (l *lexer) peekAt(off int) rune {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) emit(k tokenKind, text string) { l.emitN(k, text, 1) }

func (l *lexer) emitN(k tokenKind, text string, n int) {
	l.tokens = append(l.tokens, token{kind: k, text: text, line: l.line})
	l.pos += n
}
