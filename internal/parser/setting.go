package parser

import (
	"fmt"
	"strings"

	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/query"
)

// ParseSetting parses a data exchange setting:
//
//	source M/2, N/2.
//	target E/2, F/2, G/2.
//	st:
//	  d1: M(x1,x2) -> E(x1,x2).
//	  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
//	target-deps:
//	  d3: F(y,x) -> exists z : G(x,z).
//	  d4: F(x,y) & F(x,z) -> y = z.
//
// Dependency names ("d1:") are optional; unnamed dependencies are named
// st1, st2, … and t1, t2, … in order. The setting is validated before it is
// returned.
func ParseSetting(src string) (*dependency.Setting, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	s := &dependency.Setting{}

	if !p.acceptIdent("source") {
		return nil, fmt.Errorf("line %d: setting must start with 'source'", p.cur().line)
	}
	if s.Source, err = p.parseSchemaDecl(); err != nil {
		return nil, err
	}
	if !p.acceptIdent("target") {
		return nil, fmt.Errorf("line %d: expected 'target' declaration", p.cur().line)
	}
	if s.Target, err = p.parseSchemaDecl(); err != nil {
		return nil, err
	}

	stCount, tCount := 0, 0
	for p.cur().kind != tokEOF {
		switch {
		case p.acceptIdent("st"):
			if _, err := p.expect(tokColon); err != nil {
				return nil, err
			}
			for p.cur().kind != tokEOF && !p.atSectionStart() {
				d, egd, err := p.parseDependency()
				if err != nil {
					return nil, err
				}
				if egd != nil {
					return nil, fmt.Errorf("egd %q not allowed in st section", egd.Name)
				}
				stCount++
				if d.Name == "" {
					d.Name = fmt.Sprintf("st%d", stCount)
				}
				s.ST = append(s.ST, d)
			}
		case p.acceptIdent("target-deps"):
			if _, err := p.expect(tokColon); err != nil {
				return nil, err
			}
			for p.cur().kind != tokEOF && !p.atSectionStart() {
				d, egd, err := p.parseDependency()
				if err != nil {
					return nil, err
				}
				tCount++
				if egd != nil {
					if egd.Name == "" {
						egd.Name = fmt.Sprintf("t%d", tCount)
					}
					s.EGDs = append(s.EGDs, egd)
				} else {
					if d.Name == "" {
						d.Name = fmt.Sprintf("t%d", tCount)
					}
					s.TGDs = append(s.TGDs, d)
				}
			}
		default:
			return nil, fmt.Errorf("line %d: expected 'st:' or 'target-deps:' section, found %q", p.cur().line, p.cur().text)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) atSectionStart() bool {
	t := p.cur()
	return t.kind == tokIdent && (t.text == "st" || t.text == "target-deps") &&
		p.toks[p.pos+1].kind == tokColon &&
		// A dependency name also looks like "ident:"; sections are only
		// recognised for the two reserved words, so dependencies cannot be
		// named "st" or "target-deps".
		true
}

func (p *parser) parseSchemaDecl() (instance.Schema, error) {
	s := instance.Schema{}
	for {
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSlash); err != nil {
			return nil, err
		}
		ar, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		n := 0
		fmt.Sscanf(ar.text, "%d", &n)
		s[name.text] = n
		if p.accept(tokComma) {
			continue
		}
		break
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	return s, nil
}

// parseDependency parses one dependency statement ending in '.': either a
// tgd "body -> [exists vars :] head-conjunction" or an egd "body -> x = y".
// An optional "name:" prefix names it.
func (p *parser) parseDependency() (*dependency.TGD, *dependency.EGD, error) {
	name := ""
	if p.cur().kind == tokIdent && p.toks[p.pos+1].kind == tokColon &&
		p.cur().text != "st" && p.cur().text != "target-deps" {
		name = p.next().text
		p.next() // colon
	}
	body, err := p.parseOr()
	if err != nil {
		return nil, nil, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return nil, nil, err
	}

	// Egd head: term = term.
	if p.isEgdHead() {
		l, err := p.parseTerm()
		if err != nil {
			return nil, nil, err
		}
		if _, err := p.expect(tokEq); err != nil {
			return nil, nil, err
		}
		r, err := p.parseTerm()
		if err != nil {
			return nil, nil, err
		}
		if _, err := p.expect(tokDot); err != nil {
			return nil, nil, err
		}
		if !l.IsVar() || !r.IsVar() {
			return nil, nil, fmt.Errorf("egd %q: head must equate two variables", name)
		}
		bodyAtoms, err := atomsOf(body)
		if err != nil {
			return nil, nil, fmt.Errorf("egd %q: %w", name, err)
		}
		return nil, &dependency.EGD{Name: name, Body: bodyAtoms, L: l.Var, R: r.Var}, nil
	}

	// Tgd head: optional exists block then conjunction of atoms.
	var exVars []string
	if p.acceptIdent("exists") {
		for {
			v, err := p.expect(tokIdent)
			if err != nil {
				return nil, nil, err
			}
			exVars = append(exVars, v.text)
			if p.accept(tokComma) {
				continue
			}
			break
		}
		p.accept(tokColon)
	}
	var head []query.Atom
	for {
		a, err := p.parseQueryAtom()
		if err != nil {
			return nil, nil, err
		}
		head = append(head, a)
		if p.accept(tokAmp) {
			continue
		}
		break
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, nil, err
	}
	d := dependency.NewTGD(name, body, head)
	if err := checkDeclaredExists(d, exVars); err != nil {
		return nil, nil, err
	}
	return d, nil, nil
}

// isEgdHead peeks whether the head is "term = term" rather than an atom.
func (p *parser) isEgdHead() bool {
	if p.cur().kind != tokIdent && p.cur().kind != tokNumber && p.cur().kind != tokQuoted {
		return false
	}
	return p.toks[p.pos+1].kind == tokEq
}

// checkDeclaredExists verifies that the declared existential variables match
// the inferred ones (head variables absent from the body).
func checkDeclaredExists(d *dependency.TGD, declared []string) error {
	inferred := make(map[string]bool, len(d.Exists))
	for _, v := range d.Exists {
		inferred[v] = true
	}
	decl := make(map[string]bool, len(declared))
	for _, v := range declared {
		decl[v] = true
	}
	for _, v := range declared {
		if !inferred[v] {
			return fmt.Errorf("tgd %q: declared existential %q occurs in the body or not in the head", d.Name, v)
		}
	}
	for _, v := range d.Exists {
		if !decl[v] {
			return fmt.Errorf("tgd %q: head variable %q is not in the body; declare it with 'exists'", d.Name, v)
		}
	}
	return nil
}

func atomsOf(f query.Formula) ([]query.Atom, error) {
	switch g := f.(type) {
	case query.Atom:
		return []query.Atom{g}, nil
	case query.And:
		var out []query.Atom
		for _, h := range g.Fs {
			as, err := atomsOf(h)
			if err != nil {
				return nil, err
			}
			out = append(out, as...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("body must be a conjunction of atoms, found %v", f)
	}
}

// FormatInstance renders an instance in the text syntax ParseInstance
// accepts: one atom per line, terminated by periods, in deterministic
// order. Constants that contain characters outside the bare-identifier
// alphabet are quoted.
func FormatInstance(ins *instance.Instance) string {
	var b strings.Builder
	for _, a := range ins.Atoms() {
		b.WriteString(a.Rel)
		b.WriteByte('(')
		for i, v := range a.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			if v.IsNull() {
				fmt.Fprintf(&b, "_%d", v.NullLabel())
			} else {
				b.WriteString(quoteConstIfNeeded(instance.ConstName(v)))
			}
		}
		b.WriteString(").\n")
	}
	return b.String()
}

// quoteConstIfNeeded wraps a constant name in quotes unless it lexes as a
// bare identifier or number.
func quoteConstIfNeeded(name string) string {
	if name == "" {
		return "''"
	}
	allDigits := true
	for _, r := range name {
		if r < '0' || r > '9' {
			allDigits = false
			break
		}
	}
	if allDigits {
		return name // lexes as a number token
	}
	bare := true
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9' && i > 0:
		case (r == '_' || r == '-') && i > 0:
		default:
			bare = false
		}
	}
	// Reserved words would parse as keywords or section markers.
	switch name {
	case "exists", "forall", "true", "false", "st", "target-deps", "source", "target":
		bare = false
	}
	if bare {
		return name
	}
	return "'" + name + "'"
}

// ParseCQ parses a conjunctive query "q(x,z) :- E(x,y), F(y,z), x != z."
// The trailing period is optional; commas separate body literals.
func ParseCQ(src string) (query.CQ, error) {
	p, err := newParser(src)
	if err != nil {
		return query.CQ{}, err
	}
	cq, err := p.parseCQ()
	if err != nil {
		return query.CQ{}, err
	}
	if p.cur().kind != tokEOF {
		return query.CQ{}, fmt.Errorf("line %d: trailing input %q", p.cur().line, p.cur().text)
	}
	return cq, nil
}

func (p *parser) parseCQ() (query.CQ, error) {
	var cq query.CQ
	if _, err := p.expect(tokIdent); err != nil { // query name, ignored
		return cq, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return cq, err
	}
	if !p.accept(tokRParen) {
		for {
			v, err := p.expect(tokIdent)
			if err != nil {
				return cq, err
			}
			cq.Head = append(cq.Head, v.text)
			if p.accept(tokComma) {
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return cq, err
		}
	}
	if _, err := p.expect(tokTurnstile); err != nil {
		return cq, err
	}
	for {
		if p.cur().kind == tokIdent && p.toks[p.pos+1].kind == tokLParen {
			a, err := p.parseQueryAtom()
			if err != nil {
				return cq, err
			}
			cq.Atoms = append(cq.Atoms, a)
		} else {
			l, err := p.parseTerm()
			if err != nil {
				return cq, err
			}
			if _, err := p.expect(tokNeq); err != nil {
				return cq, err
			}
			r, err := p.parseTerm()
			if err != nil {
				return cq, err
			}
			cq.Diseqs = append(cq.Diseqs, query.Diseq{L: l, R: r})
		}
		if p.accept(tokComma) {
			continue
		}
		break
	}
	p.accept(tokDot)
	return cq, nil
}

// ParseUCQ parses one or more CQ rules; rules form the disjuncts of a union.
//
//	q(x) :- A(x).
//	q(x) :- B(x).
func ParseUCQ(src string) (query.UCQ, error) {
	p, err := newParser(src)
	if err != nil {
		return query.UCQ{}, err
	}
	var disjuncts []query.CQ
	for p.cur().kind != tokEOF {
		cq, err := p.parseCQ()
		if err != nil {
			return query.UCQ{}, err
		}
		disjuncts = append(disjuncts, cq)
	}
	if len(disjuncts) == 0 {
		return query.UCQ{}, fmt.Errorf("no rules in UCQ")
	}
	return query.NewUCQ(disjuncts...), nil
}

// ParseFOQuery parses "(x, y) . formula" — an answer-variable tuple followed
// by a period and a formula — or, without the tuple prefix, a Boolean
// formula query.
func ParseFOQuery(src string) (query.FOQuery, error) {
	p, err := newParser(src)
	if err != nil {
		return query.FOQuery{}, err
	}
	var vars []string
	if p.cur().kind == tokLParen && p.looksLikeVarTuple() {
		p.next()
		if !p.accept(tokRParen) {
			for {
				v, err := p.expect(tokIdent)
				if err != nil {
					return query.FOQuery{}, err
				}
				vars = append(vars, v.text)
				if p.accept(tokComma) {
					continue
				}
				break
			}
			if _, err := p.expect(tokRParen); err != nil {
				return query.FOQuery{}, err
			}
		}
		if _, err := p.expect(tokDot); err != nil {
			return query.FOQuery{}, err
		}
	}
	f, err := p.parseFormula()
	if err != nil {
		return query.FOQuery{}, err
	}
	if p.cur().kind != tokEOF {
		return query.FOQuery{}, fmt.Errorf("line %d: trailing input %q", p.cur().line, p.cur().text)
	}
	free := query.FreeVars(f)
	if vars == nil {
		if len(free) != 0 {
			return query.FOQuery{}, fmt.Errorf("query has free variables %v; declare them with a (x,…) prefix", free)
		}
		return query.FOQuery{F: f}, nil
	}
	declared := make(map[string]bool, len(vars))
	for _, v := range vars {
		declared[v] = true
	}
	for _, v := range free {
		if !declared[v] {
			return query.FOQuery{}, fmt.Errorf("free variable %q not declared in answer tuple", v)
		}
	}
	return query.FOQuery{Vars: vars, F: f}, nil
}

// looksLikeVarTuple distinguishes "(x, y) . formula" from a parenthesised
// formula "(P(x) | Q(x))": after the closing paren of a variable tuple comes
// a period.
func (p *parser) looksLikeVarTuple() bool {
	depth := 0
	for i := p.pos; i < len(p.toks); i++ {
		switch p.toks[i].kind {
		case tokLParen:
			depth++
		case tokRParen:
			depth--
			if depth == 0 {
				return i+1 < len(p.toks) && p.toks[i+1].kind == tokDot
			}
		case tokIdent, tokComma:
			// fine inside a variable tuple
		default:
			if depth > 0 {
				return false
			}
		}
	}
	return false
}
