package parser

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/query"
)

// FormatSetting renders a setting in the text syntax ParseSetting accepts:
// schema declarations, then the st: and target-deps: sections. Unlike
// Setting.String (a human-readable display), constants inside dependencies
// are quoted so they lex as constants rather than variables — the output
// always re-parses to an equivalent setting. This is what lets
// programmatically built settings (e.g. turing.DHaltSetting) travel over
// dxserver's text API.
func FormatSetting(s *dependency.Setting) string {
	var b strings.Builder
	fmt.Fprintf(&b, "source %s.\ntarget %s.\n", formatSchema(s.Source), formatSchema(s.Target))
	if len(s.ST) > 0 {
		b.WriteString("st:\n")
		for _, d := range s.ST {
			fmt.Fprintf(&b, "  %s.\n", formatTGD(d))
		}
	}
	if len(s.TGDs) > 0 || len(s.EGDs) > 0 {
		b.WriteString("target-deps:\n")
		for _, d := range s.TGDs {
			fmt.Fprintf(&b, "  %s.\n", formatTGD(d))
		}
		for _, d := range s.EGDs {
			fmt.Fprintf(&b, "  %s.\n", formatEGD(d))
		}
	}
	return b.String()
}

func formatSchema(s instance.Schema) string {
	names := s.Names()
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s/%d", n, s[n])
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

func formatTGD(d *dependency.TGD) string {
	head := make([]string, len(d.Head))
	for i, a := range d.Head {
		head[i] = formatAtom(a)
	}
	rhs := strings.Join(head, " & ")
	if len(d.Exists) > 0 {
		rhs = "exists " + strings.Join(d.Exists, ",") + " : " + rhs
	}
	body := formatFormula(d.Body)
	// Quantified and implicational bodies are parenthesised so the printed
	// dependency re-parses: a bare quantifier body would swallow the tgd
	// arrow, a bare implication would be mistaken for it.
	switch d.Body.(type) {
	case query.Implies, query.Exists, query.Forall:
		body = "(" + body + ")"
	}
	return fmt.Sprintf("%s: %s -> %s", d.Name, body, rhs)
}

func formatEGD(d *dependency.EGD) string {
	parts := make([]string, len(d.Body))
	for i, a := range d.Body {
		parts[i] = formatAtom(a)
	}
	return fmt.Sprintf("%s: %s -> %s = %s", d.Name, strings.Join(parts, " & "), d.L, d.R)
}

func formatAtom(a query.Atom) string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = formatTerm(t)
	}
	return a.Rel + "(" + strings.Join(parts, ",") + ")"
}

// formatTerm renders a variable bare and a constant quoted, so the lexer
// reconstructs the same term kind. Unlike instances (where bare identifiers
// are constants), in dependencies and formulas a bare identifier lexes as a
// variable — so every non-numeric constant must be quoted. Nulls do not
// occur in dependencies.
func formatTerm(t query.Term) string {
	if t.IsVar() {
		return t.Var
	}
	name := instance.ConstName(t.Val)
	allDigits := name != ""
	for _, r := range name {
		if r < '0' || r > '9' {
			allDigits = false
			break
		}
	}
	if allDigits {
		return name // lexes as a number token, a constant in any context
	}
	return "'" + name + "'"
}

// formatFormula renders an FO formula (an s-t tgd body) with quoted
// constants. Operands of the binary connectives are parenthesised when
// composite, which the formula grammar accepts everywhere.
func formatFormula(f query.Formula) string {
	switch g := f.(type) {
	case query.Atom:
		return formatAtom(g)
	case query.Eq:
		return formatTerm(g.L) + " = " + formatTerm(g.R)
	case query.Truth:
		if bool(g) {
			return "true"
		}
		return "false"
	case query.Not:
		return "!(" + formatFormula(g.F) + ")"
	case query.And:
		return joinOperands(g.Fs, " & ")
	case query.Or:
		return joinOperands(g.Fs, " | ")
	case query.Implies:
		return "(" + formatFormula(g.L) + ") -> (" + formatFormula(g.R) + ")"
	case query.Exists:
		return "exists " + strings.Join(g.Vars, ",") + " (" + formatFormula(g.F) + ")"
	case query.Forall:
		return "forall " + strings.Join(g.Vars, ",") + " (" + formatFormula(g.F) + ")"
	}
	// Unknown formula kinds fall back to their display form.
	return f.String()
}

func joinOperands(fs []query.Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		switch f.(type) {
		case query.Atom, query.Eq, query.Truth, query.Not:
			parts[i] = formatFormula(f)
		default:
			parts[i] = "(" + formatFormula(f) + ")"
		}
	}
	return strings.Join(parts, sep)
}
