package parser

import (
	"strings"
	"testing"

	"repro/internal/instance"
	"repro/internal/query"
)

const example21Setting = `
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
target-deps:
  d3: F(y,x) -> exists z : G(x,z).
  d4: F(x,y) & F(x,z) -> y = z.
`

func TestParseSettingExample21(t *testing.T) {
	s, err := ParseSetting(example21Setting)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ST) != 2 || len(s.TGDs) != 1 || len(s.EGDs) != 1 {
		t.Fatalf("sections: st=%d tgds=%d egds=%d", len(s.ST), len(s.TGDs), len(s.EGDs))
	}
	d2 := s.TGDByName("d2")
	if d2 == nil {
		t.Fatal("d2 missing")
	}
	if len(d2.Exists) != 2 || d2.Exists[0] != "z1" || d2.Exists[1] != "z2" {
		t.Fatalf("d2.Exists = %v", d2.Exists)
	}
	if len(d2.X) != 1 || d2.X[0] != "x" || len(d2.Y) != 1 || d2.Y[0] != "y" {
		t.Fatalf("d2 X=%v Y=%v", d2.X, d2.Y)
	}
	egd := s.EGDs[0]
	if egd.Name != "d4" || egd.L != "y" || egd.R != "z" || len(egd.Body) != 2 {
		t.Fatalf("egd = %+v", egd)
	}
	if !s.WeaklyAcyclic() || !s.RichlyAcyclic() {
		t.Fatal("Example 2.1 is richly acyclic")
	}
}

func TestParseSettingAutoNames(t *testing.T) {
	s, err := ParseSetting(`
source M/1.
target E/1, F/1.
st:
  M(x) -> E(x).
target-deps:
  E(x) -> F(x).
`)
	if err != nil {
		t.Fatal(err)
	}
	if s.ST[0].Name != "st1" || s.TGDs[0].Name != "t1" {
		t.Fatalf("auto names: %q %q", s.ST[0].Name, s.TGDs[0].Name)
	}
}

func TestParseSettingErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"target E/1.", "must start with 'source'"},
		{"source M/1.\ntarget E/1.\nst:\n M(x) -> x = x.", "egd"},
		{"source M/1.\ntarget E/2.\nst:\n M(x) -> E(x,z).", "exists"},
		{"source M/1.\ntarget E/1.\nst:\n M(x) -> exists x : E(x).", "declared existential"},
		{"source M/1.\ntarget E/1.\nst:\n M(x) -> F(x).", "not in schema"},
		{"source M/1.\ntarget E/1.\ntarget-deps:\n (E(x) | E(x)) -> E(x).", "conjunction of atoms"},
	}
	for _, c := range cases {
		_, err := ParseSetting(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseSetting(%q) err = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestParseInstance(t *testing.T) {
	ins, err := ParseInstance(`M(a,b). N(a,c). T(_0, 42, 'hello world').`)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Len() != 3 {
		t.Fatalf("Len = %d", ins.Len())
	}
	if !ins.Has(instance.NewAtom("T", instance.Null(0), instance.Const("42"), instance.Const("hello world"))) {
		t.Fatalf("instance = %v", ins)
	}
}

func TestParseInstanceErrors(t *testing.T) {
	for _, src := range []string{"M(a", "M a)", "(a,b)", "M(a,)"} {
		if _, err := ParseInstance(src); err == nil {
			t.Errorf("ParseInstance(%q) should fail", src)
		}
	}
}

func TestParseFormula(t *testing.T) {
	f, err := ParseFormula("P(x) | exists y,z (P(y) & E(y,z) & !P(z))")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.(query.Or); !ok {
		t.Fatalf("expected Or at top, got %T", f)
	}
	free := query.FreeVars(f)
	if len(free) != 1 || free[0] != "x" {
		t.Fatalf("free vars = %v", free)
	}
}

func TestParseFormulaPrecedence(t *testing.T) {
	f, err := ParseFormula("A(x) & B(x) | C(x)")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := f.(query.Or)
	if !ok || len(or.Fs) != 2 {
		t.Fatalf("& must bind tighter than |: %v", f)
	}
	f2, err := ParseFormula("A(x) -> B(x) -> C(x)")
	if err != nil {
		t.Fatal(err)
	}
	imp := f2.(query.Implies)
	if _, ok := imp.R.(query.Implies); !ok {
		t.Fatalf("-> must be right-associative: %v", f2)
	}
}

func TestParseFormulaEquality(t *testing.T) {
	f, err := ParseFormula("x = 'a' & y != 3")
	if err != nil {
		t.Fatal(err)
	}
	and := f.(query.And)
	if _, ok := and.Fs[0].(query.Eq); !ok {
		t.Fatalf("first conjunct: %T", and.Fs[0])
	}
	if _, ok := and.Fs[1].(query.Not); !ok {
		t.Fatalf("second conjunct: %T", and.Fs[1])
	}
}

func TestParseCQ(t *testing.T) {
	cq, err := ParseCQ("q(x,z) :- E(x,y), F(y,z), x != z.")
	if err != nil {
		t.Fatal(err)
	}
	if len(cq.Head) != 2 || len(cq.Atoms) != 2 || len(cq.Diseqs) != 1 {
		t.Fatalf("cq = %+v", cq)
	}
	boolean, err := ParseCQ("q() :- E(x,x).")
	if err != nil {
		t.Fatal(err)
	}
	if !boolean.Boolean() {
		t.Fatal("q() should be Boolean")
	}
}

func TestParseUCQ(t *testing.T) {
	u, err := ParseUCQ(`
q(x) :- A(x).
q(x) :- B(x), x != 'c'.
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Disjuncts) != 2 {
		t.Fatalf("disjuncts = %d", len(u.Disjuncts))
	}
	if u.Pure() {
		t.Fatal("second disjunct has an inequality")
	}
	if u.MaxInequalitiesPerDisjunct() != 1 {
		t.Fatal("max inequalities should be 1")
	}
}

func TestParseFOQuery(t *testing.T) {
	q, err := ParseFOQuery("(x) . P(x) | exists y (E(x,y))")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Vars) != 1 || q.Vars[0] != "x" {
		t.Fatalf("vars = %v", q.Vars)
	}
	b, err := ParseFOQuery("exists x (P(x))")
	if err != nil {
		t.Fatal(err)
	}
	if !b.Boolean() {
		t.Fatal("sentence should be Boolean")
	}
	if _, err := ParseFOQuery("P(x)"); err == nil {
		t.Fatal("undeclared free variable must be rejected")
	}
	if _, err := ParseFOQuery("(x) . P(x) & Q(y)"); err == nil {
		t.Fatal("free variable y not declared must be rejected")
	}
}

func TestParseComments(t *testing.T) {
	ins, err := ParseInstance(`
# a comment
M(a,b). // another
`)
	if err != nil || ins.Len() != 1 {
		t.Fatalf("comments: %v %v", ins, err)
	}
}

func TestRoundTripSettingString(t *testing.T) {
	s, err := ParseSetting(example21Setting)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSetting(s.String())
	if err != nil {
		t.Fatalf("re-parsing Setting.String failed: %v\n%s", err, s.String())
	}
	if len(s2.ST) != 2 || len(s2.TGDs) != 1 || len(s2.EGDs) != 1 {
		t.Fatal("round trip lost dependencies")
	}
}
