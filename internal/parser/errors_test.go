package parser

import (
	"strings"
	"testing"
)

func TestLexerErrors(t *testing.T) {
	cases := map[string]string{
		"M(a,b) @":   "unexpected character",
		"x - y":      "unexpected '-'",
		"'unclosed":  "unterminated quoted constant",
		"'two\nline": "unterminated quoted constant",
		"_x":         "'_' must be followed by a null label",
	}
	for src, want := range cases {
		_, err := lex(src)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("lex(%q) err = %v, want containing %q", src, err, want)
		}
	}
}

func TestLexerArrowAfterIdent(t *testing.T) {
	toks, err := lex("x->y")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]tokenKind, 0, len(toks))
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokenKind{tokIdent, tokArrow, tokIdent, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("tokens = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestParseFormulaErrors(t *testing.T) {
	cases := []string{
		"",              // nothing
		"P(x",           // unclosed atom
		"P(x) &",        // dangling connective
		"exists : P(x)", // missing variable
		"P(x) extra",    // trailing input
		"x",             // bare term without comparison
		"exists x P(",   // broken quantifier body
		"(P(x)",         // unclosed paren
		"true(x)",       // keyword as relation... parses as atom? see below
		"P(x) = y",      // atom on the left of '='
	}
	for _, src := range cases {
		if _, err := ParseFormula(src); err == nil {
			// "true(x)" legitimately parses 'true' then trailing input — any
			// error is fine; absence of error is the bug.
			t.Errorf("ParseFormula(%q) should fail", src)
		}
	}
}

func TestParseCQErrors(t *testing.T) {
	cases := []string{
		"q(x)",             // no body
		"q(x) :- ",         // empty body
		"q(x) :- x != ",    // dangling inequality
		"q(x) :- E(x,y) x", // junk
		"(x) :- E(x,y).",   // missing name
		"q(x) :- x = y.",   // equality not supported in CQ bodies
	}
	for _, src := range cases {
		if _, err := ParseCQ(src); err == nil {
			t.Errorf("ParseCQ(%q) should fail", src)
		}
	}
}

func TestParseUCQErrors(t *testing.T) {
	if _, err := ParseUCQ(""); err == nil {
		t.Error("empty UCQ should fail")
	}
	// Mismatched arities panic in NewUCQ; the parser surfaces it as a panic
	// we deliberately do not recover — verify via defer.
	defer func() {
		if recover() == nil {
			t.Error("mismatched disjunct arities should panic")
		}
	}()
	ParseUCQ("q(x) :- A(x).\nq(x,y) :- E(x,y).") //nolint:errcheck
}

func TestParseSettingSectionsRepeatable(t *testing.T) {
	// Multiple st:/target-deps: sections are allowed and accumulate.
	s, err := ParseSetting(`
source M/1, N/1.
target P/1, Q/1.
st:
  M(x) -> P(x).
target-deps:
  P(x) -> Q(x).
st:
  N(x) -> Q(x).
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ST) != 2 || len(s.TGDs) != 1 {
		t.Fatalf("sections: st=%d t=%d", len(s.ST), len(s.TGDs))
	}
}

func TestParseFOQueryVarTupleDetection(t *testing.T) {
	// A parenthesised formula is not mistaken for a variable tuple.
	q, err := ParseFOQuery("(exists x (P(x)))")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Boolean() {
		t.Fatal("parenthesised sentence is Boolean")
	}
	// An empty variable tuple is accepted for Boolean queries.
	q2, err := ParseFOQuery("() . exists x (P(x))")
	if err != nil || !q2.Boolean() {
		t.Fatalf("empty tuple: %v %v", q2, err)
	}
}
