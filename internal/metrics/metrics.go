// Package metrics provides lightweight, concurrency-safe counters for the
// evaluation engine: chase steps, homomorphism-search backtracks,
// representatives visited during Rep enumeration, enumeration states, and
// goroutines spawned by the parallel paths. Counters are process-global
// atomics so the hot paths pay a single atomic add; cmd/dxcli and the
// experiment harness surface a Snapshot after a run.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing concurrency-safe counter.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// The engine's counters. They are registered at init and shared by every
// chase, homomorphism search and enumeration in the process.
var (
	// ChaseSteps counts dependency applications across all chase variants.
	ChaseSteps = register("chase_steps")
	// HomBacktracks counts undone candidate assignments in homomorphism
	// search — the backtracking effort of hom.Find/FindAll/FindOnto.
	HomBacktracks = register("hom_backtracks")
	// HomPrunes counts homomorphism searches refuted by the arc-consistency
	// pass before any backtracking: some null's candidate domain (values
	// occurring at every position the null occupies in the source) is empty.
	// Only these deterministic empty-domain events are counted.
	HomPrunes = register("hom_prunes")
	// HomCompiles counts from-scratch source compilations
	// (hom.CompileSource/CompileAtoms) — the cost the incremental
	// Search.Extend path avoids. Together with HomExists it makes the
	// compile-vs-search split of the universality check visible without a
	// profiler.
	HomCompiles = register("hom_compiles")
	// HomExtends counts incremental search extensions (hom.Search.Extend):
	// child searches built by appending compiled delta atoms to a parent
	// instead of recompiling the whole source.
	HomExtends = register("hom_extends")
	// HomExists counts homomorphism-existence queries (hom.Exists and
	// Search.Exists), the universality checks of cwa.Enumerate among them.
	HomExists = register("hom_exists")
	// HomACRefutes counts existence checks refuted by the posting-list
	// arc-consistency prefilter (hom.Precheck) without compiling a search:
	// some atom or null of the source provably cannot embed into the target.
	HomACRefutes = register("hom_ac_refutes")
	// HomACConfirms counts existence checks confirmed by the prefilter
	// without search: unit propagation left every null a single candidate
	// and the forced mapping embeds every atom.
	HomACConfirms = register("hom_ac_confirms")
	// RepCandidates counts null valuations materialised by
	// certain.ForEachRep (before the Σt membership filter).
	RepCandidates = register("rep_candidates")
	// RepVisited counts representatives that passed the Σt filter and were
	// delivered to the ForEachRep callback.
	RepVisited = register("rep_visited")
	// EnumStates counts search states explored by cwa.Enumerate.
	EnumStates = register("enum_states")
	// GoroutinesSpawned counts workers launched by the parallel evaluation
	// paths (ForEachRep fan-out, Enumerate spawn-or-inline, Incomparable).
	GoroutinesSpawned = register("goroutines_spawned")

	// ServerRequests counts requests admitted to dxserver's evaluation
	// endpoints (after the admission gate, before evaluation).
	ServerRequests = register("server_requests")
	// ServerCacheHits counts dxserver responses served from the result
	// cache without re-evaluating.
	ServerCacheHits = register("server_cache_hits")
	// ServerCacheMisses counts dxserver responses that had to be computed
	// (and were then cached when successful).
	ServerCacheMisses = register("server_cache_misses")
	// ServerRejected counts requests refused by the admission gate because
	// every worker slot was busy and the wait queue was full.
	ServerRejected = register("server_rejected")
	// ServerMutations counts mutation batches that changed a scenario's
	// source via the mutation endpoints.
	ServerMutations = register("server_mutations")
	// ServerEvictions counts scenarios and cached results dropped by the
	// registry's LRU bounds.
	ServerEvictions = register("server_evictions")
	// ServerStreamAborts counts NDJSON streams cut short because the client
	// went away (request context canceled) or a line failed to encode.
	ServerStreamAborts = register("server_stream_aborts")

	// IncrMutations counts source mutation batches applied by the
	// incremental-maintenance engine (internal/incr).
	IncrMutations = register("incr_mutations")
	// IncrDeltaFirings counts chase steps performed by incremental delta
	// chases (the Extend/ReSaturate work after a mutation, as opposed to
	// initial full chases).
	IncrDeltaFirings = register("incr_delta_firings")
	// IncrRetractions counts derived target atoms removed by walking the
	// justification graph after a source deletion.
	IncrRetractions = register("incr_retractions")
	// IncrFallbackRechase counts mutations the engine could not maintain
	// incrementally (egd merges implicated, non-monotone s-t bodies, or a
	// dirty state after an interrupted run) and resolved by a full
	// re-chase.
	IncrFallbackRechase = register("incr_fallback_rechase")

	// StoreWALAppends counts records appended to the durable store's
	// write-ahead log (registrations, mutation batches, drops).
	StoreWALAppends = register("store_wal_appends")
	// StoreWALBytes counts bytes written to the write-ahead log, frames
	// included.
	StoreWALBytes = register("store_wal_bytes")
	// StoreWALFsyncs counts explicit WAL fsyncs. Under -fsync always,
	// comparing it with store_wal_appends shows the group-commit batching:
	// concurrent appends share one sync, so fsyncs ≤ appends.
	StoreWALFsyncs = register("store_wal_fsyncs")
	// ClusterForwards counts requests this member forwarded to a peer
	// because the consistent-hash ring placed the scenario elsewhere.
	ClusterForwards = register("cluster_forwards")
	// ClusterForwardErrors counts forwards that failed after retries —
	// owner unreachable, forwarding loop cut by the hop bound, or a relay
	// error while copying the peer's response.
	ClusterForwardErrors = register("cluster_forward_errors")
	// ClusterCacheHits counts forwarded reads served from the local
	// replicated result cache after the owner revalidated the ETag (304).
	ClusterCacheHits = register("cluster_cache_hits")

	// MembershipJoins counts membership transitions this member coordinated
	// to completion (a node admitted or drained out of the ring).
	MembershipJoins = register("membership_joins")
	// MembershipTransfers counts scenarios this member handed off to their
	// new owner during transfer windows. Across a cluster the sum is the
	// total number of moved scenarios — the ~1/(n+1) rebalance cost.
	MembershipTransfers = register("membership_transfers")
	// MembershipTransferBytes counts encoded scenario-block bytes pushed
	// owner-to-owner during transfer windows.
	MembershipTransferBytes = register("membership_transfer_bytes")
	// MembershipHandoffMillis accumulates wall-clock milliseconds spent in
	// per-scenario handoffs (capture + push, mutation lock held).
	MembershipHandoffMillis = register("membership_handoff_ms")

	// StoreSnapshots counts snapshot files successfully written (periodic
	// and drain-time).
	StoreSnapshots = register("store_snapshots")
	// StoreRecoveryReplayed counts WAL records replayed at boot — records
	// acknowledged after the snapshot the recovery started from. A clean
	// shutdown leaves this at zero.
	StoreRecoveryReplayed = register("store_recovery_replayed")
	// StorePageIns counts scenario states loaded back from disk (boot-time
	// rehydration and LRU page-ins alike).
	StorePageIns = register("store_page_ins")
	// StorePageOuts counts scenario states written to page files when the
	// LRU evicted them from RAM.
	StorePageOuts = register("store_page_outs")
)

// Gauge is a concurrency-safe instantaneous value (it can go down, unlike
// a Counter). Gauges share the counters' registry surface: Snapshot,
// WriteText and Reset include them.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores the gauge's current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

var (
	// ClusterEpoch is the committed membership epoch of this member's ring
	// view (0 = not clustered or not yet joined).
	ClusterEpoch = registerGauge("cluster_epoch")
)

var (
	registry []*Counter
	gauges   []*Gauge
)

func register(name string) *Counter {
	c := &Counter{name: name}
	registry = append(registry, c)
	return c
}

func registerGauge(name string) *Gauge {
	g := &Gauge{name: name}
	gauges = append(gauges, g)
	return g
}

// Snapshot is a point-in-time copy of every registered counter.
type Snapshot map[string]int64

// Read captures the current value of every counter and gauge.
func Read() Snapshot {
	s := make(Snapshot, len(registry)+len(gauges))
	for _, c := range registry {
		s[c.name] = c.Load()
	}
	for _, g := range gauges {
		s[g.name] = g.Load()
	}
	return s
}

// Diff returns the per-counter difference s - earlier, for reporting the
// cost of a single run out of the process-global totals.
func (s Snapshot) Diff(earlier Snapshot) Snapshot {
	out := make(Snapshot, len(s))
	for k, v := range s {
		out[k] = v - earlier[k]
	}
	return out
}

// String renders the snapshot as "name=value" pairs in sorted name order.
func (s Snapshot) String() string {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = fmt.Sprintf("%s=%d", k, s[k])
	}
	return strings.Join(parts, " ")
}

// WriteText writes every counter as one "name value" line in sorted name
// order — the /metricsz scrape format. Each counter is read with a single
// atomic load, so scraping while the engine is running is safe (the dump is
// a per-counter-consistent snapshot, not a globally atomic one).
func WriteText(w io.Writer) error {
	s := Read()
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, s[k]); err != nil {
			return err
		}
	}
	return nil
}

// Reset zeroes every registered counter. Intended for tests and for
// per-command reporting in CLIs; concurrent engine activity during a Reset
// yields approximate results, which is acceptable for diagnostics.
func Reset() {
	for _, c := range registry {
		c.v.Store(0)
	}
	for _, g := range gauges {
		g.v.Store(0)
	}
}
