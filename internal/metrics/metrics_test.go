package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersAreConcurrencySafe(t *testing.T) {
	Reset()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				ChaseSteps.Inc()
				HomBacktracks.Add(2)
			}
		}()
	}
	wg.Wait()
	if got := ChaseSteps.Load(); got != 8000 {
		t.Fatalf("ChaseSteps = %d, want 8000", got)
	}
	if got := HomBacktracks.Load(); got != 16000 {
		t.Fatalf("HomBacktracks = %d, want 16000", got)
	}
}

func TestSnapshotDiffAndString(t *testing.T) {
	Reset()
	before := Read()
	ChaseSteps.Add(5)
	RepVisited.Add(3)
	d := Read().Diff(before)
	if d["chase_steps"] != 5 || d["rep_visited"] != 3 || d["hom_backtracks"] != 0 {
		t.Fatalf("Diff = %v", d)
	}
	s := d.String()
	if !strings.Contains(s, "chase_steps=5") || !strings.Contains(s, "rep_visited=3") {
		t.Fatalf("String = %q", s)
	}
	// Sorted name order.
	if strings.Index(s, "chase_steps") > strings.Index(s, "rep_visited") {
		t.Fatalf("String not sorted: %q", s)
	}
}
