package metrics_test

// Scrape-while-running: the /metricsz dump must be safe against a live
// evaluation engine. The test runs a parallel cwa.Enumerate while hammering
// metrics.WriteText and metrics.Read from several scraper goroutines; under
// `go test -race` any non-atomic read in the dump path is a failure.

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/cwa"
	"repro/internal/metrics"
	"repro/internal/parser"
)

func TestScrapeDuringParallelEnumerate(t *testing.T) {
	s, err := parser.ParseSetting(`
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
target-deps:
  d3: F(y,x) -> exists z : G(x,z).
  d4: F(x,y) & F(x,z) -> y = z.
`)
	if err != nil {
		t.Fatal(err)
	}
	src, err := parser.ParseInstance(`M(a,b). N(a,b). N(a,c).`)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var buf bytes.Buffer
				if err := metrics.WriteText(&buf); err != nil {
					t.Errorf("WriteText: %v", err)
					return
				}
				if !strings.Contains(buf.String(), "enum_states ") {
					t.Errorf("scrape missing enum_states:\n%s", buf.String())
					return
				}
				_ = metrics.Read().String()
			}
		}()
	}

	for round := 0; round < 3; round++ {
		sols, err := cwa.Enumerate(s, src, cwa.EnumOptions{Workers: 4})
		if err != nil {
			t.Fatalf("Enumerate: %v", err)
		}
		if len(sols) == 0 {
			t.Fatal("Enumerate found no CWA-solutions")
		}
	}
	close(done)
	wg.Wait()

	if metrics.EnumStates.Load() == 0 {
		t.Fatal("EnumStates stayed zero during Enumerate")
	}
}
