package chase

import (
	"repro/internal/dependency"
	"repro/internal/instance"
)

// Semi-naive (delta-driven) body evaluation: because tgd bodies are
// monotone, any body match that did not exist before a batch of atom
// insertions must use at least one inserted atom. deltaBodyEnvs therefore
// seeds the join, one body-atom occurrence at a time, with each delta atom
// (via the tgd's compiled unifier), and completes the remaining atoms
// against the tgd's cached delta plan (body minus the seeded atom, its
// variables pre-bound). Results are delivered as BodyPlan slot environments;
// the env passed to f is reused — copy what you keep.
//
// The same match can arise once per delta atom it uses; environments are
// deduplicated by their justification key (d, ū, v̄) before f is invoked, so
// tgd passes see each firing candidate exactly once.
//
// Only target tgds benefit: s-t tgd bodies are evaluated on the σ-reduct,
// which never changes during a chase, so their matches are enumerated once
// up front.
func deltaBodyEnvs(d *dependency.TGD, cur *instance.Instance, delta []instance.Atom, f func(env []instance.Value) bool) {
	DeltaBodyEnvsKeyed(d, cur, delta, func(env []instance.Value, _ string) bool {
		return f(env)
	})
}

// DeltaBodyEnvsKeyed is deltaBodyEnvs with the justification key (already
// computed for the dedup) passed alongside each environment, for callers
// that key their own bookkeeping by justification (cwa's enumeration closes
// states under chosen justifications this way). The env passed to f is
// reused — copy what you keep. f must not mutate cur.
func DeltaBodyEnvsKeyed(d *dependency.TGD, cur *instance.Instance, delta []instance.Atom, f func(env []instance.Value, key string) bool) {
	if d.BodyAtoms == nil {
		panic("chase: deltaBodyEnvs requires a conjunctive body")
	}
	n := d.BodyPlan().NumSlots()
	buf := make([]instance.Value, n)  // delta result in body slot order
	init := make([]instance.Value, n) // unified pre-bound slots (prefix used)
	seen := make(map[string]bool)
	for _, da := range delta {
		for i, ba := range d.BodyAtoms {
			if ba.Rel != da.Rel || len(ba.Terms) != len(da.Args) {
				continue
			}
			if !d.DeltaUnifierFor(i).Unify(da.Args, init) {
				continue
			}
			perm := d.DeltaPerm(i)
			stopped := !d.DeltaPlan(i).Eval(cur, init, func(env []instance.Value) bool {
				for j, s := range perm {
					buf[s] = env[j]
				}
				k := justificationKeySlots(d, buf)
				if seen[k] {
					return true
				}
				seen[k] = true
				return f(buf, k)
			})
			if stopped {
				return
			}
		}
	}
}

// deltaTracker accumulates the atoms added since the last tgd pass.
type deltaTracker struct {
	atoms []instance.Atom
	// full forces the next pass to re-enumerate everything (set after egd
	// applications, which rewrite values and invalidate the delta).
	full bool
}

func (t *deltaTracker) add(a instance.Atom)    { t.atoms = append(t.atoms, a) }
func (t *deltaTracker) invalidate()            { t.full = true; t.atoms = nil }
func (t *deltaTracker) reset()                 { t.full = false; t.atoms = nil }
func (t *deltaTracker) needsFullScan() bool    { return t.full }
func (t *deltaTracker) delta() []instance.Atom { return t.atoms }
