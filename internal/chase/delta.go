package chase

import (
	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/query"
)

// Semi-naive (delta-driven) body evaluation: because tgd bodies are
// monotone, any body match that did not exist before a batch of atom
// insertions must use at least one inserted atom. deltaBodyBindings
// therefore seeds the join, one body-atom occurrence at a time, with each
// delta atom, and completes the remaining atoms against the full instance.
// The same binding can be produced once per delta atom it uses; callers
// deduplicate by re-checking applicability before firing, which they do
// anyway.
//
// Only target tgds benefit: s-t tgd bodies are evaluated on the σ-reduct,
// which never changes during a chase, so their matches are enumerated once
// up front.
func deltaBodyBindings(d *dependency.TGD, cur *instance.Instance, delta []instance.Atom, f func(query.Binding) bool) {
	if d.BodyAtoms == nil {
		panic("chase: deltaBodyBindings requires a conjunctive body")
	}
	for _, da := range delta {
		for i, ba := range d.BodyAtoms {
			if ba.Rel != da.Rel || len(ba.Terms) != len(da.Args) {
				continue
			}
			// Unify the i-th body atom with the delta atom.
			env := query.Binding{}
			ok := true
			for j, t := range ba.Terms {
				if !t.IsVar() {
					if t.Val != da.Args[j] {
						ok = false
					}
					continue
				}
				if prev, bound := env[t.Var]; bound {
					if prev != da.Args[j] {
						ok = false
					}
					continue
				}
				env[t.Var] = da.Args[j]
			}
			if !ok {
				continue
			}
			rest := make([]query.Atom, 0, len(d.BodyAtoms)-1)
			rest = append(rest, d.BodyAtoms[:i]...)
			rest = append(rest, d.BodyAtoms[i+1:]...)
			stopped := !query.MatchAtoms(cur, rest, env, f)
			if stopped {
				return
			}
		}
	}
}

// deltaTracker accumulates the atoms added since the last tgd pass.
type deltaTracker struct {
	atoms []instance.Atom
	// full forces the next pass to re-enumerate everything (set after egd
	// applications, which rewrite values and invalidate the delta).
	full bool
}

func (t *deltaTracker) add(a instance.Atom)    { t.atoms = append(t.atoms, a) }
func (t *deltaTracker) invalidate()            { t.full = true; t.atoms = nil }
func (t *deltaTracker) reset()                 { t.full = false; t.atoms = nil }
func (t *deltaTracker) needsFullScan() bool    { return t.full }
func (t *deltaTracker) delta() []instance.Atom { return t.atoms }
