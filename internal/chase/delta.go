package chase

import (
	"repro/internal/dependency"
	"repro/internal/instance"
)

// Semi-naive (delta-driven) body evaluation: because tgd bodies are
// monotone, any body match that did not exist before a batch of atom
// insertions must use at least one inserted atom. deltaBodyEnvs therefore
// seeds the join, one body-atom occurrence at a time, with each delta atom
// (via the tgd's compiled unifier), and completes the remaining atoms
// against the tgd's cached delta plan (body minus the seeded atom, its
// variables pre-bound). Results are delivered as BodyPlan slot environments;
// the env passed to f is reused — copy what you keep.
//
// The same match can arise once per delta atom it uses; environments are
// deduplicated by their justification key (d, ū, v̄) before f is invoked, so
// tgd passes see each firing candidate exactly once.
//
// Only target tgds benefit: s-t tgd bodies are evaluated on the σ-reduct,
// which never changes during a chase, so their matches are enumerated once
// up front.
func deltaBodyEnvs(d *dependency.TGD, cur *instance.Instance, delta []instance.Atom, f func(env []instance.Value) bool) {
	DeltaBodyEnvsKeyed(d, cur, delta, func(env []instance.Value, _ string) bool {
		return f(env)
	})
}

// deltaState is the per-call scratch shared by the delta drivers: slot
// buffers sized to the body plan and the justification-key dedup set.
type deltaState struct {
	buf  []instance.Value // delta result in body slot order
	init []instance.Value // unified pre-bound slots (prefix used)
	seen map[string]bool
}

func newDeltaState(d *dependency.TGD) *deltaState {
	if d.BodyAtoms == nil {
		panic("chase: deltaBodyEnvs requires a conjunctive body")
	}
	n := d.BodyPlan().NumSlots()
	return &deltaState{
		buf:  make([]instance.Value, n),
		init: make([]instance.Value, n),
		seen: make(map[string]bool),
	}
}

// deltaAtomEnvs seeds the tgd's body join with one delta atom and reports
// whether enumeration may continue (false: f stopped it).
func deltaAtomEnvs(d *dependency.TGD, cur *instance.Instance, st *deltaState, da instance.Atom, f func(env []instance.Value, key string) bool) bool {
	for i, ba := range d.BodyAtoms {
		if ba.Rel != da.Rel || len(ba.Terms) != len(da.Args) {
			continue
		}
		if !d.DeltaUnifierFor(i).Unify(da.Args, st.init) {
			continue
		}
		perm := d.DeltaPerm(i)
		stopped := !d.DeltaPlan(i).Eval(cur, st.init, func(env []instance.Value) bool {
			for j, s := range perm {
				st.buf[s] = env[j]
			}
			k := justificationKeySlots(d, st.buf)
			if st.seen[k] {
				return true
			}
			st.seen[k] = true
			return f(st.buf, k)
		})
		if stopped {
			return false
		}
	}
	return true
}

// DeltaBodyEnvsKeyedBetween is DeltaBodyEnvsKeyed with the delta given as a
// watermark interval over cur's insertion log instead of a copied atom
// slice: the delta atoms are exactly those added between the two marks, in
// insertion order (instance.EachAddedBetween). Both marks must be valid on
// cur. Atoms of relations not mentioned in the body (e.g. source atoms in
// the interval when d is a target tgd) unify with nothing and are skipped.
// The env passed to f is reused — copy what you keep. f must not mutate cur.
func DeltaBodyEnvsKeyedBetween(d *dependency.TGD, cur *instance.Instance, from, to instance.Mark, f func(env []instance.Value, key string) bool) {
	st := newDeltaState(d)
	cur.EachAddedBetween(from, to, func(da instance.Atom) bool {
		return deltaAtomEnvs(d, cur, st, da, f)
	})
}

// DeltaBodyEnvsKeyed is deltaBodyEnvs with the justification key (already
// computed for the dedup) passed alongside each environment, for callers
// that key their own bookkeeping by justification (cwa's enumeration closes
// states under chosen justifications this way). The env passed to f is
// reused — copy what you keep. f must not mutate cur.
func DeltaBodyEnvsKeyed(d *dependency.TGD, cur *instance.Instance, delta []instance.Atom, f func(env []instance.Value, key string) bool) {
	st := newDeltaState(d)
	for _, da := range delta {
		if !deltaAtomEnvs(d, cur, st, da, f) {
			return
		}
	}
}

// deltaTracker tracks the insertion-log position of the last tgd pass: the
// next pass's delta is the watermark interval [mark, now) — a view over the
// instance's own log, with no copied atom sets.
type deltaTracker struct {
	mark instance.Mark
	// full forces the next pass to re-enumerate everything (set after egd
	// applications, which rewrite values and invalidate the delta; a stale
	// mark — removals bumped the epoch — forces the same fallback).
	full bool
}

func (t *deltaTracker) invalidate() { t.full = true }
