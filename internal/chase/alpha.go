package chase

import (
	"fmt"
	"strings"

	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/query"
)

// Justification identifies a potential justification (d, ū, v̄, z) ∈ J_D
// for producing a value through the existentially quantified variable z of
// tgd d under the body assignment x̄ ↦ ū, ȳ ↦ v̄ (Section 4).
type Justification struct {
	Dep string
	U   []instance.Value // assignment to d.X, in order
	V   []instance.Value // assignment to d.Y, in order
	Z   string
}

// Key returns a canonical map key for the justification.
func (j Justification) Key() string {
	var b strings.Builder
	b.WriteString(j.Dep)
	b.WriteByte('(')
	for i, v := range j.U {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(v.String())
	}
	b.WriteByte(';')
	for i, v := range j.V {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(v.String())
	}
	b.WriteString(").")
	b.WriteString(j.Z)
	return b.String()
}

func (j Justification) String() string { return j.Key() }

// Alpha is a mapping α: J_D → Dom. Implementations must be functions: the
// same justification always receives the same value (requirement CWA2 — no
// justification generates multiple values).
type Alpha interface {
	Value(j Justification) instance.Value
}

// FreshAlpha assigns a globally fresh null to every justification, memoized
// so repeated queries agree. It is the canonical α: the chase it drives
// produces the canonical CWA-presolution used for CanSol.
type FreshAlpha struct {
	Nulls *instance.NullSource
	Memo  map[string]instance.Value
}

// NewFreshAlpha builds a FreshAlpha drawing from the given null source.
func NewFreshAlpha(src *instance.NullSource) *FreshAlpha {
	return &FreshAlpha{Nulls: src, Memo: make(map[string]instance.Value)}
}

// Value returns the memoized fresh null for the justification.
func (a *FreshAlpha) Value(j Justification) instance.Value {
	k := j.Key()
	if v, ok := a.Memo[k]; ok {
		return v
	}
	v := a.Nulls.Fresh()
	a.Memo[k] = v
	return v
}

// MapAlpha reads explicitly tabulated justification values and delegates
// everything else to Base (or panics if Base is nil), mirroring the paper's
// tables where "∗ indicates that the value can be arbitrary".
type MapAlpha struct {
	M    map[string]instance.Value
	Base Alpha
}

// Value looks the justification up in the table, falling back to Base.
func (a MapAlpha) Value(j Justification) instance.Value {
	if v, ok := a.M[j.Key()]; ok {
		return v
	}
	if a.Base == nil {
		panic("chase: MapAlpha has no value for justification " + j.Key())
	}
	return a.Base.Value(j)
}

// alphaTuple computes ᾱ(d, ū, v̄): the tuple of α-values for d's
// existential variables in order.
func alphaTuple(a Alpha, d *dependency.TGD, env query.Binding) map[string]instance.Value {
	u := make([]instance.Value, len(d.X))
	for i, x := range d.X {
		u[i] = env[x]
	}
	v := make([]instance.Value, len(d.Y))
	for i, y := range d.Y {
		v[i] = env[y]
	}
	out := make(map[string]instance.Value, len(d.Exists))
	for _, z := range d.Exists {
		out[z] = a.Value(Justification{Dep: d.Name, U: u, V: v, Z: z})
	}
	return out
}

// AlphaResult extends Result with the α-chase verdict.
type AlphaResult struct {
	Result
	// Successful reports Definition 4.2(1): the chase reached a state where
	// the result satisfies Σ and no tgd is α-applicable.
	Successful bool
}

// Alpha runs an α-chase of the source instance with the setting's
// dependencies (Definition 4.1): a tgd d is α-applied with (ū, v̄) when its
// body holds and the head instantiated with the specific values ᾱ(d, ū, v̄)
// is not yet present — not when no witness exists at all (Remark 4.3
// explains why). Egd violations are resolved as in the standard chase.
//
// The outcome is one of
//   - a successful chase (nil error): finite, result satisfies Σ, no tgd
//     α-applicable (Definition 4.2(1)),
//   - a failing chase (*EgdFailureError): an egd equated two constants
//     (Definition 4.2(2)),
//   - ErrBudgetExceeded: no fixpoint within the budget; by Lemma 4.5 a
//     genuinely infinite α-chase admits no successful sibling, so a generous
//     budget makes this a reliable non-termination signal.
func AlphaChase(s *dependency.Setting, src *instance.Instance, a Alpha, opt Options) (*AlphaResult, error) {
	if src.HasNulls() {
		return nil, fmt.Errorf("chase: source instance must be null-free")
	}
	cur := src.Clone()
	res := &AlphaResult{}
	budget := opt.maxSteps()
	stc := &stCache{}

	for {
		if err := opt.err(); err != nil {
			return nil, err
		}
		if res.Steps >= budget {
			return nil, ErrBudgetExceeded
		}
		if applied, err := standardEgdPass(s, cur, &res.Result, opt); err != nil {
			return nil, err
		} else if applied {
			continue
		}
		if applied := alphaTgdPass(s, cur, a, &res.Result, opt, stc); applied {
			continue
		}
		break
	}
	res.Instance = cur
	res.Target = cur.Reduct(s.Target)
	res.Successful = true
	return res, nil
}

// alphaApplicable reports whether d can be α-applied with the binding:
// the head under ᾱ(d, ū, v̄) is not fully present. Binding-based slow path,
// used only for general FO bodies (s-t tgds).
func alphaApplicable(d *dependency.TGD, cur *instance.Instance, a Alpha, env query.Binding) ([]instance.Atom, bool) {
	full := env.Clone()
	for z, v := range alphaTuple(a, d, env) {
		full[z] = v
	}
	atoms := headAtomsUnder(d, full)
	missing := false
	for _, at := range atoms {
		if !cur.Has(at) {
			missing = true
			break
		}
	}
	return atoms, missing
}

// alphaValuesSlots computes ᾱ(d, ū, v̄) for a body slot environment, in
// d.Exists order, appending into out. FreshAlpha — the canonical hot path —
// is served through its memo directly, with keys assembled from the slot
// environment: justificationKeySlots emits byte-for-byte the prefix of
// Justification.Key, so the memo stays interchangeable with Key()-based
// lookups (callers read alpha.Memo by Justification.Key after Canonical).
func alphaValuesSlots(a Alpha, d *dependency.TGD, env []instance.Value, out []instance.Value) []instance.Value {
	out = out[:0]
	if fa, ok := a.(*FreshAlpha); ok {
		base := justificationKeySlots(d, env)
		for _, z := range d.Exists {
			k := base + z
			v, ok := fa.Memo[k]
			if !ok {
				v = fa.Nulls.Fresh()
				fa.Memo[k] = v
			}
			out = append(out, v)
		}
		return out
	}
	xs, ys := d.XSlots(), d.YSlots()
	u := make([]instance.Value, len(xs))
	for i, sl := range xs {
		u[i] = env[sl]
	}
	v := make([]instance.Value, len(ys))
	for i, sl := range ys {
		v[i] = env[sl]
	}
	for _, z := range d.Exists {
		out = append(out, a.Value(Justification{Dep: d.Name, U: u, V: v, Z: z}))
	}
	return out
}

// alphaTgdPass fires every α-applicable tgd binding once. Conjunctive bodies
// run on the slot path: body environments come from the compiled body plan
// (s-t tgds from the stCache — their σ-reduct matches never change during a
// run), α-values fill the existential slots directly, and the applicability
// test is a template presence check with no atom materialization. Only
// general FO bodies (s-t tgds) still go through Bindings.
func alphaTgdPass(s *dependency.Setting, cur *instance.Instance, a Alpha, res *Result, opt Options, stc *stCache) bool {
	budget := opt.maxSteps()
	fired := false
	var vals, full []instance.Value
	for _, d := range s.AllTGDs() {
		if d.BodyAtoms == nil {
			var pending []query.Binding
			for _, env := range stc.foEnvs(s, d, cur) {
				if _, applicable := alphaApplicable(d, cur, a, env); applicable {
					pending = append(pending, env)
				}
			}
			for _, env := range pending {
				if res.Steps >= budget || opt.err() != nil {
					return true
				}
				atoms, applicable := alphaApplicable(d, cur, a, env)
				if !applicable {
					continue
				}
				for _, at := range atoms {
					cur.Add(at)
				}
				res.Steps++
				metrics.ChaseSteps.Inc()
				fired = true
				if opt.Trace {
					res.Trace = append(res.Trace, Step{Dep: d.Name, Kind: "tgd", Added: atoms})
				}
			}
			continue
		}

		hp := d.HeadSlotsPlan()
		if cap(full) < hp.NumSlots() {
			full = make([]instance.Value, hp.NumSlots())
		}
		fullEnv := full[:hp.NumSlots()]
		tmpl := d.HeadTemplates()
		zslots := d.ExistsSlots()
		// applicable leaves fullEnv holding env extended with the α-values,
		// ready for Instantiate when the caller fires.
		applicable := func(env []instance.Value) bool {
			vals = alphaValuesSlots(a, d, env, vals)
			copy(fullEnv, env)
			for i, sl := range zslots {
				fullEnv[sl] = vals[i]
			}
			return !tmpl.AllPresent(cur, fullEnv)
		}
		var pending [][]instance.Value
		if isST(s, d) {
			for _, env := range stc.conjEnvs(s, d, cur) {
				if applicable(env) {
					pending = append(pending, env)
				}
			}
		} else {
			d.BodyPlan().Eval(cur, nil, func(env []instance.Value) bool {
				if applicable(env) {
					pending = append(pending, append([]instance.Value(nil), env...))
				}
				return true
			})
		}
		for _, env := range pending {
			if res.Steps >= budget || opt.err() != nil {
				return true
			}
			if !applicable(env) {
				continue
			}
			atoms := tmpl.Instantiate(fullEnv)
			for _, at := range atoms {
				cur.Add(at)
			}
			res.Steps++
			metrics.ChaseSteps.Inc()
			fired = true
			if opt.Trace {
				res.Trace = append(res.Trace, Step{Dep: d.Name, Kind: "tgd", Added: atoms})
			}
		}
	}
	return fired
}

// Canonical computes a canonical successful α-chase of the source instance,
// returning its result and the α it settled on.
//
// A fresh-null α alone does not work in the presence of egds: after an egd
// merges two α-values, the heads instantiated with the original values are
// "missing" again and the tgds refire forever — exactly the α3 phenomenon of
// Example 4.4. Canonical therefore iterates fixed-α chases: it runs the
// chase, records which nulls the egds merged, rewrites the memoized α-values
// through those merges, and restarts from the source, until a run completes
// without any egd application. That final run is a genuine successful
// α-chase (Lemma 4.5's observation that successful chases apply only tgds
// holds by construction), and its result is a CWA-presolution for the
// settled α.
//
// For settings whose target dependencies are egds only, or egds plus full
// tgds, the settled result is CanSol_D(S), the canonical maximal
// CWA-solution of Proposition 5.4.
func Canonical(s *dependency.Setting, src *instance.Instance, opt Options) (*AlphaResult, *FreshAlpha, error) {
	if src.HasNulls() {
		return nil, nil, fmt.Errorf("chase: source instance must be null-free")
	}
	alpha := NewFreshAlpha(instance.NewNullSource(0))
	budget := opt.maxSteps()
	totalSteps := 0
	// One stCache across all restarts: every restart clones the same source,
	// and σ-atoms never change during a run (heads are over τ; egds only
	// replace nulls, which the null-free source atoms never mention), so the
	// σ-reduct and the s-t body matches are constants of the whole loop.
	stc := &stCache{}

	for {
		cur := src.Clone()
		res := &AlphaResult{}
		merged := false
	run:
		for {
			if err := opt.err(); err != nil {
				return nil, nil, err
			}
			if totalSteps+res.Steps >= budget {
				return nil, nil, ErrBudgetExceeded
			}
			// Egd pass with α rewriting.
			for _, d := range s.EGDs {
				a, b, ok := findEgdViolation(d, cur)
				if !ok {
					continue
				}
				winner, loser, err := applyEgd(d.Name, cur, a, b)
				if err != nil {
					return nil, nil, err
				}
				for k, v := range alpha.Memo {
					if v == loser {
						alpha.Memo[k] = winner
					}
				}
				res.Steps++
				metrics.ChaseSteps.Inc()
				merged = true
				if opt.Trace {
					res.Trace = append(res.Trace, Step{Dep: d.Name, Kind: "egd", Equated: [2]instance.Value{a, b}})
				}
				continue run
			}
			if alphaTgdPass(s, cur, alpha, &res.Result, opt, stc) {
				continue
			}
			break
		}
		totalSteps += res.Steps
		if merged {
			continue // α changed; replay from the source with the settled α
		}
		res.Instance = cur
		res.Target = cur.Reduct(s.Target)
		res.Successful = true
		res.Steps = totalSteps
		return res, alpha, nil
	}
}

// CWAPresolution computes the canonical CWA-presolution: the target reduct
// of Canonical's successful α-chase, together with the settled α.
func CWAPresolution(s *dependency.Setting, src *instance.Instance, opt Options) (*instance.Instance, *FreshAlpha, error) {
	res, alpha, err := Canonical(s, src, opt)
	if err != nil {
		return nil, nil, err
	}
	return res.Target, alpha, nil
}
