package chase

import (
	"math"

	"repro/internal/dependency"
	"repro/internal/instance"
)

// TerminationBound computes a safe step budget for the standard chase of a
// weakly acyclic setting on a source instance of the given active-domain
// size, following the Fagin-et-al. argument: stratify the target positions
// by rank (the maximum number of existential edges on a path into the
// position, finite iff the setting is weakly acyclic) and bound the number
// of distinct values per position rank by rank. The returned bound is the
// resulting cap on distinct atoms (each chase step adds at least one atom),
// clamped to at most math.MaxInt32 and at least 1.
//
// ok is false when the setting is not weakly acyclic, in which case no
// finite bound exists in general and bound is 0.
func TerminationBound(s *dependency.Setting, domSize int) (bound int, ok bool) {
	g := dependency.BuildDependencyGraph(s, false)
	if g.HasExistentialCycle() {
		return 0, false
	}
	ranks := g.Ranks()
	maxRank := 0
	for _, r := range ranks {
		if r > maxRank {
			maxRank = r
		}
	}
	// Values per rank: v(0) = |dom(S)| + constants in dependencies;
	// v(r+1) ≤ v(r) + (#tgds) · v(r)^(max frontier size) fresh values —
	// the standard (coarse) inductive bound.
	maxFrontier := 1
	for _, d := range s.AllTGDs() {
		if f := len(d.X) + len(d.Y); f > maxFrontier {
			maxFrontier = f
		}
	}
	nTgds := float64(len(s.AllTGDs()))
	v := float64(domSize + 1 + countDependencyConstants(s))
	for r := 0; r < maxRank; r++ {
		v = v + nTgds*math.Pow(v, float64(maxFrontier))
		if v > math.MaxInt32 {
			return math.MaxInt32, true
		}
	}
	// Atoms: every target relation over the value pool, coarsely.
	maxArity := 1
	for _, ar := range s.Target {
		if ar > maxArity {
			maxArity = ar
		}
	}
	atoms := float64(len(s.Target)) * math.Pow(v, float64(maxArity))
	if atoms > math.MaxInt32 {
		return math.MaxInt32, true
	}
	if atoms < 1 {
		atoms = 1
	}
	return int(atoms), true
}

// countDependencyConstants counts the distinct constants mentioned in the
// dependencies' atoms (they can enter the chase result).
func countDependencyConstants(s *dependency.Setting) int {
	seen := make(map[instance.Value]bool)
	for _, d := range s.AllTGDs() {
		for _, a := range d.Head {
			for _, t := range a.Terms {
				if !t.IsVar() {
					seen[t.Val] = true
				}
			}
		}
		for _, a := range d.BodyAtoms {
			for _, t := range a.Terms {
				if !t.IsVar() {
					seen[t.Val] = true
				}
			}
		}
	}
	for _, d := range s.EGDs {
		for _, a := range d.Body {
			for _, t := range a.Terms {
				if !t.IsVar() {
					seen[t.Val] = true
				}
			}
		}
	}
	return len(seen)
}

// StandardBounded runs the standard chase with a budget derived from
// TerminationBound, falling back to Options.MaxSteps (or the default) for
// settings that are not weakly acyclic.
func StandardBounded(s *dependency.Setting, src *instance.Instance, opt Options) (*Result, error) {
	if bound, ok := TerminationBound(s, len(src.Dom())); ok {
		if opt.MaxSteps == 0 || bound < opt.MaxSteps {
			opt.MaxSteps = bound
		}
	}
	return Standard(s, src, opt)
}
