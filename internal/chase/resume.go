package chase

import (
	"repro/internal/dependency"
	"repro/internal/instance"
)

// ResumeFixpoint reconstructs a live Resumable around a previously computed
// chase fixpoint, without re-running the chase. The durable store uses it
// at recovery: a persisted fixpoint (decoded via the instance codec) is
// adopted as the current state, and subsequent Extend calls delta-chase
// from it exactly as if the original process had kept running.
//
// fixpoint is the full σ ∪ τ chase instance; the Resumable takes ownership
// of it. steps seeds the lifetime step counter (for reporting only). The
// caller asserts that fixpoint really is a fixpoint of s — nothing is
// re-verified here; ReSaturate would repair a stale one.
//
// The fresh-null source starts past the largest label in the fixpoint, so
// resumed chases never collide with persisted nulls. The delta tracker is
// anchored at the instance's current mark: a decoded instance starts a
// fresh insertion epoch, so the first Extend sees exactly the atoms it
// inserts — a pure delta pass, the whole point of resuming.
//
// Justification bookkeeping (incr's graph) is not reconstructible from the
// fixpoint alone; callers that need deletion support must treat the resumed
// state as merged (fall back to re-chase on deletes), which internal/incr's
// Resume does.
func ResumeFixpoint(s *dependency.Setting, fixpoint *instance.Instance, steps int, obs Observer) *Resumable {
	r := &Resumable{
		s:       s,
		cur:     fixpoint,
		nulls:   instance.NewNullSource(fixpoint.MaxNullLabel() + 1),
		obs:     obs,
		steps:   steps,
		stc:     &stCache{},
		tracker: &deltaTracker{mark: fixpoint.Mark()},
		stSet:   make(map[*dependency.TGD]bool, len(s.ST)),
	}
	for _, d := range s.ST {
		r.stSet[d] = true
	}
	return r
}
