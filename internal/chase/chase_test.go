package chase

import (
	"errors"
	"testing"

	"repro/internal/dependency"
	"repro/internal/hom"
	"repro/internal/instance"
	"repro/internal/parser"
)

func mustSetting(t testing.TB, src string) *dependency.Setting {
	t.Helper()
	s, err := parser.ParseSetting(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustInstance(t testing.TB, src string) *instance.Instance {
	t.Helper()
	ins, err := parser.ParseInstance(src)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

const example21 = `
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
target-deps:
  d3: F(y,x) -> exists z : G(x,z).
  d4: F(x,y) & F(x,z) -> y = z.
`

const source21 = `M(a,b). N(a,b). N(a,c).`

func c(n string) instance.Value { return instance.Const(n) }
func nl(i int64) instance.Value { return instance.Null(i) }

func TestStandardChaseExample21(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	res, err := Standard(s, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !IsSolution(s, src, res.Target) {
		t.Fatalf("chase result is not a solution: %v", res.Target)
	}
	// The universal solutions of Example 2.1 are hom-equivalent to T3.
	t3 := instance.FromAtoms(
		instance.NewAtom("E", c("a"), c("b")),
		instance.NewAtom("F", c("a"), nl(100)),
		instance.NewAtom("G", nl(100), nl(101)),
	)
	if !hom.HomEquivalent(res.Target, t3) {
		t.Fatalf("chase result %v not hom-equivalent to T3", res.Target)
	}
	// Universality against the paper's concrete solutions T1, T2, T3.
	t1 := instance.FromAtoms(
		instance.NewAtom("E", c("a"), c("b")),
		instance.NewAtom("E", c("a"), nl(100)),
		instance.NewAtom("E", c("c"), nl(101)),
		instance.NewAtom("F", c("a"), c("d")),
		instance.NewAtom("G", c("d"), nl(102)),
	)
	if !hom.Exists(res.Target, t1) {
		t.Fatal("no hom from chase result to T1")
	}
}

func TestStandardChaseSourcePreserved(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	res, err := Standard(s, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Instance.Reduct(s.Source).Equal(src) {
		t.Fatal("chase must not alter the source reduct")
	}
	if res.Target.Reduct(s.Source).Len() != 0 {
		t.Fatal("target reduct must contain no source atoms")
	}
}

func TestStandardChaseEgdFailure(t *testing.T) {
	s := mustSetting(t, `
source N/2.
target F/2.
st:
  N(x,y) -> F(x,y).
target-deps:
  F(x,y) & F(x,z) -> y = z.
`)
	src := mustInstance(t, `N(a,b). N(a,c).`)
	_, err := Standard(s, src, Options{})
	if !IsEgdFailure(err) {
		t.Fatalf("want egd failure, got %v", err)
	}
}

func TestStandardChaseEgdIdentifiesNulls(t *testing.T) {
	// F must be functional; two firings create nulls that the egd merges
	// with the constant witness.
	s := mustSetting(t, `
source N/1, W/2.
target F/2.
st:
  N(x) -> exists z : F(x,z).
  W(x,y) -> F(x,y).
target-deps:
  F(x,y) & F(x,z) -> y = z.
`)
	src := mustInstance(t, `N(a). W(a,b).`)
	res, err := Standard(s, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := mustInstance(t, `F(a,b).`)
	if !res.Target.Equal(want) {
		t.Fatalf("target = %v, want %v", res.Target, want)
	}
}

func TestStandardChaseNonTerminating(t *testing.T) {
	s := mustSetting(t, `
source S/2.
target E/2.
st:
  S(x,y) -> E(x,y).
target-deps:
  E(x,y) -> exists z : E(y,z).
`)
	src := mustInstance(t, `S(a,b).`)
	_, err := Standard(s, src, Options{MaxSteps: 500})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want budget exceeded, got %v", err)
	}
}

func TestStandardChaseWeaklyAcyclicTerminates(t *testing.T) {
	s := mustSetting(t, `
source S/2.
target E/2, P/1.
st:
  S(x,y) -> E(x,y).
target-deps:
  E(x,y) -> exists z : P(z).
  P(x) -> exists w : P(w).
`)
	// P(x) -> exists w P(w): no x̄ variables (x not in head), so no edges;
	// weakly acyclic, and the standard chase fires it at most once per
	// violation — it is satisfied as soon as one P-atom exists.
	if !s.WeaklyAcyclic() {
		t.Fatal("setting should be weakly acyclic")
	}
	src := mustInstance(t, `S(a,b).`)
	res, err := Standard(s, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Target.RelLen("P") != 1 {
		t.Fatalf("want exactly one P atom, got %v", res.Target)
	}
}

func TestIsSolutionExample21(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	// The paper's T1, T2, T3 are all solutions.
	for name, tgt := range map[string]*instance.Instance{
		"T1": instance.FromAtoms(
			instance.NewAtom("E", c("a"), c("b")),
			instance.NewAtom("E", c("a"), nl(1)),
			instance.NewAtom("E", c("c"), nl(2)),
			instance.NewAtom("F", c("a"), c("d")),
			instance.NewAtom("G", c("d"), nl(3)),
		),
		"T2": instance.FromAtoms(
			instance.NewAtom("E", c("a"), c("b")),
			instance.NewAtom("E", c("a"), nl(1)),
			instance.NewAtom("E", c("a"), nl(2)),
			instance.NewAtom("F", c("a"), nl(3)),
			instance.NewAtom("G", nl(3), nl(4)),
		),
		"T3": instance.FromAtoms(
			instance.NewAtom("E", c("a"), c("b")),
			instance.NewAtom("F", c("a"), nl(1)),
			instance.NewAtom("G", nl(1), nl(2)),
		),
	} {
		if !IsSolution(s, src, tgt) {
			t.Errorf("%s should be a solution", name)
		}
	}
	// Dropping G breaks d3; duplicating F with distinct values breaks d4.
	notSol := instance.FromAtoms(
		instance.NewAtom("E", c("a"), c("b")),
		instance.NewAtom("F", c("a"), nl(1)),
	)
	if IsSolution(s, src, notSol) {
		t.Error("missing G atom: not a solution")
	}
	badEgd := instance.FromAtoms(
		instance.NewAtom("E", c("a"), c("b")),
		instance.NewAtom("F", c("a"), c("c")),
		instance.NewAtom("F", c("a"), c("d")),
		instance.NewAtom("G", c("c"), nl(1)),
		instance.NewAtom("G", c("d"), nl(2)),
	)
	if IsSolution(s, src, badEgd) {
		t.Error("egd violation: not a solution")
	}
}

// alpha44 builds the α mappings of Example 4.4. Justification keys follow
// Justification.Key(): "dep(ū;v̄).z".
func alpha44(t *testing.T, table map[string]instance.Value) Alpha {
	t.Helper()
	return MapAlpha{M: table, Base: NewFreshAlpha(instance.NewNullSource(100))}
}

func TestAlphaChaseExample44Alpha1(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	// α1: (d2,a;b,z1)=⊥1, (d2,a;b,z2)=⊥3, (d2,a;c,z1)=⊥2, (d2,a;c,z2)=⊥3,
	//     (d3,⊥3;a,z)=⊥4.
	a := alpha44(t, map[string]instance.Value{
		"d2(a;b).z1": nl(1),
		"d2(a;b).z2": nl(3),
		"d2(a;c).z1": nl(2),
		"d2(a;c).z2": nl(3),
		"d3(_3;a).z": nl(4),
	})
	res, err := AlphaChase(s, src, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Successful {
		t.Fatal("α1-chase must be successful")
	}
	// Result is I4 = S ∪ T2 (paper, Example 4.4).
	t2 := instance.FromAtoms(
		instance.NewAtom("E", c("a"), c("b")),
		instance.NewAtom("E", c("a"), nl(1)),
		instance.NewAtom("E", c("a"), nl(2)),
		instance.NewAtom("F", c("a"), nl(3)),
		instance.NewAtom("G", nl(3), nl(4)),
	)
	if !res.Target.Equal(t2) {
		t.Fatalf("α1-chase result = %v, want %v", res.Target, t2)
	}
	if !IsSolution(s, src, res.Target) {
		t.Fatal("α1-chase result must be a solution")
	}
}

func TestAlphaChaseExample44Alpha2Failing(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	// α2: (d2,a;b,z1)=b, (d2,a;b,z2)=c, (d2,a;c,z1)=b, (d2,a;c,z2)=d.
	a := alpha44(t, map[string]instance.Value{
		"d2(a;b).z1": c("b"),
		"d2(a;b).z2": c("c"),
		"d2(a;c).z1": c("b"),
		"d2(a;c).z2": c("d"),
	})
	_, err := AlphaChase(s, src, a, Options{})
	if !IsEgdFailure(err) {
		t.Fatalf("α2-chase must fail on egd d4, got %v", err)
	}
}

func TestAlphaChaseExample44Alpha3Infinite(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	// α3: (d2,a;b,z1)=b, (d2,a;b,z2)=⊥3, (d2,a;c,z1)=b, (d2,a;c,z2)=⊥4,
	//     (d3,⊥3;a,z)=⊥1, (d3,⊥4;a,z)=⊥2.
	// The paper: any α3-chase "will have to loop forever" — d4 keeps merging
	// ⊥3/⊥4 while d2 with (a,c) keeps becoming α-applicable again.
	a := alpha44(t, map[string]instance.Value{
		"d2(a;b).z1": c("b"),
		"d2(a;b).z2": nl(3),
		"d2(a;c).z1": c("b"),
		"d2(a;c).z2": nl(4),
		"d3(_3;a).z": nl(1),
		"d3(_4;a).z": nl(2),
	})
	_, err := AlphaChase(s, src, a, Options{MaxSteps: 2000})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("α3-chase must exceed any budget, got %v", err)
	}
}

func TestCWAPresolutionExample21(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	tgt, alpha, err := CWAPresolution(s, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !IsSolution(s, src, tgt) {
		t.Fatalf("canonical presolution must be a solution: %v", tgt)
	}
	// Fresh α gives distinct values per justification; d4 merges the two
	// F-values. Shape: E(a,b), E(a,_i), E(a,_j), F(a,_k), G(_k,_l), G(_k,_m).
	if tgt.RelLen("F") != 1 {
		t.Fatalf("egd d4 must leave one F atom: %v", tgt)
	}
	if tgt.RelLen("E") != 3 {
		t.Fatalf("want 3 E atoms: %v", tgt)
	}
	if len(alpha.Memo) == 0 {
		t.Fatal("alpha memo should record justifications")
	}
}

func TestAlphaChaseJustificationKey(t *testing.T) {
	j := Justification{Dep: "d2", U: []instance.Value{c("a")}, V: []instance.Value{c("b")}, Z: "z1"}
	if j.Key() != "d2(a;b).z1" {
		t.Fatalf("Key = %q", j.Key())
	}
}

func TestFreshAlphaMemoized(t *testing.T) {
	a := NewFreshAlpha(instance.NewNullSource(0))
	j := Justification{Dep: "d", U: []instance.Value{c("a")}, Z: "z"}
	v1 := a.Value(j)
	v2 := a.Value(j)
	if v1 != v2 {
		t.Fatal("FreshAlpha must memoize (CWA2: one value per justification)")
	}
	j2 := Justification{Dep: "d", U: []instance.Value{c("b")}, Z: "z"}
	if a.Value(j2) == v1 {
		t.Fatal("distinct justifications must get distinct fresh nulls")
	}
}

func TestMapAlphaPanicsWithoutBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MapAlpha without base must panic on unknown justification")
		}
	}()
	a := MapAlpha{M: map[string]instance.Value{}}
	a.Value(Justification{Dep: "d", Z: "z"})
}

// Lemma 4.5: every successful α-chase has the same result. We approximate
// order-independence by comparing the engine's result with a manual
// reordering of the same α on Example 2.1 (the α1 table), where the chase is
// confluent by the lemma.
func TestAlphaChaseDeterministicResult(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	table := map[string]instance.Value{
		"d2(a;b).z1": nl(1),
		"d2(a;b).z2": nl(3),
		"d2(a;c).z1": nl(2),
		"d2(a;c).z2": nl(3),
		"d3(_3;a).z": nl(4),
	}
	res1, err := AlphaChase(s, src, alpha44(t, table), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := AlphaChase(s, src, alpha44(t, table), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Target.Equal(res2.Target) {
		t.Fatal("same α must give same result")
	}
}

func TestSatisfiesTGDAndEGD(t *testing.T) {
	s := mustSetting(t, example21)
	tgt := mustInstance(t, `F(a,_1). G(_1,_2).`)
	d3 := s.TGDByName("d3")
	if !SatisfiesTGD(s, d3, tgt) {
		t.Fatal("d3 satisfied")
	}
	tgt2 := mustInstance(t, `F(a,_1).`)
	if SatisfiesTGD(s, d3, tgt2) {
		t.Fatal("d3 violated without G")
	}
	egd := s.EGDs[0]
	if !SatisfiesEGD(egd, tgt) {
		t.Fatal("single F satisfies d4")
	}
	if SatisfiesEGD(egd, mustInstance(t, `F(a,b). F(a,c).`)) {
		t.Fatal("two F values violate d4")
	}
}

func TestChaseTrace(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	res, err := Standard(s, src, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != res.Steps {
		t.Fatalf("trace length %d != steps %d", len(res.Trace), res.Steps)
	}
	sawTgd := false
	for _, step := range res.Trace {
		if step.Kind == "tgd" {
			sawTgd = true
			if len(step.Added) == 0 {
				t.Fatalf("tgd step without atoms: %v", step)
			}
		}
		if step.String() == "" {
			t.Fatal("empty step rendering")
		}
	}
	if !sawTgd {
		t.Fatal("trace must record tgd steps")
	}
	// An egd-merging chase records egd steps.
	s2 := mustSetting(t, `
source N/1, W/2.
target F/2.
st:
  N(x) -> exists z : F(x,z).
  W(x,y) -> F(x,y).
target-deps:
  F(x,y) & F(x,z) -> y = z.
`)
	res2, err := Standard(s2, mustInstance(t, `N(a). W(a,b).`), Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	sawEgd := false
	for _, step := range res2.Trace {
		if step.Kind == "egd" {
			sawEgd = true
			if step.String() == "" {
				t.Fatal("egd step rendering")
			}
		}
	}
	if !sawEgd {
		t.Fatal("trace must record the egd merge")
	}
}
