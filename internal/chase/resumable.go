package chase

import (
	"errors"
	"fmt"

	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/query"
)

// ErrNotResumable reports that a setting cannot be maintained incrementally:
// some s-t tgd has a general first-order body, whose matches are not
// monotone in the source instance, so a source insertion cannot be reduced
// to a delta join. Callers must fall back to a full re-chase.
var ErrNotResumable = errors.New("chase: setting has a non-conjunctive s-t body, source delta not resumable")

// Observer receives every state change a Resumable chase makes, in the
// order it happens. The incremental-maintenance engine (internal/incr) uses
// it to build the justification graph that drives deletions.
//
// Callbacks run synchronously on the chasing goroutine and must not touch
// the chase or its instance.
type Observer interface {
	// TGDFired reports one tgd application: the ground body atoms of the
	// match (nil for general FO bodies, which have no atom list) and the
	// head atoms the firing actually inserted — head atoms that were
	// already present are not included.
	TGDFired(d *dependency.TGD, body, inserted []instance.Atom)
	// EgdApplied reports one egd application: loser was replaced by winner
	// throughout the instance.
	EgdApplied(dep string, winner, loser instance.Value)
}

// Resumable is a chase whose state survives the run, so it can be resumed
// after the source instance changes: Extend continues the chase after
// source insertions through a semi-naive delta seeded only with the new
// tuples, RemoveAtoms retracts atoms (source or derived), and ReSaturate
// re-runs full passes to a fixpoint. Standard is a run-once wrapper over
// this type; both produce identical chase sequences for identical inputs.
//
// A Resumable is not safe for concurrent use.
type Resumable struct {
	s     *dependency.Setting
	cur   *instance.Instance
	nulls *instance.NullSource
	obs   Observer

	steps  int
	merges int
	trace  []Step

	stc     *stCache
	tracker *deltaTracker
	stSet   map[*dependency.TGD]bool
	// pendingST holds the s-t body environments discovered by Extend's
	// delta join, awaiting their first tgd pass. A full scan subsumes and
	// clears them (Extend also appends them to the stCache).
	pendingST map[*dependency.TGD][][]instance.Value
}

// NewResumable chases src to a fixpoint and returns the live chase state.
// Error semantics match Standard: an egd failure returns (nil, error); a
// budget or cancellation error returns the partial state alongside the
// error, and the caller may still Extend/ReSaturate it later.
func NewResumable(s *dependency.Setting, src *instance.Instance, opt Options, obs Observer) (*Resumable, error) {
	if src.HasNulls() {
		return nil, fmt.Errorf("chase: source instance must be null-free")
	}
	r := &Resumable{
		s:       s,
		cur:     src.Clone(),
		nulls:   instance.NewNullSource(0),
		obs:     obs,
		stc:     &stCache{},
		tracker: &deltaTracker{full: true},
		stSet:   make(map[*dependency.TGD]bool, len(s.ST)),
	}
	for _, d := range s.ST {
		r.stSet[d] = true
	}
	if err := r.run(opt); err != nil {
		if IsEgdFailure(err) {
			return nil, err
		}
		return r, err
	}
	return r, nil
}

// Instance returns the live chase instance over σ ∪ τ. It is owned by the
// Resumable — callers must not mutate it and must not read it across a
// later Extend/RemoveAtoms/ReSaturate.
func (r *Resumable) Instance() *instance.Instance { return r.cur }

// Target returns a fresh snapshot of the τ-reduct: the computed target
// instance. The snapshot is independent of later chase activity.
func (r *Resumable) Target() *instance.Instance { return r.cur.Reduct(r.s.Target) }

// Steps returns the total dependency applications across all runs.
func (r *Resumable) Steps() int { return r.steps }

// Merges returns the total egd applications across all runs. A non-zero
// count means values have been identified, which invalidates externally
// kept per-atom bookkeeping (the incr engine falls back to a re-chase on
// deletions in that case).
func (r *Resumable) Merges() int { return r.merges }

// Extend inserts the given null-free source atoms and chases the
// consequences: new s-t matches are found by a semi-naive delta join
// seeded only with the inserted atoms (ErrNotResumable if some s-t body is
// a general FO formula, whose matches are not monotone), and everything
// downstream runs on the ordinary delta-tracker path. opt's budget applies
// to this call alone. On budget or cancellation the state is left mid-run
// and a later ReSaturate can finish the job.
func (r *Resumable) Extend(atoms []instance.Atom, opt Options) error {
	for _, d := range r.s.ST {
		if d.BodyAtoms == nil {
			return ErrNotResumable
		}
	}
	var added []instance.Atom
	for _, a := range atoms {
		if !r.s.Source.Has(a.Rel) {
			return fmt.Errorf("chase: Extend: %s is not a source relation", a.Rel)
		}
		for _, v := range a.Args {
			if !v.IsConst() {
				return fmt.Errorf("chase: Extend: source atom %v must be null-free", a)
			}
		}
		if r.cur.Add(a) {
			added = append(added, a)
		}
	}
	if len(added) == 0 {
		return nil
	}
	if r.stc.reduct != nil {
		for _, a := range added {
			r.stc.reduct.Add(a)
		}
	}
	for _, d := range r.s.ST {
		var envs [][]instance.Value
		// Body atoms of s-t tgds are all source relations, so the delta
		// join against the full instance equals the join against the
		// σ-reduct.
		DeltaBodyEnvsKeyed(d, r.cur, added, func(env []instance.Value, _ string) bool {
			envs = append(envs, append([]instance.Value(nil), env...))
			return true
		})
		if len(envs) == 0 {
			continue
		}
		if cached, ok := r.stc.conj[d]; ok {
			r.stc.conj[d] = append(cached, envs...)
		}
		if r.pendingST == nil {
			r.pendingST = make(map[*dependency.TGD][][]instance.Value)
		}
		r.pendingST[d] = append(r.pendingST[d], envs...)
	}
	return r.run(opt)
}

// RemoveAtoms removes the given atoms (source or target) from the live
// instance and returns how many were actually present. The semi-naive
// delta is invalidated — removals can re-expose tgd violations whose heads
// were satisfied only by the removed atoms — so the caller must ReSaturate
// (or Extend, which runs the same loop) to restore the fixpoint. Removing
// a source atom also drops the cached s-t matches, since they may have
// used it.
func (r *Resumable) RemoveAtoms(atoms []instance.Atom) int {
	removed, srcTouched := 0, false
	for _, a := range atoms {
		if r.cur.Remove(a) {
			removed++
			if r.s.Source.Has(a.Rel) {
				srcTouched = true
			}
		}
	}
	if removed == 0 {
		return 0
	}
	if srcTouched {
		r.stc = &stCache{}
		r.pendingST = nil
	}
	r.tracker.invalidate()
	return removed
}

// ReSaturate chases to a fixpoint with full passes (no delta assumptions).
// opt's budget applies to this call alone.
func (r *Resumable) ReSaturate(opt Options) error {
	r.tracker.invalidate()
	return r.run(opt)
}

// run drives egd and tgd passes to a fixpoint. The budget in opt is
// relative to the call, not the lifetime step counter.
func (r *Resumable) run(opt Options) error {
	start := r.steps
	budget := opt.maxSteps()
	for {
		if err := opt.err(); err != nil {
			return err
		}
		if r.steps-start >= budget {
			return ErrBudgetExceeded
		}
		// Egds first: keeping the instance egd-consistent before firing
		// tgds avoids deriving atoms that an identification would merge
		// anyway. An egd application rewrites values throughout the
		// instance, so the semi-naive delta is invalidated.
		if applied, err := r.egdPass(opt); err != nil {
			return err
		} else if applied {
			r.tracker.invalidate()
			continue
		}
		if r.tgdPass(opt, start) {
			continue
		}
		return nil
	}
}

func (r *Resumable) egdPass(opt Options) (bool, error) {
	for _, d := range r.s.EGDs {
		a, b, ok := findEgdViolation(d, r.cur)
		if !ok {
			continue
		}
		winner, loser, err := applyEgd(d.Name, r.cur, a, b)
		if err != nil {
			return false, err
		}
		r.steps++
		r.merges++
		metrics.ChaseSteps.Inc()
		if r.obs != nil {
			r.obs.EgdApplied(d.Name, winner, loser)
		}
		if opt.Trace {
			r.trace = append(r.trace, Step{Dep: d.Name, Kind: "egd", Equated: [2]instance.Value{a, b}})
		}
		return true, nil
	}
	return false, nil
}

// tgdPass fires all currently violating tgd bindings. Enumeration is
// semi-naive: on delta passes, only target-tgd matches touching an atom
// added by the previous pass are considered, plus any s-t matches Extend
// discovered (s-t tgd bodies otherwise live on the never-growing σ-reduct
// and cannot gain matches). Every candidate binding is re-checked before
// firing, so duplicate candidates are harmless.
//
// Conjunctive bodies run entirely on the slot-based compiled-plan path:
// body environments are []instance.Value keyed by the body plan's slots,
// head checks seed HeadSlotsPlan directly, and firing instantiates the
// compiled head templates. Only general FO bodies (some s-t tgds) still go
// through Bindings.
func (r *Resumable) tgdPass(opt Options, start int) bool {
	budget := opt.maxSteps()
	fired := false
	// The delta is the watermark interval since the previous pass. A stale
	// mark (removals bumped the instance epoch) degrades to a full scan, as
	// does an explicit invalidation. Atoms inserted by this pass land after
	// `to` in the log and so form the next pass's delta.
	fullScan := r.tracker.full || !r.cur.MarkValid(r.tracker.mark)
	from, to := r.tracker.mark, r.cur.Mark()
	r.tracker.full = false
	r.tracker.mark = to

	for _, d := range r.s.AllTGDs() {
		isst := r.stSet[d]
		var stDelta [][]instance.Value
		if isst {
			if fullScan {
				delete(r.pendingST, d) // subsumed by the full cached-env scan
			} else if envs, ok := r.pendingST[d]; ok {
				stDelta = envs
				delete(r.pendingST, d)
			} else {
				continue // σ-reduct unchanged: no new s-t matches
			}
		}

		if d.BodyAtoms == nil {
			// General FO body (s-t tgds only; Extend rejects these
			// settings, so stDelta is never set here): Binding-based path.
			var pending []query.Binding
			for _, env := range r.stc.foEnvs(r.s, d, r.cur) {
				if !headSatisfied(d, r.cur, env) {
					pending = append(pending, env.Clone())
				}
			}
			for _, env := range pending {
				if r.steps-start >= budget || opt.err() != nil {
					return true // budget/cancel check happens at the top of run
				}
				if headSatisfied(d, r.cur, env) {
					continue
				}
				for _, z := range d.Exists {
					env[z] = r.nulls.Fresh()
				}
				added := headAtomsUnder(d, env)
				var inserted []instance.Atom
				for _, a := range added {
					if r.cur.Add(a) && r.obs != nil {
						inserted = append(inserted, a)
					}
				}
				r.steps++
				metrics.ChaseSteps.Inc()
				fired = true
				if r.obs != nil {
					r.obs.TGDFired(d, nil, inserted)
				}
				if opt.Trace {
					r.trace = append(r.trace, Step{Dep: d.Name, Kind: "tgd", Added: added})
				}
			}
			continue
		}

		// Slot-based path.
		var pending [][]instance.Value
		collect := func(env []instance.Value) bool {
			if !headSatisfiedSlots(d, r.cur, env) {
				pending = append(pending, append([]instance.Value(nil), env...))
			}
			return true
		}
		switch {
		case stDelta != nil:
			for _, env := range stDelta {
				collect(env)
			}
		case isst:
			for _, env := range r.stc.conjEnvs(r.s, d, r.cur) {
				collect(env)
			}
		case fullScan:
			d.BodyPlan().Eval(r.cur, nil, collect)
		default:
			DeltaBodyEnvsKeyedBetween(d, r.cur, from, to, func(env []instance.Value, _ string) bool {
				return collect(env)
			})
		}

		hp := d.HeadSlotsPlan()
		tmpl := d.HeadTemplates()
		existsSlots := d.ExistsSlots()
		for _, benv := range pending {
			if r.steps-start >= budget || opt.err() != nil {
				return true // budget/cancel check happens at the top of run
			}
			if headSatisfiedSlots(d, r.cur, benv) {
				continue
			}
			full := make([]instance.Value, hp.NumSlots())
			copy(full, benv)
			for _, sl := range existsSlots {
				full[sl] = r.nulls.Fresh()
			}
			added := tmpl.Instantiate(full)
			var inserted []instance.Atom
			for _, a := range added {
				if r.cur.Add(a) && r.obs != nil {
					inserted = append(inserted, a)
				}
			}
			r.steps++
			metrics.ChaseSteps.Inc()
			fired = true
			if r.obs != nil {
				// The body slot layout is a prefix of the head slot
				// layout, so the head env instantiates body templates too.
				r.obs.TGDFired(d, d.BodyTemplates().Instantiate(full), inserted)
			}
			if opt.Trace {
				r.trace = append(r.trace, Step{Dep: d.Name, Kind: "tgd", Added: added})
			}
		}
	}
	return fired
}
