package chase

import (
	"errors"
	"testing"

	"repro/internal/hom"
)

func TestObliviousExample21(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	res, err := Oblivious(s, src, Options{MaxSteps: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if !IsSolution(s, src, res.Target) {
		t.Fatalf("oblivious result must be a solution: %v", res.Target)
	}
	// Hom-equivalent to the standard chase result (both universal).
	std, err := Standard(s, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hom.Exists(res.Target, std.Target) || !hom.Exists(std.Target, res.Target) {
		t.Fatal("oblivious and standard results must be hom-equivalent")
	}
	// The oblivious chase fires per (ū, v̄), so it is at least as large:
	// d2 fires for both N(a,b) and N(a,c).
	if res.Target.RelLen("E") < std.Target.RelLen("E") {
		t.Fatalf("oblivious should not be smaller: %v vs %v", res.Target, std.Target)
	}
}

// The executable witness of weakly-vs-richly acyclic: on the setting
// E(x,y) → ∃z E(x,z) (weakly but not richly acyclic), the standard chase
// terminates while the oblivious chase diverges — each fresh z is a new
// ȳ-value creating a new trigger.
func TestObliviousDivergesWhereStandardTerminates(t *testing.T) {
	s := mustSetting(t, `
source S/2.
target E/2.
st:
  s1: S(x,y) -> E(x,y).
target-deps:
  t1: E(x,y) -> exists z : E(x,z).
`)
	if !s.WeaklyAcyclic() || s.RichlyAcyclic() {
		t.Fatal("the setting must be weakly but not richly acyclic")
	}
	src := mustInstance(t, `S(a,b).`)
	if _, err := Standard(s, src, Options{MaxSteps: 1000}); err != nil {
		t.Fatalf("standard chase must terminate: %v", err)
	}
	_, err := Oblivious(s, src, Options{MaxSteps: 1000})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("oblivious chase must diverge, got %v", err)
	}
}

// On richly acyclic settings both chases terminate.
func TestObliviousTerminatesOnRichlyAcyclic(t *testing.T) {
	s := mustSetting(t, example21)
	if !s.RichlyAcyclic() {
		t.Fatal("Example 2.1 is richly acyclic")
	}
	src := mustInstance(t, source21)
	if _, err := Oblivious(s, src, Options{MaxSteps: 10000}); err != nil {
		t.Fatalf("oblivious chase must terminate on richly acyclic settings: %v", err)
	}
}

func TestObliviousEgdFailure(t *testing.T) {
	s := mustSetting(t, `
source N/2.
target F/2.
st:
  N(x,y) -> F(x,y).
target-deps:
  F(x,y) & F(x,z) -> y = z.
`)
	src := mustInstance(t, `N(a,b). N(a,c).`)
	_, err := Oblivious(s, src, Options{})
	if !IsEgdFailure(err) {
		t.Fatalf("want egd failure, got %v", err)
	}
}

func TestObliviousFiresPerYBinding(t *testing.T) {
	// d: N(x,y) → ∃z F(x,z): oblivious fires once per (x,y) — two F atoms
	// for N(a,b), N(a,c) — while the standard chase fires once.
	s := mustSetting(t, `
source N/2.
target F/2.
st:
  d: N(x,y) -> exists z : F(x,z).
`)
	src := mustInstance(t, `N(a,b). N(a,c).`)
	obl, err := Oblivious(s, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	std, err := Standard(s, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if obl.Target.RelLen("F") != 2 || std.Target.RelLen("F") != 1 {
		t.Fatalf("oblivious F=%d (want 2), standard F=%d (want 1)",
			obl.Target.RelLen("F"), std.Target.RelLen("F"))
	}
}
