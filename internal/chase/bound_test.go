package chase

import (
	"testing"
)

func TestTerminationBoundWeaklyAcyclic(t *testing.T) {
	s := mustSetting(t, example21)
	bound, ok := TerminationBound(s, 3)
	if !ok {
		t.Fatal("Example 2.1 is weakly acyclic: a bound must exist")
	}
	if bound < 4 {
		t.Fatalf("bound %d too small for Example 2.1", bound)
	}
	// The actual chase must finish well within the bound.
	src := mustInstance(t, source21)
	res, err := Standard(s, src, Options{MaxSteps: bound})
	if err != nil {
		t.Fatalf("chase within the bound: %v", err)
	}
	if res.Steps > bound {
		t.Fatalf("steps %d exceeded bound %d", res.Steps, bound)
	}
}

func TestTerminationBoundRejectsNonWeaklyAcyclic(t *testing.T) {
	s := mustSetting(t, `
source S/2.
target E/2.
st:
  S(x,y) -> E(x,y).
target-deps:
  E(x,y) -> exists z : E(y,z).
`)
	if _, ok := TerminationBound(s, 5); ok {
		t.Fatal("no bound for non-weakly-acyclic settings")
	}
}

func TestStandardBounded(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	res, err := StandardBounded(s, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !IsSolution(s, src, res.Target) {
		t.Fatal("bounded chase must produce a solution")
	}
	// Huge inputs saturate instead of overflowing.
	if bound, ok := TerminationBound(s, 1<<30); !ok || bound <= 0 {
		t.Fatalf("bound must clamp: %d %v", bound, ok)
	}
}
