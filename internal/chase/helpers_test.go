package chase

import (
	"strings"
	"testing"

	"repro/internal/instance"
	"repro/internal/query"
)

func TestBodyMatchesAndWitnesses(t *testing.T) {
	s := mustSetting(t, example21)
	full := instance.Union(mustInstance(t, source21),
		mustInstance(t, `E(a,b). E(a,_1). F(a,_3). G(_3,_4).`))
	d2 := s.TGDByName("d2")
	matches := BodyMatches(s, d2, full)
	if len(matches) != 2 { // N(a,b) and N(a,c)
		t.Fatalf("d2 matches = %d, want 2", len(matches))
	}
	for _, env := range matches {
		ws := HeadWitnesses(d2, full, env)
		// Witnesses (z1, z2): z1 ∈ {b, _1}, z2 ∈ {_3} — two witnesses.
		if len(ws) != 2 {
			t.Fatalf("witnesses = %v", ws)
		}
		for _, w := range ws {
			if w["z2"] != instance.Null(3) {
				t.Fatalf("z2 must be _3: %v", w)
			}
		}
		key := JustificationKeyOf(d2, env)
		if !strings.HasPrefix(key, "d2(a;") {
			t.Fatalf("key = %q", key)
		}
	}
	// HeadAtoms instantiation.
	env := matches[0].Clone()
	env["z1"] = instance.Const("b")
	env["z2"] = instance.Null(3)
	atoms := HeadAtoms(d2, env)
	if len(atoms) != 2 || atoms[0].Rel != "E" || atoms[1].Rel != "F" {
		t.Fatalf("head atoms = %v", atoms)
	}
}

func TestHeadWitnessesDeduplicated(t *testing.T) {
	// A head with two atoms sharing the existential variable can reach the
	// same witness through different enumeration orders; the list is deduped.
	s := mustSetting(t, `
source N/1.
target E/2, F/2.
st:
  d: N(x) -> exists z : E(x,z) & F(x,z).
`)
	full := mustInstance(t, `N(a). E(a,_0). F(a,_0). E(a,_1). F(a,_1).`)
	d := s.TGDByName("d")
	matches := BodyMatches(s, d, full)
	if len(matches) != 1 {
		t.Fatalf("matches = %v", matches)
	}
	ws := HeadWitnesses(d, full, matches[0])
	if len(ws) != 2 {
		t.Fatalf("witnesses = %v, want the two distinct z values", ws)
	}
}

func TestEgdFailureErrorMessage(t *testing.T) {
	err := &EgdFailureError{Dep: "d4", A: instance.Const("c"), B: instance.Const("d")}
	msg := err.Error()
	for _, want := range []string{"d4", "c", "d", "cannot identify"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
	if !IsEgdFailure(err) {
		t.Error("IsEgdFailure on the error itself")
	}
	if IsEgdFailure(ErrBudgetExceeded) {
		t.Error("budget error is not an egd failure")
	}
}

func TestJustificationString(t *testing.T) {
	j := Justification{Dep: "d", U: []instance.Value{instance.Const("a")}, Z: "z"}
	if j.String() != j.Key() {
		t.Error("String must equal Key")
	}
}

func TestUniversalSolutionHelper(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	u, err := UniversalSolution(s, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !IsSolution(s, src, u) {
		t.Fatal("UniversalSolution must return a solution")
	}
}

func TestBodyBindingsEarlyStopFO(t *testing.T) {
	// FO-bodied s-t tgd: the enumeration respects early stop.
	s := mustSetting(t, `
source A/1, B/1.
target P/1.
st:
  d: A(x) | B(x) -> P(x).
`)
	d := s.ST[0]
	full := mustInstance(t, `A(a). A(b). B(c).`)
	n := 0
	bodyBindings(d, tgdBodyInstance(s, d, full), func(env query.Binding) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop: n = %d", n)
	}
}
