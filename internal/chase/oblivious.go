package chase

import (
	"fmt"

	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/query"
)

// Oblivious runs the oblivious chase: every trigger — a tgd d together
// with a body assignment (ū, v̄) — fires exactly once, with fresh nulls for
// the existential variables, regardless of whether the head is already
// witnessed; egd violations are resolved as usual, and a fired trigger is
// never re-fired even if an egd later merges its values.
//
// The oblivious chase is the practical engine variant (per-trigger
// bookkeeping instead of head-satisfaction checks) and it isolates the gap
// between the paper's two acyclicity notions: because a trigger exists per
// ȳ-assignment, fresh values at ȳ-positions create new triggers, so the
// oblivious chase terminates on all sources for RICHLY acyclic settings
// (Definition 7.3 adds exactly the ȳ → z̄ edges) but may diverge for
// settings that are only weakly acyclic — the phenomenon behind the
// restriction in Proposition 7.4. The standard chase (Standard) terminates
// for all weakly acyclic settings.
func Oblivious(s *dependency.Setting, src *instance.Instance, opt Options) (*Result, error) {
	if src.HasNulls() {
		return nil, fmt.Errorf("chase: source instance must be null-free")
	}
	cur := src.Clone()
	nulls := instance.NewNullSource(0)
	res := &Result{}
	budget := opt.maxSteps()
	fired := make(map[string]bool)

	for {
		if err := opt.err(); err != nil {
			res.Instance = cur
			res.Target = cur.Reduct(s.Target)
			return res, err
		}
		if res.Steps >= budget {
			res.Instance = cur
			res.Target = cur.Reduct(s.Target)
			return res, ErrBudgetExceeded
		}
		if applied, err := standardEgdPass(s, cur, res, opt); err != nil {
			return nil, err
		} else if applied {
			continue
		}
		applied := false
		for _, d := range s.AllTGDs() {
			bodyInst := tgdBodyInstance(s, d, cur)
			var pending []query.Binding
			bodyBindings(d, bodyInst, func(env query.Binding) bool {
				if !fired[obliviousTriggerKey(d, env)] {
					pending = append(pending, env.Clone())
				}
				return true
			})
			for _, env := range pending {
				if res.Steps >= budget || opt.err() != nil {
					break
				}
				key := obliviousTriggerKey(d, env)
				if fired[key] {
					continue
				}
				fired[key] = true
				for _, z := range d.Exists {
					env[z] = nulls.Fresh()
				}
				added := headAtomsUnder(d, env)
				for _, a := range added {
					cur.Add(a)
				}
				res.Steps++
				metrics.ChaseSteps.Inc()
				applied = true
				if opt.Trace {
					res.Trace = append(res.Trace, Step{Dep: d.Name, Kind: "tgd", Added: added})
				}
			}
		}
		if !applied {
			// A cancellation arriving mid-pass can leave triggers unfired
			// without marking the pass as applied; re-check before treating
			// the state as a fixpoint.
			if err := opt.err(); err != nil {
				res.Instance = cur
				res.Target = cur.Reduct(s.Target)
				return res, err
			}
			break
		}
	}
	res.Instance = cur
	res.Target = cur.Reduct(s.Target)
	return res, nil
}

// obliviousTriggerKey identifies a trigger by dependency and full frontier
// assignment.
func obliviousTriggerKey(d *dependency.TGD, env query.Binding) string {
	j := JustificationOf(d, env, "")
	return j.Key()
}
