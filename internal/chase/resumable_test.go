package chase

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/dependency"
	"repro/internal/hom"
	"repro/internal/instance"
)

// homEquivalent reports mutual homomorphic embeddability: the correctness
// relation between two universal solutions of the same source.
func homEquivalent(a, b *instance.Instance) bool {
	return hom.Exists(a, b) && hom.Exists(b, a)
}

func TestResumableMatchesStandard(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	r, err := NewResumable(s, src, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Standard(s, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Target().Equal(res.Target) {
		t.Fatalf("Resumable and Standard diverged:\n%v\n%v", r.Target(), res.Target)
	}
	if r.Steps() != res.Steps {
		t.Fatalf("step counts diverged: %d vs %d", r.Steps(), res.Steps)
	}
}

func TestResumableExtendEquivalentToRechase(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, `M(a,b). N(a,b).`)
	r, err := NewResumable(s, src, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ins := []instance.Atom{
		instance.NewAtom("N", c("a"), c("c")),
		instance.NewAtom("M", c("c"), c("d")),
	}
	if err := r.Extend(ins, Options{}); err != nil {
		t.Fatal(err)
	}
	// From-scratch chase of the extended source.
	full := src.Clone()
	for _, a := range ins {
		full.Add(a)
	}
	res, err := Standard(s, full, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !IsSolution(s, full, r.Target()) {
		t.Fatalf("extended chase is not a solution: %v", r.Target())
	}
	if !homEquivalent(r.Target(), res.Target) {
		t.Fatalf("extended chase not hom-equivalent to re-chase:\n%v\n%v", r.Target(), res.Target)
	}
}

func TestResumableExtendDuplicateIsNoop(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	r, err := NewResumable(s, src, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := r.Steps()
	if err := r.Extend([]instance.Atom{instance.NewAtom("M", c("a"), c("b"))}, Options{}); err != nil {
		t.Fatal(err)
	}
	if r.Steps() != before {
		t.Fatalf("duplicate insert fired %d steps", r.Steps()-before)
	}
}

func TestResumableRemoveAndReSaturate(t *testing.T) {
	s := mustSetting(t, `
source A/1, C/1.
target B/1, D/1.
st:
  d1: A(x) -> B(x).
  d2: C(x) -> B(x).
target-deps:
  d3: B(x) -> D(x).
`)
	src := mustInstance(t, `A(a). C(a).`)
	r, err := NewResumable(s, src, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Remove A(a) and the derived B(a), D(a); re-saturation must re-derive
	// both from the surviving C(a) (the over-delete/re-derive pattern).
	r.RemoveAtoms([]instance.Atom{
		instance.NewAtom("A", c("a")),
		instance.NewAtom("B", c("a")),
		instance.NewAtom("D", c("a")),
	})
	if err := r.ReSaturate(Options{}); err != nil {
		t.Fatal(err)
	}
	want := mustInstance(t, `B(a). D(a).`)
	if !r.Target().Equal(want) {
		t.Fatalf("re-saturated target = %v, want %v", r.Target(), want)
	}
}

func TestResumableExtendRejectsFOBody(t *testing.T) {
	s := mustSetting(t, `
source Person/1, Spouse/2.
target Single/1.
st:
  d1: Person(x) & !(exists y (Spouse(x,y))) -> Single(x).
`)
	src := mustInstance(t, `Person(a).`)
	r, err := NewResumable(s, src, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = r.Extend([]instance.Atom{instance.NewAtom("Person", c("b"))}, Options{})
	if !errors.Is(err, ErrNotResumable) {
		t.Fatalf("Extend on FO-body setting: err = %v, want ErrNotResumable", err)
	}
}

func TestResumableObserverSeesFiringsAndMerges(t *testing.T) {
	s := mustSetting(t, `
source S/1, T/2.
target F/2.
st:
  d1: S(x) -> exists z : F(x,z).
  d2: T(x,y) -> F(x,y).
target-deps:
  d3: F(x,y) & F(x,z) -> y = z.
`)
	src := mustInstance(t, `S(a). T(a,b).`)
	obs := &countingObserver{}
	r, err := NewResumable(s, src, Options{}, obs)
	if err != nil {
		t.Fatal(err)
	}
	if obs.firings == 0 {
		t.Fatal("observer saw no tgd firings")
	}
	// d3 merges d1's null into b.
	if obs.egds == 0 {
		t.Fatal("observer saw no egd applications")
	}
	if r.Merges() != obs.egds {
		t.Fatalf("Merges() = %d, observer counted %d", r.Merges(), obs.egds)
	}
	// Every observed insertion must be in the final instance or have been
	// rewritten by a merge; at minimum the counts are sane.
	if obs.inserted < obs.firings {
		t.Fatalf("inserted %d atoms over %d firings", obs.inserted, obs.firings)
	}
}

type countingObserver struct {
	firings  int
	inserted int
	egds     int
}

func (o *countingObserver) TGDFired(d *dependency.TGD, body, inserted []instance.Atom) {
	o.firings++
	o.inserted += len(inserted)
	if len(body) == 0 && d.BodyAtoms != nil {
		panic("conjunctive firing reported without ground body atoms")
	}
}

func (o *countingObserver) EgdApplied(dep string, winner, loser instance.Value) {
	o.egds++
	if !loser.IsNull() {
		panic(fmt.Sprintf("egd replaced non-null %v", loser))
	}
}
