package chase

import (
	"context"
	"fmt"

	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/query"
)

// Options configures a chase run.
type Options struct {
	// MaxSteps bounds the number of dependency applications; 0 means
	// DefaultMaxSteps. A chase that exceeds the budget returns
	// ErrBudgetExceeded, the observable proxy for non-termination.
	MaxSteps int
	// Trace, when true, records every step in Result.Trace.
	Trace bool
	// Ctx, when non-nil, lets the run be aborted by deadline or
	// cancellation: the chase checks it between steps and returns an error
	// wrapping ErrCanceled. Essential for bounding runs on settings whose
	// chase need not terminate (Theorem 6.2). A nil Ctx never cancels.
	Ctx context.Context
}

// err reports the pending cancellation of the run's context, if any.
func (o Options) err() error { return ContextErr(o.Ctx) }

// DefaultMaxSteps is the budget used when Options.MaxSteps is zero.
const DefaultMaxSteps = 1_000_000

func (o Options) maxSteps() int {
	if o.MaxSteps > 0 {
		return o.MaxSteps
	}
	return DefaultMaxSteps
}

// Step records one chase step for traces.
type Step struct {
	Dep string
	// Kind is "tgd" or "egd".
	Kind string
	// Added holds the atoms added by a tgd step.
	Added []instance.Atom
	// Equated holds the two values identified by an egd step.
	Equated [2]instance.Value
}

func (s Step) String() string {
	if s.Kind == "egd" {
		return fmt.Sprintf("egd %s: %v = %v", s.Dep, s.Equated[0], s.Equated[1])
	}
	return fmt.Sprintf("tgd %s: +%v", s.Dep, s.Added)
}

// Result is the outcome of a terminating chase.
type Result struct {
	// Instance is the final instance over σ ∪ τ (source atoms included).
	Instance *instance.Instance
	// Target is the τ-reduct of Instance: the computed target instance.
	Target *instance.Instance
	// Steps counts dependency applications.
	Steps int
	// Trace holds the steps if Options.Trace was set.
	Trace []Step
}

// Standard runs the standard chase of Fagin et al. on the source instance:
// starting from S, it repeatedly picks a tgd violation (a body match with no
// witnessing head extension), fires it with fresh nulls, and resolves egd
// violations, until a fixpoint. For weakly acyclic settings it terminates in
// polynomially many steps and its target reduct is a universal solution
// (when no egd fails).
func Standard(s *dependency.Setting, src *instance.Instance, opt Options) (*Result, error) {
	if src.HasNulls() {
		return nil, fmt.Errorf("chase: source instance must be null-free")
	}
	cur := src.Clone()
	nulls := instance.NewNullSource(0)
	res := &Result{}
	budget := opt.maxSteps()
	tracker := &deltaTracker{full: true}

	for {
		if err := opt.err(); err != nil {
			// Like the budget case, expose the partial result.
			res.Instance = cur
			res.Target = cur.Reduct(s.Target)
			return res, err
		}
		if res.Steps >= budget {
			// Expose the partial result so callers can observe how far a
			// non-terminating chase got (experiment E8).
			res.Instance = cur
			res.Target = cur.Reduct(s.Target)
			return res, ErrBudgetExceeded
		}
		// Egds first: keeping the instance egd-consistent before firing tgds
		// avoids deriving atoms that an identification would merge anyway.
		// An egd application rewrites values throughout the instance, so the
		// semi-naive delta is invalidated.
		if applied, err := standardEgdPass(s, cur, res, opt); err != nil {
			return nil, err
		} else if applied {
			tracker.invalidate()
			continue
		}
		if applied := standardTgdPass(s, cur, nulls, res, opt, tracker); applied {
			continue
		}
		break
	}
	res.Instance = cur
	res.Target = cur.Reduct(s.Target)
	return res, nil
}

func standardEgdPass(s *dependency.Setting, cur *instance.Instance, res *Result, opt Options) (bool, error) {
	for _, d := range s.EGDs {
		a, b, ok := findEgdViolation(d, cur)
		if !ok {
			continue
		}
		if _, _, err := applyEgd(d.Name, cur, a, b); err != nil {
			return false, err
		}
		res.Steps++
		metrics.ChaseSteps.Inc()
		if opt.Trace {
			res.Trace = append(res.Trace, Step{Dep: d.Name, Kind: "egd", Equated: [2]instance.Value{a, b}})
		}
		return true, nil
	}
	return false, nil
}

// standardTgdPass fires all currently violating tgd bindings. Enumeration
// is semi-naive: on delta passes, only target-tgd matches touching an atom
// added by the previous pass are considered (s-t tgd bodies live on the
// never-changing σ-reduct and cannot gain matches, and their matches are
// all satisfied after the initial full pass). Every candidate binding is
// re-checked before firing, so duplicate candidates are harmless.
func standardTgdPass(s *dependency.Setting, cur *instance.Instance, nulls *instance.NullSource, res *Result, opt Options, tracker *deltaTracker) bool {
	budget := opt.maxSteps()
	fired := false
	fullScan := tracker.needsFullScan()
	delta := tracker.delta()
	tracker.reset()

	fire := func(d *dependency.TGD, pending []query.Binding) bool {
		for _, env := range pending {
			if res.Steps >= budget || opt.err() != nil {
				return true // budget/cancel check happens at loop top in Standard
			}
			if headSatisfied(d, cur, env) {
				continue
			}
			for _, z := range d.Exists {
				env[z] = nulls.Fresh()
			}
			added := headAtomsUnder(d, env)
			for _, a := range added {
				if cur.Add(a) {
					tracker.add(a)
				}
			}
			res.Steps++
			metrics.ChaseSteps.Inc()
			fired = true
			if opt.Trace {
				res.Trace = append(res.Trace, Step{Dep: d.Name, Kind: "tgd", Added: added})
			}
		}
		return false
	}

	for _, d := range s.AllTGDs() {
		var pending []query.Binding
		collect := func(env query.Binding) bool {
			if !headSatisfied(d, cur, env) {
				pending = append(pending, env.Clone())
			}
			return true
		}
		isST := isST(s, d)
		switch {
		case fullScan:
			bodyBindings(d, tgdBodyInstance(s, d, cur), collect)
		case isST:
			continue // σ-reduct unchanged: no new s-t matches
		default:
			deltaBodyBindings(d, cur, delta, collect)
		}
		if fire(d, pending) {
			return true
		}
	}
	return fired
}

// isST reports whether the tgd belongs to Σst.
func isST(s *dependency.Setting, d *dependency.TGD) bool {
	for _, st := range s.ST {
		if st == d {
			return true
		}
	}
	return false
}

// UniversalSolution chases the source instance and returns the target
// reduct, which is a universal solution for weakly acyclic settings. The
// error is an *EgdFailureError when no solution exists, or
// ErrBudgetExceeded when the chase did not terminate within the budget.
func UniversalSolution(s *dependency.Setting, src *instance.Instance, opt Options) (*instance.Instance, error) {
	res, err := Standard(s, src, opt)
	if err != nil {
		return nil, err
	}
	return res.Target, nil
}
