package chase

import (
	"context"
	"fmt"

	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/query"
)

// Options configures a chase run.
type Options struct {
	// MaxSteps bounds the number of dependency applications; 0 means
	// DefaultMaxSteps. A chase that exceeds the budget returns
	// ErrBudgetExceeded, the observable proxy for non-termination.
	MaxSteps int
	// Trace, when true, records every step in Result.Trace.
	Trace bool
	// Ctx, when non-nil, lets the run be aborted by deadline or
	// cancellation: the chase checks it between steps and returns an error
	// wrapping ErrCanceled. Essential for bounding runs on settings whose
	// chase need not terminate (Theorem 6.2). A nil Ctx never cancels.
	Ctx context.Context
}

// err reports the pending cancellation of the run's context, if any.
func (o Options) err() error { return ContextErr(o.Ctx) }

// DefaultMaxSteps is the budget used when Options.MaxSteps is zero.
const DefaultMaxSteps = 1_000_000

func (o Options) maxSteps() int {
	if o.MaxSteps > 0 {
		return o.MaxSteps
	}
	return DefaultMaxSteps
}

// Step records one chase step for traces.
type Step struct {
	Dep string
	// Kind is "tgd" or "egd".
	Kind string
	// Added holds the atoms added by a tgd step.
	Added []instance.Atom
	// Equated holds the two values identified by an egd step.
	Equated [2]instance.Value
}

func (s Step) String() string {
	if s.Kind == "egd" {
		return fmt.Sprintf("egd %s: %v = %v", s.Dep, s.Equated[0], s.Equated[1])
	}
	return fmt.Sprintf("tgd %s: +%v", s.Dep, s.Added)
}

// Result is the outcome of a terminating chase.
type Result struct {
	// Instance is the final instance over σ ∪ τ (source atoms included).
	Instance *instance.Instance
	// Target is the τ-reduct of Instance: the computed target instance.
	Target *instance.Instance
	// Steps counts dependency applications.
	Steps int
	// Trace holds the steps if Options.Trace was set.
	Trace []Step
}

// Standard runs the standard chase of Fagin et al. on the source instance:
// starting from S, it repeatedly picks a tgd violation (a body match with no
// witnessing head extension), fires it with fresh nulls, and resolves egd
// violations, until a fixpoint. For weakly acyclic settings it terminates in
// polynomially many steps and its target reduct is a universal solution
// (when no egd fails).
func Standard(s *dependency.Setting, src *instance.Instance, opt Options) (*Result, error) {
	r, err := NewResumable(s, src, opt, nil)
	if r == nil {
		// Egd failure or invalid source: no partial state to expose.
		return nil, err
	}
	// On budget/cancel errors the partial result is exposed so callers can
	// observe how far a non-terminating chase got (experiment E8).
	return &Result{
		Instance: r.cur,
		Target:   r.cur.Reduct(s.Target),
		Steps:    r.steps,
		Trace:    r.trace,
	}, err
}

func standardEgdPass(s *dependency.Setting, cur *instance.Instance, res *Result, opt Options) (bool, error) {
	for _, d := range s.EGDs {
		a, b, ok := findEgdViolation(d, cur)
		if !ok {
			continue
		}
		if _, _, err := applyEgd(d.Name, cur, a, b); err != nil {
			return false, err
		}
		res.Steps++
		metrics.ChaseSteps.Inc()
		if opt.Trace {
			res.Trace = append(res.Trace, Step{Dep: d.Name, Kind: "egd", Equated: [2]instance.Value{a, b}})
		}
		return true, nil
	}
	return false, nil
}

// stCache holds the per-run constants of a chase: the σ-reduct and the body
// matches of every s-t tgd. Both are fixed for the whole run — dependency
// heads are over τ, so no chase step adds a source atom, and egd
// applications only replace nulls, which the null-free source atoms never
// mention — and are computed lazily on the first full scan.
type stCache struct {
	reduct *instance.Instance
	conj   map[*dependency.TGD][][]instance.Value
	fo     map[*dependency.TGD][]query.Binding
}

func (c *stCache) bodyInst(s *dependency.Setting, cur *instance.Instance) *instance.Instance {
	if c.reduct == nil {
		c.reduct = cur.Reduct(s.Source)
	}
	return c.reduct
}

// conjEnvs returns the (constant) body slot environments of a conjunctive
// s-t tgd. The environments are shared — callers must not modify them.
func (c *stCache) conjEnvs(s *dependency.Setting, d *dependency.TGD, cur *instance.Instance) [][]instance.Value {
	if envs, ok := c.conj[d]; ok {
		return envs
	}
	var envs [][]instance.Value
	d.BodyPlan().Eval(c.bodyInst(s, cur), nil, func(env []instance.Value) bool {
		envs = append(envs, append([]instance.Value(nil), env...))
		return true
	})
	if c.conj == nil {
		c.conj = make(map[*dependency.TGD][][]instance.Value)
	}
	c.conj[d] = envs
	return envs
}

// foEnvs returns the (constant) body bindings of an s-t tgd with a general
// first-order body. The bindings are shared — callers must not modify them.
func (c *stCache) foEnvs(s *dependency.Setting, d *dependency.TGD, cur *instance.Instance) []query.Binding {
	if envs, ok := c.fo[d]; ok {
		return envs
	}
	var envs []query.Binding
	bodyBindings(d, c.bodyInst(s, cur), func(env query.Binding) bool {
		envs = append(envs, env.Clone())
		return true
	})
	if c.fo == nil {
		c.fo = make(map[*dependency.TGD][]query.Binding)
	}
	c.fo[d] = envs
	return envs
}

// isST reports whether the tgd belongs to Σst.
func isST(s *dependency.Setting, d *dependency.TGD) bool {
	for _, st := range s.ST {
		if st == d {
			return true
		}
	}
	return false
}

// UniversalSolution chases the source instance and returns the target
// reduct, which is a universal solution for weakly acyclic settings. The
// error is an *EgdFailureError when no solution exists, or
// ErrBudgetExceeded when the chase did not terminate within the budget.
func UniversalSolution(s *dependency.Setting, src *instance.Instance, opt Options) (*instance.Instance, error) {
	res, err := Standard(s, src, opt)
	if err != nil {
		return nil, err
	}
	return res.Target, nil
}
