package chase

import (
	"context"
	"fmt"

	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/query"
)

// Options configures a chase run.
type Options struct {
	// MaxSteps bounds the number of dependency applications; 0 means
	// DefaultMaxSteps. A chase that exceeds the budget returns
	// ErrBudgetExceeded, the observable proxy for non-termination.
	MaxSteps int
	// Trace, when true, records every step in Result.Trace.
	Trace bool
	// Ctx, when non-nil, lets the run be aborted by deadline or
	// cancellation: the chase checks it between steps and returns an error
	// wrapping ErrCanceled. Essential for bounding runs on settings whose
	// chase need not terminate (Theorem 6.2). A nil Ctx never cancels.
	Ctx context.Context
}

// err reports the pending cancellation of the run's context, if any.
func (o Options) err() error { return ContextErr(o.Ctx) }

// DefaultMaxSteps is the budget used when Options.MaxSteps is zero.
const DefaultMaxSteps = 1_000_000

func (o Options) maxSteps() int {
	if o.MaxSteps > 0 {
		return o.MaxSteps
	}
	return DefaultMaxSteps
}

// Step records one chase step for traces.
type Step struct {
	Dep string
	// Kind is "tgd" or "egd".
	Kind string
	// Added holds the atoms added by a tgd step.
	Added []instance.Atom
	// Equated holds the two values identified by an egd step.
	Equated [2]instance.Value
}

func (s Step) String() string {
	if s.Kind == "egd" {
		return fmt.Sprintf("egd %s: %v = %v", s.Dep, s.Equated[0], s.Equated[1])
	}
	return fmt.Sprintf("tgd %s: +%v", s.Dep, s.Added)
}

// Result is the outcome of a terminating chase.
type Result struct {
	// Instance is the final instance over σ ∪ τ (source atoms included).
	Instance *instance.Instance
	// Target is the τ-reduct of Instance: the computed target instance.
	Target *instance.Instance
	// Steps counts dependency applications.
	Steps int
	// Trace holds the steps if Options.Trace was set.
	Trace []Step
}

// Standard runs the standard chase of Fagin et al. on the source instance:
// starting from S, it repeatedly picks a tgd violation (a body match with no
// witnessing head extension), fires it with fresh nulls, and resolves egd
// violations, until a fixpoint. For weakly acyclic settings it terminates in
// polynomially many steps and its target reduct is a universal solution
// (when no egd fails).
func Standard(s *dependency.Setting, src *instance.Instance, opt Options) (*Result, error) {
	if src.HasNulls() {
		return nil, fmt.Errorf("chase: source instance must be null-free")
	}
	cur := src.Clone()
	nulls := instance.NewNullSource(0)
	res := &Result{}
	budget := opt.maxSteps()
	tracker := &deltaTracker{full: true}
	stc := &stCache{}

	for {
		if err := opt.err(); err != nil {
			// Like the budget case, expose the partial result.
			res.Instance = cur
			res.Target = cur.Reduct(s.Target)
			return res, err
		}
		if res.Steps >= budget {
			// Expose the partial result so callers can observe how far a
			// non-terminating chase got (experiment E8).
			res.Instance = cur
			res.Target = cur.Reduct(s.Target)
			return res, ErrBudgetExceeded
		}
		// Egds first: keeping the instance egd-consistent before firing tgds
		// avoids deriving atoms that an identification would merge anyway.
		// An egd application rewrites values throughout the instance, so the
		// semi-naive delta is invalidated.
		if applied, err := standardEgdPass(s, cur, res, opt); err != nil {
			return nil, err
		} else if applied {
			tracker.invalidate()
			continue
		}
		if applied := standardTgdPass(s, cur, nulls, res, opt, tracker, stc); applied {
			continue
		}
		break
	}
	res.Instance = cur
	res.Target = cur.Reduct(s.Target)
	return res, nil
}

func standardEgdPass(s *dependency.Setting, cur *instance.Instance, res *Result, opt Options) (bool, error) {
	for _, d := range s.EGDs {
		a, b, ok := findEgdViolation(d, cur)
		if !ok {
			continue
		}
		if _, _, err := applyEgd(d.Name, cur, a, b); err != nil {
			return false, err
		}
		res.Steps++
		metrics.ChaseSteps.Inc()
		if opt.Trace {
			res.Trace = append(res.Trace, Step{Dep: d.Name, Kind: "egd", Equated: [2]instance.Value{a, b}})
		}
		return true, nil
	}
	return false, nil
}

// stCache holds the per-run constants of a chase: the σ-reduct and the body
// matches of every s-t tgd. Both are fixed for the whole run — dependency
// heads are over τ, so no chase step adds a source atom, and egd
// applications only replace nulls, which the null-free source atoms never
// mention — and are computed lazily on the first full scan.
type stCache struct {
	reduct *instance.Instance
	conj   map[*dependency.TGD][][]instance.Value
	fo     map[*dependency.TGD][]query.Binding
}

func (c *stCache) bodyInst(s *dependency.Setting, cur *instance.Instance) *instance.Instance {
	if c.reduct == nil {
		c.reduct = cur.Reduct(s.Source)
	}
	return c.reduct
}

// conjEnvs returns the (constant) body slot environments of a conjunctive
// s-t tgd. The environments are shared — callers must not modify them.
func (c *stCache) conjEnvs(s *dependency.Setting, d *dependency.TGD, cur *instance.Instance) [][]instance.Value {
	if envs, ok := c.conj[d]; ok {
		return envs
	}
	var envs [][]instance.Value
	d.BodyPlan().Eval(c.bodyInst(s, cur), nil, func(env []instance.Value) bool {
		envs = append(envs, append([]instance.Value(nil), env...))
		return true
	})
	if c.conj == nil {
		c.conj = make(map[*dependency.TGD][][]instance.Value)
	}
	c.conj[d] = envs
	return envs
}

// foEnvs returns the (constant) body bindings of an s-t tgd with a general
// first-order body. The bindings are shared — callers must not modify them.
func (c *stCache) foEnvs(s *dependency.Setting, d *dependency.TGD, cur *instance.Instance) []query.Binding {
	if envs, ok := c.fo[d]; ok {
		return envs
	}
	var envs []query.Binding
	bodyBindings(d, c.bodyInst(s, cur), func(env query.Binding) bool {
		envs = append(envs, env.Clone())
		return true
	})
	if c.fo == nil {
		c.fo = make(map[*dependency.TGD][]query.Binding)
	}
	c.fo[d] = envs
	return envs
}

// standardTgdPass fires all currently violating tgd bindings. Enumeration
// is semi-naive: on delta passes, only target-tgd matches touching an atom
// added by the previous pass are considered (s-t tgd bodies live on the
// never-changing σ-reduct and cannot gain matches, and their matches are
// all satisfied after the initial full pass). Every candidate binding is
// re-checked before firing, so duplicate candidates are harmless.
//
// Conjunctive bodies run entirely on the slot-based compiled-plan path:
// body environments are []instance.Value keyed by the body plan's slots,
// head checks seed HeadSlotsPlan directly, and firing instantiates the
// compiled head templates. Only general FO bodies (some s-t tgds) still go
// through Bindings.
func standardTgdPass(s *dependency.Setting, cur *instance.Instance, nulls *instance.NullSource, res *Result, opt Options, tracker *deltaTracker, stc *stCache) bool {
	budget := opt.maxSteps()
	fired := false
	fullScan := tracker.needsFullScan()
	delta := tracker.delta()
	tracker.reset()

	for _, d := range s.AllTGDs() {
		isst := isST(s, d)
		if !fullScan && isst {
			continue // σ-reduct unchanged: no new s-t matches
		}

		if d.BodyAtoms == nil {
			// General FO body (s-t tgds only): Binding-based path.
			var pending []query.Binding
			for _, env := range stc.foEnvs(s, d, cur) {
				if !headSatisfied(d, cur, env) {
					pending = append(pending, env.Clone())
				}
			}
			for _, env := range pending {
				if res.Steps >= budget || opt.err() != nil {
					return true // budget/cancel check happens at loop top in Standard
				}
				if headSatisfied(d, cur, env) {
					continue
				}
				for _, z := range d.Exists {
					env[z] = nulls.Fresh()
				}
				added := headAtomsUnder(d, env)
				for _, a := range added {
					if cur.Add(a) {
						tracker.add(a)
					}
				}
				res.Steps++
				metrics.ChaseSteps.Inc()
				fired = true
				if opt.Trace {
					res.Trace = append(res.Trace, Step{Dep: d.Name, Kind: "tgd", Added: added})
				}
			}
			continue
		}

		// Slot-based path.
		var pending [][]instance.Value
		collect := func(env []instance.Value) bool {
			if !headSatisfiedSlots(d, cur, env) {
				pending = append(pending, append([]instance.Value(nil), env...))
			}
			return true
		}
		switch {
		case isst:
			for _, env := range stc.conjEnvs(s, d, cur) {
				collect(env)
			}
		case fullScan:
			d.BodyPlan().Eval(cur, nil, collect)
		default:
			deltaBodyEnvs(d, cur, delta, collect)
		}

		hp := d.HeadSlotsPlan()
		tmpl := d.HeadTemplates()
		existsSlots := d.ExistsSlots()
		for _, benv := range pending {
			if res.Steps >= budget || opt.err() != nil {
				return true // budget/cancel check happens at loop top in Standard
			}
			if headSatisfiedSlots(d, cur, benv) {
				continue
			}
			full := make([]instance.Value, hp.NumSlots())
			copy(full, benv)
			for _, sl := range existsSlots {
				full[sl] = nulls.Fresh()
			}
			added := tmpl.Instantiate(full)
			for _, a := range added {
				if cur.Add(a) {
					tracker.add(a)
				}
			}
			res.Steps++
			metrics.ChaseSteps.Inc()
			fired = true
			if opt.Trace {
				res.Trace = append(res.Trace, Step{Dep: d.Name, Kind: "tgd", Added: added})
			}
		}
	}
	return fired
}

// isST reports whether the tgd belongs to Σst.
func isST(s *dependency.Setting, d *dependency.TGD) bool {
	for _, st := range s.ST {
		if st == d {
			return true
		}
	}
	return false
}

// UniversalSolution chases the source instance and returns the target
// reduct, which is a universal solution for weakly acyclic settings. The
// error is an *EgdFailureError when no solution exists, or
// ErrBudgetExceeded when the chase did not terminate within the budget.
func UniversalSolution(s *dependency.Setting, src *instance.Instance, opt Options) (*instance.Instance, error) {
	res, err := Standard(s, src, opt)
	if err != nil {
		return nil, err
	}
	return res.Target, nil
}
