package chase

import (
	"testing"
	"testing/quick"

	"repro/internal/hom"
	"repro/internal/instance"
)

// randomSource21 builds a random source instance for Example 2.1 from a
// compact seed: each bit pair adds an M or N fact over a small constant
// pool.
func randomSource21(seed uint32) *instance.Instance {
	names := []string{"a", "b", "c"}
	src := instance.New()
	for i := 0; i < 8; i++ {
		bits := (seed >> uint(i*3)) & 7
		rel := "M"
		if bits&4 != 0 {
			rel = "N"
		}
		u := instance.Const(names[bits&1])
		v := instance.Const(names[(bits>>1)&1+1])
		src.Add(instance.NewAtom(rel, u, v))
	}
	return src
}

// Property: on random sources, the standard chase of Example 2.1 either
// fails on the egd or produces a solution that is universal for the
// canonical α-chase result (both are solutions, so homomorphisms must
// exist in both directions between chase result and canonical result).
func TestQuickChaseProducesUniversalSolution(t *testing.T) {
	s := mustSetting(t, example21)
	f := func(seed uint32) bool {
		src := randomSource21(seed)
		res, err := Standard(s, src, Options{MaxSteps: 50000})
		if err != nil {
			return IsEgdFailure(err)
		}
		if !IsSolution(s, src, res.Target) {
			return false
		}
		cres, _, err := Canonical(s, src, Options{MaxSteps: 50000})
		if err != nil {
			// The standard chase succeeded, so the canonical chase must too
			// (same egd-consistency of the source data).
			return false
		}
		if !IsSolution(s, src, cres.Target) {
			return false
		}
		// Both are universal solutions: homomorphically equivalent.
		return hom.Exists(res.Target, cres.Target) && hom.Exists(cres.Target, res.Target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: chase results are deterministic for a fixed input.
func TestQuickChaseDeterministic(t *testing.T) {
	s := mustSetting(t, example21)
	f := func(seed uint32) bool {
		src := randomSource21(seed)
		r1, err1 := Standard(s, src, Options{MaxSteps: 50000})
		r2, err2 := Standard(s, src, Options{MaxSteps: 50000})
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return r1.Target.Equal(r2.Target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the chase never invents constants — the constants of the result
// are the constants of the source plus those mentioned by the dependencies
// (none, in Example 2.1).
func TestQuickChaseConstantsFromSource(t *testing.T) {
	s := mustSetting(t, example21)
	f := func(seed uint32) bool {
		src := randomSource21(seed)
		res, err := Standard(s, src, Options{MaxSteps: 50000})
		if err != nil {
			return true
		}
		srcConsts := make(map[instance.Value]bool)
		for _, c := range src.Consts() {
			srcConsts[c] = true
		}
		for _, c := range res.Target.Consts() {
			if !srcConsts[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
