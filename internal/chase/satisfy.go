// Package chase implements the chase procedures of the paper: the standard
// chase of Fagin et al. (used to build universal solutions and decide
// existence for weakly acyclic settings) and the α-chase of Definition 4.1,
// the justification-controlled chase underlying CWA-presolutions.
package chase

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/query"
)

// ErrBudgetExceeded reports that a chase did not reach a fixpoint within its
// step budget — the observable stand-in for potential non-termination
// (Existence-of-(CWA-)Solutions is undecidable in general, Theorem 6.2).
var ErrBudgetExceeded = errors.New("chase: step budget exceeded")

// ErrCanceled reports that a run was aborted through its context (deadline
// or cancellation) before reaching a fixpoint. It is the wall-clock sibling
// of ErrBudgetExceeded: on settings where termination is undecidable
// (Theorem 6.2, D_halt) a deadline bounds the run in time rather than in
// steps. Test with errors.Is(err, ErrCanceled).
var ErrCanceled = errors.New("chase: canceled")

// ContextErr returns nil when ctx is nil or still live, and otherwise an
// error wrapping ErrCanceled with the context's cause. It is the single
// cancellation check shared by the chase variants and the enumeration
// layers above them (cwa, certain).
func ContextErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrCanceled, err)
	}
	return nil
}

// EgdFailureError reports a failing chase: an egd tried to equate two
// distinct constants (Definition 4.2(2)).
type EgdFailureError struct {
	Dep  string
	A, B instance.Value
}

func (e *EgdFailureError) Error() string {
	return fmt.Sprintf("chase: egd %s fails: cannot identify constants %v and %v", e.Dep, e.A, e.B)
}

// IsEgdFailure reports whether the error is an egd failure.
func IsEgdFailure(err error) bool {
	var e *EgdFailureError
	return errors.As(err, &e)
}

// bodyBindings enumerates the assignments (ū, v̄) under which the body of a
// tgd holds, invoking f with the binding of every frontier variable. For
// conjunctive bodies it joins through the instance indexes; for general FO
// bodies (s-t tgds) it evaluates under active-domain semantics on bodyInst.
// The binding passed to f is reused; copy what you keep. Enumeration stops
// early when f returns false.
func bodyBindings(d *dependency.TGD, bodyInst *instance.Instance, f func(query.Binding) bool) {
	if d.BodyAtoms != nil {
		d.BodyPlan().EvalBinding(bodyInst, nil, f)
		return
	}
	q := query.FOQuery{Vars: d.FrontierVars(), F: d.Body}
	for _, t := range q.Answers(bodyInst) {
		env := make(query.Binding, len(q.Vars))
		for i, v := range q.Vars {
			env[v] = t[i]
		}
		if !f(env) {
			return
		}
	}
}

// headSatisfied reports whether some extension of the binding to the
// existential variables makes every head atom present (the standard tgd
// satisfaction condition).
func headSatisfied(d *dependency.TGD, ins *instance.Instance, env query.Binding) bool {
	sat := false
	d.HeadPlan().EvalBinding(ins, env, func(query.Binding) bool {
		sat = true
		return false
	})
	return sat
}

// headSatisfiedSlots is headSatisfied on the slot-based hot path: env is a
// BodyPlan result environment (or a delta result permuted into body slot
// order), seeding HeadSlotsPlan directly with no name translation.
func headSatisfiedSlots(d *dependency.TGD, ins *instance.Instance, env []instance.Value) bool {
	sat := false
	d.HeadSlotsPlan().Eval(ins, env, func([]instance.Value) bool {
		sat = true
		return false
	})
	return sat
}

// justificationKeySlots is JustificationKeyOf for a body slot environment.
// It produces byte-for-byte the same key as Justification.Key with Z == "",
// built in a single buffer (the hot enumeration loops compute one key per
// body match per state).
func justificationKeySlots(d *dependency.TGD, env []instance.Value) string {
	xs, ys := d.XSlots(), d.YSlots()
	buf := make([]byte, 0, len(d.Name)+8*(len(xs)+len(ys))+4)
	buf = append(buf, d.Name...)
	buf = append(buf, '(')
	for i, s := range xs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendValue(buf, env[s])
	}
	buf = append(buf, ';')
	for i, s := range ys {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendValue(buf, env[s])
	}
	buf = append(buf, ')', '.')
	return string(buf)
}

// appendValue appends Value.String() without the intermediate allocations.
func appendValue(buf []byte, v instance.Value) []byte {
	if v.IsNull() {
		buf = append(buf, '_')
		return strconv.AppendInt(buf, v.NullLabel(), 10)
	}
	return append(buf, instance.ConstName(v)...)
}

// headAtomsUnder instantiates the head atoms under the binding, which must
// cover x̄ and z̄.
func headAtomsUnder(d *dependency.TGD, env query.Binding) []instance.Atom {
	out := make([]instance.Atom, len(d.Head))
	for i, a := range d.Head {
		args := make([]instance.Value, len(a.Terms))
		for j, t := range a.Terms {
			if t.IsVar() {
				v, ok := env[t.Var]
				if !ok {
					panic("chase: unbound head variable " + t.Var)
				}
				args[j] = v
			} else {
				args[j] = t.Val
			}
		}
		out[i] = instance.Atom{Rel: a.Rel, Args: args}
	}
	return out
}

// tgdBodyInstance returns the instance a tgd's body is evaluated against:
// the σ-reduct for s-t tgds (quantifiers are relativized to the source
// active domain) and the full instance for target tgds.
func tgdBodyInstance(s *dependency.Setting, d *dependency.TGD, full *instance.Instance) *instance.Instance {
	for _, st := range s.ST {
		if st == d {
			return full.Reduct(s.Source)
		}
	}
	return full
}

// BodyMatches returns every assignment of the tgd's frontier variables
// (x̄ ∪ ȳ) under which its body holds. full is the instance over σ ∪ τ;
// s-t tgd bodies are evaluated on its σ-reduct.
func BodyMatches(s *dependency.Setting, d *dependency.TGD, full *instance.Instance) []query.Binding {
	var out []query.Binding
	bodyBindings(d, tgdBodyInstance(s, d, full), func(env query.Binding) bool {
		out = append(out, env.Clone())
		return true
	})
	return out
}

// HeadWitnesses returns the assignments of the tgd's existential variables
// w̄ for which every head atom ψ[ū, w̄] is present in the instance, given a
// body binding env. Each witness maps d.Exists to values.
func HeadWitnesses(d *dependency.TGD, ins *instance.Instance, env query.Binding) []query.Binding {
	var out []query.Binding
	d.HeadPlan().EvalBinding(ins, env, func(full query.Binding) bool {
		w := make(query.Binding, len(d.Exists))
		for _, z := range d.Exists {
			w[z] = full[z]
		}
		out = append(out, w)
		return true
	})
	// Deduplicate (MatchAtoms can report the same witness via different
	// enumeration paths when head atoms overlap).
	seen := make(map[string]bool, len(out))
	uniq := out[:0]
	for _, w := range out {
		key := ""
		for _, z := range d.Exists {
			key += w[z].String() + "|"
		}
		if !seen[key] {
			seen[key] = true
			uniq = append(uniq, w)
		}
	}
	return uniq
}

// HeadAtoms instantiates the tgd's head under a binding covering x̄ and z̄.
func HeadAtoms(d *dependency.TGD, env query.Binding) []instance.Atom {
	return headAtomsUnder(d, env)
}

// JustificationOf builds the justification (d, ū, v̄, z) from a body binding.
func JustificationOf(d *dependency.TGD, env query.Binding, z string) Justification {
	u := make([]instance.Value, len(d.X))
	for i, x := range d.X {
		u[i] = env[x]
	}
	v := make([]instance.Value, len(d.Y))
	for i, y := range d.Y {
		v[i] = env[y]
	}
	return Justification{Dep: d.Name, U: u, V: v, Z: z}
}

// JustificationKeyOf is JustificationOf(..., "").Key() without the variable
// part: it identifies the pair (d, ū, v̄) shared by all of d's existential
// variables, the unit at which an α assigns a witness tuple.
func JustificationKeyOf(d *dependency.TGD, env query.Binding) string {
	return JustificationOf(d, env, "").Key()
}

// BodyEnvsKeyed returns every body match of a conjunctive-body tgd in cur as
// a BodyPlan slot environment (fresh copies), paired with its justification
// key (d, ū, v̄). The slot path avoids the Binding maps of BodyMatches on
// enumeration hot loops.
func BodyEnvsKeyed(d *dependency.TGD, cur *instance.Instance) ([][]instance.Value, []string) {
	var envs [][]instance.Value
	var keys []string
	d.BodyPlan().Eval(cur, nil, func(env []instance.Value) bool {
		envs = append(envs, append([]instance.Value(nil), env...))
		keys = append(keys, justificationKeySlots(d, env))
		return true
	})
	return envs, keys
}

// HeadAtomsSlots instantiates the tgd's head under a body slot environment
// and a witness binding of the existential variables. Conjunctive bodies
// only.
func HeadAtomsSlots(d *dependency.TGD, benv []instance.Value, w query.Binding) []instance.Atom {
	full := make([]instance.Value, d.HeadSlotsPlan().NumSlots())
	copy(full, benv)
	zs := d.ExistsSlots()
	for i, z := range d.Exists {
		full[zs[i]] = w[z]
	}
	return d.HeadTemplates().Instantiate(full)
}

// SatisfiesTGD reports whether the instance satisfies the tgd.
func SatisfiesTGD(s *dependency.Setting, d *dependency.TGD, full *instance.Instance) bool {
	bodyInst := tgdBodyInstance(s, d, full)
	ok := true
	bodyBindings(d, bodyInst, func(env query.Binding) bool {
		if !headSatisfied(d, full, env) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// SatisfiesEGD reports whether the instance satisfies the egd.
func SatisfiesEGD(d *dependency.EGD, full *instance.Instance) bool {
	p, l, r := d.BodyPlan()
	ok := true
	p.Eval(full, nil, func(env []instance.Value) bool {
		if env[l] != env[r] {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// IsSolution reports whether t is a solution for src under s: S ∪ T must
// satisfy Σst and T must satisfy Σt (Section 2). t must be a target
// instance and src a null-free source instance.
func IsSolution(s *dependency.Setting, src, t *instance.Instance) bool {
	full := instance.Union(src, t)
	for _, d := range s.ST {
		if !SatisfiesTGD(s, d, full) {
			return false
		}
	}
	for _, d := range s.TGDs {
		if !SatisfiesTGD(s, d, t) {
			return false
		}
	}
	for _, d := range s.EGDs {
		if !SatisfiesEGD(d, t) {
			return false
		}
	}
	return true
}

// findEgdViolation locates a binding violating the egd, or ok=false.
func findEgdViolation(d *dependency.EGD, ins *instance.Instance) (a, b instance.Value, ok bool) {
	p, l, r := d.BodyPlan()
	p.Eval(ins, nil, func(env []instance.Value) bool {
		if env[l] != env[r] {
			a, b, ok = env[l], env[r], true
			return false
		}
		return true
	})
	return a, b, ok
}

// applyEgd resolves one egd violation in place and returns the surviving
// value and the replaced one: a null is replaced by the other value; between
// two nulls the larger label is replaced by the smaller (the paper's
// disambiguation). Two distinct constants make the chase fail.
func applyEgd(depName string, ins *instance.Instance, a, b instance.Value) (winner, loser instance.Value, err error) {
	switch {
	case a.IsConst() && b.IsConst():
		return 0, 0, &EgdFailureError{Dep: depName, A: a, B: b}
	case a.IsConst():
		winner, loser = a, b
	case b.IsConst():
		winner, loser = b, a
	case a.NullLabel() < b.NullLabel():
		winner, loser = a, b
	default:
		winner, loser = b, a
	}
	ins.ReplaceValue(loser, winner)
	return winner, loser, nil
}
