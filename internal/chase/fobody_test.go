package chase

import (
	"testing"

	"repro/internal/parser"
)

// The paper (footnote 2, following Libkin) allows s-t tgd bodies to be
// arbitrary first-order formulas over the source schema, with quantifiers
// relativized to the source active domain. These tests chase settings with
// negated, disjunctive and quantified bodies.

func TestChaseNegatedBody(t *testing.T) {
	// Unmarried(x): every person without a spouse entry gets a Single fact.
	s := mustSetting(t, `
source Person/1, Spouse/2.
target Single/1, Pair/2.
st:
  d1: Person(x) & !(exists y (Spouse(x,y))) -> Single(x).
  d2: Spouse(x,y) -> Pair(x,y).
`)
	src := mustInstance(t, `Person(a). Person(b). Person(c). Spouse(a,b).`)
	res, err := Standard(s, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := mustInstance(t, `Single(b). Single(c). Pair(a,b).`)
	// Note: b is "single" because Spouse(b,·) has no entry — the source
	// lists only Spouse(a,b).
	if !res.Target.Equal(want) {
		t.Fatalf("target = %v, want %v", res.Target, want)
	}
}

func TestChaseDisjunctiveBody(t *testing.T) {
	s := mustSetting(t, `
source A/1, B/1.
target Any/1.
st:
  d1: A(x) | B(x) -> Any(x).
`)
	src := mustInstance(t, `A(a). B(b). A(c). B(c).`)
	res, err := Standard(s, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Target.RelLen("Any") != 3 {
		t.Fatalf("Any = %v", res.Target)
	}
}

func TestChaseQuantifiedBody(t *testing.T) {
	// Nodes whose every outgoing edge stays inside the marked set.
	s := mustSetting(t, `
source E/2, Mark/1.
target Closed/1.
st:
  d1: (Mark(x) & forall y (E(x,y) -> Mark(y))) -> Closed(x).
`)
	src := mustInstance(t, `Mark(a). Mark(b). E(a,b). E(b,c). Mark(d).`)
	res, err := Standard(s, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// a: edge to b (marked) ✓; b: edge to c (unmarked) ✗; d: no edges ✓.
	want := mustInstance(t, `Closed(a). Closed(d).`)
	if !res.Target.Equal(want) {
		t.Fatalf("target = %v, want %v", res.Target, want)
	}
}

func TestFOBodySettingRoundTrip(t *testing.T) {
	s := mustSetting(t, `
source Person/1, Spouse/2.
target Single/1.
st:
  d1: Person(x) & !(exists y (Spouse(x,y))) -> Single(x).
`)
	s2, err := parser.ParseSetting(s.String())
	if err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, s.String())
	}
	if len(s2.ST) != 1 {
		t.Fatal("round trip lost the dependency")
	}
	// Quantified body round-trips thanks to the parenthesisation rule.
	s3 := mustSetting(t, `
source M/2.
target P/1.
st:
  d1: (exists y (M(x,y))) -> P(x).
`)
	if _, err := parser.ParseSetting(s3.String()); err != nil {
		t.Fatalf("quantified body round trip: %v\n%s", err, s3.String())
	}
}

// FO bodies interact with the CWA machinery: the justification of a Single
// fact is the negated-body binding.
func TestFOBodyCWASolution(t *testing.T) {
	s := mustSetting(t, `
source Person/1, Spouse/2.
target Single/1, Partner/2.
st:
  d1: Person(x) & !(exists y (Spouse(x,y))) -> exists p : Partner(x,p).
  d2: Spouse(x,y) -> Partner(x,y).
`)
	src := mustInstance(t, `Person(a). Person(b). Spouse(a,c).`)
	res, _, err := Canonical(s, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// a has a concrete partner; b gets an invented one.
	if res.Target.RelLen("Partner") != 2 {
		t.Fatalf("target = %v", res.Target)
	}
	if !res.Successful {
		t.Fatal("canonical chase must succeed")
	}
}
