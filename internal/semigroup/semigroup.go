// Package semigroup implements the Kolaitis–Panttaja–Tan setting D_emb used
// in Example 6.1: it encodes the embedding problem for finite semigroups
// (given a partial binary operation, does a finite total associative
// extension exist?), which is undecidable and witnesses the undecidability
// of Existence-of-Solutions.
//
// The paper's Example 6.1 shows this reduction does NOT carry over to
// CWA-solutions: for S = {R(0,1,1)} a solution exists (addition modulo
// k+2), but no CWA-solution exists — every α-chase keeps generating new
// elements. This package provides D_emb, the encoding, a brute-force
// associative-extension searcher as the baseline, and helpers to observe
// the never-successful chase under growing budgets (experiment E8).
package semigroup

import (
	"fmt"

	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/parser"
)

// Partial is a partial binary operation on named elements: Table[x][y] = z
// means x·y = z.
type Partial struct {
	Elements []string
	Table    map[string]map[string]string
}

// Validate checks that the table only references declared elements.
func (p *Partial) Validate() error {
	decl := make(map[string]bool, len(p.Elements))
	for _, e := range p.Elements {
		decl[e] = true
	}
	for x, row := range p.Table {
		if !decl[x] {
			return fmt.Errorf("semigroup: undeclared element %q", x)
		}
		for y, z := range row {
			if !decl[y] || !decl[z] {
				return fmt.Errorf("semigroup: undeclared element in %s·%s=%s", x, y, z)
			}
		}
	}
	return nil
}

// DembSetting returns the fixed setting D_emb: R is copied to Rp; Rp must be
// functional (d_func), associative (d_assoc) and total (d_total, prenexed
// into nine tgds, one per argument pair). The setting is not weakly acyclic.
func DembSetting() *dependency.Setting {
	text := `
source R/3.
target Rp/3.
st:
  copy: R(x,y,z) -> Rp(x,y,z).
target-deps:
  dfunc: Rp(x,y,z1) & Rp(x,y,z2) -> z1 = z2.
  dassoc: Rp(x,y,u) & Rp(y,z,v) & Rp(u,z,w) -> Rp(x,v,w).
`
	vars := []string{"x1", "x2", "x3", "y1", "y2", "y3"}
	for i := 1; i <= 3; i++ {
		for j := 1; j <= 3; j++ {
			text += fmt.Sprintf("  dtotal%d%d: Rp(x1,x2,x3) & Rp(y1,y2,y3) -> exists z : Rp(%s,%s,z).\n",
				i, j, vars[i-1], vars[2+j])
		}
	}
	s, err := parser.ParseSetting(text)
	if err != nil {
		panic("semigroup: D_emb must parse: " + err.Error())
	}
	return s
}

// SourceInstance encodes the partial operation as {R(x,y,z) : p(x,y)=z}.
func SourceInstance(p *Partial) (*instance.Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	src := instance.New()
	for x, row := range p.Table {
		for y, z := range row {
			src.Add(instance.NewAtom("R",
				instance.Const(x), instance.Const(y), instance.Const(z)))
		}
	}
	return src, nil
}

// Example61Partial is the partial function of Example 6.1: p(0,1) = 1.
func Example61Partial() *Partial {
	return &Partial{
		Elements: []string{"0", "1"},
		Table:    map[string]map[string]string{"0": {"1": "1"}},
	}
}

// ZkSolution builds the Example 6.1 witness solution T' for S = {R(0,1,1)}:
// addition modulo k+2 over the elements 0, 1, …, k+1 — a finite total
// associative extension, hence a solution for S under D_emb.
func ZkSolution(k int) *instance.Instance {
	n := k + 2
	ins := instance.New()
	name := func(i int) instance.Value { return instance.Const(fmt.Sprintf("%d", i)) }
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			ins.Add(instance.NewAtom("Rp", name(a), name(b), name((a+b)%n)))
		}
	}
	return ins
}

// EmbeddingBrute searches for a total associative extension of the partial
// operation over ground sets of size |Elements| … maxSize, by backtracking
// over the multiplication table. It is the independent baseline: a solution
// for S_p under D_emb exists iff such an extension exists.
func EmbeddingBrute(p *Partial, maxSize int) (found bool, size int) {
	if err := p.Validate(); err != nil {
		return false, 0
	}
	for n := len(p.Elements); n <= maxSize; n++ {
		if searchExtension(p, n) {
			return true, n
		}
	}
	return false, 0
}

// searchExtension tries to complete the table over n elements (the declared
// ones plus fresh e<i>), checking associativity incrementally.
func searchExtension(p *Partial, n int) bool {
	elems := append([]string(nil), p.Elements...)
	for i := len(elems); i < n; i++ {
		elems = append(elems, fmt.Sprintf("e%d", i))
	}
	idx := make(map[string]int, n)
	for i, e := range elems {
		idx[e] = i
	}
	table := make([][]int, n)
	for i := range table {
		table[i] = make([]int, n)
		for j := range table[i] {
			table[i][j] = -1
		}
	}
	for x, row := range p.Table {
		for y, z := range row {
			table[idx[x]][idx[y]] = idx[z]
		}
	}
	var rec func(cell int) bool
	check := func(a, b, c int) bool {
		// (a·b)·c = a·(b·c) whenever all intermediate products are defined.
		ab := table[a][b]
		if ab == -1 {
			return true
		}
		bc := table[b][c]
		if bc == -1 {
			return true
		}
		abC := table[ab][c]
		aBC := table[a][bc]
		return abC == -1 || aBC == -1 || abC == aBC
	}
	consistent := func() bool {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				for c := 0; c < n; c++ {
					if !check(a, b, c) {
						return false
					}
				}
			}
		}
		return true
	}
	rec = func(cell int) bool {
		if cell == n*n {
			return consistent()
		}
		a, b := cell/n, cell%n
		if table[a][b] != -1 {
			return rec(cell + 1)
		}
		for z := 0; z < n; z++ {
			table[a][b] = z
			if consistent() && rec(cell+1) {
				return true
			}
		}
		table[a][b] = -1
		return false
	}
	return rec(0)
}
