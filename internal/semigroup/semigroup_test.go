package semigroup

import (
	"errors"
	"testing"

	"repro/internal/chase"
	"repro/internal/instance"
)

func TestDembSettingShape(t *testing.T) {
	s := DembSetting()
	if len(s.TGDs) != 10 { // d_assoc + 9 prenexed d_total tgds
		t.Fatalf("target tgds = %d, want 10", len(s.TGDs))
	}
	if len(s.EGDs) != 1 {
		t.Fatalf("egds = %d, want 1", len(s.EGDs))
	}
	if s.WeaklyAcyclic() {
		t.Fatal("D_emb must not be weakly acyclic")
	}
}

func TestZkSolutionIsSolution(t *testing.T) {
	s := DembSetting()
	src, err := SourceInstance(Example61Partial())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1, 3} {
		sol := ZkSolution(k)
		if !chase.IsSolution(s, src, sol) {
			t.Errorf("Z_%d must be a solution for S = {R(0,1,1)}", k+2)
		}
	}
	// A broken table is not a solution (drop one product: totality fails).
	broken := ZkSolution(1)
	broken.Remove(instance.NewAtom("Rp",
		instance.Const("0"), instance.Const("0"), instance.Const("0")))
	if chase.IsSolution(s, src, broken) {
		t.Error("partial table must not be a solution")
	}
}

// Example 6.1's headline: solutions exist, but the chase (standard or
// canonical α) never terminates — there is no CWA-solution to find.
func TestExample61ChaseNeverTerminates(t *testing.T) {
	s := DembSetting()
	src, err := SourceInstance(Example61Partial())
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{100, 300, 900} {
		_, err := chase.Standard(s, src, chase.Options{MaxSteps: budget})
		if !errors.Is(err, chase.ErrBudgetExceeded) {
			t.Fatalf("budget %d: want budget exceeded, got %v", budget, err)
		}
	}
	_, _, err = chase.Canonical(s, src, chase.Options{MaxSteps: 600})
	if !errors.Is(err, chase.ErrBudgetExceeded) {
		t.Fatalf("canonical α-chase: want budget exceeded, got %v", err)
	}
}

func TestEmbeddingBruteFindsZ2(t *testing.T) {
	// p(0,1)=1 embeds into Z_2 = {0,1} with addition mod 2? 0+1=1 ✓,
	// so a total associative extension exists already on 2 elements.
	found, size := EmbeddingBrute(Example61Partial(), 3)
	if !found {
		t.Fatal("embedding must exist")
	}
	if size != 2 {
		t.Fatalf("smallest extension has size 2 (Z_2), got %d", size)
	}
}

func TestEmbeddingBruteNegative(t *testing.T) {
	// An idempotent-free constraint that cannot be completed on 1 element:
	// p(a,a)=b with b≠a forces size ≥ 2; on 2 elements a completion exists
	// (left-zero style tables are associative). Check the searcher agrees.
	p := &Partial{
		Elements: []string{"a", "b"},
		Table:    map[string]map[string]string{"a": {"a": "b"}},
	}
	found, size := EmbeddingBrute(p, 2)
	if !found || size != 2 {
		t.Fatalf("found=%v size=%d", found, size)
	}
	// A genuinely impossible small case: x·x = y, y·y = x, x·y = x, y·x = y
	// is a complete table; check associativity directly: (x·x)·x = y·x = y,
	// x·(x·x) = x·y = x — not associative, so no extension of THIS total
	// table exists at size 2 (the searcher must respect fixed cells).
	bad := &Partial{
		Elements: []string{"x", "y"},
		Table: map[string]map[string]string{
			"x": {"x": "y", "y": "x"},
			"y": {"y": "x", "x": "y"},
		},
	}
	found, _ = EmbeddingBrute(bad, 2)
	if found {
		t.Fatal("non-associative total table must not embed at its own size")
	}
}

func TestValidateErrors(t *testing.T) {
	p := &Partial{Elements: []string{"a"}, Table: map[string]map[string]string{"a": {"a": "z"}}}
	if err := p.Validate(); err == nil {
		t.Fatal("undeclared element must fail")
	}
	if _, err := SourceInstance(p); err == nil {
		t.Fatal("SourceInstance must propagate validation errors")
	}
}

// The chase's growth is observable: more budget, more elements generated —
// the shape of Example 6.1's "it will have to loop forever".
func TestChaseGrowsWithBudget(t *testing.T) {
	s := DembSetting()
	src, err := SourceInstance(Example61Partial())
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int
	for _, budget := range []int{50, 150, 450} {
		res, err := chase.Standard(s, src, chase.Options{MaxSteps: budget})
		if err == nil {
			t.Fatalf("budget %d: chase must not finish, got %v", budget, res.Target)
		}
		if res == nil || res.Target == nil {
			t.Fatalf("budget %d: partial result must be exposed", budget)
		}
		sizes = append(sizes, res.Target.Len())
	}
	if !(sizes[0] < sizes[1] && sizes[1] < sizes[2]) {
		t.Fatalf("the chase must keep generating atoms: sizes %v", sizes)
	}
}
