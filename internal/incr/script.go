package incr

import (
	"fmt"
	"strings"

	"repro/internal/instance"
	"repro/internal/parser"
)

// ParseScript parses a mutation script: one mutation per line, a `+` or
// `-` sign followed by atoms in the instance syntax (`+ A(a,b).`,
// `- B(c).`). A line's sign applies to every atom on it. Blank lines and
// `#` comments are skipped. Atom order is preserved — dxcli's apply mode
// and tests replay scripts as ordered batches.
func ParseScript(text string) ([]instance.Mutation, error) {
	var muts []instance.Mutation
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var insert bool
		switch line[0] {
		case '+':
			insert = true
		case '-':
			insert = false
		default:
			return nil, fmt.Errorf("incr: line %d: mutation must start with + or -: %q", ln+1, line)
		}
		rest := strings.TrimSpace(line[1:])
		if rest == "" {
			return nil, fmt.Errorf("incr: line %d: missing atom after %q", ln+1, string(line[0]))
		}
		ins, err := parser.ParseInstance(rest)
		if err != nil {
			return nil, fmt.Errorf("incr: line %d: %v", ln+1, err)
		}
		atoms := ins.Atoms()
		if len(atoms) == 0 {
			return nil, fmt.Errorf("incr: line %d: no atoms in %q", ln+1, rest)
		}
		for _, a := range atoms {
			muts = append(muts, instance.Mutation{Insert: insert, Atom: a})
		}
	}
	return muts, nil
}
