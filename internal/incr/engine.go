// Package incr is the incremental-maintenance subsystem: it keeps a
// scenario's chase result up to date under source-tuple inserts and
// deletes, instead of re-chasing from scratch on every change.
//
// Inserts run a semi-naive delta chase seeded only with the new tuples
// (chase.Resumable.Extend, reusing the compiled per-dependency plans).
// Deletes walk the justification graph — built from the chase's Observer
// callbacks, mirroring the paper's justifications (Definitions 4.1–4.2) —
// to retract exactly the derived atoms whose every justification is gone
// (DRed-style over-delete), then re-saturate to re-derive survivors. When
// an egd merge is implicated the per-atom bookkeeping is unreliable
// (values were identified across the instance), so deletions fall back to
// a bounded full re-chase; the same fallback covers settings with
// non-monotone (general FO) s-t bodies, whose matches cannot be
// maintained by a delta join.
//
// Correctness target: after every mutation batch the maintained instance
// is a universal solution for the current source — hom-equivalent to a
// from-scratch chase, with an isomorphic core, so all four certain/maybe
// semantics agree (the randomized crosscheck in this package verifies
// exactly that). Note the maintained instance need not be *isomorphic* to
// the from-scratch chase: chase results are firing-order dependent, and a
// continuation sees atoms an initial chase would not have, which can
// satisfy heads early. Universality is the invariant that survives.
package incr

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/chase"
	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/metrics"
)

// ErrNotIncremental reports that the setting cannot be maintained by this
// engine: its chase is not guaranteed to terminate (not weakly acyclic),
// so there is no fixpoint to maintain.
var ErrNotIncremental = errors.New("incr: setting is not weakly acyclic")

// Engine maintains the chase result of one (setting, source) pair under
// source mutations. All methods are safe for concurrent use; mutations are
// serialized internally.
type Engine struct {
	mu sync.Mutex

	s *dependency.Setting
	// maintainable reports that every s-t tgd body is conjunctive, the
	// precondition for delta-chasing inserts (FO bodies are non-monotone).
	maintainable bool

	source *instance.Instance // owned clone; never exposed directly
	res    *chase.Resumable   // nil while noSol != nil
	g      *graph             // nil when !maintainable

	// merged is set when any egd application has rewritten values since
	// the last rebuild: the justification graph's atom identities are then
	// stale and deletions fall back to a re-chase.
	merged bool
	// dirty is set when the last run stopped early (budget or deadline):
	// the instance is mid-chase and must be re-saturated or rebuilt before
	// it is served.
	dirty bool
	// noSol holds the egd-failure error when the current source has no
	// solution. The engine stays usable: later mutations can remove the
	// offending tuples, which triggers a rebuild.
	noSol error

	srcSnap *instance.Instance // memoized source snapshot
	uniSnap *instance.Instance // memoized universal solution (τ-reduct)
}

// ApplyResult reports what a mutation batch did.
type ApplyResult struct {
	// Inserted and Deleted count the source atoms actually added/removed
	// (net of duplicates, absent deletions, and within-batch cancels).
	Inserted, Deleted int
	// Version is the source version after the batch.
	Version uint64
	// Fallback reports that the batch was resolved by a full re-chase
	// instead of incremental maintenance.
	Fallback bool
	// NoSolution reports that the new source has no solution (an egd
	// failed). The mutation is still applied.
	NoSolution bool
	// Steps counts the chase steps this batch cost (delta or rebuild).
	Steps int
	// Atoms is the size of the maintained universal solution after the
	// batch (0 when NoSolution).
	Atoms int
}

// New builds an engine for the setting and source and runs the initial
// chase. Only weakly acyclic settings are accepted (ErrNotIncremental
// otherwise). An egd failure is not an error here: the engine records the
// no-solution state, which mutations may later repair; Solution reports
// it. Budget/cancel errors from opt are returned and leave the engine
// dirty; it re-saturates on the next use.
func New(s *dependency.Setting, src *instance.Instance, opt chase.Options) (*Engine, error) {
	if !s.WeaklyAcyclic() {
		return nil, ErrNotIncremental
	}
	if src.HasNulls() {
		return nil, fmt.Errorf("incr: source instance must be null-free")
	}
	maintainable := true
	for _, d := range s.ST {
		if d.BodyAtoms == nil {
			maintainable = false
			break
		}
	}
	e := &Engine{s: s, maintainable: maintainable, source: src.Clone()}
	return e, e.rebuild(opt)
}

// observer routes chase callbacks into the engine's justification graph.
// It is only attached for maintainable settings.
type observer struct{ e *Engine }

func (o observer) TGDFired(d *dependency.TGD, body, inserted []instance.Atom) {
	if o.e.merged {
		return // graph is already stale; recording would not repair it
	}
	o.e.g.record(body, inserted)
}

func (o observer) EgdApplied(dep string, winner, loser instance.Value) {
	o.e.merged = true
}

// rebuild chases the current source from scratch, resetting the graph and
// all failure state. Callers hold e.mu (or own e exclusively, as New does).
func (e *Engine) rebuild(opt chase.Options) error {
	e.merged = false
	e.dirty = false
	e.noSol = nil
	e.res = nil
	e.srcSnap, e.uniSnap = nil, nil
	var obs chase.Observer
	if e.maintainable {
		e.g = newGraph()
		obs = observer{e}
	}
	r, err := chase.NewResumable(e.s, e.source, opt, obs)
	if err != nil {
		if chase.IsEgdFailure(err) {
			e.noSol = err
			return nil // a known no-solution state is consistent, not broken
		}
		e.res = r // partial state; a later ReSaturate can finish it
		e.dirty = true
		return err
	}
	e.res = r
	return nil
}

// ensure brings the engine to a served-state fixpoint: re-saturates a
// dirty (interrupted) chase or reports the recorded no-solution error.
// Callers hold e.mu.
func (e *Engine) ensure(opt chase.Options) error {
	if e.noSol != nil {
		return e.noSol
	}
	if e.res == nil {
		return e.rebuildReporting(opt)
	}
	if e.dirty {
		if err := e.res.ReSaturate(opt); err != nil {
			if chase.IsEgdFailure(err) {
				e.noSol = err
				e.res = nil
				return e.noSol
			}
			return err
		}
		e.dirty = false
		e.uniSnap = nil
	}
	return nil
}

// rebuildReporting is rebuild plus the no-solution check, for paths that
// must hand an error to a caller expecting a solution.
func (e *Engine) rebuildReporting(opt chase.Options) error {
	if err := e.rebuild(opt); err != nil {
		return err
	}
	return e.noSol
}

// Version returns the monotone source version: it advances by one for
// every source atom actually inserted or removed.
func (e *Engine) Version() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.source.Version()
}

// Maintainable reports whether inserts can be delta-chased (every s-t body
// conjunctive). Non-maintainable engines resolve every mutation by full
// re-chase.
func (e *Engine) Maintainable() bool { return e.maintainable }

// SourceSnapshot returns an immutable snapshot of the current source
// instance. The snapshot is memoized until the next mutation.
func (e *Engine) SourceSnapshot() *instance.Instance {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.srcSnap == nil {
		e.srcSnap = e.source.Clone()
	}
	return e.srcSnap
}

// Solution returns an immutable snapshot of the maintained universal
// solution (the τ-reduct of the chase fixpoint), re-saturating first if an
// earlier run was interrupted. It fails with the recorded egd failure when
// the current source has no solution. The snapshot is memoized until the
// next mutation.
func (e *Engine) Solution(opt chase.Options) (*instance.Instance, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.ensure(opt); err != nil {
		return nil, err
	}
	if e.uniSnap == nil {
		e.uniSnap = e.res.Target()
	}
	return e.uniSnap, nil
}

// Steps returns the lifetime chase steps of the maintained state (0 while
// in a no-solution state).
func (e *Engine) Steps() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.res == nil {
		return 0
	}
	return e.res.Steps()
}

// Apply validates and applies a mutation batch to the source, then brings
// the chase result up to date: inserts extend the chase semi-naively,
// deletes retract via the justification graph and re-saturate, and the
// fallback cases (egd merges, FO bodies, dirty or failed state) re-chase
// from scratch. Validation errors leave the engine untouched; chase errors
// (budget, deadline, egd failure) are reported in the result or returned
// with the mutation already applied — matching how registration treats a
// failing chase.
func (e *Engine) Apply(muts []instance.Mutation, opt chase.Options) (ApplyResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	for _, m := range muts {
		arity, ok := e.s.Source[m.Atom.Rel]
		if !ok {
			return ApplyResult{}, fmt.Errorf("incr: %s is not a source relation", m.Atom.Rel)
		}
		if len(m.Atom.Args) != arity {
			return ApplyResult{}, fmt.Errorf("incr: %s has arity %d, got %d arguments", m.Atom.Rel, arity, len(m.Atom.Args))
		}
		for _, v := range m.Atom.Args {
			if !v.IsConst() {
				return ApplyResult{}, fmt.Errorf("incr: source atom %v must be null-free", m.Atom)
			}
		}
	}

	// Apply in order, tracking the net effect: an insert and delete of the
	// same atom inside one batch cancel out (successive successful ops on
	// one atom necessarily alternate direction).
	net := make(map[string]instance.Mutation)
	var order []string
	res := ApplyResult{}
	for _, m := range muts {
		applied := false
		if m.Insert {
			applied = e.source.Add(m.Atom)
		} else {
			applied = e.source.Remove(m.Atom)
		}
		if !applied {
			continue
		}
		k := atomKey(m.Atom)
		if prev, ok := net[k]; ok && prev.Insert != m.Insert {
			delete(net, k)
		} else {
			net[k] = m
			order = append(order, k)
		}
	}
	var netIns, netDel []instance.Atom
	for _, k := range order {
		m, ok := net[k]
		if !ok {
			continue
		}
		if m.Insert {
			netIns = append(netIns, m.Atom)
			res.Inserted++
		} else {
			netDel = append(netDel, m.Atom)
			res.Deleted++
		}
	}
	res.Version = e.source.Version()
	if len(netIns) == 0 && len(netDel) == 0 {
		res.NoSolution = e.noSol != nil
		if e.res != nil {
			res.Atoms = e.res.Instance().Len() - e.source.Len()
		}
		return res, nil
	}

	e.srcSnap, e.uniSnap = nil, nil
	metrics.IncrMutations.Inc()

	start := 0
	if e.res != nil {
		start = e.res.Steps()
	}
	err := e.maintain(netIns, netDel, opt, &res)
	if e.res != nil {
		if res.Fallback {
			res.Steps = e.res.Steps() // rebuild restarts the lifetime counter
		} else {
			res.Steps = e.res.Steps() - start
			metrics.IncrDeltaFirings.Add(int64(res.Steps))
		}
	}
	if err != nil {
		if chase.IsEgdFailure(err) {
			e.noSol = err
			e.res = nil
			res.NoSolution = true
			return res, nil
		}
		e.dirty = true
		return res, err
	}
	res.NoSolution = e.noSol != nil
	if e.res != nil && !res.NoSolution {
		res.Atoms = e.res.Instance().Len() - e.source.Len()
	}
	return res, nil
}

// maintain updates the chase state for the net mutation effect. Callers
// hold e.mu and have already applied the atoms to e.source.
func (e *Engine) maintain(netIns, netDel []instance.Atom, opt chase.Options, res *ApplyResult) error {
	incremental := e.maintainable && // delta join requires conjunctive s-t bodies
		e.res != nil && e.noSol == nil && !e.dirty && // a broken state cannot be patched
		(len(netDel) == 0 || !e.merged) // merges invalidate the graph's atom identities

	if !incremental {
		res.Fallback = true
		metrics.IncrFallbackRechase.Inc()
		return e.rebuild(opt)
	}

	if len(netDel) > 0 {
		derived := e.g.retract(netDel)
		metrics.IncrRetractions.Add(int64(len(derived)))
		e.res.RemoveAtoms(append(append([]instance.Atom(nil), netDel...), derived...))
	}
	if len(netIns) > 0 {
		// Extend runs the shared fixpoint loop, which also re-derives
		// anything the retraction over-deleted.
		return e.res.Extend(netIns, opt)
	}
	return e.res.ReSaturate(opt)
}
