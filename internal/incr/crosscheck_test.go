package incr

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/certain"
	"repro/internal/chase"
	"repro/internal/cwa"
	"repro/internal/dependency"
	"repro/internal/genwl"
	"repro/internal/hom"
	"repro/internal/instance"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/score"
)

// The randomized crosscheck: for random mutation sequences over weakly
// acyclic settings, the incrementally maintained state must match a
// from-scratch chase of the mutated source. "Match" is the semantic
// relation that is actually invariant — chase results are firing-order
// dependent, so the instances need not be isomorphic atom-for-atom:
//
//   - the maintained source equals the mutated source exactly;
//   - egd failure (no solution) happens on both sides or neither;
//   - the maintained instance is a universal solution, hom-equivalent to
//     the from-scratch chase result;
//   - the cores are isomorphic (up to null renaming). By Theorem 7.1 the
//     four semantics certain⊓/certain⊔/maybe⊓/maybe⊔ are functions of the
//     core and the canonical solution, so isomorphic cores (and, for the
//     restricted classes, isomorphic CanSols) force all four answer sets
//     to agree — which Box/Diamond evaluation on both cores additionally
//     spot-checks whenever the null count keeps enumeration cheap.
type fixture struct {
	name string
	s    *dependency.Setting
	q    query.UCQ
	// rels lists the source relations (name, arity) in sorted order.
	rels []relSpec
}

type relSpec struct {
	name  string
	arity int
}

func newFixture(t testing.TB, name string, s *dependency.Setting, ucq string) fixture {
	t.Helper()
	q, err := parser.ParseUCQ(ucq)
	if err != nil {
		t.Fatal(err)
	}
	var rels []relSpec
	for rel, ar := range s.Source {
		rels = append(rels, relSpec{rel, ar})
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i].name < rels[j].name })
	return fixture{name: name, s: s, q: q, rels: rels}
}

func crosscheckFixtures(t testing.TB) []fixture {
	return []fixture{
		newFixture(t, "example21", genwl.Example21(), `q(x,y) :- E(x,y).`),
		newFixture(t, "chain", genwl.WeaklyAcyclicChain(2), `q(x) :- T1(x,y). q(x) :- T2(x,y).`),
		newFixture(t, "layered-egd", genwl.RandomRichlyAcyclic(7, true), `q(x) :- L0(x,y). q(x) :- L2(x,y).`),
		newFixture(t, "layered", genwl.RandomRichlyAcyclic(3, false), `q(x) :- L2(x,y).`),
		newFixture(t, "egdonly", genwl.EgdOnly(), `q(x,y) :- F(x,y).`),
		newFixture(t, "fulltgds", genwl.FullTgds(), `q(x,y) :- T(x,y).`),
		newFixture(t, "copying", genwl.Copying(), `q(x,y) :- Ep(x,y).`),
	}
}

const crosscheckPool = 4 // constant pool size; small → collisions and merges

func randomAtom(rng *rand.Rand, fx fixture) instance.Atom {
	r := fx.rels[rng.Intn(len(fx.rels))]
	args := make([]instance.Value, r.arity)
	for i := range args {
		args[i] = instance.Const(fmt.Sprintf("u%d", rng.Intn(crosscheckPool)))
	}
	return instance.Atom{Rel: r.name, Args: args}
}

// randomMutation prefers inserts but deletes live atoms often enough to
// exercise retraction; cur is the mutated-so-far source mirror.
func randomMutation(rng *rand.Rand, fx fixture, cur *instance.Instance) instance.Mutation {
	atoms := cur.Atoms()
	if len(atoms) > 0 && rng.Intn(100) < 40 {
		return instance.Mutation{Insert: false, Atom: atoms[rng.Intn(len(atoms))]}
	}
	return instance.Mutation{Insert: true, Atom: randomAtom(rng, fx)}
}

// maxCrosscheckNulls bounds the cores on which the Box/Diamond spot-check
// runs (representative enumeration is exponential in the null count).
const maxCrosscheckNulls = 5

func crosscheckState(t *testing.T, fx fixture, e *Engine, mirror *instance.Instance, checkSemantics bool) {
	t.Helper()
	snap := e.SourceSnapshot()
	if !snap.Equal(mirror) {
		t.Fatalf("maintained source diverged:\nengine %v\nmirror %v", snap.Atoms(), mirror.Atoms())
	}
	scratch, scratchErr := chase.Standard(fx.s, mirror, chase.Options{})
	sol, solErr := e.Solution(chase.Options{})
	if chase.IsEgdFailure(scratchErr) != chase.IsEgdFailure(solErr) {
		t.Fatalf("egd-failure disagreement: scratch=%v engine=%v", scratchErr, solErr)
	}
	if chase.IsEgdFailure(scratchErr) {
		return // both sides agree there is no solution
	}
	if scratchErr != nil {
		t.Fatal(scratchErr)
	}
	if solErr != nil {
		t.Fatal(solErr)
	}
	if !chase.IsSolution(fx.s, mirror, sol) {
		t.Fatalf("maintained instance is not a solution:\nsource %v\ntarget %v", mirror.Atoms(), sol.Atoms())
	}
	if !hom.Exists(sol, scratch.Target) || !hom.Exists(scratch.Target, sol) {
		t.Fatalf("not hom-equivalent to from-scratch chase:\nincr    %v\nscratch %v", sol.Atoms(), scratch.Target.Atoms())
	}
	coreIncr, coreScratch := score.Core(sol), score.Core(scratch.Target)
	if !hom.Isomorphic(coreIncr, coreScratch) {
		t.Fatalf("cores not isomorphic:\nincr    %v\nscratch %v", coreIncr.Atoms(), coreScratch.Atoms())
	}
	if !checkSemantics {
		return
	}
	// CanSol exists for the restricted classes (Proposition 5.4); its
	// isomorphism pins down certain⊓/maybe⊔ there.
	if fx.s.EgdsOnly() || fx.s.FullAndEgds() {
		ci, err1 := cwa.CanSol(fx.s, snap, chase.Options{})
		cs, err2 := cwa.CanSol(fx.s, mirror, chase.Options{})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("CanSol disagreement: %v vs %v", err1, err2)
		}
		if err1 == nil && !hom.Isomorphic(ci, cs) {
			t.Fatalf("CanSols not isomorphic:\nincr    %v\nscratch %v", ci.Atoms(), cs.Atoms())
		}
	}
	// Box/Diamond over the cores decide certain⊔ and maybe⊓ (Theorem
	// 7.1); evaluate both sides when the enumeration is small enough.
	if len(coreIncr.Nulls()) > maxCrosscheckNulls || len(coreScratch.Nulls()) > maxCrosscheckNulls {
		return
	}
	opt := certain.Options{Workers: 1}
	bi, err := certain.Box(fx.s, fx.q, coreIncr, opt)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := certain.Box(fx.s, fx.q, coreScratch, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !answersEquivalent(bi, bs) {
		t.Fatalf("certain⊔ (Box over core) diverged: %v vs %v", bi, bs)
	}
	di, err := certain.Diamond(fx.s, fx.q, coreIncr, opt)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := certain.Diamond(fx.s, fx.q, coreScratch, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !answersEquivalent(di, ds) {
		t.Fatalf("maybe⊓ (Diamond over core) diverged: %v vs %v", di, ds)
	}
}

// answersEquivalent compares two Box/Diamond answer sets up to renaming of
// the reserved fresh constants (~i). The certain package numbers fresh
// constants canonically in the instance's null order, so isomorphic cores
// whose nulls merely occur in different orders produce answer sets whose
// fresh-constant tuples differ both in naming and in multiplicity: a null
// sitting later in one core's order may range over ~0..~k while its image
// in the other core, sitting first, only ever takes ~0 — yielding e.g.
// {(u,~0),(u,~1),(u,~2)} vs {(u,~0),(u,~1)} for the same generic answer
// class (u, <fresh>). Fresh constants are unmentioned by query and
// dependencies, so a tuple's meaning is its pattern: which positions hold
// which named constants and which positions hold equal/distinct generic
// values. Canonicalizing each tuple independently (relabeling its fresh
// constants in first-occurrence order) and comparing the resulting sets is
// therefore the comparison that is actually invariant across isomorphic
// cores.
func answersEquivalent(a, b *query.TupleSet) bool {
	canon := func(s *query.TupleSet) *query.TupleSet {
		out := query.NewTupleSet()
		for _, tup := range s.Tuples() {
			seen := make(map[instance.Value]instance.Value)
			ct := make(query.Tuple, len(tup))
			for i, v := range tup {
				if v.IsConst() && strings.HasPrefix(instance.ConstName(v), "~") {
					if _, err := strconv.ParseInt(instance.ConstName(v)[1:], 10, 64); err == nil {
						r, ok := seen[v]
						if !ok {
							r = instance.Const(fmt.Sprintf("~%d", len(seen)))
							seen[v] = r
						}
						ct[i] = r
						continue
					}
				}
				ct[i] = v
			}
			out.Add(ct)
		}
		return out
	}
	return canon(a).Equal(canon(b))
}

func runSequence(t *testing.T, fx fixture, seed int64, batches int) {
	rng := rand.New(rand.NewSource(seed))
	src := instance.New()
	for i, n := 0, 2+rng.Intn(6); i < n; i++ {
		src.Add(randomAtom(rng, fx))
	}
	e, err := New(fx.s, src, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mirror := src.Clone()
	for b := 0; b < batches; b++ {
		n := 1 + rng.Intn(3)
		muts := make([]instance.Mutation, 0, n)
		for i := 0; i < n; i++ {
			m := randomMutation(rng, fx, mirror)
			muts = append(muts, m)
			if m.Insert {
				mirror.Add(m.Atom)
			} else {
				mirror.Remove(m.Atom)
			}
		}
		if _, err := e.Apply(muts, chase.Options{}); err != nil {
			t.Fatalf("batch %d %v: %v", b, muts, err)
		}
		// The full semantic check (CanSol + Box/Diamond) runs on the last
		// batch of each sequence; the structural checks (source equality,
		// failure agreement, hom-equivalence, core isomorphism) on all.
		crosscheckState(t, fx, e, mirror, b == batches-1)
	}
}

// TestCrosscheckRandomMutationSequences is the acceptance gate: ≥200
// random mutation sequences across the weakly acyclic fixture settings,
// each sequence interleaving inserts and deletes and validating the
// maintained state against a from-scratch chase after every batch.
func TestCrosscheckRandomMutationSequences(t *testing.T) {
	perFixture, batches := 30, 6
	if testing.Short() {
		perFixture, batches = 6, 4
	}
	fixtures := crosscheckFixtures(t)
	if !testing.Short() && perFixture*len(fixtures) < 200 {
		t.Fatalf("only %d sequences configured, acceptance needs ≥200", perFixture*len(fixtures))
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			t.Parallel()
			for i := 0; i < perFixture; i++ {
				runSequence(t, fx, int64(1000*i+7), batches)
			}
		})
	}
}
