package incr

import (
	"math/rand"
	"testing"

	"repro/internal/chase"
	"repro/internal/genwl"
	"repro/internal/instance"
)

// persistResume round-trips an engine through the store's persistence path:
// FixpointSnapshot + SourceSnapshot → instance codec → Resume. Returns nil
// when the engine has no clean fixpoint (no-solution / dirty), which is the
// store's cue to persist the source alone and re-chase at recovery.
func persistResume(t *testing.T, e *Engine) *Engine {
	t.Helper()
	fix, steps, ok := e.FixpointSnapshot()
	if !ok {
		return nil
	}
	srcBuf := e.SourceSnapshot().AppendBinary(nil)
	fixBuf := fix.AppendBinary(nil)
	src2, _, err := instance.DecodeBinary(srcBuf)
	if err != nil {
		t.Fatal(err)
	}
	fix2, _, err := instance.DecodeBinary(fixBuf)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Resume(e.s, src2, fix2, steps)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Version() != e.Version() {
		t.Fatalf("resumed version = %d, want %d", e2.Version(), e.Version())
	}
	if e2.Steps() != steps {
		t.Fatalf("resumed steps = %d, want %d", e2.Steps(), steps)
	}
	return e2
}

// TestResumeCrosscheck: persist an engine mid-sequence, resume it in a
// "new process" (codec round-trip re-interns all constants), and continue
// the mutation sequence on the resumed engine — the maintained state must
// stay equivalent to a from-scratch chase at every step, exactly like the
// live-engine crosscheck.
func TestResumeCrosscheck(t *testing.T) {
	perFixture, batches := 8, 4
	if testing.Short() {
		perFixture, batches = 3, 3
	}
	for _, fx := range crosscheckFixtures(t) {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			t.Parallel()
			for seq := 0; seq < perFixture; seq++ {
				rng := rand.New(rand.NewSource(900 + int64(seq)))
				src := instance.New()
				for i, n := 0, 2+rng.Intn(6); i < n; i++ {
					src.Add(randomAtom(rng, fx))
				}
				e, err := New(fx.s, src, chase.Options{})
				if err != nil {
					t.Fatal(err)
				}
				mirror := src.Clone()
				apply := func(eng *Engine) {
					n := 1 + rng.Intn(3)
					muts := make([]instance.Mutation, 0, n)
					for i := 0; i < n; i++ {
						m := randomMutation(rng, fx, mirror)
						muts = append(muts, m)
						if m.Insert {
							mirror.Add(m.Atom)
						} else {
							mirror.Remove(m.Atom)
						}
					}
					if _, err := eng.Apply(muts, chase.Options{}); err != nil {
						t.Fatalf("seq %d %v: %v", seq, muts, err)
					}
				}
				for b := 0; b < batches; b++ {
					apply(e)
				}
				e2 := persistResume(t, e)
				if e2 == nil {
					continue // no-solution state: nothing to resume
				}
				crosscheckState(t, fx, e2, mirror, false)
				for b := 0; b < batches; b++ {
					apply(e2)
					crosscheckState(t, fx, e2, mirror, b == batches-1)
				}
			}
		})
	}
}

// TestResumeInsertIsDelta pins the point of resuming: an insert on a
// resumed engine is handled by the semi-naive delta chase, not a rebuild.
func TestResumeInsertIsDelta(t *testing.T) {
	s := genwl.WeaklyAcyclicChain(3)
	src := instance.New()
	src.Add(instance.NewAtom("R0", instance.Const("a"), instance.Const("b")))
	e, err := New(s, src, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e2 := persistResume(t, e)
	if e2 == nil {
		t.Fatal("clean engine must have a persistable fixpoint")
	}
	res, err := e2.Apply([]instance.Mutation{
		{Insert: true, Atom: instance.NewAtom("R0", instance.Const("c"), instance.Const("d"))},
	}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback {
		t.Fatal("insert on a resumed engine fell back to full re-chase")
	}
	if res.Steps == 0 {
		t.Fatal("delta chase fired no steps for a fresh source tuple")
	}
}

// TestResumeDeleteFallsBack: the justification graph is not persisted, so
// the first delete on a resumed engine must take the re-chase fallback —
// and clear the merged state, so the delete after that is incremental
// again (when no egd has merged values).
func TestResumeDeleteFallsBack(t *testing.T) {
	s := genwl.WeaklyAcyclicChain(3)
	src := instance.New()
	src.Add(instance.NewAtom("R0", instance.Const("a"), instance.Const("b")))
	src.Add(instance.NewAtom("R0", instance.Const("c"), instance.Const("d")))
	src.Add(instance.NewAtom("R0", instance.Const("e"), instance.Const("f")))
	e, err := New(s, src, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e2 := persistResume(t, e)
	del := func(a instance.Atom) ApplyResult {
		res, err := e2.Apply([]instance.Mutation{{Insert: false, Atom: a}}, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := del(instance.NewAtom("R0", instance.Const("a"), instance.Const("b"))); !res.Fallback {
		t.Fatal("first delete after resume must fall back (no justification graph)")
	}
	if res := del(instance.NewAtom("R0", instance.Const("c"), instance.Const("d"))); res.Fallback {
		t.Fatal("second delete should be incremental: the fallback rebuilt the graph")
	}
}

// TestFixpointSnapshotNoSolution: an engine in a no-solution state has no
// fixpoint to persist.
func TestFixpointSnapshotNoSolution(t *testing.T) {
	s := genwl.EgdOnly()
	src := genwl.EgdOnlySource(4, false, 1) // inconsistent W-facts: egd fails
	e, err := New(s, src, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Solution(chase.Options{}); !chase.IsEgdFailure(err) {
		t.Fatalf("expected egd failure, got %v", err)
	}
	if _, _, ok := e.FixpointSnapshot(); ok {
		t.Fatal("no-solution engine reported a persistable fixpoint")
	}
}
