package incr

import (
	"fmt"
	"testing"

	"repro/internal/chase"
	"repro/internal/dependency"
	"repro/internal/genwl"
	"repro/internal/instance"
)

// The mutation benchmarks compare the two ways of keeping a chase result
// current across a single-tuple insert: the delta chase of a persistent
// Engine (Apply seeds the semi-naive pass with just the new tuple) versus a
// full re-chase of the grown source (what a stateless service does). Both
// sides process the same mutation sequence, so the instances grow
// identically; the delta side's per-op cost stays proportional to the new
// tuple's consequences while the full side re-derives everything. The
// compared cost is maintenance: the delta side's fixpoint lives inside the
// engine, so materializing a solution snapshot (an O(instance) clone,
// identical for both sides) happens once outside the timed loop.

// quickstartWorkload is the paper's running example (Example 2.1, the same
// setting the quickstart walks through) over a generated source with
// distinct x-values so inserts fire d1/d2 without egd interaction.
func quickstartWorkload(n int) (*dependency.Setting, *instance.Instance) {
	s := genwl.Example21()
	src := instance.New()
	for i := 0; i < n; i++ {
		x := instance.Const(fmt.Sprintf("a%d", i))
		src.Add(instance.NewAtom("M", x, instance.Const(fmt.Sprintf("b%d", i))))
		src.Add(instance.NewAtom("N", x, instance.Const(fmt.Sprintf("c%d", i))))
	}
	return s, src
}

// genwlWorkload is the chase-scaling family: a depth-6 existential chain
// where every source edge drags six derived atoms behind it, over a random
// edge set.
func genwlWorkload(n int) (*dependency.Setting, *instance.Instance) {
	return genwl.WeaklyAcyclicChain(6), genwl.RandomEdges("R0", n, 1)
}

// freshAtomFn returns a generator of never-before-seen source atoms for the
// workload, so every benchmark iteration inserts a genuinely new tuple.
func freshAtomFn(name string) func(i int) []instance.Mutation {
	switch name {
	case "quickstart":
		return func(i int) []instance.Mutation {
			x := instance.Const(fmt.Sprintf("nx%d", i))
			return []instance.Mutation{{Insert: true, Atom: instance.NewAtom("N", x, instance.Const(fmt.Sprintf("ny%d", i)))}}
		}
	case "genwl":
		return func(i int) []instance.Mutation {
			return []instance.Mutation{{Insert: true, Atom: instance.NewAtom("R0",
				instance.Const(fmt.Sprintf("fx%d", i)), instance.Const(fmt.Sprintf("fy%d", i)))}}
		}
	}
	panic("unknown workload " + name)
}

func BenchmarkMutationInsert(b *testing.B) {
	workloads := []struct {
		name string
		gen  func(n int) (*dependency.Setting, *instance.Instance)
		n    int
	}{
		{"quickstart", quickstartWorkload, 128},
		{"genwl", genwlWorkload, 256},
	}
	for _, w := range workloads {
		fresh := freshAtomFn(w.name)
		b.Run(w.name+"/delta", func(b *testing.B) {
			s, src := w.gen(w.n)
			e, err := New(s, src, chase.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Solution(chase.Options{}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Apply(fresh(i), chase.Options{}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if _, err := e.Solution(chase.Options{}); err != nil {
				b.Fatal(err)
			}
		})
		b.Run(w.name+"/full", func(b *testing.B) {
			s, src := w.gen(w.n)
			if _, err := chase.Standard(s, src, chase.Options{}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src.Add(fresh(i)[0].Atom)
				if _, err := chase.Standard(s, src, chase.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMutationDelete measures the retraction path: each op deletes a
// base atom (cascading through the justification graph) and re-inserts it.
// The full side re-chases from scratch after each of the two mutations,
// matching what Apply's round-trip replaces.
func BenchmarkMutationDelete(b *testing.B) {
	const n = 256
	b.Run("genwl/delta", func(b *testing.B) {
		s, src := genwlWorkload(n)
		e, err := New(s, src, chase.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Solution(chase.Options{}); err != nil {
			b.Fatal(err)
		}
		atoms := e.SourceSnapshot().Atoms()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := atoms[i%len(atoms)]
			if _, err := e.Apply([]instance.Mutation{{Insert: false, Atom: a}}, chase.Options{}); err != nil {
				b.Fatal(err)
			}
			if _, err := e.Apply([]instance.Mutation{{Insert: true, Atom: a}}, chase.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if _, err := e.Solution(chase.Options{}); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("genwl/full", func(b *testing.B) {
		s, src := genwlWorkload(n)
		atoms := src.Atoms()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := atoms[i%len(atoms)]
			src.Remove(a)
			if _, err := chase.Standard(s, src, chase.Options{}); err != nil {
				b.Fatal(err)
			}
			src.Add(a)
			if _, err := chase.Standard(s, src, chase.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
