package incr

import (
	"strconv"

	"repro/internal/instance"
)

// atomKey returns a collision-free map key for a ground atom. Values are
// encoded by their numeric identity (constants are interned process-wide,
// null labels are stable), so the key is stable for the engine's lifetime.
func atomKey(a instance.Atom) string {
	buf := make([]byte, 0, len(a.Rel)+1+8*len(a.Args))
	buf = append(buf, a.Rel...)
	for _, v := range a.Args {
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, int64(v), 10)
	}
	return string(buf)
}

// firing is one recorded tgd application: the ground body atoms the match
// consumed and the head atoms the firing actually inserted (head atoms that
// were already present are not recorded as produced — see the graph comment
// for why that keeps support counting sound).
type firing struct {
	body     []instance.Atom
	produced []instance.Atom
	dead     bool
}

// graph is the justification graph of a chase: per Definition 4.1, every
// derived atom is justified by the firing (d, ū, v̄) that produced it, and
// the firing in turn depends on its ground body atoms. The graph indexes
// both directions — producer (which live firing inserted an atom) and
// consumers (which firings used an atom in their body) — so a deletion can
// walk exactly the derivations that are gone (DRed-style over-deletion;
// re-derivation is the chase re-saturation that follows).
//
// A firing records as produced only the atoms it actually inserted. Because
// an inserted atom did not exist before its firing, the produced→consumed
// relation is acyclic (each atom's producer strictly precedes every firing
// consuming it), so "no live producer" is a sound deletion criterion even
// in settings with cyclic copy dependencies. The cost is under-counting:
// an atom also derivable by a match whose head was already satisfied is
// over-deleted — and then restored by the re-saturation pass, which sees
// the match as violated again. That is exactly the DRed contract.
//
// At any moment an atom has at most one live producer: a second firing can
// only insert an atom after the first firing's copy was retracted, and the
// retraction killed the first firing's claim before returning the atom.
type graph struct {
	firings []*firing
	// producer maps an atom key to the index of the live firing that
	// inserted it. Source atoms never appear (nothing produces them).
	producer map[string]int
	// consumers maps an atom key to the firings whose ground body contains
	// the atom. Entries may reference dead firings; retract skips them.
	consumers map[string][]int
}

func newGraph() *graph {
	return &graph{
		producer:  make(map[string]int),
		consumers: make(map[string][]int),
	}
}

// record adds one firing. body and produced are retained — callers pass
// freshly instantiated slices.
func (g *graph) record(body, produced []instance.Atom) {
	idx := len(g.firings)
	g.firings = append(g.firings, &firing{body: body, produced: produced})
	for _, a := range produced {
		g.producer[atomKey(a)] = idx
	}
	for _, a := range body {
		k := atomKey(a)
		g.consumers[k] = append(g.consumers[k], idx)
	}
}

// retract removes the given (source) atoms from the graph and cascades:
// every firing consuming a removed atom dies, every atom whose sole live
// producer died is removed in turn, transitively. It returns the derived
// atoms that lost their last justification — the over-deletion set the
// caller must remove from the instance before re-saturating.
func (g *graph) retract(deleted []instance.Atom) []instance.Atom {
	var removed []instance.Atom
	queued := make(map[string]bool, len(deleted))
	queue := make([]string, 0, len(deleted))
	for _, a := range deleted {
		k := atomKey(a)
		if !queued[k] {
			queued[k] = true
			queue = append(queue, k)
		}
	}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		for _, fi := range g.consumers[k] {
			f := g.firings[fi]
			if f.dead {
				continue
			}
			f.dead = true
			for _, p := range f.produced {
				pk := atomKey(p)
				if idx, ok := g.producer[pk]; !ok || idx != fi {
					continue // retracted and re-derived by a later firing
				}
				delete(g.producer, pk)
				if !queued[pk] {
					queued[pk] = true
					removed = append(removed, p)
					queue = append(queue, pk)
				}
			}
		}
		delete(g.consumers, k)
	}
	return removed
}

// liveFirings reports how many recorded firings are still alive (tests and
// introspection).
func (g *graph) liveFirings() int {
	n := 0
	for _, f := range g.firings {
		if !f.dead {
			n++
		}
	}
	return n
}
