package incr

import (
	"errors"
	"testing"

	"repro/internal/chase"
	"repro/internal/dependency"
	"repro/internal/hom"
	"repro/internal/instance"
	"repro/internal/parser"
	"repro/internal/score"
)

func mustSetting(t testing.TB, src string) *dependency.Setting {
	t.Helper()
	s, err := parser.ParseSetting(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustInstance(t testing.TB, src string) *instance.Instance {
	t.Helper()
	ins, err := parser.ParseInstance(src)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func c(n string) instance.Value { return instance.Const(n) }

func ins(rel string, args ...instance.Value) instance.Mutation {
	return instance.Mutation{Insert: true, Atom: instance.NewAtom(rel, args...)}
}

func del(rel string, args ...instance.Value) instance.Mutation {
	return instance.Mutation{Insert: false, Atom: instance.NewAtom(rel, args...)}
}

const example21 = `
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
target-deps:
  d3: F(y,x) -> exists z : G(x,z).
  d4: F(x,y) & F(x,z) -> y = z.
`

// checkAgainstScratch asserts the engine's maintained solution is correct
// for its current source: a universal solution hom-equivalent to the
// from-scratch chase, with an isomorphic core.
func checkAgainstScratch(t *testing.T, e *Engine, s *dependency.Setting) {
	t.Helper()
	src := e.SourceSnapshot()
	scratch, scratchErr := chase.Standard(s, src, chase.Options{})
	got, gotErr := e.Solution(chase.Options{})
	if chase.IsEgdFailure(scratchErr) {
		if !chase.IsEgdFailure(gotErr) {
			t.Fatalf("scratch chase fails (%v) but engine returned %v", scratchErr, gotErr)
		}
		return
	}
	if scratchErr != nil {
		t.Fatal(scratchErr)
	}
	if gotErr != nil {
		t.Fatalf("engine Solution: %v", gotErr)
	}
	if !chase.IsSolution(s, src, got) {
		t.Fatalf("maintained instance is not a solution:\nsource %v\ntarget %v", src.Atoms(), got.Atoms())
	}
	if !hom.Exists(got, scratch.Target) || !hom.Exists(scratch.Target, got) {
		t.Fatalf("maintained solution not hom-equivalent to scratch:\nincr    %v\nscratch %v", got.Atoms(), scratch.Target.Atoms())
	}
	if !hom.Isomorphic(score.Core(got), score.Core(scratch.Target)) {
		t.Fatalf("cores differ:\nincr    %v\nscratch %v", score.Core(got).Atoms(), score.Core(scratch.Target).Atoms())
	}
}

func TestEngineInsertDeltaChase(t *testing.T) {
	s := mustSetting(t, example21)
	e, err := New(s, mustInstance(t, `M(a,b). N(a,b).`), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Apply([]instance.Mutation{ins("N", c("q"), c("r")), ins("M", c("q"), c("r"))}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback {
		t.Fatal("insert on a maintainable setting must not fall back")
	}
	if res.Inserted != 2 || res.Deleted != 0 {
		t.Fatalf("Inserted=%d Deleted=%d, want 2/0", res.Inserted, res.Deleted)
	}
	if res.Steps == 0 {
		t.Fatal("delta chase fired no steps for a match-creating insert")
	}
	checkAgainstScratch(t, e, s)
}

func TestEngineDeleteRetractsViaGraph(t *testing.T) {
	s := mustSetting(t, `
source A/1, C/1.
target B/1, D/1.
st:
  d1: A(x) -> B(x).
  d2: C(x) -> B(x).
target-deps:
  d3: B(x) -> exists z : D(z).
`)
	e, err := New(s, mustInstance(t, `A(a). A(b). C(a).`), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Deleting A(b) must retract B(b) (sole justification gone) but keep
	// B(a), still justified by C(a); D's null survives via B(a).
	res, err := e.Apply([]instance.Mutation{del("A", c("b"))}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback {
		t.Fatal("merge-free delete must use the justification graph, not fall back")
	}
	sol, err := e.Solution(chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Has(instance.NewAtom("B", c("b"))) {
		t.Fatalf("B(b) survived deletion of its only justification: %v", sol.Atoms())
	}
	if !sol.Has(instance.NewAtom("B", c("a"))) {
		t.Fatalf("B(a) lost despite justification C(a): %v", sol.Atoms())
	}
	checkAgainstScratch(t, e, s)

	// Deleting both remaining producers must empty the target.
	if _, err := e.Apply([]instance.Mutation{del("A", c("a")), del("C", c("a"))}, chase.Options{}); err != nil {
		t.Fatal(err)
	}
	sol, err = e.Solution(chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Len() != 0 {
		t.Fatalf("target not empty after all sources deleted: %v", sol.Atoms())
	}
}

func TestEngineDeleteAfterMergeFallsBack(t *testing.T) {
	s := mustSetting(t, example21)
	// N(a,b) with M(a,b) produces F(a,_) twice only when E/F heads force
	// it; use a source whose chase applies d4 at least once.
	e, err := New(s, mustInstance(t, `M(a,b). N(a,b).`), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Force a merge: a second F-producing match for the same x.
	if _, err := e.Apply([]instance.Mutation{ins("N", c("a"), c("c"))}, chase.Options{}); err != nil {
		t.Fatal(err)
	}
	// Whether or not that merged, engineer one deterministically on a
	// dedicated setting below if needed; here just exercise the delete.
	res, err := e.Apply([]instance.Mutation{del("N", c("a"), c("c"))}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.merged && !res.Fallback {
		t.Fatal("delete after an egd merge must fall back to a re-chase")
	}
	checkAgainstScratch(t, e, s)
}

func TestEngineMergedDeleteFallback(t *testing.T) {
	s := mustSetting(t, `
source S/1, T/2.
target F/2.
st:
  d1: S(x) -> exists z : F(x,z).
  d2: T(x,y) -> F(x,y).
target-deps:
  d3: F(x,y) & F(x,z) -> y = z.
`)
	e, err := New(s, mustInstance(t, `S(a). T(a,b).`), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !e.merged {
		t.Fatal("initial chase of this setting must merge d1's null into b")
	}
	res, err := e.Apply([]instance.Mutation{del("T", c("a"), c("b"))}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fallback {
		t.Fatal("delete with a merged graph must fall back")
	}
	checkAgainstScratch(t, e, s)
	// After the rebuild (no merge in the new state: only S(a) remains,
	// one F-atom), a fresh delete can go back to the graph path.
	sol, err := e.Solution(chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Len() != 1 {
		t.Fatalf("expected exactly F(a,_): %v", sol.Atoms())
	}
}

func TestEngineFOBodyAlwaysFallsBack(t *testing.T) {
	s := mustSetting(t, `
source Person/1, Spouse/2.
target Single/1.
st:
  d1: Person(x) & !(exists y (Spouse(x,y))) -> Single(x).
`)
	e, err := New(s, mustInstance(t, `Person(a).`), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Maintainable() {
		t.Fatal("FO-body setting must not be maintainable")
	}
	// Inserting Spouse(a,b) REMOVES the Single(a) match — non-monotone.
	res, err := e.Apply([]instance.Mutation{ins("Spouse", c("a"), c("b"))}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fallback {
		t.Fatal("non-monotone setting must fall back")
	}
	sol, err := e.Solution(chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Has(instance.NewAtom("Single", c("a"))) {
		t.Fatalf("stale non-monotone derivation survived: %v", sol.Atoms())
	}
	checkAgainstScratch(t, e, s)
}

func TestEngineNoSolutionRoundTrip(t *testing.T) {
	s := mustSetting(t, `
source W/2.
target F/2.
st:
  s2: W(x,y) -> F(x,y).
target-deps:
  e1: F(x,y) & F(x,z) -> y = z.
`)
	e, err := New(s, mustInstance(t, `W(k,a).`), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Make F non-functional with two constants: egd failure.
	res, err := e.Apply([]instance.Mutation{ins("W", c("k"), c("b"))}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.NoSolution {
		t.Fatal("conflicting insert must be reported as NoSolution")
	}
	if _, err := e.Solution(chase.Options{}); !chase.IsEgdFailure(err) {
		t.Fatalf("Solution after egd failure: err = %v, want egd failure", err)
	}
	// The mutation is applied even though no solution exists; removing the
	// conflict repairs the scenario.
	res, err = e.Apply([]instance.Mutation{del("W", c("k"), c("b"))}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NoSolution {
		t.Fatal("deleting the conflicting tuple must restore a solution")
	}
	if !res.Fallback {
		t.Fatal("repairing a failed state requires a rebuild")
	}
	checkAgainstScratch(t, e, s)
}

func TestEngineBatchCancel(t *testing.T) {
	s := mustSetting(t, example21)
	e, err := New(s, mustInstance(t, `M(a,b).`), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v0 := e.Version()
	res, err := e.Apply([]instance.Mutation{ins("M", c("x"), c("y")), del("M", c("x"), c("y"))}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 0 || res.Deleted != 0 {
		t.Fatalf("cancelled batch reported Inserted=%d Deleted=%d", res.Inserted, res.Deleted)
	}
	if res.Steps != 0 {
		t.Fatalf("cancelled batch fired %d chase steps", res.Steps)
	}
	// The version still advances (two content changes happened).
	if e.Version() != v0+2 {
		t.Fatalf("version = %d, want %d", e.Version(), v0+2)
	}
	checkAgainstScratch(t, e, s)
}

func TestEngineRejectsBadMutations(t *testing.T) {
	s := mustSetting(t, example21)
	e, err := New(s, mustInstance(t, `M(a,b).`), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]instance.Mutation{
		{ins("E", c("a"), c("b"))},         // target relation
		{ins("Nope", c("a"))},              // unknown relation
		{ins("M", c("a"))},                 // wrong arity
		{{Insert: true, Atom: instance.NewAtom("M", instance.Null(1), c("b"))}}, // null
	}
	v0 := e.Version()
	for _, muts := range cases {
		if _, err := e.Apply(muts, chase.Options{}); err == nil {
			t.Errorf("Apply(%v) succeeded, want validation error", muts)
		}
	}
	if e.Version() != v0 {
		t.Fatal("rejected mutations must not touch the source")
	}
}

func TestEngineRejectsNonWeaklyAcyclic(t *testing.T) {
	s := mustSetting(t, `
source A/1.
target E/2.
st:
  d1: A(x) -> exists z : E(x,z).
target-deps:
  d2: E(x,y) -> exists z : E(y,z).
`)
	if _, err := New(s, mustInstance(t, `A(a).`), chase.Options{}); !errors.Is(err, ErrNotIncremental) {
		t.Fatalf("New on non-weakly-acyclic setting: err = %v, want ErrNotIncremental", err)
	}
}

func TestEngineSharedHeadAtomOverDeleteRederive(t *testing.T) {
	// d3's head produces D(x) & B(x): when B(x) already exists, the firing
	// records only D(x) as produced. Deleting B's original producer then
	// over-deletes B and the re-saturation pass re-derives it from C — the
	// counterexample that support-counting on full heads would get wrong.
	s := mustSetting(t, `
source S/1, C/1.
target B/1, Cc/1, D/1.
st:
  d1: S(x) -> B(x).
  d2: C(x) -> Cc(x).
target-deps:
  d3: Cc(x) -> D(x) & B(x).
`)
	e, err := New(s, mustInstance(t, `S(a). C(a).`), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Apply([]instance.Mutation{del("S", c("a"))}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback {
		t.Fatal("merge-free delete must not fall back")
	}
	sol, err := e.Solution(chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := mustInstance(t, `B(a). Cc(a). D(a).`)
	if !sol.Equal(want) {
		t.Fatalf("after delete: %v, want %v", sol.Atoms(), want.Atoms())
	}
	checkAgainstScratch(t, e, s)
}

func TestParseScript(t *testing.T) {
	muts, err := ParseScript(`
# comment
+ M(a,b).
- N(a,c).
+ M(x,y). N(x,y).
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []instance.Mutation{
		ins("M", c("a"), c("b")),
		del("N", c("a"), c("c")),
		ins("M", c("x"), c("y")),
		ins("N", c("x"), c("y")),
	}
	if len(muts) != len(want) {
		t.Fatalf("got %d mutations, want %d: %v", len(muts), len(want), muts)
	}
	for i := range want {
		if muts[i].Insert != want[i].Insert || !muts[i].Atom.Equal(want[i].Atom) {
			t.Fatalf("muts[%d] = %v, want %v", i, muts[i], want[i])
		}
	}
	for _, bad := range []string{"M(a,b).", "+", "+ not an atom"} {
		if _, err := ParseScript(bad); err == nil {
			t.Errorf("ParseScript(%q) succeeded, want error", bad)
		}
	}
}

func TestGraphRetractCascade(t *testing.T) {
	g := newGraph()
	a := instance.NewAtom("A", c("a"))
	b := instance.NewAtom("B", c("a"))
	d := instance.NewAtom("D", c("a"))
	// A → B → D chain.
	g.record([]instance.Atom{a}, []instance.Atom{b})
	g.record([]instance.Atom{b}, []instance.Atom{d})
	removed := g.retract([]instance.Atom{a})
	if len(removed) != 2 {
		t.Fatalf("retract removed %v, want [B(a) D(a)]", removed)
	}
	if g.liveFirings() != 0 {
		t.Fatalf("%d firings survived a full cascade", g.liveFirings())
	}
}

func TestGraphRetractKeepsOtherSupport(t *testing.T) {
	g := newGraph()
	a1 := instance.NewAtom("A", c("1"))
	a2 := instance.NewAtom("A", c("2"))
	b := instance.NewAtom("B", c("x"))
	// Two firings, but only the first actually inserted B (the second
	// found it satisfied and recorded nothing) — mirroring what the chase
	// observer reports.
	g.record([]instance.Atom{a1}, []instance.Atom{b})
	g.record([]instance.Atom{a2}, nil)
	removed := g.retract([]instance.Atom{a1})
	if len(removed) != 1 || !removed[0].Equal(b) {
		t.Fatalf("retract removed %v, want [B(x)] (over-delete; re-derivation is the chase's job)", removed)
	}
}
