package incr

import (
	"errors"
	"fmt"

	"repro/internal/chase"
	"repro/internal/dependency"
	"repro/internal/instance"
)

// Resume rebuilds an engine around a persisted chase fixpoint instead of
// re-chasing the source. The durable store calls this at recovery and on
// page-in: src and fixpoint come from the instance codec, and the engine
// takes ownership of both.
//
// The resumed engine delta-chases inserts exactly like a live one. What a
// fixpoint alone cannot restore is the justification graph (it is built
// from Observer callbacks during chasing), so the engine starts in the
// merged state: the first deletion falls back to a bounded full re-chase,
// which rebuilds the graph and clears the flag — the same degradation an
// egd merge causes on a live engine.
//
// steps seeds the lifetime chase-step counter for reporting. The caller
// asserts fixpoint is the chase fixpoint of (s, src); a stale pair yields
// a non-universal maintained state, which is why the store only persists
// fixpoints captured under the scenario's mutation lock.
func Resume(s *dependency.Setting, src, fixpoint *instance.Instance, steps int) (*Engine, error) {
	if !s.WeaklyAcyclic() {
		return nil, ErrNotIncremental
	}
	if src.HasNulls() {
		return nil, fmt.Errorf("incr: source instance must be null-free")
	}
	if fixpoint == nil {
		return nil, errors.New("incr: Resume requires a fixpoint")
	}
	maintainable := true
	for _, d := range s.ST {
		if d.BodyAtoms == nil {
			maintainable = false
			break
		}
	}
	e := &Engine{s: s, maintainable: maintainable, source: src, merged: true}
	var obs chase.Observer
	if maintainable {
		e.g = newGraph()
		obs = observer{e}
	}
	e.res = chase.ResumeFixpoint(s, fixpoint, steps, obs)
	return e, nil
}

// PersistSnapshot captures the engine's persistable state in one critical
// section: the current source, plus the chase fixpoint and step count when
// the engine has a clean one (fixpoint nil otherwise — no-solution or
// interrupted states persist the source alone). Taking both under one lock
// matters: a source captured after a mutation paired with a fixpoint
// captured before it would resume into a silently non-universal state.
func (e *Engine) PersistSnapshot() (src, fixpoint *instance.Instance, steps int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.srcSnap == nil {
		e.srcSnap = e.source.Clone()
	}
	src = e.srcSnap
	if e.res != nil && e.noSol == nil && !e.dirty {
		fixpoint = e.res.Instance().Clone()
		steps = e.res.Steps()
	}
	return src, fixpoint, steps
}

// FixpointSnapshot returns a clone of the full chase fixpoint (over σ ∪ τ)
// and the lifetime step count, the state Resume needs to reconstruct the
// engine. It reports false when there is no clean fixpoint to persist: the
// engine is in a no-solution state or was interrupted mid-chase (dirty) —
// callers then persist the source alone and re-chase at recovery.
func (e *Engine) FixpointSnapshot() (*instance.Instance, int, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.res == nil || e.noSol != nil || e.dirty {
		return nil, 0, false
	}
	return e.res.Instance().Clone(), e.res.Steps(), true
}
