package dependency

import (
	"strings"
	"testing"

	"repro/internal/query"
)

// example21 builds the running example of the paper (Example 2.1):
//
//	d1 = M(x1,x2) → E(x1,x2)
//	d2 = N(x,y)   → ∃z1,z2 (E(x,z1) ∧ F(x,z2))
//	d3 = F(y,x)   → ∃z G(x,z)
//	d4 = F(x,y) ∧ F(x,z) → y = z
func example21() *Setting {
	v := query.V
	return &Setting{
		Source: map[string]int{"M": 2, "N": 2},
		Target: map[string]int{"E": 2, "F": 2, "G": 2},
		ST: []*TGD{
			NewTGD("d1", query.A("M", v("x1"), v("x2")), []query.Atom{query.A("E", v("x1"), v("x2"))}),
			NewTGD("d2", query.A("N", v("x"), v("y")), []query.Atom{
				query.A("E", v("x"), v("z1")), query.A("F", v("x"), v("z2")),
			}),
		},
		TGDs: []*TGD{
			NewTGD("d3", query.A("F", v("y"), v("x")), []query.Atom{query.A("G", v("x"), v("z"))}),
		},
		EGDs: []*EGD{
			{Name: "d4", Body: []query.Atom{
				query.A("F", v("x"), v("y")), query.A("F", v("x"), v("z")),
			}, L: "y", R: "z"},
		},
	}
}

func TestNewTGDVariableClassification(t *testing.T) {
	v := query.V
	d := NewTGD("d2", query.A("N", v("x"), v("y")), []query.Atom{
		query.A("E", v("x"), v("z1")), query.A("F", v("x"), v("z2")),
	})
	if len(d.X) != 1 || d.X[0] != "x" {
		t.Fatalf("X = %v, want [x]", d.X)
	}
	if len(d.Y) != 1 || d.Y[0] != "y" {
		t.Fatalf("Y = %v, want [y]", d.Y)
	}
	if len(d.Exists) != 2 || d.Exists[0] != "z1" || d.Exists[1] != "z2" {
		t.Fatalf("Exists = %v, want [z1 z2]", d.Exists)
	}
	if d.Full() {
		t.Fatal("d2 is not full")
	}
	if d.BodyAtoms == nil {
		t.Fatal("conjunctive body should expose BodyAtoms")
	}
	full := NewTGD("f", query.A("N", v("x"), v("y")), []query.Atom{query.A("E", v("x"), v("y"))})
	if !full.Full() {
		t.Fatal("tgd without existentials should be Full")
	}
}

func TestNewTGDNonConjunctiveBody(t *testing.T) {
	v := query.V
	body := query.Disj(query.A("M", v("x"), v("x")), query.A("N", v("x"), v("x")))
	d := NewTGD("d", body, []query.Atom{query.A("E", v("x"), v("x"))})
	if d.BodyAtoms != nil {
		t.Fatal("disjunctive body must not expose BodyAtoms")
	}
}

func TestValidateExample21(t *testing.T) {
	if err := example21().Validate(); err != nil {
		t.Fatalf("Example 2.1 should validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	v := query.V
	base := example21()

	overlap := example21()
	overlap.Target["M"] = 2
	if err := overlap.Validate(); err == nil || !strings.Contains(err.Error(), "disjoint") {
		t.Errorf("overlapping schemas should fail: %v", err)
	}

	dup := example21()
	dup.TGDs = append(dup.TGDs, NewTGD("d1", query.A("F", v("x"), v("y")), []query.Atom{query.A("G", v("x"), v("y"))}))
	if err := dup.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate names should fail: %v", err)
	}

	wrongSchema := example21()
	wrongSchema.TGDs = []*TGD{NewTGD("dz", query.A("M", v("x"), v("y")), []query.Atom{query.A("G", v("x"), v("y"))})}
	if err := wrongSchema.Validate(); err == nil {
		t.Error("target tgd with source body should fail")
	}

	badArity := example21()
	badArity.ST = append(badArity.ST, NewTGD("d9", query.A("M", v("x")), []query.Atom{query.A("E", v("x"), v("x"))}))
	if err := badArity.Validate(); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Errorf("arity mismatch should fail: %v", err)
	}

	badEgd := example21()
	badEgd.EGDs = []*EGD{{Name: "e", Body: []query.Atom{query.A("F", v("x"), v("y"))}, L: "y", R: "w"}}
	if err := badEgd.Validate(); err == nil || !strings.Contains(err.Error(), "equated") {
		t.Errorf("egd with foreign variable should fail: %v", err)
	}

	_ = base
}

func TestClassification(t *testing.T) {
	s := example21()
	if s.EgdsOnly() {
		t.Fatal("Example 2.1 has a target tgd")
	}
	if s.FullAndEgds() {
		t.Fatal("Example 2.1 has existential tgds")
	}
	egdOnly := example21()
	egdOnly.TGDs = nil
	if !egdOnly.EgdsOnly() {
		t.Fatal("EgdsOnly misreported")
	}
	if !s.HasTargetDependencies() {
		t.Fatal("HasTargetDependencies misreported")
	}
}

func TestWeakAndRichAcyclicityExample21(t *testing.T) {
	s := example21()
	if !s.WeaklyAcyclic() {
		t.Fatal("Example 2.1 is weakly acyclic")
	}
	if !s.RichlyAcyclic() {
		t.Fatal("Example 2.1 is richly acyclic")
	}
}

// demb builds the Kolaitis–Panttaja–Tan setting D_emb of Example 6.1 with
// d_total split into nine prenexed tgds.
func demb() *Setting {
	v := query.V
	s := &Setting{
		Source: map[string]int{"R": 3},
		Target: map[string]int{"Rp": 3},
		ST: []*TGD{
			NewTGD("copy", query.A("R", v("x"), v("y"), v("z")), []query.Atom{query.A("Rp", v("x"), v("y"), v("z"))}),
		},
		EGDs: []*EGD{
			{Name: "dfunc", Body: []query.Atom{
				query.A("Rp", v("x"), v("y"), v("z1")), query.A("Rp", v("x"), v("y"), v("z2")),
			}, L: "z1", R: "z2"},
		},
	}
	s.TGDs = append(s.TGDs, NewTGD("dassoc",
		query.Conj(
			query.A("Rp", v("x"), v("y"), v("u")),
			query.A("Rp", v("y"), v("z"), v("v")),
			query.A("Rp", v("u"), v("z"), v("w")),
		),
		[]query.Atom{query.A("Rp", v("x"), v("v"), v("w"))}))
	vars := []string{"x1", "x2", "x3", "y1", "y2", "y3"}
	for i := 1; i <= 3; i++ {
		for j := 1; j <= 3; j++ {
			name := "dtotal" + string(rune('0'+i)) + string(rune('0'+j))
			body := query.Conj(
				query.A("Rp", v("x1"), v("x2"), v("x3")),
				query.A("Rp", v("y1"), v("y2"), v("y3")),
			)
			head := []query.Atom{query.A("Rp", v(vars[i-1]), v(vars[2+j]), v("zz"))}
			s.TGDs = append(s.TGDs, NewTGD(name, body, head))
		}
	}
	return s
}

func TestDembNotWeaklyAcyclic(t *testing.T) {
	s := demb()
	if err := s.Validate(); err != nil {
		t.Fatalf("D_emb should validate: %v", err)
	}
	if s.WeaklyAcyclic() {
		t.Fatal("D_emb must not be weakly acyclic")
	}
	if s.RichlyAcyclic() {
		t.Fatal("richly acyclic implies weakly acyclic")
	}
}

func TestRichButNotWeakDistinction(t *testing.T) {
	// d: E(x,y) → ∃z E(x,z). Dependency graph edges: (E,1)→(E,1) regular,
	// (E,1)→(E,2) existential — weakly acyclic. Extended graph adds
	// (E,2)→(E,2) existential from y — a self-loop — so not richly acyclic.
	v := query.V
	s := &Setting{
		Source: map[string]int{"S": 2},
		Target: map[string]int{"E": 2},
		ST: []*TGD{
			NewTGD("copy", query.A("S", v("x"), v("y")), []query.Atom{query.A("E", v("x"), v("y"))}),
		},
		TGDs: []*TGD{
			NewTGD("d", query.A("E", v("x"), v("y")), []query.Atom{query.A("E", v("x"), v("z"))}),
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.WeaklyAcyclic() {
		t.Fatal("setting should be weakly acyclic")
	}
	if s.RichlyAcyclic() {
		t.Fatal("setting should not be richly acyclic")
	}
}

func TestRanks(t *testing.T) {
	// Chain: A(x) → ∃z B(x,z); B(x,y) → ∃z C(y,z).
	// Existential edges (A,1)→(B,2) and (B,2)→(C,2); regular (B,2)→(C,1).
	v := query.V
	s := &Setting{
		Source: map[string]int{"S": 1},
		Target: map[string]int{"A": 1, "B": 2, "C": 2},
		ST: []*TGD{
			NewTGD("copy", query.A("S", v("x")), []query.Atom{query.A("A", v("x"))}),
		},
		TGDs: []*TGD{
			NewTGD("t1", query.A("A", v("x")), []query.Atom{query.A("B", v("x"), v("z"))}),
			NewTGD("t2", query.A("B", v("x"), v("y")), []query.Atom{query.A("C", v("y"), v("z"))}),
		},
	}
	g := BuildDependencyGraph(s, false)
	if g.HasExistentialCycle() {
		t.Fatal("chain setting has no existential cycle")
	}
	ranks := g.Ranks()
	want := map[Position]int{
		{"A", 0}: 0, {"B", 0}: 0, {"B", 1}: 1, {"C", 0}: 1, {"C", 1}: 2,
	}
	for p, w := range want {
		if ranks[p] != w {
			t.Errorf("rank%v = %d, want %d", p, ranks[p], w)
		}
	}
}

func TestSettingString(t *testing.T) {
	s := example21()
	str := s.String()
	for _, want := range []string{"source", "target", "d1", "d4", "M/2", "G/2"} {
		if !strings.Contains(str, want) {
			t.Errorf("Setting.String missing %q:\n%s", want, str)
		}
	}
}

func TestTGDByName(t *testing.T) {
	s := example21()
	if s.TGDByName("d2") == nil || s.TGDByName("nope") != nil {
		t.Fatal("TGDByName lookup wrong")
	}
}

func TestDependencyGraphString(t *testing.T) {
	s := example21()
	g := BuildDependencyGraph(s, false)
	str := g.String()
	if !strings.Contains(str, "=∃=>") || !strings.Contains(str, "d3") {
		t.Fatalf("graph rendering:\n%s", str)
	}
	ext := BuildDependencyGraph(s, true)
	if len(ext.Edges) <= len(g.Edges) {
		t.Fatal("extended graph must add existential edges for ȳ-variables")
	}
}
