package dependency

import (
	"fmt"
	"sort"
)

// Position is a pair (R, i): the i-th argument slot (0-based) of target
// relation R (Definition 6.5).
type Position struct {
	Rel string
	I   int
}

func (p Position) String() string { return fmt.Sprintf("(%s,%d)", p.Rel, p.I+1) }

// Edge is a dependency-graph edge; Existential marks the special edges
// introduced for existentially quantified head variables.
type Edge struct {
	From, To    Position
	Existential bool
	// Dep names the tgd that induced the edge, for diagnostics.
	Dep string
}

// DependencyGraph is the (possibly extended) dependency graph of the target
// tgds of a setting.
type DependencyGraph struct {
	Positions []Position
	Edges     []Edge
	adj       map[Position][]int // indexes into Edges
}

// BuildDependencyGraph builds the dependency graph of Σt's tgds
// (Definition 6.5). If extended is true it additionally inserts the
// existential edges of Definition 7.3 (from positions of ȳ-variables in the
// body to positions of z̄-variables in the head), yielding the extended
// dependency graph used for rich acyclicity.
func BuildDependencyGraph(s *Setting, extended bool) *DependencyGraph {
	g := &DependencyGraph{adj: make(map[Position][]int)}
	posSeen := make(map[Position]bool)
	addPos := func(p Position) {
		if !posSeen[p] {
			posSeen[p] = true
			g.Positions = append(g.Positions, p)
		}
	}
	// Every position of the target schema is a vertex.
	for rel, ar := range s.Target {
		for i := 0; i < ar; i++ {
			addPos(Position{Rel: rel, I: i})
		}
	}
	addEdge := func(e Edge) {
		g.Edges = append(g.Edges, e)
		g.adj[e.From] = append(g.adj[e.From], len(g.Edges)-1)
	}
	for _, d := range s.TGDs {
		exists := make(map[string]bool, len(d.Exists))
		for _, z := range d.Exists {
			exists[z] = true
		}
		// Positions of each variable in the body / head.
		bodyPos := make(map[string][]Position)
		for _, a := range d.BodyAtoms {
			for i, t := range a.Terms {
				if t.IsVar() {
					bodyPos[t.Var] = append(bodyPos[t.Var], Position{Rel: a.Rel, I: i})
				}
			}
		}
		headPos := make(map[string][]Position)
		for _, a := range d.Head {
			for i, t := range a.Terms {
				if t.IsVar() {
					headPos[t.Var] = append(headPos[t.Var], Position{Rel: a.Rel, I: i})
				}
			}
		}
		var zPositions []Position
		for z := range exists {
			zPositions = append(zPositions, headPos[z]...)
		}
		sort.Slice(zPositions, func(i, j int) bool {
			if zPositions[i].Rel != zPositions[j].Rel {
				return zPositions[i].Rel < zPositions[j].Rel
			}
			return zPositions[i].I < zPositions[j].I
		})
		// Regular and existential edges from x̄-positions (Def 6.5).
		for _, x := range d.X {
			for _, from := range bodyPos[x] {
				for _, to := range headPos[x] {
					addEdge(Edge{From: from, To: to, Dep: d.Name})
				}
				for _, to := range zPositions {
					addEdge(Edge{From: from, To: to, Existential: true, Dep: d.Name})
				}
			}
		}
		// Extended existential edges from ȳ-positions (Def 7.3).
		if extended {
			for _, y := range d.Y {
				for _, from := range bodyPos[y] {
					for _, to := range zPositions {
						addEdge(Edge{From: from, To: to, Existential: true, Dep: d.Name})
					}
				}
			}
		}
	}
	return g
}

// String renders the graph as one edge per line, existential edges marked
// with "=∃=>", in deterministic order — a debugging aid for acyclicity
// diagnoses.
func (g *DependencyGraph) String() string {
	lines := make([]string, 0, len(g.Edges))
	for _, e := range g.Edges {
		arrow := "--->"
		if e.Existential {
			arrow = "=∃=>"
		}
		lines = append(lines, fmt.Sprintf("%v %s %v  [%s]", e.From, arrow, e.To, e.Dep))
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

// HasExistentialCycle reports whether some cycle of the graph contains an
// existential edge. Following the standard argument, this holds iff some
// strongly connected component contains an existential edge whose endpoints
// both lie in that component.
func (g *DependencyGraph) HasExistentialCycle() bool {
	comp := g.sccs()
	for _, e := range g.Edges {
		if e.Existential && comp[e.From] == comp[e.To] {
			return true
		}
	}
	return false
}

// sccs computes strongly connected components (Tarjan) and returns the
// component id of every position.
func (g *DependencyGraph) sccs() map[Position]int {
	index := make(map[Position]int)
	low := make(map[Position]int)
	onStack := make(map[Position]bool)
	comp := make(map[Position]int)
	var stack []Position
	counter, compID := 0, 0

	var strong func(v Position)
	strong = func(v Position) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, ei := range g.adj[v] {
			w := g.Edges[ei].To
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = compID
				if w == v {
					break
				}
			}
			compID++
		}
	}
	for _, p := range g.Positions {
		if _, seen := index[p]; !seen {
			strong(p)
		}
	}
	return comp
}

// Ranks returns, for every position, the maximum number of existential
// edges on any path ending in that position (well-defined only for weakly
// acyclic graphs; call HasExistentialCycle first). It is the stratification
// underlying the polynomial chase bound of Fagin et al.
func (g *DependencyGraph) Ranks() map[Position]int {
	// Longest path in a DAG of SCCs where existential edges count 1.
	comp := g.sccs()
	nComp := 0
	for _, c := range comp {
		if c+1 > nComp {
			nComp = c + 1
		}
	}
	// Edges between components (within-component edges are non-existential
	// in a weakly acyclic graph and do not increase rank).
	type cedge struct {
		to   int
		cost int
	}
	cadj := make([][]cedge, nComp)
	indeg := make([]int, nComp)
	for _, e := range g.Edges {
		cf, ct := comp[e.From], comp[e.To]
		if cf == ct {
			continue
		}
		cost := 0
		if e.Existential {
			cost = 1
		}
		cadj[cf] = append(cadj[cf], cedge{to: ct, cost: cost})
		indeg[ct]++
	}
	// Topological longest path over components.
	rank := make([]int, nComp)
	var queue []int
	for c := 0; c < nComp; c++ {
		if indeg[c] == 0 {
			queue = append(queue, c)
		}
	}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, e := range cadj[c] {
			if rank[c]+e.cost > rank[e.to] {
				rank[e.to] = rank[c] + e.cost
			}
			indeg[e.to]--
			if indeg[e.to] == 0 {
				queue = append(queue, e.to)
			}
		}
	}
	out := make(map[Position]int, len(g.Positions))
	for _, p := range g.Positions {
		out[p] = rank[comp[p]]
	}
	return out
}

// WeaklyAcyclic reports whether the setting is weakly acyclic
// (Definition 6.5): no cycle of the dependency graph of Σt contains an
// existential edge.
func (s *Setting) WeaklyAcyclic() bool {
	return !BuildDependencyGraph(s, false).HasExistentialCycle()
}

// RichlyAcyclic reports whether the setting is richly acyclic
// (Definition 7.3): no cycle of the extended dependency graph contains an
// existential edge. Every richly acyclic setting is weakly acyclic.
func (s *Setting) RichlyAcyclic() bool {
	return !BuildDependencyGraph(s, true).HasExistentialCycle()
}
