// Package dependency defines data exchange settings and their dependencies:
// source-to-target tuple-generating dependencies (s-t tgds) with first-order
// bodies, target tgds with conjunctive bodies, and equality-generating
// dependencies (egds), following Section 2 of Hernich & Schweikardt
// (PODS 2007). It also implements the dependency graph, weak acyclicity
// (Definition 6.5) and rich acyclicity (Definition 7.3).
package dependency

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/instance"
	"repro/internal/query"
)

// TGD is a tuple-generating dependency
//
//	∀x̄ ∀ȳ ( ϕ(x̄, ȳ) → ∃z̄ ψ(x̄, z̄) )
//
// where ψ is a conjunction of relational atoms over the target schema. For a
// source-to-target tgd the body ϕ may be an arbitrary first-order formula
// over the source schema (with quantifiers relativized to the active
// domain); for a target tgd it must be a conjunction of relational atoms,
// exposed via BodyAtoms.
type TGD struct {
	// Name identifies the dependency in traces and justifications
	// (e.g. "d2"). Names must be unique within a setting.
	Name string
	// Body is the premise ϕ(x̄, ȳ).
	Body query.Formula
	// BodyAtoms is non-nil iff Body is a conjunction of relational atoms;
	// target tgds require it, s-t tgds have it when the body is conjunctive.
	BodyAtoms []query.Atom
	// X are the universally quantified variables shared with the head (x̄),
	// Y those occurring only in the body (ȳ), Exists the z̄.
	X, Y, Exists []string
	// Head is the conclusion ψ(x̄, z̄) as a conjunction of atoms.
	Head []query.Atom

	// Compiled-plan caches (see plan.go). Lazily built, concurrency-safe;
	// TGDs are shared by pointer so a plan is compiled once per dependency.
	planOnce   sync.Once
	bodyPlan   *query.Plan
	headPlan   *query.Plan
	deltaOnce  sync.Once
	deltaPlans []*query.Plan
	deltaPerms [][]int
	deltaUnify []DeltaUnifier

	// Slot-space caches for the fully slot-based chase hot path (conjunctive
	// bodies only, see plan.go).
	slotsOnce   sync.Once
	headSlots   *query.Plan
	headTmpl    *query.AtomTemplates
	bodyTmpl    *query.AtomTemplates
	existsSlots []int
	xSlots      []int
	ySlots      []int
}

// Full reports whether the tgd has no existentially quantified variables.
func (d *TGD) Full() bool { return len(d.Exists) == 0 }

// FrontierVars returns x̄ ∪ ȳ in declaration order.
func (d *TGD) FrontierVars() []string {
	out := make([]string, 0, len(d.X)+len(d.Y))
	out = append(out, d.X...)
	out = append(out, d.Y...)
	return out
}

func (d *TGD) String() string {
	head := make([]string, len(d.Head))
	for i, a := range d.Head {
		head[i] = a.String()
	}
	rhs := strings.Join(head, " & ")
	if len(d.Exists) > 0 {
		rhs = "exists " + strings.Join(d.Exists, ",") + " : " + rhs
	}
	// Quantified and implicational bodies must be parenthesised so that the
	// printed dependency re-parses: a bare quantifier body would swallow the
	// tgd arrow, and a bare implication would be mistaken for it.
	body := d.Body.String()
	switch d.Body.(type) {
	case query.Implies, query.Exists, query.Forall:
		body = "(" + body + ")"
	}
	return fmt.Sprintf("%s: %s -> %s", d.Name, body, rhs)
}

// NewTGD builds a tgd from a body and head, inferring X (body variables used
// in the head), Y (remaining body variables) and Exists (head variables not
// in the body). The body may be any formula; if it is a conjunction of
// atoms, BodyAtoms is populated.
func NewTGD(name string, body query.Formula, head []query.Atom) *TGD {
	d := &TGD{Name: name, Body: body, Head: head}
	bodyVars := query.FreeVars(body)
	inBody := make(map[string]bool, len(bodyVars))
	for _, v := range bodyVars {
		inBody[v] = true
	}
	headVars := make(map[string]bool)
	var headOrder []string
	for _, a := range head {
		for _, v := range a.Vars() {
			if !headVars[v] {
				headVars[v] = true
				headOrder = append(headOrder, v)
			}
		}
	}
	for _, v := range bodyVars {
		if headVars[v] {
			d.X = append(d.X, v)
		} else {
			d.Y = append(d.Y, v)
		}
	}
	for _, v := range headOrder {
		if !inBody[v] {
			d.Exists = append(d.Exists, v)
		}
	}
	d.BodyAtoms = conjunctionAtoms(body)
	return d
}

// conjunctionAtoms returns the atoms of a pure positive conjunction, or nil
// if the formula is not one.
func conjunctionAtoms(f query.Formula) []query.Atom {
	switch g := f.(type) {
	case query.Atom:
		return []query.Atom{g}
	case query.And:
		var out []query.Atom
		for _, h := range g.Fs {
			as := conjunctionAtoms(h)
			if as == nil {
				return nil
			}
			out = append(out, as...)
		}
		return out
	default:
		return nil
	}
}

// EGD is an equality-generating dependency
//
//	∀x̄ ( ϕ(x̄) → x_k = x_l )
//
// where ϕ is a conjunction of relational atoms over the target schema.
type EGD struct {
	Name string
	Body []query.Atom
	L, R string // the variables equated; both must occur in the body

	// Compiled-plan cache (see plan.go).
	planOnce     sync.Once
	bodyPlan     *query.Plan
	slotL, slotR int
}

func (d *EGD) String() string {
	parts := make([]string, len(d.Body))
	for i, a := range d.Body {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s: %s -> %s = %s", d.Name, strings.Join(parts, " & "), d.L, d.R)
}

// Setting is a data exchange setting D = (σ, τ, Σst, Σt).
type Setting struct {
	Source instance.Schema // σ
	Target instance.Schema // τ
	ST     []*TGD          // Σst: source-to-target tgds
	TGDs   []*TGD          // target tgds of Σt
	EGDs   []*EGD          // egds of Σt
}

// AllTGDs returns Σst ∪ (tgds of Σt); the order is s-t tgds first.
func (s *Setting) AllTGDs() []*TGD {
	out := make([]*TGD, 0, len(s.ST)+len(s.TGDs))
	out = append(out, s.ST...)
	out = append(out, s.TGDs...)
	return out
}

// TGDByName returns the tgd with the given name, or nil.
func (s *Setting) TGDByName(name string) *TGD {
	for _, d := range s.AllTGDs() {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// HasTargetDependencies reports whether Σt is nonempty.
func (s *Setting) HasTargetDependencies() bool {
	return len(s.TGDs) > 0 || len(s.EGDs) > 0
}

// EgdsOnly reports whether Σt consists of egds only (first restricted class
// of Proposition 5.4 / Theorem 7.1 / Table 1 row 3).
func (s *Setting) EgdsOnly() bool { return len(s.TGDs) == 0 }

// FullAndEgds reports whether Σst consists of full tgds and Σt of egds and
// full tgds (second restricted class of Proposition 5.4 / Table 1 row 4).
func (s *Setting) FullAndEgds() bool {
	for _, d := range s.ST {
		if !d.Full() {
			return false
		}
	}
	for _, d := range s.TGDs {
		if !d.Full() {
			return false
		}
	}
	return true
}

// Validate checks the structural well-formedness constraints of Section 2:
// disjoint schemas, s-t tgd bodies over σ and heads over τ, target
// dependencies entirely over τ, conjunctive bodies where required, matching
// arities, and head/egd variables coming from the body.
func (s *Setting) Validate() error {
	if !s.Source.Disjoint(s.Target) {
		return fmt.Errorf("dependency: source and target schemas must be disjoint")
	}
	names := make(map[string]bool)
	for _, d := range s.AllTGDs() {
		if d.Name == "" {
			return fmt.Errorf("dependency: unnamed tgd %v", d)
		}
		if names[d.Name] {
			return fmt.Errorf("dependency: duplicate dependency name %q", d.Name)
		}
		names[d.Name] = true
	}
	for _, d := range s.ST {
		if err := s.checkFormulaSchema(d.Body, s.Source); err != nil {
			return fmt.Errorf("s-t tgd %s body: %w", d.Name, err)
		}
		if err := s.checkHead(d); err != nil {
			return fmt.Errorf("s-t tgd %s: %w", d.Name, err)
		}
	}
	for _, d := range s.TGDs {
		if d.BodyAtoms == nil {
			return fmt.Errorf("target tgd %s: body must be a conjunction of atoms", d.Name)
		}
		for _, a := range d.BodyAtoms {
			if err := s.checkAtomSchema(a, s.Target); err != nil {
				return fmt.Errorf("target tgd %s body: %w", d.Name, err)
			}
		}
		if err := s.checkHead(d); err != nil {
			return fmt.Errorf("target tgd %s: %w", d.Name, err)
		}
	}
	for _, d := range s.EGDs {
		if d.Name == "" {
			return fmt.Errorf("dependency: unnamed egd %v", d)
		}
		if names[d.Name] {
			return fmt.Errorf("dependency: duplicate dependency name %q", d.Name)
		}
		names[d.Name] = true
		if len(d.Body) == 0 {
			return fmt.Errorf("egd %s: empty body", d.Name)
		}
		bodyVars := make(map[string]bool)
		for _, a := range d.Body {
			if err := s.checkAtomSchema(a, s.Target); err != nil {
				return fmt.Errorf("egd %s body: %w", d.Name, err)
			}
			for _, v := range a.Vars() {
				bodyVars[v] = true
			}
		}
		if !bodyVars[d.L] || !bodyVars[d.R] {
			return fmt.Errorf("egd %s: equated variables must occur in the body", d.Name)
		}
	}
	return nil
}

func (s *Setting) checkHead(d *TGD) error {
	if len(d.Head) == 0 {
		return fmt.Errorf("empty head")
	}
	for _, a := range d.Head {
		if err := s.checkAtomSchema(a, s.Target); err != nil {
			return fmt.Errorf("head: %w", err)
		}
	}
	return nil
}

func (s *Setting) checkAtomSchema(a query.Atom, sch instance.Schema) error {
	ar, ok := sch[a.Rel]
	if !ok {
		return fmt.Errorf("relation %s not in schema {%s}", a.Rel, sch)
	}
	if ar != len(a.Terms) {
		return fmt.Errorf("relation %s has arity %d, atom has %d arguments", a.Rel, ar, len(a.Terms))
	}
	return nil
}

func (s *Setting) checkFormulaSchema(f query.Formula, sch instance.Schema) error {
	var err error
	var walk func(query.Formula)
	walk = func(f query.Formula) {
		if err != nil {
			return
		}
		switch g := f.(type) {
		case query.Atom:
			err = s.checkAtomSchema(g, sch)
		case query.Not:
			walk(g.F)
		case query.And:
			for _, h := range g.Fs {
				walk(h)
			}
		case query.Or:
			for _, h := range g.Fs {
				walk(h)
			}
		case query.Implies:
			walk(g.L)
			walk(g.R)
		case query.Exists:
			walk(g.F)
		case query.Forall:
			walk(g.F)
		case query.Eq, query.Truth:
		default:
			err = fmt.Errorf("unknown formula node %T", f)
		}
	}
	walk(f)
	return err
}

// String renders the whole setting in the parser's text syntax.
func (s *Setting) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "source %s.\ntarget %s.\n", schemaDecl(s.Source), schemaDecl(s.Target))
	if len(s.ST) > 0 {
		b.WriteString("st:\n")
		for _, d := range s.ST {
			fmt.Fprintf(&b, "  %s.\n", d)
		}
	}
	if len(s.TGDs) > 0 || len(s.EGDs) > 0 {
		b.WriteString("target-deps:\n")
		for _, d := range s.TGDs {
			fmt.Fprintf(&b, "  %s.\n", d)
		}
		for _, d := range s.EGDs {
			fmt.Fprintf(&b, "  %s.\n", d)
		}
	}
	return b.String()
}

func schemaDecl(s instance.Schema) string {
	names := s.Names()
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s/%d", n, s[n])
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}
