package dependency

import (
	"repro/internal/instance"
	"repro/internal/query"
)

// Compiled-plan caches. Each dependency lazily compiles its conjunctive
// bodies and head into query.Plans exactly once (sync.Once), so every chase
// pass, satisfaction check and enumeration step over the same dependency
// reuses the same immutable plan — including from concurrent workers, since
// dependencies are shared by pointer throughout a Setting.

func (d *TGD) compilePlans() {
	if d.BodyAtoms != nil {
		d.bodyPlan = query.Compile(d.BodyAtoms, nil)
	}
	d.headPlan = query.Compile(d.Head, d.FrontierVars())
}

// BodyPlan returns the compiled plan for the tgd's conjunctive body, or nil
// when the body is a general first-order formula (s-t tgds with non-
// conjunctive bodies, which go through the FO evaluator instead).
func (d *TGD) BodyPlan() *query.Plan {
	d.planOnce.Do(d.compilePlans)
	return d.bodyPlan
}

// HeadPlan returns the compiled plan for the tgd's head conjunction with the
// frontier variables (x̄ ∪ ȳ) pre-bound, as used by head-satisfaction checks
// and witness enumeration under a body binding.
func (d *TGD) HeadPlan() *query.Plan {
	d.planOnce.Do(d.compilePlans)
	return d.headPlan
}

// DeltaPlan returns the compiled plan for the body with atom i removed and
// atom i's variables pre-bound: the semi-naive chase unifies body atom i
// with a freshly inserted atom and completes the join with this plan.
// Requires a conjunctive body.
func (d *TGD) DeltaPlan(i int) *query.Plan {
	d.compileDelta()
	return d.deltaPlans[i]
}

// DeltaPerm returns the permutation from DeltaPlan(i)'s slot space into
// BodyPlan's: envBody[perm[j]] = envDelta[j] transfers a delta-join result
// into the body slot order shared by HeadSlotsPlan and the justification
// slots. The slice is cached storage — do not modify.
func (d *TGD) DeltaPerm(i int) []int {
	d.compileDelta()
	return d.deltaPerms[i]
}

// DeltaUnifierFor returns the compiled unifier matching a freshly inserted
// atom against body atom i, writing the atom's variable values into
// DeltaPlan(i)'s pre-bound slots.
func (d *TGD) DeltaUnifierFor(i int) *DeltaUnifier {
	d.compileDelta()
	return &d.deltaUnify[i]
}

func (d *TGD) compileDelta() {
	d.deltaOnce.Do(func() {
		bp := d.BodyPlan()
		d.deltaPlans = make([]*query.Plan, len(d.BodyAtoms))
		d.deltaPerms = make([][]int, len(d.BodyAtoms))
		d.deltaUnify = make([]DeltaUnifier, len(d.BodyAtoms))
		for j, ba := range d.BodyAtoms {
			rest := make([]query.Atom, 0, len(d.BodyAtoms)-1)
			rest = append(rest, d.BodyAtoms[:j]...)
			rest = append(rest, d.BodyAtoms[j+1:]...)
			dp := query.Compile(rest, ba.Vars())
			d.deltaPlans[j] = dp
			perm := make([]int, dp.NumSlots())
			for k, name := range dp.VarNames() {
				perm[k] = bp.Slot(name)
			}
			d.deltaPerms[j] = perm
			d.deltaUnify[j] = compileUnifier(ba)
		}
	})
}

// DeltaUnifier matches a ground atom against one body atom, filling the
// atom's variable slots (in first-occurrence order, DeltaPlan's pre-bound
// layout) and checking constants and repeated variables.
type DeltaUnifier struct {
	consts []unifyConst
	ops    []unifyOp
}

type unifyConst struct {
	pos int
	val instance.Value
}

type unifyOp struct {
	pos, slot int
	check     bool
}

func compileUnifier(a query.Atom) DeltaUnifier {
	var u DeltaUnifier
	slotOf := make(map[string]int, len(a.Terms))
	for i, t := range a.Terms {
		if !t.IsVar() {
			u.consts = append(u.consts, unifyConst{pos: i, val: t.Val})
			continue
		}
		if slot, seen := slotOf[t.Var]; seen {
			u.ops = append(u.ops, unifyOp{pos: i, slot: slot, check: true})
			continue
		}
		slot := len(slotOf)
		slotOf[t.Var] = slot
		u.ops = append(u.ops, unifyOp{pos: i, slot: slot})
	}
	return u
}

// Unify matches args against the body atom, writing variable values into
// init (which must have room for the atom's variables) and reporting
// success.
func (u *DeltaUnifier) Unify(args []instance.Value, init []instance.Value) bool {
	for _, c := range u.consts {
		if args[c.pos] != c.val {
			return false
		}
	}
	for _, op := range u.ops {
		if op.check {
			if args[op.pos] != init[op.slot] {
				return false
			}
			continue
		}
		init[op.slot] = args[op.pos]
	}
	return true
}

func (d *TGD) ensureSlots() {
	d.slotsOnce.Do(func() {
		if d.BodyAtoms == nil {
			return
		}
		bp := d.BodyPlan()
		// Head compiled against the body's slot layout: a body result env
		// can seed head evaluation directly, with no name translation.
		d.headSlots = query.Compile(d.Head, bp.VarNames())
		d.headTmpl = query.NewAtomTemplates(d.Head, d.headSlots)
		d.bodyTmpl = query.NewAtomTemplates(d.BodyAtoms, bp)
		d.existsSlots = make([]int, len(d.Exists))
		for i, z := range d.Exists {
			d.existsSlots[i] = d.headSlots.Slot(z)
		}
		d.xSlots = make([]int, len(d.X))
		for i, x := range d.X {
			d.xSlots[i] = bp.Slot(x)
		}
		d.ySlots = make([]int, len(d.Y))
		for i, y := range d.Y {
			d.ySlots[i] = bp.Slot(y)
		}
	})
}

// HeadSlotsPlan returns the head conjunction compiled with the body plan's
// full slot layout pre-bound, so a body result env (length
// BodyPlan().NumSlots()) is a valid init. Conjunctive bodies only.
func (d *TGD) HeadSlotsPlan() *query.Plan {
	d.ensureSlots()
	return d.headSlots
}

// HeadTemplates returns the head atoms compiled against HeadSlotsPlan's
// slot space, for map-free instantiation. Conjunctive bodies only.
func (d *TGD) HeadTemplates() *query.AtomTemplates {
	d.ensureSlots()
	return d.headTmpl
}

// BodyTemplates returns the body atoms compiled against BodyPlan's slot
// space, so a body result env instantiates the ground body atoms of a match
// map-free (the justification graph records firings this way). Conjunctive
// bodies only.
func (d *TGD) BodyTemplates() *query.AtomTemplates {
	d.ensureSlots()
	return d.bodyTmpl
}

// ExistsSlots returns the HeadSlotsPlan slots of the existential variables.
func (d *TGD) ExistsSlots() []int {
	d.ensureSlots()
	return d.existsSlots
}

// XSlots and YSlots return the BodyPlan slots of x̄ and ȳ, in declaration
// order, for slot-based justification keys. Conjunctive bodies only.
func (d *TGD) XSlots() []int {
	d.ensureSlots()
	return d.xSlots
}

// YSlots returns the BodyPlan slots of ȳ; see XSlots.
func (d *TGD) YSlots() []int {
	d.ensureSlots()
	return d.ySlots
}

// BodyPlan returns the compiled plan for the egd's body together with the
// slots of the two equated variables, so violation checks read two slots
// instead of two map lookups.
func (d *EGD) BodyPlan() (p *query.Plan, slotL, slotR int) {
	d.planOnce.Do(func() {
		d.bodyPlan = query.Compile(d.Body, nil)
		d.slotL = d.bodyPlan.Slot(d.L)
		d.slotR = d.bodyPlan.Slot(d.R)
	})
	return d.bodyPlan, d.slotL, d.slotR
}
