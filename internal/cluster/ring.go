// Package cluster distributes dxserver scenarios across a static set of
// nodes with a consistent-hash ring keyed on scenario identity.
//
// Every scenario has a stable identity string — its ID, which for
// auto-named scenarios dxserver derives from the content hash of the
// canonical setting text plus the source's content key, so placement is
// content-addressed exactly where names are not chosen by the client.
// Mutated scenarios keep their ID (their result-cache keys move to the
// "m!" namespace, but their identity — and therefore their owner — does
// not move), so the per-scenario single-flight and base_version
// optimistic-concurrency machinery stays on one node and 409 semantics
// hold no matter which entry node a mutation arrives through.
//
// The ring is pure computation: every node derives it from the same
// static peer list, so equal configuration yields byte-identical
// ownership on every node with no coordination protocol. Virtual nodes
// (Replicas points per peer) smooth the key distribution, and consistent
// hashing keeps rebalances minimal — adding or removing one of N peers
// remaps only ~1/N of the identities.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultReplicas is the number of ring points per node when Config leaves
// Replicas zero. 128 virtual nodes keep the per-node load within a few
// percent of even for small clusters.
const DefaultReplicas = 128

// Ring is an immutable consistent-hash ring over a set of node names
// (dxserver base URLs). Build with NewRing; all methods are safe for
// concurrent use.
type Ring struct {
	points []point  // sorted by hash
	nodes  []string // sorted, deduplicated
}

type point struct {
	hash uint64
	node int // index into nodes
}

// hash64 hashes s to a ring position. SHA-256 (truncated) rather than a
// cheap mixer: ownership must be identical across every Go version,
// platform and process — the ring is configuration, not a hash table.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over nodes with the given number of virtual nodes
// per peer (replicas <= 0 means DefaultReplicas). The input order does not
// matter and duplicates collapse: equal node sets produce identical rings.
func NewRing(nodes []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, points: make([]point, 0, len(uniq)*replicas)}
	for i, n := range uniq {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, point{hash: hash64(n + "#" + strconv.Itoa(v)), node: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (vanishingly rare) break by node index so equal inputs
		// still yield identical rings.
		return a.node < b.node
	})
	return r
}

// Owner returns the node that owns key: the first ring point at or after
// the key's hash, wrapping around. Empty rings own nothing ("").
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.nodes[r.points[i].node]
}

// Nodes returns the ring's members, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len returns the number of distinct nodes.
func (r *Ring) Len() int { return len(r.nodes) }
