package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://node%d:8080", i)
	}
	return nodes
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("scenario-%d", i)
	}
	return out
}

// TestRingDeterministic pins the core contract: the same peer list — in any
// order, with duplicates, with equivalent URL spellings — yields identical
// ownership for every key, because every node derives the ring
// independently and they must agree.
func TestRingDeterministic(t *testing.T) {
	nodes := benchNodes(5)
	r1 := NewRing(nodes, 64)

	shuffled := append([]string(nil), nodes...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	withDups := append(append([]string(nil), shuffled...), nodes[0], nodes[3])
	r2 := NewRing(withDups, 64)

	for _, k := range keys(2000) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("ownership of %q differs across construction orders: %s vs %s", k, r1.Owner(k), r2.Owner(k))
		}
	}
	// A second process (fresh construction) agrees too.
	r3 := NewRing(nodes, 64)
	for _, k := range keys(100) {
		if r1.Owner(k) != r3.Owner(k) {
			t.Fatalf("ownership of %q differs across ring instances", k)
		}
	}
}

// TestClusterOwnershipAgreesAcrossMembers builds the cluster state of every
// member of one peer list (nodes and a router) and checks they all compute
// the same owner and ring version — the property the forwarding design
// rests on.
func TestClusterOwnershipAgreesAcrossMembers(t *testing.T) {
	peers := benchNodes(4)
	members := make([]*Cluster, 0, 5)
	for _, self := range peers {
		c, err := New(Config{Self: self, Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
		if c.Role() != RoleNode {
			t.Fatalf("%s: role = %v, want node", self, c.Role())
		}
		members = append(members, c)
	}
	router, err := New(Config{Self: "http://router:9090", Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	if router.Role() != RoleRouter {
		t.Fatalf("router role = %v", router.Role())
	}
	members = append(members, router)

	for _, k := range keys(1000) {
		want := members[0].Owner(k)
		owners := 0
		for _, m := range members {
			if m.Owner(k) != want {
				t.Fatalf("member %s maps %q to %s, others to %s", m.Self(), k, m.Owner(k), want)
			}
			if m.Owns(k) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("%q has %d owners, want exactly 1", k, owners)
		}
		if m := members[0]; m.RingVersion() != router.RingVersion() {
			t.Fatalf("ring versions differ: %s vs %s", m.RingVersion(), router.RingVersion())
		}
	}
}

// TestRingMinimalMovement is the consistent-hashing property: growing or
// shrinking an N-node ring by one remaps only about 1/N of the keys, and
// every remapped key moves to or from the changed node — survivors never
// shuffle among themselves.
func TestRingMinimalMovement(t *testing.T) {
	const nKeys = 20_000
	ks := keys(nKeys)
	for _, n := range []int{3, 4, 8} {
		nodes := benchNodes(n)
		small := NewRing(nodes, 0)
		added := fmt.Sprintf("http://node%d:8080", n)
		big := NewRing(append(append([]string(nil), nodes...), added), 0)

		moved := 0
		for _, k := range ks {
			before, after := small.Owner(k), big.Owner(k)
			if before == after {
				continue
			}
			moved++
			if after != added {
				// A key that changed owner without involving the new node
				// would be gratuitous movement.
				t.Fatalf("n=%d: key %q moved %s -> %s, not to the added node", n, k, before, after)
			}
		}
		want := float64(nKeys) / float64(n+1)
		if f := float64(moved); f < want*0.7 || f > want*1.3 {
			t.Fatalf("n=%d->%d: %d of %d keys moved, want ~%.0f (1/%d)", n, n+1, moved, nKeys, want, n+1)
		}
		// Removal is the mirror image: shrink big back to small.
		movedBack := 0
		for _, k := range ks {
			if big.Owner(k) != small.Owner(k) {
				movedBack++
				if big.Owner(k) != added {
					t.Fatalf("n=%d: removal moved %q off a surviving node", n, k)
				}
			}
		}
		if movedBack != moved {
			t.Fatalf("n=%d: add moved %d keys but remove moved %d", n, moved, movedBack)
		}
	}
}

// TestRingBalance checks the virtual nodes spread load: no node of an
// 8-node ring at the default replica count carries more than twice the
// fair share over a large key population.
func TestRingBalance(t *testing.T) {
	const nKeys = 50_000
	nodes := benchNodes(8)
	r := NewRing(nodes, 0)
	counts := make(map[string]int)
	for _, k := range keys(nKeys) {
		counts[r.Owner(k)]++
	}
	fair := nKeys / len(nodes)
	for _, n := range nodes {
		if c := counts[n]; c < fair/2 || c > fair*2 {
			t.Fatalf("node %s owns %d keys, fair share %d (counts %v)", n, c, fair, counts)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	if got := NewRing(nil, 0).Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	one := NewRing([]string{"http://only:1"}, 0)
	for _, k := range keys(50) {
		if one.Owner(k) != "http://only:1" {
			t.Fatalf("single-node ring must own everything")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	peers := benchNodes(3)
	if _, err := New(Config{Self: peers[0], Peers: nil}); err == nil {
		t.Fatal("empty peer list must be rejected")
	}
	if _, err := New(Config{Self: "not-a-url", Peers: peers}); err == nil {
		t.Fatal("bad self URL must be rejected")
	}
	if _, err := New(Config{Self: "http://elsewhere:1", Peers: peers, Role: RoleNode}); err == nil {
		t.Fatal("role node outside the peer list must be rejected")
	}
	if _, err := New(Config{Self: peers[1], Peers: peers, Role: RoleRouter}); err == nil {
		t.Fatal("role router inside the peer list must be rejected")
	}
	// URL spellings normalize: trailing slash and explicit role agree with auto.
	c, err := New(Config{Self: peers[0] + "/", Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	if c.Self() != peers[0] || c.Role() != RoleNode {
		t.Fatalf("normalization failed: self=%q role=%v", c.Self(), c.Role())
	}
	if _, err := ParseRole("bogus"); err == nil {
		t.Fatal("ParseRole must reject unknown roles")
	}
}
