package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Role is what a cluster member does with requests it does not own.
type Role int

const (
	// RoleAuto derives the role from the peer list: a node whose Self URL
	// appears in Peers is a data node, anything else is a router.
	RoleAuto Role = iota
	// RoleNode owns a ring segment and serves its scenarios locally; like
	// every member it forwards non-owned requests to their owner.
	RoleNode
	// RoleRouter owns nothing: a thin stateless gateway that forwards every
	// scenario-scoped request to the owning node and replicates hot results
	// in its local cache.
	RoleRouter
)

// String returns the wire name of the role ("node" or "router").
func (r Role) String() string {
	if r == RoleRouter {
		return "router"
	}
	return "node"
}

// ParseRole maps the -cluster-role flag values.
func ParseRole(s string) (Role, error) {
	switch s {
	case "", "auto":
		return RoleAuto, nil
	case "node":
		return RoleNode, nil
	case "router":
		return RoleRouter, nil
	}
	return 0, fmt.Errorf("cluster: unknown role %q (want auto, node or router)", s)
}

// Config describes one member's view of the cluster at boot. Members
// started with the same Peers list (and Replicas) derive the same epoch-1
// ring with no coordination; from there the membership protocol (package
// membership) can move the view forward through proposed/committed epochs.
type Config struct {
	// Self is this process's advertised base URL (how peers reach it),
	// e.g. "http://10.0.0.1:8080".
	Self string
	// Peers are the data nodes' base URLs — the ring members. Routers are
	// deliberately not listed: they own nothing.
	Peers []string
	// Role is node, router, or auto (derive from Self ∈ Peers).
	Role Role
	// Replicas is the virtual-node count per peer (0 = DefaultReplicas).
	Replicas int
	// MaxHops bounds forwarding chains (0 = DefaultMaxHops). One hop
	// resolves every request under agreeing rings; the bound exists to
	// break loops under disagreeing ones.
	MaxHops int
}

// DefaultMaxHops bounds a forwarding chain: entry node → owner is one hop;
// anything longer means ring disagreement or a transfer window, and the
// third hop gives transitional routing (old owner → new owner probes
// during membership changes, rolling peer-list edits) one chance to land
// on a node that answers before the loop is cut.
const DefaultMaxHops = 3

// View is one committed (or proposed) cluster configuration: a monotone
// epoch number plus the data-node member list it covers. Equal views
// produce identical rings on every member.
type View struct {
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"`
}

// normalize sorts and deduplicates the member list in place-ish.
func (v View) normalize() View {
	uniq := make([]string, 0, len(v.Members))
	seen := make(map[string]bool, len(v.Members))
	for _, m := range v.Members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	return View{Epoch: v.Epoch, Members: uniq}
}

// equal reports whether two views describe the same epoch and member set.
func (v View) equal(o View) bool {
	if v.Epoch != o.Epoch || len(v.Members) != len(o.Members) {
		return false
	}
	for i := range v.Members {
		if v.Members[i] != o.Members[i] {
			return false
		}
	}
	return true
}

// Route is the routing decision for one key. Outside a transfer window
// Moving is false and Owner is the (single) ring owner. During a window a
// key whose owner differs between the current and the proposed ring is
// Moving: Owner is the old owner (epoch N) and New the future one (epoch
// N+1). Callers route moving keys to the old owner until the per-scenario
// handoff lands there.
type Route struct {
	Owner  string
	New    string
	Moving bool
}

// views is the atomically-swapped routing state: the committed view (and
// its ring) plus, during a transfer window, the proposed next view.
type views struct {
	cur      View
	ring     *Ring
	prop     *View
	propRing *Ring
	version  string // RingVersion fingerprint of cur
}

// Cluster is one member's cluster state: its identity, role, and the
// epoched view(s) it routes with. Reads are lock-free; view transitions
// (Propose/Commit/Abort) are serialized. Safe for concurrent use.
type Cluster struct {
	self     string
	role     Role
	replicas int
	maxHops  int

	mu sync.Mutex // serializes view writers
	v  atomic.Pointer[views]
}

// NormalizeURL canonicalizes a member URL so equal addresses written
// differently ("http://a:8080/", "http://a:8080") collapse to one ring
// identity.
func NormalizeURL(raw string) (string, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", fmt.Errorf("cluster: empty member URL")
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("cluster: member URL %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("cluster: member URL %q must be http or https", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("cluster: member URL %q has no host", raw)
	}
	u.Path = strings.TrimRight(u.Path, "/")
	u.RawQuery, u.Fragment = "", ""
	return u.String(), nil
}

// New validates the configuration and builds the member's cluster state.
// The static peer list becomes the committed epoch-1 view, so a fleet
// booted the old way forms the same ring on every member with no
// coordination — and can still grow later via the membership protocol.
func New(cfg Config) (*Cluster, error) {
	self, err := NormalizeURL(cfg.Self)
	if err != nil {
		return nil, fmt.Errorf("cluster: self: %w", err)
	}
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	peers := make([]string, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		n, err := NormalizeURL(p)
		if err != nil {
			return nil, err
		}
		peers = append(peers, n)
	}
	ring := NewRing(peers, cfg.Replicas)
	inRing := false
	for _, n := range ring.Nodes() {
		if n == self {
			inRing = true
			break
		}
	}
	role := cfg.Role
	if role == RoleAuto {
		role = RoleNode
		if !inRing {
			role = RoleRouter
		}
	}
	if role == RoleNode && !inRing {
		return nil, fmt.Errorf("cluster: role node but self %s is not in the peer list %v", self, ring.Nodes())
	}
	if role == RoleRouter && inRing {
		return nil, fmt.Errorf("cluster: role router but self %s is in the peer list (peers would forward to a node that owns nothing)", self)
	}
	maxHops := cfg.MaxHops
	if maxHops <= 0 {
		maxHops = DefaultMaxHops
	}
	c := &Cluster{self: self, role: role, replicas: cfg.Replicas, maxHops: maxHops}
	c.install(View{Epoch: 1, Members: ring.Nodes()}, ring, nil, nil)
	return c, nil
}

// NewJoining builds the cluster state for a node booting with
// -cluster-join: a data node that is not yet a member of anything. Its
// view is the empty epoch-0 ring (it owns no keys and forwards nothing);
// the join handshake installs the real view via Propose/Commit.
func NewJoining(self string, replicas, maxHops int) (*Cluster, error) {
	n, err := NormalizeURL(self)
	if err != nil {
		return nil, fmt.Errorf("cluster: self: %w", err)
	}
	if maxHops <= 0 {
		maxHops = DefaultMaxHops
	}
	c := &Cluster{self: n, role: RoleNode, replicas: replicas, maxHops: maxHops}
	c.install(View{Epoch: 0}, NewRing(nil, replicas), nil, nil)
	return c, nil
}

// install swaps the routing state (callers hold c.mu or are constructors).
func (c *Cluster) install(cur View, ring *Ring, prop *View, propRing *Ring) {
	if ring == nil {
		ring = NewRing(cur.Members, c.replicas)
	}
	if prop != nil && propRing == nil {
		propRing = NewRing(prop.Members, c.replicas)
	}
	c.v.Store(&views{cur: cur, ring: ring, prop: prop, propRing: propRing, version: ringVersion(ring)})
}

// ringVersion fingerprints the ring configuration: equal peer sets (and
// vnode counts) produce equal versions on every member, so /healthz
// exposes a value operators can diff across nodes to catch peer-list
// drift.
func ringVersion(r *Ring) string {
	h := sha256.New()
	for _, n := range r.nodes {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	h.Write([]byte(strconv.Itoa(len(r.points))))
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// Propose opens a transfer window: members route with both cur (epoch N)
// and prop (epoch N+1) until Commit or Abort. If the member's committed
// view is older than cur it catches up to cur first. Re-proposing the
// identical window is a no-op; proposing over a different open window is
// an error (one transition at a time, cluster-wide).
func (c *Cluster) Propose(cur, prop View) error {
	cur, prop = cur.normalize(), prop.normalize()
	if prop.Epoch != cur.Epoch+1 {
		return fmt.Errorf("cluster: proposed epoch %d is not current %d + 1", prop.Epoch, cur.Epoch)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.v.Load()
	if v.prop != nil {
		if v.prop.equal(prop) {
			return nil
		}
		return fmt.Errorf("cluster: transition to epoch %d already in progress", v.prop.Epoch)
	}
	if v.cur.Epoch > cur.Epoch {
		return fmt.Errorf("cluster: proposal for epoch %d is stale (committed epoch is %d)", prop.Epoch, v.cur.Epoch)
	}
	ring := v.ring
	if !v.cur.equal(cur) {
		ring = nil // recompute for the adopted base view
	}
	c.install(cur, ring, &prop, nil)
	return nil
}

// Commit makes epoch the committed view. If the matching proposal is open
// it is promoted; otherwise (a member that missed the propose broadcast)
// the view is adopted outright from the member list. Commits at or below
// the committed epoch are no-ops.
func (c *Cluster) Commit(epoch uint64, members []string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.v.Load()
	if v.cur.Epoch >= epoch {
		return nil
	}
	if v.prop != nil && v.prop.Epoch == epoch {
		c.install(*v.prop, v.propRing, nil, nil)
		return nil
	}
	if len(members) == 0 {
		return fmt.Errorf("cluster: commit for unknown epoch %d carries no member list", epoch)
	}
	c.install(View{Epoch: epoch, Members: members}.normalize(), nil, nil, nil)
	return nil
}

// Abort discards the proposed view with the given epoch (no-op if no such
// proposal is open). The committed view keeps routing as before.
func (c *Cluster) Abort(epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.v.Load()
	if v.prop != nil && v.prop.Epoch == epoch {
		c.install(v.cur, v.ring, nil, nil)
	}
}

// RouteKey resolves key against the epoched view(s): outside a window the
// single committed owner; inside, both owners when the key is moving.
func (c *Cluster) RouteKey(key string) Route {
	v := c.v.Load()
	o := v.ring.Owner(key)
	if v.prop == nil {
		return Route{Owner: o}
	}
	n := v.propRing.Owner(key)
	if n == o {
		return Route{Owner: o}
	}
	return Route{Owner: o, New: n, Moving: true}
}

// Epoch returns the committed view's epoch.
func (c *Cluster) Epoch() uint64 { return c.v.Load().cur.Epoch }

// Current returns the committed view.
func (c *Cluster) Current() View {
	cur := c.v.Load().cur
	return View{Epoch: cur.Epoch, Members: append([]string(nil), cur.Members...)}
}

// Proposed returns the open proposal, if a transfer window is open.
func (c *Cluster) Proposed() (View, bool) {
	v := c.v.Load()
	if v.prop == nil {
		return View{}, false
	}
	return View{Epoch: v.prop.Epoch, Members: append([]string(nil), v.prop.Members...)}, true
}

// Transitioning reports whether a transfer window is open.
func (c *Cluster) Transitioning() bool { return c.v.Load().prop != nil }

// Owner returns the base URL of the node owning the scenario identity key
// in the committed view.
func (c *Cluster) Owner(key string) string { return c.v.Load().ring.Owner(key) }

// Owns reports whether this member serves key locally in the committed
// view. Routers own nothing.
func (c *Cluster) Owns(key string) bool {
	return c.role == RoleNode && c.v.Load().ring.Owner(key) == c.self
}

// Self returns this member's normalized base URL.
func (c *Cluster) Self() string { return c.self }

// Role returns this member's role.
func (c *Cluster) Role() Role { return c.role }

// RingVersion returns the committed view's configuration fingerprint:
// equal member sets produce equal versions on every member.
func (c *Cluster) RingVersion() string { return c.v.Load().version }

// MaxHops returns the forwarding hop bound.
func (c *Cluster) MaxHops() int { return c.maxHops }

// Replicas returns the configured virtual-node count (0 = default).
func (c *Cluster) Replicas() int { return c.replicas }

// Peers returns the committed view's members, sorted.
func (c *Cluster) Peers() []string { return c.v.Load().ring.Nodes() }

// AllMembers returns the union of committed and proposed members, sorted —
// the peers that may hold data during a transfer window.
func (c *Cluster) AllMembers() []string {
	v := c.v.Load()
	if v.prop == nil {
		return v.ring.Nodes()
	}
	seen := make(map[string]bool, len(v.cur.Members)+len(v.prop.Members))
	out := make([]string, 0, len(v.cur.Members)+len(v.prop.Members))
	for _, lst := range [][]string{v.cur.Members, v.prop.Members} {
		for _, m := range lst {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	sort.Strings(out)
	return out
}
