package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/url"
	"strconv"
	"strings"
)

// Role is what a cluster member does with requests it does not own.
type Role int

const (
	// RoleAuto derives the role from the peer list: a node whose Self URL
	// appears in Peers is a data node, anything else is a router.
	RoleAuto Role = iota
	// RoleNode owns a ring segment and serves its scenarios locally; like
	// every member it forwards non-owned requests to their owner.
	RoleNode
	// RoleRouter owns nothing: a thin stateless gateway that forwards every
	// scenario-scoped request to the owning node and replicates hot results
	// in its local cache.
	RoleRouter
)

// String returns the wire name of the role ("node" or "router").
func (r Role) String() string {
	if r == RoleRouter {
		return "router"
	}
	return "node"
}

// ParseRole maps the -cluster-role flag values.
func ParseRole(s string) (Role, error) {
	switch s {
	case "", "auto":
		return RoleAuto, nil
	case "node":
		return RoleNode, nil
	case "router":
		return RoleRouter, nil
	}
	return 0, fmt.Errorf("cluster: unknown role %q (want auto, node or router)", s)
}

// Config describes one member's view of the cluster. Every member must be
// started with the same Peers list (and Replicas); ownership is derived
// from it with no runtime coordination, so disagreeing peer lists mean
// disagreeing rings — the forwarding hop bound turns that misconfiguration
// into an error instead of a loop.
type Config struct {
	// Self is this process's advertised base URL (how peers reach it),
	// e.g. "http://10.0.0.1:8080".
	Self string
	// Peers are the data nodes' base URLs — the ring members. Routers are
	// deliberately not listed: they own nothing.
	Peers []string
	// Role is node, router, or auto (derive from Self ∈ Peers).
	Role Role
	// Replicas is the virtual-node count per peer (0 = DefaultReplicas).
	Replicas int
	// MaxHops bounds forwarding chains (0 = DefaultMaxHops). One hop
	// resolves every request under agreeing rings; the bound exists to
	// break loops under disagreeing ones.
	MaxHops int
}

// DefaultMaxHops bounds a forwarding chain: entry node → owner is one hop;
// anything longer means ring disagreement, and the third hop gives a
// transitional cluster (a rolling peer-list change) one chance to land on
// a node that answers before the loop is cut.
const DefaultMaxHops = 3

// Cluster is one member's immutable cluster state: the ring, its own
// identity and role, and the configuration fingerprint. Safe for
// concurrent use.
type Cluster struct {
	ring    *Ring
	self    string
	role    Role
	version string
	maxHops int
}

// NormalizeURL canonicalizes a member URL so equal addresses written
// differently ("http://a:8080/", "http://a:8080") collapse to one ring
// identity.
func NormalizeURL(raw string) (string, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", fmt.Errorf("cluster: empty member URL")
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("cluster: member URL %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("cluster: member URL %q must be http or https", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("cluster: member URL %q has no host", raw)
	}
	u.Path = strings.TrimRight(u.Path, "/")
	u.RawQuery, u.Fragment = "", ""
	return u.String(), nil
}

// New validates the configuration and builds the member's cluster state.
func New(cfg Config) (*Cluster, error) {
	self, err := NormalizeURL(cfg.Self)
	if err != nil {
		return nil, fmt.Errorf("cluster: self: %w", err)
	}
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	peers := make([]string, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		n, err := NormalizeURL(p)
		if err != nil {
			return nil, err
		}
		peers = append(peers, n)
	}
	ring := NewRing(peers, cfg.Replicas)
	inRing := false
	for _, n := range ring.Nodes() {
		if n == self {
			inRing = true
			break
		}
	}
	role := cfg.Role
	if role == RoleAuto {
		role = RoleNode
		if !inRing {
			role = RoleRouter
		}
	}
	if role == RoleNode && !inRing {
		return nil, fmt.Errorf("cluster: role node but self %s is not in the peer list %v", self, ring.Nodes())
	}
	if role == RoleRouter && inRing {
		return nil, fmt.Errorf("cluster: role router but self %s is in the peer list (peers would forward to a node that owns nothing)", self)
	}
	maxHops := cfg.MaxHops
	if maxHops <= 0 {
		maxHops = DefaultMaxHops
	}
	return &Cluster{
		ring:    ring,
		self:    self,
		role:    role,
		version: ringVersion(ring),
		maxHops: maxHops,
	}, nil
}

// ringVersion fingerprints the ring configuration: equal peer sets (and
// vnode counts) produce equal versions on every member, so /healthz
// exposes a value operators can diff across nodes to catch peer-list
// drift.
func ringVersion(r *Ring) string {
	h := sha256.New()
	for _, n := range r.nodes {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	h.Write([]byte(strconv.Itoa(len(r.points))))
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// Owner returns the base URL of the node owning the scenario identity key.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// Owns reports whether this member serves key locally. Routers own
// nothing.
func (c *Cluster) Owns(key string) bool {
	return c.role == RoleNode && c.ring.Owner(key) == c.self
}

// Self returns this member's normalized base URL.
func (c *Cluster) Self() string { return c.self }

// Role returns this member's role.
func (c *Cluster) Role() Role { return c.role }

// RingVersion returns the configuration fingerprint shared by members with
// identical peer lists.
func (c *Cluster) RingVersion() string { return c.version }

// MaxHops returns the forwarding hop bound.
func (c *Cluster) MaxHops() int { return c.maxHops }

// Peers returns the ring members, sorted.
func (c *Cluster) Peers() []string { return c.ring.Nodes() }
