package cluster

import (
	"strings"
	"testing"
)

func mustNew(t *testing.T, self string, peers []string) *Cluster {
	t.Helper()
	c, err := New(Config{Self: self, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

var threePeers = []string{"http://a:1", "http://b:1", "http://c:1"}

// TestStaticBootIsEpochOne pins the backward-compatible boot: a statically
// configured member starts at committed epoch 1 with the peer list as the
// view, no transition open.
func TestStaticBootIsEpochOne(t *testing.T) {
	c := mustNew(t, "http://a:1", threePeers)
	if c.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", c.Epoch())
	}
	if c.Transitioning() {
		t.Fatal("fresh member reports an open transition")
	}
	cur := c.Current()
	if len(cur.Members) != 3 {
		t.Fatalf("members = %v, want 3", cur.Members)
	}
	rt := c.RouteKey("anything")
	if rt.Moving || rt.Owner == "" {
		t.Fatalf("stable route = %+v, want single owner", rt)
	}
}

// TestJoiningBootIsEmptyEpochZero checks the -cluster-join boot state: a
// data node with an empty committed ring that owns nothing.
func TestJoiningBootIsEmptyEpochZero(t *testing.T) {
	c, err := NewJoining("http://d:1", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != 0 {
		t.Fatalf("epoch = %d, want 0", c.Epoch())
	}
	if c.Role() != RoleNode {
		t.Fatalf("role = %v, want node", c.Role())
	}
	if got := c.Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want none", got)
	}
	if c.Owns("k") {
		t.Fatal("joiner claims ownership before joining")
	}
}

// TestProposeCommitMovesExactlyTheMinimalKeys drives one full transition
// and checks the dual-ring window: only keys whose owner differs between
// the rings are Moving, and after commit the proposed ring is the
// committed one.
func TestProposeCommitMovesExactlyTheMinimalKeys(t *testing.T) {
	c := mustNew(t, "http://a:1", threePeers)
	cur := c.Current()
	joined := append(append([]string(nil), cur.Members...), "http://d:1")
	prop := View{Epoch: 2, Members: joined}
	if err := c.Propose(cur, prop); err != nil {
		t.Fatal(err)
	}
	if !c.Transitioning() {
		t.Fatal("no window open after propose")
	}

	oldRing := NewRing(cur.Members, 0)
	newRing := NewRing(joined, 0)
	moving, stable := 0, 0
	for i := 0; i < 200; i++ {
		key := "scenario-" + strings.Repeat("x", i%7) + string(rune('a'+i%26))
		rt := c.RouteKey(key)
		wantOld, wantNew := oldRing.Owner(key), newRing.Owner(key)
		if wantOld == wantNew {
			stable++
			if rt.Moving || rt.Owner != wantOld {
				t.Fatalf("key %q: route %+v, want stable owner %s", key, rt, wantOld)
			}
		} else {
			moving++
			if !rt.Moving || rt.Owner != wantOld || rt.New != wantNew {
				t.Fatalf("key %q: route %+v, want moving %s -> %s", key, rt, wantOld, wantNew)
			}
		}
	}
	if moving == 0 || stable == 0 {
		t.Fatalf("degenerate key split: moving=%d stable=%d", moving, stable)
	}
	// Consistent hashing: adding 1 node to 3 should move roughly 1/4 of
	// the keys, certainly under half.
	if moving > 100 {
		t.Fatalf("%d/200 keys moving after adding one node to three", moving)
	}

	if err := c.Commit(2, nil); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != 2 || c.Transitioning() {
		t.Fatalf("after commit: epoch=%d transitioning=%v", c.Epoch(), c.Transitioning())
	}
	for i := 0; i < 50; i++ {
		key := "post-" + string(rune('a'+i))
		if got, want := c.Owner(key), newRing.Owner(key); got != want {
			t.Fatalf("committed owner of %q = %s, want %s", key, got, want)
		}
	}
}

// TestAbortRestoresTheCommittedView checks an aborted window leaves
// routing exactly as before the propose.
func TestAbortRestoresTheCommittedView(t *testing.T) {
	c := mustNew(t, "http://a:1", threePeers)
	cur := c.Current()
	before := c.RingVersion()
	prop := View{Epoch: 2, Members: append(append([]string(nil), cur.Members...), "http://d:1")}
	if err := c.Propose(cur, prop); err != nil {
		t.Fatal(err)
	}
	c.Abort(2)
	if c.Transitioning() || c.Epoch() != 1 || c.RingVersion() != before {
		t.Fatalf("abort did not restore: epoch=%d transitioning=%v", c.Epoch(), c.Transitioning())
	}
	// Aborting a non-open epoch is a no-op.
	c.Abort(7)
	if c.Epoch() != 1 {
		t.Fatal("stray abort changed the view")
	}
}

// TestProposeIdempotentAndExclusive checks re-proposing the identical
// window succeeds (broadcast retries are safe) while a different proposal
// over an open window is refused — one transition at a time.
func TestProposeIdempotentAndExclusive(t *testing.T) {
	c := mustNew(t, "http://a:1", threePeers)
	cur := c.Current()
	prop := View{Epoch: 2, Members: append(append([]string(nil), cur.Members...), "http://d:1")}
	if err := c.Propose(cur, prop); err != nil {
		t.Fatal(err)
	}
	if err := c.Propose(cur, prop); err != nil {
		t.Fatalf("identical re-propose refused: %v", err)
	}
	other := View{Epoch: 2, Members: append(append([]string(nil), cur.Members...), "http://e:1")}
	if err := c.Propose(cur, other); err == nil {
		t.Fatal("conflicting proposal over an open window accepted")
	}
}

// TestCommitAdoptsUnknownEpochFromMembers checks a member that missed the
// propose broadcast still converges: a commit carrying the member list
// installs the view outright, and stale commits are no-ops.
func TestCommitAdoptsUnknownEpochFromMembers(t *testing.T) {
	c := mustNew(t, "http://a:1", threePeers)
	members := append(append([]string(nil), threePeers...), "http://d:1")
	if err := c.Commit(5, members); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != 5 || len(c.Current().Members) != 4 {
		t.Fatalf("adopted view: epoch=%d members=%v", c.Epoch(), c.Current().Members)
	}
	// Below or at the committed epoch: no-op, not an error.
	if err := c.Commit(3, threePeers); err != nil {
		t.Fatalf("stale commit errored: %v", err)
	}
	if c.Epoch() != 5 {
		t.Fatal("stale commit rewound the view")
	}
	// Unknown epoch with no member list cannot be adopted.
	if err := c.Commit(9, nil); err == nil {
		t.Fatal("memberless commit for unknown epoch accepted")
	}
}

// TestAllMembersUnionDuringWindow checks AllMembers covers both rings
// inside a window (a drain-leave window must still list the leaver).
func TestAllMembersUnionDuringWindow(t *testing.T) {
	c := mustNew(t, "http://a:1", threePeers)
	cur := c.Current()
	rest := []string{"http://a:1", "http://b:1"} // c leaves
	if err := c.Propose(cur, View{Epoch: 2, Members: rest}); err != nil {
		t.Fatal(err)
	}
	all := c.AllMembers()
	if len(all) != 3 {
		t.Fatalf("AllMembers during leave window = %v, want all three", all)
	}
	if err := c.Commit(2, nil); err != nil {
		t.Fatal(err)
	}
	if got := c.AllMembers(); len(got) != 2 {
		t.Fatalf("AllMembers after leave = %v, want two", got)
	}
}
