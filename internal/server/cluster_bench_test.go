package server_test

// BenchmarkClusterThroughput measures scenario throughput on a genwl
// working set that exceeds one node's resident capacity. Each operation
// touches one of 96 distinct chain scenarios through a fixed entry node:
// register (content-addressed, so a resident copy dedupes) followed by a
// chase read.
//
// The scaling axis is aggregate capacity, the resource sharding actually
// multiplies: every node holds MaxScenarios=48 residents, so a single node
// thrashes its LRU — every touch re-registers and re-chases a scenario the
// previous sweep evicted — while four nodes keep all 96 resident and
// answer from the raw-text registration dedup plus the replicated result
// caches (ETag revalidation, no recompute). This makes the benchmark
// meaningful on any machine, including single-core CI runners where
// wall-clock CPU parallelism cannot show up by construction; on multi-core
// hosts the four owners additionally chase in parallel and the gap widens.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"testing"

	"repro/internal/cluster"
	"repro/internal/genwl"
	"repro/internal/parser"
	"repro/internal/server"
	"repro/internal/server/api"
	"repro/internal/server/client"
)

const (
	benchScenarios   = 96 // working set size
	benchResidency   = 48 // per-node resident bound (single node must thrash; ring skew fits)
	benchChainDepth  = 48
	benchSourceEdges = 24
)

func benchWorkload() (setting string, sources []string) {
	setting = parser.FormatSetting(genwl.WeaklyAcyclicChain(benchChainDepth))
	sources = make([]string, benchScenarios)
	for i := range sources {
		sources[i] = parser.FormatInstance(genwl.RandomEdges("R0", benchSourceEdges, int64(i+1)))
	}
	return setting, sources
}

// startBenchCluster boots n nodes with the capacity-bounded config and
// returns a client pointed at the fixed entry node.
func startBenchCluster(b *testing.B, n int) *client.Client {
	b.Helper()
	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		listeners[i] = l
		peers[i] = "http://" + l.Addr().String()
	}
	for i, l := range listeners {
		cl, err := cluster.New(cluster.Config{Self: peers[i], Peers: peers})
		if err != nil {
			b.Fatal(err)
		}
		srv := server.New(server.Config{
			Cluster:      cl,
			MaxScenarios: benchResidency,
		})
		hs := &http.Server{Handler: srv}
		go hs.Serve(l)
		b.Cleanup(func() { hs.Close() })
	}
	return client.New(peers[0])
}

func BenchmarkClusterThroughput(b *testing.B) {
	setting, sources := benchWorkload()
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			c := startBenchCluster(b, n)
			ctx := context.Background()
			// One warm sweep so the resident sets reach steady state before
			// the timer starts.
			for _, src := range sources {
				if _, err := c.Register(ctx, api.RegisterRequest{Setting: setting, Source: src}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % benchScenarios
				info, err := c.Register(ctx, api.RegisterRequest{Setting: setting, Source: sources[k]})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Chase(ctx, api.EvalRequest{Scenario: info.ID}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
