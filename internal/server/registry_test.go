package server

// Regression tests for the registry's result-cache hygiene: every path a
// scenario leaves by must clean up after it. Deleting a scenario used to
// bypass the eviction hook (lru.remove/removeIf skipped onEvict), which
// could leave mutated-namespace result entries behind; a later scenario
// re-registered under the same name restarts the version counter, so a
// stale entry could answer for different content.

import (
	"testing"

	"repro/internal/chase"
)

const tinySetting = `
source S/1.
target T/1.
st:
  d1: S(x) -> T(x).
`

func TestDropPurgesResultCache(t *testing.T) {
	r := newRegistry(4, 16, nil)
	sc, reused, err := r.register("s", tinySetting, `S(a).`, chase.Options{})
	if err != nil || reused {
		t.Fatalf("register: reused=%v err=%v", reused, err)
	}

	contentKey := resultKey(sc, "core")
	mutKey := mutatedNamespace(sc.id) + sc.contentID + "\x00v9\x00core"
	otherKey := "othercontent\x00v1\x00core"
	r.results.put(contentKey, []byte("cached"))
	r.results.put(mutKey, []byte("stale"))
	r.results.put(otherKey, []byte("keep"))

	if ok, err := r.drop("s", false); err != nil || !ok {
		t.Fatalf("drop: ok=%v err=%v", ok, err)
	}
	if _, err := r.lookup("s"); err == nil {
		t.Fatal("scenario still resident after drop")
	}
	if _, ok := r.results.get(contentKey); ok {
		t.Fatal("content-keyed result survived an explicit DELETE")
	}
	if _, ok := r.results.get(mutKey); ok {
		t.Fatal("mutated-namespace result survived an explicit DELETE")
	}
	if _, ok := r.results.get(otherKey); !ok {
		t.Fatal("unrelated result was purged by drop")
	}
}

func TestCapacityEvictionPurgesMutatedNamespace(t *testing.T) {
	r := newRegistry(1, 16, nil) // one resident scenario: the next register evicts
	sc, _, err := r.register("a", tinySetting, `S(a).`, chase.Options{})
	if err != nil {
		t.Fatalf("register a: %v", err)
	}
	contentKey := resultKey(sc, "core")
	mutKey := mutatedNamespace("a") + sc.contentID + "\x00v9\x00core"
	r.results.put(contentKey, []byte("cached"))
	r.results.put(mutKey, []byte("stale"))

	// Same content under a different name: a fresh scenario that evicts "a".
	if _, _, err := r.register("b", tinySetting, `S(a).`, chase.Options{}); err != nil {
		t.Fatalf("register b: %v", err)
	}
	if _, err := r.lookup("a"); err == nil {
		t.Fatal("a still resident after capacity eviction")
	}
	if _, ok := r.results.get(mutKey); ok {
		t.Fatal("mutated-namespace result survived the eviction")
	}
	// Content-keyed results are pure functions of (content, version) and
	// deliberately outlive the scenario, so re-registered content re-hits.
	if _, ok := r.results.get(contentKey); !ok {
		t.Fatal("content-keyed result should survive a capacity eviction")
	}
}
