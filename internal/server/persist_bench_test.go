package server

// Paged vs resident query latency for BENCH_8.json: what a request pays
// when its scenario is resident (memoized fixpoint) versus paged out
// (page-in: disk read, decode, engine resume — no re-chase).

import (
	"fmt"
	"testing"

	"repro/internal/chase"
	"repro/internal/store"
)

const benchChainSetting = `
source R0/2.
target T1/2, T2/2, T3/2.
st:
  R0(x,y) -> T1(x,y).
target-deps:
  T1(x,y) -> exists z : T2(y,z).
  T2(x,y) -> exists z : T3(y,z).
`

func benchSource(i int) string {
	return fmt.Sprintf("R0(a%d,b%d). R0(b%d,c%d).", i, i, i, i)
}

func newBenchRegistry(b *testing.B, maxResident, n int) *registry {
	b.Helper()
	st, err := store.Open(b.TempDir(), store.Options{Fsync: store.SyncOff})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	r := newRegistry(maxResident, 4096, st)
	for i := 0; i < n; i++ {
		if _, _, err := r.register(fmt.Sprintf("b%d", i), benchChainSetting, benchSource(i), chase.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	return r
}

// BenchmarkQueryResident: the scenario is in RAM with its chase result
// memoized — a lookup plus a memo read.
func BenchmarkQueryResident(b *testing.B) {
	const n = 16
	r := newBenchRegistry(b, n+1, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := r.lookup(fmt.Sprintf("b%d", i%n))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sc.chaseFor(chase.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryPaged: residency 1, so every lookup of the alternating
// pair evicts the other (page-out) and rehydrates from disk (page-in,
// resuming the persisted fixpoint instead of re-chasing).
func BenchmarkQueryPaged(b *testing.B) {
	r := newBenchRegistry(b, 1, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := r.lookup(fmt.Sprintf("b%d", i%2))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sc.chaseFor(chase.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
