package server

// Cluster routing: every member (node or router) serves the full HTTP API
// at any entry point. Requests scoped to a scenario the consistent-hash
// ring places elsewhere are forwarded verbatim to the owning node over the
// ordinary client API, so the owner's single-flight memos and base_version
// optimistic concurrency apply no matter where a request enters — a stale
// mutation 409s identically through any member.
//
// The routing key is the scenario ID. Auto-named registrations get a
// content-derived pinned name ("c" + contentID) assigned by the entry
// member before routing, so unnamed scenarios are placed content-addressed
// and re-registering the same content through any entry lands on the same
// owner and dedupes there. Mutated scenarios keep their ID, hence their
// owner.
//
// Forwarded read results are replicated: the owner tags every cacheable
// response with an ETag derived from its result key (content identity +
// version + endpoint + params), members cache {etag, body} in their local
// result LRU, and later forwards revalidate with If-None-Match. A 304
// serves the local copy (cluster_cache_hits); a mutation bumps the version
// on the owner, changes the ETag, and the next revalidation replaces the
// stale replica — no invalidation traffic exists or is needed.
//
// Loops cannot happen while members agree on the peer list; the hop-count
// header bounds the damage when they do not (a rolling reconfiguration,
// say): a request bouncing between disagreeing rings dies with 508
// forward_loop instead of circulating.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/server/api"
	"repro/internal/server/client"
	"repro/internal/status"
)

// hopHeader carries the forward count. Absent or zero on client requests;
// each forward increments it, and a member that receives a request at the
// ring's hop bound refuses it as a loop.
const hopHeader = "X-Dx-Hops"

// epochHeader carries the sender's committed membership epoch on every
// forwarded request and every cluster-mode response; fromHeader carries
// the forwarding member's base URL. A member that sees a higher epoch
// than its own fetches the newer view from the sender (membership
// catch-up) — the epoch-comparison replacement for RingVersion drift
// detection.
const (
	epochHeader = "X-Dx-Epoch"
	fromHeader  = "X-Dx-From"
)

// partialHeader lists the unreachable members a GET /v1/scenarios
// aggregation could not include, comma-separated.
const partialHeader = "X-Dx-Partial"

// peerProbeTimeout bounds the /healthz reachability probes.
const peerProbeTimeout = 2 * time.Second

// maxReplicatedBody bounds the forwarded response bodies a member is
// willing to buffer for its replicated cache; larger ones are streamed
// through uncached.
const maxReplicatedBody = 16 << 20

// errForwardLoop is mapped to 508 (code "forward_loop") by internal/status.
var errForwardLoop = status.WithKind(
	fmt.Errorf("forwarding hop bound exceeded: cluster members disagree on the peer list"),
	status.ForwardLoop)

// clusterRoute decides whether this member serves r locally. It returns
// true when it fully handled the request (forwarded it, aggregated it, or
// rejected it); false hands the request to the local mux.
func (s *Server) clusterRoute(w http.ResponseWriter, r *http.Request) bool {
	if strings.HasPrefix(r.URL.Path, "/v1/cluster/") {
		// Membership control plane: always local, and deliberately outside
		// the epoch machinery — a propose must not trigger a catch-up that
		// recursively fetches the view being proposed.
		return false
	}
	s.syncEpoch(r)
	w.Header().Set(epochHeader, strconv.FormatUint(s.cluster.Epoch(), 10))
	hops, err := strconv.Atoi(r.Header.Get(hopHeader))
	if err != nil {
		hops = 0
	}
	if hops >= s.cluster.MaxHops() {
		metrics.ClusterForwardErrors.Inc()
		writeError(w, errForwardLoop)
		return true
	}
	if r.URL.Path == "/v1/scenarios" && r.Method == http.MethodGet {
		if hops > 0 {
			return false // a peer's aggregation sub-request: answer locally
		}
		s.aggregateScenarios(w, r)
		return true
	}
	key, body, cacheKey, ok := s.routingKey(w, r)
	if !ok {
		return true // routingKey already wrote the error
	}
	if key == "" {
		return false // not scenario-scoped (healthz, metricsz, ...)
	}
	if body != nil {
		r.Body = io.NopCloser(bytes.NewReader(body))
	}
	target, local := s.routeTarget(key, hops)
	if local {
		return false
	}
	if s.Draining() {
		writeError(w, fmt.Errorf("%w: draining", errOverloaded))
		return true
	}
	s.forward(w, r, target, body, cacheKey, hops)
	return true
}

// routeTarget decides where key is served. Outside a transfer window this
// is the committed ring. During a window a moving key stays with its old
// owner until its individual handoff lands:
//
//   - the old owner serves it while present, forwards to the new owner
//     once handed off (or never present — a registration that happened
//     after the window opened landed at the new owner);
//   - the new owner serves it once installed; before that, an entry
//     request there chases the old owner, while a forwarded request that
//     still finds nothing answers its local miss (404) instead of
//     bouncing until the hop bound;
//   - everyone else forwards to the old owner.
//
// Reads therefore always observe the single authoritative copy — the old
// owner's until the handoff's acknowledgment, the new owner's after — so
// read-your-writes and the base_version contract hold through the window.
//
// After an abort the same marks keep the live copy routable while the
// reconciliation runs: the committed owner still carries its handed-off
// mark and forwards to the receiver, and the receiver — no longer the
// ring target — serves its received copies until the push-back returns
// them. A present-but-unmarked copy at a window's new owner (an orphan a
// past abort parked, or a mid-window registration) is never served on
// entry: the request chases the committed owner first.
func (s *Server) routeTarget(key string, hops int) (target string, local bool) {
	rt := s.cluster.RouteKey(key)
	self := s.cluster.Self()
	isNode := s.cluster.Role() == cluster.RoleNode
	if rt.Owner == "" {
		// A joiner's pre-join ring is empty. Mid-window its committed ring
		// still is: the proposed ring is all there is.
		if !rt.Moving {
			return "", true // unclustered-in-practice: serve locally
		}
		if isNode && rt.New == self {
			return "", true
		}
		return rt.New, false
	}
	if !rt.Moving {
		if isNode && rt.Owner == self {
			// Post-abort: handed off during the aborted window, push-back
			// still pending — the receiver has the live copy.
			if to := s.handed.get(key); to != "" {
				return to, false
			}
			return "", true
		}
		if isNode && s.received.has(key) && s.reg.present(key) {
			// Post-abort receiver: the copy installed during the aborted
			// window is the live one until the push-back lands.
			return "", true
		}
		return rt.Owner, false
	}
	switch {
	case isNode && rt.Owner == self:
		if s.handed.get(key) != "" {
			return rt.New, false
		}
		if s.reg.present(key) {
			return "", true
		}
		return rt.New, false
	case isNode && rt.New == self:
		if s.received.has(key) && s.reg.present(key) {
			return "", true
		}
		if hops == 0 {
			return rt.Owner, false
		}
		return "", true
	default:
		return rt.Owner, false
	}
}

// syncEpoch adopts a newer view advertised by a forwarding peer before
// routing the request it sent. The catch-up is inline but bounded: one
// flight at a time with a ~1s cap, so a slow or hung peer cannot stall
// the data path for the full RPC timeout. The winning request routes with
// the sender's ring after it; concurrent and timed-out requests proceed
// on the old view, where the hop bound keeps them from circulating.
func (s *Server) syncEpoch(r *http.Request) {
	if s.member == nil {
		return
	}
	e, err := strconv.ParseUint(r.Header.Get(epochHeader), 10, 64)
	if err != nil || e <= s.cluster.Epoch() {
		return
	}
	if from := r.Header.Get(fromHeader); from != "" {
		s.member.CatchUpInline(r.Context(), from)
	}
}

// pinnedBody is a memoized routingKey rewrite for POST /v1/scenarios: the
// routing name plus the body with that name pinned into it.
type pinnedBody struct {
	name string
	body []byte
}

// routingKey extracts the scenario ID a request is scoped to, reading (and
// returning) the body when the scenario is named there. A non-empty
// cacheKey marks the request replicable: a deterministic read whose
// forwarded body may be cached behind ETag revalidation. ok=false means an
// error response was already written.
func (s *Server) routingKey(w http.ResponseWriter, r *http.Request) (key string, body []byte, cacheKey string, ok bool) {
	path := r.URL.Path
	switch {
	case path == "/v1/scenarios" && r.Method == http.MethodPost:
		body, rerr := io.ReadAll(r.Body)
		if rerr != nil {
			writeError(w, status.WithKind(fmt.Errorf("reading request body: %w", rerr), status.Usage))
			return "", nil, "", false
		}
		// The rewrite below is a pure function of the body, so a repeat
		// registration (the cluster steady state: every entry sees the
		// same storm) skips the parse entirely.
		sum := sha256.Sum256(body)
		memoKey := "pin!" + string(sum[:])
		if v, ok := s.pinned.get(memoKey); ok {
			p := v.(pinnedBody)
			return p.name, p.body, "", true
		}
		var req api.RegisterRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, status.WithKind(fmt.Errorf("decoding request body: %w", err), status.Usage))
			return "", nil, "", false
		}
		if req.Name == "" {
			// Pin a content-derived name so the unnamed scenario routes
			// content-addressed; the owner (and every later entry member)
			// re-derives the same name from the same content.
			_, _, _, contentID, err := canonicalContent(req.Setting, req.Source)
			if err != nil {
				writeError(w, err)
				return "", nil, "", false
			}
			req.Name = "c" + contentID
			body, err = json.Marshal(req)
			if err != nil {
				writeError(w, err)
				return "", nil, "", false
			}
		}
		s.pinned.put(memoKey, pinnedBody{name: req.Name, body: body})
		return req.Name, body, "", true

	case strings.HasPrefix(path, "/v1/scenarios/"):
		id := strings.TrimPrefix(path, "/v1/scenarios/")
		id = strings.TrimSuffix(id, "/source/tuples")
		if id == "" || strings.Contains(id, "/") {
			return "", nil, "", true // unknown route: let the mux 404 it
		}
		if r.Method == http.MethodGet && !strings.HasSuffix(path, "/source/tuples") {
			return id, nil, "", true
		}
		b, rerr := io.ReadAll(r.Body)
		if rerr != nil {
			writeError(w, status.WithKind(fmt.Errorf("reading request body: %w", rerr), status.Usage))
			return "", nil, "", false
		}
		return id, b, "", true

	case path == "/v1/chase" || path == "/v1/core" || path == "/v1/cansol" ||
		path == "/v1/exists" || path == "/v1/certain" || path == "/v1/enum":
		b, rerr := io.ReadAll(r.Body)
		if rerr != nil {
			writeError(w, status.WithKind(fmt.Errorf("reading request body: %w", rerr), status.Usage))
			return "", nil, "", false
		}
		var req api.EvalRequest
		if err := json.Unmarshal(b, &req); err != nil || req.Scenario == "" {
			// Let the local handler produce its usual usage error.
			return "", b, "", true
		}
		if path != "/v1/enum" {
			// Result-relevant parameters only: deadlines and budgets change
			// whether a computation finishes, never its value, so they stay
			// out of the replica key exactly as they stay out of the owner's
			// result key.
			cacheKey = "fwd!" + req.Scenario + "\x00" + path + "\x00" + req.Semantics + "\x00" + req.Query
		}
		return req.Scenario, b, cacheKey, true
	}
	return "", nil, "", true
}

// fwdEntry is a replicated result: the owner's response body plus the ETag
// that revalidates it.
type fwdEntry struct {
	etag string
	body []byte
}

// forward relays the request to owner and its response to the caller. For
// replicable reads it first offers the cached replica's ETag; the owner's
// 304 then serves the local copy without moving the body again.
func (s *Server) forward(w http.ResponseWriter, r *http.Request, owner string, body []byte, cacheKey string, hops int) {
	metrics.ClusterForwards.Inc()
	hdr := make(http.Header)
	if ct := r.Header.Get("Content-Type"); ct != "" {
		hdr.Set("Content-Type", ct)
	}
	hdr.Set(hopHeader, strconv.Itoa(hops+1))
	hdr.Set(epochHeader, strconv.FormatUint(s.cluster.Epoch(), 10))
	hdr.Set(fromHeader, s.cluster.Self())
	var replica *fwdEntry
	if cacheKey != "" {
		if v, ok := s.reg.results.get(cacheKey); ok {
			replica = v.(*fwdEntry)
			hdr.Set("If-None-Match", replica.etag)
		}
	}
	resp, err := s.peerClient(owner).Forward(r.Context(), r.Method, r.URL.Path, hdr, body)
	if err != nil {
		metrics.ClusterForwardErrors.Inc()
		if r.Context().Err() != nil {
			writeError(w, err) // classifies as timeout
			return
		}
		writeError(w, status.WithKind(
			fmt.Errorf("owner %s unreachable: %w", owner, err), status.PeerUnavailable))
		return
	}
	defer resp.Body.Close()

	if s.member != nil {
		// The owner's response advertises its committed epoch; adopt a
		// newer view in the background (this request was already answered
		// by a member that routes correctly under it).
		if e, perr := strconv.ParseUint(resp.Header.Get(epochHeader), 10, 64); perr == nil && e > s.cluster.Epoch() {
			go s.member.CatchUp(context.Background(), owner)
		}
	}

	if resp.StatusCode == http.StatusNotModified && replica != nil {
		metrics.ClusterCacheHits.Inc()
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("ETag", replica.etag)
		w.Header().Set("X-Cache", "cluster-hit")
		w.WriteHeader(http.StatusOK)
		w.Write(replica.body)
		return
	}

	etag := resp.Header.Get("ETag")
	if cacheKey != "" && etag != "" && resp.StatusCode == http.StatusOK &&
		resp.ContentLength >= 0 && resp.ContentLength <= maxReplicatedBody {
		b, rerr := io.ReadAll(io.LimitReader(resp.Body, maxReplicatedBody+1))
		if rerr != nil {
			metrics.ClusterForwardErrors.Inc()
			writeError(w, status.WithKind(
				fmt.Errorf("relaying response from %s: %w", owner, rerr), status.PeerUnavailable))
			return
		}
		if len(b) <= maxReplicatedBody {
			s.reg.results.put(cacheKey, &fwdEntry{etag: etag, body: b})
		}
		relayHeaders(w, resp)
		w.WriteHeader(resp.StatusCode)
		w.Write(b)
		return
	}

	// Everything else — errors, mutations, NDJSON streams — relays through
	// uncached, flushing as it goes so /v1/enum stays a stream.
	relayHeaders(w, resp)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				metrics.ServerStreamAborts.Inc()
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr == io.EOF {
			return
		}
		if rerr != nil {
			metrics.ClusterForwardErrors.Inc()
			return
		}
	}
}

// forwardMoved relays a request that raced a handoff — routing said local,
// but by the time the handler held the mutation lock the scenario had been
// pushed to owner. The new owner installed it before the mark was set, so
// the forward lands on live state.
func (s *Server) forwardMoved(w http.ResponseWriter, r *http.Request, owner string, body []byte) {
	hops, err := strconv.Atoi(r.Header.Get(hopHeader))
	if err != nil {
		hops = 0
	}
	if hops >= s.cluster.MaxHops() {
		metrics.ClusterForwardErrors.Inc()
		writeError(w, errForwardLoop)
		return
	}
	s.forward(w, r, owner, body, "", hops)
}

func relayHeaders(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "ETag", "X-Cache"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
}

// peerClient returns (lazily building) the client for a peer's base URL.
// Clients share the configured transport; the default per-request timeout
// caps forwards that would otherwise inherit an unbounded entry context.
func (s *Server) peerClient(base string) *client.Client {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	if c, ok := s.peers[base]; ok {
		return c
	}
	c := client.New(base)
	c.HTTPClient = s.cfg.PeerHTTPClient
	c.Timeout = s.cfg.MaxDeadline + 10*time.Second
	s.peers[base] = c
	return c
}

// resultETag derives the ETag the owner attaches to a cacheable response.
// The result key already embeds everything that determines the body —
// content identity (or mutated-namespace identity), source version,
// endpoint, parameters — and bodies are deterministic functions of it, so
// equal tags imply byte-equal bodies even across owner restarts.
func resultETag(key string) string {
	sum := sha256.Sum256([]byte(key))
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// aggregateScenarios serves GET /v1/scenarios cluster-wide: the union of
// every member's local list (the hop header marks the sub-requests so
// peers answer locally instead of re-aggregating). During a transfer
// window the fan-out covers committed and proposed members alike, so
// already-transferred scenarios are not missed. Unreachable members
// degrade the listing instead of failing it: the merged rest is served
// with the X-Dx-Partial header naming the members that did not answer.
func (s *Server) aggregateScenarios(w http.ResponseWriter, r *http.Request) {
	hdr := make(http.Header)
	hdr.Set(hopHeader, "1")
	var (
		mu   sync.Mutex
		all  []api.ScenarioInfo
		down []string
		seen = make(map[string]bool)
		wg   sync.WaitGroup
	)
	add := func(infos []api.ScenarioInfo) {
		mu.Lock()
		defer mu.Unlock()
		for _, info := range infos {
			if !seen[info.ID] {
				seen[info.ID] = true
				all = append(all, info)
			}
		}
	}
	for _, peer := range s.cluster.AllMembers() {
		if peer == s.cluster.Self() {
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			resp, err := s.peerClient(peer).Forward(r.Context(), http.MethodGet, "/v1/scenarios", hdr, nil)
			if err == nil {
				defer resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					var list api.ScenarioList
					if json.NewDecoder(resp.Body).Decode(&list) == nil {
						add(list.Scenarios)
						return
					}
				}
			}
			mu.Lock()
			down = append(down, peer)
			mu.Unlock()
		}(peer)
	}
	if s.cluster.Role() == cluster.RoleNode {
		ids := s.reg.scenarios.keysMRU()
		local := make([]api.ScenarioInfo, 0, len(ids))
		for _, id := range ids {
			if v, ok := s.reg.scenarios.get(id); ok {
				local = append(local, s.scenarioInfo(v.(*scenario)))
			}
		}
		add(local)
	}
	wg.Wait()
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	if len(down) > 0 {
		sort.Strings(down)
		w.Header().Set(partialHeader, strings.Join(down, ","))
	}
	writeJSON(w, http.StatusOK, api.ScenarioList{Scenarios: all})
}

// clusterHealth fills the /healthz cluster section. Entry requests probe
// every peer concurrently (bounded by peerProbeTimeout); probe requests —
// marked by the hop header — skip probing so health checks do not cascade.
func (s *Server) clusterHealth(r *http.Request) *api.ClusterHealth {
	ch := &api.ClusterHealth{
		Role:        s.cluster.Role().String(),
		Self:        s.cluster.Self(),
		RingVersion: s.cluster.RingVersion(),
		Epoch:       s.cluster.Epoch(),
	}
	if s.member != nil {
		vi := s.member.ViewInfo()
		ch.Transition = vi.Transition
		ch.TransfersInFlight = s.member.InFlight()
	}
	if h := r.Header.Get(hopHeader); h != "" && h != "0" {
		return ch
	}
	hdr := make(http.Header)
	hdr.Set(hopHeader, "1")
	peers := s.cluster.AllMembers()
	ch.Peers = make([]api.PeerStatus, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		ch.Peers[i].URL = peer
		if peer == s.cluster.Self() {
			ch.Peers[i].Reachable = true
			ch.Peers[i].RingVersion = s.cluster.RingVersion()
			continue
		}
		wg.Add(1)
		go func(st *api.PeerStatus, peer string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), peerProbeTimeout)
			defer cancel()
			resp, err := s.peerClient(peer).Forward(ctx, http.MethodGet, "/healthz", hdr, nil)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var h api.Health
			if json.NewDecoder(resp.Body).Decode(&h) != nil {
				return
			}
			st.Reachable = true
			if h.Cluster != nil {
				st.RingVersion = h.Cluster.RingVersion
			}
		}(&ch.Peers[i], peer)
	}
	wg.Wait()
	return ch
}
