package server_test

// Durable-store end-to-end tests: clean restart with zero WAL replay,
// crash recovery equivalence against an uninterrupted run, optimistic
// concurrency surviving a restart, and paging beyond the resident bound
// with byte-identical answers.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/hom"
	"repro/internal/parser"
	"repro/internal/server"
	"repro/internal/server/api"
	"repro/internal/server/client"
	"repro/internal/store"
)

func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{Fsync: store.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func sourceN(i int) string {
	return fmt.Sprintf("M(a%d,b%d). N(a%d,b%d). N(a%d,c%d).", i, i, i, i, i, i)
}

func TestDurableCleanRestartZeroReplay(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	st1 := openTestStore(t, dir)
	srv1, ts1, c1 := newTestServer(t, server.Config{Store: st1})
	var chased [3]api.ChaseResponse
	for i := range chased {
		info, err := c1.Register(ctx, api.RegisterRequest{
			Name: fmt.Sprintf("sc%d", i), Setting: quickstartSetting, Source: sourceN(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !info.Chased {
			t.Fatalf("sc%d not eagerly chased: %+v", i, info)
		}
		if chased[i], err = c1.Chase(ctx, api.EvalRequest{Scenario: fmt.Sprintf("sc%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	mres, err := c1.Insert(ctx, "sc1", api.MutateRequest{Tuples: "M(zz,ww)."})
	if err != nil {
		t.Fatal(err)
	}
	srv1.BeginDrain()
	if err := srv1.CloseStore(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	st2 := openTestStore(t, dir)
	if r := st2.Stats().Replayed; r != 0 {
		t.Fatalf("restart after clean shutdown replayed %d WAL records, want 0", r)
	}
	if st2.Stats().Scenarios != 3 {
		t.Fatalf("recovered %d scenarios, want 3", st2.Stats().Scenarios)
	}
	_, _, c2 := newTestServer(t, server.Config{Store: st2})

	// Unmutated scenarios answer byte-identically: the persisted fixpoint is
	// resumed, not re-derived.
	for _, i := range []int{0, 2} {
		res, err := c2.Chase(ctx, api.EvalRequest{Scenario: fmt.Sprintf("sc%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Universal != chased[i].Universal || res.Steps != chased[i].Steps {
			t.Fatalf("sc%d chase diverged across clean restart:\n was %+v\n now %+v", i, chased[i], res)
		}
	}
	// The mutated scenario kept its version and identity.
	info, err := c2.Scenario(ctx, "sc1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != mres.Version {
		t.Fatalf("sc1 recovered at version %d, want %d", info.Version, mres.Version)
	}
	// Re-registering identical content dedupes against the recovered catalog.
	again, err := c2.Register(ctx, api.RegisterRequest{Setting: quickstartSetting, Source: sourceN(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Existing || again.ID != "sc0" {
		t.Fatalf("content dedup lost across restart: %+v", again)
	}
}

// TestDurableConflictAcrossRestart is the optimistic-concurrency
// regression: mutate, restart, and a base_version pinned to the stale
// version must still be rejected with 409/conflict.
func TestDurableConflictAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	st1 := openTestStore(t, dir)
	_, ts1, c1 := newTestServer(t, server.Config{Store: st1})
	info, err := c1.Register(ctx, api.RegisterRequest{Name: "s", Setting: quickstartSetting, Source: sourceN(0)})
	if err != nil {
		t.Fatal(err)
	}
	mres, err := c1.Insert(ctx, "s", api.MutateRequest{Tuples: "M(p,q).", BaseVersion: info.Version})
	if err != nil {
		t.Fatal(err)
	}
	// Crash: no CloseStore, no snapshot — recovery comes from the WAL.
	ts1.Close()

	st2 := openTestStore(t, dir)
	if st2.Stats().Replayed == 0 {
		t.Fatal("crash restart should have replayed WAL records")
	}
	_, _, c2 := newTestServer(t, server.Config{Store: st2})

	var apiErr *client.APIError
	if _, err := c2.Insert(ctx, "s", api.MutateRequest{Tuples: "M(r,t).", BaseVersion: info.Version}); !errors.As(err, &apiErr) || apiErr.Code != "conflict" {
		t.Fatalf("stale base_version after restart: want conflict, got %v", err)
	}
	if _, err := c2.Insert(ctx, "s", api.MutateRequest{Tuples: "M(r,t).", BaseVersion: mres.Version}); err != nil {
		t.Fatalf("current base_version after restart rejected: %v", err)
	}
}

// TestDurableCrashMatchesUninterrupted drives the same workload against a
// crashed-and-recovered server and an uninterrupted in-memory one:
// certain-answer and existence responses must be byte-identical, chase
// results homomorphically equivalent.
func TestDurableCrashMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	const n = 4
	q := `q(x,y) :- E(x,y).`

	register := func(c *client.Client) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := c.Register(ctx, api.RegisterRequest{
				Name: fmt.Sprintf("w%d", i), Setting: quickstartSetting, Source: sourceN(i),
			}); err != nil {
				t.Fatal(err)
			}
		}
		// Mutate half of them so recovery exercises both the resume path
		// (clean fixpoint) and the fold-and-re-chase path.
		for i := 0; i < n; i += 2 {
			if _, err := c.Insert(ctx, fmt.Sprintf("w%d", i), api.MutateRequest{
				Tuples: fmt.Sprintf("M(extra%d,b%d). N(extra%d,b%d).", i, i, i, i),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	st1 := openTestStore(t, dir)
	_, ts1, c1 := newTestServer(t, server.Config{Store: st1})
	register(c1)
	ts1.Close() // crash: nothing flushed beyond the appends themselves

	st2 := openTestStore(t, dir)
	_, _, crashed := newTestServer(t, server.Config{Store: st2})
	_, _, mem := newTestServer(t, server.Config{})
	register(mem)

	for i := 0; i < n; i++ {
		id := fmt.Sprintf("w%d", i)
		gotC, err := crashed.Certain(ctx, api.EvalRequest{Scenario: id, Query: q, Semantics: "certain-cup"})
		if err != nil {
			t.Fatal(err)
		}
		wantC, err := mem.Certain(ctx, api.EvalRequest{Scenario: id, Query: q, Semantics: "certain-cup"})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(gotC.Answers) != fmt.Sprint(wantC.Answers) {
			t.Fatalf("%s certain answers diverged: %v vs %v", id, gotC.Answers, wantC.Answers)
		}
		gotE, err := crashed.Exists(ctx, api.EvalRequest{Scenario: id})
		if err != nil {
			t.Fatal(err)
		}
		wantE, err := mem.Exists(ctx, api.EvalRequest{Scenario: id})
		if err != nil {
			t.Fatal(err)
		}
		if gotE.Exists != wantE.Exists {
			t.Fatalf("%s exists diverged", id)
		}
		gotU, err := crashed.Chase(ctx, api.EvalRequest{Scenario: id})
		if err != nil {
			t.Fatal(err)
		}
		wantU, err := mem.Chase(ctx, api.EvalRequest{Scenario: id})
		if err != nil {
			t.Fatal(err)
		}
		a, err := parser.ParseInstance(gotU.Universal)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parser.ParseInstance(wantU.Universal)
		if err != nil {
			t.Fatal(err)
		}
		// Universal solutions are unique up to homomorphic equivalence, and
		// their cores up to isomorphism.
		if !hom.Exists(a, b) || !hom.Exists(b, a) {
			t.Fatalf("%s chase results not hom-equivalent:\n%s\nvs\n%s", id, gotU.Universal, wantU.Universal)
		}
		gotCore, err := crashed.Core(ctx, api.EvalRequest{Scenario: id})
		if err != nil {
			t.Fatal(err)
		}
		wantCore, err := mem.Core(ctx, api.EvalRequest{Scenario: id})
		if err != nil {
			t.Fatal(err)
		}
		ac, err := parser.ParseInstance(gotCore.Instance)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := parser.ParseInstance(wantCore.Instance)
		if err != nil {
			t.Fatal(err)
		}
		if !hom.Isomorphic(ac, bc) {
			t.Fatalf("%s cores not isomorphic:\n%s\nvs\n%s", id, gotCore.Instance, wantCore.Instance)
		}
	}
}

// TestDurablePagingBeyondResidency registers more scenarios than the
// resident bound; evicted ones must page out and answer identically when
// paged back in.
func TestDurablePagingBeyondResidency(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	const n = 6

	st := openTestStore(t, dir)
	srv, _, c := newTestServer(t, server.Config{Store: st, MaxScenarios: 2})
	first := make([]api.ChaseResponse, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("p%d", i)
		if _, err := c.Register(ctx, api.RegisterRequest{Name: id, Setting: quickstartSetting, Source: sourceN(i)}); err != nil {
			t.Fatal(err)
		}
		var err error
		if first[i], err = c.Chase(ctx, api.EvalRequest{Scenario: id}); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Scenarios() > 2 {
		t.Fatalf("resident bound not enforced: %d", srv.Scenarios())
	}
	if st.Stats().Scenarios != n {
		t.Fatalf("catalog lost scenarios: %d, want %d", st.Stats().Scenarios, n)
	}
	for i := 0; i < n; i++ {
		res, err := c.Chase(ctx, api.EvalRequest{Scenario: fmt.Sprintf("p%d", i)})
		if err != nil {
			t.Fatalf("p%d after paging: %v", i, err)
		}
		if res.Universal != first[i].Universal {
			t.Fatalf("p%d answer changed after page-out/page-in:\n%s\nvs\n%s", i, res.Universal, first[i].Universal)
		}
	}
	// DELETE must remove a paged-out scenario from the catalog too.
	if err := c.Delete(ctx, "p0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Chase(ctx, api.EvalRequest{Scenario: "p0"}); err == nil {
		t.Fatal("deleted scenario still answers")
	}
	if st.Has("p0") {
		t.Fatal("deleted scenario still cataloged")
	}
}

// TestMemoryOnlyUnchanged: without a store the health endpoint does not
// advertise durability and unknown scenarios still 404.
func TestMemoryOnlyUnchanged(t *testing.T) {
	ctx := context.Background()
	_, _, c := newTestServer(t, server.Config{})
	registerQuickstart(t, c, "mem")
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Durable || h.StoreScenarios != 0 || h.Recovering {
		t.Fatalf("memory-only server advertises durability: %+v", h)
	}
	var apiErr *client.APIError
	if _, err := c.Chase(ctx, api.EvalRequest{Scenario: "nope"}); !errors.As(err, &apiErr) || apiErr.Code != "unknown_scenario" {
		t.Fatalf("want unknown_scenario, got %v", err)
	}
}
