package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestGateSlotsAndQueue(t *testing.T) {
	g := newGate(1, 1)
	ctx := context.Background()

	if err := g.acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if got := g.inFlight.Load(); got != 1 {
		t.Fatalf("inFlight = %d, want 1", got)
	}

	// Second caller queues; third is rejected while the queue is full.
	queued := make(chan error, 1)
	go func() {
		queued <- g.acquire(ctx)
	}()
	waitFor(t, func() bool { return g.queued.Load() == 1 })

	if err := g.acquire(ctx); !errors.Is(err, errOverloaded) {
		t.Fatalf("third acquire = %v, want errOverloaded", err)
	}

	// Releasing the slot admits the queued caller.
	g.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	g.release()
	if got := g.inFlight.Load(); got != 0 {
		t.Fatalf("inFlight after releases = %d, want 0", got)
	}
}

func TestGateQueuedCallerHonoursDeadline(t *testing.T) {
	g := newGate(1, 4)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.release()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire under expired deadline = %v, want DeadlineExceeded", err)
	}
	if got := g.queued.Load(); got != 0 {
		t.Fatalf("queued counter leaked: %d", got)
	}
}

func TestGateZeroQueueRejectsImmediately(t *testing.T) {
	g := newGate(1, 0)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.release()
	if err := g.acquire(context.Background()); !errors.Is(err, errOverloaded) {
		t.Fatalf("acquire with zero queue = %v, want errOverloaded", err)
	}
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}
