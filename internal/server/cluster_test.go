package server_test

// Cluster end-to-end tests: several real dxserver members on loopback
// listeners, every request entering through different members. The
// properties under test are exactly the ones the routing layer promises —
// answers are byte-identical regardless of entry point, optimistic
// concurrency 409s through any entry, replicated caches revalidate instead
// of serving stale bodies, and disagreeing rings die with 508 instead of
// looping.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/server/api"
	"repro/internal/server/client"
)

type member struct {
	url string
	srv *server.Server
	cli *client.Client
}

// startCluster boots n data nodes (plus optionally one router) sharing a
// peer list, each serving on its own loopback listener.
func startCluster(t *testing.T, n int, withRouter bool, base server.Config) (nodes []member, router *member) {
	t.Helper()
	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		peers[i] = "http://" + l.Addr().String()
	}
	start := func(l net.Listener, self string) member {
		cl, err := cluster.New(cluster.Config{Self: self, Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.Cluster = cl
		srv := server.New(cfg)
		hs := &http.Server{Handler: srv}
		go hs.Serve(l)
		t.Cleanup(func() { hs.Close() })
		return member{url: self, srv: srv, cli: client.New(self)}
	}
	for i, l := range listeners {
		nodes = append(nodes, start(l, peers[i]))
	}
	if withRouter {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		m := start(l, "http://"+l.Addr().String())
		router = &m
	}
	return nodes, router
}

// rawDo sends a request and returns status, headers and the full body.
func rawDo(t *testing.T, method, url, body string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// ownerOf recomputes a key's owner from the peer list — the ring is pure
// computation, so the test can predict placement without asking anyone.
func ownerOf(t *testing.T, nodes []member, key string) int {
	t.Helper()
	peers := make([]string, len(nodes))
	for i, n := range nodes {
		peers[i] = n.url
	}
	owner := cluster.NewRing(peers, 0).Owner(key)
	for i, n := range nodes {
		if n.url == owner {
			return i
		}
	}
	t.Fatalf("owner %s not among members", owner)
	return -1
}

func TestClusterByteIdenticalThroughEveryEntry(t *testing.T) {
	nodes, router := startCluster(t, 3, true, server.Config{})
	ctx := context.Background()

	// Register through the router; the auto name becomes content-pinned.
	info, err := router.cli.Register(ctx, api.RegisterRequest{
		Setting: quickstartSetting, Source: quickstartSource,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(info.ID, "c") {
		t.Fatalf("cluster registration got name %q, want content-pinned c<hash>", info.ID)
	}
	// Re-registering the identical content through a different entry lands
	// on the same owner and dedupes there.
	again, err := nodes[1].cli.Register(ctx, api.RegisterRequest{
		Setting: quickstartSetting, Source: quickstartSource,
	})
	if err != nil || !again.Existing || again.ID != info.ID {
		t.Fatalf("re-register through node1 = %+v, %v; want existing %s", again, err, info.ID)
	}

	entries := append([]member{*router}, nodes...)
	evalBody := fmt.Sprintf(`{"scenario":%q}`, info.ID)
	for _, path := range []string{"/v1/chase", "/v1/core", "/v1/cansol", "/v1/certain", "/v1/enum"} {
		body := evalBody
		if path == "/v1/certain" {
			body = fmt.Sprintf(`{"scenario":%q,"query":"q(x) :- E(x,y)."}`, info.ID)
		}
		var first []byte
		for i, e := range entries {
			code, _, got := rawDo(t, http.MethodPost, e.url+path, body)
			if code != http.StatusOK {
				t.Fatalf("%s via entry %d: status %d: %s", path, i, code, got)
			}
			if i == 0 {
				first = got
			} else if !bytes.Equal(got, first) {
				t.Fatalf("%s differs between entries:\n%s\nvs\n%s", path, first, got)
			}
		}
	}

	// The aggregated listing shows the scenario from every entry.
	for i, e := range entries {
		list, err := e.cli.Scenarios(ctx)
		if err != nil {
			t.Fatalf("list via entry %d: %v", i, err)
		}
		found := false
		for _, sc := range list.Scenarios {
			if sc.ID == info.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("entry %d listing misses %s: %+v", i, info.ID, list)
		}
	}
}

func TestClusterConflictThroughAnyEntry(t *testing.T) {
	nodes, _ := startCluster(t, 3, false, server.Config{})
	ctx := context.Background()

	info, err := nodes[0].cli.Register(ctx, api.RegisterRequest{
		Setting: quickstartSetting, Source: quickstartSource,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A conditional mutation through one non-owner entry succeeds...
	res, err := nodes[1].cli.Insert(ctx, info.ID, api.MutateRequest{
		Tuples: "M(c,d).", BaseVersion: info.Version,
	})
	if err != nil {
		t.Fatalf("mutation via node1: %v", err)
	}
	if res.Version == info.Version {
		t.Fatalf("version did not advance: %+v", res)
	}
	// ...and replaying the same stale base through every other entry 409s
	// identically, because the owner's version check is the only one there
	// is.
	for i := range nodes {
		_, err := nodes[i].cli.Insert(ctx, info.ID, api.MutateRequest{
			Tuples: "M(e,f).", BaseVersion: info.Version,
		})
		wantAPIError(t, err, "conflict", http.StatusConflict)
	}
	// The fresh version works again, through yet another entry.
	if _, err := nodes[2].cli.Insert(ctx, info.ID, api.MutateRequest{
		Tuples: "M(e,f).", BaseVersion: res.Version,
	}); err != nil {
		t.Fatalf("mutation at fresh version: %v", err)
	}
}

func TestClusterReplicatedCacheRevalidates(t *testing.T) {
	nodes, _ := startCluster(t, 3, false, server.Config{})
	ctx := context.Background()

	info, err := nodes[0].cli.Register(ctx, api.RegisterRequest{
		Setting: quickstartSetting, Source: quickstartSource,
	})
	if err != nil {
		t.Fatal(err)
	}
	owner := ownerOf(t, nodes, info.ID)
	entry := nodes[(owner+1)%len(nodes)] // guaranteed non-owner

	body := fmt.Sprintf(`{"scenario":%q}`, info.ID)
	before := metrics.Read()

	// First forwarded read populates the entry's replica.
	code, hdr, b1 := rawDo(t, http.MethodPost, entry.url+"/v1/chase", body)
	if code != http.StatusOK {
		t.Fatalf("first read: %d %s", code, b1)
	}
	if hdr.Get("ETag") == "" {
		t.Fatal("forwarded response carries no ETag")
	}
	// Second read revalidates: the owner answers 304 and the entry serves
	// its local copy.
	code, hdr, b2 := rawDo(t, http.MethodPost, entry.url+"/v1/chase", body)
	if code != http.StatusOK || !bytes.Equal(b1, b2) {
		t.Fatalf("revalidated read differs: %d\n%s\nvs\n%s", code, b1, b2)
	}
	if hdr.Get("X-Cache") != "cluster-hit" {
		t.Fatalf("X-Cache = %q, want cluster-hit", hdr.Get("X-Cache"))
	}
	if d := metrics.Read().Diff(before); d["cluster_cache_hits"] == 0 {
		t.Fatalf("cluster_cache_hits did not advance: %v", d)
	}

	// A mutation through a third entry bumps the version on the owner; the
	// stale replica must miss its revalidation and refresh, never serve.
	if _, err := nodes[(owner+2)%len(nodes)].cli.Insert(ctx, info.ID, api.MutateRequest{
		Tuples: "M(x9,y9).",
	}); err != nil {
		t.Fatal(err)
	}
	code, hdr, b3 := rawDo(t, http.MethodPost, entry.url+"/v1/chase", body)
	if code != http.StatusOK {
		t.Fatalf("post-mutation read: %d %s", code, b3)
	}
	if hdr.Get("X-Cache") == "cluster-hit" {
		t.Fatal("stale replica served as cluster-hit after a mutation")
	}
	if bytes.Equal(b3, b1) {
		t.Fatal("post-mutation body identical to pre-mutation body")
	}
	// And the refreshed replica revalidates again.
	code, hdr, b4 := rawDo(t, http.MethodPost, entry.url+"/v1/chase", body)
	if code != http.StatusOK || hdr.Get("X-Cache") != "cluster-hit" || !bytes.Equal(b3, b4) {
		t.Fatalf("refreshed replica does not revalidate: %d %q", code, hdr.Get("X-Cache"))
	}
}

// TestClusterForwardLoopCut wires two members with disagreeing peer lists —
// each believes the other owns everything — and checks the hop bound turns
// the would-be infinite loop into a 508 forward_loop error.
func TestClusterForwardLoopCut(t *testing.T) {
	lA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	urlA, urlB := "http://"+lA.Addr().String(), "http://"+lB.Addr().String()
	start := func(l net.Listener, self string, peers []string) *client.Client {
		cl, err := cluster.New(cluster.Config{Self: self, Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(server.Config{Cluster: cl})
		hs := &http.Server{Handler: srv}
		go hs.Serve(l)
		t.Cleanup(func() { hs.Close() })
		return client.New(self)
	}
	cliA := start(lA, urlA, []string{urlB}) // A routes everything to B
	start(lB, urlB, []string{urlA})         // B routes everything to A

	_, err = cliA.Chase(context.Background(), api.EvalRequest{Scenario: "anything"})
	wantAPIError(t, err, "forward_loop", 508)
}

func TestClusterHealthz(t *testing.T) {
	nodes, router := startCluster(t, 2, true, server.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	h, err := router.cli.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Cluster == nil || h.Cluster.Role != "router" {
		t.Fatalf("router health = %+v", h.Cluster)
	}
	if len(h.Cluster.Peers) != 2 {
		t.Fatalf("peers = %+v", h.Cluster.Peers)
	}
	for _, p := range h.Cluster.Peers {
		if !p.Reachable {
			t.Fatalf("peer %s unreachable", p.URL)
		}
		if p.RingVersion != h.Cluster.RingVersion {
			t.Fatalf("ring drift: peer %s has %s, we have %s", p.URL, p.RingVersion, h.Cluster.RingVersion)
		}
	}
	hn, err := nodes[0].cli.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hn.Cluster == nil || hn.Cluster.Role != "node" || hn.Cluster.Self != nodes[0].url {
		t.Fatalf("node health = %+v", hn.Cluster)
	}
}
