package server

import (
	"container/list"
	"sync"

	"repro/internal/metrics"
)

// lru is a mutex-guarded least-recently-used map with a fixed capacity.
// It bounds the registry's resident scenarios and the result cache; every
// capacity eviction is counted in metrics.ServerEvictions.
type lru struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent; values are *lruEntry
	m   map[string]*list.Element

	// onEvict, when set, observes every entry leaving the cache — capacity
	// evictions, remove and removeIf alike (the registry uses it to drop a
	// scenario's cached results alongside the scenario, whichever path
	// removed it). Invoked outside the lru lock; it must not call back into
	// the same lru.
	onEvict func(key string, value any)
}

type lruEntry struct {
	key   string
	value any
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the value and marks the key most recently used.
func (c *lru) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

// put inserts or refreshes the key, evicting the least recently used entry
// when over capacity.
func (c *lru) put(key string, value any) {
	var evicted []*lruEntry
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).value = value
		c.ll.MoveToFront(el)
	} else {
		c.m[key] = c.ll.PushFront(&lruEntry{key: key, value: value})
		for c.ll.Len() > c.cap {
			back := c.ll.Back()
			e := back.Value.(*lruEntry)
			c.ll.Remove(back)
			delete(c.m, e.key)
			evicted = append(evicted, e)
		}
	}
	c.mu.Unlock()
	for _, e := range evicted {
		metrics.ServerEvictions.Inc()
		if c.onEvict != nil {
			c.onEvict(e.key, e.value)
		}
	}
}

// remove deletes the key if present and hands it to onEvict. The removal was
// requested rather than forced by capacity, so no eviction is counted.
func (c *lru) remove(key string) bool {
	c.mu.Lock()
	el, ok := c.m[key]
	if !ok {
		c.mu.Unlock()
		return false
	}
	e := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.m, key)
	c.mu.Unlock()
	if c.onEvict != nil {
		c.onEvict(e.key, e.value)
	}
	return true
}

// removeIf deletes every entry whose key satisfies pred, handing each removed
// entry to onEvict once the lock is released.
func (c *lru) removeIf(pred func(key string) bool) {
	var removed []*lruEntry
	c.mu.Lock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*lruEntry)
		if pred(e.key) {
			c.ll.Remove(el)
			delete(c.m, e.key)
			removed = append(removed, e)
		}
		el = next
	}
	c.mu.Unlock()
	if c.onEvict != nil {
		for _, e := range removed {
			c.onEvict(e.key, e.value)
		}
	}
}

// len returns the number of resident entries.
func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// keysMRU returns the keys from most to least recently used.
func (c *lru) keysMRU() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry).key)
	}
	return out
}
