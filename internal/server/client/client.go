// Package client is a small Go client for dxserver's HTTP/JSON API. It
// speaks exactly the wire types of internal/server/api and surfaces the
// server's error envelope as *APIError values, so callers can branch on
// the machine-readable code ("timeout", "no_solution", ...) that
// internal/status assigns.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/server/api"
)

// Client calls a dxserver instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient is the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
	// Timeout, when positive, bounds each request that arrives with no
	// context deadline of its own. A caller-supplied deadline always wins.
	Timeout time.Duration
}

// New returns a client for the server at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// APIError is a non-2xx server response.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %s (%d): %s", e.Code, e.StatusCode, e.Message)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// withDeadline applies the client's default Timeout when ctx carries no
// deadline. The returned cancel must be called once the response body is
// fully consumed.
func (c *Client) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.Timeout <= 0 {
		return ctx, func() {}
	}
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.Timeout)
}

// do posts in (when non-nil) to path and decodes the response into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	resp, err := c.roundTrip(ctx, method, path, in)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) roundTrip(ctx context.Context, method, path string, in any) (*http.Response, error) {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return nil, err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// Surface cancellation and deadline expiry as the context's own
		// error so callers (and status.Classify) see context.Canceled /
		// DeadlineExceeded instead of a transport-specific wrapper.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, fmt.Errorf("client: %s %s: %w", method, path, ctxErr)
		}
		return nil, err
	}
	return resp, nil
}

// Forward relays a raw request to the server: cluster members use it to
// hand a scenario-scoped request to its owning node without re-encoding
// it. The response is returned verbatim — non-2xx statuses included, so
// the peer's error envelope (a 409 on a stale base_version, say) passes
// through to the original caller unchanged. Transport-level failures are
// retried with backoff; HTTP responses never are. Close the response body
// to release the request's deadline resources.
func (c *Client) Forward(ctx context.Context, method, path string, header http.Header, body []byte) (*http.Response, error) {
	ctx, cancel := c.withDeadline(ctx)
	var lastErr error
	for attempt := 0; attempt < forwardAttempts; attempt++ {
		if attempt > 0 {
			sleep := forwardBackoff << (attempt - 1)
			if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= sleep {
				// The caller's remaining deadline is smaller than the
				// backoff: sleeping would convert a retryable transport
				// error into a guaranteed deadline expiry. Retry
				// immediately instead — the attempt is cheap and might
				// still land inside the budget.
				sleep = 0
			}
			if sleep > 0 {
				select {
				case <-ctx.Done():
					cancel()
					return nil, fmt.Errorf("client: forward %s %s: %w", method, path, ctx.Err())
				case <-time.After(sleep):
				}
			} else if ctxErr := ctx.Err(); ctxErr != nil {
				cancel()
				return nil, fmt.Errorf("client: forward %s %s: %w", method, path, ctxErr)
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			cancel()
			return nil, err
		}
		for k, vs := range header {
			req.Header[k] = vs
		}
		resp, err := c.httpClient().Do(req)
		if err == nil {
			resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
			return resp, nil
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			cancel()
			return nil, fmt.Errorf("client: forward %s %s: %w", method, path, ctxErr)
		}
		lastErr = err
	}
	cancel()
	return nil, fmt.Errorf("client: forward %s %s: %d attempts failed: %w", method, path, forwardAttempts, lastErr)
}

const forwardAttempts = 3

const forwardBackoff = 25 * time.Millisecond

// cancelOnClose ties a response body to the deadline context that produced
// it, so the timer is released when the caller finishes reading.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelOnClose) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// checkStatus converts a non-2xx response into an *APIError, consuming the
// body.
func checkStatus(resp *http.Response) error {
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil
	}
	defer io.Copy(io.Discard, resp.Body)
	var envelope api.Error
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		return &APIError{StatusCode: resp.StatusCode, Code: "internal",
			Message: fmt.Sprintf("undecodable error body: %v", err)}
	}
	return &APIError{StatusCode: resp.StatusCode, Code: envelope.Err.Code, Message: envelope.Err.Message}
}

// Register registers (or dedupes) a scenario.
func (c *Client) Register(ctx context.Context, req api.RegisterRequest) (api.ScenarioInfo, error) {
	var out api.ScenarioInfo
	err := c.do(ctx, http.MethodPost, "/v1/scenarios", req, &out)
	return out, err
}

// Scenarios lists the registered scenarios.
func (c *Client) Scenarios(ctx context.Context) (api.ScenarioList, error) {
	var out api.ScenarioList
	err := c.do(ctx, http.MethodGet, "/v1/scenarios", nil, &out)
	return out, err
}

// Scenario fetches one scenario's info.
func (c *Client) Scenario(ctx context.Context, id string) (api.ScenarioInfo, error) {
	var out api.ScenarioInfo
	err := c.do(ctx, http.MethodGet, "/v1/scenarios/"+id, nil, &out)
	return out, err
}

// Delete removes a scenario and its cached results.
func (c *Client) Delete(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/scenarios/"+id, nil, nil)
}

// Insert adds source tuples to a live scenario (delta-chased
// incrementally when the scenario's setting allows it).
func (c *Client) Insert(ctx context.Context, id string, req api.MutateRequest) (api.MutateResponse, error) {
	var out api.MutateResponse
	err := c.do(ctx, http.MethodPost, "/v1/scenarios/"+id+"/source/tuples", req, &out)
	return out, err
}

// Remove deletes source tuples from a live scenario (retracting their
// derived consequences via the justification graph when possible).
func (c *Client) Remove(ctx context.Context, id string, req api.MutateRequest) (api.MutateResponse, error) {
	var out api.MutateResponse
	err := c.do(ctx, http.MethodDelete, "/v1/scenarios/"+id+"/source/tuples", req, &out)
	return out, err
}

// Chase runs (or serves the cached) standard chase.
func (c *Client) Chase(ctx context.Context, req api.EvalRequest) (api.ChaseResponse, error) {
	var out api.ChaseResponse
	err := c.do(ctx, http.MethodPost, "/v1/chase", req, &out)
	return out, err
}

// Core computes the minimal CWA-solution (the core).
func (c *Client) Core(ctx context.Context, req api.EvalRequest) (api.InstanceResponse, error) {
	var out api.InstanceResponse
	err := c.do(ctx, http.MethodPost, "/v1/core", req, &out)
	return out, err
}

// CanSol computes the canonical solution.
func (c *Client) CanSol(ctx context.Context, req api.EvalRequest) (api.InstanceResponse, error) {
	var out api.InstanceResponse
	err := c.do(ctx, http.MethodPost, "/v1/cansol", req, &out)
	return out, err
}

// Exists decides Existence-of-CWA-Solutions.
func (c *Client) Exists(ctx context.Context, req api.EvalRequest) (api.ExistsResponse, error) {
	var out api.ExistsResponse
	err := c.do(ctx, http.MethodPost, "/v1/exists", req, &out)
	return out, err
}

// Certain computes certain/maybe answers under the requested semantics.
func (c *Client) Certain(ctx context.Context, req api.EvalRequest) (api.CertainResponse, error) {
	var out api.CertainResponse
	err := c.do(ctx, http.MethodPost, "/v1/certain", req, &out)
	return out, err
}

// Enum streams CWA-solutions, invoking f per solution, and returns the
// final summary line.
func (c *Client) Enum(ctx context.Context, req api.EvalRequest, f func(api.EnumSolution) error) (api.EnumSummary, error) {
	var summary api.EnumSummary
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	resp, err := c.roundTrip(ctx, http.MethodPost, "/v1/enum", req)
	if err != nil {
		return summary, err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return summary, err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var sum api.EnumSummary
		if json.Unmarshal(line, &sum) == nil && sum.Done {
			summary = sum
			continue
		}
		var sol api.EnumSolution
		if err := json.Unmarshal(line, &sol); err != nil {
			return summary, fmt.Errorf("client: bad NDJSON line %q: %w", line, err)
		}
		if f != nil {
			if err := f(sol); err != nil {
				return summary, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return summary, err
	}
	if !summary.Done {
		return summary, fmt.Errorf("client: enum stream ended without a summary line")
	}
	return summary, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (api.Health, error) {
	var out api.Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// Metrics fetches the raw /metricsz text dump.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	resp, err := c.roundTrip(ctx, http.MethodGet, "/metricsz", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return "", err
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
