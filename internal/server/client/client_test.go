package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestForwardRelaysVerbatim checks Forward passes method, path, headers and
// body through unchanged and returns non-2xx responses rather than turning
// them into errors — the owner's 409 envelope must reach the original
// caller byte-for-byte.
func TestForwardRelaysVerbatim(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/chase" {
			t.Errorf("got %s %s", r.Method, r.URL.Path)
		}
		if got := r.Header.Get("X-Dx-Hops"); got != "2" {
			t.Errorf("hop header = %q", got)
		}
		w.WriteHeader(http.StatusConflict)
		fmt.Fprint(w, `{"error":{"code":"conflict","message":"stale"}}`)
	}))
	defer srv.Close()

	c := New(srv.URL)
	hdr := http.Header{}
	hdr.Set("X-Dx-Hops", "2")
	resp, err := c.Forward(context.Background(), http.MethodPost, "/v1/chase", hdr, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409 relayed", resp.StatusCode)
	}
}

// TestForwardRetriesTransportErrors starts the backend only after the
// first connection attempt has failed, so a successful Forward proves the
// retry loop re-sent the (replayable) body.
func TestForwardRetriesTransportErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	// Grab the address, then close the listener so attempt 1 is refused.
	addr := srv.Listener.Addr().String()
	srv.Listener.Close()

	c := New("http://" + addr)
	done := make(chan error, 1)
	go func() {
		resp, err := c.Forward(context.Background(), http.MethodGet, "/healthz", nil, nil)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// While Forward is backing off, bring the server up on the same port.
	time.Sleep(5 * time.Millisecond)
	srv2 := startServerAt(t, addr, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer srv2.Close()
	if err := <-done; err != nil {
		t.Fatalf("forward did not recover across retries: %v", err)
	}
	if calls.Load() == 0 {
		t.Fatal("backend never saw the retried request")
	}
}

func startServerAt(t *testing.T, addr string, h http.Handler) *httptest.Server {
	t.Helper()
	for i := 0; i < 50; i++ {
		l, err := net.Listen("tcp", addr)
		if err != nil {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		srv := httptest.NewUnstartedServer(h)
		srv.Listener.Close()
		srv.Listener = l
		srv.Start()
		return srv
	}
	t.Skip("could not rebind test port")
	return nil
}

// TestForwardBackoffRespectsDeadline checks the retry loop does not sleep
// past the caller's deadline: with a deadline smaller than the scheduled
// backoff the retries run immediately, so every attempt is tried and the
// call returns around the deadline — not after backoff-sum milliseconds
// of guaranteed-futile sleeping.
func TestForwardBackoffRespectsDeadline(t *testing.T) {
	// A refused port: every attempt fails at the transport layer.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	c := New("http://" + addr)
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Forward(ctx, http.MethodGet, "/healthz", nil, nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("forward to a dead port succeeded")
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline expired before the attempts ran (%v after %v): backoff slept past the deadline", err, elapsed)
	}
	// All three attempts against a refused connection fail in microseconds;
	// the full backoff schedule would sleep 25ms+50ms. Anything well under
	// the first backoff step proves the sleeps were skipped.
	if elapsed > 100*time.Millisecond {
		t.Fatalf("forward took %v, want immediate retries under a 40ms deadline", elapsed)
	}
}

// TestForwardCanceledDoesNotLeak cancels a forward stuck on a slow backend
// and checks the error surfaces as context.Canceled and that no goroutines
// are left behind once the backend unblocks.
func TestForwardCanceledDoesNotLeak(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(release)

	before := runtime.NumGoroutine()
	c := New(srv.URL)
	c.Timeout = time.Minute // default deadline must not mask the cancel
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Forward(ctx, http.MethodPost, "/v1/core", nil, []byte(`{}`))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled forward never returned")
	}
	// The transport goroutines must wind down; poll briefly since the
	// runtime reclaims them asynchronously.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestDefaultTimeoutApplies checks Timeout bounds requests whose context
// has no deadline, surfacing context.DeadlineExceeded.
func TestDefaultTimeoutApplies(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.Timeout = 30 * time.Millisecond
	start := time.Now()
	_, err := c.Health(context.Background())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout fired after %v, want ~30ms", elapsed)
	}
	// A caller deadline wins over the default.
	c.Timeout = time.Hour
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.Health(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("caller deadline not honored: %v", err)
	}
}
