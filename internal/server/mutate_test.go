package server_test

// End-to-end tests of the live-mutation surface: POST/DELETE
// /v1/scenarios/{id}/source/tuples maintain the scenario's chase result
// incrementally, bump the version, invalidate exactly the stale cached
// results, reject version conflicts with 409, and stay data-race-free
// while /v1/enum streams concurrently.

import (
	"context"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/hom"
	"repro/internal/parser"
	"repro/internal/server"
	"repro/internal/server/api"
)

func TestMutateEndToEnd(t *testing.T) {
	_, _, c := newTestServer(t, server.Config{})
	ctx := context.Background()

	info := registerQuickstart(t, c, "live")
	if !info.Incremental {
		t.Fatalf("quickstart scenario should be incrementally maintainable: %+v", info)
	}
	if info.Version == 0 {
		t.Fatalf("fresh scenario has version 0: %+v", info)
	}

	before, err := c.Certain(ctx, api.EvalRequest{
		Scenario: "live", Query: `q(x,y) :- E(x,y).`, Semantics: "certain-cup",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Answers) != 1 {
		t.Fatalf("certain⊔ before mutation = %v", before.Answers)
	}

	// Insert a new M edge: the delta chase derives E(c,d) without a full
	// re-chase, and the version advances by exactly the one atom.
	mut, err := c.Insert(ctx, "live", api.MutateRequest{Tuples: `M(c,d).`})
	if err != nil {
		t.Fatal(err)
	}
	if mut.Inserted != 1 || mut.Deleted != 0 || mut.Version != info.Version+1 {
		t.Fatalf("insert = %+v, want 1 insert at version %d", mut, info.Version+1)
	}
	if mut.Fallback {
		t.Fatalf("single insert fell back to full re-chase: %+v", mut)
	}

	after, err := c.Certain(ctx, api.EvalRequest{
		Scenario: "live", Query: `q(x,y) :- E(x,y).`, Semantics: "certain-cup",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Answers) != 2 {
		t.Fatalf("certain⊔ after insert = %v, want the new edge too", after.Answers)
	}

	// Deleting the inserted atom restores the original state (modulo null
	// names): the justification graph retracts the derived E(c,d).
	mut, err = c.Remove(ctx, "live", api.MutateRequest{Tuples: `M(c,d).`})
	if err != nil {
		t.Fatal(err)
	}
	if mut.Deleted != 1 || mut.Inserted != 0 {
		t.Fatalf("remove = %+v, want 1 delete", mut)
	}
	core, err := c.Core(ctx, api.EvalRequest{Scenario: "live"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := parser.ParseInstance(core.Instance)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := parser.ParseInstance(`E(a,b). F(a,_1). G(_1,_2).`)
	if !hom.Isomorphic(got, want) {
		t.Fatalf("core after insert+delete round-trip = %s", core.Instance)
	}

	// Mutating an atom that is already present / absent is a no-op that
	// does not advance the version.
	v := mut.Version
	mut, err = c.Insert(ctx, "live", api.MutateRequest{Tuples: `M(a,b).`})
	if err != nil || mut.Inserted != 0 || mut.Version != v {
		t.Fatalf("duplicate insert = %+v, %v; want no-op at version %d", mut, err, v)
	}
}

func TestMutateVersionConflict409(t *testing.T) {
	_, _, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	info := registerQuickstart(t, c, "cas")

	// Correct base version succeeds; the stale one is rejected with 409
	// and applies nothing.
	mut, err := c.Insert(ctx, "cas", api.MutateRequest{Tuples: `M(x1,y1).`, BaseVersion: info.Version})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Insert(ctx, "cas", api.MutateRequest{Tuples: `M(x2,y2).`, BaseVersion: info.Version})
	wantAPIError(t, err, "conflict", 409)
	cur, err := c.Scenario(ctx, "cas")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Version != mut.Version {
		t.Fatalf("rejected mutation moved the version: %d != %d", cur.Version, mut.Version)
	}
}

func TestMutateBadRequests(t *testing.T) {
	_, _, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	registerQuickstart(t, c, "bad")

	for name, tuples := range map[string]string{
		"unknown relation": `Zed(a).`,
		"target relation":  `E(a,b).`,
		"wrong arity":      `M(a).`,
		"nulls":            `M(a,_1).`,
	} {
		_, err := c.Insert(ctx, "bad", api.MutateRequest{Tuples: tuples})
		if err == nil {
			t.Fatalf("%s: accepted %q", name, tuples)
		}
		wantAPIError(t, err, "usage", 400)
	}
	// A rejected batch must not have touched the scenario.
	info, err := c.Scenario(ctx, "bad")
	if err != nil || info.SourceAtoms != 3 {
		t.Fatalf("scenario after rejected batches = %+v, %v", info, err)
	}
	_, err = c.Insert(ctx, "ghost", api.MutateRequest{Tuples: `M(a,b).`})
	wantAPIError(t, err, "unknown_scenario", 404)
}

// TestMutateCacheInvalidation is the satellite acceptance: result-cache
// keys carry the source version, so a mutation makes every stale entry
// unreachable — the same request that hit before the mutation misses after
// it and returns the new state.
func TestMutateCacheInvalidation(t *testing.T) {
	_, ts, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	registerQuickstart(t, c, "inv")

	const body = `{"scenario":"inv"}`
	post := func() (string, string) {
		resp, err := ts.Client().Post(ts.URL+"/v1/chase", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		return resp.Header.Get("X-Cache"), string(b)
	}

	cache1, body1 := post()
	cache2, body2 := post()
	if cache1 != "miss" || cache2 != "hit" || body1 != body2 {
		t.Fatalf("pre-mutation X-Cache sequence = %q, %q", cache1, cache2)
	}
	if _, err := c.Insert(ctx, "inv", api.MutateRequest{Tuples: `N(q,r).`}); err != nil {
		t.Fatal(err)
	}
	cache3, body3 := post()
	if cache3 != "miss" {
		t.Fatalf("post-mutation request served from cache: %q", cache3)
	}
	if body3 == body1 {
		t.Fatalf("post-mutation chase identical to pre-mutation:\n%s", body3)
	}
	cache4, body4 := post()
	if cache4 != "hit" || body4 != body3 {
		t.Fatalf("new version not cached: %q", cache4)
	}
}

// TestMutateNoSolutionRoundTrip drives a scenario into and out of the
// no-solution state: inserting tuples that make an egd merge two constants
// flips evaluation to 404/no_solution, removing one repairs it.
func TestMutateNoSolutionRoundTrip(t *testing.T) {
	_, _, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	_, err := c.Register(ctx, api.RegisterRequest{
		Name: "egd",
		Setting: `
source W/2.
target F/2.
st:
  s1: W(x,y) -> F(x,y).
target-deps:
  e1: F(x,y) & F(x,z) -> y = z.
`,
		Source: `W(k,a).`,
	})
	if err != nil {
		t.Fatal(err)
	}
	mut, err := c.Insert(ctx, "egd", api.MutateRequest{Tuples: `W(k,b).`})
	if err != nil {
		t.Fatal(err)
	}
	if !mut.NoSolution {
		t.Fatalf("conflicting insert = %+v, want no_solution", mut)
	}
	_, err = c.Chase(ctx, api.EvalRequest{Scenario: "egd"})
	wantAPIError(t, err, "no_solution", 404)

	mut, err = c.Remove(ctx, "egd", api.MutateRequest{Tuples: `W(k,b).`})
	if err != nil {
		t.Fatal(err)
	}
	if mut.NoSolution {
		t.Fatalf("repairing delete = %+v, still no_solution", mut)
	}
	chase, err := c.Chase(ctx, api.EvalRequest{Scenario: "egd"})
	if err != nil {
		t.Fatal(err)
	}
	if chase.Atoms != 1 {
		t.Fatalf("repaired chase = %+v, want the single F atom", chase)
	}
}

// TestMutateNonIncrementalScenario covers settings outside the engine's
// reach (not weakly acyclic): mutations still apply and bump the version,
// reported as fallback, with the chase deferred to later requests.
func TestMutateNonIncrementalScenario(t *testing.T) {
	_, _, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	info, err := c.Register(ctx, api.RegisterRequest{
		Name: "cyclic",
		Setting: `
source R/2.
target T/2.
st:
  s1: R(x,y) -> T(x,y).
target-deps:
  t1: T(x,y) -> exists z : T(y,z).
`,
		Source: `R(a,b).`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.WeaklyAcyclic || info.Incremental || info.Chased {
		t.Fatalf("cyclic scenario info = %+v", info)
	}
	mut, err := c.Insert(ctx, "cyclic", api.MutateRequest{Tuples: `R(b,c).`})
	if err != nil {
		t.Fatal(err)
	}
	if !mut.Fallback || mut.Inserted != 1 || mut.Version != info.Version+1 {
		t.Fatalf("non-incremental mutation = %+v", mut)
	}
	got, err := c.Scenario(ctx, "cyclic")
	if err != nil || got.SourceAtoms != 2 {
		t.Fatalf("scenario after mutation = %+v, %v", got, err)
	}
}

// TestMutateRegisterInteraction: once mutated, a scenario no longer
// answers for its registered content — re-registering the original content
// must create a fresh scenario, not return the mutated one.
func TestMutateRegisterInteraction(t *testing.T) {
	_, _, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	registerQuickstart(t, c, "orig")
	if _, err := c.Insert(ctx, "orig", api.MutateRequest{Tuples: `M(zz,ww).`}); err != nil {
		t.Fatal(err)
	}
	again, err := c.Register(ctx, api.RegisterRequest{Setting: quickstartSetting, Source: quickstartSource})
	if err != nil {
		t.Fatal(err)
	}
	if again.Existing || again.ID == "orig" {
		t.Fatalf("registration after mutation returned the mutated scenario: %+v", again)
	}
	// Registering the mutated name with the original content is a content
	// mismatch now.
	_, err = c.Register(ctx, api.RegisterRequest{Name: "orig", Setting: quickstartSetting, Source: quickstartSource})
	wantAPIError(t, err, "usage", 400)
}

// TestMutateWhileEnumStreams races mutation batches against streaming
// /v1/enum and /v1/certain evaluation. Run under -race (make race-server)
// this verifies the snapshot discipline: evaluations work off immutable
// source/solution snapshots while mutations swap pointers underneath.
func TestMutateWhileEnumStreams(t *testing.T) {
	_, _, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	registerQuickstart(t, c, "race")

	// Mutations stick to M tuples: d1 copies them verbatim, so the null
	// count (and with it the enum/certain enumeration cost) stays flat
	// while the chase state still churns every round.
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, 3*rounds)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := c.Insert(ctx, "race", api.MutateRequest{Tuples: `M(r1,r2). M(r3,r4).`}); err != nil {
				errs <- err
				return
			}
			if _, err := c.Remove(ctx, "race", api.MutateRequest{Tuples: `M(r1,r2). M(r3,r4).`}); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := c.Enum(ctx, api.EvalRequest{Scenario: "race", Max: 8}, nil); err != nil {
				errs <- err
				return
			}
			if _, err := c.Certain(ctx, api.EvalRequest{
				Scenario: "race", Query: `q(x,y) :- E(x,y).`, Semantics: "maybe-cup",
			}); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
