package server

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/metrics"
)

// errOverloaded is returned by the admission gate when every worker slot is
// busy and the wait queue is full; the handler maps it to HTTP 503.
var errOverloaded = errors.New("server: overloaded (no worker slot, queue full)")

// gate is the bounded-concurrency admission control in front of the
// evaluation endpoints: at most `slots` requests evaluate concurrently, at
// most `queueDepth` more wait for a slot (counting their wait against their
// own deadline), and everything beyond that is rejected immediately rather
// than piling up — the server sheds load instead of collapsing under it.
type gate struct {
	slots      chan struct{}
	queueDepth int64
	queued     atomic.Int64
	inFlight   atomic.Int64
}

func newGate(maxConcurrent, queueDepth int) *gate {
	g := &gate{slots: make(chan struct{}, maxConcurrent), queueDepth: int64(queueDepth)}
	for i := 0; i < maxConcurrent; i++ {
		g.slots <- struct{}{}
	}
	return g
}

// acquire takes a worker slot, waiting in the bounded queue if none is
// free. It returns errOverloaded when the queue is full, or the context's
// error if the caller's deadline expires while queued. On success the
// caller must release().
func (g *gate) acquire(ctx context.Context) error {
	select {
	case <-g.slots:
		g.inFlight.Add(1)
		return nil
	default:
	}
	if g.queued.Add(1) > g.queueDepth {
		g.queued.Add(-1)
		metrics.ServerRejected.Inc()
		return errOverloaded
	}
	defer g.queued.Add(-1)
	select {
	case <-g.slots:
		g.inFlight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns the slot taken by acquire.
func (g *gate) release() {
	g.inFlight.Add(-1)
	g.slots <- struct{}{}
}
