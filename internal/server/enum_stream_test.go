package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/metrics"
)

// quickstart-style setting with three CWA-solutions, so the enum stream has
// multiple lines and an abort between line 1 and line 2 is observable.
const abortSetting = `
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
target-deps:
  d3: F(y,x) -> exists z : G(x,z).
  d4: F(x,y) & F(x,z) -> y = z.
`

// cancelAfterFirstWrite simulates a client that disconnects mid-stream: the
// first body write (the first NDJSON solution line) cancels the request
// context, so the handler's ctx.Done() check fires before the second line.
type cancelAfterFirstWrite struct {
	rec    *httptest.ResponseRecorder
	cancel context.CancelFunc
	writes int
}

func (c *cancelAfterFirstWrite) Header() http.Header  { return c.rec.Header() }
func (c *cancelAfterFirstWrite) WriteHeader(code int) { c.rec.WriteHeader(code) }

func (c *cancelAfterFirstWrite) Write(p []byte) (int, error) {
	c.writes++
	if c.writes == 1 {
		c.cancel()
	}
	return c.rec.Write(p)
}

func TestEnumStreamAbortsOnClientDisconnect(t *testing.T) {
	s := New(Config{})
	if _, _, err := s.reg.register("qs", abortSetting, `M(a,b). N(a,b). N(a,c).`, chase.Options{}); err != nil {
		t.Fatalf("register: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest("POST", "/v1/enum", strings.NewReader(`{"scenario":"qs","max":10}`)).WithContext(ctx)
	w := &cancelAfterFirstWrite{rec: httptest.NewRecorder(), cancel: cancel}

	before := metrics.ServerStreamAborts.Load()
	s.ServeHTTP(w, req)

	if got := metrics.ServerStreamAborts.Load() - before; got != 1 {
		t.Fatalf("server_stream_aborts rose by %d, want 1", got)
	}
	if w.rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (abort happens after the header)", w.rec.Code)
	}
	body := w.rec.Body.String()
	if n := strings.Count(body, "\n"); n != 1 {
		t.Fatalf("stream has %d lines, want exactly 1 before the abort:\n%s", n, body)
	}
	if strings.Contains(body, `"done"`) {
		t.Fatalf("aborted stream still carries the summary line:\n%s", body)
	}
}
