// Package api defines the JSON wire types of dxserver's HTTP interface.
// Both internal/server (the handlers) and internal/server/client (the Go
// client) marshal exactly these structs, so the two sides cannot drift.
//
// Instances travel as text in the syntax parser.ParseInstance accepts and
// parser.FormatInstance emits; settings in the syntax parser.ParseSetting
// accepts and parser.FormatSetting emits. Queries are UCQ rules
// ("q(x) :- E(x,y).") or, prefixed by their free-variable tuple, FO
// formulas ("(x) . Pp(x) | ...").
package api

// RegisterRequest registers a scenario: a setting plus a source instance,
// parsed, validated and (for weakly acyclic settings) chased once so later
// requests reuse the compiled plans and the cached chase result.
type RegisterRequest struct {
	// Name is the scenario identifier used by later requests. Optional: an
	// empty name gets a generated one ("s1", "s2", ...).
	Name string `json:"name,omitempty"`
	// Setting is the data exchange setting text.
	Setting string `json:"setting"`
	// Source is the source instance text.
	Source string `json:"source"`
	// MaxSteps bounds the registration chase (0 = server default). It does
	// not constrain later requests, which carry their own budgets.
	MaxSteps int `json:"max_steps,omitempty"`
}

// ScenarioInfo describes a registered scenario.
type ScenarioInfo struct {
	ID            string `json:"id"`
	WeaklyAcyclic bool   `json:"weakly_acyclic"`
	RichlyAcyclic bool   `json:"richly_acyclic"`
	// SourceAtoms is the size of the source instance.
	SourceAtoms int `json:"source_atoms"`
	// Chased reports whether the registration chase ran (weakly acyclic
	// settings only) and its result is cached.
	Chased bool `json:"chased"`
	// ChaseSteps and UniversalAtoms describe the cached chase result when
	// Chased is true.
	ChaseSteps     int `json:"chase_steps,omitempty"`
	UniversalAtoms int `json:"universal_atoms,omitempty"`
	// Existing reports that registration found a scenario with identical
	// content (same setting text, same source atom set) and returned it
	// instead of creating a duplicate.
	Existing bool `json:"existing,omitempty"`
	// Version is the scenario's source version. It advances by one for
	// every source atom a mutation actually inserts or removes; mutation
	// requests may pin it via base_version for optimistic concurrency.
	Version uint64 `json:"version"`
	// Incremental reports that source mutations are maintained by the
	// incremental delta-chase engine rather than by full re-chase.
	Incremental bool `json:"incremental,omitempty"`
}

// ScenarioList is the GET /v1/scenarios response.
type ScenarioList struct {
	Scenarios []ScenarioInfo `json:"scenarios"`
}

// EvalRequest is the common request body of the evaluation endpoints
// (/v1/chase, /v1/core, /v1/cansol, /v1/exists, /v1/certain, /v1/enum).
type EvalRequest struct {
	// Scenario is the registered scenario ID.
	Scenario string `json:"scenario"`
	// DeadlineMillis is the per-request wall-clock deadline in
	// milliseconds. 0 means the server default; the server caps it at its
	// configured maximum. Expiry returns HTTP 504.
	DeadlineMillis int `json:"deadline_ms,omitempty"`
	// MaxSteps is the chase step budget (0 = server default). Exhaustion
	// returns HTTP 422.
	MaxSteps int `json:"max_steps,omitempty"`
	// Workers is the evaluation parallelism for certain/enum
	// (0 = server default).
	Workers int `json:"workers,omitempty"`

	// Query is the query text (certain only).
	Query string `json:"query,omitempty"`
	// Semantics is certain-cap, certain-cup, maybe-cap or maybe-cup
	// (certain only; default certain-cap).
	Semantics string `json:"semantics,omitempty"`

	// Max bounds the number of solutions streamed by /v1/enum
	// (0 = server default; the server caps it).
	Max int `json:"max,omitempty"`
}

// ChaseResponse is the /v1/chase response.
type ChaseResponse struct {
	Scenario string `json:"scenario"`
	Steps    int    `json:"steps"`
	// Universal is the universal solution (the chase's target reduct) as
	// instance text.
	Universal string `json:"universal"`
	Atoms     int    `json:"atoms"`
}

// InstanceResponse is the /v1/core and /v1/cansol response.
type InstanceResponse struct {
	Scenario string `json:"scenario"`
	// Instance is the computed instance (core or canonical solution) as
	// instance text.
	Instance string `json:"instance"`
	Atoms    int    `json:"atoms"`
}

// ExistsResponse is the /v1/exists response.
type ExistsResponse struct {
	Scenario string `json:"scenario"`
	Exists   bool   `json:"exists"`
}

// CertainResponse is the /v1/certain response. Answers are sorted
// lexicographically, so equal answer sets serialize byte-identically.
type CertainResponse struct {
	Scenario  string     `json:"scenario"`
	Semantics string     `json:"semantics"`
	Query     string     `json:"query"`
	Answers   [][]string `json:"answers"`
}

// EnumSolution is one NDJSON line of the /v1/enum stream.
type EnumSolution struct {
	// Solution is a CWA-solution as instance text.
	Solution string `json:"solution"`
	Atoms    int    `json:"atoms"`
}

// EnumSummary is the final NDJSON line of the /v1/enum stream.
type EnumSummary struct {
	Done      bool `json:"done"`
	Count     int  `json:"count"`
	Truncated bool `json:"truncated"`
}

// MutateRequest is the body of the mutation endpoints
// (POST /v1/scenarios/{id}/source/tuples inserts the tuples,
// DELETE /v1/scenarios/{id}/source/tuples removes them).
type MutateRequest struct {
	// Tuples is the instance text of the source atoms to insert or remove
	// (e.g. "M(a,b). N(a,c)."). Atoms must be null-free and over source
	// relations.
	Tuples string `json:"tuples"`
	// BaseVersion, when non-zero, is the scenario version this mutation
	// was prepared against. A mismatch with the current version rejects
	// the batch with HTTP 409 (code "conflict") and applies nothing; zero
	// applies unconditionally.
	BaseVersion uint64 `json:"base_version,omitempty"`
	// DeadlineMillis and MaxSteps bound the maintenance chase the mutation
	// triggers, like their EvalRequest counterparts.
	DeadlineMillis int `json:"deadline_ms,omitempty"`
	MaxSteps       int `json:"max_steps,omitempty"`
}

// MutateResponse reports what a mutation batch did.
type MutateResponse struct {
	Scenario string `json:"scenario"`
	// Version is the scenario version after the batch.
	Version uint64 `json:"version"`
	// Inserted and Deleted count the source atoms actually changed (net of
	// duplicates and absent deletions).
	Inserted int `json:"inserted"`
	Deleted  int `json:"deleted"`
	// Fallback reports that the batch was resolved by a full re-chase
	// instead of incremental maintenance (egd merges, non-conjunctive
	// s-t bodies, or a scenario without an engine).
	Fallback bool `json:"fallback,omitempty"`
	// NoSolution reports that the mutated source has no solution (an egd
	// failed). The mutation is applied regardless; evaluation endpoints
	// return no_solution until a later mutation repairs the source.
	NoSolution bool `json:"no_solution,omitempty"`
	// Steps counts the chase steps the maintenance cost (delta steps when
	// incremental, the full re-chase when Fallback).
	Steps int `json:"steps,omitempty"`
	// Atoms is the maintained universal solution's size after the batch.
	Atoms int `json:"atoms,omitempty"`
}

// Health is the GET /healthz response.
type Health struct {
	Status    string `json:"status"`
	Scenarios int    `json:"scenarios"`
	// InFlight is the number of admitted evaluation requests currently
	// executing.
	InFlight int `json:"in_flight"`
	// Draining reports that the server is shutting down and rejecting new
	// work.
	Draining bool `json:"draining"`
	// Durable reports that a durable store backs the server; the fields
	// below are only meaningful when it is true.
	Durable bool `json:"durable,omitempty"`
	// StoreScenarios is the durable catalog size — every registered
	// scenario, resident in RAM or paged to disk.
	StoreScenarios int `json:"store_scenarios,omitempty"`
	// Replayed is the number of WAL records replayed at the last boot; 0
	// after a clean shutdown.
	Replayed int `json:"replayed,omitempty"`
	// Recovering reports that boot-time rehydration is still warming the
	// resident set. Requests are served throughout.
	Recovering bool `json:"recovering,omitempty"`
	// Cluster describes this member's cluster view; absent on single-node
	// servers.
	Cluster *ClusterHealth `json:"cluster,omitempty"`
}

// ClusterHealth is the cluster section of /healthz.
type ClusterHealth struct {
	// Role is "node" (owns a ring segment) or "router" (forwards
	// everything).
	Role string `json:"role"`
	// Self is this member's advertised base URL.
	Self string `json:"self"`
	// RingVersion fingerprints the peer-list configuration; members with
	// identical peer lists report identical versions, so a diff across
	// nodes exposes configuration drift.
	RingVersion string `json:"ring_version"`
	// Epoch is the committed membership epoch of this member's ring view.
	// Members converge on equal epochs; a lagging one catches up from the
	// first forward it sees.
	Epoch uint64 `json:"epoch"`
	// Transition is "stable" outside a membership transfer window and
	// "proposed" while one is open on this member.
	Transition string `json:"transition,omitempty"`
	// TransfersInFlight counts scenario handoffs this member is currently
	// pushing to new owners.
	TransfersInFlight int `json:"transfers_in_flight,omitempty"`
	// Peers reports each ring member's reachability, probed at request
	// time. Probe sub-requests skip this section, so health checks do not
	// cascade.
	Peers []PeerStatus `json:"peers,omitempty"`
}

// PeerStatus is one peer's probed state.
type PeerStatus struct {
	URL       string `json:"url"`
	Reachable bool   `json:"reachable"`
	// RingVersion is the peer's own reported fingerprint; a mismatch with
	// ours means disagreeing peer lists.
	RingVersion string `json:"ring_version,omitempty"`
}

// Error is the JSON error envelope every non-2xx response carries.
type Error struct {
	Err ErrorBody `json:"error"`
}

// ErrorBody is the inner error object.
type ErrorBody struct {
	// Code is the machine-readable classification from internal/status:
	// no_solution, usage, timeout, budget_exceeded, too_large, internal —
	// plus the server-side codes unknown_scenario and overloaded.
	Code    string `json:"code"`
	Message string `json:"message"`
}
