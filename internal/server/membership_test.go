package server_test

// Membership end-to-end tests: real dxserver members on loopback
// listeners growing and shrinking while clients keep hammering them. The
// properties under test are the ISSUE's acceptance bars — a node joins a
// loaded cluster and only the scenarios whose ring owner changed move,
// every request issued during the transition window succeeds, a drained
// member hands off everything it owns, a dead owner surfaces as a 502
// without leaking goroutines, and the aggregated listing degrades to an
// explicit partial answer instead of an error.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/server/api"
	"repro/internal/server/client"
)

// registerN registers n distinct scenarios through rotating entries and
// returns their ids.
func registerN(t *testing.T, nodes []member, n int) []string {
	t.Helper()
	ctx := context.Background()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		src := fmt.Sprintf("M(a%d,b%d). N(a%d,b%d). N(a%d,c%d).", i, i, i, i, i, i)
		info, err := nodes[i%len(nodes)].cli.Register(ctx, api.RegisterRequest{
			Name: fmt.Sprintf("mem%02d", i), Setting: quickstartSetting, Source: src,
		})
		if err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
		ids = append(ids, info.ID)
	}
	return ids
}

// movedBetween returns the ids whose ring owner differs between the two
// peer lists — the exact set a transition must transfer.
func movedBetween(ids, oldPeers, newPeers []string) []string {
	oldRing := cluster.NewRing(oldPeers, 0)
	newRing := cluster.NewRing(newPeers, 0)
	var moved []string
	for _, id := range ids {
		if oldRing.Owner(id) != newRing.Owner(id) {
			moved = append(moved, id)
		}
	}
	return moved
}

// TestMembershipJoinUnderLoad is the acceptance experiment: a fourth node
// joins a loaded three-node cluster while readers and a writer keep
// issuing requests through every entry. Zero requests may fail, only the
// scenarios whose owner changed may transfer, and a write acknowledged
// during the window must be readable through any entry afterwards.
func TestMembershipJoinUnderLoad(t *testing.T) {
	nodes, _ := startCluster(t, 3, false, server.Config{})
	ids := registerN(t, nodes, 32)
	oldPeers := []string{nodes[0].url, nodes[1].url, nodes[2].url}

	// Background load: two readers and one unconditional writer, each
	// rotating through all three static entries. Every error is fatal to
	// the test — the transition window must be invisible to clients.
	var (
		loadErr  error
		errOnce  sync.Once
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		fail     = func(err error) { errOnce.Do(func() { loadErr = err }) }
		loadCtx  = context.Background()
		versions sync.Map // id -> latest acked version
	)
	wg.Add(3)
	for r := 0; r < 2; r++ {
		go func(seed int) {
			defer wg.Done()
			for i := seed; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[i%len(ids)]
				entry := nodes[i%len(nodes)]
				if _, err := entry.cli.Scenario(loadCtx, id); err != nil {
					fail(fmt.Errorf("read %s via %s: %w", id, entry.url, err))
					return
				}
			}
		}(r)
	}
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := ids[i%len(ids)]
			entry := nodes[(i+1)%len(nodes)]
			res, err := entry.cli.Insert(loadCtx, id, api.MutateRequest{
				Tuples: fmt.Sprintf("M(w%d,w%d).", i, i+1),
			})
			if err != nil {
				fail(fmt.Errorf("write %d to %s via %s: %w", i, id, entry.url, err))
				return
			}
			// Read-your-writes through a different entry, immediately —
			// including while the scenario is mid-handoff.
			got, err := nodes[(i+2)%len(nodes)].cli.Scenario(loadCtx, id)
			if err != nil {
				fail(fmt.Errorf("read-after-write %s: %w", id, err))
				return
			}
			if got.Version < res.Version {
				fail(fmt.Errorf("read-your-writes violated on %s: wrote %d, read %d", id, res.Version, got.Version))
				return
			}
			versions.Store(id, res.Version)
		}
	}()
	// Let the load warm up before the topology changes under it.
	time.Sleep(50 * time.Millisecond)

	// Boot the fourth node joining: empty epoch-0 ring, then the live
	// handoff against the seed.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := "http://" + l.Addr().String()
	jc, err := cluster.NewJoining(self, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	joiner := member{url: self, srv: server.New(server.Config{Cluster: jc}), cli: client.New(self)}
	hs := &http.Server{Handler: joiner.srv}
	go hs.Serve(l)
	t.Cleanup(func() { hs.Close() })

	before := metrics.Read()
	joinCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := joiner.srv.JoinCluster(joinCtx, nodes[0].url); err != nil {
		t.Fatalf("join: %v", err)
	}

	// Keep the load running a moment past the commit, then stop and check
	// nothing ever failed.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if loadErr != nil {
		t.Fatalf("request failed during the membership transition: %v", loadErr)
	}

	// Every member — the joiner included — reports the committed epoch 2
	// with no transition or in-flight transfers left.
	all := append(append([]member(nil), nodes...), joiner)
	for i, m := range all {
		h, err := m.cli.Health(context.Background())
		if err != nil {
			t.Fatalf("health via %d: %v", i, err)
		}
		if h.Cluster == nil || h.Cluster.Epoch != 2 {
			t.Fatalf("member %d: cluster health %+v, want epoch 2", i, h.Cluster)
		}
		if h.Cluster.Transition != "" && h.Cluster.Transition != "stable" {
			t.Fatalf("member %d still reports transition %q", i, h.Cluster.Transition)
		}
		if h.Cluster.TransfersInFlight != 0 {
			t.Fatalf("member %d reports %d transfers in flight after commit", i, h.Cluster.TransfersInFlight)
		}
	}

	// Exactly the scenarios whose owner changed moved: consistent hashing
	// puts that around 1/(n+1) of the keys, and certainly at most half.
	newPeers := append(append([]string(nil), oldPeers...), self)
	wantMoved := movedBetween(ids, oldPeers, newPeers)
	d := metrics.Read().Diff(before)
	if got := d["membership_transfers"]; got != int64(len(wantMoved)) {
		t.Fatalf("membership_transfers advanced by %d, want exactly the %d moved scenarios", got, len(wantMoved))
	}
	if len(wantMoved) == 0 || len(wantMoved) > len(ids)/2 {
		t.Fatalf("degenerate ring split: %d/%d scenarios moved", len(wantMoved), len(ids))
	}
	if d["membership_joins"] == 0 {
		t.Fatalf("membership_joins did not advance: %v", d)
	}
	if d["membership_transfer_bytes"] == 0 {
		t.Fatalf("membership_transfer_bytes did not advance: %v", d)
	}

	// Read-your-writes across the window: the last acked version of every
	// scenario is visible through all four entries, including the joiner.
	for _, id := range ids {
		var want uint64
		if v, ok := versions.Load(id); ok {
			want = v.(uint64)
		}
		for i, m := range all {
			got, err := m.cli.Scenario(context.Background(), id)
			if err != nil {
				t.Fatalf("post-join read of %s via %d: %v", id, i, err)
			}
			if got.Version < want {
				t.Fatalf("entry %d lost writes on %s: acked %d, reads %d", i, id, want, got.Version)
			}
		}
	}
}

// TestMembershipDrainLeave drains one member out of a three-node cluster
// and checks it handed off every scenario it owned, the survivors answer
// for everything, and even the departed process still routes requests to
// the new owners.
func TestMembershipDrainLeave(t *testing.T) {
	nodes, _ := startCluster(t, 3, false, server.Config{})
	ids := registerN(t, nodes, 24)
	oldPeers := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	leaver := nodes[2]
	rest := []string{nodes[0].url, nodes[1].url}

	owned := movedBetween(ids, oldPeers, rest)
	for _, id := range owned {
		if cluster.NewRing(oldPeers, 0).Owner(id) != leaver.url {
			t.Fatalf("moved scenario %s was not owned by the leaver", id)
		}
	}

	before := metrics.Read()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := leaver.srv.LeaveCluster(ctx); err != nil {
		t.Fatalf("leave: %v", err)
	}

	d := metrics.Read().Diff(before)
	if got := d["membership_transfers"]; got != int64(len(owned)) {
		t.Fatalf("leave transferred %d scenarios, want all %d the leaver owned", got, len(owned))
	}

	// Every scenario answers through every process — the leaver forwards
	// with its shrunken committed ring rather than serving stale state.
	for _, id := range ids {
		for i, m := range nodes {
			if _, err := m.cli.Scenario(context.Background(), id); err != nil {
				t.Fatalf("post-leave read of %s via %d: %v", id, i, err)
			}
		}
	}
	h, err := nodes[0].cli.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Cluster.Epoch != 2 {
		t.Fatalf("survivor epoch = %d, want 2", h.Cluster.Epoch)
	}
}

// hmember is a cluster member whose http.Server handle the test keeps, so
// it can kill and resurrect the process's listener.
type hmember struct {
	url  string
	addr string
	srv  *server.Server
	cli  *client.Client
	hs   *http.Server
}

func startClusterHandles(t *testing.T, n int, base server.Config) []*hmember {
	t.Helper()
	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		peers[i] = "http://" + l.Addr().String()
	}
	members := make([]*hmember, n)
	for i, l := range listeners {
		cl, err := cluster.New(cluster.Config{Self: peers[i], Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.Cluster = cl
		srv := server.New(cfg)
		hs := &http.Server{Handler: srv}
		go hs.Serve(l)
		m := &hmember{url: peers[i], addr: l.Addr().String(), srv: srv, cli: client.New(peers[i]), hs: hs}
		t.Cleanup(func() { m.hs.Close() })
		members[i] = m
	}
	return members
}

// revive rebinds the member's old address and serves the same server state
// again, as a crashed-and-restarted process would after recovery.
func (m *hmember) revive(t *testing.T) {
	t.Helper()
	var l net.Listener
	var err error
	for i := 0; i < 100; i++ {
		if l, err = net.Listen("tcp", m.addr); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", m.addr, err)
	}
	m.hs = &http.Server{Handler: m.srv}
	go m.hs.Serve(l)
	t.Cleanup(func() { m.hs.Close() })
}

// TestClusterOwnerDeathMidForward kills a scenario's owner and checks a
// forwarded request fails fast with the peer_unavailable envelope, leaks
// no goroutines, and succeeds again once the owner is back.
func TestClusterOwnerDeathMidForward(t *testing.T) {
	members := startClusterHandles(t, 3, server.Config{})
	ctx := context.Background()

	info, err := members[0].cli.Register(ctx, api.RegisterRequest{
		Setting: quickstartSetting, Source: quickstartSource,
	})
	if err != nil {
		t.Fatal(err)
	}
	peers := []string{members[0].url, members[1].url, members[2].url}
	owner := cluster.NewRing(peers, 0).Owner(info.ID)
	var ownerM, entry *hmember
	for _, m := range members {
		if m.url == owner {
			ownerM = m
		} else if entry == nil {
			entry = m
		}
	}

	// Warm the forward path so connection pools exist before the baseline.
	if _, err := entry.cli.Scenario(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	ownerM.hs.Close()
	for i := 0; i < 3; i++ {
		_, err = entry.cli.Scenario(ctx, info.ID)
		wantAPIError(t, err, "peer_unavailable", http.StatusBadGateway)
	}

	// The failed forwards must not strand goroutines: the retry loop and
	// its transport conns wind down once the 502 is written.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+4 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+4 {
		t.Fatalf("goroutines leaked across dead-owner forwards: before=%d after=%d", before, g)
	}

	// Resurrect the owner on the same address: the very same request
	// recovers without any client-side reconfiguration.
	ownerM.revive(t)
	var got api.ScenarioInfo
	for i := 0; ; i++ {
		if got, err = entry.cli.Scenario(ctx, info.ID); err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("owner never recovered: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got.ID != info.ID {
		t.Fatalf("recovered read returned %+v", got)
	}
}

// TestClusterPartialListing kills one member and checks the aggregated
// scenario listing through a live entry degrades gracefully: 200, the
// reachable scenarios merged, and the dead peer named in X-Dx-Partial.
func TestClusterPartialListing(t *testing.T) {
	members := startClusterHandles(t, 3, server.Config{})
	ctx := context.Background()

	// Register until at least two distinct members own a scenario.
	ownersSeen := map[string][]string{}
	peers := []string{members[0].url, members[1].url, members[2].url}
	ring := cluster.NewRing(peers, 0)
	for i := 0; len(ownersSeen) < 2 || i < 4; i++ {
		src := fmt.Sprintf("M(p%d,q%d). N(p%d,q%d). N(p%d,r%d).", i, i, i, i, i, i)
		info, err := members[0].cli.Register(ctx, api.RegisterRequest{
			Name: fmt.Sprintf("part%02d", i), Setting: quickstartSetting, Source: src,
		})
		if err != nil {
			t.Fatal(err)
		}
		o := ring.Owner(info.ID)
		ownersSeen[o] = append(ownersSeen[o], info.ID)
		if i > 64 {
			t.Fatal("could not scatter scenarios over two owners")
		}
	}

	// Kill some member that owns at least one scenario and is not the
	// entry we will list through.
	entry := members[0]
	var victim *hmember
	for _, m := range members[1:] {
		if len(ownersSeen[m.url]) > 0 {
			victim = m
			break
		}
	}
	if victim == nil {
		// Members 1 and 2 own nothing; the entry owns everything, so kill
		// member 1 anyway — the partial header must still name it.
		victim = members[1]
	}
	victim.hs.Close()

	code, hdr, body := rawDo(t, http.MethodGet, entry.url+"/v1/scenarios", "")
	if code != http.StatusOK {
		t.Fatalf("partial listing: status %d: %s", code, body)
	}
	partial := hdr.Get("X-Dx-Partial")
	if !strings.Contains(partial, victim.url) {
		t.Fatalf("X-Dx-Partial = %q, want it to name the dead peer %s", partial, victim.url)
	}
	// Every scenario owned by a live member is still in the merged body.
	for owner, ids := range ownersSeen {
		if owner == victim.url {
			continue
		}
		for _, id := range ids {
			if !strings.Contains(string(body), id) {
				t.Fatalf("live-owned scenario %s missing from partial listing: %s", id, body)
			}
		}
	}
	// A fully-live cluster must not set the header.
	victim.revive(t)
	waitReachable(t, victim.cli)
	code, hdr, body = rawDo(t, http.MethodGet, entry.url+"/v1/scenarios", "")
	if code != http.StatusOK || hdr.Get("X-Dx-Partial") != "" {
		t.Fatalf("recovered listing: status %d partial %q: %s", code, hdr.Get("X-Dx-Partial"), body)
	}
}

// TestMembershipAbortPreservesAcknowledgedWrites opens a join window by
// hand, lets the handoffs land, writes to a moved scenario (the write is
// forwarded to and acknowledged by the would-be new owner), then aborts
// the transition. The write must survive: the receiver pushes its live
// copy back to the committed owner instead of orphaning it, and the old
// owner must not resume serving its stale pre-handoff copy.
func TestMembershipAbortPreservesAcknowledgedWrites(t *testing.T) {
	nodes, _ := startCluster(t, 2, false, server.Config{})
	ids := registerN(t, nodes, 24)
	peers := []string{nodes[0].url, nodes[1].url}

	// Boot the joiner's process but drive the protocol by hand, so the
	// window stays open while the test writes into it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	jURL := "http://" + l.Addr().String()
	jc, err := cluster.NewJoining(jURL, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	joiner := member{url: jURL, srv: server.New(server.Config{Cluster: jc}), cli: client.New(jURL)}
	hs := &http.Server{Handler: joiner.srv}
	go hs.Serve(l)
	t.Cleanup(func() { hs.Close() })

	newPeers := append(append([]string(nil), peers...), jURL)
	moving := movedBetween(ids, peers, newPeers)
	if len(moving) == 0 {
		t.Fatal("no scenario moves to the joiner under the proposed ring")
	}
	target := moving[0]
	all := []string{nodes[0].url, nodes[1].url, jURL}

	before := metrics.Read()
	propose := fmt.Sprintf(
		`{"current":{"epoch":1,"members":[%q,%q]},"proposed":{"epoch":2,"members":[%q,%q,%q]},"coordinator":%q}`,
		peers[0], peers[1], peers[0], peers[1], jURL, nodes[0].url)
	for _, u := range all {
		if code, _, body := rawDo(t, http.MethodPost, u+"/v1/cluster/propose", propose); code != http.StatusOK {
			t.Fatalf("propose to %s: status %d: %s", u, code, body)
		}
	}
	// Wait until every moving scenario's handoff landed at the joiner.
	deadline := time.Now().Add(10 * time.Second)
	for metrics.Read().Diff(before)["membership_transfers"] < int64(len(moving)) {
		if time.Now().After(deadline) {
			t.Fatalf("handoffs never finished: %d of %d",
				metrics.Read().Diff(before)["membership_transfers"], len(moving))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The mid-window write: the old owner forwards it to the joiner, which
	// acknowledges it on the transferred copy.
	res, err := nodes[0].cli.Insert(context.Background(), target, api.MutateRequest{Tuples: "M(wa,wb)."})
	if err != nil {
		t.Fatalf("mid-window write: %v", err)
	}

	// Abort everywhere. The joiner now holds the only copy carrying the
	// acknowledged write; reconciliation must return it.
	for _, u := range all {
		if code, _, body := rawDo(t, http.MethodPost, u+"/v1/cluster/abort", `{"epoch":2}`); code != http.StatusOK {
			t.Fatalf("abort to %s: status %d: %s", u, code, body)
		}
	}

	// Until the push-back lands the old owner keeps forwarding; afterwards
	// it serves the returned copy. Either way the write stays readable.
	deadline = time.Now().Add(10 * time.Second)
	for {
		got, err := nodes[1].cli.Scenario(context.Background(), target)
		if err == nil && got.Version >= res.Version {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("acknowledged write lost to the abort: err=%v version=%d, want >= %d",
				err, got.Version, res.Version)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, m := range nodes {
		got, err := m.cli.Scenario(context.Background(), target)
		if err != nil {
			t.Fatalf("post-abort read via %d: %v", i, err)
		}
		if got.Version < res.Version {
			t.Fatalf("entry %d reads version %d after abort, want >= %d", i, got.Version, res.Version)
		}
	}
	// Everything else still answers on the old ring through both members.
	for _, id := range ids {
		for i, m := range nodes {
			if _, err := m.cli.Scenario(context.Background(), id); err != nil {
				t.Fatalf("post-abort read of %s via %d: %v", id, i, err)
			}
		}
	}
}

func waitReachable(t *testing.T, c *client.Client) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Health(context.Background()); err == nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("revived member never became reachable")
}
