package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"

	"repro/internal/certain"
	"repro/internal/chase"
	"repro/internal/cwa"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/server/api"
	"repro/internal/status"
)

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/scenarios", s.handleRegister)
	s.mux.HandleFunc("GET /v1/scenarios", s.handleListScenarios)
	s.mux.HandleFunc("GET /v1/scenarios/{id}", s.handleGetScenario)
	s.mux.HandleFunc("DELETE /v1/scenarios/{id}", s.handleDeleteScenario)
	s.mux.HandleFunc("POST /v1/scenarios/{id}/source/tuples", s.handleMutate(true))
	s.mux.HandleFunc("DELETE /v1/scenarios/{id}/source/tuples", s.handleMutate(false))
	s.mux.HandleFunc("POST /v1/chase", s.handleChase)
	s.mux.HandleFunc("POST /v1/core", s.handleCore)
	s.mux.HandleFunc("POST /v1/cansol", s.handleCanSol)
	s.mux.HandleFunc("POST /v1/exists", s.handleExists)
	s.mux.HandleFunc("POST /v1/certain", s.handleCertain)
	s.mux.HandleFunc("POST /v1/enum", s.handleEnum)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metricsz", s.handleMetrics)
}

// semanticsByName maps the wire names to the four Section 7.1 semantics.
var semanticsByName = map[string]certain.Semantics{
	"certain-cap": certain.CertainCap,
	"certain-cup": certain.CertainCup,
	"maybe-cap":   certain.MaybeCap,
	"maybe-cup":   certain.MaybeCup,
}

// writeJSON writes v with the given status; bodies end in a newline so
// curl output is readable.
func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"marshal failure"}}`, 500)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(body, '\n'))
}

// writeError maps err through the internal/status table (plus the
// server-side overloaded/unknown-scenario cases) to an HTTP status and a
// JSON error envelope.
func writeError(w http.ResponseWriter, err error) {
	code, httpStatus := errorCode(err)
	writeJSON(w, httpStatus, api.Error{Err: api.ErrorBody{Code: code, Message: err.Error()}})
}

func errorCode(err error) (code string, httpStatus int) {
	switch {
	case errors.Is(err, errOverloaded):
		return "overloaded", http.StatusServiceUnavailable
	case errors.Is(err, errUnknownScenario):
		return "unknown_scenario", http.StatusNotFound
	}
	k := status.Classify(err)
	return k.String(), k.HTTPStatus()
}

// decode reads a JSON request body into v.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return status.WithKind(fmt.Errorf("decoding request body: %w", err), status.Usage)
	}
	return nil
}

// admit passes the request through the admission gate and the drain check.
// On success the caller owes a call to the returned release func.
func (s *Server) admit(r *http.Request) (func(), error) {
	if s.Draining() {
		return nil, fmt.Errorf("%w: draining", errOverloaded)
	}
	if err := s.gate.acquire(r.Context()); err != nil {
		return nil, err
	}
	metrics.ServerRequests.Inc()
	return s.gate.release, nil
}

func (s *Server) opts(req api.EvalRequest) chase.Options {
	maxSteps := req.MaxSteps
	if maxSteps <= 0 {
		maxSteps = s.cfg.DefaultMaxSteps
	}
	return chase.Options{MaxSteps: maxSteps}
}

// cached serves the result-cache entry for key if present; otherwise it
// computes the response value, caches the marshaled body on success, and
// serves it. Identical requests therefore return byte-identical bodies,
// with the cache outcome visible in the X-Cache header and the
// server_cache_hits / server_cache_misses counters.
//
// Every response carries an ETag derived from the result key. Because the
// key embeds everything that determines the body (content identity, source
// version, endpoint, parameters) and bodies are deterministic functions of
// it, an If-None-Match hit can answer 304 without computing anything: the
// requester's cached body is the body this request would produce. Cluster
// members revalidate their replicated copies this way, and a mutation —
// which bumps the version inside the key — changes the tag, so stale
// replicas miss and refresh themselves.
func (s *Server) cached(w http.ResponseWriter, r *http.Request, key string, compute func() (any, error)) {
	etag := resultETag(key)
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		metrics.ServerCacheHits.Inc()
		w.Header().Set("X-Cache", "revalidated")
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if body, ok := s.reg.results.get(key); ok {
		metrics.ServerCacheHits.Inc()
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "hit")
		w.WriteHeader(http.StatusOK)
		w.Write(body.([]byte))
		return
	}
	metrics.ServerCacheMisses.Inc()
	v, err := compute()
	if err != nil {
		writeError(w, err)
		return
	}
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, err)
		return
	}
	body = append(body, '\n')
	s.reg.results.put(key, body)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", "miss")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req api.RegisterRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	release, err := s.admit(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	ctx, cancel := s.evalContext(r, 0)
	defer cancel()
	opt := chase.Options{MaxSteps: req.MaxSteps, Ctx: ctx}
	if opt.MaxSteps <= 0 {
		opt.MaxSteps = s.cfg.DefaultMaxSteps
	}
	sc, existing, err := s.reg.register(req.Name, req.Setting, req.Source, opt)
	if err != nil {
		writeError(w, err)
		return
	}
	info := s.scenarioInfo(sc)
	info.Existing = existing
	code := http.StatusCreated
	if existing {
		code = http.StatusOK
	}
	writeJSON(w, code, info)
}

func (s *Server) scenarioInfo(sc *scenario) api.ScenarioInfo {
	info := api.ScenarioInfo{
		ID:            sc.id,
		WeaklyAcyclic: sc.weakly,
		RichlyAcyclic: sc.richly,
		SourceAtoms:   sc.src().Len(),
		Version:       sc.version(),
		Incremental:   sc.engine != nil && sc.engine.Maintainable(),
	}
	if steps, atoms, ok := sc.chased(); ok {
		info.Chased = true
		info.ChaseSteps = steps
		info.UniversalAtoms = atoms
	}
	return info
}

func (s *Server) handleListScenarios(w http.ResponseWriter, r *http.Request) {
	ids := s.reg.scenarios.keysMRU()
	sort.Strings(ids)
	list := api.ScenarioList{Scenarios: make([]api.ScenarioInfo, 0, len(ids))}
	for _, id := range ids {
		if v, ok := s.reg.scenarios.get(id); ok {
			list.Scenarios = append(list.Scenarios, s.scenarioInfo(v.(*scenario)))
		}
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleGetScenario(w http.ResponseWriter, r *http.Request) {
	sc, err := s.reg.lookup(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.scenarioInfo(sc))
}

func (s *Server) handleDeleteScenario(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	dropped, err := s.reg.drop(id, false)
	if err != nil {
		// The scenario was handed off to a new owner while this request
		// was in flight; the delete belongs there now.
		var mv *errMoved
		if errors.As(err, &mv) && s.cluster != nil {
			s.forwardMoved(w, r, mv.newOwner, nil)
			return
		}
		writeError(w, err)
		return
	}
	if !dropped {
		writeError(w, fmt.Errorf("%w: %q", errUnknownScenario, id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// handleMutate serves the source-mutation endpoints: POST inserts the
// request's tuples, DELETE removes them. The batch runs under the admission
// gate and a request deadline like any evaluation (an insert triggers a
// delta chase; a delete walks the justification graph or falls back to a
// re-chase), bumps the scenario version, and precisely invalidates cached
// results — entries for older versions can never serve the new state
// because the version is part of every result key.
func (s *Server) handleMutate(insert bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req api.MutateRequest
		if err := decode(r, &req); err != nil {
			writeError(w, err)
			return
		}
		sc, err := s.reg.lookup(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		ins, err := parser.ParseInstance(req.Tuples)
		if err != nil {
			writeError(w, status.WithKind(fmt.Errorf("parsing tuples: %w", err), status.Usage))
			return
		}
		atoms := ins.Atoms()
		if len(atoms) == 0 {
			writeError(w, status.WithKind(fmt.Errorf("no tuples in request"), status.Usage))
			return
		}
		muts := make([]instance.Mutation, len(atoms))
		for i, a := range atoms {
			muts[i] = instance.Mutation{Insert: insert, Atom: a}
		}
		release, err := s.admit(r)
		if err != nil {
			writeError(w, err)
			return
		}
		defer release()
		ctx, cancel := s.evalContext(r, req.DeadlineMillis)
		defer cancel()
		opt := chase.Options{MaxSteps: req.MaxSteps, Ctx: ctx}
		if opt.MaxSteps <= 0 {
			opt.MaxSteps = s.cfg.DefaultMaxSteps
		}
		res, err := s.reg.mutate(sc, muts, req.BaseVersion, opt)
		if err != nil {
			// A handoff won the mutation lock first: the scenario now lives
			// at its new owner, which installed it (with the version
			// counter) before the mark was set — forward the batch there
			// and the base_version contract carries over.
			var mv *errMoved
			if errors.As(err, &mv) && s.cluster != nil {
				if body, merr := json.Marshal(req); merr == nil {
					s.forwardMoved(w, r, mv.newOwner, body)
					return
				}
			}
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, api.MutateResponse{
			Scenario:   sc.id,
			Version:    res.Version,
			Inserted:   res.Inserted,
			Deleted:    res.Deleted,
			Fallback:   res.Fallback,
			NoSolution: res.NoSolution,
			Steps:      res.Steps,
			Atoms:      res.Atoms,
		})
	}
}

// eval is the shared preamble of the evaluation endpoints: decode, admit,
// look up the scenario, derive the context. The returned cleanup releases
// the slot and cancels the context.
func (s *Server) eval(w http.ResponseWriter, r *http.Request) (req api.EvalRequest, sc *scenario, opt chase.Options, cleanup func(), ok bool) {
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return req, nil, opt, nil, false
	}
	if req.Scenario == "" {
		writeError(w, status.WithKind(fmt.Errorf("missing scenario"), status.Usage))
		return req, nil, opt, nil, false
	}
	sc, err := s.reg.lookup(req.Scenario)
	if err != nil {
		writeError(w, err)
		return req, nil, opt, nil, false
	}
	release, err := s.admit(r)
	if err != nil {
		writeError(w, err)
		return req, nil, opt, nil, false
	}
	ctx, cancel := s.evalContext(r, req.DeadlineMillis)
	opt = s.opts(req)
	opt.Ctx = ctx
	return req, sc, opt, func() { cancel(); release() }, true
}

func (s *Server) handleChase(w http.ResponseWriter, r *http.Request) {
	req, sc, opt, cleanup, ok := s.eval(w, r)
	if !ok {
		return
	}
	defer cleanup()
	s.cached(w, r, resultKey(sc, "chase"), func() (any, error) {
		u, steps, err := sc.chaseFor(opt)
		if err != nil {
			return nil, err
		}
		return api.ChaseResponse{
			Scenario:  req.Scenario,
			Steps:     steps,
			Universal: parser.FormatInstance(u),
			Atoms:     u.Len(),
		}, nil
	})
}

func (s *Server) handleCore(w http.ResponseWriter, r *http.Request) {
	req, sc, opt, cleanup, ok := s.eval(w, r)
	if !ok {
		return
	}
	defer cleanup()
	s.cached(w, r, resultKey(sc, "core"), func() (any, error) {
		core, err := sc.coreFor(opt)
		if err != nil {
			return nil, err
		}
		return api.InstanceResponse{
			Scenario: req.Scenario,
			Instance: parser.FormatInstance(core),
			Atoms:    core.Len(),
		}, nil
	})
}

func (s *Server) handleCanSol(w http.ResponseWriter, r *http.Request) {
	req, sc, opt, cleanup, ok := s.eval(w, r)
	if !ok {
		return
	}
	defer cleanup()
	s.cached(w, r, resultKey(sc, "cansol"), func() (any, error) {
		can, err := sc.cansolFor(opt)
		if err != nil {
			return nil, err
		}
		return api.InstanceResponse{
			Scenario: req.Scenario,
			Instance: parser.FormatInstance(can),
			Atoms:    can.Len(),
		}, nil
	})
}

func (s *Server) handleExists(w http.ResponseWriter, r *http.Request) {
	req, sc, opt, cleanup, ok := s.eval(w, r)
	if !ok {
		return
	}
	defer cleanup()
	s.cached(w, r, resultKey(sc, "exists"), func() (any, error) {
		exists, err := cwa.Exists(sc.setting, sc.src(), opt)
		if err != nil {
			return nil, err
		}
		return api.ExistsResponse{Scenario: req.Scenario, Exists: exists}, nil
	})
}

// parseQuery accepts a UCQ ("q(x) :- E(x,y).") or, failing that, an FO
// query ("(x) . Pp(x) | ...").
func parseQuery(text string) (query.Evaluable, error) {
	u, uerr := parser.ParseUCQ(text)
	if uerr == nil {
		return u, nil
	}
	f, ferr := parser.ParseFOQuery(text)
	if ferr == nil {
		return f, nil
	}
	return nil, status.WithKind(
		fmt.Errorf("parsing query: not a UCQ (%v) nor an FO query (%v)", uerr, ferr),
		status.Usage)
}

func (s *Server) handleCertain(w http.ResponseWriter, r *http.Request) {
	req, sc, opt, cleanup, ok := s.eval(w, r)
	if !ok {
		return
	}
	defer cleanup()
	semName := req.Semantics
	if semName == "" {
		semName = "certain-cap"
	}
	sem, known := semanticsByName[semName]
	if !known {
		writeError(w, status.WithKind(fmt.Errorf("unknown semantics %q", semName), status.Usage))
		return
	}
	q, err := parseQuery(req.Query)
	if err != nil {
		writeError(w, err)
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	s.cached(w, r, resultKey(sc, "certain", semName, req.Query), func() (any, error) {
		ans, err := certain.Answers(sc.setting, q, sc.src(), sem,
			certain.Options{Chase: opt, Workers: workers})
		if err != nil {
			return nil, err
		}
		return api.CertainResponse{
			Scenario:  req.Scenario,
			Semantics: semName,
			Query:     req.Query,
			Answers:   sortedAnswers(ans),
		}, nil
	})
}

// sortedAnswers renders a tuple set as sorted string tuples, so equal
// answer sets always serialize identically regardless of the worker count
// or visit order that produced them.
func sortedAnswers(ts *query.TupleSet) [][]string {
	out := make([][]string, 0, ts.Len())
	for _, t := range ts.Tuples() {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = v.String()
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// handleEnum streams CWA-solutions as NDJSON: one api.EnumSolution line
// per solution (smallest first), then an api.EnumSummary line. The bound
// is req.Max capped by the server's MaxEnumSolutions.
func (s *Server) handleEnum(w http.ResponseWriter, r *http.Request) {
	req, sc, opt, cleanup, ok := s.eval(w, r)
	if !ok {
		return
	}
	defer cleanup()
	maxSols := req.Max
	if maxSols <= 0 || maxSols > s.cfg.MaxEnumSolutions {
		maxSols = s.cfg.MaxEnumSolutions
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	sols, err := cwa.Enumerate(sc.setting, sc.src(), cwa.EnumOptions{
		MaxSolutions: maxSols,
		ChaseOptions: opt,
		Workers:      workers,
	})
	truncated := errors.Is(err, cwa.ErrEnumerationTruncated)
	if err != nil && !truncated {
		writeError(w, err)
		return
	}
	cwa.SortBySize(sols)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	ctx := r.Context()
	for _, sol := range sols {
		// A disconnected client never sees further lines; stop streaming
		// instead of encoding into a dead connection. Encode errors mean the
		// same thing (the ResponseWriter surfaces the broken pipe).
		select {
		case <-ctx.Done():
			metrics.ServerStreamAborts.Inc()
			return
		default:
		}
		if err := enc.Encode(api.EnumSolution{Solution: parser.FormatInstance(sol), Atoms: sol.Len()}); err != nil {
			metrics.ServerStreamAborts.Inc()
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := enc.Encode(api.EnumSummary{Done: true, Count: len(sols), Truncated: truncated}); err != nil {
		metrics.ServerStreamAborts.Inc()
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := "ok"
	if s.Draining() {
		st = "draining"
	}
	h := api.Health{
		Status:    st,
		Scenarios: s.Scenarios(),
		InFlight:  s.InFlight(),
		Draining:  s.Draining(),
	}
	if stats, ok := s.StoreStats(); ok {
		h.Durable = true
		h.StoreScenarios = stats.Scenarios
		h.Replayed = stats.Replayed
		h.Recovering = stats.Recovering
	}
	if s.cluster != nil {
		h.Cluster = s.clusterHealth(r)
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	metrics.WriteText(w)
}
