package server

import (
	"fmt"
	"testing"
)

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	var evicted []string
	c := newLRU(2)
	c.onEvict = func(key string, _ any) { evicted = append(evicted, key) }

	c.put("a", 1)
	c.put("b", 2)
	c.get("a") // refresh a; b is now least recent
	c.put("c", 3)

	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted = %v, want [b]", evicted)
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b still resident after eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s missing", k)
		}
	}
}

func TestLRURemoveIf(t *testing.T) {
	c := newLRU(10)
	for i := 0; i < 6; i++ {
		prefix := "x"
		if i%2 == 0 {
			prefix = "y"
		}
		c.put(fmt.Sprintf("%s%d", prefix, i), i)
	}
	c.removeIf(func(key string) bool { return key[0] == 'y' })
	if got := c.len(); got != 3 {
		t.Fatalf("len after removeIf = %d, want 3", got)
	}
	for _, k := range c.keysMRU() {
		if k[0] == 'y' {
			t.Fatalf("key %s survived removeIf", k)
		}
	}
}

func TestLRURemoveInvokesOnEvict(t *testing.T) {
	var evicted []string
	c := newLRU(10)
	c.onEvict = func(key string, _ any) { evicted = append(evicted, key) }
	c.put("a", 1)
	c.put("b", 2)

	if !c.remove("a") {
		t.Fatal("remove(a) = false")
	}
	if c.remove("missing") {
		t.Fatal("remove(missing) = true")
	}
	c.removeIf(func(key string) bool { return key == "b" })

	if len(evicted) != 2 || evicted[0] != "a" || evicted[1] != "b" {
		t.Fatalf("onEvict saw %v, want [a b]", evicted)
	}
	if got := c.len(); got != 0 {
		t.Fatalf("len = %d, want 0", got)
	}
}

func TestLRUPutRefreshesExisting(t *testing.T) {
	c := newLRU(2)
	c.put("a", 1)
	c.put("b", 2)
	c.put("a", 10) // refresh, no eviction
	c.put("c", 3)  // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	v, ok := c.get("a")
	if !ok || v.(int) != 10 {
		t.Fatalf("a = %v/%v, want 10", v, ok)
	}
}
