package server

// Membership glue: the server side of the dynamic join/leave protocol
// (internal/membership). This file adapts the registry to the protocol's
// Host interface — enumerating local scenarios, the per-scenario handoff
// critical section, commit/abort cleanup — carries protocol messages over
// the ordinary peer client, and mounts the /v1/cluster/* endpoints.
//
// The handoff critical section is the heart of the zero-lost-writes
// guarantee: the old owner captures the scenario's state and POSTs it to
// the new owner while holding the scenario's mutation lock (mutMu), and
// marks the scenario handed off — under that same lock — only after the
// new owner acknowledged the install. A mutation serialized behind the
// lock therefore resumes to find the moved mark and is forwarded to the
// new owner, which by then is guaranteed to have installed the scenario;
// no acknowledged write can land on a copy that is about to be dropped.
//
// Abort runs the same discipline in reverse. Scenarios installed during
// the window are tracked per proposal epoch (receivedSet); when the
// proposal aborts, the receiver pushes each one's *current* state back to
// its committed owner under the scenario's mutation lock — writes it
// acknowledged mid-window ride back in the block — and drops its copy
// only after the push-back was acknowledged. The old owner keeps its
// handed-off mark (and keeps forwarding) until that push-back replaces
// its stale copy, so no acknowledged write is lost to an abort while both
// sides are reachable. Only when the counterpart stays unreachable past
// the reconciliation deadline does a side give up: the old owner resumes
// serving its pre-handoff copy (lossy by necessity — the only copy with
// the window's writes is on a dead peer), and the receiver parks its copy
// unserved, where a later transition's version-guarded transfer will
// surface it again rather than overwrite it.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/chase"
	"repro/internal/membership"
	"repro/internal/server/api"
	"repro/internal/status"
	"repro/internal/store"
)

// maxTransferBlock bounds an accepted scenario-transfer block.
const maxTransferBlock = 1 << 30

// errMoved reports that a scenario was handed off to a new owner during a
// membership transition; the handler forwards the request there.
type errMoved struct {
	id       string
	newOwner string
}

func (e *errMoved) Error() string {
	return fmt.Sprintf("scenario %q handed off to %s", e.id, e.newOwner)
}

// handedSet tracks the scenarios this member handed off during the open
// transfer window, mapping each to its new owner. Routing consults it so
// post-handoff requests forward; commit drains it into drops, abort
// drains it into un-marking.
type handedSet struct {
	mu sync.Mutex
	m  map[string]string
}

func (h *handedSet) add(id, owner string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.m == nil {
		h.m = make(map[string]string)
	}
	h.m[id] = owner
}

func (h *handedSet) get(id string) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.m[id]
}

func (h *handedSet) remove(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.m, id)
}

func (h *handedSet) empty() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.m) == 0
}

func (h *handedSet) drain() map[string]string {
	h.mu.Lock()
	defer h.mu.Unlock()
	m := h.m
	h.m = nil
	return m
}

// receivedSet tracks the scenarios this member installed from transfer
// blocks during a proposal's window, mapped to the proposal epoch. While
// a mark is held the member serves the copy (it is the live one — the old
// owner forwards here once handed off); commit drains the marks into
// plain ownership, abort drains them into push-backs to the committed
// owners.
type receivedSet struct {
	mu sync.Mutex
	m  map[string]uint64
}

func (r *receivedSet) add(id string, epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[string]uint64)
	}
	r.m[id] = epoch
}

func (r *receivedSet) has(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.m[id]
	return ok
}

func (r *receivedSet) remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.m, id)
}

func (r *receivedSet) empty() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m) == 0
}

func (r *receivedSet) snapshot() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.m))
	for id, e := range r.m {
		out[id] = e
	}
	return out
}

func (r *receivedSet) drain() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m = nil
}

// serverHost adapts the server to membership.Host.
type serverHost struct{ s *Server }

// ScenarioIDs lists every scenario present on this member: resident ones
// plus everything cataloged in the durable store.
func (h serverHost) ScenarioIDs() []string {
	ids := h.s.reg.scenarios.keysMRU()
	if h.s.cfg.Store == nil {
		return ids
	}
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		seen[id] = true
	}
	for _, id := range h.s.cfg.Store.IDs() {
		if !seen[id] {
			ids = append(ids, id)
		}
	}
	return ids
}

// Handoff pushes one scenario to its new owner under the scenario's
// mutation lock; see the file comment for why the lock spans the send.
func (h serverHost) Handoff(_ context.Context, id, newOwner string, send func(block []byte) error) (int, error) {
	sc, err := h.s.reg.lookup(id)
	if err != nil {
		return 0, nil // dropped (or never completed) concurrently: nothing to move
	}
	sc.mutMu.Lock()
	defer sc.mutMu.Unlock()
	if sc.movedTo != "" {
		return 0, nil
	}
	block := store.EncodeState(sc.persistState())
	if err := send(block); err != nil {
		return 0, err
	}
	sc.movedTo = newOwner
	h.s.handed.add(id, newOwner)
	return len(block), nil
}

// CommitWindow drops every handed-off scenario after the commit
// (journaled via store.Drop on durable members) and adopts the received
// ones as plainly owned. Routing already points at the new owner — the
// committed ring does not contain this member for these keys — so the
// drop only reclaims local state.
func (h serverHost) CommitWindow() {
	for id := range h.s.handed.drain() {
		h.s.reg.drop(id, true)
	}
	h.s.received.drain()
}

// AbortWindow starts the abort reconciliation in the background: push
// received scenarios back to their committed owners, then wait for this
// member's own handed-off copies to be replaced by their receivers'
// push-backs (resuming the stale copy only past the deadline, when the
// receiver is presumed dead).
func (h serverHost) AbortWindow(epoch uint64) {
	h.s.reconciling.Add(1)
	go func() {
		defer h.s.reconciling.Add(-1)
		h.s.reconcileAbort(epoch)
	}()
}

// Reconciling reports whether an aborted window's reconciliation is still
// running; the manager refuses new proposals until it settles. (The
// received/handed sets alone cannot answer this: a transfer can land
// before this member's own propose arrives, so non-empty sets are normal
// mid-window.)
func (h serverHost) Reconciling() bool {
	return h.s.reconciling.Load() > 0
}

// reconcileTimeout bounds how long an aborted window's reconciliation
// waits on an unreachable counterpart before falling back.
const reconcileTimeout = 30 * time.Second

// reconcileAbort undoes an aborted window's handoffs without losing
// acknowledged writes. Receiver side first: every scenario installed for
// the aborted epoch is pushed back to its committed owner. Then the
// sender side: handed-off marks stay (this member keeps forwarding to the
// receiver, which serves the live copy until its push-back lands and
// replaces ours); only past the deadline — the receiver is unreachable,
// so the writes it acknowledged are on a dead peer — do we clear the
// marks and resume serving the pre-handoff copy.
func (s *Server) reconcileAbort(epoch uint64) {
	// <= catches a straggler transfer that landed after an earlier abort
	// canceled its sender: its mark must not outlive this reconciliation,
	// or routing would keep serving the copy here forever.
	for id, e := range s.received.snapshot() {
		if e <= epoch {
			s.pushBack(id)
		}
	}
	deadline := time.Now().Add(reconcileTimeout)
	for !s.handed.empty() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	for id := range s.handed.drain() {
		if v, ok := s.reg.scenarios.get(id); ok {
			sc := v.(*scenario)
			sc.mutMu.Lock()
			sc.movedTo = ""
			sc.mutMu.Unlock()
		}
	}
}

// pushBack returns one received scenario to its committed owner: capture
// the current state under the mutation lock, POST it as a reconcile
// transfer (the owner's install replaces its stale pre-handoff copy and
// clears its handed mark), and only on acknowledgment mark the local copy
// moved and drop it. If the owner stays unreachable the copy is parked:
// the received mark is cleared so routing stops serving it, but the state
// is kept — a later transition's version-guarded transfer surfaces it
// again instead of overwriting it.
func (s *Server) pushBack(id string) {
	sc, err := s.reg.lookup(id)
	if err != nil {
		s.received.remove(id)
		return
	}
	owner := s.cluster.Owner(id)
	if owner == "" || owner == s.cluster.Self() {
		// The committed ring keeps (or puts) the key here; the copy is
		// simply ours now.
		s.received.remove(id)
		return
	}
	sc.mutMu.Lock()
	if sc.movedTo != "" {
		sc.mutMu.Unlock()
		s.received.remove(id)
		return
	}
	block := store.EncodeState(sc.persistState())
	t := memberTransport{s}
	var cerr error
	for attempt := 0; attempt < 3; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), reconcileTimeout/3)
		_, cerr = t.Call(ctx, owner, "POST", membership.PathTransfer+"?reconcile=1", "application/octet-stream", block)
		cancel()
		if cerr == nil {
			break
		}
	}
	if cerr != nil {
		sc.mutMu.Unlock()
		s.received.remove(id)
		return
	}
	sc.movedTo = owner
	sc.mutMu.Unlock()
	s.received.remove(id)
	s.reg.drop(id, true)
}

// memberTransport carries protocol messages over the peer client.
type memberTransport struct{ s *Server }

func (t memberTransport) Call(ctx context.Context, peer, method, path, contentType string, body []byte) ([]byte, error) {
	hdr := make(http.Header)
	if contentType != "" {
		hdr.Set("Content-Type", contentType)
	}
	resp, err := t.s.peerClient(peer).Forward(ctx, method, path, hdr, body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxTransferBlock))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		var e api.Error
		if json.Unmarshal(b, &e) == nil && e.Err.Message != "" {
			return nil, fmt.Errorf("%s %s: %s (%s)", method, path, e.Err.Message, e.Err.Code)
		}
		return nil, fmt.Errorf("%s %s: status %d", method, path, resp.StatusCode)
	}
	return b, nil
}

// JoinCluster runs the joiner's side of the membership handshake against
// seed (any live member). Call after the HTTP listener is serving: the
// propose/commit broadcasts and scenario transfers arrive over HTTP while
// the join call is in flight.
func (s *Server) JoinCluster(ctx context.Context, seed string) error {
	if s.member == nil {
		return fmt.Errorf("server: not a cluster member")
	}
	return s.member.Join(ctx, seed)
}

// LeaveCluster hands off every scenario this member owns and removes it
// from the ring (drain-leave). Call before BeginDrain so the member still
// serves and forwards during its own transfer window. No-op on
// non-cluster servers and members that already left.
func (s *Server) LeaveCluster(ctx context.Context) error {
	if s.member == nil {
		return nil
	}
	return s.member.Leave(ctx)
}

// clusterRoutes mounts the membership endpoints (cluster mode only; the
// requireMember guard is belt and braces).
func (s *Server) clusterRoutes() {
	s.mux.HandleFunc("POST "+membership.PathJoin, s.handleClusterJoin)
	s.mux.HandleFunc("POST "+membership.PathPropose, s.handleClusterPropose)
	s.mux.HandleFunc("POST "+membership.PathTransfer, s.handleClusterTransfer)
	s.mux.HandleFunc("POST "+membership.PathDone, s.handleClusterDone)
	s.mux.HandleFunc("POST "+membership.PathCommit, s.handleClusterCommit)
	s.mux.HandleFunc("POST "+membership.PathAbort, s.handleClusterAbort)
	s.mux.HandleFunc("GET "+membership.PathView, s.handleClusterView)
}

// requireMember guards the membership endpoints on non-cluster servers.
func (s *Server) requireMember(w http.ResponseWriter) bool {
	if s.member == nil {
		writeError(w, status.WithKind(fmt.Errorf("not a cluster member"), status.Usage))
		return false
	}
	return true
}

// writeMembershipError maps protocol errors: a busy cluster (one
// transition at a time) is a 409 conflict, everything else classifies
// through the usual table.
func writeMembershipError(w http.ResponseWriter, err error) {
	if errors.Is(err, membership.ErrBusy) {
		err = status.WithKind(err, status.Conflict)
	}
	writeError(w, err)
}

func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	if !s.requireMember(w) {
		return
	}
	var req membership.JoinRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	view, err := s.member.HandleJoin(r.Context(), req)
	if err != nil {
		writeMembershipError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleClusterPropose(w http.ResponseWriter, r *http.Request) {
	if !s.requireMember(w) {
		return
	}
	var req membership.ProposeRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.member.HandlePropose(r.Context(), req); err != nil {
		writeMembershipError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleClusterTransfer installs one transferred scenario block: decode,
// rebuild the scenario (resuming the incremental engine around the
// persisted fixpoint — no re-chase), journal it into the durable store
// before it becomes visible, and register it.
//
// The install is version-guarded for idempotence: the sender's client
// retries on transport errors, so a transfer whose 2xx was lost is
// re-sent after this member may already have acknowledged mutations on
// the installed copy. A same-content block at an equal-or-older version
// is acknowledged without overwriting. The guard also covers orphans a
// past abort parked here: a retried transition's fresh transfer finds the
// orphan's newer version and keeps it.
//
// ?epoch=N marks a window transfer — the install is recorded in the
// received set so an abort can push it back — and ?reconcile=1 marks the
// reverse direction: an aborted window's receiver returning the live
// state, which replaces the stale pre-handoff copy and clears its
// handed-off mark so this member resumes serving.
func (s *Server) handleClusterTransfer(w http.ResponseWriter, r *http.Request) {
	if !s.requireMember(w) {
		return
	}
	q := r.URL.Query()
	reconcile := q.Get("reconcile") != ""
	epoch, _ := strconv.ParseUint(q.Get("epoch"), 10, 64)
	block, err := io.ReadAll(io.LimitReader(r.Body, maxTransferBlock))
	if err != nil {
		writeError(w, status.WithKind(fmt.Errorf("reading transfer block: %w", err), status.Usage))
		return
	}
	st, err := store.DecodeState(block)
	if err != nil {
		writeError(w, status.WithKind(fmt.Errorf("decoding transfer block: %w", err), status.Usage))
		return
	}
	ack := func() {
		if reconcile {
			s.handed.remove(st.ID)
		} else if epoch != 0 {
			s.received.add(st.ID, epoch)
		}
		writeJSON(w, http.StatusOK, map[string]string{"id": st.ID})
	}
	if v, ok := s.reg.scenarios.get(st.ID); ok {
		existing := v.(*scenario)
		existing.mutMu.Lock()
		if existing.contentID == st.ContentID && existing.version() >= st.Version() {
			if reconcile {
				// Equal version: no writes landed at the receiver during
				// the window; the local copy is already current.
				existing.movedTo = ""
			}
			existing.mutMu.Unlock()
			ack()
			return
		}
		existing.mutMu.Unlock()
	}
	sc, err := scenarioFromState(st, chase.Options{})
	if err != nil {
		writeError(w, status.WithKind(err, status.Internal))
		return
	}
	if s.reg.store != nil {
		if err := s.reg.store.Register(st); err != nil {
			writeError(w, status.WithKind(fmt.Errorf("journaling transfer: %w", err), status.Internal))
			return
		}
	}
	s.reg.install(sc)
	ack()
}

func (s *Server) handleClusterDone(w http.ResponseWriter, r *http.Request) {
	if !s.requireMember(w) {
		return
	}
	var req membership.DoneRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.member.HandleDone(req); err != nil {
		writeMembershipError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleClusterCommit(w http.ResponseWriter, r *http.Request) {
	if !s.requireMember(w) {
		return
	}
	var req membership.CommitRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.member.HandleCommit(req); err != nil {
		writeMembershipError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleClusterAbort(w http.ResponseWriter, r *http.Request) {
	if !s.requireMember(w) {
		return
	}
	var req membership.AbortRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	s.member.HandleAbort(req)
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleClusterView(w http.ResponseWriter, r *http.Request) {
	if !s.requireMember(w) {
		return
	}
	writeJSON(w, http.StatusOK, s.member.ViewInfo())
}
