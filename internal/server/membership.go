package server

// Membership glue: the server side of the dynamic join/leave protocol
// (internal/membership). This file adapts the registry to the protocol's
// Host interface — enumerating local scenarios, the per-scenario handoff
// critical section, commit/abort cleanup — carries protocol messages over
// the ordinary peer client, and mounts the /v1/cluster/* endpoints.
//
// The handoff critical section is the heart of the zero-lost-writes
// guarantee: the old owner captures the scenario's state and POSTs it to
// the new owner while holding the scenario's mutation lock (mutMu), and
// marks the scenario handed off — under that same lock — only after the
// new owner acknowledged the install. A mutation serialized behind the
// lock therefore resumes to find the moved mark and is forwarded to the
// new owner, which by then is guaranteed to have installed the scenario;
// no acknowledged write can land on a copy that is about to be dropped.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/chase"
	"repro/internal/membership"
	"repro/internal/server/api"
	"repro/internal/status"
	"repro/internal/store"
)

// maxTransferBlock bounds an accepted scenario-transfer block.
const maxTransferBlock = 1 << 30

// errMoved reports that a scenario was handed off to a new owner during a
// membership transition; the handler forwards the request there.
type errMoved struct {
	id       string
	newOwner string
}

func (e *errMoved) Error() string {
	return fmt.Sprintf("scenario %q handed off to %s", e.id, e.newOwner)
}

// handedSet tracks the scenarios this member handed off during the open
// transfer window, mapping each to its new owner. Routing consults it so
// post-handoff requests forward; commit drains it into drops, abort
// drains it into un-marking.
type handedSet struct {
	mu sync.Mutex
	m  map[string]string
}

func (h *handedSet) add(id, owner string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.m == nil {
		h.m = make(map[string]string)
	}
	h.m[id] = owner
}

func (h *handedSet) get(id string) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.m[id]
}

func (h *handedSet) drain() map[string]string {
	h.mu.Lock()
	defer h.mu.Unlock()
	m := h.m
	h.m = nil
	return m
}

// serverHost adapts the server to membership.Host.
type serverHost struct{ s *Server }

// ScenarioIDs lists every scenario present on this member: resident ones
// plus everything cataloged in the durable store.
func (h serverHost) ScenarioIDs() []string {
	ids := h.s.reg.scenarios.keysMRU()
	if h.s.cfg.Store == nil {
		return ids
	}
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		seen[id] = true
	}
	for _, id := range h.s.cfg.Store.IDs() {
		if !seen[id] {
			ids = append(ids, id)
		}
	}
	return ids
}

// Handoff pushes one scenario to its new owner under the scenario's
// mutation lock; see the file comment for why the lock spans the send.
func (h serverHost) Handoff(_ context.Context, id, newOwner string, send func(block []byte) error) (int, error) {
	sc, err := h.s.reg.lookup(id)
	if err != nil {
		return 0, nil // dropped (or never completed) concurrently: nothing to move
	}
	sc.mutMu.Lock()
	defer sc.mutMu.Unlock()
	if sc.movedTo != "" {
		return 0, nil
	}
	block := store.EncodeState(sc.persistState())
	if err := send(block); err != nil {
		return 0, err
	}
	sc.movedTo = newOwner
	h.s.handed.add(id, newOwner)
	return len(block), nil
}

// DropHanded drops every handed-off scenario after the commit (journaled
// via store.Drop on durable members). Routing already points at the new
// owner — the committed ring does not contain this member for these keys
// — so the drop only reclaims local state.
func (h serverHost) DropHanded() {
	for id := range h.s.handed.drain() {
		h.s.reg.drop(id, true)
	}
}

// AbortHandoff clears the moved marks after an abort; this member keeps
// serving its copies under the old ring.
func (h serverHost) AbortHandoff() {
	for id := range h.s.handed.drain() {
		if v, ok := h.s.reg.scenarios.get(id); ok {
			sc := v.(*scenario)
			sc.mutMu.Lock()
			sc.movedTo = ""
			sc.mutMu.Unlock()
		}
	}
}

// memberTransport carries protocol messages over the peer client.
type memberTransport struct{ s *Server }

func (t memberTransport) Call(ctx context.Context, peer, method, path, contentType string, body []byte) ([]byte, error) {
	hdr := make(http.Header)
	if contentType != "" {
		hdr.Set("Content-Type", contentType)
	}
	resp, err := t.s.peerClient(peer).Forward(ctx, method, path, hdr, body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxTransferBlock))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		var e api.Error
		if json.Unmarshal(b, &e) == nil && e.Err.Message != "" {
			return nil, fmt.Errorf("%s %s: %s (%s)", method, path, e.Err.Message, e.Err.Code)
		}
		return nil, fmt.Errorf("%s %s: status %d", method, path, resp.StatusCode)
	}
	return b, nil
}

// JoinCluster runs the joiner's side of the membership handshake against
// seed (any live member). Call after the HTTP listener is serving: the
// propose/commit broadcasts and scenario transfers arrive over HTTP while
// the join call is in flight.
func (s *Server) JoinCluster(ctx context.Context, seed string) error {
	if s.member == nil {
		return fmt.Errorf("server: not a cluster member")
	}
	return s.member.Join(ctx, seed)
}

// LeaveCluster hands off every scenario this member owns and removes it
// from the ring (drain-leave). Call before BeginDrain so the member still
// serves and forwards during its own transfer window. No-op on
// non-cluster servers and members that already left.
func (s *Server) LeaveCluster(ctx context.Context) error {
	if s.member == nil {
		return nil
	}
	return s.member.Leave(ctx)
}

// clusterRoutes mounts the membership endpoints (cluster mode only; the
// requireMember guard is belt and braces).
func (s *Server) clusterRoutes() {
	s.mux.HandleFunc("POST "+membership.PathJoin, s.handleClusterJoin)
	s.mux.HandleFunc("POST "+membership.PathPropose, s.handleClusterPropose)
	s.mux.HandleFunc("POST "+membership.PathTransfer, s.handleClusterTransfer)
	s.mux.HandleFunc("POST "+membership.PathDone, s.handleClusterDone)
	s.mux.HandleFunc("POST "+membership.PathCommit, s.handleClusterCommit)
	s.mux.HandleFunc("POST "+membership.PathAbort, s.handleClusterAbort)
	s.mux.HandleFunc("GET "+membership.PathView, s.handleClusterView)
}

// requireMember guards the membership endpoints on non-cluster servers.
func (s *Server) requireMember(w http.ResponseWriter) bool {
	if s.member == nil {
		writeError(w, status.WithKind(fmt.Errorf("not a cluster member"), status.Usage))
		return false
	}
	return true
}

// writeMembershipError maps protocol errors: a busy cluster (one
// transition at a time) is a 409 conflict, everything else classifies
// through the usual table.
func writeMembershipError(w http.ResponseWriter, err error) {
	if errors.Is(err, membership.ErrBusy) {
		err = status.WithKind(err, status.Conflict)
	}
	writeError(w, err)
}

func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	if !s.requireMember(w) {
		return
	}
	var req membership.JoinRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	view, err := s.member.HandleJoin(r.Context(), req)
	if err != nil {
		writeMembershipError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleClusterPropose(w http.ResponseWriter, r *http.Request) {
	if !s.requireMember(w) {
		return
	}
	var req membership.ProposeRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.member.HandlePropose(r.Context(), req); err != nil {
		writeMembershipError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleClusterTransfer installs one transferred scenario block: decode,
// rebuild the scenario (resuming the incremental engine around the
// persisted fixpoint — no re-chase), journal it into the durable store
// before it becomes visible, and register it.
func (s *Server) handleClusterTransfer(w http.ResponseWriter, r *http.Request) {
	if !s.requireMember(w) {
		return
	}
	block, err := io.ReadAll(io.LimitReader(r.Body, maxTransferBlock))
	if err != nil {
		writeError(w, status.WithKind(fmt.Errorf("reading transfer block: %w", err), status.Usage))
		return
	}
	st, err := store.DecodeState(block)
	if err != nil {
		writeError(w, status.WithKind(fmt.Errorf("decoding transfer block: %w", err), status.Usage))
		return
	}
	sc, err := scenarioFromState(st, chase.Options{})
	if err != nil {
		writeError(w, status.WithKind(err, status.Internal))
		return
	}
	if s.reg.store != nil {
		if err := s.reg.store.Register(st); err != nil {
			writeError(w, status.WithKind(fmt.Errorf("journaling transfer: %w", err), status.Internal))
			return
		}
	}
	s.reg.install(sc)
	writeJSON(w, http.StatusOK, map[string]string{"id": st.ID})
}

func (s *Server) handleClusterDone(w http.ResponseWriter, r *http.Request) {
	if !s.requireMember(w) {
		return
	}
	var req membership.DoneRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.member.HandleDone(req); err != nil {
		writeMembershipError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleClusterCommit(w http.ResponseWriter, r *http.Request) {
	if !s.requireMember(w) {
		return
	}
	var req membership.CommitRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.member.HandleCommit(req); err != nil {
		writeMembershipError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleClusterAbort(w http.ResponseWriter, r *http.Request) {
	if !s.requireMember(w) {
		return
	}
	var req membership.AbortRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	s.member.HandleAbort(req)
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleClusterView(w http.ResponseWriter, r *http.Request) {
	if !s.requireMember(w) {
		return
	}
	writeJSON(w, http.StatusOK, s.member.ViewInfo())
}
