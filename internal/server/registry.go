package server

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"repro/internal/chase"
	"repro/internal/cwa"
	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/parser"
	"repro/internal/score"
	"repro/internal/status"
)

// errUnknownScenario is returned when a request names a scenario that is
// not registered (or was evicted); the handler maps it to HTTP 404 with
// code "unknown_scenario".
var errUnknownScenario = errors.New("server: unknown scenario")

// scenario is one registered (setting, source) pair. The parsed *Setting is
// the plan cache: every tgd/egd lazily compiles and memoizes its body,
// head, slot and delta plans on first use (dependency/plan.go), so keeping
// the Setting resident amortizes compilation across every request that
// names the scenario. Heavy derived artifacts (universal solution, core,
// canonical solution) are memoized here under a per-scenario mutex: the
// first request computes under its own deadline, later requests reuse the
// result, and concurrent duplicates block on the mutex instead of
// recomputing (single-flight).
type scenario struct {
	id string
	// contentID identifies the scenario by content: a hash of the
	// canonical setting text and the source's ContentKey. Result-cache
	// entries key on it, so re-registering identical content (even under a
	// new name, even after an eviction) keeps hitting the same cache
	// lines.
	contentID   string
	settingText string // canonical form (parser.FormatSetting)
	setting     *dependency.Setting
	source      *instance.Instance
	weakly      bool
	richly      bool

	mu sync.Mutex // single-flight guard for the memos below
	// universal and chaseSteps are set once a chase succeeds (eagerly at
	// registration for weakly acyclic settings, else by the first
	// successful request).
	universal  *instance.Instance
	chaseSteps int
	core       *instance.Instance
	cansol     *instance.Instance
}

// chaseFor returns the scenario's standard-chase result, memoized on
// success. The options carry the request's context and budget.
func (sc *scenario) chaseFor(opt chase.Options) (universal *instance.Instance, steps int, err error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.universal != nil {
		return sc.universal, sc.chaseSteps, nil
	}
	res, err := chase.Standard(sc.setting, sc.source, opt)
	if err != nil {
		return nil, 0, err
	}
	sc.universal = res.Target
	sc.chaseSteps = res.Steps
	return sc.universal, sc.chaseSteps, nil
}

// coreFor returns the minimal CWA-solution Core_D(S), memoized on success.
func (sc *scenario) coreFor(opt chase.Options) (*instance.Instance, error) {
	u, _, err := sc.chaseFor(opt)
	if err != nil {
		if chase.IsEgdFailure(err) {
			err = fmt.Errorf("%w: %v", cwa.ErrNoSolution, err)
		}
		return nil, err
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.core == nil {
		sc.core = score.Core(u)
	}
	return sc.core, nil
}

// cansolFor returns the canonical solution CanSol_D(S), memoized on
// success.
func (sc *scenario) cansolFor(opt chase.Options) (*instance.Instance, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.cansol == nil {
		can, err := cwa.CanSol(sc.setting, sc.source, opt)
		if err != nil {
			return nil, err
		}
		sc.cansol = can
	}
	return sc.cansol, nil
}

// chased reports whether a successful chase result is memoized.
func (sc *scenario) chased() (steps, atoms int, ok bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.universal == nil {
		return 0, 0, false
	}
	return sc.chaseSteps, sc.universal.Len(), true
}

// registry holds the resident scenarios (LRU-bounded) and the result cache
// (serialized successful response bodies, LRU-bounded, keyed by content).
type registry struct {
	scenarios *lru // scenario ID -> *scenario
	results   *lru // contentID + endpoint + params -> []byte response body

	mu        sync.Mutex
	byContent map[string]string // contentID -> scenario ID
	nextID    int
}

func newRegistry(maxScenarios, maxResults int) *registry {
	r := &registry{
		scenarios: newLRU(maxScenarios),
		results:   newLRU(maxResults),
		byContent: make(map[string]string),
	}
	r.scenarios.onEvict = func(id string, v any) {
		sc := v.(*scenario)
		r.mu.Lock()
		if r.byContent[sc.contentID] == id {
			delete(r.byContent, sc.contentID)
		}
		r.mu.Unlock()
	}
	return r
}

// register parses and validates a setting and source, dedupes by content,
// runs the registration chase for weakly acyclic settings, and stores the
// scenario. The returned bool reports whether an existing content-identical
// scenario was reused.
func (r *registry) register(name, settingText, sourceText string, opt chase.Options) (*scenario, bool, error) {
	s, err := parser.ParseSetting(settingText)
	if err != nil {
		return nil, false, status.WithKind(fmt.Errorf("parsing setting: %w", err), status.Usage)
	}
	src, err := parser.ParseInstance(sourceText)
	if err != nil {
		return nil, false, status.WithKind(fmt.Errorf("parsing source: %w", err), status.Usage)
	}
	if src.HasNulls() {
		return nil, false, status.WithKind(fmt.Errorf("source instance must be null-free"), status.Usage)
	}
	canonical := parser.FormatSetting(s)
	sum := sha256.Sum256([]byte(canonical + "\x00" + src.ContentKey()))
	contentID := hex.EncodeToString(sum[:16])

	r.mu.Lock()
	if id, ok := r.byContent[contentID]; ok && (name == "" || name == id) {
		if v, live := r.scenarios.get(id); live {
			r.mu.Unlock()
			return v.(*scenario), true, nil
		}
		delete(r.byContent, contentID)
	}
	if name == "" {
		r.nextID++
		name = fmt.Sprintf("s%d", r.nextID)
	} else if v, ok := r.scenarios.get(name); ok {
		existing := v.(*scenario)
		if existing.contentID == contentID {
			r.mu.Unlock()
			return existing, true, nil
		}
		r.mu.Unlock()
		return nil, false, status.WithKind(
			fmt.Errorf("scenario %q already registered with different content; DELETE it first", name),
			status.Usage)
	}
	r.mu.Unlock()

	sc := &scenario{
		id:          name,
		contentID:   contentID,
		settingText: canonical,
		setting:     s,
		source:      src,
		weakly:      s.WeaklyAcyclic(),
		richly:      s.RichlyAcyclic(),
	}
	// Registration chases only weakly acyclic settings, whose chase is
	// guaranteed to terminate (Proposition 6.6); anything else — including
	// Turing-complete settings like D_halt — defers chasing to requests,
	// which carry their own deadlines and budgets. An egd failure here is
	// not a registration error: the scenario is kept and evaluation
	// endpoints report no_solution per request.
	if sc.weakly {
		sc.chaseFor(opt)
	}

	r.mu.Lock()
	r.byContent[contentID] = name
	r.mu.Unlock()
	r.scenarios.put(name, sc)
	return sc, false, nil
}

// lookup returns the named scenario, refreshing its LRU position.
func (r *registry) lookup(id string) (*scenario, error) {
	v, ok := r.scenarios.get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", errUnknownScenario, id)
	}
	return v.(*scenario), nil
}

// drop removes the named scenario and its cached results.
func (r *registry) drop(id string) bool {
	v, ok := r.scenarios.get(id)
	if !ok {
		return false
	}
	sc := v.(*scenario)
	r.scenarios.remove(id)
	r.mu.Lock()
	if r.byContent[sc.contentID] == id {
		delete(r.byContent, sc.contentID)
	}
	r.mu.Unlock()
	prefix := sc.contentID + "\x00"
	r.results.removeIf(func(key string) bool {
		return len(key) >= len(prefix) && key[:len(prefix)] == prefix
	})
	return true
}

// resultKey builds a result-cache key. Operational knobs (deadline, budget,
// workers) are deliberately excluded: they change whether a computation
// finishes, never what a finished computation returns, so a result computed
// under one budget serves requests carrying any other.
func resultKey(sc *scenario, endpoint string, params ...string) string {
	key := sc.contentID + "\x00" + endpoint
	for _, p := range params {
		key += "\x00" + p
	}
	return key
}
