package server

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/chase"
	"repro/internal/cwa"
	"repro/internal/dependency"
	"repro/internal/incr"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/parser"
	"repro/internal/score"
	"repro/internal/status"
	"repro/internal/store"
)

// errUnknownScenario is returned when a request names a scenario that is
// not registered (or was evicted); the handler maps it to HTTP 404 with
// code "unknown_scenario".
var errUnknownScenario = errors.New("server: unknown scenario")

// scenario is one registered (setting, source) pair. The parsed *Setting is
// the plan cache: every tgd/egd lazily compiles and memoizes its body,
// head, slot and delta plans on first use (dependency/plan.go), so keeping
// the Setting resident amortizes compilation across every request that
// names the scenario. Heavy derived artifacts (universal solution, core,
// canonical solution) are memoized here under a per-scenario mutex: the
// first request computes under its own deadline, later requests reuse the
// result, and concurrent duplicates block on the mutex instead of
// recomputing (single-flight).
type scenario struct {
	id string
	// contentID identifies the scenario by content: a hash of the
	// canonical setting text and the source's ContentKey. Result-cache
	// entries key on it, so re-registering identical content (even under a
	// new name, even after an eviction) keeps hitting the same cache
	// lines.
	contentID string
	// rawHash fingerprints the setting/source texts exactly as submitted
	// at registration. A named re-registration with byte-identical texts
	// is a dedup hit without re-parsing — the hot path for cluster members
	// that see the same registration storm through every entry node.
	rawHash     [32]byte
	settingText string // canonical form (parser.FormatSetting)
	setting     *dependency.Setting
	weakly      bool
	richly      bool
	// engine incrementally maintains the chase result under source
	// mutations (weakly acyclic settings only; nil otherwise). It owns its
	// own copy of the source; sc.source mirrors its latest snapshot.
	engine *incr.Engine
	// initVersion is the source version at registration. A scenario whose
	// current version differs has been mutated: its content no longer
	// matches contentID, so it leaves the content-dedup map and its result
	// keys move to a per-scenario namespace.
	initVersion uint64

	// mutMu serializes mutation batches (version check through cache
	// purge), single-flighting concurrent mutators. During a membership
	// transfer window it additionally serializes the handoff capture+push
	// against mutations, and guards movedTo.
	mutMu sync.Mutex
	// movedTo, when non-empty, names the member this scenario was handed
	// off to during the open transfer window. Guarded by mutMu; set only
	// after the new owner acknowledged the install, so a mutation that
	// observes it can safely forward there.
	movedTo string

	mu sync.Mutex // guards source and the memos below
	// source is the current source instance. The pointer is swapped (never
	// mutated in place) so readers can use a snapshot without locking
	// beyond the accessor.
	source *instance.Instance
	// universal and chaseSteps are set once a chase succeeds (eagerly at
	// registration for weakly acyclic settings, else by the first
	// successful request).
	universal  *instance.Instance
	chaseSteps int
	core       *instance.Instance
	cansol     *instance.Instance
}

// src returns the current source instance. The returned instance is
// treated as immutable: mutations swap the pointer.
func (sc *scenario) src() *instance.Instance {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.source
}

// version returns the scenario's current source version (monotone: +1 per
// source atom actually inserted or removed).
func (sc *scenario) version() uint64 {
	if sc.engine != nil {
		return sc.engine.Version()
	}
	return sc.src().Version()
}

// mutated reports whether any mutation batch has changed the source since
// registration (versions only move forward, so equality means pristine).
func (sc *scenario) mutated() bool {
	return sc.version() != sc.initVersion
}

// chaseFor returns the scenario's standard-chase result, memoized on
// success. Engine-backed scenarios delegate to the incremental engine —
// the maintained fixpoint is the chase result — so a request after a
// mutation pays only the delta the mutation left behind, not a re-chase.
// The options carry the request's context and budget.
func (sc *scenario) chaseFor(opt chase.Options) (universal *instance.Instance, steps int, err error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.universal != nil {
		return sc.universal, sc.chaseSteps, nil
	}
	if sc.engine != nil {
		u, err := sc.engine.Solution(opt)
		if err != nil {
			return nil, 0, err
		}
		sc.universal = u
		sc.chaseSteps = sc.engine.Steps()
		return sc.universal, sc.chaseSteps, nil
	}
	res, err := chase.Standard(sc.setting, sc.source, opt)
	if err != nil {
		return nil, 0, err
	}
	sc.universal = res.Target
	sc.chaseSteps = res.Steps
	return sc.universal, sc.chaseSteps, nil
}

// coreFor returns the minimal CWA-solution Core_D(S), memoized on success.
func (sc *scenario) coreFor(opt chase.Options) (*instance.Instance, error) {
	u, _, err := sc.chaseFor(opt)
	if err != nil {
		if chase.IsEgdFailure(err) {
			err = fmt.Errorf("%w: %v", cwa.ErrNoSolution, err)
		}
		return nil, err
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.core == nil {
		sc.core = score.Core(u)
	}
	return sc.core, nil
}

// cansolFor returns the canonical solution CanSol_D(S), memoized on
// success.
func (sc *scenario) cansolFor(opt chase.Options) (*instance.Instance, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.cansol == nil {
		can, err := cwa.CanSol(sc.setting, sc.source, opt)
		if err != nil {
			return nil, err
		}
		sc.cansol = can
	}
	return sc.cansol, nil
}

// chased reports whether a successful chase result is memoized.
func (sc *scenario) chased() (steps, atoms int, ok bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.universal == nil {
		return 0, 0, false
	}
	return sc.chaseSteps, sc.universal.Len(), true
}

// registry holds the resident scenarios (LRU-bounded) and the result cache
// (serialized successful response bodies, LRU-bounded, keyed by content).
type registry struct {
	scenarios *lru // scenario ID -> *scenario
	results   *lru // contentID + endpoint + params -> []byte response body

	// store, when non-nil, makes the registry durable: registrations and
	// mutations are journaled before acknowledgement, capacity evictions
	// page state to disk instead of forgetting it, and lookup misses
	// rehydrate from the catalog (persist.go).
	store *store.Store

	// moved, when non-nil, reports the member a scenario was handed off to
	// during an open transfer window ("" = not handed off). drop consults
	// it on the non-resident path, where no scenario carries a movedTo
	// mark: a handed-off copy that was LRU-evicted mid-window must still
	// refuse a local DELETE. Cluster mode wires it to the server's handed
	// map.
	moved func(id string) string

	mu        sync.Mutex
	byContent map[string]string // contentID -> scenario ID
	loads     map[string]*load  // in-flight rehydrations, single-flighted
	nextID    int
}

func newRegistry(maxScenarios, maxResults int, st *store.Store) *registry {
	r := &registry{
		scenarios: newLRU(maxScenarios),
		results:   newLRU(maxResults),
		store:     st,
		byContent: make(map[string]string),
		loads:     make(map[string]*load),
	}
	// Every path a scenario leaves by — capacity eviction, DELETE, removeIf —
	// runs this hook. A store-backed scenario that is still cataloged is only
	// losing residency, not identity: its full state (fixpoint included) is
	// paged out so the next lookup rehydrates without re-chasing, and the
	// content-dedup entry and cached results stay — the version they key on
	// persists with it. Otherwise the scenario is gone for good: the
	// content-dedup entry goes, and so do the scenario's mutated-namespace
	// results. Those key on scenario identity plus a version counter that a
	// later same-name scenario restarts from scratch, so a stale entry could
	// answer for different content; they can never be served safely once the
	// scenario is gone. Content-keyed results stay: they are pure functions
	// of (content, version) and deliberately survive evictions so
	// re-registered content keeps hitting them.
	r.scenarios.onEvict = func(id string, v any) {
		sc := v.(*scenario)
		if r.store != nil && r.store.Has(id) {
			r.store.PageOut(sc.persistState())
			return
		}
		r.mu.Lock()
		if r.byContent[sc.contentID] == id {
			delete(r.byContent, sc.contentID)
		}
		r.mu.Unlock()
		mutatedPrefix := mutatedNamespace(id)
		r.results.removeIf(func(key string) bool {
			return strings.HasPrefix(key, mutatedPrefix)
		})
	}
	return r
}

// canonicalContent parses and validates a registration's setting and
// source and derives the scenario's content identity: a hash of the
// canonical setting text plus the source's content key. Registration and
// the cluster routing layer (which pins content-derived names so placement
// is content-addressed) must agree on it, so both call this.
func canonicalContent(settingText, sourceText string) (s *dependency.Setting, src *instance.Instance, canonical, contentID string, err error) {
	s, err = parser.ParseSetting(settingText)
	if err != nil {
		return nil, nil, "", "", status.WithKind(fmt.Errorf("parsing setting: %w", err), status.Usage)
	}
	src, err = parser.ParseInstance(sourceText)
	if err != nil {
		return nil, nil, "", "", status.WithKind(fmt.Errorf("parsing source: %w", err), status.Usage)
	}
	if src.HasNulls() {
		return nil, nil, "", "", status.WithKind(fmt.Errorf("source instance must be null-free"), status.Usage)
	}
	canonical = parser.FormatSetting(s)
	sum := sha256.Sum256([]byte(canonical + "\x00" + src.ContentKey()))
	return s, src, canonical, hex.EncodeToString(sum[:16]), nil
}

// register parses and validates a setting and source, dedupes by content,
// runs the registration chase for weakly acyclic settings, and stores the
// scenario. The returned bool reports whether an existing content-identical
// scenario was reused.
func (r *registry) register(name, settingText, sourceText string, opt chase.Options) (*scenario, bool, error) {
	rawHash := sha256.Sum256([]byte(settingText + "\x00" + sourceText))
	if name != "" {
		// Byte-identical texts under the same name are a dedup hit without
		// re-parsing. A raw mismatch proves nothing (formatting may differ)
		// and falls through to the canonical comparison below.
		r.mu.Lock()
		if v, ok := r.scenarios.get(name); ok {
			if existing := v.(*scenario); existing.rawHash == rawHash && !existing.mutated() {
				r.mu.Unlock()
				return existing, true, nil
			}
		}
		r.mu.Unlock()
	}

	s, src, canonical, contentID, err := canonicalContent(settingText, sourceText)
	if err != nil {
		return nil, false, err
	}

	r.mu.Lock()
	if id, ok := r.byContent[contentID]; ok && (name == "" || name == id) {
		if v, live := r.scenarios.get(id); live {
			r.mu.Unlock()
			return v.(*scenario), true, nil
		}
		if r.store != nil && r.store.Has(id) {
			// Identical content, paged out: rehydrate it instead of
			// registering a duplicate.
			r.mu.Unlock()
			if sc, err := r.rehydrate(id); err == nil {
				return sc, true, nil
			}
			r.mu.Lock()
		}
		delete(r.byContent, contentID)
	}
	if name == "" {
		r.nextID++
		name = fmt.Sprintf("s%d", r.nextID)
	} else if v, ok := r.scenarios.get(name); ok {
		existing := v.(*scenario)
		if existing.contentID == contentID && !existing.mutated() {
			r.mu.Unlock()
			return existing, true, nil
		}
		r.mu.Unlock()
		return nil, false, status.WithKind(
			fmt.Errorf("scenario %q already registered with different content; DELETE it first", name),
			status.Usage)
	} else if r.store != nil && r.store.Has(name) {
		// The name is cataloged but not resident. Same pristine content
		// reuses it (rehydrated); anything else is a conflict, exactly as if
		// it were resident.
		r.mu.Unlock()
		existing, err := r.rehydrate(name)
		if err != nil {
			return nil, false, err
		}
		if existing.contentID == contentID && !existing.mutated() {
			return existing, true, nil
		}
		return nil, false, status.WithKind(
			fmt.Errorf("scenario %q already registered with different content; DELETE it first", name),
			status.Usage)
	}
	r.mu.Unlock()

	sc := &scenario{
		id:          name,
		contentID:   contentID,
		rawHash:     rawHash,
		settingText: canonical,
		setting:     s,
		source:      src,
		weakly:      s.WeaklyAcyclic(),
		richly:      s.RichlyAcyclic(),
		initVersion: src.Version(),
	}
	// Registration chases only weakly acyclic settings, whose chase is
	// guaranteed to terminate (Proposition 6.6); anything else — including
	// Turing-complete settings like D_halt — defers chasing to requests,
	// which carry their own deadlines and budgets. An egd failure here is
	// not a registration error: the scenario is kept and evaluation
	// endpoints report no_solution per request. Weakly acyclic scenarios
	// get an incremental engine: it runs this registration chase and then
	// keeps the result maintained across source mutations.
	if sc.weakly {
		// A budget/deadline expiry here still returns a (dirty) engine,
		// which re-saturates under the first request's own budget.
		if eng, _ := incr.New(s, src, opt); eng != nil {
			sc.engine = eng
		}
		sc.chaseFor(opt)
	}

	// Durability before acknowledgement: the registration record must be in
	// the WAL before the scenario becomes visible (and before the handler
	// sends the 2xx). A journaling failure refuses the registration.
	if r.store != nil {
		if err := r.store.Register(sc.persistState()); err != nil {
			return nil, false, status.WithKind(fmt.Errorf("journaling registration: %w", err), status.Internal)
		}
	}

	r.mu.Lock()
	r.byContent[contentID] = name
	r.mu.Unlock()
	r.scenarios.put(name, sc)
	return sc, false, nil
}

// lookup returns the named scenario, refreshing its LRU position. With a
// store, a residency miss falls through to the catalog: a paged-out or
// recovered-but-cold scenario is rehydrated from disk (single-flight).
func (r *registry) lookup(id string) (*scenario, error) {
	v, ok := r.scenarios.get(id)
	if !ok {
		if r.store != nil && r.store.Has(id) {
			return r.rehydrate(id)
		}
		return nil, fmt.Errorf("%w: %q", errUnknownScenario, id)
	}
	return v.(*scenario), nil
}

// drop removes the named scenario and its cached results. The eviction hook
// handles the content-dedup entry and the mutated-namespace results; an
// explicit DELETE additionally clears the content-keyed results, which
// capacity evictions keep. Unless force is set, a scenario handed off
// during an open transfer window refuses the drop with errMoved (the
// caller forwards the DELETE to the new owner); the check and the removal
// run under the scenario's mutation lock so a concurrent handoff cannot
// slip between them and resurrect the copy at the new owner. force is the
// post-commit cleanup path (CommitWindow) and the post-push-back drop,
// where the handoff already happened by design.
func (r *registry) drop(id string, force bool) (bool, error) {
	v, resident := r.scenarios.get(id)
	var contentID string
	if resident {
		sc := v.(*scenario)
		contentID = sc.contentID
		if !force {
			sc.mutMu.Lock()
			defer sc.mutMu.Unlock()
			if sc.movedTo != "" {
				return false, &errMoved{id: id, newOwner: sc.movedTo}
			}
		}
	} else if r.store != nil {
		meta, stored := r.store.GetMeta(id)
		if !stored {
			return false, nil
		}
		// A handed-off scenario that was paged out mid-window has no
		// resident movedTo mark; the handed map still knows its new owner.
		if !force && r.moved != nil {
			if owner := r.moved(id); owner != "" {
				return false, &errMoved{id: id, newOwner: owner}
			}
		}
		contentID = meta.ContentID
	} else {
		return false, nil
	}
	// Journal the drop first: onEvict then sees the scenario is no longer
	// cataloged and runs the full-cleanup path rather than paging it out.
	if r.store != nil {
		r.store.Drop(id)
	}
	if resident {
		r.scenarios.remove(id)
	} else {
		// Not resident, so no eviction hook fires: clean up identity state
		// and mutated-namespace results directly.
		r.mu.Lock()
		if r.byContent[contentID] == id {
			delete(r.byContent, contentID)
		}
		r.mu.Unlock()
		mutatedPrefix := mutatedNamespace(id)
		r.results.removeIf(func(key string) bool {
			return strings.HasPrefix(key, mutatedPrefix)
		})
	}
	contentPrefix := contentID + "\x00"
	r.results.removeIf(func(key string) bool {
		return strings.HasPrefix(key, contentPrefix)
	})
	return true, nil
}

// present reports whether the scenario exists on this member, resident or
// cataloged in the durable store. Cluster routing uses it to decide
// between serving locally and forwarding during a transfer window.
func (r *registry) present(id string) bool {
	if _, ok := r.scenarios.get(id); ok {
		return true
	}
	return r.store != nil && r.store.Has(id)
}

// install registers an already-built scenario received from another member
// (a membership transfer). The content-dedup entry is only claimed for
// pristine scenarios — a mutated one no longer matches its contentID —
// and nextID advances past generated names so later anonymous
// registrations cannot collide with a transferred "sN".
func (r *registry) install(sc *scenario) {
	r.mu.Lock()
	if !sc.mutated() {
		r.byContent[sc.contentID] = sc.id
	}
	if n, ok := generatedID(sc.id); ok && n > r.nextID {
		r.nextID = n
	}
	r.mu.Unlock()
	r.scenarios.put(sc.id, sc)
}

// mutate applies a mutation batch to the scenario: version precondition,
// source update (incrementally maintained when the engine can), memo reset
// and stale-result purge, all under the scenario's mutation lock so
// concurrent mutators are single-flighted. baseVersion 0 means
// unconditional; any other value must match the current version or the
// batch is rejected with status.Conflict (the caller maps it to HTTP 409).
func (r *registry) mutate(sc *scenario, muts []instance.Mutation, baseVersion uint64, opt chase.Options) (incr.ApplyResult, error) {
	sc.mutMu.Lock()
	defer sc.mutMu.Unlock()

	// The lock may have been held by an in-progress handoff; re-check after
	// acquiring it. The new owner installed this scenario before movedTo was
	// set, so forwarding there (the caller's job) preserves the write.
	if sc.movedTo != "" {
		return incr.ApplyResult{}, &errMoved{id: sc.id, newOwner: sc.movedTo}
	}

	cur := sc.version()
	if baseVersion != 0 && baseVersion != cur {
		return incr.ApplyResult{}, status.WithKind(
			fmt.Errorf("base_version %d does not match current version %d", baseVersion, cur),
			status.Conflict)
	}
	wasPristine := cur == sc.initVersion

	var res incr.ApplyResult
	var applyErr error
	if sc.engine != nil {
		res, applyErr = sc.engine.Apply(muts, opt)
		if applyErr != nil && res.Version == 0 {
			// Validation failure: nothing was applied.
			return res, status.WithKind(applyErr, status.Usage)
		}
	} else {
		var err error
		if res, err = applyWithoutEngine(sc, muts); err != nil {
			return res, status.WithKind(err, status.Usage)
		}
	}

	changed := res.Inserted+res.Deleted > 0
	if changed && r.store != nil {
		// Append-before-acknowledge: the batch is journaled (as submitted,
		// with the version it produced) before the handler can send the 2xx.
		// The in-memory apply already happened; a journaling failure reports
		// the mutation as not acknowledged — replaying the WAL without it
		// reconstructs the pre-batch state, which is exactly what an
		// unacknowledged request is allowed to mean.
		if serr := r.store.Mutate(sc.id, res.Version, muts); serr != nil {
			return res, status.WithKind(fmt.Errorf("journaling mutation: %w", serr), status.Internal)
		}
	}
	if changed {
		metrics.ServerMutations.Inc()
		// Swap in the new source and invalidate the derived memos; the
		// result cache keys on the version, so entries for the old version
		// can never be served again — the purge below only reclaims their
		// space.
		sc.mu.Lock()
		if sc.engine != nil {
			sc.source = sc.engine.SourceSnapshot()
		}
		sc.universal = nil
		sc.chaseSteps = 0
		sc.core = nil
		sc.cansol = nil
		sc.mu.Unlock()

		if wasPristine {
			// First mutation: the content no longer matches contentID, so
			// content-dedup must stop resolving to this scenario.
			r.mu.Lock()
			if r.byContent[sc.contentID] == sc.id {
				delete(r.byContent, sc.contentID)
			}
			r.mu.Unlock()
		}
		contentPrefix, mutatedPrefix := sc.contentID+"\x00", mutatedNamespace(sc.id)
		r.results.removeIf(func(key string) bool {
			return strings.HasPrefix(key, mutatedPrefix) ||
				(wasPristine && strings.HasPrefix(key, contentPrefix))
		})
	}
	// applyErr here is a chase-level failure (budget, deadline) with the
	// mutation already applied — the engine is dirty and will recover; the
	// caller reports the error with the new version.
	return res, applyErr
}

// applyWithoutEngine is the mutation path for scenarios without an
// incremental engine (settings that are not weakly acyclic): validate,
// apply to a fresh clone, swap. Derived results are recomputed from
// scratch by the next request, under that request's own budget.
func applyWithoutEngine(sc *scenario, muts []instance.Mutation) (incr.ApplyResult, error) {
	for _, m := range muts {
		arity, ok := sc.setting.Source[m.Atom.Rel]
		if !ok {
			return incr.ApplyResult{}, fmt.Errorf("%s is not a source relation", m.Atom.Rel)
		}
		if len(m.Atom.Args) != arity {
			return incr.ApplyResult{}, fmt.Errorf("%s has arity %d, got %d arguments", m.Atom.Rel, arity, len(m.Atom.Args))
		}
		for _, v := range m.Atom.Args {
			if !v.IsConst() {
				return incr.ApplyResult{}, fmt.Errorf("source atom %v must be null-free", m.Atom)
			}
		}
	}
	next := sc.src().Clone()
	var res incr.ApplyResult
	for _, m := range muts {
		if m.Insert {
			if next.Add(m.Atom) {
				res.Inserted++
			}
		} else {
			if next.Remove(m.Atom) {
				res.Deleted++
			}
		}
	}
	res.Version = next.Version()
	res.Fallback = true
	sc.mu.Lock()
	sc.source = next
	sc.mu.Unlock()
	return res, nil
}

// mutatedNamespace is the result-key namespace of a scenario that has
// diverged from its registered content. Keying by scenario identity (not
// content) keeps two same-content scenarios that mutate differently from
// ever sharing cache lines.
func mutatedNamespace(id string) string {
	return "m!" + id + "\x00"
}

// resultKey builds a result-cache key. Operational knobs (deadline, budget,
// workers) are deliberately excluded: they change whether a computation
// finishes, never what a finished computation returns, so a result computed
// under one budget serves requests carrying any other. The source version
// is always part of the key, so a mutation precisely invalidates: requests
// against the new version can never be served a result computed before it.
func resultKey(sc *scenario, endpoint string, params ...string) string {
	ns := sc.contentID
	if sc.mutated() {
		ns = mutatedNamespace(sc.id) + sc.contentID
	}
	key := ns + "\x00v" + strconv.FormatUint(sc.version(), 10) + "\x00" + endpoint
	for _, p := range params {
		key += "\x00" + p
	}
	return key
}
