package server_test

// End-to-end tests over httptest: the paper's worked examples round-trip
// through the HTTP surface, the result cache serves byte-identical bodies,
// deadlines map to 504 without leaking goroutines, and the admission gate
// sheds load with 503.

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/genwl"
	"repro/internal/hom"
	"repro/internal/metrics"
	"repro/internal/parser"
	"repro/internal/semigroup"
	"repro/internal/server"
	"repro/internal/server/api"
	"repro/internal/server/client"
	"repro/internal/turing"
)

const quickstartSetting = `
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
target-deps:
  d3: F(y,x) -> exists z : G(x,z).
  d4: F(x,y) & F(x,z) -> y = z.
`

const quickstartSource = `M(a,b). N(a,b). N(a,c).`

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, *client.Client) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)
	c.HTTPClient = ts.Client()
	return srv, ts, c
}

func registerQuickstart(t *testing.T, c *client.Client, name string) api.ScenarioInfo {
	t.Helper()
	info, err := c.Register(context.Background(), api.RegisterRequest{
		Name: name, Setting: quickstartSetting, Source: quickstartSource,
	})
	if err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	return info
}

func wantAPIError(t *testing.T, err error, code string, httpStatus int) {
	t.Helper()
	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("want *client.APIError %s/%d, got %T: %v", code, httpStatus, err, err)
	}
	if apiErr.Code != code || apiErr.StatusCode != httpStatus {
		t.Fatalf("want %s/%d, got %s/%d (%s)", code, httpStatus, apiErr.Code, apiErr.StatusCode, apiErr.Message)
	}
}

func TestQuickstartEndToEnd(t *testing.T) {
	_, _, c := newTestServer(t, server.Config{})
	ctx := context.Background()

	info := registerQuickstart(t, c, "qs")
	if !info.WeaklyAcyclic || !info.Chased || info.Existing {
		t.Fatalf("registration info = %+v", info)
	}
	// Content-identical re-registration dedupes, even anonymously.
	again, err := c.Register(ctx, api.RegisterRequest{Setting: quickstartSetting, Source: quickstartSource})
	if err != nil || !again.Existing || again.ID != "qs" {
		t.Fatalf("re-register = %+v, %v; want existing qs", again, err)
	}

	chase, err := c.Chase(ctx, api.EvalRequest{Scenario: "qs"})
	if err != nil {
		t.Fatal(err)
	}
	if chase.Steps == 0 || chase.Atoms == 0 {
		t.Fatalf("chase = %+v", chase)
	}

	core, err := c.Core(ctx, api.EvalRequest{Scenario: "qs"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := parser.ParseInstance(core.Instance)
	if err != nil {
		t.Fatalf("core text does not re-parse: %v\n%s", err, core.Instance)
	}
	want, _ := parser.ParseInstance(`E(a,b). F(a,_1). G(_1,_2).`)
	if !hom.Isomorphic(got, want) {
		t.Fatalf("core %s is not isomorphic to the Theorem 5.1 core", core.Instance)
	}

	if _, err := c.CanSol(ctx, api.EvalRequest{Scenario: "qs"}); err != nil {
		t.Fatal(err)
	}

	exists, err := c.Exists(ctx, api.EvalRequest{Scenario: "qs"})
	if err != nil || !exists.Exists {
		t.Fatalf("exists = %+v, %v", exists, err)
	}

	ans, err := c.Certain(ctx, api.EvalRequest{
		Scenario: "qs", Query: `q(x,y) :- E(x,y).`, Semantics: "certain-cup",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Answers) != 1 || ans.Answers[0][0] != "a" || ans.Answers[0][1] != "b" {
		t.Fatalf("certain⊔ = %v, want [[a b]]", ans.Answers)
	}

	n := 0
	sum, err := c.Enum(ctx, api.EvalRequest{Scenario: "qs", Max: 50}, func(sol api.EnumSolution) error {
		if _, err := parser.ParseInstance(sol.Solution); err != nil {
			return err
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Done || sum.Count != n || n == 0 {
		t.Fatalf("enum summary %+v after %d solutions", sum, n)
	}
}

// TestCertainCacheByteIdentical is the acceptance criterion: two identical
// /v1/certain requests return byte-identical JSON, the second served from
// the result cache, observable via the server_cache_hits counter on
// /metricsz.
func TestCertainCacheByteIdentical(t *testing.T) {
	_, ts, c := newTestServer(t, server.Config{})
	registerQuickstart(t, c, "cache")

	const body = `{"scenario":"cache","query":"q(x,y) :- E(x,y).","semantics":"certain-cup"}`
	post := func() (string, []byte) {
		resp, err := ts.Client().Post(ts.URL+"/v1/certain", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		return resp.Header.Get("X-Cache"), b
	}

	hitsBefore := metrics.ServerCacheHits.Load()
	cache1, body1 := post()
	cache2, body2 := post()
	if cache1 != "miss" || cache2 != "hit" {
		t.Fatalf("X-Cache sequence = %q, %q; want miss, hit", cache1, cache2)
	}
	if string(body1) != string(body2) {
		t.Fatalf("cached response not byte-identical:\n%s\n%s", body1, body2)
	}
	if d := metrics.ServerCacheHits.Load() - hitsBefore; d < 1 {
		t.Fatalf("server_cache_hits advanced by %d, want >= 1", d)
	}

	// The counter is scrapeable on /metricsz.
	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?m)^server_cache_hits (\d+)$`).FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("/metricsz missing server_cache_hits:\n%s", text)
	}
	if v, _ := strconv.Atoi(m[1]); v < 1 {
		t.Fatalf("server_cache_hits on /metricsz = %s, want >= 1", m[1])
	}
}

// TestAnomalyFourSemantics serves the Section 3 anomaly workload: on a
// copying setting all four semantics return Q evaluated on the copy — 18
// answers on two 9-cycles.
func TestAnomalyFourSemantics(t *testing.T) {
	_, _, c := newTestServer(t, server.Config{})
	ctx := context.Background()

	if _, err := c.Register(ctx, api.RegisterRequest{
		Name:    "anomaly",
		Setting: parser.FormatSetting(genwl.Copying()),
		Source:  parser.FormatInstance(genwl.TwoNineCycles()),
	}); err != nil {
		t.Fatal(err)
	}

	const q = `(x) . Pp(x) | exists y,z (Pp(y) & Ep(y,z) & !(Pp(z)))`
	var first api.CertainResponse
	for i, sem := range []string{"certain-cap", "certain-cup", "maybe-cap", "maybe-cup"} {
		ans, err := c.Certain(ctx, api.EvalRequest{Scenario: "anomaly", Query: q, Semantics: sem})
		if err != nil {
			t.Fatalf("%s: %v", sem, err)
		}
		if len(ans.Answers) != 18 {
			t.Fatalf("%s: %d answers, want 18 (the full two cycles)", sem, len(ans.Answers))
		}
		if i == 0 {
			first = ans
			continue
		}
		for j := range ans.Answers {
			if ans.Answers[j][0] != first.Answers[j][0] {
				t.Fatalf("%s answers differ from certain-cap at %d", sem, j)
			}
		}
	}
}

// TestSemigroupBudget422 registers D_emb (Example 6.1: solutions exist but
// the chase never terminates) and asserts the step budget maps to 422.
func TestSemigroupBudget422(t *testing.T) {
	_, _, c := newTestServer(t, server.Config{})
	ctx := context.Background()

	src, err := semigroup.SourceInstance(semigroup.Example61Partial())
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Register(ctx, api.RegisterRequest{
		Name:    "demb",
		Setting: parser.FormatSetting(semigroup.DembSetting()),
		Source:  parser.FormatInstance(src),
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.WeaklyAcyclic || info.Chased {
		t.Fatalf("D_emb must register unchased and non-weakly-acyclic: %+v", info)
	}

	_, err = c.Chase(ctx, api.EvalRequest{Scenario: "demb", MaxSteps: 200})
	wantAPIError(t, err, "budget_exceeded", 422)

	_, err = c.Exists(ctx, api.EvalRequest{Scenario: "demb", MaxSteps: 200})
	wantAPIError(t, err, "budget_exceeded", 422)
}

// TestTuringDeadline504NoGoroutineLeak is the acceptance criterion: a 50ms
// deadline on the D_halt looping machine returns 504, and repeated timed-out
// requests leave no goroutines behind.
func TestTuringDeadline504NoGoroutineLeak(t *testing.T) {
	_, ts, c := newTestServer(t, server.Config{})
	ctx := context.Background()

	loopSrc, err := turing.SourceInstance(turing.LoopMachine())
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Register(ctx, api.RegisterRequest{
		Name:    "turing",
		Setting: parser.FormatSetting(turing.DHaltSetting()),
		Source:  parser.FormatInstance(loopSrc),
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.WeaklyAcyclic || info.Chased {
		t.Fatalf("D_halt must register unchased: %+v", info)
	}

	// Warm up the connection pool, then measure the goroutine baseline.
	if _, err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	ts.Client().CloseIdleConnections()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	for i := 0; i < 10; i++ {
		_, err = c.Chase(ctx, api.EvalRequest{Scenario: "turing", DeadlineMillis: 50})
		wantAPIError(t, err, "timeout", 504)
	}

	ts.Client().CloseIdleConnections()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestNoSolution404 exercises the 404-class mapping: an egd conflict on
// constants means no (CWA-)solution exists.
func TestNoSolution404(t *testing.T) {
	_, _, c := newTestServer(t, server.Config{})
	ctx := context.Background()

	if _, err := c.Register(ctx, api.RegisterRequest{
		Name: "conflict",
		Setting: `
source P/2.
target R/2.
st:
  d1: P(x,y) -> R(x,y).
target-deps:
  e1: R(x,y) & R(x,z) -> y = z.
`,
		Source: `P(a,b). P(a,c).`,
	}); err != nil {
		t.Fatal(err)
	}

	_, err := c.Core(ctx, api.EvalRequest{Scenario: "conflict"})
	wantAPIError(t, err, "no_solution", 404)

	// Exists is a decision, not a failure: it answers false with 200.
	exists, err := c.Exists(ctx, api.EvalRequest{Scenario: "conflict"})
	if err != nil || exists.Exists {
		t.Fatalf("exists = %+v, %v; want false, nil", exists, err)
	}
}

// TestAdmission503 fills the single worker slot with a slow chase and
// asserts the next request is shed with 503.
func TestAdmission503(t *testing.T) {
	_, _, c := newTestServer(t, server.Config{MaxConcurrent: 1, QueueDepth: -1})
	ctx := context.Background()

	registerQuickstart(t, c, "qs")
	loopSrc, err := turing.SourceInstance(turing.LoopMachine())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, api.RegisterRequest{
		Name:    "turing",
		Setting: parser.FormatSetting(turing.DHaltSetting()),
		Source:  parser.FormatInstance(loopSrc),
	}); err != nil {
		t.Fatal(err)
	}

	slow := make(chan error, 1)
	go func() {
		_, err := c.Chase(ctx, api.EvalRequest{Scenario: "turing", DeadlineMillis: 2000})
		slow <- err
	}()

	// Wait until the slow request holds the only slot.
	deadline := time.Now().Add(2 * time.Second)
	for {
		h, err := c.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.InFlight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow request never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}

	_, err = c.Core(ctx, api.EvalRequest{Scenario: "qs"})
	wantAPIError(t, err, "overloaded", 503)

	wantAPIError(t, <-slow, "timeout", 504)
}

func TestScenarioLRUEviction(t *testing.T) {
	_, _, c := newTestServer(t, server.Config{MaxScenarios: 2})
	ctx := context.Background()

	sources := []string{`M(a,b).`, `M(c,d).`, `M(e,f).`}
	for i, src := range sources {
		if _, err := c.Register(ctx, api.RegisterRequest{
			Name: "sc" + strconv.Itoa(i), Setting: quickstartSetting, Source: src,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// sc0 is least recently used and must be gone.
	_, err := c.Core(ctx, api.EvalRequest{Scenario: "sc0"})
	wantAPIError(t, err, "unknown_scenario", 404)
	for _, id := range []string{"sc1", "sc2"} {
		if _, err := c.Core(ctx, api.EvalRequest{Scenario: id}); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

func TestDeleteAndDrain(t *testing.T) {
	srv, _, c := newTestServer(t, server.Config{})
	ctx := context.Background()

	registerQuickstart(t, c, "qs")
	if err := c.Delete(ctx, "qs"); err != nil {
		t.Fatal(err)
	}
	_, err := c.Core(ctx, api.EvalRequest{Scenario: "qs"})
	wantAPIError(t, err, "unknown_scenario", 404)

	// Re-registration after deletion works and recomputes.
	registerQuickstart(t, c, "qs")

	// Draining: new evaluation work is refused, health reports it.
	srv.BeginDrain()
	_, err = c.Core(ctx, api.EvalRequest{Scenario: "qs"})
	wantAPIError(t, err, "overloaded", 503)
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Draining || h.Status != "draining" {
		t.Fatalf("health during drain = %+v", h)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	registerQuickstart(t, c, "qs")

	// Malformed JSON body.
	resp, err := ts.Client().Post(ts.URL+"/v1/core", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	var envelope api.Error
	json.NewDecoder(resp.Body).Decode(&envelope)
	resp.Body.Close()
	if resp.StatusCode != 400 || envelope.Err.Code != "usage" {
		t.Fatalf("malformed body: %d %+v", resp.StatusCode, envelope)
	}

	// Missing scenario field.
	_, err = c.Core(ctx, api.EvalRequest{})
	wantAPIError(t, err, "usage", 400)

	// Unknown semantics.
	_, err = c.Certain(ctx, api.EvalRequest{Scenario: "qs", Query: "q(x) :- E(x,y).", Semantics: "banana"})
	wantAPIError(t, err, "usage", 400)

	// Unparseable query.
	_, err = c.Certain(ctx, api.EvalRequest{Scenario: "qs", Query: ":-("})
	wantAPIError(t, err, "usage", 400)

	// Unparseable setting.
	_, err = c.Register(ctx, api.RegisterRequest{Setting: "party", Source: "M(a,b)."})
	wantAPIError(t, err, "usage", 400)

	// Name collision with different content.
	_, err = c.Register(ctx, api.RegisterRequest{Name: "qs", Setting: quickstartSetting, Source: `M(z,z).`})
	wantAPIError(t, err, "usage", 400)

	// Sources with nulls are rejected.
	_, err = c.Register(ctx, api.RegisterRequest{Setting: quickstartSetting, Source: `M(a,_1).`})
	wantAPIError(t, err, "usage", 400)
}

// TestChaseMemoServedToLaterRequests: a non-weakly-acyclic scenario whose
// chase nevertheless terminates memoizes its first successful result.
func TestChaseMemoServedToLaterRequests(t *testing.T) {
	_, _, c := newTestServer(t, server.Config{})
	ctx := context.Background()

	zigSrc, err := turing.SourceInstance(turing.ZigzagMachine(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, api.RegisterRequest{
		Name:    "zigzag",
		Setting: parser.FormatSetting(turing.DHaltSetting()),
		Source:  parser.FormatInstance(zigSrc),
	}); err != nil {
		t.Fatal(err)
	}
	first, err := c.Chase(ctx, api.EvalRequest{Scenario: "zigzag", MaxSteps: 200000})
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Scenario(ctx, "zigzag")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Chased || info.ChaseSteps != first.Steps {
		t.Fatalf("scenario info after chase = %+v, want memoized %d steps", info, first.Steps)
	}
}
