package server

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/chase"
	"repro/internal/incr"
	"repro/internal/parser"
	"repro/internal/status"
	"repro/internal/store"
)

// This file is the registry's durable-store glue: capturing a resident
// scenario's persistable state, rehydrating a cataloged scenario on a
// lookup miss (single-flight), and seeding identity state (content dedup,
// the generated-name counter) from the catalog at boot. With no store
// configured none of it runs — the registry behaves exactly as before.

// persistState captures the scenario's durable form. Engine-backed
// scenarios capture source and fixpoint in one engine critical section
// (a torn pair would resume into a silently non-universal state); the
// fixpoint is nil when the engine has no clean one (no-solution, dirty).
// Scenarios without an engine persist the source plus, for settings that
// are not weakly acyclic, the memoized universal solution — which recovery
// reinstates as a memo, never feeds to incr.Resume.
func (sc *scenario) persistState() *store.State {
	st := &store.State{
		ID:          sc.id,
		ContentID:   sc.contentID,
		SettingText: sc.settingText,
		InitVersion: sc.initVersion,
	}
	if sc.engine != nil {
		st.Source, st.Fixpoint, st.Steps = sc.engine.PersistSnapshot()
		return st
	}
	sc.mu.Lock()
	st.Source = sc.source
	if !sc.weakly {
		st.Fixpoint = sc.universal
		st.Steps = sc.chaseSteps
	}
	sc.mu.Unlock()
	return st
}

// scenarioFromState rebuilds a resident scenario from its durable form.
// Weakly acyclic scenarios with a persisted fixpoint resume the
// incremental engine around it — no re-chase; without one (the state had
// unfolded mutations, or the engine was dirty at capture) the engine
// re-chases under opt like a fresh registration.
func scenarioFromState(st *store.State, opt chase.Options) (*scenario, error) {
	s, err := parser.ParseSetting(st.SettingText)
	if err != nil {
		return nil, fmt.Errorf("server: rehydrating %q: %w", st.ID, err)
	}
	sc := &scenario{
		id:          st.ID,
		contentID:   st.ContentID,
		settingText: st.SettingText,
		setting:     s,
		source:      st.Source,
		weakly:      s.WeaklyAcyclic(),
		richly:      s.RichlyAcyclic(),
		initVersion: st.InitVersion,
	}
	if sc.weakly {
		if st.Fixpoint != nil {
			if eng, err := incr.Resume(s, st.Source, st.Fixpoint, st.Steps); err == nil {
				sc.engine = eng
			}
		}
		if sc.engine == nil {
			if eng, _ := incr.New(s, st.Source, opt); eng != nil {
				sc.engine = eng
			}
		}
	} else if st.Fixpoint != nil {
		sc.universal = st.Fixpoint
		sc.chaseSteps = st.Steps
	}
	return sc, nil
}

// load tracks one in-flight rehydration so concurrent lookups of the same
// paged-out scenario share a single disk read and resume.
type load struct {
	done chan struct{}
	sc   *scenario
	err  error
}

// rehydrate brings a cataloged-but-not-resident scenario back into the
// registry, single-flighting concurrent callers.
func (r *registry) rehydrate(id string) (*scenario, error) {
	r.mu.Lock()
	if l, ok := r.loads[id]; ok {
		r.mu.Unlock()
		<-l.done
		return l.sc, l.err
	}
	if v, ok := r.scenarios.get(id); ok {
		r.mu.Unlock()
		return v.(*scenario), nil
	}
	l := &load{done: make(chan struct{})}
	r.loads[id] = l
	r.mu.Unlock()

	l.sc, l.err = r.loadScenario(id)
	if l.err == nil {
		r.scenarios.put(id, l.sc)
	}
	r.mu.Lock()
	delete(r.loads, id)
	r.mu.Unlock()
	close(l.done)
	return l.sc, l.err
}

func (r *registry) loadScenario(id string) (*scenario, error) {
	st, err := r.store.Load(id)
	if err != nil {
		if !r.store.Has(id) { // dropped while we were waiting
			return nil, fmt.Errorf("%w: %q", errUnknownScenario, id)
		}
		return nil, status.WithKind(fmt.Errorf("server: rehydrating %q: %w", id, err), status.Internal)
	}
	sc, err := scenarioFromState(st, chase.Options{})
	if err != nil {
		return nil, status.WithKind(err, status.Internal)
	}
	return sc, nil
}

// seedFromStore restores the identity state the catalog implies: pristine
// scenarios re-enter the content-dedup map (mutated ones diverged from
// their registered content, exactly as live mutation removes them), and
// the generated-name counter advances past every recovered "sN" so new
// registrations never collide with recovered ones.
func (r *registry) seedFromStore() {
	if r.store == nil {
		return
	}
	for _, id := range r.store.IDs() {
		meta, ok := r.store.GetMeta(id)
		if !ok {
			continue
		}
		if meta.Version == meta.InitVersion {
			r.byContent[meta.ContentID] = id
		}
		if n, ok := generatedID(id); ok && n > r.nextID {
			r.nextID = n
		}
	}
}

func generatedID(id string) (int, bool) {
	if !strings.HasPrefix(id, "s") {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// captureResident is the snapshot capture hook: resident scenarios
// contribute their live state (current fixpoint folded in, pending
// mutation batches gone from their snapshot block); the rest are carried
// over by byte copy inside the store.
func (r *registry) captureResident(id string) *store.State {
	v, ok := r.scenarios.get(id)
	if !ok {
		return nil
	}
	return v.(*scenario).persistState()
}

// snapshotNow writes a store snapshot of the full catalog and compacts the
// WAL behind it.
func (r *registry) snapshotNow() error {
	if r.store == nil {
		return nil
	}
	return r.store.Snapshot(r.captureResident)
}
