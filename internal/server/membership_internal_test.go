package server

// Unit regressions for the membership glue: the version-guarded transfer
// install (a retried transfer whose 2xx was lost must not roll back
// mutations acknowledged in between) and the moved-mark check on the
// registry's non-resident drop path (a handed-off scenario that was
// LRU-evicted mid-window must still refuse a local DELETE).

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"testing"

	"repro/internal/chase"
	"repro/internal/cluster"
	"repro/internal/instance"
	"repro/internal/store"
)

func newClusterServer(t *testing.T) *Server {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Self:  "http://127.0.0.1:1",
		Peers: []string{"http://127.0.0.1:1", "http://127.0.0.1:2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(Config{Cluster: cl})
}

func TestTransferInstallVersionGuard(t *testing.T) {
	s := newClusterServer(t)
	sc, _, err := s.reg.register("g1", tinySetting, `S(a).`, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stale := store.EncodeState(sc.persistState())

	muts := []instance.Mutation{{Insert: true, Atom: instance.NewAtom("S", instance.Const("b"))}}
	if _, err := s.reg.mutate(sc, muts, 0, chase.Options{}); err != nil {
		t.Fatalf("mutate: %v", err)
	}
	v1 := sc.version()

	// The retried (stale) transfer must be acknowledged without installing.
	req := httptest.NewRequest("POST", "/v1/cluster/transfer?epoch=3", bytes.NewReader(stale))
	w := httptest.NewRecorder()
	s.handleClusterTransfer(w, req)
	if w.Code != 200 {
		t.Fatalf("stale transfer: status %d: %s", w.Code, w.Body)
	}
	got, err := s.reg.lookup("g1")
	if err != nil {
		t.Fatal(err)
	}
	if got != sc {
		t.Fatal("stale transfer replaced the live scenario object")
	}
	if got.version() != v1 {
		t.Fatalf("stale transfer rolled the version back: %d, want %d", got.version(), v1)
	}
	if !s.received.has("g1") {
		t.Fatal("guarded ack dropped the received mark for the window")
	}
	if w.Body.String() == "" || !bytes.Contains(w.Body.Bytes(), []byte("g1")) {
		t.Fatalf("guarded ack body %q does not name the scenario", w.Body)
	}
}

func TestTransferInstallNewerVersionReplaces(t *testing.T) {
	src := newClusterServer(t)
	sc, _, err := src.reg.register("g2", tinySetting, `S(a).`, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	muts := []instance.Mutation{{Insert: true, Atom: instance.NewAtom("S", instance.Const("b"))}}
	if _, err := src.reg.mutate(sc, muts, 0, chase.Options{}); err != nil {
		t.Fatal(err)
	}
	newer := store.EncodeState(sc.persistState())

	// A second member holds the pristine (older) copy; the newer block
	// must install over it.
	dst := newClusterServer(t)
	if _, _, err := dst.reg.register("g2", tinySetting, `S(a).`, chase.Options{}); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/cluster/transfer?epoch=3", bytes.NewReader(newer))
	w := httptest.NewRecorder()
	dst.handleClusterTransfer(w, req)
	if w.Code != 200 {
		t.Fatalf("newer transfer: status %d: %s", w.Code, w.Body)
	}
	got, err := dst.reg.lookup("g2")
	if err != nil {
		t.Fatal(err)
	}
	if got.version() != sc.version() {
		t.Fatalf("newer transfer did not install: version %d, want %d", got.version(), sc.version())
	}
}

func TestDropNonResidentHandedForwards(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{Fsync: store.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r := newRegistry(4, 16, st)
	handedTo := ""
	r.moved = func(id string) string { return handedTo }

	if _, _, err := r.register("h1", tinySetting, `S(a).`, chase.Options{}); err != nil {
		t.Fatal(err)
	}
	// Page the scenario out, as an LRU eviction mid-window would.
	r.scenarios.remove("h1")
	if _, ok := r.scenarios.get("h1"); ok {
		t.Fatal("scenario still resident after eviction")
	}
	if !st.Has("h1") {
		t.Fatal("eviction did not page the scenario out")
	}

	handedTo = "http://127.0.0.1:2"
	_, err = r.drop("h1", false)
	var moved *errMoved
	if !errors.As(err, &moved) || moved.newOwner != handedTo {
		t.Fatalf("non-resident drop of a handed-off scenario returned %v, want errMoved to %s", err, handedTo)
	}
	if !st.Has("h1") {
		t.Fatal("refused drop still removed the catalog entry")
	}

	// The forced (post-commit) drop and the ordinary un-handed drop work.
	handedTo = ""
	if ok, err := r.drop("h1", false); err != nil || !ok {
		t.Fatalf("drop after window closed: ok=%v err=%v", ok, err)
	}
	if st.Has("h1") {
		t.Fatal("drop left the catalog entry behind")
	}
}
