// Package server implements dxserver: a long-running HTTP/JSON service
// that keeps data exchange scenarios resident and answers chase, core,
// canonical-solution, existence, certain-answer and enumeration requests
// over them.
//
// The design centers on amortization: a scenario (setting + source) is
// POSTed once; the server parses it, validates acyclicity, compiles the
// dependency and query plans (cached on the parsed Setting), chases weakly
// acyclic settings eagerly, and memoizes the universal solution, core and
// canonical solution. Successful response bodies are additionally cached
// byte-for-byte in a content-keyed LRU, so identical requests are served
// identically without re-evaluation (observable via the server_cache_hits
// counter on /metricsz).
//
// Every evaluation request runs under a per-request deadline and chase
// step budget, mapped to status codes by internal/status (timeout → 504,
// budget → 422, size bounds → 413, no solution → 404), behind a
// bounded-concurrency admission gate (worker slots + a bounded wait queue;
// overflow → 503). Graceful shutdown first drains in-flight work, then
// aborts whatever outlives the drain deadline through the contexts every
// chase already honours.
package server

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/membership"
	"repro/internal/server/client"
	"repro/internal/store"
)

// Config tunes a Server. The zero value is usable: every field has a
// sensible default.
type Config struct {
	// MaxConcurrent is the number of evaluation requests allowed to run
	// simultaneously (default GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth is how many additional requests may wait for a slot
	// before the gate starts rejecting with 503 (0 = default
	// 4×MaxConcurrent; negative = no queue, reject as soon as every slot
	// is busy).
	QueueDepth int
	// DefaultDeadline is applied to requests that carry no deadline_ms
	// (default 30s).
	DefaultDeadline time.Duration
	// MaxDeadline caps request deadlines (default 5m).
	MaxDeadline time.Duration
	// DefaultMaxSteps is the chase budget for requests that carry no
	// max_steps (0 = the chase package default).
	DefaultMaxSteps int
	// MaxEnumSolutions caps (and defaults) the /v1/enum bound
	// (default 256).
	MaxEnumSolutions int
	// MaxScenarios bounds the resident scenarios; least recently used
	// scenarios are evicted (default 128).
	MaxScenarios int
	// MaxResults bounds the cached response bodies (default 4096).
	MaxResults int
	// Workers is the default evaluation parallelism for certain/enum
	// requests that carry no workers field (0 = GOMAXPROCS).
	Workers int
	// Store, when non-nil, makes the server durable: registrations and
	// mutations are journaled to its WAL before acknowledgement, capacity
	// evictions page scenario state to disk, and lookups rehydrate from the
	// catalog. The caller owns opening it (store.Open) and the server closes
	// it in Shutdown. Nil keeps today's memory-only behavior on every path.
	Store *store.Store
	// Cluster, when non-nil, makes the server a cluster member: requests
	// for scenarios the consistent-hash ring places elsewhere are forwarded
	// to the owning node (internal/server/cluster.go), and forwarded read
	// results are replicated in the local result cache behind ETag
	// revalidation. Nil keeps single-node behavior on every path.
	Cluster *cluster.Cluster
	// PeerHTTPClient is the transport used for peer forwards (nil =
	// http.DefaultClient). Tests inject one to reach in-process peers.
	PeerHTTPClient *http.Client
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.MaxConcurrent
	} else if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.MaxEnumSolutions <= 0 {
		c.MaxEnumSolutions = 256
	}
	if c.MaxScenarios <= 0 {
		c.MaxScenarios = 128
	}
	if c.MaxResults <= 0 {
		c.MaxResults = 4096
	}
	return c
}

// Server is the dxserver HTTP handler. Create with New, serve with any
// http.Server, shut down with BeginDrain (stop admitting) followed by
// http.Server.Shutdown (drain), and Abort as the last resort for work that
// outlives the drain deadline.
type Server struct {
	cfg     Config
	reg     *registry
	gate    *gate
	mux     *http.ServeMux
	cluster *cluster.Cluster

	// member runs the dynamic-membership protocol (join/leave transitions
	// with live scenario handoff); nil outside cluster mode. handed tracks
	// the scenarios this member pushed to new owners during the open
	// transfer window; received tracks the ones installed from transfer
	// blocks, per proposal epoch, so an abort can push them back.
	member   *membership.Manager
	handed   handedSet
	received receivedSet
	// reconciling counts in-flight post-abort reconciliations (normally 0
	// or 1); new proposals are refused while it is non-zero.
	reconciling atomic.Int32

	peerMu sync.Mutex
	peers  map[string]*client.Client

	// pinned memoizes the content-derived name rewrite for unnamed
	// registrations (cluster mode only): raw body hash → rewritten body.
	// The rewrite is a pure function of the body, so entries never go
	// stale; the LRU only bounds memory.
	pinned *lru

	drainOnce sync.Once
	draining  chan struct{}
	abortOnce sync.Once
	aborted   chan struct{}
}

// New builds a Server with the given configuration.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg.withDefaults(),
		cluster:  cfg.Cluster,
		peers:    make(map[string]*client.Client),
		draining: make(chan struct{}),
		aborted:  make(chan struct{}),
	}
	if s.cluster != nil {
		s.pinned = newLRU(256)
	}
	s.reg = newRegistry(s.cfg.MaxScenarios, s.cfg.MaxResults, s.cfg.Store)
	s.reg.seedFromStore()
	s.gate = newGate(s.cfg.MaxConcurrent, s.cfg.QueueDepth)
	s.mux = http.NewServeMux()
	s.routes()
	if s.cluster != nil {
		// Every cluster member runs the membership protocol, statically
		// booted ones included: a fleet started with -cluster accepts
		// joiners and drain-leaves without reconfiguration. If no
		// transition ever happens, the committed view stays at epoch 1
		// with the configured peer list — identical routing to before.
		s.clusterRoutes()
		// Handed-off scenarios refuse local drops even when not resident
		// (LRU-evicted mid-window): the catalog branch of drop consults the
		// handed map and forwards instead.
		s.reg.moved = s.handed.get
		s.member = membership.New(membership.Config{
			Cluster:   s.cluster,
			Host:      serverHost{s},
			Transport: memberTransport{s},
		})
	}
	if s.cfg.Store != nil {
		// Background warm-up: rehydrate up to a residency's worth of
		// recovered scenarios so the first requests after a restart do not
		// all pay a page-in. /healthz reports recovering=true until it
		// finishes; requests are served (lazily rehydrating) throughout.
		s.cfg.Store.SetRecovering(true)
		go s.warmStore()
	}
	return s
}

// warmStore rehydrates recovered scenarios (in id order, up to the
// resident bound) and then clears the recovery flag.
func (s *Server) warmStore() {
	defer s.cfg.Store.SetRecovering(false)
	n := 0
	for _, id := range s.cfg.Store.IDs() {
		if n >= s.cfg.MaxScenarios || s.Draining() {
			return
		}
		if _, err := s.reg.lookup(id); err == nil {
			n++
		}
	}
}

// ServeHTTP implements http.Handler. In cluster mode the routing layer
// first forwards requests whose scenario lives on another node; everything
// it declines is served locally.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.cluster != nil && s.clusterRoute(w, r) {
		return
	}
	s.mux.ServeHTTP(w, r)
}

// BeginDrain makes the server refuse new evaluation work (503) while
// letting in-flight requests finish. Idempotent.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() { close(s.draining) })
}

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// Abort cancels the context of every in-flight evaluation (they fail fast
// with the timeout mapping). Call after a drain deadline expires, before
// giving up on http.Server.Shutdown. Idempotent.
func (s *Server) Abort() {
	s.abortOnce.Do(func() { close(s.aborted) })
}

// SnapshotNow writes a durable-store snapshot of the full catalog —
// resident scenarios contribute their live state — and compacts the WAL
// behind it. No-op without a store.
func (s *Server) SnapshotNow() error {
	return s.reg.snapshotNow()
}

// CloseStore finalizes the durable store at shutdown: a last snapshot
// (capturing every resident scenario's fixpoint) followed by a flush and
// close. After it returns, a restart recovers from the snapshot alone and
// replays zero WAL records. Call after the HTTP server has drained; no-op
// without a store.
func (s *Server) CloseStore() error {
	if s.cfg.Store == nil {
		return nil
	}
	snapErr := s.reg.snapshotNow()
	if err := s.cfg.Store.Flush(); err != nil && snapErr == nil {
		snapErr = err
	}
	if err := s.cfg.Store.Close(); err != nil && snapErr == nil {
		snapErr = err
	}
	return snapErr
}

// StoreStats reports the durable store's health summary, and false when
// the server runs memory-only.
func (s *Server) StoreStats() (store.Stats, bool) {
	if s.cfg.Store == nil {
		return store.Stats{}, false
	}
	return s.cfg.Store.Stats(), true
}

// InFlight returns the number of admitted evaluation requests currently
// executing.
func (s *Server) InFlight() int {
	return int(s.gate.inFlight.Load())
}

// Scenarios returns the number of resident scenarios.
func (s *Server) Scenarios() int {
	return s.reg.scenarios.len()
}

// evalContext derives the context an evaluation runs under: the request's
// context (client disconnect), the request deadline capped by the server
// maximum, and the server's abort switch. The returned cancel must be
// called.
func (s *Server) evalContext(r *http.Request, deadlineMillis int) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if deadlineMillis > 0 {
		d = time.Duration(deadlineMillis) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	go func() {
		select {
		case <-s.aborted:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}
