package genwl

import (
	"testing"

	"repro/internal/chase"
)

func TestExample21Shape(t *testing.T) {
	s := Example21()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.RichlyAcyclic() {
		t.Fatal("Example 2.1 is richly acyclic")
	}
	src := Example21Source()
	if src.Len() != 3 {
		t.Fatalf("source size %d", src.Len())
	}
	if _, err := chase.Standard(s, src, chase.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestExample53Shape(t *testing.T) {
	s := Example53()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if Example53Source(3).Len() != 3 {
		t.Fatal("source size")
	}
}

func TestCopyingAndCycles(t *testing.T) {
	s := Copying()
	src := TwoNineCycles()
	if src.Len() != 19 {
		t.Fatalf("two 9-cycles + P(a4) = 19 atoms, got %d", src.Len())
	}
	res, err := chase.Standard(s, src, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Target.Len() != 19 || res.Target.HasNulls() {
		t.Fatalf("copy must be null-free and complete: %v", res.Target)
	}
}

func TestWeaklyAcyclicChain(t *testing.T) {
	s := WeaklyAcyclicChain(5)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.WeaklyAcyclic() || !s.RichlyAcyclic() {
		t.Fatal("chain must be richly acyclic")
	}
	src := RandomEdges("R0", 10, 1)
	res, err := chase.Standard(s, src, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if res.Target.RelLen("T"+string(rune('0'+i))) == 0 {
			t.Fatalf("chain level %d empty: %v", i, res.Target.Relations())
		}
	}
}

func TestRandomEdgesReproducible(t *testing.T) {
	a := RandomEdges("R", 20, 5)
	b := RandomEdges("R", 20, 5)
	if !a.Equal(b) {
		t.Fatal("same seed must give same instance")
	}
	if a.Len() != 20 {
		t.Fatalf("size %d", a.Len())
	}
}

func TestEgdOnlySource(t *testing.T) {
	s := EgdOnly()
	good := EgdOnlySource(8, true, 3)
	if _, err := chase.Standard(s, good, chase.Options{}); err != nil {
		t.Fatalf("consistent source must chase: %v", err)
	}
	bad := EgdOnlySource(8, false, 3)
	if _, err := chase.Standard(s, bad, chase.Options{}); !chase.IsEgdFailure(err) {
		t.Fatalf("inconsistent source must fail the egd: %v", err)
	}
}

func TestFullTgdsTransitiveClosure(t *testing.T) {
	s := FullTgds()
	if !s.FullAndEgds() {
		t.Fatal("FullTgds must be in the full class")
	}
	src, _ := chase.Standard(s, RandomEdges("R", 6, 2), chase.Options{})
	if src.Target.HasNulls() {
		t.Fatal("full tgds produce no nulls")
	}
	if src.Target.RelLen("T") < src.Target.RelLen("E") {
		t.Fatal("closure must contain the edges")
	}
}
