// Package genwl generates the workloads used by the examples, the
// experiment harness and the benchmarks: the paper's running examples, the
// Section 3 anomaly instance, copying settings, and scaling families for
// each Table 1 cell.
package genwl

import (
	"fmt"
	"math/rand"

	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/parser"
)

func mustSetting(text string) *dependency.Setting {
	s, err := parser.ParseSetting(text)
	if err != nil {
		panic("genwl: " + err.Error())
	}
	return s
}

// Example21 returns the paper's running example (Example 2.1).
func Example21() *dependency.Setting {
	return mustSetting(`
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
target-deps:
  d3: F(y,x) -> exists z : G(x,z).
  d4: F(x,y) & F(x,z) -> y = z.
`)
}

// Example21Source returns the source instance of Example 2.1.
func Example21Source() *instance.Instance {
	src, err := parser.ParseInstance(`M(a,b). N(a,b). N(a,c).`)
	if err != nil {
		panic(err)
	}
	return src
}

// Example53 returns the setting of Example 5.3 (exponentially many
// incomparable CWA-solutions).
func Example53() *dependency.Setting {
	return mustSetting(`
source P/1.
target E/3, F/3.
st:
  d1: P(x) -> exists z1,z2,z3,z4 : E(x,z1,z3) & E(x,z2,z4).
target-deps:
  d2: E(x,x1,y) & E(x,x2,y) -> F(x,x1,x2).
`)
}

// Example53Source returns S_n = {P(1), …, P(n)}.
func Example53Source(n int) *instance.Instance {
	src := instance.New()
	for i := 1; i <= n; i++ {
		src.Add(instance.NewAtom("P", instance.Const(fmt.Sprintf("%d", i))))
	}
	return src
}

// Copying builds the copying data exchange setting of Section 3 for the
// schema {E/2, P/1}: every source relation R is copied to Rp.
func Copying() *dependency.Setting {
	return mustSetting(`
source E/2, P/1.
target Ep/2, Pp/1.
st:
  cE: E(x,y) -> Ep(x,y).
  cP: P(x) -> Pp(x).
`)
}

// TwoNineCycles returns the Section 3 source instance: the disjoint union
// of two cycles of length 9 over a0…a8 and b0…b8, with P(a4).
func TwoNineCycles() *instance.Instance {
	return Cycles(9, 9, 4)
}

// Cycles builds two disjoint directed cycles of the given lengths with
// P labelling node a<mark> of the first cycle.
func Cycles(lenA, lenB, mark int) *instance.Instance {
	src := instance.New()
	a := func(i int) instance.Value { return instance.Const(fmt.Sprintf("a%d", i)) }
	b := func(i int) instance.Value { return instance.Const(fmt.Sprintf("b%d", i)) }
	for i := 0; i < lenA; i++ {
		src.Add(instance.NewAtom("E", a(i), a((i+1)%lenA)))
	}
	for i := 0; i < lenB; i++ {
		src.Add(instance.NewAtom("E", b(i), b((i+1)%lenB)))
	}
	src.Add(instance.NewAtom("P", a(mark)))
	return src
}

// WeaklyAcyclicChain builds a richly acyclic setting whose chase walks a
// chain of existential tgds of the given depth — the scaling family for
// chase and CWA-solution computation (E5/E6).
//
//	source R0/2; target T1/2 … T<depth>/2
//	R0(x,y) → T1(x,y);  Ti(x,y) → ∃z Ti+1(y,z)
func WeaklyAcyclicChain(depth int) *dependency.Setting {
	text := "source R0/2.\ntarget "
	for i := 1; i <= depth; i++ {
		if i > 1 {
			text += ", "
		}
		text += fmt.Sprintf("T%d/2", i)
	}
	text += ".\nst:\n  R0(x,y) -> T1(x,y).\ntarget-deps:\n"
	for i := 1; i < depth; i++ {
		text += fmt.Sprintf("  T%d(x,y) -> exists z : T%d(y,z).\n", i, i+1)
	}
	return mustSetting(text)
}

// RandomEdges builds a random source instance R0(·,·) with n edges over
// √n·c nodes, reproducibly.
func RandomEdges(rel string, n int, seed int64) *instance.Instance {
	rng := rand.New(rand.NewSource(seed))
	nodes := n/2 + 2
	src := instance.New()
	for src.Len() < n {
		u := instance.Const(fmt.Sprintf("n%d", rng.Intn(nodes)))
		v := instance.Const(fmt.Sprintf("n%d", rng.Intn(nodes)))
		src.Add(instance.NewAtom(rel, u, v))
	}
	return src
}

// EgdOnly returns the egd-only setting used by the Table 1 row 3
// experiments: F is populated both by existential and by concrete facts and
// must be functional.
func EgdOnly() *dependency.Setting {
	return mustSetting(`
source N/2, W/2.
target F/2.
st:
  s1: N(x,y) -> exists z : F(x,z).
  s2: W(x,y) -> F(x,y).
target-deps:
  e1: F(x,y) & F(x,z) -> y = z.
`)
}

// EgdOnlySource builds a source for EgdOnly with n N-facts and n/2 W-facts;
// consistent reports whether the W-facts are functional (inconsistent
// sources make the chase fail).
func EgdOnlySource(n int, consistent bool, seed int64) *instance.Instance {
	rng := rand.New(rand.NewSource(seed))
	src := instance.New()
	name := func(p string, i int) instance.Value {
		return instance.Const(fmt.Sprintf("%s%d", p, i))
	}
	for i := 0; i < n; i++ {
		src.Add(instance.NewAtom("N", name("k", i), name("v", rng.Intn(n+1))))
	}
	for i := 0; i < n/2; i++ {
		src.Add(instance.NewAtom("W", name("k", i*2), name("w", i)))
		if !consistent && i == 0 {
			src.Add(instance.NewAtom("W", name("k", 0), name("w", 999)))
		}
	}
	return src
}

// RandomRichlyAcyclic generates a random richly acyclic setting with a
// layered target schema: s-t tgds copy or existentially extend source facts
// into layer 0, and target tgds only point from layer i to layer i+1, so
// the dependency graph is a DAG by construction. Optionally a functional
// egd on the first layer-0 relation is added.
func RandomRichlyAcyclic(seed int64, withEgd bool) *dependency.Setting {
	rng := rand.New(rand.NewSource(seed))
	text := "source S0/2, S1/2.\ntarget L0/2, L1/2, L2/2.\nst:\n"
	// Layer-0 producers.
	text += "  st1: S0(x,y) -> L0(x,y).\n"
	if rng.Intn(2) == 0 {
		text += "  st2: S1(x,y) -> exists z : L0(x,z).\n"
	} else {
		text += "  st2: S1(x,y) -> L0(y,x).\n"
	}
	text += "target-deps:\n"
	// Layer 0 → 1 and 1 → 2 tgds, randomly full or existential.
	shapes01 := []string{
		"  t1: L0(x,y) -> L1(x,y).\n",
		"  t1: L0(x,y) -> exists z : L1(y,z).\n",
		"  t1: L0(x,y) -> exists z : L1(x,z).\n",
	}
	shapes12 := []string{
		"  t2: L1(x,y) -> L2(y,x).\n",
		"  t2: L1(x,y) -> exists z : L2(x,z).\n",
	}
	text += shapes01[rng.Intn(len(shapes01))]
	text += shapes12[rng.Intn(len(shapes12))]
	if withEgd {
		text += "  e1: L0(x,y) & L0(x,z) -> y = z.\n"
	}
	s := mustSetting(text)
	if !s.RichlyAcyclic() {
		panic("genwl: generated setting must be richly acyclic")
	}
	return s
}

// RandomLayeredSource builds a random source for RandomRichlyAcyclic with n
// facts over a small constant pool.
func RandomLayeredSource(n int, seed int64) *instance.Instance {
	rng := rand.New(rand.NewSource(seed))
	src := instance.New()
	name := func(i int) instance.Value { return instance.Const(fmt.Sprintf("c%d", i)) }
	pool := n/2 + 2
	for src.Len() < n {
		rel := "S0"
		if rng.Intn(2) == 0 {
			rel = "S1"
		}
		src.Add(instance.NewAtom(rel, name(rng.Intn(pool)), name(rng.Intn(pool))))
	}
	return src
}

// FullTgds returns the full-tgd transitive-closure setting of Table 1 row 4.
func FullTgds() *dependency.Setting {
	return mustSetting(`
source R/2.
target E/2, T/2.
st:
  s1: R(x,y) -> E(x,y).
target-deps:
  t1: E(x,y) -> T(x,y).
  t2: T(x,y) & E(y,z) -> T(x,z).
`)
}
