// Package hom implements homomorphism search between relational instances
// with nulls, in the sense of Fagin, Kolaitis, Miller, Popa that the paper
// adopts: a homomorphism h: Dom(I) → Dom(J) maps every atom of I to an atom
// of J and is the identity on constants (nulls may map to nulls or to
// constants).
//
// Homomorphisms are the paper's central tool: universal solutions are the
// solutions with homomorphisms into every solution, cores are minimal
// retracts, and CWA-solutions are characterised as universal CWA-presolutions
// (Theorem 4.8).
package hom

import (
	"sort"

	"repro/internal/instance"
	"repro/internal/metrics"
)

// Mapping is a value mapping; constants always map to themselves and are not
// stored. Apply resolves values through the mapping.
type Mapping map[instance.Value]instance.Value

// Apply resolves a value: constants and unmapped values stay fixed.
func (m Mapping) Apply(v instance.Value) instance.Value {
	if w, ok := m[v]; ok {
		return w
	}
	return v
}

// ApplyInstance returns the image of an instance under the mapping.
func (m Mapping) ApplyInstance(ins *instance.Instance) *instance.Instance {
	return ins.Map(map[instance.Value]instance.Value(m))
}

// options configures the search.
type options struct {
	injective bool
	forced    Mapping
	avoid     instance.Value
	hasAvoid  bool
	skipAC    bool
}

// Option customises Find.
type Option func(*options)

// Injective requires the homomorphism to be injective on Dom(from).
func Injective() Option { return func(o *options) { o.injective = true } }

// Forced seeds the search with a partial mapping that the result must extend.
func Forced(m Mapping) Option { return func(o *options) { o.forced = m } }

// Avoiding forbids the given value from occurring in the image: no atom of
// from may map to an atom mentioning it. Find(from, to, Avoiding(n)) is
// equivalent to Find(from, Without(to, n)) but needs no instance copy.
func Avoiding(v instance.Value) Option {
	return func(o *options) { o.avoid = v; o.hasAvoid = true }
}

// NoACPrune skips Find's arc-consistency prepass. Sound only when the caller
// has already established that no candidate domain is empty — e.g. a
// Precheck over the same source atoms, target and avoided value returned
// ACUnknown, whose emptiness test subsumes the prepass exactly.
func NoACPrune() Option { return func(o *options) { o.skipAC = true } }

// Find searches for a homomorphism from one instance to another. It returns
// the mapping restricted to the nulls of from (constants are implicitly
// fixed) and whether one exists.
//
// Find compiles the source's atom list once (CompileSource) and runs the
// compiled search with arc-consistency pruning; callers probing the same
// source repeatedly should compile once and reuse the Search.
func Find(from, to *instance.Instance, opts ...Option) (Mapping, bool) {
	return CompileSource(from).Find(to, opts...)
}

// findRef is the interpreted reference finder, kept as ground truth for the
// randomized crosschecks of the compiled, pruned Search path.
func findRef(from, to *instance.Instance, opts ...Option) (Mapping, bool) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	f := &finder{to: to, injective: o.injective, mapping: Mapping{}, used: map[instance.Value]bool{},
		avoid: o.avoid, hasAvoid: o.hasAvoid}
	// Seed forced assignments (constants in forced must be identities).
	for k, v := range o.forced {
		if k.IsConst() {
			if k != v {
				return nil, false
			}
			continue
		}
		if o.injective && f.used[v] {
			return nil, false
		}
		f.mapping[k] = v
		f.used[v] = true
	}
	if o.injective {
		// Constants are fixed, so they occupy their own images.
		for _, c := range from.Consts() {
			if f.used[c] {
				// A forced null already maps onto this constant.
				return nil, false
			}
			f.used[c] = true
		}
	}
	atoms := orderAtoms(from.AtomsShared())
	if !f.search(atoms) {
		return nil, false
	}
	out := make(Mapping, len(f.mapping))
	for k, v := range f.mapping {
		out[k] = v
	}
	return out, true
}

// Exists reports whether a homomorphism from → to exists.
func Exists(from, to *instance.Instance) bool {
	metrics.HomExists.Inc()
	_, ok := Find(from, to)
	return ok
}

// FindAll enumerates homomorphisms from → to, up to max of them (max ≤ 0
// means no bound). Each mapping covers every null of from.
func FindAll(from, to *instance.Instance, max int) []Mapping {
	var out []Mapping
	s := CompileSource(from)
	st := s.state()
	defer s.release(st)
	s.searchAll(to, st, 0, func(m Mapping) bool {
		out = append(out, m)
		return max <= 0 || len(out) < max
	})
	return out
}

// searchAll enumerates completions; emit receives a copy of the mapping
// extended to all nulls (unconstrained nulls — those in no atom — cannot
// occur since the domain is the active domain). Returns false to stop.
func (f *finder) searchAll(atoms []instance.Atom, nulls []instance.Value, emit func(Mapping) bool) bool {
	if len(atoms) == 0 {
		cp := make(Mapping, len(f.mapping))
		for k, v := range f.mapping {
			cp[k] = v
		}
		return emit(cp)
	}
	a := atoms[0]
	rest := atoms[1:]
	pattern := make([]instance.Value, len(a.Args))
	bound := make([]bool, len(a.Args))
	for i, v := range a.Args {
		if v.IsConst() {
			pattern[i] = v
			bound[i] = true
		} else if w, ok := f.mapping[v]; ok {
			pattern[i] = w
			bound[i] = true
		}
	}
	cont := true
	f.to.MatchTuples(a.Rel, pattern, bound, func(args []instance.Value) bool {
		var newly []instance.Value
		ok := true
		for i, v := range a.Args {
			if bound[i] {
				continue
			}
			if w, already := f.mapping[v]; already {
				if w != args[i] {
					ok = false
					break
				}
				continue
			}
			f.mapping[v] = args[i]
			newly = append(newly, v)
		}
		if ok {
			cont = f.searchAll(rest, nulls, emit)
		}
		if len(newly) > 0 {
			metrics.HomBacktracks.Inc()
		}
		for _, v := range newly {
			delete(f.mapping, v)
		}
		return cont
	})
	return cont
}

// FindOnto searches for a homomorphism from → to whose image is exactly to
// (every atom of to is the image of some atom of from): "to is a
// homomorphic image of from", the comparison underlying maximal
// CWA-solutions (Section 5).
//
// Bound contract: with maxHoms > 0 the search examines exactly
// min(maxHoms, total) enumerated homomorphisms, each fully checked for
// surjectivity — including the maxHoms-th, whose verdict is never
// discarded at the boundary (pinned by TestFindOntoBoundContract). If none
// of the examined candidates is onto, FindOnto reports false even when a
// later homomorphism would be; callers that need a complete answer must
// pass maxHoms ≤ 0 (unbounded). The bound counts enumerated homomorphisms,
// not search states, so a false result with maxHoms > 0 is "not found
// among the first maxHoms", not "no onto homomorphism exists".
func FindOnto(from, to *instance.Instance, maxHoms int) (Mapping, bool) {
	if from.Len() < to.Len() {
		return nil, false
	}
	var found Mapping
	s := CompileSource(from)
	st := s.state()
	defer s.release(st)
	n := 0
	s.searchAll(to, st, 0, func(m Mapping) bool {
		n++
		// Surjectivity is checked before the bound: the candidate that
		// exhausts the budget still gets its full verdict.
		if m.ApplyInstance(from).Equal(to) {
			found = m
			return false
		}
		return maxHoms <= 0 || n < maxHoms
	})
	return found, found != nil
}

// orderAtoms returns the atoms ordered so that atoms sharing nulls are
// adjacent (grouped by connected component, most-constrained first). A static
// greedy order: repeatedly pick the atom with the fewest unseen nulls.
// The input slice is left unmodified.
func orderAtoms(atoms []instance.Atom) []instance.Atom {
	return orderAtomsSeen(atoms, nil)
}

// orderAtomsSeen is orderAtoms with the nulls keyed by preBound counting as
// seen from the start: Search.Extend orders delta atoms with the parent's
// slots pre-bound, since every parent slot is bound before any delta atom
// runs.
func orderAtomsSeen(atoms []instance.Atom, preBound map[instance.Value]int) []instance.Atom {
	// Greedy fewest-unseen-nulls-first, first minimum wins. Scores are
	// maintained incrementally (decremented at every occurrence of a null the
	// moment it becomes seen), which picks the exact same sequence as
	// re-scoring every remaining atom per round: the scan below visits alive
	// atoms in original order, just as the splice-based remaining list did.
	n := len(atoms)
	score := make([]int, n)
	occs := make(map[instance.Value][]int)
	for i, a := range atoms {
		for _, v := range a.Args {
			if v.IsNull() {
				if _, pre := preBound[v]; pre {
					continue
				}
				score[i]++ // per occurrence, as the rescan counted
				occs[v] = append(occs[v], i)
			}
		}
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	ordered := make([]instance.Atom, 0, n)
	for len(ordered) < n {
		best, bestScore := -1, 1<<30
		for i := 0; i < n; i++ {
			if alive[i] && score[i] < bestScore {
				best, bestScore = i, score[i]
			}
		}
		a := atoms[best]
		alive[best] = false
		for _, v := range a.Args {
			if idxs, unseen := occs[v]; unseen && v.IsNull() {
				delete(occs, v)
				for _, j := range idxs {
					score[j]--
				}
			}
		}
		ordered = append(ordered, a)
	}
	return ordered
}

type finder struct {
	to        *instance.Instance
	injective bool
	mapping   Mapping
	used      map[instance.Value]bool
	avoid     instance.Value
	hasAvoid  bool
}

// excluded reports whether a candidate image tuple mentions the avoided
// value.
func (f *finder) excluded(args []instance.Value) bool {
	if !f.hasAvoid {
		return false
	}
	for _, v := range args {
		if v == f.avoid {
			return true
		}
	}
	return false
}

func (f *finder) search(atoms []instance.Atom) bool {
	if len(atoms) == 0 {
		return true
	}
	a := atoms[0]
	rest := atoms[1:]
	pattern := make([]instance.Value, len(a.Args))
	bound := make([]bool, len(a.Args))
	for i, v := range a.Args {
		if v.IsConst() {
			pattern[i] = v
			bound[i] = true
		} else if w, ok := f.mapping[v]; ok {
			pattern[i] = w
			bound[i] = true
		}
	}
	found := false
	f.to.MatchTuples(a.Rel, pattern, bound, func(args []instance.Value) bool {
		if f.excluded(args) {
			return true
		}
		var newly []instance.Value
		ok := true
		for i, v := range a.Args {
			if bound[i] {
				continue
			}
			if w, already := f.mapping[v]; already {
				if w != args[i] {
					ok = false
					break
				}
				continue
			}
			if f.injective && f.used[args[i]] {
				ok = false
				break
			}
			f.mapping[v] = args[i]
			f.used[args[i]] = true
			newly = append(newly, v)
		}
		if ok && f.search(rest) {
			found = true
			return false // keep the successful bindings and stop iterating
		}
		if len(newly) > 0 {
			metrics.HomBacktracks.Inc()
		}
		for _, v := range newly {
			w := f.mapping[v]
			delete(f.mapping, v)
			delete(f.used, w)
		}
		return true
	})
	return found
}

// Isomorphic reports whether the two instances are equal up to renaming of
// nulls: same atom counts per relation and an injective homomorphism from a
// to b (which is then necessarily an isomorphism).
func Isomorphic(a, b *instance.Instance) bool {
	if a.Len() != b.Len() {
		return false
	}
	ra, rb := a.Relations(), b.Relations()
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if ra[i] != rb[i] || a.RelLen(ra[i]) != b.RelLen(rb[i]) {
			return false
		}
	}
	da, db := a.Dom(), b.Dom()
	if len(da) != len(db) {
		return false
	}
	_, ok := Find(a, b, Injective())
	return ok
}

// HomEquivalent reports whether homomorphisms exist in both directions.
// Homomorphically equivalent instances have isomorphic cores.
func HomEquivalent(a, b *instance.Instance) bool {
	return Exists(a, b) && Exists(b, a)
}

// Endomorphism searches for a homomorphism from t to the sub-instance of t
// consisting of the atoms that do not mention the value drop. Such a
// homomorphism exists iff t retracts to a structure missing drop; it is the
// elementary step of core computation.
func Endomorphism(t *instance.Instance, drop instance.Value) (Mapping, bool) {
	return Find(t, Without(t, drop))
}

// Without returns the atoms of t that do not mention v.
func Without(t *instance.Instance, v instance.Value) *instance.Instance {
	out := instance.New()
	for _, a := range t.Atoms() {
		mentions := false
		for _, w := range a.Args {
			if w == v {
				mentions = true
				break
			}
		}
		if !mentions {
			out.Add(a)
		}
	}
	return out
}

// CanonicalNullForm renames the nulls of t to 0,1,2,… in first-occurrence
// order of the deterministic atom enumeration, producing a representative
// that is stable under label shifts (though not under all isomorphisms).
func CanonicalNullForm(t *instance.Instance) *instance.Instance {
	ren := make(map[instance.Value]instance.Value)
	var next int64
	for _, a := range t.Atoms() {
		for _, v := range a.Args {
			if v.IsNull() {
				if _, ok := ren[v]; !ok {
					ren[v] = instance.Null(next)
					next++
				}
			}
		}
	}
	return t.Map(ren)
}

// SortValues sorts a value slice under the canonical order.
func SortValues(vs []instance.Value) {
	sort.Slice(vs, func(i, j int) bool { return instance.Less(vs[i], vs[j]) })
}
