package hom

import (
	"testing"

	"repro/internal/instance"
)

func c(n string) instance.Value { return instance.Const(n) }
func nl(i int64) instance.Value { return instance.Null(i) }

func atoms(as ...instance.Atom) *instance.Instance { return instance.FromAtoms(as...) }

// Example 2.1 solutions.
func t1() *instance.Instance {
	return atoms(
		instance.NewAtom("E", c("a"), c("b")),
		instance.NewAtom("E", c("a"), nl(1)),
		instance.NewAtom("E", c("c"), nl(2)),
		instance.NewAtom("F", c("a"), c("d")),
		instance.NewAtom("G", c("d"), nl(3)),
	)
}

func t2() *instance.Instance {
	return atoms(
		instance.NewAtom("E", c("a"), c("b")),
		instance.NewAtom("E", c("a"), nl(1)),
		instance.NewAtom("E", c("a"), nl(2)),
		instance.NewAtom("F", c("a"), nl(3)),
		instance.NewAtom("G", nl(3), nl(4)),
	)
}

func t3() *instance.Instance {
	return atoms(
		instance.NewAtom("E", c("a"), c("b")),
		instance.NewAtom("F", c("a"), nl(1)),
		instance.NewAtom("G", nl(1), nl(2)),
	)
}

func TestFindBasic(t *testing.T) {
	from := atoms(instance.NewAtom("E", c("a"), nl(0)))
	to := atoms(instance.NewAtom("E", c("a"), c("b")))
	m, ok := Find(from, to)
	if !ok || m[nl(0)] != c("b") {
		t.Fatalf("hom = %v ok=%v", m, ok)
	}
}

func TestFindConstantsFixed(t *testing.T) {
	from := atoms(instance.NewAtom("E", c("a"), c("b")))
	to := atoms(instance.NewAtom("E", c("b"), c("a")))
	if Exists(from, to) {
		t.Fatal("constants must map to themselves")
	}
}

func TestExample21Homomorphisms(t *testing.T) {
	// The paper: T2 and T3 are universal, T1 is not — no hom T1 → T2.
	if Exists(t1(), t2()) {
		t.Fatal("paper: no homomorphism from T1 to T2")
	}
	if !Exists(t2(), t1()) {
		t.Fatal("T2 is universal: hom T2 → T1 must exist")
	}
	if !Exists(t2(), t3()) || !Exists(t3(), t2()) {
		t.Fatal("T2 and T3 are hom-equivalent")
	}
	if !HomEquivalent(t2(), t3()) {
		t.Fatal("HomEquivalent(T2,T3)")
	}
}

func TestFindRepeatedNull(t *testing.T) {
	from := atoms(
		instance.NewAtom("E", nl(0), nl(0)),
	)
	noLoop := atoms(instance.NewAtom("E", c("a"), c("b")))
	if Exists(from, noLoop) {
		t.Fatal("E(_0,_0) needs a self-loop in the target")
	}
	loop := atoms(instance.NewAtom("E", c("a"), c("a")))
	if !Exists(from, loop) {
		t.Fatal("self-loop target should admit hom")
	}
}

func TestOddCycleHomomorphism(t *testing.T) {
	// 9-cycle on nulls → 3-cycle exists; → edge (2-path) does not.
	cycle := func(n int64) *instance.Instance {
		ins := instance.New()
		for i := int64(0); i < n; i++ {
			ins.Add(instance.NewAtom("E", nl(i), nl((i+1)%n)))
		}
		return ins
	}
	if !Exists(cycle(9), cycle(3)) {
		t.Fatal("9-cycle maps onto triangle")
	}
	if Exists(cycle(3), cycle(9)) {
		t.Fatal("triangle cannot map to 9-cycle (no triangles there)")
	}
}

func TestForced(t *testing.T) {
	from := atoms(instance.NewAtom("E", nl(0), nl(1)))
	to := atoms(
		instance.NewAtom("E", c("a"), c("b")),
		instance.NewAtom("E", c("c"), c("d")),
	)
	m, ok := Find(from, to, Forced(Mapping{nl(0): c("c")}))
	if !ok || m[nl(1)] != c("d") {
		t.Fatalf("forced hom = %v ok=%v", m, ok)
	}
	if _, ok := Find(from, to, Forced(Mapping{nl(0): c("b")})); ok {
		t.Fatal("forcing _0=b admits no hom")
	}
}

func TestInjective(t *testing.T) {
	from := atoms(
		instance.NewAtom("E", nl(0), nl(1)),
		instance.NewAtom("E", nl(1), nl(2)),
	)
	collapsed := atoms(
		instance.NewAtom("E", c("a"), c("b")),
		instance.NewAtom("E", c("b"), c("a")),
	)
	if _, ok := Find(from, collapsed); !ok {
		t.Fatal("non-injective hom exists")
	}
	if _, ok := Find(from, collapsed, Injective()); ok {
		t.Fatal("injective hom should not exist into 2-cycle (3 distinct nulls)")
	}
	path := atoms(
		instance.NewAtom("E", c("x"), c("y")),
		instance.NewAtom("E", c("y"), c("z")),
	)
	if _, ok := Find(from, path, Injective()); !ok {
		t.Fatal("injective hom onto 3-path exists")
	}
}

func TestIsomorphic(t *testing.T) {
	a := atoms(instance.NewAtom("E", c("a"), nl(5)), instance.NewAtom("F", nl(5), nl(7)))
	b := atoms(instance.NewAtom("E", c("a"), nl(0)), instance.NewAtom("F", nl(0), nl(1)))
	if !Isomorphic(a, b) {
		t.Fatal("isomorphic up to null renaming")
	}
	cIns := atoms(instance.NewAtom("E", c("a"), nl(0)), instance.NewAtom("F", nl(1), nl(2)))
	if Isomorphic(a, cIns) {
		t.Fatal("different null identification pattern: not isomorphic")
	}
	if Isomorphic(a, atoms(instance.NewAtom("E", c("a"), nl(0)))) {
		t.Fatal("different sizes")
	}
}

func TestEndomorphismAndWithout(t *testing.T) {
	tt := atoms(
		instance.NewAtom("E", c("a"), c("b")),
		instance.NewAtom("E", c("a"), nl(0)),
	)
	sub := Without(tt, nl(0))
	if sub.Len() != 1 || !sub.Has(instance.NewAtom("E", c("a"), c("b"))) {
		t.Fatalf("Without = %v", sub)
	}
	m, ok := Endomorphism(tt, nl(0))
	if !ok || m[nl(0)] != c("b") {
		t.Fatalf("endo = %v ok=%v", m, ok)
	}
	// A core admits no null-dropping endomorphism.
	coreLike := atoms(instance.NewAtom("E", c("a"), nl(0)))
	if _, ok := Endomorphism(coreLike, nl(0)); ok {
		t.Fatal("single-atom instance with one null is a core")
	}
}

func TestCanonicalNullForm(t *testing.T) {
	a := atoms(instance.NewAtom("E", nl(42), nl(17)), instance.NewAtom("F", nl(17)))
	canon := CanonicalNullForm(a)
	if !Isomorphic(a, canon) {
		t.Fatal("canonical form must be isomorphic to the original")
	}
	if canon.MaxNullLabel() != 1 {
		t.Fatalf("canonical labels should be 0..1, got max %d", canon.MaxNullLabel())
	}
}

func TestMappingApply(t *testing.T) {
	m := Mapping{nl(0): c("a")}
	if m.Apply(nl(0)) != c("a") || m.Apply(c("b")) != c("b") || m.Apply(nl(1)) != nl(1) {
		t.Fatal("Apply semantics")
	}
	img := m.ApplyInstance(atoms(instance.NewAtom("E", nl(0), nl(1))))
	if !img.Has(instance.NewAtom("E", c("a"), nl(1))) {
		t.Fatalf("ApplyInstance = %v", img)
	}
}
