package hom

import (
	"fmt"
	"testing"

	"repro/internal/instance"
)

// chaseLikeInstance builds a star of small null blocks around constants,
// the shape of weakly acyclic chase results.
func chaseLikeInstance(blocks int) *instance.Instance {
	ins := instance.New()
	for i := 0; i < blocks; i++ {
		root := instance.Const(fmt.Sprintf("c%d", i%8))
		n1 := instance.Null(int64(2 * i))
		n2 := instance.Null(int64(2*i + 1))
		ins.Add(instance.NewAtom("E", root, n1))
		ins.Add(instance.NewAtom("F", n1, n2))
	}
	return ins
}

func BenchmarkFindHomomorphism(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		from := chaseLikeInstance(n)
		to := chaseLikeInstance(n)
		b.Run(fmt.Sprintf("blocks=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !Exists(from, to) {
					b.Fatal("hom must exist")
				}
			}
		})
	}
}

func BenchmarkIsomorphic(b *testing.B) {
	a := chaseLikeInstance(32)
	shift := Mapping{}
	for _, v := range a.Nulls() {
		shift[v] = instance.Null(v.NullLabel() + 1000)
	}
	c := shift.ApplyInstance(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Isomorphic(a, c) {
			b.Fatal("isomorphic by construction")
		}
	}
}

// BenchmarkFindAvoidingBlockLocal measures the block-local retraction
// search pattern used by core computation: the from-side is a single
// Gaifman block, not the whole instance (a whole-instance Avoiding search
// backtracks exponentially across independent blocks when it fails, which
// is precisely why package score searches block-locally).
func BenchmarkFindAvoidingBlockLocal(b *testing.B) {
	t := chaseLikeInstance(32)
	n := instance.Null(3) // block: E(c1,_2), F(_2,_3)
	block := instance.FromAtoms(
		instance.NewAtom("E", instance.Const("c1"), instance.Null(2)),
		instance.NewAtom("F", instance.Null(2), instance.Null(3)),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Find(block, t, Avoiding(n)); !ok {
			b.Fatal("block-local retraction exists (another c1 block)")
		}
	}
}
