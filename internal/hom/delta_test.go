package hom

// Randomized crosscheck of the incremental paths against the from-scratch
// compile: a Search built by CompileAtoms on a prefix and Extend on the rest
// (in one or two stages) must answer exactly like CompileSource on the whole
// instance, for Exists, ExistsAC and Find alike; and the Precheck prefilter
// may only refute when no homomorphism exists and only confirm when one does
// (with the forced mapping actually being one). Run under -race by
// `make ci`, where the concurrent-siblings test doubles as a race workload
// for the capacity-trimmed sharing of a parent's compiled prefix.

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/genwl"
	"repro/internal/instance"
)

// randomPair draws a (from, to) instance pair with enough nulls on the
// source side for real search choice points.
func randomPair(rng *rand.Rand, nextNull *int64) (*instance.Instance, *instance.Instance) {
	from := withRandomNulls(genwl.RandomEdges("E", 2+rng.Intn(6), rng.Int63()), rng, 0.7, nextNull)
	to := withRandomNulls(genwl.RandomEdges("E", 4+rng.Intn(8), rng.Int63()), rng, 0.2, nextNull)
	return from, to
}

func TestExtendCrosscheck(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var nextNull int64
	found := 0
	const cases = 300
	for i := 0; i < cases; i++ {
		from, to := randomPair(rng, &nextNull)
		atoms := from.Atoms()
		cut := rng.Intn(len(atoms) + 1)
		s := CompileAtoms(atoms[:cut])
		if rng.Intn(2) == 0 {
			// Two-stage extension: grandparent → parent → child.
			cut2 := cut + rng.Intn(len(atoms)-cut+1)
			s = s.Extend(atoms[cut:cut2]).Extend(atoms[cut2:])
		} else {
			s = s.Extend(atoms[cut:])
		}
		fresh := CompileSource(from)
		want := fresh.Exists(to)
		if got := s.Exists(to); got != want {
			t.Fatalf("case %d (cut %d/%d): extended Exists=%v, fresh Exists=%v\nfrom: %v\nto:   %v",
				i, cut, len(atoms), got, want, from, to)
		}
		if got := s.ExistsAC(to); got != want {
			t.Fatalf("case %d (cut %d/%d): extended ExistsAC=%v, fresh Exists=%v\nfrom: %v\nto:   %v",
				i, cut, len(atoms), got, want, from, to)
		}
		m, ok := s.Find(to)
		if ok != want {
			t.Fatalf("case %d: extended Find ok=%v, fresh Exists=%v", i, ok, want)
		}
		if ok {
			isHom(t, m, from, to)
			found++
		}
	}
	if found == 0 || found == cases {
		t.Fatalf("degenerate workload: %d/%d cases had a homomorphism; want a mix", found, cases)
	}
}

func TestPrecheckCrosscheck(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	var nextNull int64
	refuted, confirmed, unknown := 0, 0, 0
	for i := 0; i < 400; i++ {
		from, to := randomPair(rng, &nextNull)
		if i%3 == 0 {
			// A near-singleton target forces singleton candidate domains,
			// exercising the confirm path (rare against dense targets).
			to = withRandomNulls(genwl.RandomEdges("E", 1+rng.Intn(2), rng.Int63()), rng, 0.2, &nextNull)
		}
		atoms := from.Atoms()
		exists := Exists(from, to)
		verdict, m := Precheck(atoms, to)
		switch verdict {
		case ACRefuted:
			if exists {
				t.Fatalf("case %d: Precheck refuted but a homomorphism exists\nfrom: %v\nto:   %v", i, from, to)
			}
			refuted++
		case ACConfirmed:
			if !exists {
				t.Fatalf("case %d: Precheck confirmed but no homomorphism exists\nfrom: %v\nto:   %v", i, from, to)
			}
			isHom(t, m, from, to)
			confirmed++
		default:
			unknown++
		}
		if PrecheckRefute(atoms, to) {
			if exists {
				t.Fatalf("case %d: PrecheckRefute refuted but a homomorphism exists", i)
			}
			if verdict != ACRefuted {
				t.Fatalf("case %d: PrecheckRefute refuted but Precheck said %v", i, verdict)
			}
		}

		// Avoiding variants, against Find(..., Avoiding(avoid)).
		dom := to.Dom()
		avoid := dom[rng.Intn(len(dom))]
		_, aExists := Find(from, to, Avoiding(avoid))
		fm, fok := CompileSource(from).FindAvoidingAC(to, avoid)
		if fok != aExists {
			t.Fatalf("case %d: FindAvoidingAC(%v)=%v, Find(Avoiding)=%v", i, avoid, fok, aExists)
		}
		if fok {
			isHom(t, fm, from, to)
			for _, a := range fm.ApplyInstance(from).Atoms() {
				for _, v := range a.Args {
					if v == avoid {
						t.Fatalf("case %d: FindAvoidingAC mapping mentions the avoided value %v in image atom %v", i, avoid, a)
					}
				}
			}
		}
		aVerdict, am := PrecheckAvoiding(atoms, to, avoid)
		switch aVerdict {
		case ACRefuted:
			if aExists {
				t.Fatalf("case %d: PrecheckAvoiding(%v) refuted but an avoiding homomorphism exists", i, avoid)
			}
		case ACConfirmed:
			if !aExists {
				t.Fatalf("case %d: PrecheckAvoiding(%v) confirmed but no avoiding homomorphism exists", i, avoid)
			}
			isHom(t, am, from, to)
			for _, a := range am.ApplyInstance(from).Atoms() {
				for _, v := range a.Args {
					if v == avoid {
						t.Fatalf("case %d: confirmed avoiding mapping mentions the avoided value %v in image atom %v", i, avoid, a)
					}
				}
			}
		}
	}
	if refuted == 0 || confirmed == 0 || unknown == 0 {
		t.Fatalf("degenerate workload: refuted=%d confirmed=%d unknown=%d; want all three outcomes", refuted, confirmed, unknown)
	}
}

// TestExtendSiblingsConcurrent extends one parent Search by many different
// deltas from concurrent goroutines — the Enumerate walk's sharing pattern,
// where sibling states extend their common ancestor's compiled search. Every
// sibling must still answer like a from-scratch compile of its own atom set.
func TestExtendSiblingsConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	var nextNull int64
	from, to := randomPair(rng, &nextNull)
	for from.Len() < 4 {
		from, to = randomPair(rng, &nextNull)
	}
	atoms := from.Atoms()
	cut := len(atoms) / 2
	parent := CompileAtoms(atoms[:cut])

	// Each sibling appends a different (shuffled) subset of the remaining
	// atoms; expected answers come from fresh compiles, computed up front.
	const siblings = 16
	deltas := make([][]instance.Atom, siblings)
	want := make([]bool, siblings)
	for g := range deltas {
		rest := append([]instance.Atom(nil), atoms[cut:]...)
		rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
		rest = rest[:rng.Intn(len(rest)+1)]
		deltas[g] = rest
		want[g] = CompileAtoms(append(append([]instance.Atom(nil), atoms[:cut]...), rest...)).Exists(to)
	}

	var wg sync.WaitGroup
	got := make([]bool, siblings)
	gotAC := make([]bool, siblings)
	for g := 0; g < siblings; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := parent.Extend(deltas[g])
			got[g] = s.Exists(to)
			gotAC[g] = s.ExistsAC(to)
		}(g)
	}
	wg.Wait()
	for g := 0; g < siblings; g++ {
		if got[g] != want[g] || gotAC[g] != want[g] {
			t.Fatalf("sibling %d: Exists=%v ExistsAC=%v, fresh compile says %v (delta of %d atoms)",
				g, got[g], gotAC[g], want[g], len(deltas[g]))
		}
	}
}
