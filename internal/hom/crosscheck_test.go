package hom

// Randomized crosscheck of the compiled, arc-consistency-pruned Search path
// against the interpreted, unpruned reference finder: on random instance
// pairs with nulls, Find and findRef must agree on whether a homomorphism
// exists, and any mapping either returns must actually be one. Run under
// -race by `make ci`, where repeated Find calls double as a race workload
// for the shared per-position indexes.

import (
	"math/rand"
	"testing"

	"repro/internal/genwl"
	"repro/internal/instance"
)

// withRandomNulls replaces each constant of ins with a fresh null with the
// given probability, producing an instance whose hom search has real choice
// points (constants are fixed by definition).
func withRandomNulls(ins *instance.Instance, rng *rand.Rand, prob float64, nextNull *int64) *instance.Instance {
	m := make(map[instance.Value]instance.Value)
	for _, c := range ins.Consts() {
		if rng.Float64() < prob {
			m[c] = instance.Null(*nextNull)
			*nextNull++
		}
	}
	return ins.Map(m)
}

// isHom verifies that the mapping really is a homomorphism from → to: every
// atom of the image occurs in to (constants are identities by construction
// of Mapping).
func isHom(t *testing.T, m Mapping, from, to *instance.Instance) {
	t.Helper()
	for _, a := range m.ApplyInstance(from).Atoms() {
		if !to.Has(a) {
			t.Fatalf("returned mapping %v is not a homomorphism: image atom %v not in target", m, a)
		}
	}
}

func TestFindCrosscheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var nextNull int64
	agree, found := 0, 0
	for agree < 200 {
		// Small random graphs: big enough for joins and shared nulls, small
		// enough that negative cases stay cheap for the unpruned reference.
		from := withRandomNulls(genwl.RandomEdges("E", 3+rng.Intn(5), rng.Int63()), rng, 0.7, &nextNull)
		to := withRandomNulls(genwl.RandomEdges("E", 4+rng.Intn(8), rng.Int63()), rng, 0.2, &nextNull)

		var opts []Option
		if rng.Intn(4) == 0 {
			opts = append(opts, Injective())
		}

		got, gotOK := Find(from, to, opts...)
		want, wantOK := findRef(from, to, opts...)
		if gotOK != wantOK {
			t.Fatalf("case %d: pruned Find=%v, reference findRef=%v\nfrom: %v\nto:   %v",
				agree, gotOK, wantOK, from, to)
		}
		if gotOK {
			isHom(t, got, from, to)
			isHom(t, want, from, to)
			found++
		}
		agree++
	}
	if found == 0 || found == 200 {
		t.Fatalf("degenerate workload: %d/200 cases had a homomorphism; want a mix", found)
	}
}
