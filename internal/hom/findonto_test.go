package hom

import (
	"testing"

	"repro/internal/parser"
)

// TestFindOntoBoundContract pins the documented bound semantics of FindOnto:
// maxHoms counts enumerated homomorphisms, each of which — including the
// maxHoms-th — is fully checked for surjectivity before the bound cuts the
// search.
func TestFindOntoBoundContract(t *testing.T) {
	from, err := parser.ParseInstance(`E(_0,_1). E(_2,_3).`)
	if err != nil {
		t.Fatal(err)
	}
	to, err := parser.ParseInstance(`E(a,b). E(c,d).`)
	if err != nil {
		t.Fatal(err)
	}

	// The deterministic enumeration order maps both atoms over the tuples
	// (a,b) then (c,d): hom #1 sends both atoms to (a,b) (not onto), hom #2
	// sends them to (a,b) and (c,d) (onto). So:
	//   maxHoms=1 examines only the non-onto hom #1 and reports false;
	//   maxHoms=2 must report true — the onto verdict of the bound-exhausting
	//   2nd candidate is not discarded.
	if _, onto := FindOnto(from, to, 1); onto {
		t.Fatal("maxHoms=1: the single examined homomorphism is not onto")
	}
	if _, onto := FindOnto(from, to, 2); !onto {
		t.Fatal("maxHoms=2: the 2nd (bound-exhausting) homomorphism is onto and must be reported")
	}
	if m, onto := FindOnto(from, to, 0); !onto {
		t.Fatal("unbounded search must find an onto homomorphism")
	} else if !m.ApplyInstance(from).Equal(to) {
		t.Fatalf("returned mapping %v is not onto", m)
	}

	// A bounded search whose first candidate is already onto succeeds.
	single, err := parser.ParseInstance(`E(_0,_1).`)
	if err != nil {
		t.Fatal(err)
	}
	oneAtom, err := parser.ParseInstance(`E(a,b).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, onto := FindOnto(single, oneAtom, 1); !onto {
		t.Fatal("maxHoms=1 must accept an onto first candidate")
	}
}
