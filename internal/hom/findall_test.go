package hom

import (
	"testing"

	"repro/internal/instance"
)

func TestFindAllCountsHomomorphisms(t *testing.T) {
	// From a single null edge into a 2-cycle: 2 homomorphisms.
	from := atoms(instance.NewAtom("E", nl(0), nl(1)))
	to := atoms(
		instance.NewAtom("E", c("a"), c("b")),
		instance.NewAtom("E", c("b"), c("a")),
	)
	all := FindAll(from, to, 0)
	if len(all) != 2 {
		t.Fatalf("homs = %d, want 2: %v", len(all), all)
	}
	for _, m := range all {
		if m.Apply(nl(0)) == m.Apply(nl(1)) {
			t.Fatalf("edge cannot collapse into the 2-cycle: %v", m)
		}
	}
}

func TestFindAllRespectsLimit(t *testing.T) {
	from := atoms(instance.NewAtom("E", nl(0), nl(1)))
	to := instance.New()
	for i := 0; i < 5; i++ {
		to.Add(instance.NewAtom("E", c("x"), instance.Const(string(rune('a'+i)))))
	}
	if got := FindAll(from, to, 3); len(got) != 3 {
		t.Fatalf("limit ignored: %d", len(got))
	}
	if got := FindAll(from, to, 0); len(got) != 5 {
		t.Fatalf("unbounded: %d, want 5", len(got))
	}
}

func TestFindOnto(t *testing.T) {
	big := atoms(
		instance.NewAtom("E", c("a"), nl(0)),
		instance.NewAtom("E", c("a"), nl(1)),
	)
	small := atoms(instance.NewAtom("E", c("a"), nl(5)))
	m, ok := FindOnto(big, small, 0)
	if !ok {
		t.Fatal("collapse onto the single edge exists")
	}
	if !m.ApplyInstance(big).Equal(small) {
		t.Fatalf("image %v != %v", m.ApplyInstance(big), small)
	}
	// The other direction cannot be onto: the image of one atom is one atom.
	if _, ok := FindOnto(small, big, 0); ok {
		t.Fatal("one atom cannot cover two")
	}
	// A hom exists but no onto-hom: target has an unreachable extra atom.
	extra := atoms(
		instance.NewAtom("E", c("a"), nl(5)),
		instance.NewAtom("F", c("z")),
	)
	if !Exists(big, extra) {
		t.Fatal("plain hom exists")
	}
	if _, ok := FindOnto(big, extra, 0); ok {
		t.Fatal("F(z) can never be covered")
	}
}

func TestAvoiding(t *testing.T) {
	tt := atoms(
		instance.NewAtom("E", c("a"), nl(0)),
		instance.NewAtom("E", c("a"), c("b")),
	)
	m, ok := Find(tt, tt, Avoiding(nl(0)))
	if !ok {
		t.Fatal("endo avoiding _0 exists (map it to b)")
	}
	if m.Apply(nl(0)) != c("b") {
		t.Fatalf("mapping = %v", m)
	}
	rigid := atoms(instance.NewAtom("E", c("a"), nl(0)))
	if _, ok := Find(rigid, rigid, Avoiding(nl(0))); ok {
		t.Fatal("nothing to retract onto")
	}
	// Avoiding is equivalent to Find(from, Without(to, v)).
	if _, okW := Find(tt, Without(tt, nl(0))); okW != true {
		t.Fatal("Without-based search must agree")
	}
}

func TestSortValues(t *testing.T) {
	vs := []instance.Value{nl(3), c("b"), nl(1), c("a")}
	SortValues(vs)
	want := []instance.Value{c("a"), c("b"), nl(1), nl(3)}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("order %v", vs)
		}
	}
}
