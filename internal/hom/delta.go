package hom

// Incremental homomorphism existence. cwa.Enumerate's universality prune and
// score.Core's per-block probes ask hom-existence questions whose sources
// differ from an earlier question by a small delta of atoms (one
// justification firing, one block-local retraction). Two tools exploit that
// structure instead of recompiling each source from scratch:
//
//   - Search.Extend appends compiled atoms and slots for the delta onto an
//     existing Search, sharing the parent's compiled prefix. The parent stays
//     immutable, so sibling extensions of one parent are safe, including
//     concurrently.
//
//   - Precheck runs posting-list arc consistency over a raw atom list,
//     refuting or confirming existence without compiling anything at all:
//     an empty candidate domain refutes, and when unit propagation leaves
//     every null a single candidate the forced mapping decides the question.
//
// Both preserve the answers of the from-scratch path exactly (pinned by the
// randomized crosscheck in delta_test.go); only the work to reach them
// changes.

import (
	"repro/internal/instance"
	"repro/internal/metrics"
)

// Extend returns the compiled search for the parent's source plus the delta
// atoms, reusing the parent's compiled atoms, slots and occurrence lists
// instead of re-running CompileAtoms over the whole source. The delta atoms
// are appended after the parent's (ordered among themselves by the usual
// fewest-unseen-nulls heuristic, with the parent's nulls counting as seen),
// so every parent slot is bound before any delta atom runs and delta
// occurrences of parent nulls compile to pattern fills.
//
// The parent is not modified and remains valid: shared slices are
// capacity-trimmed on hand-off, so sibling Extend calls on one parent —
// including concurrent ones — never clobber each other. Like CompileAtoms,
// the delta atoms' Args must stay unmodified while the result is in use.
//
// The extended search's answers are identical to compiling parent+delta from
// scratch; only the atom traversal order (and hence backtracking effort) may
// differ.
func (s *Search) Extend(delta []instance.Atom) *Search {
	if len(delta) == 0 {
		return s
	}
	metrics.HomExtends.Inc()
	atoms := orderAtomsSeen(delta, s.slotOf)
	total := 0
	for _, a := range atoms {
		total += len(a.Args)
	}
	child := &Search{
		nulls:  s.nulls[:len(s.nulls):len(s.nulls)],
		consts: s.consts[:len(s.consts):len(s.consts)],
		atoms:  s.atoms[:len(s.atoms):len(s.atoms)],
		occs:   make([][]searchOcc, len(s.occs), len(s.occs)+total),
		slotOf: make(map[instance.Value]int, len(s.slotOf)+total),
	}
	for i, l := range s.occs {
		child.occs[i] = l[:len(l):len(l)]
	}
	for k, v := range s.slotOf {
		child.slotOf[k] = v
	}
	constSeen := make(map[instance.Value]bool, len(s.consts))
	for _, c := range s.consts {
		constSeen[c] = true
	}
	// Same flat-backing discipline as CompileAtoms, sized for the delta only.
	patFlat := make([]instance.Value, total)
	boundFlat := make([]bool, total)
	opsFlat := make([]searchOp, 0, total)
	fillsFlat := make([]searchFill, 0, total)
	// First-binding atom (absolute index) of the slots the delta introduces.
	// Parent slots are bound strictly before every delta atom, so a lookup
	// miss means "bound earlier" and compiles to a fill.
	slotAtom := make(map[int]int, total)
	off := 0
	for ai, a := range atoms {
		abs := len(s.atoms) + ai
		sa := searchAtom{
			rel:     a.Rel,
			pattern: patFlat[off : off+len(a.Args) : off+len(a.Args)],
			bound:   boundFlat[off : off+len(a.Args) : off+len(a.Args)],
			ops:     opsFlat[off : off : off+len(a.Args)],
			fills:   fillsFlat[off : off : off+len(a.Args)],
		}
		off += len(a.Args)
		for i, v := range a.Args {
			if v.IsConst() {
				sa.pattern[i] = v
				sa.bound[i] = true
				if !constSeen[v] {
					constSeen[v] = true
					child.consts = append(child.consts, v)
				}
				continue
			}
			if slot, ok := child.slotOf[v]; ok {
				child.addOcc(slot, a.Rel, i)
				if ba, fresh := slotAtom[slot]; fresh && ba == abs {
					sa.ops = append(sa.ops, searchOp{pos: i, slot: slot, check: true})
					continue
				}
				sa.bound[i] = true
				sa.fills = append(sa.fills, searchFill{pos: i, slot: slot})
				continue
			}
			slot := len(child.nulls)
			child.slotOf[v] = slot
			child.nulls = append(child.nulls, v)
			slotAtom[slot] = abs
			child.occs = append(child.occs, []searchOcc{{rel: a.Rel, pos: i}})
			sa.ops = append(sa.ops, searchOp{pos: i, slot: slot})
		}
		child.atoms = append(child.atoms, sa)
	}
	return child
}

// ACVerdict is the outcome of the posting-list arc-consistency prefilter.
type ACVerdict int

const (
	// ACUnknown: the prefilter could not decide; run the compiled search.
	ACUnknown ACVerdict = iota
	// ACRefuted: no homomorphism exists (some atom or null cannot embed).
	ACRefuted
	// ACConfirmed: a homomorphism exists; unit propagation forced it.
	ACConfirmed
)

// Precheck decides homomorphism existence from atoms into to using only the
// target's per-position posting indexes, without compiling a search:
//
//   - ACRefuted when some ground atom is absent, some constant never occurs
//     at a position it must map to, or some null's candidate domain (the
//     values occurring at every position the null occupies) is empty — the
//     same emptiness condition as the compiled search's arc-consistency
//     pass, plus the ground-atom checks the search would discover by
//     scanning.
//
//   - ACConfirmed when every null's candidate domain is a singleton: the
//     mapping is forced, and it embeds every atom. The returned Mapping is
//     that homomorphism (it covers exactly the nulls occurring in atoms).
//
//   - ACUnknown otherwise; a subsequent compiled Find's arc-consistency
//     pass is then provably redundant (pass NoACPrune).
//
// Decisive outcomes are counted in metrics.HomACRefutes/HomACConfirms.
func Precheck(atoms []instance.Atom, to *instance.Instance) (ACVerdict, Mapping) {
	return precheck(atoms, to, 0, false, false)
}

// PrecheckAvoiding is Precheck under the Avoiding(avoid) option: existence
// of a homomorphism whose image mentions avoid nowhere. Candidate domains
// exclude avoid, and a confirmed mapping's image atoms are checked to avoid
// it — matching Find(..., Avoiding(avoid)) exactly.
func PrecheckAvoiding(atoms []instance.Atom, to *instance.Instance, avoid instance.Value) (ACVerdict, Mapping) {
	return precheck(atoms, to, avoid, true, false)
}

// PrecheckRefute reports that no homomorphism from atoms into to exists,
// by arc consistency alone (Precheck's ACRefuted outcome; false means
// undecided, not existence). It never attempts the confirm side, so domain
// scans stop at the first survivor — the cheap embeddability filter
// cwa.Enumerate runs on a candidate firing's head atoms before materializing
// the child state: the head atoms are a subset of every instance in the
// child's subtree, so their non-embeddability into the universal solution
// refutes universality for the whole subtree.
func PrecheckRefute(atoms []instance.Atom, to *instance.Instance) bool {
	v, _ := precheck(atoms, to, 0, false, true)
	return v == ACRefuted
}

func precheck(atoms []instance.Atom, to *instance.Instance, avoid instance.Value, hasAvoid, refuteOnly bool) (ACVerdict, Mapping) {
	refute := func() (ACVerdict, Mapping) {
		metrics.HomACRefutes.Inc()
		return ACRefuted, nil
	}
	// Gather each null's distinct (rel,pos) occurrences, in first-occurrence
	// order, and refute on the spot for constants and missing relations.
	occs := make(map[instance.Value][]searchOcc)
	var order []instance.Value
	for _, a := range atoms {
		if to.Arity(a.Rel) != len(a.Args) || to.RelLen(a.Rel) == 0 {
			return refute()
		}
		for i, v := range a.Args {
			if v.IsConst() {
				if hasAvoid && v == avoid {
					return refute()
				}
				if !to.PosHasValue(a.Rel, i, v) {
					return refute()
				}
				continue
			}
			l, seen := occs[v]
			if !seen {
				order = append(order, v)
			}
			dup := false
			for _, o := range l {
				if o.rel == a.Rel && o.pos == i {
					dup = true
					break
				}
			}
			if !dup {
				occs[v] = append(l, searchOcc{rel: a.Rel, pos: i})
			}
		}
	}
	// Per-null candidate domains, counted up to two survivors: zero refutes,
	// one forces the image, two or more leaves the question to the search.
	// A refute-only caller stops at the first survivor and never confirms.
	enough := 2
	if refuteOnly {
		enough = 1
	}
	var forced Mapping
	if !refuteOnly {
		forced = make(Mapping, len(order))
	}
	undecided := false
	for _, n := range order {
		os := occs[n]
		base := os[0]
		for _, o := range os[1:] {
			if to.PosDistinct(o.rel, o.pos) < to.PosDistinct(base.rel, base.pos) {
				base = o
			}
		}
		survivors := 0
		var single instance.Value
		to.EachPosValue(base.rel, base.pos, func(v instance.Value, _ int) bool {
			if hasAvoid && v == avoid {
				return true
			}
			for _, o := range os {
				if o == base {
					continue
				}
				if !to.PosHasValue(o.rel, o.pos, v) {
					return true
				}
			}
			survivors++
			single = v
			return survivors < enough
		})
		if survivors == 0 {
			return refute()
		}
		if refuteOnly {
			continue
		}
		if survivors >= 2 {
			undecided = true
			continue
		}
		forced[n] = single
	}
	if refuteOnly || undecided {
		return ACUnknown, nil
	}
	// Every domain is a singleton (vacuously for ground sources): the only
	// candidate homomorphism is forced, so presence of its image atoms
	// decides existence either way.
	buf := make([]instance.Value, 0, 8)
	for _, a := range atoms {
		args := buf[:0]
		for _, v := range a.Args {
			args = append(args, forced.Apply(v))
		}
		if hasAvoid {
			for _, v := range args {
				if v == avoid {
					return refute()
				}
			}
		}
		if !to.Has(instance.Atom{Rel: a.Rel, Args: args}) {
			return refute()
		}
	}
	metrics.HomACConfirms.Inc()
	return ACConfirmed, forced
}
