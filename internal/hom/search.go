package hom

import (
	"sync"

	"repro/internal/instance"
	"repro/internal/metrics"
)

// Search is a compiled source instance: the atoms of "from" in the static
// fewest-unseen-nulls order of orderAtoms, with nulls assigned integer slots
// and each atom position classified at compile time as constant, bound by an
// earlier atom (pattern fill), first occurrence (bind) or repeat within the
// same atom (equality check). A Search is immutable and safe for concurrent
// use; compile once per source instance and run it against many targets
// (core computation probes the same block against the instance once per
// droppable null).
//
// The source instance must not be mutated while a Search compiled from it is
// in use.
type Search struct {
	nulls  []instance.Value // slot → null
	slotOf map[instance.Value]int
	consts []instance.Value // distinct constants of the source atoms
	atoms  []searchAtom
	occs   [][]searchOcc // per slot: distinct (rel,pos) occurrences in from
	pool   sync.Pool     // *searchState
}

// searchOcc is one position of the source instance where a null occurs.
type searchOcc struct {
	rel string
	pos int
}

type searchFill struct{ pos, slot int }

// searchOp handles an unbound position of a candidate tuple: bind the slot
// (first occurrence) or check equality against it (repeat in the same atom).
type searchOp struct {
	pos, slot int
	check     bool
}

type searchAtom struct {
	rel     string
	pattern []instance.Value
	bound   []bool
	fills   []searchFill
	ops     []searchOp
}

type searchState struct {
	env      []instance.Value
	patterns [][]instance.Value
	// Per-run options (reset by each Find/FindAll call).
	used      map[instance.Value]bool // injective: reserved image values
	forced    []instance.Value        // slot → forced image
	forcedSet []bool
	injective bool
	avoid     instance.Value
	hasAvoid  bool
}

// CompileSource compiles the atoms of from for repeated homomorphism
// searches. The traversal order and candidate order are identical to the
// interpreted finder's, so Find results are unchanged.
func CompileSource(from *instance.Instance) *Search {
	return CompileAtoms(from.AtomsShared())
}

// CompileAtoms compiles an explicit atom list — a source that never needs to
// be materialized as an Instance (core computation compiles each Gaifman
// block's atoms directly). The atoms are reordered by the same
// fewest-unseen-nulls heuristic as CompileSource, so for an atom list equal
// to an instance's (sorted-relation, insertion-order) enumeration the
// compiled search is identical. The atoms' Args must stay unmodified while
// the Search is in use.
func CompileAtoms(src []instance.Atom) *Search {
	metrics.HomCompiles.Inc()
	atoms := orderAtoms(src)
	total := 0
	for _, a := range atoms {
		total += len(a.Args)
	}
	s := &Search{slotOf: make(map[instance.Value]int, total)}
	constSeen := make(map[instance.Value]bool)
	s.atoms = make([]searchAtom, 0, len(atoms))
	// One flat backing for every atom's pattern, bound, ops and fills
	// slices; each atom gets a capacity-bounded disjoint region, so the
	// per-position appends below never reallocate.
	patFlat := make([]instance.Value, total)
	boundFlat := make([]bool, total)
	opsFlat := make([]searchOp, 0, total)
	fillsFlat := make([]searchFill, 0, total)
	// slotAtom records the atom index at which each slot is first bound, so a
	// repeat of a null inside the binding atom (an equality check) is told
	// apart from a fill without per-atom bookkeeping.
	var slotAtom []int
	off := 0
	for ai, a := range atoms {
		sa := searchAtom{
			rel:     a.Rel,
			pattern: patFlat[off : off+len(a.Args) : off+len(a.Args)],
			bound:   boundFlat[off : off+len(a.Args) : off+len(a.Args)],
			ops:     opsFlat[off : off : off+len(a.Args)],
			fills:   fillsFlat[off : off : off+len(a.Args)],
		}
		off += len(a.Args)
		for i, v := range a.Args {
			if v.IsConst() {
				sa.pattern[i] = v
				sa.bound[i] = true
				if !constSeen[v] {
					constSeen[v] = true
					s.consts = append(s.consts, v)
				}
				continue
			}
			if slot, ok := s.slotOf[v]; ok {
				s.addOcc(slot, a.Rel, i)
				if slotAtom[slot] == ai {
					sa.ops = append(sa.ops, searchOp{pos: i, slot: slot, check: true})
					continue
				}
				sa.bound[i] = true
				sa.fills = append(sa.fills, searchFill{pos: i, slot: slot})
				continue
			}
			slot := len(s.nulls)
			s.slotOf[v] = slot
			s.nulls = append(s.nulls, v)
			slotAtom = append(slotAtom, ai)
			// Occurrence lists drive the arc-consistency prune: a null's
			// image must appear at every position the null occupies in from.
			s.occs = append(s.occs, []searchOcc{{rel: a.Rel, pos: i}})
			sa.ops = append(sa.ops, searchOp{pos: i, slot: slot})
		}
		s.atoms = append(s.atoms, sa)
	}
	return s
}

// addOcc appends the (rel,pos) occurrence to the slot's list unless already
// present (lists are tiny; a linear scan beats a map).
func (s *Search) addOcc(slot int, rel string, pos int) {
	for _, o := range s.occs[slot] {
		if o.rel == rel && o.pos == pos {
			return
		}
	}
	s.occs[slot] = append(s.occs[slot], searchOcc{rel: rel, pos: pos})
}

// Nulls returns the slot → null table (the search's own storage).
func (s *Search) Nulls() []instance.Value { return s.nulls }

// Exists reports whether a homomorphism from the compiled source into to
// exists, honouring the same options as Find.
func (s *Search) Exists(to *instance.Instance, opts ...Option) bool {
	metrics.HomExists.Inc()
	_, ok := s.Find(to, opts...)
	return ok
}

// ExistsAC decides homomorphism existence into to like Exists (with no
// options), but runs the arc-consistency pass in decision mode over the
// compiled occurrence lists first: an empty candidate domain refutes
// outright, and when every slot's domain is a singleton the forced
// assignment is the only candidate homomorphism, so verifying its image
// atoms decides the question either way — no backtracking at all. Only when
// some domain keeps two or more survivors does the backtracking search run
// (with its own arc-consistency pass skipped; the decision pass subsumes
// it). This is Precheck over the compiled form: same outcomes, but reusing
// the search's slot and occurrence tables instead of re-deriving them from
// raw atoms. Decisive outcomes are counted in
// metrics.HomACRefutes/HomACConfirms.
func (s *Search) ExistsAC(to *instance.Instance) bool {
	metrics.HomExists.Inc()
	st := s.state()
	defer s.release(st)
	switch s.acDecide(to, st) {
	case ACRefuted:
		return false
	case ACConfirmed:
		return true
	}
	return s.search(to, st, 0)
}

// FindAvoidingAC is Find(to, Avoiding(avoid)) with the decision-mode
// arc-consistency pass of ExistsAC: probes whose per-slot candidate domains
// (excluding avoid) empty out are refuted without backtracking, and probes
// where every domain is a singleton return the forced mapping immediately —
// the common cases of score.Core's per-null droppability probes, which call
// this once per null against the same compiled block.
func (s *Search) FindAvoidingAC(to *instance.Instance, avoid instance.Value) (Mapping, bool) {
	metrics.HomExists.Inc()
	st := s.state()
	defer s.release(st)
	st.avoid, st.hasAvoid = avoid, true
	switch s.acDecide(to, st) {
	case ACRefuted:
		return nil, false
	case ACUnknown:
		if !s.search(to, st, 0) {
			return nil, false
		}
	}
	out := make(Mapping, len(s.nulls))
	for slot, n := range s.nulls {
		out[n] = st.env[slot]
	}
	return out, true
}

// acDecide runs the decision-mode arc-consistency pass for ExistsAC and
// FindAvoidingAC, recording singleton domains into st.env (on ACConfirmed,
// st.env holds the complete forced assignment). Stale env entries are
// harmless on ACUnknown: the subsequent search rebinds every slot at its
// binding atom before any fill reads it.
func (s *Search) acDecide(to *instance.Instance, st *searchState) ACVerdict {
	allSingle := true
	for slot, occs := range s.occs {
		if len(occs) == 0 {
			continue
		}
		base := occs[0]
		for _, o := range occs[1:] {
			if to.PosDistinct(o.rel, o.pos) < to.PosDistinct(base.rel, base.pos) {
				base = o
			}
		}
		survivors := 0
		var single instance.Value
		to.EachPosValue(base.rel, base.pos, func(v instance.Value, _ int) bool {
			if st.hasAvoid && v == st.avoid {
				return true
			}
			for _, o := range occs {
				if o == base {
					continue
				}
				if !to.PosHasValue(o.rel, o.pos, v) {
					return true
				}
			}
			survivors++
			single = v
			return survivors < 2
		})
		if survivors == 0 {
			metrics.HomACRefutes.Inc()
			return ACRefuted
		}
		if survivors >= 2 {
			allSingle = false
			continue
		}
		st.env[slot] = single
	}
	if !allSingle {
		return ACUnknown
	}
	// Every domain is a singleton (vacuously for ground sources): presence of
	// the forced assignment's image atoms decides existence either way.
	for i := range s.atoms {
		a := &s.atoms[i]
		pat := st.patterns[i]
		copy(pat, a.pattern)
		for _, fr := range a.fills {
			pat[fr.pos] = st.env[fr.slot]
		}
		for _, op := range a.ops {
			pat[op.pos] = st.env[op.slot]
		}
		if st.hasAvoid {
			// Slot images exclude avoid by domain construction, but a
			// constant position could still mention it.
			for _, v := range pat {
				if v == st.avoid {
					metrics.HomACRefutes.Inc()
					return ACRefuted
				}
			}
		}
		if !to.Has(instance.Atom{Rel: a.rel, Args: pat}) {
			metrics.HomACRefutes.Inc()
			return ACRefuted
		}
	}
	metrics.HomACConfirms.Inc()
	return ACConfirmed
}

func (s *Search) state() *searchState {
	if st, ok := s.pool.Get().(*searchState); ok {
		return st
	}
	st := &searchState{
		env:       make([]instance.Value, len(s.nulls)),
		patterns:  make([][]instance.Value, len(s.atoms)),
		forced:    make([]instance.Value, len(s.nulls)),
		forcedSet: make([]bool, len(s.nulls)),
	}
	total := 0
	for _, a := range s.atoms {
		total += len(a.pattern)
	}
	flat := make([]instance.Value, total)
	off := 0
	for i, a := range s.atoms {
		st.patterns[i] = flat[off : off+len(a.pattern) : off+len(a.pattern)]
		off += len(a.pattern)
	}
	return st
}

func (s *Search) release(st *searchState) {
	st.used = nil
	for i := range st.forcedSet {
		st.forcedSet[i] = false
	}
	st.injective = false
	st.hasAvoid = false
	s.pool.Put(st)
}

// Find searches for a homomorphism from the compiled source into to,
// honouring the same options as the package-level Find.
func (s *Search) Find(to *instance.Instance, opts ...Option) (Mapping, bool) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	st := s.state()
	defer s.release(st)
	st.injective = o.injective
	st.avoid, st.hasAvoid = o.avoid, o.hasAvoid
	if o.injective {
		st.used = make(map[instance.Value]bool)
	}
	// Seed forced assignments (constants in forced must be identities).
	for k, v := range o.forced {
		if k.IsConst() {
			if k != v {
				return nil, false
			}
			continue
		}
		if o.injective {
			if st.used[v] {
				return nil, false
			}
			st.used[v] = true
		}
		if slot, ok := s.slotOf[k]; ok {
			st.forced[slot] = v
			st.forcedSet[slot] = true
		}
	}
	if o.injective {
		// Constants are fixed, so they occupy their own images.
		for _, c := range s.consts {
			if st.used[c] {
				// A forced null already maps onto this constant.
				return nil, false
			}
			st.used[c] = true
		}
	}
	if !o.skipAC && s.pruned(to, st) {
		return nil, false
	}
	if !s.search(to, st, 0) {
		return nil, false
	}
	out := make(Mapping, len(s.nulls)+len(o.forced))
	for slot, n := range s.nulls {
		out[n] = st.env[slot]
	}
	// Forced nulls outside the active domain still belong to the mapping.
	for k, v := range o.forced {
		if k.IsNull() {
			if _, ok := s.slotOf[k]; !ok {
				out[k] = v
			}
		}
	}
	return out, true
}

// pruned runs the arc-consistency check: for each null, its candidate domain
// is the set of values occurring at every position the null occupies in the
// source (minus the avoided value). An empty domain refutes the search
// before any backtracking; only these deterministic empty-domain events are
// counted in metrics.HomPrunes (the domain scan itself iterates index maps
// in unspecified order, but emptiness does not depend on that order).
func (s *Search) pruned(to *instance.Instance, st *searchState) bool {
	for slot, occs := range s.occs {
		if len(occs) == 0 {
			continue
		}
		if st.forcedSet[slot] {
			v := st.forced[slot]
			if st.hasAvoid && v == st.avoid {
				metrics.HomPrunes.Inc()
				return true
			}
			for _, o := range occs {
				if !to.PosHasValue(o.rel, o.pos, v) {
					metrics.HomPrunes.Inc()
					return true
				}
			}
			continue
		}
		// Enumerate the smallest occurrence's distinct values and probe the
		// rest; one survivor is enough.
		base := occs[0]
		for _, o := range occs[1:] {
			if to.PosDistinct(o.rel, o.pos) < to.PosDistinct(base.rel, base.pos) {
				base = o
			}
		}
		found := false
		to.EachPosValue(base.rel, base.pos, func(v instance.Value, _ int) bool {
			if st.hasAvoid && v == st.avoid {
				return true
			}
			for _, o := range occs {
				if o == base {
					continue
				}
				if !to.PosHasValue(o.rel, o.pos, v) {
					return true
				}
			}
			found = true
			return false
		})
		if !found {
			metrics.HomPrunes.Inc()
			return true
		}
	}
	return false
}

// search runs the backtracking over the compiled atoms, keeping the
// successful bindings in st.env. It mirrors the interpreted finder: same
// atom order, same candidate enumeration, same per-position bind/check
// sequence, so the found mapping is identical.
func (s *Search) search(to *instance.Instance, st *searchState, lvl int) bool {
	if lvl == len(s.atoms) {
		return true
	}
	a := &s.atoms[lvl]
	pat := st.patterns[lvl]
	copy(pat, a.pattern)
	for _, fr := range a.fills {
		pat[fr.pos] = st.env[fr.slot]
	}
	rel, ok := to.Relation(a.rel, len(a.pattern))
	if !ok {
		return false
	}
	cols := rel.Cols()
	best := -1
	var bestList []int32
	for i, b := range a.bound {
		if !b {
			continue
		}
		l := rel.Postings(i, pat[i])
		if best == -1 || len(l) < len(bestList) {
			best, bestList = i, l
		}
	}
	if best >= 0 {
		for _, row := range bestList {
			if done, found := s.step(to, st, lvl, a, pat, cols, row); done {
				return found
			}
		}
		return false
	}
	n := rel.Rows()
	dead := rel.HasDead()
	for row := int32(0); row < n; row++ {
		if dead && !rel.Alive(row) {
			continue
		}
		if done, found := s.step(to, st, lvl, a, pat, cols, row); done {
			return found
		}
	}
	return false
}

// step tries one candidate row at the given level. done reports that the
// whole search finished (found true: keep bindings and unwind).
func (s *Search) step(to *instance.Instance, st *searchState, lvl int, a *searchAtom, pat []instance.Value, cols [][]instance.Value, row int32) (done, found bool) {
	for i, b := range a.bound {
		if b && cols[i][row] != pat[i] {
			return false, false
		}
	}
	if st.hasAvoid {
		for _, col := range cols {
			if col[row] == st.avoid {
				return false, false
			}
		}
	}
	nBinds := 0
	ok := true
	for _, op := range a.ops {
		if op.check {
			if cols[op.pos][row] != st.env[op.slot] {
				ok = false
				break
			}
			continue
		}
		v := cols[op.pos][row]
		if st.forcedSet[op.slot] {
			// The forced image is already reserved; only equality matters.
			if v != st.forced[op.slot] {
				ok = false
				break
			}
			st.env[op.slot] = v
			continue
		}
		if st.injective {
			if st.used[v] {
				ok = false
				break
			}
			st.used[v] = true
		}
		st.env[op.slot] = v
		nBinds++
	}
	if ok && s.search(to, st, lvl+1) {
		return true, true
	}
	if nBinds > 0 {
		metrics.HomBacktracks.Inc()
	}
	if st.injective {
		// Release the values reserved by this candidate's binds. Slots bound
		// here still hold this candidate's values: deeper levels never
		// rebind them (boundness is static).
		n := 0
		for _, op := range a.ops {
			if op.check || st.forcedSet[op.slot] {
				continue
			}
			if n == nBinds {
				break
			}
			delete(st.used, st.env[op.slot])
			n++
		}
	}
	return false, false
}

// searchAll enumerates every completion, emitting a copy of the mapping for
// each; emit returns false to stop. Used by FindAll and FindOnto.
func (s *Search) searchAll(to *instance.Instance, st *searchState, lvl int, emit func(Mapping) bool) bool {
	if lvl == len(s.atoms) {
		cp := make(Mapping, len(s.nulls))
		for slot, n := range s.nulls {
			cp[n] = st.env[slot]
		}
		return emit(cp)
	}
	a := &s.atoms[lvl]
	pat := st.patterns[lvl]
	copy(pat, a.pattern)
	for _, fr := range a.fills {
		pat[fr.pos] = st.env[fr.slot]
	}
	rel, ok := to.Relation(a.rel, len(a.pattern))
	if !ok {
		return true
	}
	cols := rel.Cols()
	best := -1
	var bestList []int32
	for i, b := range a.bound {
		if !b {
			continue
		}
		l := rel.Postings(i, pat[i])
		if best == -1 || len(l) < len(bestList) {
			best, bestList = i, l
		}
	}
	if best >= 0 {
		for _, row := range bestList {
			if !s.stepAll(to, st, lvl, a, pat, cols, row, emit) {
				return false
			}
		}
		return true
	}
	n := rel.Rows()
	dead := rel.HasDead()
	for row := int32(0); row < n; row++ {
		if dead && !rel.Alive(row) {
			continue
		}
		if !s.stepAll(to, st, lvl, a, pat, cols, row, emit) {
			return false
		}
	}
	return true
}

func (s *Search) stepAll(to *instance.Instance, st *searchState, lvl int, a *searchAtom, pat []instance.Value, cols [][]instance.Value, row int32, emit func(Mapping) bool) bool {
	for i, b := range a.bound {
		if b && cols[i][row] != pat[i] {
			return true
		}
	}
	nBinds := 0
	ok := true
	for _, op := range a.ops {
		if op.check {
			if cols[op.pos][row] != st.env[op.slot] {
				ok = false
				break
			}
			continue
		}
		st.env[op.slot] = cols[op.pos][row]
		nBinds++
	}
	cont := true
	if ok {
		cont = s.searchAll(to, st, lvl+1, emit)
	}
	if nBinds > 0 {
		metrics.HomBacktracks.Inc()
	}
	return cont
}
