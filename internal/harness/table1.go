package harness

import (
	"fmt"

	"repro/internal/certain"
	"repro/internal/chase"
	"repro/internal/cwa"
	"repro/internal/genwl"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/sat"
)

// Table1Cell is one cell of the paper's Table 1 with the measured evidence.
type Table1Cell struct {
	Row, Col string
	Paper    string
	Measured string
	OK       bool
}

// Table1 regenerates the paper's Table 1 — the complexity of certain⊓ and
// certain⊔ for the four setting classes and three query classes — backing
// every PTIME entry with a measured polynomial growth exponent and every
// hardness entry with a validated reduction.
func Table1() []Table1Cell {
	var cells []Table1Cell
	cells = append(cells, table1UCQColumn()...)
	cells = append(cells, table1IneqColumn()...)
	cells = append(cells, table1FOColumn()...)
	return cells
}

func table1UCQColumn() []Table1Cell {
	var cells []Table1Cell
	mk := func(name string, run func(n int) error) Table1Cell {
		var points []Measurement
		ok := true
		for _, n := range []int{8, 16, 32, 64} {
			elapsed := Time(func() {
				if err := run(n); err != nil {
					ok = false
				}
			})
			points = append(points, Measurement{Size: n, Elapsed: elapsed})
		}
		g := GrowthExponent(points)
		return Table1Cell{
			Row: name, Col: "union of CQ",
			Paper:    "PTIME",
			Measured: fmt.Sprintf("PTIME (growth ≈ n^%.1f)", g),
			OK:       ok && LooksPolynomial(points, 3),
		}
	}

	// Row 1: weakly acyclic (but not richly acyclic).
	wk, err := parser.ParseSetting(`
source S/2.
target E/2.
st:
  s1: S(x,y) -> E(x,y).
target-deps:
  t1: E(x,y) -> exists z : E(x,z).
`)
	if err != nil {
		panic(err)
	}
	uq := mustUCQ("q(x,y) :- E(x,y).")
	cells = append(cells, mk("weakly acyclic", func(n int) error {
		src := genwl.RandomEdges("S", n, int64(n))
		_, err := certain.CertainUCQ(wk, uq, src, certain.Options{})
		return err
	}))

	// Row 2: richly acyclic chain.
	chain := genwl.WeaklyAcyclicChain(4)
	cq := mustUCQ("q(x,y) :- T1(x,y).")
	cells = append(cells, mk("richly acyclic", func(n int) error {
		src := genwl.RandomEdges("R0", n, int64(n))
		_, err := certain.CertainUCQ(chain, cq, src, certain.Options{})
		return err
	}))

	// Row 3: egds only.
	egd := genwl.EgdOnly()
	fq := mustUCQ("q(x,y) :- F(x,y).")
	cells = append(cells, mk("Σst tgds; Σt egds", func(n int) error {
		src := genwl.EgdOnlySource(n, true, int64(n))
		_, err := certain.CertainUCQ(egd, fq, src, certain.Options{})
		return err
	}))

	// Row 4: full tgds + egds.
	full := genwl.FullTgds()
	tq := mustUCQ("q(x,y) :- T(x,y).")
	cells = append(cells, mk("Σst full; Σt egds+full", func(n int) error {
		src := genwl.RandomEdges("R", n, int64(n))
		_, err := certain.CertainUCQ(full, tq, src, certain.Options{})
		return err
	}))
	return cells
}

func table1IneqColumn() []Table1Cell {
	var cells []Table1Cell

	// Rows 1–2: co-NP-hard / co-NP-complete via the Theorem 7.5 reduction
	// (the reduction setting is richly acyclic, hence also weakly acyclic).
	agree := true
	for seed := int64(0); seed < 6; seed++ {
		f := sat.Random3CNF(3, 3+int(seed), seed)
		_, isSat := sat.Solve(f)
		unsat, err := sat.CertainUnsat(f, chase.Options{})
		if err != nil || unsat == isSat {
			agree = false
		}
	}
	evid := fmt.Sprintf("reduction from 3-SAT validated (%v)", agree)
	cells = append(cells,
		Table1Cell{Row: "weakly acyclic", Col: "CQ + 1 inequality",
			Paper: "co-NP-hard", Measured: evid, OK: agree},
		Table1Cell{Row: "richly acyclic", Col: "CQ + 1 inequality",
			Paper: "co-NP-complete", Measured: evid + "; upper bound via valuation enumeration", OK: agree},
	)

	// Rows 3–4: PTIME via the fixpoint algorithm.
	egd := genwl.EgdOnly()
	u := mustUCQ("q(x) :- F(x,y), y != x.")
	var points []Measurement
	ok := true
	for _, n := range []int{8, 16, 32, 64} {
		src := genwl.EgdOnlySource(n, true, int64(n))
		can, err := cwa.CanSol(egd, src, chase.Options{})
		if err != nil {
			ok = false
			break
		}
		elapsed := Time(func() {
			if _, err := certain.BoxUCQIneqPTime(egd, u, can); err != nil {
				ok = false
			}
		})
		points = append(points, Measurement{Size: n, Elapsed: elapsed})
	}
	g := GrowthExponent(points)
	cells = append(cells,
		Table1Cell{Row: "Σst tgds; Σt egds", Col: "CQ + 1 inequality",
			Paper:    "PTIME",
			Measured: fmt.Sprintf("PTIME fixpoint (growth ≈ n^%.1f)", g),
			OK:       ok && LooksPolynomial(points, 3.5)},
		Table1Cell{Row: "Σst full; Σt egds+full", Col: "CQ + 1 inequality",
			Paper:    "PTIME",
			Measured: "PTIME (null-free chase result: naive evaluation)",
			OK:       fullRowNullFree()},
	)
	return cells
}

func table1FOColumn() []Table1Cell {
	var cells []Table1Cell
	// Rows 1–3: co-NP (hardness inherited from the CQ≠ reduction, since a
	// CQ with an inequality is an FO query; upper bound by enumeration).
	q, err := parser.ParseFOQuery(`(x) . exists y (F(x,y) & !(exists z (F(z,x))))`)
	if err != nil {
		panic(err)
	}
	egd := genwl.EgdOnly()
	src := genwl.EgdOnlySource(3, true, 5)
	core, err2 := cwa.Minimal(egd, src, chase.Options{})
	ok := err2 == nil
	if ok {
		_, err := certain.Box(egd, q, core, certain.Options{})
		ok = err == nil
	}
	evid := fmt.Sprintf("FO □Q computed by valuation enumeration (%v)", ok)
	cells = append(cells,
		Table1Cell{Row: "weakly acyclic", Col: "FO", Paper: "co-NP-hard", Measured: evid, OK: ok},
		Table1Cell{Row: "richly acyclic", Col: "FO", Paper: "co-NP-complete", Measured: evid, OK: ok},
		Table1Cell{Row: "Σst tgds; Σt egds", Col: "FO", Paper: "co-NP-complete", Measured: evid, OK: ok},
	)

	// Row 4: PTIME — the chase result is null-free, so Rep(T) = {T} and any
	// FO query evaluates directly.
	var points []Measurement
	okFull := true
	full := genwl.FullTgds()
	fo, err := parser.ParseFOQuery(`(x) . exists y (T(x,y) & !(T(y,x)))`)
	if err != nil {
		panic(err)
	}
	for _, n := range []int{8, 16, 32} {
		src := genwl.RandomEdges("R", n, int64(n))
		can, err := cwa.CanSol(full, src, chase.Options{})
		if err != nil || can.HasNulls() {
			okFull = false
			break
		}
		elapsed := Time(func() {
			if _, err := certain.Box(full, fo, can, certain.Options{}); err != nil {
				okFull = false
			}
		})
		points = append(points, Measurement{Size: n, Elapsed: elapsed})
	}
	g := GrowthExponent(points)
	cells = append(cells, Table1Cell{
		Row: "Σst full; Σt egds+full", Col: "FO",
		Paper:    "PTIME",
		Measured: fmt.Sprintf("PTIME (null-free, growth ≈ n^%.1f)", g),
		OK:       okFull,
	})
	return cells
}

// fullRowNullFree checks that the full-tgd row's chase results are
// null-free, which is why every query class is PTIME there.
func fullRowNullFree() bool {
	full := genwl.FullTgds()
	src := genwl.RandomEdges("R", 16, 3)
	can, err := cwa.CanSol(full, src, chase.Options{})
	if err != nil || can.HasNulls() {
		return false
	}
	u := mustUCQ("q(x) :- T(x,y), y != x.")
	slow, err := certain.Box(full, u, can, certain.Options{})
	if err != nil {
		return false
	}
	naive := query.NullFree(u.Answers(can))
	return slow.Equal(naive)
}

// Table1Report renders the cells as a table grouped by row.
func Table1Report(cells []Table1Cell) string {
	rows := [][]string{{"setting class", "query class", "paper", "measured", "ok"}}
	for _, c := range cells {
		ok := "✓"
		if !c.OK {
			ok = "✗"
		}
		rows = append(rows, []string{c.Row, c.Col, c.Paper, c.Measured, ok})
	}
	return Table(rows)
}
