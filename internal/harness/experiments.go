package harness

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/certain"
	"repro/internal/chase"
	"repro/internal/circuit"
	"repro/internal/cwa"
	"repro/internal/genwl"
	"repro/internal/hom"
	"repro/internal/instance"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/sat"
	"repro/internal/score"
	"repro/internal/semigroup"
	"repro/internal/turing"
)

// RunAll executes the complete experiment index E1–E12 of DESIGN.md and
// returns one Result per experiment.
func RunAll() []Result {
	results := []Result{
		E1UCQPolynomial(),
		E2CQIneqCoNP(),
		E3EgdOnlyPTime(),
		E4FOCertainUpperBound(),
		E5Example53(),
		E6Proposition66(),
		E7TuringSimulation(),
		E8Demb(),
		E9CoreAblation(),
		E10Anomaly(),
		E11SemanticsCrossCheck(),
		E12CanSolMaximality(),
		E13ObliviousAblation(),
	}
	SortResults(results)
	return results
}

// E13ObliviousAblation — an engine ablation beyond the paper's text: the
// oblivious chase (per-trigger firing) terminates on richly acyclic
// settings but diverges on weakly-acyclic-only ones where the standard
// chase terminates — the executable content of the Proposition 7.4
// restriction to rich acyclicity.
func E13ObliviousAblation() Result {
	weakOnly, err := parser.ParseSetting(`
source S/2.
target E/2.
st:
  s1: S(x,y) -> E(x,y).
target-deps:
  t1: E(x,y) -> exists z : E(x,z).
`)
	if err != nil {
		panic(err)
	}
	src, _ := parser.ParseInstance(`S(a,b). S(b,c).`)
	ok := weakOnly.WeaklyAcyclic() && !weakOnly.RichlyAcyclic()
	if _, err := chase.Standard(weakOnly, src, chase.Options{MaxSteps: 2000}); err != nil {
		ok = false
	}
	if _, err := chase.Oblivious(weakOnly, src, chase.Options{MaxSteps: 2000}); !errors.Is(err, chase.ErrBudgetExceeded) {
		ok = false
	}
	rich := genwl.Example21()
	richSrc := genwl.Example21Source()
	if _, err := chase.Oblivious(rich, richSrc, chase.Options{MaxSteps: 20000}); err != nil {
		ok = false
	}
	return Result{
		ID:       "E13",
		Artifact: "weak vs. rich acyclicity (Defs 6.5/7.3, Prop 7.4)",
		Paper:    "per-ȳ value creation breaks termination under weak acyclicity",
		Measured: "oblivious chase: diverges on weakly-only, terminates on richly acyclic; standard chase terminates on both",
		OK:       ok,
	}
}

func mustUCQ(text string) query.UCQ {
	u, err := parser.ParseUCQ(text)
	if err != nil {
		panic(err)
	}
	return u
}

// E1UCQPolynomial — Table 1, column "union of CQ": certain answers of pure
// UCQs are computable in polynomial time for weakly acyclic settings
// (Theorem 7.6 / Lemma 7.7). Measured: the growth exponent of CertainUCQ
// over increasing source sizes.
func E1UCQPolynomial() Result {
	s := genwl.WeaklyAcyclicChain(4)
	u := mustUCQ("q(x,y) :- T1(x,y).\nq(x,y) :- T2(x,y).")
	var points []Measurement
	ok := true
	for _, n := range []int{8, 16, 32, 64, 128} {
		src := genwl.RandomEdges("R0", n, int64(n))
		elapsed := Time(func() {
			ans, err := certain.CertainUCQ(s, u, src, certain.Options{})
			if err != nil || ans == nil {
				ok = false
			}
		})
		points = append(points, Measurement{Size: n, Elapsed: elapsed})
	}
	g := GrowthExponent(points)
	return Result{
		ID:       "E1",
		Artifact: "Table 1 col 1 (union of CQ)",
		Paper:    "PTIME for weakly acyclic settings",
		Measured: fmt.Sprintf("growth ≈ n^%.1f over sizes 8..128", g),
		OK:       ok && LooksPolynomial(points, 3),
	}
}

// E2CQIneqCoNP — Theorem 7.5: certain answers of a CQ with one inequality
// are co-NP-hard; the reduction's verdict must complement DPLL.
func E2CQIneqCoNP() Result {
	agree := true
	for seed := int64(0); seed < 10; seed++ {
		f := sat.Random3CNF(3, 3+int(seed)%5, seed)
		_, isSat := sat.Solve(f)
		unsat, err := sat.CertainUnsat(f, chase.Options{})
		if err != nil || unsat == isSat {
			agree = false
			break
		}
	}
	return Result{
		ID:       "E2",
		Artifact: "Theorem 7.5 / Table 1 col 2 (CQ + 1 inequality)",
		Paper:    "co-NP-complete for richly acyclic settings",
		Measured: fmt.Sprintf("certain(q,S_φ) = UNSAT(φ) on 10 random 3-CNFs: %v", agree),
		OK:       agree,
	}
}

// E3EgdOnlyPTime — Table 1 rows 3–4 of column 2: UCQs with one inequality
// per disjunct are PTIME for egd-only settings; the fixpoint algorithm must
// agree with valuation enumeration and scale polynomially.
func E3EgdOnlyPTime() Result {
	s := genwl.EgdOnly()
	u := mustUCQ("q(x) :- F(x,y), y != x.")
	agree := true
	var points []Measurement
	for _, n := range []int{4, 8, 16, 32, 64} {
		src := genwl.EgdOnlySource(n, true, int64(n))
		can, err := cwa.CanSol(s, src, chase.Options{})
		if err != nil {
			agree = false
			break
		}
		elapsed := Time(func() {
			if _, err := certain.BoxUCQIneqPTime(s, u, can); err != nil {
				agree = false
			}
		})
		points = append(points, Measurement{Size: n, Elapsed: elapsed})
		if n <= 8 {
			fast, _ := certain.BoxUCQIneqPTime(s, u, can)
			slow, err := certain.Box(s, u, can, certain.Options{})
			if err != nil || !fast.Equal(slow) {
				agree = false
			}
		}
	}
	g := GrowthExponent(points)
	return Result{
		ID:       "E3",
		Artifact: "Table 1 rows 3-4, col 2 (egd-only / full+egds)",
		Paper:    "PTIME via the Fagin-et-al.-style algorithm",
		Measured: fmt.Sprintf("fixpoint = enumeration on small inputs; growth ≈ n^%.1f", g),
		OK:       agree && LooksPolynomial(points, 3),
	}
}

// E4FOCertainUpperBound — Proposition 7.4: FO certain/maybe answers over
// richly acyclic settings are in co-NP/NP; the generic algorithm enumerates
// valuations, exponential only in the number of nulls.
func E4FOCertainUpperBound() Result {
	s := genwl.EgdOnly()
	q, err := parser.ParseFOQuery(`(x) . exists y (F(x,y) & !(exists z (F(z,x))))`)
	if err != nil {
		panic(err)
	}
	ok := true
	var points []Measurement
	for _, n := range []int{1, 2, 3, 4, 5} {
		src := genwl.EgdOnlySource(n, true, 7)
		core, err := cwa.Minimal(s, src, chase.Options{})
		if err != nil {
			ok = false
			break
		}
		elapsed := Time(func() {
			if _, err := certain.Box(s, q, core, certain.Options{}); err != nil {
				ok = false
			}
		})
		points = append(points, Measurement{Size: core.Len(), Elapsed: elapsed})
	}
	return Result{
		ID:       "E4",
		Artifact: "Proposition 7.4 (FO queries, richly acyclic)",
		Paper:    "co-NP upper bound (valuation enumeration)",
		Measured: fmt.Sprintf("generic □Q computed for up to %d nulls", 5),
		OK:       ok,
	}
}

// E5Example53 — Example 5.3: at least 2^n pairwise incomparable
// CWA-solutions for S_n.
func E5Example53() Result {
	s := genwl.Example53()
	ok := true
	counts := make([]int, 0, 2)
	for n := 1; n <= 2; n++ {
		sols, err := cwa.Enumerate(s, genwl.Example53Source(n), cwa.EnumOptions{MaxStates: 500000})
		if err != nil {
			ok = false
			break
		}
		_, inc := cwa.Incomparable(sols)
		counts = append(counts, len(inc))
		if len(inc) < 1<<n {
			ok = false
		}
	}
	return Result{
		ID:       "E5",
		Artifact: "Example 5.3 (no maximal CWA-solution)",
		Paper:    "≥ 2^n pairwise incomparable CWA-solutions",
		Measured: fmt.Sprintf("incomparable counts %v for n=1,2", counts),
		OK:       ok,
	}
}

// E6Proposition66 — Proposition 6.6: computing a CWA-solution is PTIME for
// weakly acyclic settings, and the problem is PTIME-hard (MCVP reduction).
func E6Proposition66() Result {
	s := genwl.WeaklyAcyclicChain(5)
	ok := true
	var points []Measurement
	for _, n := range []int{8, 16, 32, 64} {
		src := genwl.RandomEdges("R0", n, int64(n))
		elapsed := Time(func() {
			if _, err := cwa.Minimal(s, src, chase.Options{}); err != nil {
				ok = false
			}
		})
		points = append(points, Measurement{Size: n, Elapsed: elapsed})
	}
	// PTIME-hardness: the MCVP reduction is correct.
	es := circuit.ExistenceSetting()
	for seed := int64(0); seed < 10; seed++ {
		c := circuit.Random(3, 8, seed)
		src, err := circuit.SourceInstance(c, true)
		if err != nil {
			ok = false
			break
		}
		exists, err := cwa.Exists(es, src, chase.Options{})
		if err != nil || exists == c.Eval() {
			ok = false
			break
		}
	}
	g := GrowthExponent(points)
	return Result{
		ID:       "E6",
		Artifact: "Proposition 6.6 (computing CWA-solutions)",
		Paper:    "PTIME for weakly acyclic; PTIME-hard (MCVP)",
		Measured: fmt.Sprintf("growth ≈ n^%.1f; MCVP reduction correct on 10 circuits", g),
		OK:       ok && LooksPolynomial(points, 3.5),
	}
}

// E7TuringSimulation — Theorem 6.2: the chase over D_halt simulates Turing
// machines; halting ⟺ chase termination, step-exact against the
// interpreter.
func E7TuringSimulation() Result {
	s := turing.DHaltSetting()
	ok := true
	detail := ""
	for _, n := range []int{1, 3, 6} {
		m := turing.WriterMachine(n)
		src, err := turing.SourceInstance(m)
		if err != nil {
			ok = false
			break
		}
		res, err := chase.Standard(s, src, chase.Options{MaxSteps: 200000})
		if err != nil {
			ok = false
			break
		}
		got, err := turing.DecodeRun(res.Target)
		if err != nil {
			ok = false
			break
		}
		want, _ := m.Run(1000)
		if len(got) != len(want) {
			ok = false
			break
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				ok = false
			}
		}
		detail = fmt.Sprintf("writer(%d): %d configs, %d chase steps", n, len(got), res.Steps)
	}
	// Non-halting: budget exceeded.
	loopSrc, _ := turing.SourceInstance(turing.LoopMachine())
	if _, err := chase.Standard(s, loopSrc, chase.Options{MaxSteps: 2000}); !errors.Is(err, chase.ErrBudgetExceeded) {
		ok = false
	}
	return Result{
		ID:       "E7",
		Artifact: "Theorem 6.2 (D_halt)",
		Paper:    "Existence-of-CWA-Solutions undecidable (TM simulation)",
		Measured: detail + "; looper exceeds every budget",
		OK:       ok,
	}
}

// E8Demb — Example 6.1: D_emb has solutions (Z_{k+2}) for S = {R(0,1,1)}
// but no CWA-solution: the chase keeps growing under every budget.
func E8Demb() Result {
	s := semigroup.DembSetting()
	src, err := semigroup.SourceInstance(semigroup.Example61Partial())
	ok := err == nil
	if ok {
		ok = chase.IsSolution(s, src, semigroup.ZkSolution(1))
	}
	var sizes []int
	for _, budget := range []int{100, 300, 900} {
		res, err := chase.Standard(s, src, chase.Options{MaxSteps: budget})
		if !errors.Is(err, chase.ErrBudgetExceeded) || res == nil {
			ok = false
			break
		}
		sizes = append(sizes, res.Target.Len())
	}
	for i := 0; i+1 < len(sizes); i++ {
		if sizes[i] >= sizes[i+1] {
			ok = false
		}
	}
	found, size := semigroup.EmbeddingBrute(semigroup.Example61Partial(), 3)
	return Result{
		ID:       "E8",
		Artifact: "Example 6.1 (D_emb)",
		Paper:    "solutions exist, no CWA-solution (chase diverges)",
		Measured: fmt.Sprintf("Z_2 solution ✓ (brute: size %d, found %v); chase sizes %v", size, found, sizes),
		OK:       ok && found,
	}
}

// E9CoreAblation — Theorem 5.1 / Proposition 6.6: the core is the minimal
// CWA-solution; the block-based core algorithm agrees with the naive one
// and is faster on chase outputs.
func E9CoreAblation() Result {
	s := genwl.Example21()
	ok := true
	var naive, blocks time.Duration
	for _, n := range []int{10, 20, 40} {
		src := instance.New()
		for i := 0; i < n; i++ {
			a := instance.Const(fmt.Sprintf("a%d", i))
			b := instance.Const(fmt.Sprintf("b%d", i))
			src.Add(instance.NewAtom("M", a, b))
			src.Add(instance.NewAtom("N", a, b))
		}
		u, err := chase.UniversalSolution(s, src, chase.Options{})
		if err != nil {
			ok = false
			break
		}
		var c1, c2 *instance.Instance
		blocks += Time(func() { c1 = score.Core(u) })
		naive += Time(func() { c2 = score.CoreNaive(u) })
		if !hom.Isomorphic(c1, c2) || !score.IsCore(c1) {
			ok = false
		}
	}
	return Result{
		ID:       "E9",
		Artifact: "Theorem 5.1 (core = minimal CWA-solution)",
		Paper:    "core computable in PTIME (blocks algorithm)",
		Measured: fmt.Sprintf("blocks %v vs naive %v, results isomorphic", blocks.Round(time.Millisecond), naive.Round(time.Millisecond)),
		OK:       ok,
	}
}

// E10Anomaly — Section 3: on the copying setting with two 9-cycles, the OWA
// certain answers lose the b-cycle, while all four CWA semantics return
// Q(S′) as they intuitively should.
func E10Anomaly() Result {
	s := genwl.Copying()
	src := genwl.TwoNineCycles()
	q, err := parser.ParseFOQuery(`(x) . Pp(x) | exists y,z (Pp(y) & Ep(y,z) & !(Pp(z)))`)
	if err != nil {
		panic(err)
	}
	// The copied instance S' and the spoiler S'' (all a-nodes labelled P).
	copied := instance.New()
	spoiler := instance.New()
	for _, a := range src.Atoms() {
		rel := map[string]string{"E": "Ep", "P": "Pp"}[a.Rel]
		copied.Add(instance.Atom{Rel: rel, Args: a.Args})
		spoiler.Add(instance.Atom{Rel: rel, Args: a.Args})
	}
	for i := 0; i < 9; i++ {
		spoiler.Add(instance.NewAtom("Pp", instance.Const(fmt.Sprintf("a%d", i))))
	}
	wantAll := query.NewTupleSet(q.Answers(copied)...)
	spoilerAns := query.NewTupleSet(q.Answers(spoiler)...)
	// CWA semantics: the only CWA-solution is the copy, null-free.
	cwaAns, err := certain.Answers(s, q, src, certain.CertainCap, certain.Options{})
	ok := err == nil && cwaAns.Equal(wantAll) && wantAll.Len() == 18 && spoilerAns.Len() == 9
	return Result{
		ID:       "E10",
		Artifact: "Section 3 anomaly (copying setting)",
		Paper:    "OWA certain loses the b-cycle; CWA semantics return Q(S′)",
		Measured: fmt.Sprintf("|Q(S′)| = %d, |Q(spoiler)| = %d, |certain⊓_CWA| = %d", wantAll.Len(), spoilerAns.Len(), cwaAns.Len()),
		OK:       ok,
	}
}

// E11SemanticsCrossCheck — Theorem 7.1 / Corollary 7.2: the by-definition
// semantics match the Core/CanSol characterisations and form the chain
// certain⊓ ⊆ certain⊔ ⊆ maybe⊓ ⊆ maybe⊔.
func E11SemanticsCrossCheck() Result {
	ok := true
	// Example 2.1 with a small source: chain + Core characterisation.
	s := genwl.Example21()
	src, _ := parser.ParseInstance(`M(a,b). N(a,b).`)
	u := mustUCQ("q(x) :- E(x,y), F(x,z), y != z.")
	var sets []*query.TupleSet
	for _, sem := range []certain.Semantics{certain.CertainCap, certain.CertainCup, certain.MaybeCap, certain.MaybeCup} {
		got, err := certain.ByDefinition(s, u, src, sem, certain.Options{})
		if err != nil {
			ok = false
			break
		}
		sets = append(sets, got)
	}
	for i := 0; ok && i+1 < len(sets); i++ {
		if !sets[i].SubsetOf(sets[i+1]) {
			ok = false
		}
	}
	if ok {
		core, err := cwa.Minimal(s, src, chase.Options{})
		if err != nil {
			ok = false
		} else {
			boxCore, err1 := certain.Box(s, u, core, certain.Options{})
			diaCore, err2 := certain.Diamond(s, u, core, certain.Options{})
			if err1 != nil || err2 != nil || !boxCore.Equal(sets[1]) || !diaCore.Equal(sets[2]) {
				ok = false
			}
		}
	}
	return Result{
		ID:       "E11",
		Artifact: "Theorem 7.1 / Corollary 7.2",
		Paper:    "certain⊔=□Q(Core), maybe⊓=◇Q(Core), chain of the four semantics",
		Measured: fmt.Sprintf("verified on Example 2.1 (chain sizes %s)", sizesOf(sets)),
		OK:       ok,
	}
}

func sizesOf(sets []*query.TupleSet) string {
	out := ""
	for i, s := range sets {
		if i > 0 {
			out += "⊆"
		}
		out += fmt.Sprintf("%d", s.Len())
	}
	return out
}

// E12CanSolMaximality — Proposition 5.4: for egd-only (and full+egd)
// settings, every CWA-solution is a homomorphic image of CanSol.
func E12CanSolMaximality() Result {
	ok := true
	count := 0
	s := genwl.EgdOnly()
	src, _ := parser.ParseInstance(`N(a,b). N(c,d). W(a,e).`)
	can, err := cwa.CanSol(s, src, chase.Options{})
	if err != nil {
		ok = false
	} else {
		sols, err := cwa.Enumerate(s, src, cwa.EnumOptions{})
		if err != nil {
			ok = false
		}
		count = len(sols)
		for _, sol := range sols {
			if _, onto := hom.FindOnto(can, sol, 0); !onto {
				ok = false
			}
		}
	}
	return Result{
		ID:       "E12",
		Artifact: "Proposition 5.4 (CanSol)",
		Paper:    "CanSol is the maximal CWA-solution for egd-only settings",
		Measured: fmt.Sprintf("all %d enumerated CWA-solutions are homomorphic images of CanSol", count),
		OK:       ok,
	}
}
