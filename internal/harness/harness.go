// Package harness runs the experiment suite E1–E12 that reproduces the
// paper's Table 1 and worked examples, and formats paper-vs-measured
// reports. It is shared by cmd/experiments, cmd/table1 and the benchmarks.
package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
)

// Measurement is one (size, duration) point of a scaling series.
type Measurement struct {
	Size    int
	Elapsed time.Duration
}

// Series is a scaling curve with a label.
type Series struct {
	Name   string
	Points []Measurement
}

// GrowthExponent estimates the slope of the log-log regression of elapsed
// time against size — roughly the polynomial degree of the observed
// scaling. It needs at least two points with distinct sizes.
func GrowthExponent(points []Measurement) float64 {
	var xs, ys []float64
	for _, p := range points {
		if p.Size <= 0 || p.Elapsed <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(p.Size)))
		ys = append(ys, math.Log(float64(p.Elapsed)))
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	meanX, meanY := mean(xs), mean(ys)
	var num, den float64
	for i := range xs {
		num += (xs[i] - meanX) * (ys[i] - meanY)
		den += (xs[i] - meanX) * (xs[i] - meanX)
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// LooksPolynomial reports whether the series scales like a polynomial of
// degree at most maxDegree (with slack for noise).
func LooksPolynomial(points []Measurement, maxDegree float64) bool {
	g := GrowthExponent(points)
	return !math.IsNaN(g) && g <= maxDegree+0.75
}

// Time measures f once.
func Time(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// Result is one experiment's verdict for the paper-vs-measured report.
type Result struct {
	ID       string
	Artifact string // the paper claim being reproduced
	Paper    string // what the paper says
	Measured string // what we observed
	OK       bool
}

// Report formats results as an aligned text table.
func Report(results []Result) string {
	rows := [][]string{{"id", "artifact", "paper", "measured", "ok"}}
	for _, r := range results {
		ok := "✓"
		if !r.OK {
			ok = "✗"
		}
		rows = append(rows, []string{r.ID, r.Artifact, r.Paper, r.Measured, ok})
	}
	return Table(rows)
}

// MetricsReport formats the process-global evaluation counters (chase
// steps, homomorphism backtracks, representatives visited, goroutines
// spawned, …) as an aligned table, for appending to an experiment report.
func MetricsReport() string {
	snap := metrics.Read()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	rows := [][]string{{"counter", "value"}}
	for _, k := range names {
		rows = append(rows, []string{k, fmt.Sprintf("%d", snap[k])})
	}
	return Table(rows)
}

// MarkdownReport formats results as a markdown table.
func MarkdownReport(results []Result) string {
	var b strings.Builder
	b.WriteString("| id | artifact | paper | measured | ok |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, r := range results {
		ok := "✓"
		if !r.OK {
			ok = "✗"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
			mdEscape(r.ID), mdEscape(r.Artifact), mdEscape(r.Paper), mdEscape(r.Measured), ok)
	}
	return b.String()
}

func mdEscape(s string) string { return strings.ReplaceAll(s, "|", "\\|") }

// Table renders rows with aligned columns.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if w := displayWidth(cell); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	for ri, row := range rows {
		for i, cell := range row {
			b.WriteString(cell)
			if i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-displayWidth(cell)+2))
			}
		}
		b.WriteByte('\n')
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			b.WriteString(strings.Repeat("-", total))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func displayWidth(s string) int {
	// Count runes; good enough for our mostly-ASCII tables.
	n := 0
	for range s {
		n++
	}
	return n
}

// FormatSeries renders a series as "name: n=8 1.2ms | n=16 3.4ms | …".
func FormatSeries(s Series) string {
	parts := make([]string, len(s.Points))
	for i, p := range s.Points {
		parts[i] = fmt.Sprintf("n=%d %v", p.Size, p.Elapsed.Round(time.Microsecond))
	}
	g := GrowthExponent(s.Points)
	return fmt.Sprintf("%s: %s  (growth ≈ n^%.1f)", s.Name, strings.Join(parts, " | "), g)
}

// SortResults orders results by experiment id.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].ID < rs[j].ID })
}
