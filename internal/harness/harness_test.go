package harness

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestGrowthExponent(t *testing.T) {
	// Quadratic data: t = n².
	var pts []Measurement
	for _, n := range []int{10, 20, 40, 80} {
		pts = append(pts, Measurement{Size: n, Elapsed: time.Duration(n * n)})
	}
	g := GrowthExponent(pts)
	if math.Abs(g-2) > 0.01 {
		t.Fatalf("growth = %f, want 2", g)
	}
	if !LooksPolynomial(pts, 2) {
		t.Fatal("quadratic data must look polynomial of degree 2")
	}
	// Exponential data: t = 2^n must not look like a low-degree polynomial.
	var exp []Measurement
	for _, n := range []int{10, 20, 40, 80} {
		exp = append(exp, Measurement{Size: n, Elapsed: time.Duration(1) << uint(n/2)})
	}
	if LooksPolynomial(exp, 3) {
		t.Fatal("exponential data must not look polynomial")
	}
}

func TestGrowthExponentDegenerate(t *testing.T) {
	if !math.IsNaN(GrowthExponent(nil)) {
		t.Fatal("no data: NaN")
	}
	same := []Measurement{{Size: 4, Elapsed: 10}, {Size: 4, Elapsed: 20}}
	if !math.IsNaN(GrowthExponent(same)) {
		t.Fatal("same sizes: NaN")
	}
}

func TestTableAndReport(t *testing.T) {
	out := Table([][]string{{"a", "bb"}, {"ccc", "d"}})
	if !strings.Contains(out, "a") || !strings.Contains(out, "ccc") {
		t.Fatalf("table output: %q", out)
	}
	rep := Report([]Result{{ID: "E1", Artifact: "x", Paper: "p", Measured: "m", OK: true}})
	if !strings.Contains(rep, "E1") || !strings.Contains(rep, "✓") {
		t.Fatalf("report output: %q", rep)
	}
}

func TestFormatSeries(t *testing.T) {
	s := Series{Name: "chase", Points: []Measurement{{Size: 8, Elapsed: time.Millisecond}}}
	if !strings.Contains(FormatSeries(s), "chase") {
		t.Fatal("series label missing")
	}
}

// The experiment suite itself: every experiment must pass. This is the
// paper-vs-measured regression test.
func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	for _, r := range RunAll() {
		if !r.OK {
			t.Errorf("%s (%s): %s — measured %q", r.ID, r.Artifact, r.Paper, r.Measured)
		}
	}
}

func TestMarkdownReport(t *testing.T) {
	md := MarkdownReport([]Result{{ID: "E1", Artifact: "a|b", Paper: "p", Measured: "m", OK: false}})
	if !strings.Contains(md, "| E1 |") || !strings.Contains(md, "a\\|b") || !strings.Contains(md, "✗") {
		t.Fatalf("markdown: %q", md)
	}
}
