package harness

import (
	"strings"
	"testing"
)

// Table 1 regeneration: every cell must reproduce the paper's entry.
func TestTable1AllCellsOK(t *testing.T) {
	if testing.Short() {
		t.Skip("Table 1 regeneration skipped in -short mode")
	}
	cells := Table1()
	if len(cells) != 12 {
		t.Fatalf("Table 1 has 12 cells, got %d", len(cells))
	}
	for _, c := range cells {
		if !c.OK {
			t.Errorf("cell (%s, %s): paper %q, measured %q", c.Row, c.Col, c.Paper, c.Measured)
		}
	}
	rep := Table1Report(cells)
	for _, want := range []string{"weakly acyclic", "co-NP", "PTIME", "union of CQ"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
