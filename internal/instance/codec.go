package instance

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Binary codec for instances and mutation lists — the value layer of the
// durable scenario store (internal/store).
//
// Values are interned process-wide (the constant table in value.go), so a
// raw Value is meaningless outside the process that produced it. The
// encoding therefore carries a per-instance dictionary: every distinct
// constant occurring in the instance is written once by name, and column
// cells refer to it by its dictionary index. Nulls need no dictionary —
// their identity is the label, which is process-independent.
//
// The instance layout is written as-is: per relation (sorted name order,
// empty relations dropped — exactly the Clone contract), the column arrays
// over all row slots, dead ones included, plus the row-presence bitmap.
// Decoding reconstructs the identical columnar image — same row ids, same
// iteration order — and rebuilds the derived structures (byKey, posting
// lists) that are cheaper to recompute than to serialize. The version
// counter round-trips; the insertion log and journal do not (the decoded
// instance starts a fresh epoch, like Clone).
//
// The format is versioned by its magic; integrity framing (lengths, CRCs)
// is the caller's concern — internal/store frames every record it writes.

// codecMagic identifies format version 1 of the instance encoding.
const codecMagic = "DXI1"

// appendUvarint appends v in unsigned varint encoding.
func appendUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

// appendString appends a length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// encodeState carries the dictionary being built during an encode.
type encodeState struct {
	dict  map[Value]uint64 // constant -> dictionary index
	names []string         // dictionary index -> constant name
}

// ref maps a value to its wire form: constants become their dictionary
// index (assigned on first sight), the null with label l becomes -(l+1).
func (st *encodeState) ref(v Value) int64 {
	if v.IsNull() {
		return -(v.NullLabel() + 1)
	}
	if i, ok := st.dict[v]; ok {
		return int64(i)
	}
	i := uint64(len(st.names))
	st.dict[v] = i
	st.names = append(st.names, ConstName(v))
	return int64(i)
}

// AppendBinary appends the binary encoding of the instance to buf and
// returns the extended slice. The encoding is self-contained and
// process-independent: DecodeBinary reconstructs an equal instance (same
// atoms, same iteration order, same version counter) in any process.
func (ins *Instance) AppendBinary(buf []byte) []byte {
	st := &encodeState{dict: make(map[Value]uint64)}

	// The dictionary must precede the columns in the output, but it is only
	// known after walking them — encode the body into a scratch buffer first.
	body := make([]byte, 0, 64)
	nRels := 0
	ins.eachRel(func(r *relation) {
		if r.nLive > 0 {
			nRels++
		}
	})
	body = appendUvarint(body, uint64(nRels))
	ins.eachRel(func(r *relation) {
		if r.nLive == 0 {
			return
		}
		body = appendString(body, r.name)
		body = appendUvarint(body, uint64(r.arity))
		body = appendUvarint(body, uint64(r.nRows))
		words := (r.nRows + 63) / 64
		for w := 0; w < words; w++ {
			var word uint64
			if w < len(r.live) {
				word = r.live[w]
			}
			body = binary.LittleEndian.AppendUint64(body, word)
		}
		for _, col := range r.cols {
			for _, v := range col[:r.nRows] {
				body = appendVarint(body, st.ref(v))
			}
		}
	})

	buf = append(buf, codecMagic...)
	buf = appendUvarint(buf, ins.version)
	buf = appendUvarint(buf, uint64(len(st.names)))
	for _, n := range st.names {
		buf = appendString(buf, n)
	}
	return append(buf, body...)
}

// appendVarint appends v in zigzag varint encoding.
func appendVarint(buf []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

// decoder is a cursor over an encoded buffer.
type decoder struct {
	data []byte
	off  int
}

func (d *decoder) fail(what string) error {
	return fmt.Errorf("instance: decoding %s at offset %d: truncated or corrupt", what, d.off)
}

func (d *decoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, d.fail(what)
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint(what string) (int64, error) {
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		return 0, d.fail(what)
	}
	d.off += n
	return v, nil
}

func (d *decoder) bytes(n int, what string) ([]byte, error) {
	if n < 0 || d.off+n > len(d.data) {
		return nil, d.fail(what)
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) str(what string) (string, error) {
	n, err := d.uvarint(what)
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.data)-d.off) {
		return "", d.fail(what)
	}
	b, err := d.bytes(int(n), what)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// DecodeBinary decodes an instance produced by AppendBinary from the start
// of data, returning the instance and the number of bytes consumed.
// Constants are re-interned by name, so the decoded instance is valid in
// the current process regardless of where the encoding was produced.
func DecodeBinary(data []byte) (*Instance, int, error) {
	d := &decoder{data: data}
	magic, err := d.bytes(len(codecMagic), "magic")
	if err != nil {
		return nil, 0, err
	}
	if string(magic) != codecMagic {
		return nil, 0, fmt.Errorf("instance: bad codec magic %q (want %q)", magic, codecMagic)
	}
	version, err := d.uvarint("version")
	if err != nil {
		return nil, 0, err
	}
	nDict, err := d.uvarint("dictionary size")
	if err != nil {
		return nil, 0, err
	}
	if nDict > uint64(len(data)) { // each entry costs ≥1 byte
		return nil, 0, d.fail("dictionary size")
	}
	dict := make([]Value, nDict)
	for i := range dict {
		name, err := d.str("dictionary entry")
		if err != nil {
			return nil, 0, err
		}
		dict[i] = Const(name)
	}
	resolve := func(ref int64) (Value, error) {
		if ref < 0 {
			return Null(-ref - 1), nil
		}
		if uint64(ref) >= nDict {
			return 0, fmt.Errorf("instance: dictionary reference %d out of range (size %d)", ref, nDict)
		}
		return dict[ref], nil
	}

	ins := New()
	ins.version = version
	nRels, err := d.uvarint("relation count")
	if err != nil {
		return nil, 0, err
	}
	if nRels > uint64(len(data)) {
		return nil, 0, d.fail("relation count")
	}
	prevName := ""
	for ri := uint64(0); ri < nRels; ri++ {
		name, err := d.str("relation name")
		if err != nil {
			return nil, 0, err
		}
		if ri > 0 && name <= prevName {
			return nil, 0, fmt.Errorf("instance: relation %q out of sorted order after %q", name, prevName)
		}
		prevName = name
		arity64, err := d.uvarint("arity")
		if err != nil {
			return nil, 0, err
		}
		nRows64, err := d.uvarint("row count")
		if err != nil {
			return nil, 0, err
		}
		if arity64 > 255 || nRows64 > uint64(len(data)) {
			return nil, 0, d.fail("relation header")
		}
		arity, nRows := int(arity64), int(nRows64)

		words := (nRows + 63) / 64
		live := make([]uint64, words)
		for w := range live {
			b, err := d.bytes(8, "presence bitmap")
			if err != nil {
				return nil, 0, err
			}
			live[w] = binary.LittleEndian.Uint64(b)
		}
		nLive := 0
		for w, word := range live {
			// Bits beyond nRows must be clear; count defensively anyway.
			if w == words-1 && nRows%64 != 0 {
				word &= (1 << (uint(nRows) % 64)) - 1
				live[w] = word
			}
			nLive += bits.OnesCount64(word)
		}

		cols := make([][]Value, arity)
		for p := range cols {
			col := make([]Value, nRows)
			for row := range col {
				ref, err := d.varint("column cell")
				if err != nil {
					return nil, 0, err
				}
				v, err := resolve(ref)
				if err != nil {
					return nil, 0, err
				}
				col[row] = v
			}
			cols[p] = col
		}

		r := &relation{
			name:  name,
			arity: arity,
			id:    int32(len(ins.byID)),
			nRows: nRows,
			nLive: nLive,
			cols:  cols,
			live:  live,
			byKey: make(map[string]int32, nLive),
			byPos: make([]map[Value][]int32, arity),
		}
		for p := range r.byPos {
			r.byPos[p] = make(map[Value][]int32)
		}
		var kb [8 * 8]byte
		for row := int32(0); row < int32(nRows); row++ {
			if !r.alive(row) {
				continue
			}
			key := string(r.appendRow(kb[:0], row))
			if _, dup := r.byKey[key]; dup {
				return nil, 0, fmt.Errorf("instance: duplicate tuple in relation %q", name)
			}
			r.byKey[key] = row
			for p, col := range r.cols {
				v := col[row]
				r.byPos[p][v] = append(r.byPos[p][v], row)
			}
		}
		if _, exists := ins.rels[name]; exists {
			return nil, 0, fmt.Errorf("instance: duplicate relation %q", name)
		}
		ins.rels[name] = r
		ins.byID = append(ins.byID, r)
		ins.names = append(ins.names, name)
	}
	return ins, d.off, nil
}

// AppendMutations appends the binary encoding of a mutation list to buf.
// Unlike the instance codec there is no dictionary: mutation batches are
// short, so constants are written inline by name.
func AppendMutations(buf []byte, muts []Mutation) []byte {
	buf = appendUvarint(buf, uint64(len(muts)))
	for _, m := range muts {
		flag := byte(0)
		if m.Insert {
			flag = 1
		}
		buf = append(buf, flag)
		buf = appendString(buf, m.Atom.Rel)
		buf = appendUvarint(buf, uint64(len(m.Atom.Args)))
		for _, v := range m.Atom.Args {
			if v.IsNull() {
				buf = append(buf, 1)
				buf = appendUvarint(buf, uint64(v.NullLabel()))
			} else {
				buf = append(buf, 0)
				buf = appendString(buf, ConstName(v))
			}
		}
	}
	return buf
}

// DecodeMutations decodes a mutation list produced by AppendMutations from
// the start of data, returning the list and the number of bytes consumed.
func DecodeMutations(data []byte) ([]Mutation, int, error) {
	d := &decoder{data: data}
	n, err := d.uvarint("mutation count")
	if err != nil {
		return nil, 0, err
	}
	if n > uint64(len(data)) {
		return nil, 0, d.fail("mutation count")
	}
	muts := make([]Mutation, 0, n)
	for i := uint64(0); i < n; i++ {
		flag, err := d.bytes(1, "mutation flag")
		if err != nil {
			return nil, 0, err
		}
		rel, err := d.str("mutation relation")
		if err != nil {
			return nil, 0, err
		}
		arity, err := d.uvarint("mutation arity")
		if err != nil {
			return nil, 0, err
		}
		if arity > 255 {
			return nil, 0, d.fail("mutation arity")
		}
		args := make([]Value, arity)
		for p := range args {
			kind, err := d.bytes(1, "argument kind")
			if err != nil {
				return nil, 0, err
			}
			switch kind[0] {
			case 0:
				name, err := d.str("argument constant")
				if err != nil {
					return nil, 0, err
				}
				args[p] = Const(name)
			case 1:
				label, err := d.uvarint("argument null label")
				if err != nil {
					return nil, 0, err
				}
				args[p] = Null(int64(label))
			default:
				return nil, 0, d.fail("argument kind")
			}
		}
		muts = append(muts, Mutation{Insert: flag[0] == 1, Atom: Atom{Rel: rel, Args: args}})
	}
	return muts, d.off, nil
}
