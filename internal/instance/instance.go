package instance

import (
	"encoding/binary"
	"sort"
	"strings"
)

// Instance is a finite set of atoms over a fixed domain of constants and
// labeled nulls. Tuples are stored column-major: each relation keeps one
// flat []Value per position, a presence bitmap over row slots (removal
// clears a bit instead of reindexing), a hash index for O(1) membership and
// per-position posting lists of row ids to support joins and homomorphism
// search. Posting lists hold live rows only, in ascending row order, so
// index-backed scans enumerate candidates in insertion order.
//
// All iteration over relations is in sorted relation-name order (via a
// name slice maintained on insertion), never over the rels map directly:
// atom enumeration, cloning, mapping and value replacement are therefore
// deterministic run to run, which downstream canonical forms
// (hom.CanonicalNullForm), golden outputs and benchmarks rely on.
//
// An Instance is safe for concurrent readers as long as no goroutine
// mutates it; the parallel evaluation paths share read-only instances
// across workers under exactly this contract.
type Instance struct {
	rels map[string]*relation
	// names holds the keys of rels in sorted order; maintained eagerly by
	// rel() (rather than lazily on read) so that read-only methods stay
	// side-effect-free and safe for concurrent readers.
	names []string
	// byID holds the relations in creation order; seq entries refer to
	// relations by this index so the insertion log stays name-free.
	byID []*relation
	// seq is the global insertion log: one entry per successful Add, in
	// order. Watermark deltas (Mark/EachAddedBetween) are views over it.
	seq []rowRef
	// epoch invalidates watermarks: any removal or value rewrite bumps it,
	// since row ids referenced by older marks may no longer identify the
	// same (or any) atom.
	epoch uint64

	// version counts content changes (see Version); journal optionally
	// records them (see EnableJournal). Both live in mutation.go.
	version   uint64
	journalOn bool
	journal   []Mutation
}

// rowRef locates one inserted row: the relation (by creation index) and its
// row slot.
type rowRef struct{ rel, row int32 }

type relation struct {
	name  string
	arity int
	id    int32 // index into Instance.byID
	nRows int   // row slots in use, including dead ones
	nLive int   // live rows
	cols  [][]Value           // column-major storage: cols[pos][row]
	live  []uint64            // presence bitmap over row slots
	byKey map[string]int32    // encoded live tuple -> row
	byPos []map[Value][]int32 // position -> value -> ascending live row ids
}

func (r *relation) alive(row int32) bool {
	return r.live[row>>6]&(1<<(uint(row)&63)) != 0
}

func (r *relation) hasDead() bool { return r.nLive != r.nRows }

// gather fills buf with the values of the given row. buf must have length
// arity.
func (r *relation) gather(row int32, buf []Value) {
	for p, col := range r.cols {
		buf[p] = col[row]
	}
}

// appendTuple appends the fixed-width encoding of args to buf. Callers on
// hot paths pass a stack buffer and rely on the compiler's alloc-free
// map[string(buf)] lookup optimization for the duplicate check.
func appendTuple(buf []byte, args []Value) []byte {
	var tmp [8]byte
	for _, v := range args {
		binary.LittleEndian.PutUint64(tmp[:], uint64(v))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

func encodeTuple(args []Value) string {
	return string(appendTuple(make([]byte, 0, len(args)*8), args))
}

// appendRow appends the fixed-width encoding of the row's values.
func (r *relation) appendRow(buf []byte, row int32) []byte {
	var tmp [8]byte
	for _, col := range r.cols {
		binary.LittleEndian.PutUint64(tmp[:], uint64(col[row]))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// New returns an empty instance.
func New() *Instance { return &Instance{rels: make(map[string]*relation)} }

// FromAtoms returns an instance containing exactly the given atoms.
func FromAtoms(atoms ...Atom) *Instance {
	ins := New()
	for _, a := range atoms {
		ins.Add(a)
	}
	return ins
}

func (ins *Instance) rel(name string, arity int) *relation {
	r, ok := ins.rels[name]
	if !ok {
		r = &relation{
			name:  name,
			arity: arity,
			id:    int32(len(ins.byID)),
			cols:  make([][]Value, arity),
			byKey: make(map[string]int32),
			byPos: make([]map[Value][]int32, arity),
		}
		for i := range r.byPos {
			r.byPos[i] = make(map[Value][]int32)
		}
		ins.rels[name] = r
		ins.byID = append(ins.byID, r)
		i := sort.SearchStrings(ins.names, name)
		ins.names = append(ins.names, "")
		copy(ins.names[i+1:], ins.names[i:])
		ins.names[i] = name
	}
	if r.arity != arity {
		panic("instance: arity clash for relation " + name)
	}
	return r
}

// eachRel visits every relation in sorted name order.
func (ins *Instance) eachRel(f func(r *relation)) {
	for _, n := range ins.names {
		f(ins.rels[n])
	}
}

// Add inserts the atom and reports whether it was new. The duplicate path
// is allocation-free: the tuple encoding is built in a stack buffer and the
// key string is only materialized when the atom is actually inserted.
func (ins *Instance) Add(a Atom) bool {
	r := ins.rel(a.Rel, len(a.Args))
	var kb [8 * 8]byte
	buf := appendTuple(kb[:0], a.Args)
	if _, ok := r.byKey[string(buf)]; ok {
		return false
	}
	row := int32(r.nRows)
	r.nRows++
	r.nLive++
	for i, v := range a.Args {
		r.cols[i] = append(r.cols[i], v)
		r.byPos[i][v] = append(r.byPos[i][v], row)
	}
	if w := int(row >> 6); w >= len(r.live) {
		r.live = append(r.live, 0)
	}
	r.live[row>>6] |= 1 << (uint(row) & 63)
	r.byKey[string(buf)] = row
	ins.seq = append(ins.seq, rowRef{rel: r.id, row: row})
	ins.noteInsert(a.Rel, a.Args)
	return true
}

// AddAll inserts every atom of other and reports how many were new.
func (ins *Instance) AddAll(other *Instance) int {
	added := 0
	buf := make([]Value, 0, 8)
	other.eachRel(func(r *relation) {
		args := append(buf, make([]Value, r.arity)...)
		for row := int32(0); row < int32(r.nRows); row++ {
			if !r.alive(row) {
				continue
			}
			r.gather(row, args)
			if ins.Add(Atom{Rel: r.name, Args: args}) {
				added++
			}
		}
	})
	return added
}

// Has reports whether the atom is present.
func (ins *Instance) Has(a Atom) bool {
	r, ok := ins.rels[a.Rel]
	if !ok || r.arity != len(a.Args) {
		return false
	}
	var kb [8 * 8]byte
	_, ok = r.byKey[string(appendTuple(kb[:0], a.Args))]
	return ok
}

// Len returns the number of atoms.
func (ins *Instance) Len() int {
	n := 0
	for _, r := range ins.rels {
		n += r.nLive
	}
	return n
}

// Note for the iteration-order-sensitive methods below: every method that
// produces atoms, instances or strings iterates relations via eachRel
// (sorted name order). Order-insensitive aggregates (Len, sorted Dom) may
// still range over the map.

// RelLen returns the number of tuples in the named relation.
func (ins *Instance) RelLen(rel string) int {
	r, ok := ins.rels[rel]
	if !ok {
		return 0
	}
	return r.nLive
}

// Relations returns the names of all nonempty relations in sorted order.
func (ins *Instance) Relations() []string {
	names := make([]string, 0, len(ins.names))
	for _, n := range ins.names {
		if ins.rels[n].nLive > 0 {
			names = append(names, n)
		}
	}
	return names
}

// Arity returns the arity of the named relation, or -1 if absent.
func (ins *Instance) Arity(rel string) int {
	r, ok := ins.rels[rel]
	if !ok {
		return -1
	}
	return r.arity
}

// Atoms returns all atoms in a deterministic order (relation name, then
// insertion order). The returned atoms share no storage with the instance.
func (ins *Instance) Atoms() []Atom {
	return ins.atoms(false)
}

// AtomsShared is Atoms with all Args carved out of one flat backing array
// instead of one allocation per atom. The arguments are snapshots — they
// stay valid across later mutations — but the backing is shared between the
// returned atoms, so callers must treat them as read-only.
// Iteration order is identical to Atoms.
func (ins *Instance) AtomsShared() []Atom {
	return ins.atoms(true)
}

func (ins *Instance) atoms(shared bool) []Atom {
	out := make([]Atom, 0, ins.Len())
	var flat []Value
	if shared {
		total := 0
		for _, r := range ins.rels {
			total += r.nLive * r.arity
		}
		flat = make([]Value, 0, total)
	}
	ins.eachRel(func(r *relation) {
		for row := int32(0); row < int32(r.nRows); row++ {
			if !r.alive(row) {
				continue
			}
			var args []Value
			if shared {
				start := len(flat)
				for _, col := range r.cols {
					flat = append(flat, col[row])
				}
				args = flat[start:len(flat):len(flat)]
			} else {
				args = make([]Value, r.arity)
				r.gather(row, args)
			}
			out = append(out, Atom{Rel: r.name, Args: args})
		}
	})
	return out
}

// Tuples calls f for each tuple of the named relation. The slice passed to f
// is a shared scratch buffer: it must not be modified or retained. Iteration
// stops early if f returns false.
func (ins *Instance) Tuples(rel string, f func(args []Value) bool) {
	r, ok := ins.rels[rel]
	if !ok {
		return
	}
	args := make([]Value, r.arity)
	for row := int32(0); row < int32(r.nRows); row++ {
		if !r.alive(row) {
			continue
		}
		r.gather(row, args)
		if !f(args) {
			return
		}
	}
}

// MatchTuples calls f for every tuple of rel that agrees with pattern at
// every position where bound is true. It uses the posting list on the most
// selective bound position. The slice passed to f is a shared scratch buffer
// and must not be retained.
func (ins *Instance) MatchTuples(rel string, pattern []Value, bound []bool, f func(args []Value) bool) {
	r, ok := ins.rels[rel]
	if !ok || r.arity != len(pattern) {
		return
	}
	args := make([]Value, r.arity)
	try := func(row int32) bool {
		for i, b := range bound {
			if b && r.cols[i][row] != pattern[i] {
				return true
			}
		}
		r.gather(row, args)
		return f(args)
	}
	best, bestList := -1, []int32(nil)
	for i, b := range bound {
		if !b {
			continue
		}
		l := r.byPos[i][pattern[i]]
		if best == -1 || len(l) < len(bestList) {
			best, bestList = i, l
		}
	}
	if best == -1 {
		for row := int32(0); row < int32(r.nRows); row++ {
			if !r.alive(row) {
				continue
			}
			if !try(row) {
				return
			}
		}
		return
	}
	for _, row := range bestList {
		if !try(row) {
			return
		}
	}
}

// Rel is a read-only handle on one relation's columnar storage, the
// allocation-free access path used by compiled query plans (query.Plan) and
// homomorphism search. All accessors are O(1); the returned slices are the
// instance's own storage and must not be modified or retained past the next
// mutation.
type Rel struct{ r *relation }

// Relation returns a handle on the named relation, or ok=false when it is
// absent or its arity differs.
func (ins *Instance) Relation(name string, arity int) (Rel, bool) {
	r, ok := ins.rels[name]
	if !ok || r.arity != arity {
		return Rel{}, false
	}
	return Rel{r: r}, true
}

// Rows returns the number of row slots, including dead ones: the iteration
// bound for full scans. Callers must skip rows for which Alive is false
// (cheap to elide when HasDead reports false).
func (h Rel) Rows() int32 { return int32(h.r.nRows) }

// Cols returns the column slices (cols[pos][row]).
func (h Rel) Cols() [][]Value { return h.r.cols }

// Postings returns the ascending row ids carrying v at the given position.
// The list contains live rows only.
func (h Rel) Postings(pos int, v Value) []int32 { return h.r.byPos[pos][v] }

// HasDead reports whether any row slot is dead, i.e. whether full scans
// need the Alive filter.
func (h Rel) HasDead() bool { return h.r.hasDead() }

// Alive reports whether the row slot holds a live tuple.
func (h Rel) Alive(row int32) bool { return h.r.alive(row) }

// PosDistinct returns the number of distinct values occurring at the given
// position of rel, or 0 if the relation is absent or the position is out of
// range. It sizes candidate domains for homomorphism-search pruning.
func (ins *Instance) PosDistinct(rel string, pos int) int {
	r, ok := ins.rels[rel]
	if !ok || pos < 0 || pos >= r.arity {
		return 0
	}
	return len(r.byPos[pos])
}

// PosHasValue reports whether some tuple of rel carries v at the given
// position — an O(1) membership probe into the position index.
func (ins *Instance) PosHasValue(rel string, pos int, v Value) bool {
	r, ok := ins.rels[rel]
	if !ok || pos < 0 || pos >= r.arity {
		return false
	}
	return len(r.byPos[pos][v]) > 0
}

// EachPosValue calls f for every distinct value occurring at the given
// position of rel, with the number of tuples carrying it. Iteration order is
// unspecified (it ranges over the index map); stop early by returning false.
func (ins *Instance) EachPosValue(rel string, pos int, f func(v Value, count int) bool) {
	r, ok := ins.rels[rel]
	if !ok || pos < 0 || pos >= r.arity {
		return
	}
	for v, idxs := range r.byPos[pos] {
		if !f(v, len(idxs)) {
			return
		}
	}
}

// Mark is a watermark into the instance's insertion log: the delta between
// two marks is the exact sequence of atoms added between them, in insertion
// order. Marks are only meaningful on the instance they were taken from and
// are invalidated by removals and value rewrites (check MarkValid); Clone
// and Reduct reset the log, so marks do not carry over to copies.
type Mark struct {
	epoch uint64
	seq   int
}

// Mark returns a watermark for the current state of the insertion log.
func (ins *Instance) Mark() Mark { return Mark{epoch: ins.epoch, seq: len(ins.seq)} }

// MarkValid reports whether the mark still identifies a valid log position:
// false after any removal or value rewrite since the mark was taken, in
// which case delta consumers must fall back to a full scan.
func (ins *Instance) MarkValid(m Mark) bool {
	return m.epoch == ins.epoch && m.seq <= len(ins.seq)
}

// EachAddedBetween calls f with every atom added between the two marks
// (from inclusive, to exclusive), in exact insertion order — the order
// matters downstream because chase firing order determines fresh-null
// labels. Both marks must be valid (MarkValid) and from must not be after
// to. The atom's Args slice is a shared scratch buffer: copy what you keep.
// Iteration stops early if f returns false; the return value reports
// whether the sweep ran to completion.
func (ins *Instance) EachAddedBetween(from, to Mark, f func(a Atom) bool) bool {
	if from.seq >= to.seq {
		return true
	}
	buf := make([]Value, 0, 8)
	for _, ref := range ins.seq[from.seq:to.seq] {
		r := ins.byID[ref.rel]
		if !r.alive(ref.row) {
			continue
		}
		args := buf
		if r.arity > cap(args) {
			args = make([]Value, r.arity)
		}
		args = args[:r.arity]
		r.gather(ref.row, args)
		if !f(Atom{Rel: r.name, Args: args}) {
			return false
		}
	}
	return true
}

// ContentKey returns a compact byte-string key with the property that two
// instances hold exactly the same atom set iff their keys are equal,
// regardless of insertion order. It is cheaper than String() (no name
// decoding) and is the memo key used by cwa.Enumerate's canonical-form
// cache. The key is only stable within a process (constants are interned
// process-wide).
func (ins *Instance) ContentKey() string {
	var b strings.Builder
	total := 0
	ins.eachRel(func(r *relation) {
		if r.nLive == 0 {
			return
		}
		total += len(r.name) + 2 + 8*r.arity*r.nLive
	})
	b.Grow(total)
	ins.eachRel(func(r *relation) {
		if r.nLive == 0 {
			return
		}
		b.WriteString(r.name)
		b.WriteByte(0)
		// Sort the fixed-width tuple encodings so the key is insertion-order
		// independent (equal atom sets always collide). byKey's keys are
		// exactly those encodings, already materialized — reuse them.
		keys := make([]string, 0, len(r.byKey))
		for k := range r.byKey {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b.WriteString(k)
		}
		b.WriteByte(0)
	})
	return b.String()
}

// eachValue calls f with every value of every live tuple (with multiplicity).
// Stops early when f returns false.
func (ins *Instance) eachValue(f func(v Value) bool) {
	for _, r := range ins.rels {
		if r.nLive == 0 {
			continue
		}
		for _, col := range r.cols {
			if !r.hasDead() {
				for _, v := range col {
					if !f(v) {
						return
					}
				}
				continue
			}
			for row := int32(0); row < int32(r.nRows); row++ {
				if !r.alive(row) {
					continue
				}
				if !f(col[row]) {
					return
				}
			}
		}
	}
}

// Dom returns the active domain of the instance in sorted order.
func (ins *Instance) Dom() []Value {
	seen := make(map[Value]struct{})
	ins.eachValue(func(v Value) bool {
		seen[v] = struct{}{}
		return true
	})
	out := make([]Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return Less(out[i], out[j]) })
	return out
}

// NullCount returns the number of distinct nulls in the active domain,
// without the sort of Nulls (bound checks on hot paths only need the count).
func (ins *Instance) NullCount() int {
	seen := make(map[Value]struct{})
	ins.eachValue(func(v Value) bool {
		if v.IsNull() {
			seen[v] = struct{}{}
		}
		return true
	})
	return len(seen)
}

// Nulls returns the nulls of the active domain in increasing label order.
func (ins *Instance) Nulls() []Value {
	var out []Value
	for _, v := range ins.Dom() {
		if v.IsNull() {
			out = append(out, v)
		}
	}
	return out
}

// Consts returns the constants of the active domain in name order.
func (ins *Instance) Consts() []Value {
	var out []Value
	for _, v := range ins.Dom() {
		if v.IsConst() {
			out = append(out, v)
		}
	}
	return out
}

// HasNulls reports whether any atom mentions a null.
func (ins *Instance) HasNulls() bool {
	has := false
	ins.eachValue(func(v Value) bool {
		if v.IsNull() {
			has = true
			return false
		}
		return true
	})
	return has
}

// MaxNullLabel returns the largest null label occurring in the instance,
// or -1 if the instance is null-free. Use it to seed a NullSource.
func (ins *Instance) MaxNullLabel() int64 {
	max := int64(-1)
	ins.eachValue(func(v Value) bool {
		if v.IsNull() && v.NullLabel() > max {
			max = v.NullLabel()
		}
		return true
	})
	return max
}

// clone copies a relation without re-encoding keys, rehashing values or
// copying any tuple data: the column slices and posting lists are shared
// with their capacities trimmed to their lengths, so an append on either
// copy reallocates instead of clobbering the other (in-place writes never
// happen — removal replaces posting lists wholesale and clears bits in the
// bitmap, which is copied). Only byKey, byPos (the maps themselves) and the
// bitmap are materialized fresh.
func (r *relation) clone(id int32) *relation {
	cp := &relation{
		name:  r.name,
		arity: r.arity,
		id:    id,
		nRows: r.nRows,
		nLive: r.nLive,
		cols:  make([][]Value, r.arity),
		live:  make([]uint64, len(r.live)),
		byKey: make(map[string]int32, len(r.byKey)),
		byPos: make([]map[Value][]int32, r.arity),
	}
	for p, col := range r.cols {
		cp.cols[p] = col[:len(col):len(col)]
	}
	copy(cp.live, r.live)
	for k, v := range r.byKey {
		cp.byKey[k] = v
	}
	for p, m := range r.byPos {
		nm := make(map[Value][]int32, len(m))
		for v, idxs := range m {
			nm[v] = idxs[:len(idxs):len(idxs)]
		}
		cp.byPos[p] = nm
	}
	return cp
}

// Clone returns a deep copy with identical iteration order. The version
// counter carries over (the copy identifies the same content state); the
// journal and the insertion log do not (marks never survive a Clone).
func (ins *Instance) Clone() *Instance {
	cp := New()
	cp.version = ins.version
	ins.eachRel(func(r *relation) {
		if r.nLive == 0 {
			return
		}
		nr := r.clone(int32(len(cp.byID)))
		cp.rels[r.name] = nr
		cp.byID = append(cp.byID, nr)
		cp.names = append(cp.names, r.name)
	})
	return cp
}

// Reduct returns the sub-instance containing only atoms whose relation
// belongs to the schema (the σ-reduct I|σ of the paper).
func (ins *Instance) Reduct(s Schema) *Instance {
	out := New()
	out.version = ins.version
	ins.eachRel(func(r *relation) {
		if !s.Has(r.name) || r.nLive == 0 {
			return
		}
		nr := r.clone(int32(len(out.byID)))
		out.rels[r.name] = nr
		out.byID = append(out.byID, nr)
		out.names = append(out.names, r.name)
	})
	return out
}

// Union returns a new instance holding the atoms of both operands.
func Union(a, b *Instance) *Instance {
	u := a.Clone()
	u.AddAll(b)
	return u
}

// Equal reports whether the two instances hold exactly the same atom sets.
func (ins *Instance) Equal(other *Instance) bool {
	if ins.Len() != other.Len() {
		return false
	}
	for _, r := range ins.rels {
		if r.nLive == 0 {
			continue
		}
		o, ok := other.rels[r.name]
		if !ok || o.arity != r.arity || o.nLive != r.nLive {
			return false
		}
		var kb [8 * 8]byte
		for row := int32(0); row < int32(r.nRows); row++ {
			if !r.alive(row) {
				continue
			}
			if _, ok := o.byKey[string(r.appendRow(kb[:0], row))]; !ok {
				return false
			}
		}
	}
	return true
}

// Map returns the image of the instance under the value mapping h;
// values outside h are kept unchanged. The image may have fewer atoms
// than the original if h identifies tuples.
func (ins *Instance) Map(h map[Value]Value) *Instance {
	out := New()
	args := make([]Value, 0, 8)
	ins.eachRel(func(r *relation) {
		for row := int32(0); row < int32(r.nRows); row++ {
			if !r.alive(row) {
				continue
			}
			args = args[:0]
			for _, col := range r.cols {
				v := col[row]
				if w, ok := h[v]; ok {
					args = append(args, w)
				} else {
					args = append(args, v)
				}
			}
			out.Add(Atom{Rel: r.name, Args: args})
		}
	})
	return out
}

// ReplaceValue substitutes new for every occurrence of old, in place.
// It is the primitive used by egd application. Rewritten tuples are
// re-inserted after the untouched ones, preserving the established
// enumeration order contract.
func (ins *Instance) ReplaceValue(old, new Value) {
	if old == new {
		return
	}
	ins.eachRel(func(r *relation) {
		rows := rowsWith(r, old)
		if len(rows) == 0 {
			return
		}
		// Collect affected tuples, remove them, re-add rewritten.
		rewritten := make([][]Value, len(rows))
		for i, row := range rows {
			cp := make([]Value, r.arity)
			r.gather(row, cp)
			for j, v := range cp {
				if v == old {
					cp[j] = new
				}
			}
			rewritten[i] = cp
		}
		for _, row := range rows {
			ins.removeRow(r, row)
		}
		ins.maybeCompact(r)
		for _, t := range rewritten {
			ins.Add(Atom{Rel: r.name, Args: t})
		}
	})
}

// rowsWith returns the live rows mentioning v, ascending: the merged union
// of v's posting lists across all positions.
func rowsWith(r *relation, v Value) []int32 {
	var out []int32
	for pos := 0; pos < r.arity; pos++ {
		l := r.byPos[pos][v]
		if len(l) == 0 {
			continue
		}
		if out == nil {
			out = append(out, l...)
			continue
		}
		out = mergeRows(out, l)
	}
	return out
}

// mergeRows merges two ascending row lists, deduplicating.
func mergeRows(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// removePosting deletes row from the posting list of v at position pos.
// The replacement list is freshly allocated (never shifted in place)
// because clones share posting backings.
func removePosting(m map[Value][]int32, v Value, row int32) {
	idxs := m[v]
	n := len(idxs)
	if n == 1 {
		if idxs[0] == row {
			delete(m, v)
		}
		return
	}
	i := sort.Search(n, func(k int) bool { return idxs[k] >= row })
	if i >= n || idxs[i] != row {
		return
	}
	nw := make([]int32, n-1)
	copy(nw, idxs[:i])
	copy(nw[i:], idxs[i+1:])
	m[v] = nw
}

// removeRow deletes one live row: drops its key, removes it from every
// posting list, clears its presence bit, bumps the epoch (watermarks no
// longer identify a consistent log) and journals the removal.
func (ins *Instance) removeRow(r *relation, row int32) {
	var kb [8 * 8]byte
	key := r.appendRow(kb[:0], row)
	delete(r.byKey, string(key))
	var args []Value
	if ins.journalOn {
		args = make([]Value, r.arity)
	}
	for p, col := range r.cols {
		v := col[row]
		if args != nil {
			args[p] = v
		}
		removePosting(r.byPos[p], v, row)
	}
	r.live[row>>6] &^= 1 << (uint(row) & 63)
	r.nLive--
	// Any removal invalidates all outstanding watermarks; dropping the log
	// keeps stale marks from ever indexing rebuilt (compacted) storage and
	// bounds the log's memory between removals.
	ins.epoch++
	ins.seq = ins.seq[:0]
	ins.noteRemove(r.name, args)
}

// maybeCompact rebuilds the relation's storage when dead row slots dominate,
// reclaiming space and restoring dense scans. Row ids change, so it must
// only run at points where no caller holds row references; the epoch bumped
// by the removals that made compaction necessary already invalidated all
// watermarks.
func (ins *Instance) maybeCompact(r *relation) {
	dead := r.nRows - r.nLive
	if dead < 32 || dead <= r.nLive {
		return
	}
	cols := make([][]Value, r.arity)
	for p := range cols {
		cols[p] = make([]Value, 0, r.nLive)
	}
	live := make([]uint64, (r.nLive+63)/64)
	byKey := make(map[string]int32, r.nLive)
	byPos := make([]map[Value][]int32, r.arity)
	for p := range byPos {
		byPos[p] = make(map[Value][]int32, len(r.byPos[p]))
	}
	next := int32(0)
	var kb [8 * 8]byte
	for row := int32(0); row < int32(r.nRows); row++ {
		if !r.alive(row) {
			continue
		}
		for p, col := range r.cols {
			v := col[row]
			cols[p] = append(cols[p], v)
			byPos[p][v] = append(byPos[p][v], next)
		}
		byKey[string(r.appendRow(kb[:0], row))] = next
		live[next>>6] |= 1 << (uint(next) & 63)
		next++
	}
	r.cols, r.live, r.byKey, r.byPos = cols, live, byKey, byPos
	r.nRows = int(next)
	ins.epoch++
}

// Remove deletes the atom if present and reports whether it was present.
func (ins *Instance) Remove(a Atom) bool {
	r, ok := ins.rels[a.Rel]
	if !ok || r.arity != len(a.Args) {
		return false
	}
	var kb [8 * 8]byte
	row, ok := r.byKey[string(appendTuple(kb[:0], a.Args))]
	if !ok {
		return false
	}
	ins.removeRow(r, row)
	ins.maybeCompact(r)
	return true
}

// Diff returns the atoms present only in a and only in b, in deterministic
// order — a debugging aid for comparing chase results and solutions.
func Diff(a, b *Instance) (onlyA, onlyB []Atom) {
	for _, at := range a.Atoms() {
		if !b.Has(at) {
			onlyA = append(onlyA, at)
		}
	}
	for _, at := range b.Atoms() {
		if !a.Has(at) {
			onlyB = append(onlyB, at)
		}
	}
	return onlyA, onlyB
}

// String renders the instance as a sorted, comma-separated atom list in
// braces, e.g. {E(a,b), F(a,_0)}.
func (ins *Instance) String() string {
	atoms := ins.Atoms()
	strs := make([]string, len(atoms))
	for i, a := range atoms {
		strs[i] = a.String()
	}
	sort.Strings(strs)
	return "{" + strings.Join(strs, ", ") + "}"
}
