package instance

import (
	"encoding/binary"
	"sort"
	"strings"
)

// Instance is a finite set of atoms over a fixed domain of constants and
// labeled nulls. It maintains per-relation tuple stores with a hash index
// for O(1) membership and per-position value indexes to support joins and
// homomorphism search.
//
// All iteration over relations is in sorted relation-name order (via a
// name slice maintained on insertion), never over the rels map directly:
// atom enumeration, cloning, mapping and value replacement are therefore
// deterministic run to run, which downstream canonical forms
// (hom.CanonicalNullForm), golden outputs and benchmarks rely on.
//
// An Instance is safe for concurrent readers as long as no goroutine
// mutates it; the parallel evaluation paths share read-only instances
// across workers under exactly this contract.
type Instance struct {
	rels map[string]*relation
	// names holds the keys of rels in sorted order; maintained eagerly by
	// rel() (rather than lazily on read) so that read-only methods stay
	// side-effect-free and safe for concurrent readers.
	names []string

	// version counts content changes (see Version); journal optionally
	// records them (see EnableJournal). Both live in mutation.go.
	version   uint64
	journalOn bool
	journal   []Mutation
}

type relation struct {
	name   string
	arity  int
	tuples [][]Value
	byKey  map[string]int    // encoded tuple -> index into tuples
	byPos  []map[Value][]int // position -> value -> tuple indexes
}

// appendTuple appends the fixed-width encoding of args to buf. Callers on
// hot paths pass a stack buffer and rely on the compiler's alloc-free
// map[string(buf)] lookup optimization for the duplicate check.
func appendTuple(buf []byte, args []Value) []byte {
	var tmp [8]byte
	for _, v := range args {
		binary.LittleEndian.PutUint64(tmp[:], uint64(v))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

func encodeTuple(args []Value) string {
	return string(appendTuple(make([]byte, 0, len(args)*8), args))
}

// New returns an empty instance.
func New() *Instance { return &Instance{rels: make(map[string]*relation)} }

// FromAtoms returns an instance containing exactly the given atoms.
func FromAtoms(atoms ...Atom) *Instance {
	ins := New()
	for _, a := range atoms {
		ins.Add(a)
	}
	return ins
}

func (ins *Instance) rel(name string, arity int) *relation {
	r, ok := ins.rels[name]
	if !ok {
		r = &relation{
			name:  name,
			arity: arity,
			byKey: make(map[string]int),
			byPos: make([]map[Value][]int, arity),
		}
		for i := range r.byPos {
			r.byPos[i] = make(map[Value][]int)
		}
		ins.rels[name] = r
		i := sort.SearchStrings(ins.names, name)
		ins.names = append(ins.names, "")
		copy(ins.names[i+1:], ins.names[i:])
		ins.names[i] = name
	}
	if r.arity != arity {
		panic("instance: arity clash for relation " + name)
	}
	return r
}

// eachRel visits every relation in sorted name order.
func (ins *Instance) eachRel(f func(r *relation)) {
	for _, n := range ins.names {
		f(ins.rels[n])
	}
}

// Add inserts the atom and reports whether it was new. The duplicate path
// is allocation-free: the tuple encoding is built in a stack buffer and the
// key string is only materialized when the atom is actually inserted.
func (ins *Instance) Add(a Atom) bool {
	r := ins.rel(a.Rel, len(a.Args))
	var kb [8 * 8]byte
	buf := appendTuple(kb[:0], a.Args)
	if _, ok := r.byKey[string(buf)]; ok {
		return false
	}
	idx := len(r.tuples)
	cp := make([]Value, len(a.Args))
	copy(cp, a.Args)
	r.tuples = append(r.tuples, cp)
	r.byKey[string(buf)] = idx
	for i, v := range cp {
		r.byPos[i][v] = append(r.byPos[i][v], idx)
	}
	ins.noteInsert(a.Rel, cp)
	return true
}

// AddAll inserts every atom of other and reports how many were new.
func (ins *Instance) AddAll(other *Instance) int {
	added := 0
	for _, a := range other.Atoms() {
		if ins.Add(a) {
			added++
		}
	}
	return added
}

// Has reports whether the atom is present.
func (ins *Instance) Has(a Atom) bool {
	r, ok := ins.rels[a.Rel]
	if !ok || r.arity != len(a.Args) {
		return false
	}
	var kb [8 * 8]byte
	_, ok = r.byKey[string(appendTuple(kb[:0], a.Args))]
	return ok
}

// Len returns the number of atoms.
func (ins *Instance) Len() int {
	n := 0
	for _, r := range ins.rels {
		n += len(r.tuples)
	}
	return n
}

// Note for the iteration-order-sensitive methods below: every method that
// produces atoms, instances or strings iterates relations via eachRel
// (sorted name order). Order-insensitive aggregates (Len, sorted Dom) may
// still range over the map.

// RelLen returns the number of tuples in the named relation.
func (ins *Instance) RelLen(rel string) int {
	r, ok := ins.rels[rel]
	if !ok {
		return 0
	}
	return len(r.tuples)
}

// Relations returns the names of all nonempty relations in sorted order.
func (ins *Instance) Relations() []string {
	names := make([]string, 0, len(ins.names))
	for _, n := range ins.names {
		if len(ins.rels[n].tuples) > 0 {
			names = append(names, n)
		}
	}
	return names
}

// Arity returns the arity of the named relation, or -1 if absent.
func (ins *Instance) Arity(rel string) int {
	r, ok := ins.rels[rel]
	if !ok {
		return -1
	}
	return r.arity
}

// Atoms returns all atoms in a deterministic order (relation name, then
// insertion order). The returned atoms share no storage with the instance.
func (ins *Instance) Atoms() []Atom {
	out := make([]Atom, 0, ins.Len())
	ins.eachRel(func(r *relation) {
		for _, t := range r.tuples {
			out = append(out, NewAtom(r.name, t...))
		}
	})
	return out
}

// AtomsShared is Atoms without the defensive copies: the returned atoms'
// Args slices are the instance's own tuple storage. Callers must treat them
// as read-only and must not retain them across mutations of the instance.
// Iteration order is identical to Atoms.
func (ins *Instance) AtomsShared() []Atom {
	out := make([]Atom, 0, ins.Len())
	ins.eachRel(func(r *relation) {
		for _, t := range r.tuples {
			out = append(out, Atom{Rel: r.name, Args: t})
		}
	})
	return out
}

// Tuples calls f for each tuple of the named relation. The slice passed to f
// is owned by the instance and must not be modified or retained. Iteration
// stops early if f returns false.
func (ins *Instance) Tuples(rel string, f func(args []Value) bool) {
	r, ok := ins.rels[rel]
	if !ok {
		return
	}
	for _, t := range r.tuples {
		if !f(t) {
			return
		}
	}
}

// MatchTuples calls f for every tuple of rel that agrees with pattern at
// every position where bound is true. It uses the position index on the
// most selective bound position. The slice passed to f must not be retained.
func (ins *Instance) MatchTuples(rel string, pattern []Value, bound []bool, f func(args []Value) bool) {
	tuples, idxs, ok := ins.MatchCandidates(rel, pattern, bound)
	if !ok {
		return
	}
	try := func(t []Value) bool {
		for i, b := range bound {
			if b && t[i] != pattern[i] {
				return true
			}
		}
		return f(t)
	}
	if idxs == nil {
		for _, t := range tuples {
			if !try(t) {
				return
			}
		}
		return
	}
	for _, idx := range idxs {
		if !try(tuples[idx]) {
			return
		}
	}
}

// MatchCandidates returns the candidate tuples for a pattern match on rel:
// the relation's tuple store plus the posting list of the most selective
// bound position (idxs == nil means "scan all tuples"). Candidates are a
// superset of the matches — callers must still verify every bound position.
// ok is false when the relation is absent or the arity differs.
//
// The returned slices are the instance's own storage: they must not be
// modified or retained past the next mutation. This is the allocation-free
// access path used by compiled query plans (query.Plan) and homomorphism
// search, which loop over candidates without a callback closure.
func (ins *Instance) MatchCandidates(rel string, pattern []Value, bound []bool) (tuples [][]Value, idxs []int, ok bool) {
	r, present := ins.rels[rel]
	if !present || r.arity != len(pattern) {
		return nil, nil, false
	}
	best, bestSize := -1, 0
	for i, b := range bound {
		if !b {
			continue
		}
		size := len(r.byPos[i][pattern[i]])
		if best == -1 || size < bestSize {
			best, bestSize = i, size
		}
	}
	if best == -1 {
		return r.tuples, nil, true
	}
	return r.tuples, r.byPos[best][pattern[best]], true
}

// PosDistinct returns the number of distinct values occurring at the given
// position of rel, or 0 if the relation is absent or the position is out of
// range. It sizes candidate domains for homomorphism-search pruning.
func (ins *Instance) PosDistinct(rel string, pos int) int {
	r, ok := ins.rels[rel]
	if !ok || pos < 0 || pos >= r.arity {
		return 0
	}
	return len(r.byPos[pos])
}

// PosHasValue reports whether some tuple of rel carries v at the given
// position — an O(1) membership probe into the position index.
func (ins *Instance) PosHasValue(rel string, pos int, v Value) bool {
	r, ok := ins.rels[rel]
	if !ok || pos < 0 || pos >= r.arity {
		return false
	}
	return len(r.byPos[pos][v]) > 0
}

// EachPosValue calls f for every distinct value occurring at the given
// position of rel, with the number of tuples carrying it. Iteration order is
// unspecified (it ranges over the index map); stop early by returning false.
func (ins *Instance) EachPosValue(rel string, pos int, f func(v Value, count int) bool) {
	r, ok := ins.rels[rel]
	if !ok || pos < 0 || pos >= r.arity {
		return
	}
	for v, idxs := range r.byPos[pos] {
		if !f(v, len(idxs)) {
			return
		}
	}
}

// ContentKey returns a compact byte-string key with the property that two
// instances hold exactly the same atom set iff their keys are equal,
// regardless of insertion order. It is cheaper than String() (no name
// decoding) and is the memo key used by cwa.Enumerate's canonical-form
// cache. The key is only stable within a process (constants are interned
// process-wide).
func (ins *Instance) ContentKey() string {
	var b strings.Builder
	total := 0
	ins.eachRel(func(r *relation) {
		if len(r.tuples) == 0 {
			return
		}
		total += len(r.name) + 2 + 8*r.arity*len(r.tuples)
	})
	b.Grow(total)
	ins.eachRel(func(r *relation) {
		if len(r.tuples) == 0 {
			return
		}
		b.WriteString(r.name)
		b.WriteByte(0)
		// Sort the fixed-width tuple encodings so the key is insertion-order
		// independent (equal atom sets always collide). byKey's keys are
		// exactly those encodings, already materialized — reuse them.
		keys := make([]string, 0, len(r.byKey))
		for k := range r.byKey {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b.WriteString(k)
		}
		b.WriteByte(0)
	})
	return b.String()
}

// Dom returns the active domain of the instance in sorted order.
func (ins *Instance) Dom() []Value {
	seen := make(map[Value]struct{})
	for _, r := range ins.rels {
		for _, t := range r.tuples {
			for _, v := range t {
				seen[v] = struct{}{}
			}
		}
	}
	out := make([]Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return Less(out[i], out[j]) })
	return out
}

// NullCount returns the number of distinct nulls in the active domain,
// without the sort of Nulls (bound checks on hot paths only need the count).
func (ins *Instance) NullCount() int {
	seen := make(map[Value]struct{})
	for _, r := range ins.rels {
		for _, t := range r.tuples {
			for _, v := range t {
				if v.IsNull() {
					seen[v] = struct{}{}
				}
			}
		}
	}
	return len(seen)
}

// Nulls returns the nulls of the active domain in increasing label order.
func (ins *Instance) Nulls() []Value {
	var out []Value
	for _, v := range ins.Dom() {
		if v.IsNull() {
			out = append(out, v)
		}
	}
	return out
}

// Consts returns the constants of the active domain in name order.
func (ins *Instance) Consts() []Value {
	var out []Value
	for _, v := range ins.Dom() {
		if v.IsConst() {
			out = append(out, v)
		}
	}
	return out
}

// HasNulls reports whether any atom mentions a null.
func (ins *Instance) HasNulls() bool {
	for _, r := range ins.rels {
		for _, t := range r.tuples {
			for _, v := range t {
				if v.IsNull() {
					return true
				}
			}
		}
	}
	return false
}

// MaxNullLabel returns the largest null label occurring in the instance,
// or -1 if the instance is null-free. Use it to seed a NullSource.
func (ins *Instance) MaxNullLabel() int64 {
	max := int64(-1)
	for _, r := range ins.rels {
		for _, t := range r.tuples {
			for _, v := range t {
				if v.IsNull() && v.NullLabel() > max {
					max = v.NullLabel()
				}
			}
		}
	}
	return max
}

// clone copies a relation without re-encoding keys or rehashing: maps are
// copied with exact size hints and posting lists into one flat backing per
// position. The inner tuple slices are shared — they are immutable once
// stored (Add copies its argument, ReplaceValue rewrites into fresh copies,
// removeTuples only compacts the outer slice) — but everything a mutation
// can touch (the outer tuples slice, byKey, the byPos maps and their index
// slices) is fresh. Posting lists are full-capacity sub-slices of the flat
// backing, so an append on either copy reallocates instead of clobbering a
// neighbor.
func (r *relation) clone() *relation {
	cp := &relation{
		name:   r.name,
		arity:  r.arity,
		tuples: make([][]Value, len(r.tuples)),
		byKey:  make(map[string]int, len(r.byKey)),
		byPos:  make([]map[Value][]int, r.arity),
	}
	copy(cp.tuples, r.tuples)
	for k, v := range r.byKey {
		cp.byKey[k] = v
	}
	for p, m := range r.byPos {
		nm := make(map[Value][]int, len(m))
		flat := make([]int, 0, len(r.tuples))
		for v, idxs := range m {
			start := len(flat)
			flat = append(flat, idxs...)
			nm[v] = flat[start:len(flat):len(flat)]
		}
		cp.byPos[p] = nm
	}
	return cp
}

// Clone returns a deep copy with identical iteration order. The version
// counter carries over (the copy identifies the same content state); the
// journal does not.
func (ins *Instance) Clone() *Instance {
	cp := New()
	cp.version = ins.version
	ins.eachRel(func(r *relation) {
		if len(r.tuples) == 0 {
			return
		}
		cp.rels[r.name] = r.clone()
		cp.names = append(cp.names, r.name)
	})
	return cp
}

// Reduct returns the sub-instance containing only atoms whose relation
// belongs to the schema (the σ-reduct I|σ of the paper).
func (ins *Instance) Reduct(s Schema) *Instance {
	out := New()
	out.version = ins.version
	ins.eachRel(func(r *relation) {
		if !s.Has(r.name) || len(r.tuples) == 0 {
			return
		}
		out.rels[r.name] = r.clone()
		out.names = append(out.names, r.name)
	})
	return out
}

// Union returns a new instance holding the atoms of both operands.
func Union(a, b *Instance) *Instance {
	u := a.Clone()
	u.AddAll(b)
	return u
}

// Equal reports whether the two instances hold exactly the same atom sets.
func (ins *Instance) Equal(other *Instance) bool {
	if ins.Len() != other.Len() {
		return false
	}
	for _, r := range ins.rels {
		for _, t := range r.tuples {
			if !other.Has(Atom{Rel: r.name, Args: t}) {
				return false
			}
		}
	}
	return true
}

// Map returns the image of the instance under the value mapping h;
// values outside h are kept unchanged. The image may have fewer atoms
// than the original if h identifies tuples.
func (ins *Instance) Map(h map[Value]Value) *Instance {
	out := New()
	args := make([]Value, 0, 8)
	ins.eachRel(func(r *relation) {
		for _, t := range r.tuples {
			args = args[:0]
			for _, v := range t {
				if w, ok := h[v]; ok {
					args = append(args, w)
				} else {
					args = append(args, v)
				}
			}
			out.Add(NewAtom(r.name, args...))
		}
	})
	return out
}

// ReplaceValue substitutes new for every occurrence of old, in place.
// It is the primitive used by egd application.
func (ins *Instance) ReplaceValue(old, new Value) {
	if old == new {
		return
	}
	ins.eachRel(func(r *relation) {
		idxs, ok := findTuplesWith(r, old)
		if !ok {
			return
		}
		// Collect affected tuples, remove them, re-add rewritten.
		var rewritten [][]Value
		for _, i := range idxs {
			t := r.tuples[i]
			cp := make([]Value, len(t))
			for j, v := range t {
				if v == old {
					cp[j] = new
				} else {
					cp[j] = v
				}
			}
			rewritten = append(rewritten, cp)
		}
		ins.removeTuples(r.name, idxs)
		for _, t := range rewritten {
			ins.Add(Atom{Rel: r.name, Args: t})
		}
	})
}

func findTuplesWith(r *relation, v Value) ([]int, bool) {
	seen := make(map[int]struct{})
	for pos := 0; pos < r.arity; pos++ {
		for _, i := range r.byPos[pos][v] {
			seen[i] = struct{}{}
		}
	}
	if len(seen) == 0 {
		return nil, false
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out, true
}

// removeTuples deletes the tuples at the given indexes and rebuilds the
// relation's indexes. Indexes must be valid and sorted ascending.
func (ins *Instance) removeTuples(rel string, idxs []int) {
	r := ins.rels[rel]
	drop := make(map[int]struct{}, len(idxs))
	for _, i := range idxs {
		drop[i] = struct{}{}
	}
	kept := r.tuples[:0]
	for i, t := range r.tuples {
		if _, gone := drop[i]; !gone {
			kept = append(kept, t)
		} else {
			ins.noteRemove(r.name, t)
		}
	}
	r.tuples = kept
	r.byKey = make(map[string]int, len(kept))
	for i := range r.byPos {
		r.byPos[i] = make(map[Value][]int)
	}
	for i, t := range kept {
		r.byKey[encodeTuple(t)] = i
		for p, v := range t {
			r.byPos[p][v] = append(r.byPos[p][v], i)
		}
	}
}

// Remove deletes the atom if present and reports whether it was present.
func (ins *Instance) Remove(a Atom) bool {
	r, ok := ins.rels[a.Rel]
	if !ok || r.arity != len(a.Args) {
		return false
	}
	idx, ok := r.byKey[encodeTuple(a.Args)]
	if !ok {
		return false
	}
	ins.removeTuples(a.Rel, []int{idx})
	return true
}

// Diff returns the atoms present only in a and only in b, in deterministic
// order — a debugging aid for comparing chase results and solutions.
func Diff(a, b *Instance) (onlyA, onlyB []Atom) {
	for _, at := range a.Atoms() {
		if !b.Has(at) {
			onlyA = append(onlyA, at)
		}
	}
	for _, at := range b.Atoms() {
		if !a.Has(at) {
			onlyB = append(onlyB, at)
		}
	}
	return onlyA, onlyB
}

// String renders the instance as a sorted, comma-separated atom list in
// braces, e.g. {E(a,b), F(a,_0)}.
func (ins *Instance) String() string {
	atoms := ins.Atoms()
	strs := make([]string, len(atoms))
	for i, a := range atoms {
		strs[i] = a.String()
	}
	sort.Strings(strs)
	return "{" + strings.Join(strs, ", ") + "}"
}
