package instance

import (
	"encoding/binary"
	"sort"
	"strings"
)

// Instance is a finite set of atoms over a fixed domain of constants and
// labeled nulls. It maintains per-relation tuple stores with a hash index
// for O(1) membership and per-position value indexes to support joins and
// homomorphism search.
//
// All iteration over relations is in sorted relation-name order (via a
// name slice maintained on insertion), never over the rels map directly:
// atom enumeration, cloning, mapping and value replacement are therefore
// deterministic run to run, which downstream canonical forms
// (hom.CanonicalNullForm), golden outputs and benchmarks rely on.
//
// An Instance is safe for concurrent readers as long as no goroutine
// mutates it; the parallel evaluation paths share read-only instances
// across workers under exactly this contract.
type Instance struct {
	rels map[string]*relation
	// names holds the keys of rels in sorted order; maintained eagerly by
	// rel() (rather than lazily on read) so that read-only methods stay
	// side-effect-free and safe for concurrent readers.
	names []string
}

type relation struct {
	name   string
	arity  int
	tuples [][]Value
	byKey  map[string]int    // encoded tuple -> index into tuples
	byPos  []map[Value][]int // position -> value -> tuple indexes
}

func encodeTuple(args []Value) string {
	buf := make([]byte, 0, len(args)*8)
	var tmp [8]byte
	for _, v := range args {
		binary.LittleEndian.PutUint64(tmp[:], uint64(v))
		buf = append(buf, tmp[:]...)
	}
	return string(buf)
}

// New returns an empty instance.
func New() *Instance { return &Instance{rels: make(map[string]*relation)} }

// FromAtoms returns an instance containing exactly the given atoms.
func FromAtoms(atoms ...Atom) *Instance {
	ins := New()
	for _, a := range atoms {
		ins.Add(a)
	}
	return ins
}

func (ins *Instance) rel(name string, arity int) *relation {
	r, ok := ins.rels[name]
	if !ok {
		r = &relation{
			name:  name,
			arity: arity,
			byKey: make(map[string]int),
			byPos: make([]map[Value][]int, arity),
		}
		for i := range r.byPos {
			r.byPos[i] = make(map[Value][]int)
		}
		ins.rels[name] = r
		i := sort.SearchStrings(ins.names, name)
		ins.names = append(ins.names, "")
		copy(ins.names[i+1:], ins.names[i:])
		ins.names[i] = name
	}
	if r.arity != arity {
		panic("instance: arity clash for relation " + name)
	}
	return r
}

// eachRel visits every relation in sorted name order.
func (ins *Instance) eachRel(f func(r *relation)) {
	for _, n := range ins.names {
		f(ins.rels[n])
	}
}

// Add inserts the atom and reports whether it was new.
func (ins *Instance) Add(a Atom) bool {
	r := ins.rel(a.Rel, len(a.Args))
	key := encodeTuple(a.Args)
	if _, ok := r.byKey[key]; ok {
		return false
	}
	idx := len(r.tuples)
	cp := make([]Value, len(a.Args))
	copy(cp, a.Args)
	r.tuples = append(r.tuples, cp)
	r.byKey[key] = idx
	for i, v := range cp {
		r.byPos[i][v] = append(r.byPos[i][v], idx)
	}
	return true
}

// AddAll inserts every atom of other and reports how many were new.
func (ins *Instance) AddAll(other *Instance) int {
	added := 0
	for _, a := range other.Atoms() {
		if ins.Add(a) {
			added++
		}
	}
	return added
}

// Has reports whether the atom is present.
func (ins *Instance) Has(a Atom) bool {
	r, ok := ins.rels[a.Rel]
	if !ok || r.arity != len(a.Args) {
		return false
	}
	_, ok = r.byKey[encodeTuple(a.Args)]
	return ok
}

// Len returns the number of atoms.
func (ins *Instance) Len() int {
	n := 0
	for _, r := range ins.rels {
		n += len(r.tuples)
	}
	return n
}

// Note for the iteration-order-sensitive methods below: every method that
// produces atoms, instances or strings iterates relations via eachRel
// (sorted name order). Order-insensitive aggregates (Len, sorted Dom) may
// still range over the map.

// RelLen returns the number of tuples in the named relation.
func (ins *Instance) RelLen(rel string) int {
	r, ok := ins.rels[rel]
	if !ok {
		return 0
	}
	return len(r.tuples)
}

// Relations returns the names of all nonempty relations in sorted order.
func (ins *Instance) Relations() []string {
	names := make([]string, 0, len(ins.names))
	for _, n := range ins.names {
		if len(ins.rels[n].tuples) > 0 {
			names = append(names, n)
		}
	}
	return names
}

// Arity returns the arity of the named relation, or -1 if absent.
func (ins *Instance) Arity(rel string) int {
	r, ok := ins.rels[rel]
	if !ok {
		return -1
	}
	return r.arity
}

// Atoms returns all atoms in a deterministic order (relation name, then
// insertion order). The returned atoms share no storage with the instance.
func (ins *Instance) Atoms() []Atom {
	out := make([]Atom, 0, ins.Len())
	ins.eachRel(func(r *relation) {
		for _, t := range r.tuples {
			out = append(out, NewAtom(r.name, t...))
		}
	})
	return out
}

// Tuples calls f for each tuple of the named relation. The slice passed to f
// is owned by the instance and must not be modified or retained. Iteration
// stops early if f returns false.
func (ins *Instance) Tuples(rel string, f func(args []Value) bool) {
	r, ok := ins.rels[rel]
	if !ok {
		return
	}
	for _, t := range r.tuples {
		if !f(t) {
			return
		}
	}
}

// MatchTuples calls f for every tuple of rel that agrees with pattern at
// every position where bound is true. It uses the position index on the
// most selective bound position. The slice passed to f must not be retained.
func (ins *Instance) MatchTuples(rel string, pattern []Value, bound []bool, f func(args []Value) bool) {
	r, ok := ins.rels[rel]
	if !ok || r.arity != len(pattern) {
		return
	}
	best, bestSize := -1, 0
	for i, b := range bound {
		if !b {
			continue
		}
		size := len(r.byPos[i][pattern[i]])
		if best == -1 || size < bestSize {
			best, bestSize = i, size
		}
	}
	try := func(t []Value) bool {
		for i, b := range bound {
			if b && t[i] != pattern[i] {
				return true
			}
		}
		return f(t)
	}
	if best == -1 {
		for _, t := range r.tuples {
			if !try(t) {
				return
			}
		}
		return
	}
	for _, idx := range r.byPos[best][pattern[best]] {
		if !try(r.tuples[idx]) {
			return
		}
	}
}

// Dom returns the active domain of the instance in sorted order.
func (ins *Instance) Dom() []Value {
	seen := make(map[Value]struct{})
	for _, r := range ins.rels {
		for _, t := range r.tuples {
			for _, v := range t {
				seen[v] = struct{}{}
			}
		}
	}
	out := make([]Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return Less(out[i], out[j]) })
	return out
}

// Nulls returns the nulls of the active domain in increasing label order.
func (ins *Instance) Nulls() []Value {
	var out []Value
	for _, v := range ins.Dom() {
		if v.IsNull() {
			out = append(out, v)
		}
	}
	return out
}

// Consts returns the constants of the active domain in name order.
func (ins *Instance) Consts() []Value {
	var out []Value
	for _, v := range ins.Dom() {
		if v.IsConst() {
			out = append(out, v)
		}
	}
	return out
}

// HasNulls reports whether any atom mentions a null.
func (ins *Instance) HasNulls() bool {
	for _, r := range ins.rels {
		for _, t := range r.tuples {
			for _, v := range t {
				if v.IsNull() {
					return true
				}
			}
		}
	}
	return false
}

// MaxNullLabel returns the largest null label occurring in the instance,
// or -1 if the instance is null-free. Use it to seed a NullSource.
func (ins *Instance) MaxNullLabel() int64 {
	max := int64(-1)
	for _, r := range ins.rels {
		for _, t := range r.tuples {
			for _, v := range t {
				if v.IsNull() && v.NullLabel() > max {
					max = v.NullLabel()
				}
			}
		}
	}
	return max
}

// Clone returns a deep copy with identical iteration order.
func (ins *Instance) Clone() *Instance {
	cp := New()
	ins.eachRel(func(r *relation) {
		for _, t := range r.tuples {
			cp.Add(Atom{Rel: r.name, Args: t})
		}
	})
	return cp
}

// Reduct returns the sub-instance containing only atoms whose relation
// belongs to the schema (the σ-reduct I|σ of the paper).
func (ins *Instance) Reduct(s Schema) *Instance {
	out := New()
	ins.eachRel(func(r *relation) {
		if !s.Has(r.name) {
			return
		}
		for _, t := range r.tuples {
			out.Add(Atom{Rel: r.name, Args: t})
		}
	})
	return out
}

// Union returns a new instance holding the atoms of both operands.
func Union(a, b *Instance) *Instance {
	u := a.Clone()
	u.AddAll(b)
	return u
}

// Equal reports whether the two instances hold exactly the same atom sets.
func (ins *Instance) Equal(other *Instance) bool {
	if ins.Len() != other.Len() {
		return false
	}
	for _, r := range ins.rels {
		for _, t := range r.tuples {
			if !other.Has(Atom{Rel: r.name, Args: t}) {
				return false
			}
		}
	}
	return true
}

// Map returns the image of the instance under the value mapping h;
// values outside h are kept unchanged. The image may have fewer atoms
// than the original if h identifies tuples.
func (ins *Instance) Map(h map[Value]Value) *Instance {
	out := New()
	args := make([]Value, 0, 8)
	ins.eachRel(func(r *relation) {
		for _, t := range r.tuples {
			args = args[:0]
			for _, v := range t {
				if w, ok := h[v]; ok {
					args = append(args, w)
				} else {
					args = append(args, v)
				}
			}
			out.Add(NewAtom(r.name, args...))
		}
	})
	return out
}

// ReplaceValue substitutes new for every occurrence of old, in place.
// It is the primitive used by egd application.
func (ins *Instance) ReplaceValue(old, new Value) {
	if old == new {
		return
	}
	ins.eachRel(func(r *relation) {
		idxs, ok := findTuplesWith(r, old)
		if !ok {
			return
		}
		// Collect affected tuples, remove them, re-add rewritten.
		var rewritten [][]Value
		for _, i := range idxs {
			t := r.tuples[i]
			cp := make([]Value, len(t))
			for j, v := range t {
				if v == old {
					cp[j] = new
				} else {
					cp[j] = v
				}
			}
			rewritten = append(rewritten, cp)
		}
		ins.removeTuples(r.name, idxs)
		for _, t := range rewritten {
			ins.Add(Atom{Rel: r.name, Args: t})
		}
	})
}

func findTuplesWith(r *relation, v Value) ([]int, bool) {
	seen := make(map[int]struct{})
	for pos := 0; pos < r.arity; pos++ {
		for _, i := range r.byPos[pos][v] {
			seen[i] = struct{}{}
		}
	}
	if len(seen) == 0 {
		return nil, false
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out, true
}

// removeTuples deletes the tuples at the given indexes and rebuilds the
// relation's indexes. Indexes must be valid and sorted ascending.
func (ins *Instance) removeTuples(rel string, idxs []int) {
	r := ins.rels[rel]
	drop := make(map[int]struct{}, len(idxs))
	for _, i := range idxs {
		drop[i] = struct{}{}
	}
	kept := r.tuples[:0]
	for i, t := range r.tuples {
		if _, gone := drop[i]; !gone {
			kept = append(kept, t)
		}
	}
	r.tuples = kept
	r.byKey = make(map[string]int, len(kept))
	for i := range r.byPos {
		r.byPos[i] = make(map[Value][]int)
	}
	for i, t := range kept {
		r.byKey[encodeTuple(t)] = i
		for p, v := range t {
			r.byPos[p][v] = append(r.byPos[p][v], i)
		}
	}
}

// Remove deletes the atom if present and reports whether it was present.
func (ins *Instance) Remove(a Atom) bool {
	r, ok := ins.rels[a.Rel]
	if !ok || r.arity != len(a.Args) {
		return false
	}
	idx, ok := r.byKey[encodeTuple(a.Args)]
	if !ok {
		return false
	}
	ins.removeTuples(a.Rel, []int{idx})
	return true
}

// Diff returns the atoms present only in a and only in b, in deterministic
// order — a debugging aid for comparing chase results and solutions.
func Diff(a, b *Instance) (onlyA, onlyB []Atom) {
	for _, at := range a.Atoms() {
		if !b.Has(at) {
			onlyA = append(onlyA, at)
		}
	}
	for _, at := range b.Atoms() {
		if !a.Has(at) {
			onlyB = append(onlyB, at)
		}
	}
	return onlyA, onlyB
}

// String renders the instance as a sorted, comma-separated atom list in
// braces, e.g. {E(a,b), F(a,_0)}.
func (ins *Instance) String() string {
	atoms := ins.Atoms()
	strs := make([]string, len(atoms))
	for i, a := range atoms {
		strs[i] = a.String()
	}
	sort.Strings(strs)
	return "{" + strings.Join(strs, ", ") + "}"
}
