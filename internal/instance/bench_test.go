package instance

import (
	"fmt"
	"testing"
)

func benchInstance(n int) *Instance {
	ins := New()
	for i := 0; i < n; i++ {
		ins.Add(NewAtom("E",
			Const(fmt.Sprintf("n%d", i%64)),
			Const(fmt.Sprintf("n%d", (i*7)%64))))
	}
	return ins
}

func BenchmarkAdd(b *testing.B) {
	atoms := make([]Atom, 256)
	for i := range atoms {
		atoms[i] = NewAtom("E",
			Const(fmt.Sprintf("n%d", i%64)),
			Const(fmt.Sprintf("n%d", (i*7)%64)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ins := New()
		for _, a := range atoms {
			ins.Add(a)
		}
	}
}

func BenchmarkHas(b *testing.B) {
	ins := benchInstance(256)
	a := NewAtom("E", Const("n3"), Const("n21"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ins.Has(a)
	}
}

func BenchmarkMatchTuplesIndexed(b *testing.B) {
	ins := benchInstance(1024)
	pattern := []Value{Const("n3"), 0}
	bound := []bool{true, false}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ins.MatchTuples("E", pattern, bound, func([]Value) bool { return true })
	}
}

func BenchmarkReplaceValue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ins := New()
		for j := int64(0); j < 128; j++ {
			ins.Add(NewAtom("E", Null(j%8), Null(j/8%8)))
		}
		b.StartTimer()
		ins.ReplaceValue(Null(3), Null(1))
	}
}

func BenchmarkClone(b *testing.B) {
	ins := benchInstance(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ins.Clone()
	}
}
