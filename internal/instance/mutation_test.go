package instance

import "testing"

func TestVersionCountsEffectiveChanges(t *testing.T) {
	ins := New()
	if got := ins.Version(); got != 0 {
		t.Fatalf("fresh instance version = %d, want 0", got)
	}
	a := Atom{Rel: "R", Args: []Value{Const("a"), Const("b")}}
	if !ins.Add(a) {
		t.Fatal("Add reported duplicate on fresh instance")
	}
	if got := ins.Version(); got != 1 {
		t.Fatalf("version after insert = %d, want 1", got)
	}
	if ins.Add(a) {
		t.Fatal("duplicate Add reported insertion")
	}
	if got := ins.Version(); got != 1 {
		t.Fatalf("version after duplicate insert = %d, want 1 (no-op must not count)", got)
	}
	if ins.Remove(Atom{Rel: "R", Args: []Value{Const("x"), Const("y")}}) {
		t.Fatal("Remove of absent atom reported success")
	}
	if got := ins.Version(); got != 1 {
		t.Fatalf("version after absent remove = %d, want 1", got)
	}
	if !ins.Remove(a) {
		t.Fatal("Remove of present atom failed")
	}
	if got := ins.Version(); got != 2 {
		t.Fatalf("version after remove = %d, want 2", got)
	}
}

func TestJournalRecordsMutationsInOrder(t *testing.T) {
	ins := New()
	ins.EnableJournal()
	a := Atom{Rel: "R", Args: []Value{Const("a")}}
	b := Atom{Rel: "S", Args: []Value{Const("a"), Null(1)}}
	ins.Add(a)
	ins.Add(b)
	ins.Add(a) // duplicate: must not journal
	ins.Remove(a)

	j := ins.Journal()
	want := []Mutation{
		{Insert: true, Atom: a},
		{Insert: true, Atom: b},
		{Insert: false, Atom: a},
	}
	if len(j) != len(want) {
		t.Fatalf("journal length = %d, want %d (%v)", len(j), len(want), j)
	}
	for i := range want {
		if j[i].Insert != want[i].Insert || !j[i].Atom.Equal(want[i].Atom) {
			t.Fatalf("journal[%d] = %v, want %v", i, j[i], want[i])
		}
	}
	if got := ins.Version(); got != 3 {
		t.Fatalf("version = %d, want 3", got)
	}

	ins.ResetJournal()
	if len(ins.Journal()) != 0 {
		t.Fatal("ResetJournal left entries behind")
	}
	ins.Add(a)
	if len(ins.Journal()) != 1 {
		t.Fatal("journaling disabled after ResetJournal")
	}
}

func TestReplaceValueJournalsAndBumpsVersion(t *testing.T) {
	ins := New()
	ins.Add(Atom{Rel: "R", Args: []Value{Null(1), Const("c")}})
	ins.Add(Atom{Rel: "R", Args: []Value{Const("c"), Const("c")}})
	v0 := ins.Version()
	ins.EnableJournal()

	// _1 -> c merges R(_1,c) into the existing R(c,c): one removal of the
	// old tuple, no effective re-insert of the rewritten duplicate, plus
	// the removal of the now-duplicate original.
	ins.ReplaceValue(Null(1), Const("c"))
	if ins.Len() != 1 {
		t.Fatalf("after merge Len = %d, want 1", ins.Len())
	}
	if ins.Version() <= v0 {
		t.Fatalf("version did not advance across ReplaceValue: %d -> %d", v0, ins.Version())
	}
	// Replaying the journal against a copy of the pre-merge state must
	// yield the post-merge state: that is the contract incr relies on.
	replay := New()
	replay.Add(Atom{Rel: "R", Args: []Value{Null(1), Const("c")}})
	replay.Add(Atom{Rel: "R", Args: []Value{Const("c"), Const("c")}})
	for _, m := range ins.Journal() {
		if m.Insert {
			replay.Add(m.Atom)
		} else {
			replay.Remove(m.Atom)
		}
	}
	if !replay.Equal(ins) {
		t.Fatalf("journal replay diverged:\nreplayed: %v\nactual:   %v", replay.Atoms(), ins.Atoms())
	}
}

func TestCloneAndReductCarryVersion(t *testing.T) {
	ins := New()
	ins.Add(Atom{Rel: "R", Args: []Value{Const("a")}})
	ins.Add(Atom{Rel: "S", Args: []Value{Const("b")}})
	if got := ins.Clone().Version(); got != ins.Version() {
		t.Fatalf("Clone version = %d, want %d", got, ins.Version())
	}
	sch := NewSchema("R/1")
	if got := ins.Reduct(sch).Version(); got != ins.Version() {
		t.Fatalf("Reduct version = %d, want %d", got, ins.Version())
	}
	// The clone's journal must be independent of the original's.
	ins.EnableJournal()
	cp := ins.Clone()
	cp.Add(Atom{Rel: "R", Args: []Value{Const("z")}})
	if len(ins.Journal()) != 0 {
		t.Fatal("mutating a clone leaked into the original's journal")
	}
}
