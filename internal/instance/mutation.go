package instance

import "fmt"

// Mutation is one source-instance change: the insertion or deletion of a
// single ground atom. Mutations are the unit of the incremental-maintenance
// subsystem (internal/incr): the server's mutation endpoints, the dxcli
// apply mode and the instance journal all speak in terms of them.
type Mutation struct {
	// Insert distinguishes an insertion (true) from a deletion (false).
	Insert bool
	// Atom is the affected atom.
	Atom Atom
}

func (m Mutation) String() string {
	if m.Insert {
		return fmt.Sprintf("+ %v", m.Atom)
	}
	return fmt.Sprintf("- %v", m.Atom)
}

// Version returns the instance's monotone mutation counter: it starts at
// zero for an empty instance and increases by one for every atom actually
// inserted or removed (duplicate inserts and absent-atom removals do not
// count). Clone and Reduct carry the counter over, so a snapshot's version
// identifies the content state it was taken at. ReplaceValue advances the
// counter through its removals and re-insertions.
func (ins *Instance) Version() uint64 { return ins.version }

// EnableJournal makes the instance record every subsequent content change
// (atom inserted, atom removed) as a Mutation, in the order it happened.
// Value replacement (egd application) journals as the removals and
// re-insertions it is implemented with. The journal is not copied by Clone.
func (ins *Instance) EnableJournal() { ins.journalOn = true }

// Journal returns the mutations recorded since EnableJournal (or the last
// ResetJournal). The slice is owned by the instance; callers must copy what
// they retain across further mutations.
func (ins *Instance) Journal() []Mutation { return ins.journal }

// ResetJournal discards the recorded mutations while leaving journaling
// enabled (if it was).
func (ins *Instance) ResetJournal() { ins.journal = nil }

// noteInsert records a successful atom insertion: the version counter
// always advances; the journal only when enabled. args may be a caller's
// scratch buffer (columnar storage keeps no per-row slice), so the journal
// entry copies it.
func (ins *Instance) noteInsert(rel string, args []Value) {
	ins.version++
	if ins.journalOn {
		cp := make([]Value, len(args))
		copy(cp, args)
		ins.journal = append(ins.journal, Mutation{Insert: true, Atom: Atom{Rel: rel, Args: cp}})
	}
}

// noteRemove records an atom removal; see noteInsert.
func (ins *Instance) noteRemove(rel string, args []Value) {
	ins.version++
	if ins.journalOn {
		ins.journal = append(ins.journal, Mutation{Insert: false, Atom: Atom{Rel: rel, Args: args}})
	}
}
