package instance

// Property test for the columnar storage: across randomized sequences of
// Add/Remove/Clone/Map/ReplaceValue the instance must stay consistent with a
// naive tuple-set model — same membership, same per-position indexes, same
// deterministic enumeration order, and clones must be fully independent of
// their parent. Run under -race in CI: clone sharing (columns and posting
// lists are shared copy-on-remove) is exactly the kind of aliasing a data
// race or index-desync bug would hide in.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// tupleModel is the reference implementation: a set of encoded atoms plus
// the insertion order per relation.
type tupleModel struct {
	set   map[string]bool
	order map[string][]Atom // per relation, insertion order, live only
}

func newTupleModel() *tupleModel {
	return &tupleModel{set: make(map[string]bool), order: make(map[string][]Atom)}
}

func encAtom(a Atom) string { return fmt.Sprint(a.Rel, a.Args) }

func (m *tupleModel) add(a Atom) bool {
	k := encAtom(a)
	if m.set[k] {
		return false
	}
	m.set[k] = true
	args := append([]Value(nil), a.Args...)
	m.order[a.Rel] = append(m.order[a.Rel], Atom{Rel: a.Rel, Args: args})
	return true
}

func (m *tupleModel) remove(a Atom) bool {
	k := encAtom(a)
	if !m.set[k] {
		return false
	}
	delete(m.set, k)
	ord := m.order[a.Rel]
	for i := range ord {
		if encAtom(ord[i]) == k {
			m.order[a.Rel] = append(ord[:i:i], ord[i+1:]...)
			break
		}
	}
	return true
}

func (m *tupleModel) clone() *tupleModel {
	c := newTupleModel()
	for k := range m.set {
		c.set[k] = true
	}
	for rel, ord := range m.order {
		c.order[rel] = append([]Atom(nil), ord...)
	}
	return c
}

// atoms returns the model's atoms in the instance's contract order:
// relations sorted by name, tuples in insertion order.
func (m *tupleModel) atoms() []Atom {
	rels := make([]string, 0, len(m.order))
	for rel, ord := range m.order {
		if len(ord) > 0 {
			rels = append(rels, rel)
		}
	}
	sort.Strings(rels)
	var out []Atom
	for _, rel := range rels {
		out = append(out, m.order[rel]...)
	}
	return out
}

func (m *tupleModel) mapValues(h map[Value]Value) *tupleModel {
	c := newTupleModel()
	for _, a := range m.atoms() {
		args := make([]Value, len(a.Args))
		for i, v := range a.Args {
			if w, ok := h[v]; ok {
				args[i] = w
			} else {
				args[i] = v
			}
		}
		c.add(Atom{Rel: a.Rel, Args: args})
	}
	return c
}

// replaceValue mirrors Instance.ReplaceValue's order contract: per relation,
// untouched tuples keep their positions and rewritten ones are re-inserted
// after them (in their original relative order), deduplicating on collision.
func (m *tupleModel) replaceValue(old, new Value) *tupleModel {
	if old == new {
		return m // ReplaceValue is a no-op then: nothing is rewritten or moved
	}
	c := newTupleModel()
	rewrite := func(a Atom) (Atom, bool) {
		hit := false
		args := append([]Value(nil), a.Args...)
		for i, v := range args {
			if v == old {
				args[i] = new
				hit = true
			}
		}
		return Atom{Rel: a.Rel, Args: args}, hit
	}
	for _, ord := range m.order {
		var touched []Atom
		for _, a := range ord {
			if b, hit := rewrite(a); hit {
				touched = append(touched, b)
			} else {
				c.add(a)
			}
		}
		for _, b := range touched {
			c.add(b)
		}
	}
	return c
}

// checkConsistent verifies every queryable surface of ins against the model:
// atom enumeration (order included), membership, lengths, per-position
// indexes and the Rel handle's postings.
func checkConsistent(t *testing.T, ins *Instance, m *tupleModel, tag string) {
	t.Helper()
	want := m.atoms()
	got := ins.Atoms()
	if len(got) != len(want) {
		t.Fatalf("%s: Atoms() has %d atoms, model %d", tag, len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: Atoms()[%d] = %v, model %v (order contract broken)\ngot:  %v\nwant: %v", tag, i, got[i], want[i], got, want)
		}
	}
	if ins.Len() != len(want) {
		t.Fatalf("%s: Len() = %d, model %d", tag, ins.Len(), len(want))
	}
	for _, a := range want {
		if !ins.Has(a) {
			t.Fatalf("%s: Has(%v) = false for a model atom", tag, a)
		}
	}

	// Per-relation, per-position indexes against model counts.
	type relPos struct {
		rel string
		pos int
	}
	counts := make(map[relPos]map[Value]int)
	perRel := make(map[string]int)
	for _, a := range want {
		perRel[a.Rel]++
		for i, v := range a.Args {
			rp := relPos{a.Rel, i}
			if counts[rp] == nil {
				counts[rp] = make(map[Value]int)
			}
			counts[rp][v]++
		}
	}
	for rel, n := range perRel {
		if ins.RelLen(rel) != n {
			t.Fatalf("%s: RelLen(%s) = %d, model %d", tag, rel, ins.RelLen(rel), n)
		}
	}
	for rp, byVal := range counts {
		if d := ins.PosDistinct(rp.rel, rp.pos); d != len(byVal) {
			t.Fatalf("%s: PosDistinct(%s,%d) = %d, model %d", tag, rp.rel, rp.pos, d, len(byVal))
		}
		seen := 0
		ins.EachPosValue(rp.rel, rp.pos, func(v Value, count int) bool {
			seen++
			if byVal[v] != count {
				t.Fatalf("%s: EachPosValue(%s,%d) count for %v = %d, model %d", tag, rp.rel, rp.pos, v, count, byVal[v])
			}
			return true
		})
		if seen != len(byVal) {
			t.Fatalf("%s: EachPosValue(%s,%d) visited %d values, model %d", tag, rp.rel, rp.pos, seen, len(byVal))
		}
		for v, count := range byVal {
			if !ins.PosHasValue(rp.rel, rp.pos, v) {
				t.Fatalf("%s: PosHasValue(%s,%d,%v) = false, model count %d", tag, rp.rel, rp.pos, v, count)
			}
		}
	}

	// The Rel handle: postings must point at live rows carrying the value,
	// exactly count-many of them, in ascending row order.
	for rel, n := range perRel {
		arity := ins.Arity(rel)
		r, ok := ins.Relation(rel, arity)
		if !ok {
			t.Fatalf("%s: Relation(%s,%d) missing with %d model rows", tag, rel, arity, n)
		}
		cols := r.Cols()
		for pos := 0; pos < arity; pos++ {
			for v, count := range counts[relPos{rel, pos}] {
				rows := r.Postings(pos, v)
				if len(rows) != count {
					t.Fatalf("%s: Postings(%s,%d,%v) has %d rows, model %d", tag, rel, pos, v, len(rows), count)
				}
				for i, row := range rows {
					if i > 0 && rows[i-1] >= row {
						t.Fatalf("%s: Postings(%s,%d,%v) not ascending: %v", tag, rel, pos, v, rows)
					}
					if !r.Alive(row) {
						t.Fatalf("%s: Postings(%s,%d,%v) row %d is dead", tag, rel, pos, v, row)
					}
					if cols[pos][row] != v {
						t.Fatalf("%s: Postings(%s,%d,%v) row %d holds %v", tag, rel, pos, v, row, cols[pos][row])
					}
				}
			}
		}
	}
}

func randValue(rng *rand.Rand, consts []Value) Value {
	if rng.Intn(3) == 0 {
		return Null(int64(rng.Intn(6)))
	}
	return consts[rng.Intn(len(consts))]
}

func randAtom(rng *rand.Rand, consts []Value) Atom {
	rels := []struct {
		name  string
		arity int
	}{{"R", 2}, {"S", 3}, {"T", 1}, {"U", 2}}
	r := rels[rng.Intn(len(rels))]
	args := make([]Value, r.arity)
	for i := range args {
		args[i] = randValue(rng, consts)
	}
	return Atom{Rel: r.name, Args: args}
}

func TestPropertyColumnarMatchesTupleModel(t *testing.T) {
	consts := make([]Value, 8)
	for i := range consts {
		consts[i] = Const(fmt.Sprintf("c%d", i))
	}
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			ins := New()
			model := newTupleModel()
			// Frozen clones: mutations of ins must never leak into them.
			type snapshot struct {
				ins   *Instance
				model *tupleModel
			}
			var frozen []snapshot

			for step := 0; step < 400; step++ {
				op := rng.Intn(10)
				tag := fmt.Sprintf("seed %d step %d op %d", seed, step, op)
				switch {
				case op < 5: // Add
					a := randAtom(rng, consts)
					if got, want := ins.Add(a), model.add(a); got != want {
						t.Fatalf("%s: Add(%v) = %v, model %v", tag, a, got, want)
					}
				case op < 7: // Remove: half the time an existing atom
					var a Atom
					if atoms := model.atoms(); len(atoms) > 0 && rng.Intn(2) == 0 {
						a = atoms[rng.Intn(len(atoms))]
					} else {
						a = randAtom(rng, consts)
					}
					if got, want := ins.Remove(a), model.remove(a); got != want {
						t.Fatalf("%s: Remove(%v) = %v, model %v", tag, a, got, want)
					}
				case op < 8: // Clone: freeze the pair, keep mutating the parent
					frozen = append(frozen, snapshot{ins: ins.Clone(), model: model.clone()})
					if rng.Intn(2) == 0 {
						// Sometimes continue on the clone instead, so both
						// directions of the sharing get exercised.
						frozen[len(frozen)-1] = snapshot{ins: ins, model: model}
						ins, model = ins.Clone(), model.clone()
					}
				case op < 9: // Map under a random value substitution
					h := make(map[Value]Value)
					for _, v := range ins.Dom() {
						if rng.Intn(3) == 0 {
							h[v] = randValue(rng, consts)
						}
					}
					ins, model = ins.Map(h), model.mapValues(h)
				default: // ReplaceValue, in place
					dom := ins.Dom()
					if len(dom) == 0 {
						continue
					}
					old := dom[rng.Intn(len(dom))]
					new := randValue(rng, consts)
					ins.ReplaceValue(old, new)
					model = model.replaceValue(old, new)
				}
				checkConsistent(t, ins, model, tag)
			}
			checkConsistent(t, ins, model, "final")
			for i, s := range frozen {
				checkConsistent(t, s.ins, s.model, fmt.Sprintf("frozen clone %d", i))
			}
		})
	}
}
