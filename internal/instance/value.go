// Package instance provides the relational data model used throughout the
// library: values (constants and labeled nulls), atoms, schemas, and indexed
// instances over a fixed countable domain Dom = Const ∪ Null.
//
// The representation follows Section 2 of Hernich & Schweikardt (PODS 2007):
// an instance is a finite set of atoms R(ū) whose arguments are either
// constants (denoted a, b, c, … in the paper) or labeled nulls (⊥, ⊥1, …),
// and Null is linearly ordered so that equality-generating dependencies can
// deterministically replace the larger null by the smaller one.
package instance

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Value is an element of Dom = Const ∪ Null.
//
// Non-negative values are constants: indexes into the process-wide constant
// intern table. Negative values are labeled nulls: the null with label i is
// represented as -(i+1). The linear order on nulls required by the paper for
// unambiguous egd application is the order of their labels.
type Value int64

// IsNull reports whether v is a labeled null.
func (v Value) IsNull() bool { return v < 0 }

// IsConst reports whether v is a constant.
func (v Value) IsConst() bool { return v >= 0 }

// NullLabel returns the label of a null value. It panics if v is a constant.
func (v Value) NullLabel() int64 {
	if !v.IsNull() {
		panic("instance: NullLabel on constant " + v.String())
	}
	return -int64(v) - 1
}

// Null returns the null with the given label (label ≥ 0).
func Null(label int64) Value {
	if label < 0 {
		panic("instance: negative null label")
	}
	return Value(-label - 1)
}

// constTable is the process-wide constant intern table. Constants are
// compared by identity, so interning makes equality O(1) and keeps Value a
// plain integer.
var constTable = struct {
	sync.RWMutex
	byName map[string]Value
	names  []string
}{byName: make(map[string]Value)}

// Const interns the constant with the given name and returns its value.
// The same name always returns the same Value within a process.
func Const(name string) Value {
	constTable.RLock()
	v, ok := constTable.byName[name]
	constTable.RUnlock()
	if ok {
		return v
	}
	constTable.Lock()
	defer constTable.Unlock()
	if v, ok := constTable.byName[name]; ok {
		return v
	}
	v = Value(len(constTable.names))
	constTable.names = append(constTable.names, name)
	constTable.byName[name] = v
	return v
}

// ConstName returns the interned name of a constant value.
func ConstName(v Value) string {
	if v.IsNull() {
		panic("instance: ConstName on null " + v.String())
	}
	constTable.RLock()
	defer constTable.RUnlock()
	if int64(v) >= int64(len(constTable.names)) {
		panic("instance: unknown constant id " + strconv.FormatInt(int64(v), 10))
	}
	return constTable.names[v]
}

// String renders a constant as its name and a null as _<label>.
func (v Value) String() string {
	if v.IsNull() {
		return "_" + strconv.FormatInt(v.NullLabel(), 10)
	}
	return ConstName(v)
}

// Less is the total order used for deterministic output and for the paper's
// rule that egd application replaces the larger null by the smaller: nulls
// are ordered by label; every constant is smaller than every null when mixed
// (so that a null is always the one replaced); constants order by name.
func Less(a, b Value) bool {
	switch {
	case a.IsConst() && b.IsConst():
		return ConstName(a) < ConstName(b)
	case a.IsConst():
		return true
	case b.IsConst():
		return false
	default:
		return a.NullLabel() < b.NullLabel()
	}
}

// NullSource hands out fresh labeled nulls. The zero value starts at label 0;
// use NewNullSource to start above the labels already present in an instance.
type NullSource struct {
	mu   sync.Mutex
	next int64
}

// NewNullSource returns a source whose first fresh null has the given label.
func NewNullSource(first int64) *NullSource { return &NullSource{next: first} }

// Fresh returns a null that the source has not returned before.
func (s *NullSource) Fresh() Value {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := Null(s.next)
	s.next++
	return v
}

// Peek returns the label the next call to Fresh will use.
func (s *NullSource) Peek() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Atom is a fact R(u1, …, ur).
type Atom struct {
	Rel  string
	Args []Value
}

// NewAtom builds an atom; it copies args so callers may reuse their slice.
func NewAtom(rel string, args ...Value) Atom {
	cp := make([]Value, len(args))
	copy(cp, args)
	return Atom{Rel: rel, Args: cp}
}

// String renders the atom as R(a,b,_0).
func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Rel)
	b.WriteByte('(')
	for i, v := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports argument-wise equality of two atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Rel != b.Rel || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Schema maps relation names to arities.
type Schema map[string]int

// NewSchema builds a schema from name/arity pairs given as "R/2" strings.
func NewSchema(decls ...string) Schema {
	s := make(Schema, len(decls))
	for _, d := range decls {
		i := strings.LastIndexByte(d, '/')
		if i < 0 {
			panic("instance: schema declaration must look like R/2: " + d)
		}
		ar, err := strconv.Atoi(d[i+1:])
		if err != nil || ar < 0 {
			panic("instance: bad arity in schema declaration: " + d)
		}
		s[strings.TrimSpace(d[:i])] = ar
	}
	return s
}

// Has reports whether the schema contains the relation.
func (s Schema) Has(rel string) bool { _, ok := s[rel]; return ok }

// Names returns the relation names in sorted order.
func (s Schema) Names() []string {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Union returns a schema containing the relations of both operands.
// It panics if a relation appears in both with different arities.
func (s Schema) Union(t Schema) Schema {
	u := make(Schema, len(s)+len(t))
	for n, a := range s {
		u[n] = a
	}
	for n, a := range t {
		if prev, ok := u[n]; ok && prev != a {
			panic(fmt.Sprintf("instance: arity clash for %s: %d vs %d", n, prev, a))
		}
		u[n] = a
	}
	return u
}

// Disjoint reports whether the two schemas share no relation name.
func (s Schema) Disjoint(t Schema) bool {
	for n := range s {
		if t.Has(n) {
			return false
		}
	}
	return true
}

// String renders the schema as "E/2, F/3" in sorted order.
func (s Schema) String() string {
	names := s.Names()
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s/%d", n, s[n])
	}
	return strings.Join(parts, ", ")
}
