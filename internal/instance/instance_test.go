package instance

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	a := Const("a")
	if !a.IsConst() || a.IsNull() {
		t.Fatalf("Const(a) should be a constant")
	}
	n := Null(3)
	if !n.IsNull() || n.IsConst() {
		t.Fatalf("Null(3) should be a null")
	}
	if n.NullLabel() != 3 {
		t.Fatalf("NullLabel = %d, want 3", n.NullLabel())
	}
	if got := n.String(); got != "_3" {
		t.Fatalf("null String = %q, want _3", got)
	}
	if got := a.String(); got != "a" {
		t.Fatalf("const String = %q, want a", got)
	}
}

func TestConstInterning(t *testing.T) {
	if Const("x") != Const("x") {
		t.Fatal("same name must intern to same value")
	}
	if Const("x") == Const("y") {
		t.Fatal("distinct names must intern to distinct values")
	}
	if ConstName(Const("hello")) != "hello" {
		t.Fatal("ConstName must invert Const")
	}
}

func TestNullSource(t *testing.T) {
	s := NewNullSource(5)
	if got := s.Fresh(); got != Null(5) {
		t.Fatalf("first fresh = %v, want _5", got)
	}
	if got := s.Fresh(); got != Null(6) {
		t.Fatalf("second fresh = %v, want _6", got)
	}
	if s.Peek() != 7 {
		t.Fatalf("Peek = %d, want 7", s.Peek())
	}
}

func TestLessOrder(t *testing.T) {
	a, b := Const("a"), Const("b")
	n0, n1 := Null(0), Null(1)
	cases := []struct {
		x, y Value
		want bool
	}{
		{a, b, true}, {b, a, false},
		{a, n0, true}, {n0, a, false},
		{n0, n1, true}, {n1, n0, false},
		{a, a, false},
	}
	for _, c := range cases {
		if got := Less(c.x, c.y); got != c.want {
			t.Errorf("Less(%v,%v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestSchema(t *testing.T) {
	s := NewSchema("E/2", "F/3")
	if !s.Has("E") || s["F"] != 3 {
		t.Fatal("schema parse failed")
	}
	u := s.Union(NewSchema("G/1"))
	if len(u) != 3 {
		t.Fatalf("union size = %d", len(u))
	}
	if !s.Disjoint(NewSchema("H/1")) {
		t.Fatal("Disjoint false negative")
	}
	if s.Disjoint(NewSchema("E/2")) {
		t.Fatal("Disjoint false positive")
	}
	if got := s.String(); got != "E/2, F/3" {
		t.Fatalf("String = %q", got)
	}
}

func TestInstanceAddHasLen(t *testing.T) {
	ins := New()
	a := NewAtom("E", Const("a"), Const("b"))
	if !ins.Add(a) {
		t.Fatal("first Add should report new")
	}
	if ins.Add(a) {
		t.Fatal("duplicate Add should report not-new")
	}
	if !ins.Has(a) {
		t.Fatal("Has should find added atom")
	}
	if ins.Has(NewAtom("E", Const("b"), Const("a"))) {
		t.Fatal("Has found absent atom")
	}
	if ins.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ins.Len())
	}
}

func TestInstanceDomNullsConsts(t *testing.T) {
	ins := FromAtoms(
		NewAtom("E", Const("a"), Null(1)),
		NewAtom("F", Null(0), Const("b")),
	)
	dom := ins.Dom()
	if len(dom) != 4 {
		t.Fatalf("|Dom| = %d, want 4", len(dom))
	}
	if len(ins.Nulls()) != 2 || len(ins.Consts()) != 2 {
		t.Fatalf("Nulls/Consts = %v/%v", ins.Nulls(), ins.Consts())
	}
	if !ins.HasNulls() {
		t.Fatal("HasNulls should be true")
	}
	if ins.MaxNullLabel() != 1 {
		t.Fatalf("MaxNullLabel = %d, want 1", ins.MaxNullLabel())
	}
}

func TestInstanceCloneIndependence(t *testing.T) {
	ins := FromAtoms(NewAtom("E", Const("a"), Const("b")))
	cp := ins.Clone()
	cp.Add(NewAtom("E", Const("b"), Const("c")))
	if ins.Len() != 1 || cp.Len() != 2 {
		t.Fatal("Clone must be independent")
	}
	if !ins.Equal(ins.Clone()) {
		t.Fatal("instance must equal its clone")
	}
}

func TestInstanceReduct(t *testing.T) {
	ins := FromAtoms(
		NewAtom("E", Const("a"), Const("b")),
		NewAtom("M", Const("a"), Const("b")),
	)
	red := ins.Reduct(NewSchema("M/2"))
	if red.Len() != 1 || !red.Has(NewAtom("M", Const("a"), Const("b"))) {
		t.Fatalf("Reduct = %v", red)
	}
}

func TestInstanceMap(t *testing.T) {
	ins := FromAtoms(
		NewAtom("E", Const("a"), Null(0)),
		NewAtom("E", Const("a"), Null(1)),
	)
	img := ins.Map(map[Value]Value{Null(0): Const("c"), Null(1): Const("c")})
	if img.Len() != 1 {
		t.Fatalf("identifying map should merge tuples, got %v", img)
	}
	if !img.Has(NewAtom("E", Const("a"), Const("c"))) {
		t.Fatalf("mapped instance = %v", img)
	}
}

func TestReplaceValue(t *testing.T) {
	ins := FromAtoms(
		NewAtom("F", Const("a"), Null(3)),
		NewAtom("F", Const("a"), Null(4)),
		NewAtom("G", Null(3), Null(4)),
	)
	ins.ReplaceValue(Null(4), Null(3))
	if ins.Len() != 2 {
		t.Fatalf("after replace Len = %d, want 2 (%v)", ins.Len(), ins)
	}
	if !ins.Has(NewAtom("G", Null(3), Null(3))) {
		t.Fatalf("replace missed G: %v", ins)
	}
}

func TestRemove(t *testing.T) {
	a := NewAtom("E", Const("a"), Const("b"))
	b := NewAtom("E", Const("b"), Const("c"))
	ins := FromAtoms(a, b)
	if !ins.Remove(a) {
		t.Fatal("Remove should report present atom")
	}
	if ins.Remove(a) {
		t.Fatal("Remove should report absent atom")
	}
	if ins.Len() != 1 || !ins.Has(b) {
		t.Fatalf("after remove: %v", ins)
	}
	// Index must still work after removal.
	found := 0
	ins.MatchTuples("E", []Value{Const("b"), 0}, []bool{true, false}, func([]Value) bool {
		found++
		return true
	})
	if found != 1 {
		t.Fatalf("index broken after Remove: found %d", found)
	}
}

func TestMatchTuples(t *testing.T) {
	ins := FromAtoms(
		NewAtom("E", Const("a"), Const("b")),
		NewAtom("E", Const("a"), Const("c")),
		NewAtom("E", Const("b"), Const("c")),
	)
	var got []string
	ins.MatchTuples("E", []Value{Const("a"), 0}, []bool{true, false}, func(t []Value) bool {
		got = append(got, t[1].String())
		return true
	})
	if len(got) != 2 {
		t.Fatalf("bound match found %d tuples, want 2", len(got))
	}
	// Unbound pattern scans everything.
	n := 0
	ins.MatchTuples("E", []Value{0, 0}, []bool{false, false}, func([]Value) bool { n++; return true })
	if n != 3 {
		t.Fatalf("unbound match found %d, want 3", n)
	}
	// Early stop.
	n = 0
	ins.MatchTuples("E", []Value{0, 0}, []bool{false, false}, func([]Value) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop failed: %d", n)
	}
}

func TestUnionAndEqual(t *testing.T) {
	a := FromAtoms(NewAtom("E", Const("a"), Const("b")))
	b := FromAtoms(NewAtom("F", Const("c")))
	u := Union(a, b)
	if u.Len() != 2 {
		t.Fatalf("union Len = %d", u.Len())
	}
	if a.Equal(b) {
		t.Fatal("distinct instances reported equal")
	}
	if !u.Equal(Union(b, a)) {
		t.Fatal("union should commute")
	}
}

func TestAtomString(t *testing.T) {
	a := NewAtom("R", Const("a"), Null(0))
	if got := a.String(); got != "R(a,_0)" {
		t.Fatalf("Atom.String = %q", got)
	}
}

// Property: Add is idempotent and Len counts distinct atoms.
func TestQuickAddIdempotent(t *testing.T) {
	f := func(labels []uint8) bool {
		ins := New()
		seen := make(map[string]bool)
		for _, l := range labels {
			a := NewAtom("R", Null(int64(l%7)), Null(int64(l/7%7)))
			if isNew := ins.Add(a); isNew == seen[a.String()] {
				return false
			}
			seen[a.String()] = true
		}
		return ins.Len() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Map with an injective renaming preserves atom count.
func TestQuickMapInjectivePreservesLen(t *testing.T) {
	f := func(pairs []uint8) bool {
		ins := New()
		for i := 0; i+1 < len(pairs); i += 2 {
			ins.Add(NewAtom("R", Null(int64(pairs[i]%5)), Null(int64(pairs[i+1]%5))))
		}
		shift := make(map[Value]Value)
		for _, v := range ins.Nulls() {
			shift[v] = Null(v.NullLabel() + 100)
		}
		return ins.Map(shift).Len() == ins.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDiff(t *testing.T) {
	a := FromAtoms(NewAtom("E", Const("a"), Const("b")), NewAtom("F", Const("c")))
	b := FromAtoms(NewAtom("E", Const("a"), Const("b")), NewAtom("G", Const("d")))
	onlyA, onlyB := Diff(a, b)
	if len(onlyA) != 1 || onlyA[0].Rel != "F" {
		t.Fatalf("onlyA = %v", onlyA)
	}
	if len(onlyB) != 1 || onlyB[0].Rel != "G" {
		t.Fatalf("onlyB = %v", onlyB)
	}
	if x, y := Diff(a, a); x != nil || y != nil {
		t.Fatal("self-diff must be empty")
	}
}
