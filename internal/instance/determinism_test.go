package instance

import (
	"reflect"
	"testing"
)

// TestRelationIterationDeterminism pins the sorted relation-name iteration
// order: two equal instances built by adding relations in different orders
// must agree on every enumeration-facing surface, and derived instances
// (Clone, Map, Reduct) must preserve the order. Before the sorted-name
// cache, Atoms/Clone/Map ranged over the relation map directly, leaking
// Go's randomized map order into results.
func TestRelationIterationDeterminism(t *testing.T) {
	build := func(order []string) *Instance {
		ins := New()
		atoms := map[string]Atom{
			"B": NewAtom("B", Const("a"), Null(0)),
			"A": NewAtom("A", Const("c")),
			"C": NewAtom("C", Null(1), Const("d")),
		}
		for _, rel := range order {
			ins.Add(atoms[rel])
		}
		return ins
	}
	x := build([]string{"B", "A", "C"})
	y := build([]string{"C", "B", "A"})

	if !x.Equal(y) {
		t.Fatal("instances with the same atoms must be Equal")
	}
	if x.String() != y.String() {
		t.Fatalf("String differs:\n%s\n%s", x, y)
	}
	if !reflect.DeepEqual(x.Relations(), []string{"A", "B", "C"}) {
		t.Fatalf("Relations not sorted: %v", x.Relations())
	}
	if !reflect.DeepEqual(x.Atoms(), y.Atoms()) {
		t.Fatalf("Atoms order differs:\n%v\n%v", x.Atoms(), y.Atoms())
	}

	// Derived instances keep the deterministic enumeration.
	if !reflect.DeepEqual(x.Clone().Atoms(), x.Atoms()) {
		t.Fatal("Clone must preserve atom enumeration order")
	}
	ren := map[Value]Value{Null(0): Const("z"), Null(1): Const("z")}
	if !reflect.DeepEqual(x.Map(ren).Atoms(), y.Map(ren).Atoms()) {
		t.Fatal("Map must enumerate deterministically")
	}
	sch := Schema{"A": 1, "C": 2}
	if !reflect.DeepEqual(x.Reduct(sch).Relations(), []string{"A", "C"}) {
		t.Fatalf("Reduct relations not sorted: %v", x.Reduct(sch).Relations())
	}

	// Repeated enumeration of the same instance is stable (no map-order
	// leakage between calls).
	for i := 0; i < 10; i++ {
		if !reflect.DeepEqual(x.Atoms(), y.Atoms()) {
			t.Fatal("Atoms must be stable across calls")
		}
	}
}
