package instance

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// roundTrip encodes ins and decodes the result, failing the test on error.
func roundTrip(t *testing.T, ins *Instance) *Instance {
	t.Helper()
	buf := ins.AppendBinary(nil)
	got, n, err := DecodeBinary(buf)
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("DecodeBinary consumed %d of %d bytes", n, len(buf))
	}
	return got
}

// assertSame checks that got reproduces want exactly: same atom set, same
// iteration order, same version counter, same index answers.
func assertSame(t *testing.T, want, got *Instance) {
	t.Helper()
	if !want.Equal(got) || !got.Equal(want) {
		t.Fatalf("atom sets differ:\n want %v\n got  %v", want, got)
	}
	if got.Version() != want.Version() {
		t.Fatalf("version = %d, want %d", got.Version(), want.Version())
	}
	wa, ga := want.Atoms(), got.Atoms()
	if len(wa) != len(ga) {
		t.Fatalf("atom count %d != %d", len(ga), len(wa))
	}
	for i := range wa {
		if !wa[i].Equal(ga[i]) {
			t.Fatalf("iteration order diverges at %d: %v vs %v", i, wa[i], ga[i])
		}
	}
	if want.ContentKey() != got.ContentKey() {
		t.Fatal("content keys differ")
	}
	for _, rel := range want.Relations() {
		for pos := 0; pos < want.Arity(rel); pos++ {
			if want.PosDistinct(rel, pos) != got.PosDistinct(rel, pos) {
				t.Fatalf("PosDistinct(%s, %d) differs", rel, pos)
			}
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	ins := New()
	ins.Add(NewAtom("E", Const("a"), Const("b")))
	ins.Add(NewAtom("E", Const("b"), Null(0)))
	ins.Add(NewAtom("F", Null(3), Null(0), Const("a")))
	ins.Add(NewAtom("P", Const("lonely")))
	assertSame(t, ins, roundTrip(t, ins))
}

func TestCodecEmpty(t *testing.T) {
	assertSame(t, New(), roundTrip(t, New()))
}

func TestCodecDeadRows(t *testing.T) {
	// Removals leave dead row slots (below the compaction threshold); the
	// encoding must carry them so row ids and iteration order survive.
	ins := New()
	for i := 0; i < 10; i++ {
		ins.Add(NewAtom("E", Const(fmt.Sprintf("x%d", i)), Null(int64(i))))
	}
	ins.Remove(NewAtom("E", Const("x3"), Null(3)))
	ins.Remove(NewAtom("E", Const("x7"), Null(7)))
	got := roundTrip(t, ins)
	assertSame(t, ins, got)
	// The decoded instance must keep accepting mutations.
	if !got.Add(NewAtom("E", Const("x3"), Null(3))) {
		t.Fatal("re-adding a removed atom must succeed")
	}
	if got.Add(NewAtom("E", Const("x0"), Null(0))) {
		t.Fatal("duplicate add must be refused after decode")
	}
	if !got.Remove(NewAtom("E", Const("x5"), Null(5))) {
		t.Fatal("removing a live atom must succeed after decode")
	}
}

func TestCodecRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		ins := New()
		nRel := 1 + rng.Intn(4)
		var added []Atom
		for i := 0; i < 5+rng.Intn(120); i++ {
			rel := fmt.Sprintf("R%d", rng.Intn(nRel))
			arity := 1 + (len(rel)+rng.Intn(2))%3
			args := make([]Value, arity)
			for p := range args {
				if rng.Intn(3) == 0 {
					args[p] = Null(int64(rng.Intn(20)))
				} else {
					args[p] = Const(fmt.Sprintf("c%d", rng.Intn(15)))
				}
			}
			a := Atom{Rel: fmt.Sprintf("%s_%d", rel, arity), Args: args}
			if ins.Add(a) {
				added = append(added, a)
			}
		}
		for i := 0; i < rng.Intn(10) && len(added) > 0; i++ {
			j := rng.Intn(len(added))
			ins.Remove(added[j])
			added = append(added[:j], added[j+1:]...)
		}
		assertSame(t, ins, roundTrip(t, ins))
	}
}

func TestCodecTruncationAndCorruption(t *testing.T) {
	ins := New()
	ins.Add(NewAtom("E", Const("a"), Const("b")))
	ins.Add(NewAtom("F", Null(0), Const("c")))
	buf := ins.AppendBinary(nil)
	// Every strict prefix must fail cleanly, never panic.
	for n := 0; n < len(buf); n++ {
		if _, _, err := DecodeBinary(buf[:n]); err == nil {
			t.Fatalf("decoding %d-byte prefix of %d succeeded", n, len(buf))
		}
	}
	// Bad magic.
	bad := bytes.Clone(buf)
	bad[0] ^= 0xff
	if _, _, err := DecodeBinary(bad); err == nil {
		t.Fatal("decoding with corrupt magic succeeded")
	}
}

func TestCodecConsumesExactly(t *testing.T) {
	// Two concatenated encodings decode back-to-back.
	a := New()
	a.Add(NewAtom("E", Const("a"), Const("b")))
	b := New()
	b.Add(NewAtom("P", Null(7)))
	buf := b.AppendBinary(a.AppendBinary(nil))
	first, n, err := DecodeBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	second, m, err := DecodeBinary(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if n+m != len(buf) {
		t.Fatalf("consumed %d+%d of %d", n, m, len(buf))
	}
	assertSame(t, a, first)
	assertSame(t, b, second)
}

func TestMutationCodecRoundTrip(t *testing.T) {
	muts := []Mutation{
		{Insert: true, Atom: NewAtom("M", Const("a"), Const("b"))},
		{Insert: false, Atom: NewAtom("N", Const("x"))},
		{Insert: true, Atom: NewAtom("W", Null(4), Const("y"), Null(0))},
	}
	buf := AppendMutations(nil, muts)
	got, n, err := DecodeMutations(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if len(got) != len(muts) {
		t.Fatalf("decoded %d mutations, want %d", len(got), len(muts))
	}
	for i := range muts {
		if got[i].Insert != muts[i].Insert || !got[i].Atom.Equal(muts[i].Atom) {
			t.Fatalf("mutation %d: got %v, want %v", i, got[i], muts[i])
		}
	}
	for n := 0; n < len(buf); n++ {
		if _, _, err := DecodeMutations(buf[:n]); err == nil {
			// An empty prefix legitimately decodes zero mutations only if
			// the count byte is intact; all other prefixes must fail.
			t.Fatalf("decoding %d-byte prefix of %d succeeded", n, len(buf))
		}
	}
}
