// Package membership turns the static consistent-hash cluster into a
// living one: a join/leave protocol with live owner-to-owner scenario
// handoff.
//
// A transition is a two-phase window coordinated by one member (the seed
// a joiner contacted, or the leaver itself):
//
//  1. Propose — the coordinator broadcasts the current view (epoch N) and
//     a proposed view (epoch N+1) to every member involved. Each member
//     routes with both rings for the duration of the window: keys whose
//     owner differs between the rings are "moving" and stay with their
//     old owner until their individual handoff lands.
//  2. Transfer — each member pushes every scenario it owns that moves,
//     one at a time, to the scenario's new owner as a standalone DXB1
//     scenario block (store.EncodeState on the source side, store
//     register + incr.Resume on the receiving side — resident state
//     transfers without re-chasing). The push happens under the
//     scenario's mutation lock and the old owner marks it handed only
//     after the new owner acknowledged, so no acknowledged write is ever
//     lost and the base_version contract survives the move. When a
//     member has nothing left to move it reports done to the
//     coordinator.
//  3. Commit — once every member reported done the coordinator
//     broadcasts the commit; members promote epoch N+1 and old owners
//     drop their handed-off scenarios (journaled through the durable
//     store). On any failure or timeout the coordinator broadcasts an
//     abort instead and the old ring keeps serving. Abort reconciles
//     rather than forgets: receivers push every scenario installed for
//     the dead epoch back to its committed owner (writes acknowledged at
//     the receiver ride back in the block), and old owners keep
//     forwarding handed-off keys until the push-back replaces their
//     stale copy — no acknowledged write is lost to an abort while both
//     sides are reachable. A member whose coordinator vanishes
//     mid-window does not wait forever: a per-window watchdog probes the
//     coordinator's view past the window deadline and self-commits or
//     self-aborts from what it finds.
//
// Members that miss a broadcast converge by epoch comparison: every
// forwarded request and response carries the sender's committed epoch,
// and a member that sees a higher epoch fetches the view from that peer
// (CatchUp) — this replaces the static cluster's RingVersion drift
// detection.
package membership

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
)

// Protocol endpoints. The server mounts handlers for these paths; the
// Transport reaches peers' handlers through them. None is scenario-scoped,
// so cluster routing leaves them alone.
const (
	PathJoin     = "/v1/cluster/join"
	PathPropose  = "/v1/cluster/propose"
	PathTransfer = "/v1/cluster/transfer"
	PathDone     = "/v1/cluster/done"
	PathCommit   = "/v1/cluster/commit"
	PathAbort    = "/v1/cluster/abort"
	PathView     = "/v1/cluster/view"
)

// ErrBusy reports that a membership transition is already in progress;
// clusters admit one at a time. The server maps it to 409.
var ErrBusy = errors.New("membership: transition already in progress")

// JoinRequest is what a joining node POSTs to any member's PathJoin.
type JoinRequest struct {
	Self string `json:"self"`
}

// ProposeRequest opens a transfer window on a member: route with both
// views until commit or abort, and push owned moving scenarios to their
// new owners, reporting done to the coordinator.
type ProposeRequest struct {
	Current     cluster.View `json:"current"`
	Proposed    cluster.View `json:"proposed"`
	Coordinator string       `json:"coordinator"`
}

// DoneRequest is a member's report that it has no scenarios left to move
// for the proposed epoch (or that its transfers failed).
type DoneRequest struct {
	Epoch  uint64 `json:"epoch"`
	Member string `json:"member"`
	Err    string `json:"err,omitempty"`
}

// CommitRequest promotes the proposed epoch. Members carries the full
// list so a member that missed the propose can adopt the view outright.
type CommitRequest struct {
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"`
}

// AbortRequest discards the proposed epoch.
type AbortRequest struct {
	Epoch uint64 `json:"epoch"`
}

// ViewResponse is the answer to GET PathView: the member's committed
// view plus, during a window, the open proposal — everything a lagging
// peer needs to catch up.
type ViewResponse struct {
	Epoch       uint64        `json:"epoch"`
	Members     []string      `json:"members"`
	Transition  string        `json:"transition"` // "stable" or "proposed"
	Proposed    *cluster.View `json:"proposed,omitempty"`
	Coordinator string        `json:"coordinator,omitempty"`
}

// Host is the server's side of a handoff: enumerating local scenarios,
// pushing one to its new owner under the scenario's mutation lock, and
// the commit/abort cleanup of handed-off state.
type Host interface {
	// ScenarioIDs lists every scenario present on this member (resident
	// or paged out to the durable store).
	ScenarioIDs() []string
	// Handoff captures id's state under its mutation lock, calls send
	// with the encoded scenario block while the lock is held, and — only
	// if send succeeds — marks the scenario handed off to newOwner so
	// subsequent requests forward there. It returns the block size, or
	// (0, nil) when the scenario is already handed off or gone.
	Handoff(ctx context.Context, id, newOwner string, send func(block []byte) error) (int, error)
	// CommitWindow runs after the epoch committed: drop every handed-off
	// scenario (journaled through the durable store) and adopt the
	// scenarios received during the window as owned.
	CommitWindow()
	// AbortWindow runs after epoch's proposal aborted. It reconciles
	// instead of forgetting: scenarios received for the aborted epoch are
	// pushed back to their committed owners (so writes acknowledged here
	// survive the abort), and handed-off scenarios keep forwarding until
	// the push-back from their receiver lands. May return before the
	// reconciliation finishes (it runs in the background).
	AbortWindow(epoch uint64)
	// Reconciling reports whether handoff state from an aborted window is
	// still being reconciled; no new transition may start before it
	// finishes (the marks it would need are still owned by the old one).
	Reconciling() bool
}

// Transport carries protocol messages and transfer blocks to a peer's
// endpoints. Implementations return an error for any non-2xx response.
type Transport interface {
	Call(ctx context.Context, peer, method, path, contentType string, body []byte) ([]byte, error)
}

// Config assembles a Manager.
type Config struct {
	Cluster   *cluster.Cluster
	Host      Host
	Transport Transport
	// WindowTimeout bounds a whole transition on the coordinator
	// (propose → all done); 0 means 2 minutes.
	WindowTimeout time.Duration
	// TransferTimeout bounds one scenario push; 0 means 60 seconds.
	TransferTimeout time.Duration
	// RPCTimeout bounds one control message (propose/done/commit/abort/
	// view); 0 means 10 seconds.
	RPCTimeout time.Duration
}

// Manager runs the membership protocol for one member: it opens and
// closes transfer windows on propose/commit/abort, pushes this member's
// moving scenarios during a window, and coordinates transitions it
// initiated (a join it was the seed for, or its own leave).
type Manager struct {
	cl   *cluster.Cluster
	host Host
	tr   Transport
	self string

	windowTimeout   time.Duration
	transferTimeout time.Duration
	rpcTimeout      time.Duration

	mu       sync.Mutex
	window   *windowState
	coord    *coordState
	inFlight atomic.Int64

	// catching single-flights the inline (data-request-path) catch-up.
	catching atomic.Bool
}

// windowState is one member's open transfer window.
type windowState struct {
	prop        cluster.View
	coordinator string
	ctx         context.Context
	cancel      context.CancelFunc
	finished    chan struct{}
}

// coordState tracks a transition this member coordinates.
type coordState struct {
	epoch    uint64
	pending  map[string]bool
	err      error
	signaled bool
	allDone  chan struct{}
}

// New builds the manager. The cluster's current epoch is published to the
// cluster_epoch gauge immediately.
func New(cfg Config) *Manager {
	m := &Manager{
		cl:              cfg.Cluster,
		host:            cfg.Host,
		tr:              cfg.Transport,
		self:            cfg.Cluster.Self(),
		windowTimeout:   cfg.WindowTimeout,
		transferTimeout: cfg.TransferTimeout,
		rpcTimeout:      cfg.RPCTimeout,
	}
	if m.windowTimeout <= 0 {
		m.windowTimeout = 2 * time.Minute
	}
	if m.transferTimeout <= 0 {
		m.transferTimeout = 60 * time.Second
	}
	if m.rpcTimeout <= 0 {
		m.rpcTimeout = 10 * time.Second
	}
	metrics.ClusterEpoch.Set(int64(m.cl.Epoch()))
	return m
}

// InFlight returns the number of scenario handoffs currently executing on
// this member.
func (m *Manager) InFlight() int { return int(m.inFlight.Load()) }

// Join runs the joiner's side of the handshake: ask seed for admission
// and block until the transition commits (the propose/commit broadcasts
// arrive through this member's handlers while the call is in flight).
func (m *Manager) Join(ctx context.Context, seed string) error {
	seedURL, err := cluster.NormalizeURL(seed)
	if err != nil {
		return fmt.Errorf("membership: join seed: %w", err)
	}
	body, err := json.Marshal(JoinRequest{Self: m.self})
	if err != nil {
		return err
	}
	cctx, cancel := context.WithTimeout(ctx, m.windowTimeout+m.rpcTimeout)
	defer cancel()
	respBody, err := m.tr.Call(cctx, seedURL, "POST", PathJoin, "application/json", body)
	if err != nil {
		return fmt.Errorf("membership: join via %s: %w", seedURL, err)
	}
	var v cluster.View
	if err := json.Unmarshal(respBody, &v); err != nil {
		return fmt.Errorf("membership: join response: %w", err)
	}
	if err := m.HandleCommit(CommitRequest{Epoch: v.Epoch, Members: v.Members}); err != nil {
		return err
	}
	return nil
}

// Leave coordinates this member's own departure: propose the view without
// self, hand off everything owned, and commit. With no other member to
// hand off to (single-node cluster) it returns nil without a transition.
func (m *Manager) Leave(ctx context.Context) error {
	cur := m.cl.Current()
	inCluster := false
	for _, mem := range cur.Members {
		if mem == m.self {
			inCluster = true
			break
		}
	}
	if !inCluster {
		return nil
	}
	rest := make([]string, 0, len(cur.Members)-1)
	for _, mem := range cur.Members {
		if mem != m.self {
			rest = append(rest, mem)
		}
	}
	if len(rest) == 0 {
		return nil
	}
	prop := cluster.View{Epoch: cur.Epoch + 1, Members: rest}
	return m.coordinate(ctx, cur, prop, cur.Members)
}

// HandleJoin is the coordinator's side of PathJoin: admit joiner into the
// ring via a full propose/transfer/commit transition and return the
// committed view. Idempotent for a joiner that is already a member.
func (m *Manager) HandleJoin(ctx context.Context, req JoinRequest) (cluster.View, error) {
	joiner, err := cluster.NormalizeURL(req.Self)
	if err != nil {
		return cluster.View{}, err
	}
	cur := m.cl.Current()
	isMember := func(u string) bool {
		for _, mem := range cur.Members {
			if mem == u {
				return true
			}
		}
		return false
	}
	if !isMember(m.self) {
		return cluster.View{}, fmt.Errorf("membership: %s is not a data node and cannot admit members", m.self)
	}
	if isMember(joiner) {
		return cur, nil
	}
	prop := cluster.View{Epoch: cur.Epoch + 1, Members: append(append([]string(nil), cur.Members...), joiner)}
	if err := m.coordinate(ctx, cur, prop, prop.Members); err != nil {
		return cluster.View{}, err
	}
	metrics.MembershipJoins.Inc()
	return m.cl.Current(), nil
}

// coordinate runs one transition as its coordinator: broadcast the
// proposal to union (every member involved, this one included), wait for
// every done report, then broadcast the commit — or the abort on any
// failure or timeout.
func (m *Manager) coordinate(ctx context.Context, cur, prop cluster.View, union []string) error {
	m.mu.Lock()
	if m.coord != nil || m.window != nil {
		m.mu.Unlock()
		return ErrBusy
	}
	cs := &coordState{epoch: prop.Epoch, pending: make(map[string]bool, len(union)), allDone: make(chan struct{})}
	for _, mem := range union {
		cs.pending[mem] = true
	}
	m.coord = cs
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.coord = nil
		m.mu.Unlock()
	}()

	pbody, err := json.Marshal(ProposeRequest{Current: cur, Proposed: prop, Coordinator: m.self})
	if err != nil {
		return err
	}
	for _, mem := range union {
		if err := m.rpc(ctx, mem, PathPropose, pbody); err != nil {
			m.broadcastAbort(union, prop.Epoch)
			return fmt.Errorf("membership: propose epoch %d to %s: %w", prop.Epoch, mem, err)
		}
	}

	select {
	case <-cs.allDone:
		m.mu.Lock()
		err = cs.err
		m.mu.Unlock()
	case <-time.After(m.windowTimeout):
		err = fmt.Errorf("membership: transition to epoch %d timed out after %s", prop.Epoch, m.windowTimeout)
	case <-ctx.Done():
		err = ctx.Err()
	}
	if err != nil {
		m.broadcastAbort(union, prop.Epoch)
		return err
	}

	cbody, merr := json.Marshal(CommitRequest{Epoch: prop.Epoch, Members: prop.Members})
	if merr != nil {
		return merr
	}
	for _, mem := range union {
		// A member that misses the commit converges later through epoch
		// catch-up, so commit delivery is best-effort with retries.
		for attempt := 0; attempt < 3; attempt++ {
			if m.rpc(ctx, mem, PathCommit, cbody) == nil {
				break
			}
		}
	}
	return nil
}

// broadcastAbort tells every involved member to discard the proposal.
func (m *Manager) broadcastAbort(union []string, epoch uint64) {
	body, err := json.Marshal(AbortRequest{Epoch: epoch})
	if err != nil {
		return
	}
	for _, mem := range union {
		_ = m.rpc(context.Background(), mem, PathAbort, body)
	}
}

// rpc delivers one control message, dispatching to the local handler when
// the peer is this member itself.
func (m *Manager) rpc(ctx context.Context, peer, path string, body []byte) error {
	if peer == m.self {
		return m.dispatchLocal(ctx, path, body)
	}
	cctx, cancel := context.WithTimeout(ctx, m.rpcTimeout)
	defer cancel()
	_, err := m.tr.Call(cctx, peer, "POST", path, "application/json", body)
	return err
}

func (m *Manager) dispatchLocal(ctx context.Context, path string, body []byte) error {
	switch path {
	case PathPropose:
		var req ProposeRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return err
		}
		return m.HandlePropose(ctx, req)
	case PathDone:
		var req DoneRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return err
		}
		return m.HandleDone(req)
	case PathCommit:
		var req CommitRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return err
		}
		return m.HandleCommit(req)
	case PathAbort:
		var req AbortRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return err
		}
		m.HandleAbort(req)
		return nil
	}
	return fmt.Errorf("membership: unknown local path %s", path)
}

// HandlePropose opens the transfer window on this member and starts
// pushing its moving scenarios in the background. Re-proposing the same
// epoch is a no-op; a different concurrent proposal is refused.
func (m *Manager) HandlePropose(_ context.Context, req ProposeRequest) error {
	m.mu.Lock()
	if ws := m.window; ws != nil {
		same := ws.prop.Epoch == req.Proposed.Epoch
		m.mu.Unlock()
		if same {
			return nil
		}
		return ErrBusy
	}
	if m.host.Reconciling() {
		// The previous window aborted and its handoff state is still being
		// pushed back into place; a new window would route against marks
		// the reconciliation is about to clear.
		m.mu.Unlock()
		return ErrBusy
	}
	if err := m.cl.Propose(req.Current, req.Proposed); err != nil {
		m.mu.Unlock()
		return err
	}
	wctx, cancel := context.WithCancel(context.Background())
	ws := &windowState{
		prop:        req.Proposed,
		coordinator: req.Coordinator,
		ctx:         wctx,
		cancel:      cancel,
		finished:    make(chan struct{}),
	}
	m.window = ws
	m.mu.Unlock()
	go m.runTransfers(ws)
	go m.watchWindow(ws)
	return nil
}

// watchWindow bounds a member's open transfer window against a vanished
// coordinator: commit and abort both cancel the window context, so if
// neither arrived well past the coordinator's own deadline the watchdog
// asks the coordinator how the transition ended — adopting its commit,
// re-arming while the proposal is genuinely still open, and self-aborting
// when the coordinator is unreachable or has dropped the proposal.
// Without it a coordinator crash after propose would leave the window
// open forever: every later transition 409s and moving keys dual-route
// until an operator aborts by hand.
func (m *Manager) watchWindow(ws *windowState) {
	if ws.coordinator == m.self {
		// The local coordinate() call commits or aborts within its own
		// windowTimeout; no probe needed.
		return
	}
	wait := m.windowTimeout + m.windowTimeout/2 + m.rpcTimeout
	for {
		select {
		case <-ws.ctx.Done():
			return
		case <-time.After(wait):
		}
		cctx, cancel := context.WithTimeout(context.Background(), m.rpcTimeout)
		body, err := m.tr.Call(cctx, ws.coordinator, "GET", PathView, "", nil)
		cancel()
		if err == nil {
			var v ViewResponse
			if json.Unmarshal(body, &v) == nil {
				if v.Epoch >= ws.prop.Epoch {
					// The transition committed and we missed the broadcast.
					_ = m.HandleCommit(CommitRequest{Epoch: v.Epoch, Members: v.Members})
					return
				}
				if v.Proposed != nil && v.Proposed.Epoch == ws.prop.Epoch {
					// Still open on a live coordinator (a slow transfer
					// elsewhere); give it more time.
					wait = m.windowTimeout / 2
					if wait <= 0 {
						wait = time.Second
					}
					continue
				}
			}
		}
		// Coordinator unreachable, or it gave up on the proposal without
		// its abort reaching us: close the window ourselves.
		m.HandleAbort(AbortRequest{Epoch: ws.prop.Epoch})
		return
	}
}

// runTransfers sweeps this member's scenarios and pushes every owned
// moving one to its new owner, then reports done to the coordinator. It
// re-sweeps until a pass hands off nothing, so scenarios that page in or
// arrive mid-sweep are not missed.
func (m *Manager) runTransfers(ws *windowState) {
	defer close(ws.finished)
	var failure error
sweeps:
	for {
		moved := 0
		for _, id := range m.host.ScenarioIDs() {
			if ws.ctx.Err() != nil {
				return // aborted or committed under us; nothing to report
			}
			rt := m.cl.RouteKey(id)
			if !rt.Moving || rt.Owner != m.self {
				continue
			}
			start := time.Now()
			m.inFlight.Add(1)
			n, err := m.host.Handoff(ws.ctx, id, rt.New, func(block []byte) error {
				cctx, cancel := context.WithTimeout(ws.ctx, m.transferTimeout)
				defer cancel()
				// The epoch tag lets the receiver remember which proposal
				// the install belongs to, so an abort can push it back.
				path := fmt.Sprintf("%s?epoch=%d", PathTransfer, ws.prop.Epoch)
				_, cerr := m.tr.Call(cctx, rt.New, "POST", path, "application/octet-stream", block)
				return cerr
			})
			m.inFlight.Add(-1)
			if err != nil {
				failure = fmt.Errorf("handoff of %s to %s: %w", id, rt.New, err)
				break sweeps
			}
			if n > 0 {
				moved++
				metrics.MembershipTransfers.Inc()
				metrics.MembershipTransferBytes.Add(int64(n))
				metrics.MembershipHandoffMillis.Add(time.Since(start).Milliseconds())
			}
		}
		if moved == 0 {
			break
		}
	}
	if ws.ctx.Err() != nil {
		return
	}
	req := DoneRequest{Epoch: ws.prop.Epoch, Member: m.self}
	if failure != nil {
		req.Err = failure.Error()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return
	}
	for attempt := 0; attempt < 3; attempt++ {
		if m.rpc(ws.ctx, ws.coordinator, PathDone, body) == nil {
			return
		}
		select {
		case <-ws.ctx.Done():
			return
		case <-time.After(200 * time.Millisecond << attempt):
		}
	}
}

// HandleDone records a member's done report on the coordinator.
func (m *Manager) HandleDone(req DoneRequest) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cs := m.coord
	if cs == nil || cs.epoch != req.Epoch {
		return nil
	}
	if req.Err != "" && cs.err == nil {
		cs.err = fmt.Errorf("membership: %s: %s", req.Member, req.Err)
	}
	delete(cs.pending, req.Member)
	if (len(cs.pending) == 0 || cs.err != nil) && !cs.signaled {
		cs.signaled = true
		close(cs.allDone)
	}
	return nil
}

// HandleCommit promotes the committed view. A member holding a window at
// or below the committed epoch closes it (a commit past our proposal
// supersedes it) and runs the commit cleanup; a member that missed the
// propose adopts the view outright.
func (m *Manager) HandleCommit(req CommitRequest) error {
	m.mu.Lock()
	ws := m.window
	if ws != nil && req.Epoch >= ws.prop.Epoch {
		m.window = nil
	} else {
		ws = nil
	}
	err := m.cl.Commit(req.Epoch, req.Members)
	m.mu.Unlock()
	if err != nil {
		return err
	}
	if ws != nil {
		ws.cancel()
		m.host.CommitWindow()
	}
	metrics.ClusterEpoch.Set(int64(m.cl.Epoch()))
	return nil
}

// HandleAbort discards the proposed view and starts the host's
// reconciliation: received scenarios are pushed back to their committed
// owners, and handed-off ones keep forwarding until that push-back lands.
func (m *Manager) HandleAbort(req AbortRequest) {
	m.mu.Lock()
	ws := m.window
	if ws != nil && ws.prop.Epoch == req.Epoch {
		m.window = nil
	} else {
		ws = nil
	}
	m.cl.Abort(req.Epoch)
	m.mu.Unlock()
	if ws != nil {
		ws.cancel()
		m.host.AbortWindow(req.Epoch)
	}
}

// inlineCatchUpTimeout caps a catch-up fetch that a data request is
// waiting on; the full rpcTimeout is reserved for control-plane traffic.
const inlineCatchUpTimeout = time.Second

// CatchUp fetches peer's view and adopts whatever is newer than ours —
// the epoch-comparison replacement for RingVersion drift detection. Best
// effort: errors leave the current view in place (the forwarding hop
// bound keeps stale routing safe).
func (m *Manager) CatchUp(ctx context.Context, peer string) {
	cctx, cancel := context.WithTimeout(ctx, m.rpcTimeout)
	defer cancel()
	m.catchUp(cctx, peer)
}

// CatchUpInline is CatchUp for the data-request path: single-flighted and
// bounded by a much shorter timeout, so one slow or hung peer advertising
// a newer epoch cannot stall every incoming forwarded request for a full
// rpcTimeout. Losers of the flight (and timed-out fetches) proceed on the
// old view — the hop bound keeps that safe until the view converges.
func (m *Manager) CatchUpInline(ctx context.Context, peer string) {
	if !m.catching.CompareAndSwap(false, true) {
		return
	}
	defer m.catching.Store(false)
	t := inlineCatchUpTimeout
	if m.rpcTimeout < t {
		t = m.rpcTimeout
	}
	cctx, cancel := context.WithTimeout(ctx, t)
	defer cancel()
	m.catchUp(cctx, peer)
}

func (m *Manager) catchUp(ctx context.Context, peer string) {
	body, err := m.tr.Call(ctx, peer, "GET", PathView, "", nil)
	if err != nil {
		return
	}
	var v ViewResponse
	if err := json.Unmarshal(body, &v); err != nil {
		return
	}
	if v.Proposed != nil {
		_ = m.HandlePropose(ctx, ProposeRequest{
			Current:     cluster.View{Epoch: v.Epoch, Members: v.Members},
			Proposed:    *v.Proposed,
			Coordinator: v.Coordinator,
		})
		return
	}
	if v.Epoch > m.cl.Epoch() {
		_ = m.HandleCommit(CommitRequest{Epoch: v.Epoch, Members: v.Members})
	}
}

// ViewInfo reports this member's view for PathView and /healthz.
func (m *Manager) ViewInfo() ViewResponse {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.cl.Current()
	resp := ViewResponse{Epoch: cur.Epoch, Members: cur.Members, Transition: "stable"}
	if ws := m.window; ws != nil {
		p := ws.prop
		resp.Transition = "proposed"
		resp.Proposed = &cluster.View{Epoch: p.Epoch, Members: append([]string(nil), p.Members...)}
		resp.Coordinator = ws.coordinator
	}
	return resp
}
