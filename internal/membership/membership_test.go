package membership_test

// Protocol-level tests: several Managers wired through an in-memory
// transport fabric, with map-backed hosts standing in for the server's
// scenario registry. The properties under test are the protocol's
// promises — a join moves exactly the keys whose owner changed and
// nothing else, a leave empties the leaver, and a failed transfer aborts
// the whole transition leaving every member on the old view.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/membership"
)

// fakeHost is a map-backed membership.Host: scenario ids with handed-off
// marks, no real state behind them (the "block" is the id itself).
type fakeHost struct {
	mu     sync.Mutex
	ids    map[string]bool
	handed map[string]bool
}

func newFakeHost(ids ...string) *fakeHost {
	h := &fakeHost{ids: make(map[string]bool), handed: make(map[string]bool)}
	for _, id := range ids {
		h.ids[id] = true
	}
	return h
}

func (h *fakeHost) ScenarioIDs() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.ids))
	for id := range h.ids {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func (h *fakeHost) Handoff(_ context.Context, id, newOwner string, send func([]byte) error) (int, error) {
	h.mu.Lock()
	if !h.ids[id] || h.handed[id] {
		h.mu.Unlock()
		return 0, nil
	}
	h.mu.Unlock()
	if err := send([]byte(id)); err != nil {
		return 0, err
	}
	h.mu.Lock()
	h.handed[id] = true
	h.mu.Unlock()
	return len(id), nil
}

func (h *fakeHost) CommitWindow() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for id := range h.handed {
		delete(h.ids, id)
	}
	h.handed = make(map[string]bool)
}

func (h *fakeHost) AbortWindow(uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.handed = make(map[string]bool)
}

func (h *fakeHost) Reconciling() bool { return false }

func (h *fakeHost) install(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ids[id] = true
}

func (h *fakeHost) snapshot() []string { return h.ScenarioIDs() }

// fabric is the in-memory transport: Call dispatches straight into the
// target member's handlers, exactly as the server's HTTP endpoints would.
type fabric struct {
	mu       sync.Mutex
	managers map[string]*membership.Manager
	hosts    map[string]*fakeHost
	down     map[string]bool
	// failInstall makes a member's transfer endpoint fail, simulating a
	// receiver that cannot install (disk full, say) — the transition must
	// abort.
	failInstall map[string]bool
}

func newFabric() *fabric {
	return &fabric{
		managers:    make(map[string]*membership.Manager),
		hosts:       make(map[string]*fakeHost),
		down:        make(map[string]bool),
		failInstall: make(map[string]bool),
	}
}

type fabricTransport struct {
	f    *fabric
	self string
}

func (t fabricTransport) Call(_ context.Context, peer, method, path, _ string, body []byte) ([]byte, error) {
	t.f.mu.Lock()
	m, host := t.f.managers[peer], t.f.hosts[peer]
	isDown, failInstall := t.f.down[peer], t.f.failInstall[peer]
	t.f.mu.Unlock()
	if isDown {
		return nil, fmt.Errorf("%s unreachable", peer)
	}
	if m == nil {
		return nil, fmt.Errorf("no such member %s", peer)
	}
	// Transfer paths carry the proposal epoch as a query string.
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	switch path {
	case membership.PathJoin:
		var req membership.JoinRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		v, err := m.HandleJoin(context.Background(), req)
		if err != nil {
			return nil, err
		}
		return json.Marshal(v)
	case membership.PathPropose:
		var req membership.ProposeRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return []byte("{}"), m.HandlePropose(context.Background(), req)
	case membership.PathTransfer:
		if failInstall {
			return nil, fmt.Errorf("%s cannot install", peer)
		}
		host.install(string(body))
		return []byte("{}"), nil
	case membership.PathDone:
		var req membership.DoneRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return []byte("{}"), m.HandleDone(req)
	case membership.PathCommit:
		var req membership.CommitRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return []byte("{}"), m.HandleCommit(req)
	case membership.PathAbort:
		var req membership.AbortRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		m.HandleAbort(req)
		return []byte("{}"), nil
	case membership.PathView:
		return json.Marshal(m.ViewInfo())
	}
	return nil, fmt.Errorf("unknown path %s", path)
}

// addStatic boots a statically-configured member into the fabric.
func (f *fabric) addStatic(t *testing.T, self string, peers []string) *membership.Manager {
	t.Helper()
	cl, err := cluster.New(cluster.Config{Self: self, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	return f.add(t, self, cl)
}

func (f *fabric) add(t *testing.T, self string, cl *cluster.Cluster) *membership.Manager {
	t.Helper()
	return f.addTuned(t, self, cl, 5*time.Second, time.Second)
}

func (f *fabric) addTuned(t *testing.T, self string, cl *cluster.Cluster, window, rpc time.Duration) *membership.Manager {
	t.Helper()
	host := newFakeHost()
	m := membership.New(membership.Config{
		Cluster:         cl,
		Host:            host,
		Transport:       fabricTransport{f: f, self: self},
		WindowTimeout:   window,
		TransferTimeout: rpc,
		RPCTimeout:      rpc,
	})
	f.mu.Lock()
	f.managers[self] = m
	f.hosts[self] = host
	f.mu.Unlock()
	return m
}

// seed scatters n scenarios across the static members by committed-ring
// ownership and returns every id.
func (f *fabric) seed(t *testing.T, peers []string, n int) []string {
	t.Helper()
	ring := cluster.NewRing(peers, 0)
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("scenario-%02d", i)
		ids = append(ids, id)
		f.hosts[ring.Owner(id)].install(id)
	}
	return ids
}

// placement maps every member to its sorted scenario list.
func (f *fabric) placement(peers []string) map[string][]string {
	out := make(map[string][]string, len(peers))
	for _, p := range peers {
		out[p] = f.hosts[p].snapshot()
	}
	return out
}

func expectPlacement(t *testing.T, f *fabric, members []string, ids []string) {
	t.Helper()
	ring := cluster.NewRing(members, 0)
	want := make(map[string][]string, len(members))
	for _, id := range ids {
		o := ring.Owner(id)
		want[o] = append(want[o], id)
	}
	for _, m := range members {
		sort.Strings(want[m])
		got := f.hosts[m].snapshot()
		if len(got) != len(want[m]) {
			t.Fatalf("%s holds %v, want %v", m, got, want[m])
		}
		for i := range got {
			if got[i] != want[m][i] {
				t.Fatalf("%s holds %v, want %v", m, got, want[m])
			}
		}
	}
}

var peers3 = []string{"http://n1:1", "http://n2:1", "http://n3:1"}

// TestJoinMovesOnlyTheMovingScenarios runs a full join transition and
// checks every member lands on epoch 2 with placement matching the new
// ring — and that exactly the scenarios whose owner changed moved.
func TestJoinMovesOnlyTheMovingScenarios(t *testing.T) {
	f := newFabric()
	var managers []*membership.Manager
	for _, p := range peers3 {
		managers = append(managers, f.addStatic(t, p, peers3))
	}
	ids := f.seed(t, peers3, 30)
	before := f.placement(peers3)

	joiner := "http://n4:1"
	jc, err := cluster.NewJoining(joiner, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	jm := f.add(t, joiner, jc)
	if err := jm.Join(context.Background(), peers3[0]); err != nil {
		t.Fatalf("join: %v", err)
	}

	all := append(append([]string(nil), peers3...), joiner)
	for i, m := range append(managers, jm) {
		if got := m.ViewInfo(); got.Epoch != 2 || got.Transition != "stable" {
			t.Fatalf("member %d: epoch=%d transition=%s after join", i, got.Epoch, got.Transition)
		}
	}
	expectPlacement(t, f, all, ids)

	// Only the scenarios the new ring took away from their old owner may
	// have left it: everything an old owner still owns it must still hold
	// (it was never encoded, sent, or dropped).
	newRing := cluster.NewRing(all, 0)
	for _, p := range peers3 {
		held := make(map[string]bool)
		for _, id := range f.hosts[p].snapshot() {
			held[id] = true
		}
		for _, id := range before[p] {
			if newRing.Owner(id) == p && !held[id] {
				t.Fatalf("%s lost %s although its owner did not change", p, id)
			}
		}
	}
}

// TestJoinIsIdempotent re-joins an existing member and expects the current
// view back with no new transition.
func TestJoinIsIdempotent(t *testing.T) {
	f := newFabric()
	for _, p := range peers3 {
		f.addStatic(t, p, peers3)
	}
	m := f.managers[peers3[1]]
	if err := m.Join(context.Background(), peers3[0]); err != nil {
		t.Fatalf("re-join of an existing member: %v", err)
	}
	if got := m.ViewInfo(); got.Epoch != 1 {
		t.Fatalf("epoch moved to %d on an idempotent join", got.Epoch)
	}
}

// TestLeaveHandsOffEverything drain-leaves one member and checks it holds
// nothing afterwards while the survivors own everything per the shrunken
// ring.
func TestLeaveHandsOffEverything(t *testing.T) {
	f := newFabric()
	for _, p := range peers3 {
		f.addStatic(t, p, peers3)
	}
	ids := f.seed(t, peers3, 24)

	leaver := peers3[2]
	if err := f.managers[leaver].Leave(context.Background()); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if got := f.hosts[leaver].snapshot(); len(got) != 0 {
		t.Fatalf("leaver still holds %v", got)
	}
	rest := peers3[:2]
	expectPlacement(t, f, rest, ids)
	for _, p := range rest {
		if got := f.managers[p].ViewInfo(); got.Epoch != 2 || len(got.Members) != 2 {
			t.Fatalf("%s: epoch=%d members=%v after leave", p, got.Epoch, got.Members)
		}
	}
}

// TestFailedTransferAbortsTheTransition makes the joiner unable to install
// transferred scenarios: the join must fail, every member must stay on
// epoch 1 with no open window, and no scenario may have been dropped.
func TestFailedTransferAbortsTheTransition(t *testing.T) {
	f := newFabric()
	for _, p := range peers3 {
		f.addStatic(t, p, peers3)
	}
	ids := f.seed(t, peers3, 24)

	joiner := "http://n4:1"
	jc, err := cluster.NewJoining(joiner, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	jm := f.add(t, joiner, jc)
	f.mu.Lock()
	f.failInstall[joiner] = true
	f.mu.Unlock()

	if err := jm.Join(context.Background(), peers3[0]); err == nil {
		t.Fatal("join succeeded although every transfer failed")
	}
	for _, p := range peers3 {
		got := f.managers[p].ViewInfo()
		if got.Epoch != 1 || got.Transition != "stable" {
			t.Fatalf("%s: epoch=%d transition=%s after aborted join", p, got.Epoch, got.Transition)
		}
	}
	expectPlacement(t, f, peers3, ids)

	// The cluster must accept a later transition: retry with the install
	// failure cleared.
	f.mu.Lock()
	f.failInstall[joiner] = false
	f.mu.Unlock()
	if err := jm.Join(context.Background(), peers3[0]); err != nil {
		t.Fatalf("join after cleared failure: %v", err)
	}
	expectPlacement(t, f, append(append([]string(nil), peers3...), joiner), ids)
}

// TestBusyClusterRefusesSecondTransition opens a window by hand and checks
// a concurrent join is refused with ErrBusy rather than interleaving.
func TestBusyClusterRefusesSecondTransition(t *testing.T) {
	f := newFabric()
	for _, p := range peers3 {
		f.addStatic(t, p, peers3)
	}
	seedMgr := f.managers[peers3[0]]
	cur := cluster.View{Epoch: 1, Members: peers3}
	prop := cluster.View{Epoch: 2, Members: append(append([]string(nil), peers3...), "http://n9:1")}
	if err := seedMgr.HandlePropose(context.Background(), membership.ProposeRequest{
		Current: cur, Proposed: prop, Coordinator: peers3[1],
	}); err != nil {
		t.Fatal(err)
	}
	_, err := seedMgr.HandleJoin(context.Background(), membership.JoinRequest{Self: "http://n5:1"})
	if !errors.Is(err, membership.ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	seedMgr.HandleAbort(membership.AbortRequest{Epoch: 2})
}

// waitStable polls until the member reports a closed window (or fails the
// test after two seconds).
func waitStable(t *testing.T, m *membership.Manager) membership.ViewResponse {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if got := m.ViewInfo(); got.Transition == "stable" {
			return got
		}
		time.Sleep(5 * time.Millisecond)
	}
	got := m.ViewInfo()
	t.Fatalf("window never closed: epoch=%d transition=%s", got.Epoch, got.Transition)
	return got
}

// TestWatchdogAbortsOrphanedWindow kills the coordinator right after its
// propose landed: the member's window watchdog must notice and self-abort
// instead of returning 409 to every future transition forever.
func TestWatchdogAbortsOrphanedWindow(t *testing.T) {
	f := newFabric()
	for _, p := range peers3 {
		cl, err := cluster.New(cluster.Config{Self: p, Peers: peers3})
		if err != nil {
			t.Fatal(err)
		}
		f.addTuned(t, p, cl, 50*time.Millisecond, 50*time.Millisecond)
	}
	m, coordinator := f.managers[peers3[0]], peers3[1]
	cur := cluster.View{Epoch: 1, Members: peers3}
	prop := cluster.View{Epoch: 2, Members: append(append([]string(nil), peers3...), "http://n9:1")}
	if err := m.HandlePropose(context.Background(), membership.ProposeRequest{
		Current: cur, Proposed: prop, Coordinator: coordinator,
	}); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	f.down[coordinator] = true
	f.mu.Unlock()

	got := waitStable(t, m)
	if got.Epoch != 1 {
		t.Fatalf("epoch = %d after watchdog abort, want 1", got.Epoch)
	}
	// The member must accept transitions again.
	if _, err := m.HandleJoin(context.Background(), membership.JoinRequest{Self: "http://n5:1"}); errors.Is(err, membership.ErrBusy) {
		t.Fatal("member still busy after watchdog abort")
	}
}

// TestWatchdogAdoptsCommittedEpoch makes a member miss the commit
// broadcast: the watchdog's coordinator probe sees the advanced epoch and
// closes the window by adopting the committed view.
func TestWatchdogAdoptsCommittedEpoch(t *testing.T) {
	f := newFabric()
	for _, p := range peers3 {
		cl, err := cluster.New(cluster.Config{Self: p, Peers: peers3})
		if err != nil {
			t.Fatal(err)
		}
		f.addTuned(t, p, cl, 50*time.Millisecond, 50*time.Millisecond)
	}
	m, coord := f.managers[peers3[0]], f.managers[peers3[1]]
	cur := cluster.View{Epoch: 1, Members: peers3}
	members := append(append([]string(nil), peers3...), "http://n9:1")
	prop := cluster.View{Epoch: 2, Members: members}
	req := membership.ProposeRequest{Current: cur, Proposed: prop, Coordinator: peers3[1]}
	if err := m.HandlePropose(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if err := coord.HandlePropose(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	// The coordinator commits; the broadcast to m is "lost".
	if err := coord.HandleCommit(membership.CommitRequest{Epoch: 2, Members: members}); err != nil {
		t.Fatal(err)
	}

	got := waitStable(t, m)
	if got.Epoch != 2 {
		t.Fatalf("epoch = %d after watchdog catch-up, want 2", got.Epoch)
	}
}
