package status

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/certain"
	"repro/internal/chase"
	"repro/internal/cwa"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Kind
	}{
		{nil, OK},
		{cwa.ErrNoSolution, NoSolution},
		{fmt.Errorf("wrapped: %w", cwa.ErrNoSolution), NoSolution},
		{chase.ErrCanceled, Timeout},
		{fmt.Errorf("run: %w", chase.ErrCanceled), Timeout},
		{context.DeadlineExceeded, Timeout},
		{chase.ErrBudgetExceeded, Budget},
		{certain.ErrTooManyNulls, TooLarge},
		{cwa.ErrEnumerationTruncated, TooLarge},
		{errors.New("boom"), Internal},
		{WithKind(errors.New("bad query"), Usage), Usage},
		{WithKind(errors.New("version moved"), Conflict), Conflict},
		{fmt.Errorf("outer: %w", WithKind(errors.New("bad"), Usage)), Usage},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestExitAndHTTPTables(t *testing.T) {
	type row struct {
		kind Kind
		exit int
		http int
		code string
	}
	rows := []row{
		{OK, 0, 200, "ok"},
		{NoSolution, 1, 404, "no_solution"},
		{Usage, 2, 400, "usage"},
		{Timeout, 3, 504, "timeout"},
		{Budget, 3, 422, "budget_exceeded"},
		{TooLarge, 3, 413, "too_large"},
		{Conflict, 5, 409, "conflict"},
		{Internal, 4, 500, "internal"},
	}
	for _, r := range rows {
		if got := r.kind.ExitCode(); got != r.exit {
			t.Errorf("%v.ExitCode() = %d, want %d", r.kind, got, r.exit)
		}
		if got := r.kind.HTTPStatus(); got != r.http {
			t.Errorf("%v.HTTPStatus() = %d, want %d", r.kind, got, r.http)
		}
		if got := r.kind.String(); got != r.code {
			t.Errorf("%v.String() = %q, want %q", r.kind, got, r.code)
		}
	}
}

func TestWithKindNil(t *testing.T) {
	if WithKind(nil, Usage) != nil {
		t.Fatal("WithKind(nil) must stay nil")
	}
}
