// Package status is the single error-mapping table shared by the process
// boundaries: cmd/dxcli turns evaluation outcomes into exit codes, and
// internal/server turns the same outcomes into HTTP status codes and JSON
// error codes. Keeping one classification here guarantees that a script
// driving dxcli and a client driving dxserver observe the same taxonomy:
//
//	kind          exit  HTTP  meaning
//	OK            0     200   the run succeeded
//	NoSolution    1     404   no (CWA-)solution exists: the chase failed on an egd
//	Usage         2     400   bad input: parse error, unknown flag/semantics, missing argument
//	Timeout       3     504   the run's deadline expired (chase.ErrCanceled)
//	Budget        3     422   the deterministic step budget was exhausted (chase.ErrBudgetExceeded)
//	TooLarge      3     413   a size bound refused the request (too many nulls, enumeration truncated)
//	Conflict      5     409   a mutation raced a concurrent update (base version mismatch)
//	PeerUnavailable 6   502   cluster: the owning node could not be reached after retries
//	ForwardLoop   6     508   cluster: a forwarded request exceeded the hop bound (peer lists disagree)
//	Internal      4     500   anything else
package status

import (
	"context"
	"errors"

	"repro/internal/certain"
	"repro/internal/chase"
	"repro/internal/cwa"
)

// Kind is the canonical outcome class of an evaluation.
type Kind int

const (
	// OK is a successful run.
	OK Kind = iota
	// NoSolution reports that no (CWA-)solution exists for the input.
	NoSolution
	// Usage reports malformed input: parse errors, unknown semantics,
	// missing required arguments.
	Usage
	// Timeout reports a run aborted by deadline or cancellation.
	Timeout
	// Budget reports a run that exhausted its chase step budget.
	Budget
	// TooLarge reports a run refused or truncated by a size bound.
	TooLarge
	// Conflict reports a mutation that lost a race: its base version no
	// longer matches the scenario (someone else mutated it first).
	Conflict
	// PeerUnavailable reports a cluster forward that could not reach the
	// scenario's owning node after retries.
	PeerUnavailable
	// ForwardLoop reports a forwarded request cut by the hop bound —
	// members hold disagreeing peer lists, so no node accepts ownership.
	ForwardLoop
	// Internal is every other failure.
	Internal
)

// String returns the stable machine-readable code used in JSON error
// bodies.
func (k Kind) String() string {
	switch k {
	case OK:
		return "ok"
	case NoSolution:
		return "no_solution"
	case Usage:
		return "usage"
	case Timeout:
		return "timeout"
	case Budget:
		return "budget_exceeded"
	case TooLarge:
		return "too_large"
	case Conflict:
		return "conflict"
	case PeerUnavailable:
		return "peer_unavailable"
	case ForwardLoop:
		return "forward_loop"
	}
	return "internal"
}

// ExitCode returns the dxcli exit code for the kind (see the package
// comment's table).
func (k Kind) ExitCode() int {
	switch k {
	case OK:
		return 0
	case NoSolution:
		return 1
	case Usage:
		return 2
	case Timeout, Budget, TooLarge:
		return 3
	case Conflict:
		return 5
	case PeerUnavailable, ForwardLoop:
		return 6
	}
	return 4
}

// HTTPStatus returns the HTTP status code dxserver sends for the kind.
func (k Kind) HTTPStatus() int {
	switch k {
	case OK:
		return 200
	case NoSolution:
		return 404
	case Usage:
		return 400
	case Timeout:
		return 504
	case Budget:
		return 422
	case TooLarge:
		return 413
	case Conflict:
		return 409
	case PeerUnavailable:
		return 502
	case ForwardLoop:
		return 508
	}
	return 500
}

// kindError attaches an explicit Kind to an error; Classify honours it
// before consulting the sentinel table.
type kindError struct {
	kind Kind
	err  error
}

func (e *kindError) Error() string { return e.err.Error() }
func (e *kindError) Unwrap() error { return e.err }

// WithKind returns err annotated with an explicit kind, for failure modes
// the sentinel table cannot see (e.g. parse errors, which are plain
// fmt.Errorf values from the parser). A nil err stays nil.
func WithKind(err error, k Kind) error {
	if err == nil {
		return nil
	}
	return &kindError{kind: k, err: err}
}

// Classify maps an error to its Kind: explicit WithKind annotations first,
// then the evaluation engine's sentinels, then Internal. A nil error is OK.
func Classify(err error) Kind {
	if err == nil {
		return OK
	}
	var ke *kindError
	switch {
	case errors.As(err, &ke):
		return ke.kind
	case errors.Is(err, cwa.ErrNoSolution) || chase.IsEgdFailure(err):
		return NoSolution
	case errors.Is(err, chase.ErrCanceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return Timeout
	case errors.Is(err, chase.ErrBudgetExceeded):
		return Budget
	case errors.Is(err, certain.ErrTooManyNulls),
		errors.Is(err, cwa.ErrEnumerationTruncated):
		return TooLarge
	}
	return Internal
}
