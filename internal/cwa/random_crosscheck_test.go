package cwa

import (
	"testing"

	"repro/internal/chase"
	"repro/internal/genwl"
	"repro/internal/hom"
	"repro/internal/score"
)

// Cross-check the whole pipeline on randomly generated richly acyclic
// settings and sources: chase → solution; core → CWA-solution (Thm 5.1);
// canonical α-chase → presolution whose result is hom-equivalent to the
// chase result; for egd settings the chase may fail, in which case no
// CWA-solution exists (Cor 5.2).
func TestRandomSettingsPipeline(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		withEgd := seed%3 == 0
		s := genwl.RandomRichlyAcyclic(seed, withEgd)
		src := genwl.RandomLayeredSource(4+int(seed%5), seed*7)

		res, err := chase.Standard(s, src, chase.Options{MaxSteps: 50000})
		if err != nil {
			if chase.IsEgdFailure(err) {
				// Corollary 5.2: then there is no CWA-solution either.
				if exists, err2 := Exists(s, src, chase.Options{MaxSteps: 50000}); err2 != nil || exists {
					t.Errorf("seed %d: chase failed but Exists=%v err=%v", seed, exists, err2)
				}
				continue
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !chase.IsSolution(s, src, res.Target) {
			t.Errorf("seed %d: chase result not a solution", seed)
			continue
		}
		core, err := Minimal(s, src, chase.Options{MaxSteps: 50000})
		if err != nil {
			t.Fatalf("seed %d: Minimal: %v", seed, err)
		}
		if !score.IsCore(core) {
			t.Errorf("seed %d: Minimal not a core", seed)
		}
		ok, err := IsCWASolution(s, src, core, chase.Options{MaxSteps: 50000})
		if err != nil || !ok {
			t.Errorf("seed %d: core is not a CWA-solution (%v, %v): %v", seed, ok, err, core)
		}
		cres, _, err := chase.Canonical(s, src, chase.Options{MaxSteps: 50000})
		if err != nil {
			t.Fatalf("seed %d: canonical: %v", seed, err)
		}
		if !chase.IsSolution(s, src, cres.Target) {
			t.Errorf("seed %d: canonical result not a solution", seed)
		}
		if !hom.Exists(cres.Target, res.Target) || !hom.Exists(res.Target, cres.Target) {
			t.Errorf("seed %d: canonical and standard results not hom-equivalent", seed)
		}
		if !IsCWAPresolution(s, src, cres.Target) {
			t.Errorf("seed %d: canonical result not a presolution: %v", seed, cres.Target)
		}
	}
}
