package cwa

import (
	"fmt"
	"strings"

	"repro/internal/hom"
	"repro/internal/instance"
)

// This file provides the Section 5 order-theoretic analysis of the
// CWA-solution space: minimality ("contained, up to renaming of nulls, in
// every CWA-solution") and maximality ("every CWA-solution is a
// homomorphic image").

// IsMinimalAmong reports whether t is contained, up to renaming of nulls,
// in every instance of sols — the paper's minimality. Containment up to
// renaming is an injective homomorphism (its image is the renamed copy).
func IsMinimalAmong(t *instance.Instance, sols []*instance.Instance) bool {
	for _, s := range sols {
		if _, ok := hom.Find(t, s, hom.Injective()); !ok {
			return false
		}
	}
	return true
}

// IsMaximalAmong reports whether every instance of sols is a homomorphic
// image of t — the paper's maximality.
func IsMaximalAmong(t *instance.Instance, sols []*instance.Instance) bool {
	for _, s := range sols {
		if _, ok := hom.FindOnto(t, s, 0); !ok {
			return false
		}
	}
	return true
}

// MinimalOf returns the indexes of the minimal elements of sols.
func MinimalOf(sols []*instance.Instance) []int {
	var out []int
	for i, s := range sols {
		if IsMinimalAmong(s, sols) {
			out = append(out, i)
		}
	}
	return out
}

// MaximalOf returns the indexes of the maximal elements of sols.
func MaximalOf(sols []*instance.Instance) []int {
	var out []int
	for i, s := range sols {
		if IsMaximalAmong(s, sols) {
			out = append(out, i)
		}
	}
	return out
}

// DescribeSpace renders a human-readable report on a set of CWA-solutions:
// each solution with its size, which are minimal/maximal (Section 5), and
// how many are pairwise incomparable. Used by dxcli enum.
func DescribeSpace(sols []*instance.Instance) string {
	if len(sols) == 0 {
		return "no CWA-solutions\n"
	}
	mins := toSet(MinimalOf(sols))
	maxs := toSet(MaximalOf(sols))
	_, inc := Incomparable(sols)
	incSet := toSet(inc)
	var b strings.Builder
	fmt.Fprintf(&b, "%d CWA-solutions (up to isomorphism):\n", len(sols))
	for i, s := range sols {
		var marks []string
		if mins[i] {
			marks = append(marks, "minimal")
		}
		if maxs[i] {
			marks = append(marks, "maximal")
		}
		if incSet[i] {
			marks = append(marks, "top")
		}
		suffix := ""
		if len(marks) > 0 {
			suffix = "  [" + strings.Join(marks, ", ") + "]"
		}
		fmt.Fprintf(&b, "  %2d: %d atoms  %v%s\n", i+1, s.Len(), s, suffix)
	}
	switch {
	case len(maxs) == 1:
		b.WriteString("a unique maximal CWA-solution exists (guaranteed for the Proposition 5.4 classes)\n")
	case len(maxs) == 0:
		fmt.Fprintf(&b, "no maximal CWA-solution; %d pairwise-incomparable tops (cf. Example 5.3)\n", len(inc))
	}
	return b.String()
}

func toSet(idx []int) map[int]bool {
	out := make(map[int]bool, len(idx))
	for _, i := range idx {
		out[i] = true
	}
	return out
}
