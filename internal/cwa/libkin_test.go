package cwa

import (
	"testing"

	"repro/internal/chase"
	"repro/internal/hom"
	"repro/internal/instance"
)

// Section 3 / Section 4 remark: for data exchange settings WITHOUT target
// dependencies our notions coincide with Libkin's (PODS'06). The paper
// lists three CWA-solutions of Example 2.1's source under the setting
// obtained by REMOVING the target dependencies:
//
//	{E(a,b), F(a,⊥1)}
//	{E(a,b), E(a,⊥1), F(a,⊥2)}
//	{E(a,b), E(a,⊥1), E(a,⊥2), F(a,⊥3)}
//
// (and these are NOT solutions once d3/d4 are added back). Under
// Definition 4.6/4.7 with the [6,7]-homomorphisms this paper adopts
// (footnote 3: nulls may map to constants; Libkin's variant maps nulls to
// nulls), the variants in which the two F-justifications take distinct
// values — e.g. {E(a,b), F(a,⊥0), F(a,⊥1)} — are also successful-α-chase
// results and also universal, so the exhaustive enumeration finds six
// CWA-solutions containing the paper's three. We assert containment of the
// three and that every enumerated instance passes the independent
// Definition 4.6/4.7 checks.
func TestLibkinCWASolutionsWithoutTargetDeps(t *testing.T) {
	noTargetDeps := mustSetting(t, `
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
`)
	src := mustInstance(t, `M(a,b). N(a,b). N(a,c).`)
	sols, err := Enumerate(noTargetDeps, src, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []*instance.Instance{
		mustInstance(t, `E(a,b). F(a,_1).`),
		mustInstance(t, `E(a,b). E(a,_1). F(a,_2).`),
		mustInstance(t, `E(a,b). E(a,_1). E(a,_2). F(a,_3).`),
	}
	if len(sols) != 6 {
		t.Fatalf("expected 6 CWA-solutions under [6,7]-homomorphisms, got %d:\n%v", len(sols), sols)
	}
	for _, w := range want {
		found := false
		for _, got := range sols {
			if hom.Isomorphic(got, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing Libkin CWA-solution %v", w)
		}
	}
	for _, sol := range sols {
		ok, err := IsCWASolution(noTargetDeps, src, sol, chase.Options{})
		if err != nil || !ok {
			t.Errorf("enumerated %v fails the independent CWA-solution check", sol)
		}
	}
	// None of them is a solution under the full Example 2.1 setting — the
	// paper's point for why the notion had to be extended ("But these are
	// no solutions for S under D!").
	full := mustSetting(t, example21)
	for _, w := range want {
		if chase.IsSolution(full, src, w) {
			t.Errorf("%v must not be a solution once d3/d4 are present", w)
		}
	}
}
