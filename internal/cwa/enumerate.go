package cwa

import (
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/chase"
	"repro/internal/dependency"
	"repro/internal/hom"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/query"
)

// EnumOptions bounds the exhaustive enumeration of CWA-solutions.
type EnumOptions struct {
	// MaxStates bounds the number of search states explored (default 200000).
	MaxStates int
	// MaxSolutions stops after this many CWA-solutions (0 = unbounded).
	MaxSolutions int
	// MaxNullsPerState prunes runaway branches (default 64).
	MaxNullsPerState int
	// ChaseOptions is used for the universality check; its Ctx also cancels
	// the enumeration itself (Enumerate then returns chase.ErrCanceled).
	ChaseOptions chase.Options
	// Workers bounds the number of goroutines expanding branches
	// concurrently (0 = GOMAXPROCS, 1 = sequential). The solution set is
	// identical for every worker count; with bounds in play, which states
	// are reached before truncation may differ.
	Workers int
	// Stats, if non-nil, receives search statistics.
	Stats *EnumStats
}

// EnumStats reports how an enumeration went.
type EnumStats struct {
	// States is the number of search states explored.
	States int
	// PrunedEgd counts states discarded for violating an egd.
	PrunedEgd int
	// PrunedUniversality counts states discarded because their target
	// reduct already had no homomorphism into the universal solution.
	PrunedUniversality int
	// Found is the number of CWA-solutions returned (up to isomorphism).
	Found int
	// Truncated reports whether a bound was hit.
	Truncated bool
}

func (o EnumOptions) maxStates() int {
	if o.MaxStates > 0 {
		return o.MaxStates
	}
	return 200000
}

func (o EnumOptions) maxNulls() int {
	if o.MaxNullsPerState > 0 {
		return o.MaxNullsPerState
	}
	return 64
}

func (o EnumOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ErrEnumerationTruncated reports that the search hit a bound, so the
// returned list may be incomplete.
var ErrEnumerationTruncated = errors.New("cwa: enumeration truncated by limits")

// Enumerate exhaustively enumerates the CWA-solutions for src under s, up
// to isomorphism (renaming of nulls).
//
// The search walks all successful α-chases: states are (instance, partial α)
// pairs; at each state every justification whose α-value is already chosen
// is fired to closure, then the first unresolved justification branches over
// its possible witness tuples. Candidate witness values are the current
// active domain plus fresh nulls in canonical order — sufficient for
// CWA-solutions because a universal solution cannot use constants beyond
// those forced by the source and the dependencies. States violating an egd
// are pruned (a successful chase never applies an egd, Lemma 4.5). Complete
// states are filtered by universality (Theorem 4.8) and deduplicated up to
// isomorphism.
//
// Branches are expanded by up to opt.Workers goroutines. Solutions are
// reported in canonical null form, with the lexicographically least member
// of each isomorphism class as representative, sorted — so the returned
// slice is identical for every worker count (absent truncation).
//
// The error is ErrEnumerationTruncated when a bound was hit (the result may
// then be incomplete), chase.ErrCanceled when opt.ChaseOptions.Ctx was
// canceled, or a chase error from the universality check.
func Enumerate(s *dependency.Setting, src *instance.Instance, opt EnumOptions) ([]*instance.Instance, error) {
	u, err := chase.UniversalSolution(s, src, opt.ChaseOptions)
	if err != nil {
		if chase.IsEgdFailure(err) {
			return nil, nil // no solutions at all
		}
		return nil, err
	}

	workers := opt.workers()
	e := &enumerator{
		s:         s,
		src:       src,
		universal: u,
		opt:       opt,
		univCache: newUnivMemo(univCacheCap),
		sem:       make(chan struct{}, workers-1),
	}
	// s-t tgd bodies are evaluated on the σ-reduct, which never changes
	// during the walk (states only add target atoms; egd violations prune
	// rather than rewrite), so their matches — and their justification keys —
	// are computed once up front and shared read-only by every state.
	// Conjunctive bodies are kept as slot environments so each state fires
	// them via the slot path; FO bodies keep their Binding.
	e.stMatches = make(map[*dependency.TGD][]stMatch, len(s.ST))
	var srcReduct *instance.Instance
	for _, d := range s.ST {
		var ms []stMatch
		if d.BodyAtoms != nil {
			if srcReduct == nil {
				srcReduct = src.Reduct(s.Source)
			}
			envs, keys := chase.BodyEnvsKeyed(d, srcReduct)
			ms = make([]stMatch, len(envs))
			for i := range envs {
				ms[i] = stMatch{senv: envs[i], key: keys[i]}
			}
		} else {
			bs := chase.BodyMatches(s, d, src)
			ms = make([]stMatch, len(bs))
			for i, env := range bs {
				ms[i] = stMatch{env: env, key: chase.JustificationKeyOf(d, env)}
			}
		}
		e.stMatches[d] = ms
	}
	e.allTGDs = s.AllTGDs()
	// The walk carries only the target part of each state: every dependency
	// evaluated during the walk is over τ (s-t matches are precomputed
	// above), so the σ atoms would only be dead weight in the per-state
	// clones, reducts and content keys. The source active domain still
	// contributes witness candidates, via srcDom.
	e.srcDom = src.Dom()
	e.walk(instance.New(), map[string]query.Binding{}, 0, nil, nil, nil, nil)
	e.wg.Wait()

	sort.Slice(e.found, func(i, j int) bool { return e.found[i].key < e.found[j].key })
	out := make([]*instance.Instance, len(e.found))
	for i, f := range e.found {
		out[i] = f.t
	}
	if opt.Stats != nil {
		*opt.Stats = EnumStats{
			States:             int(e.states.Load()),
			PrunedEgd:          int(e.prunedEgd.Load()),
			PrunedUniversality: int(e.prunedUniv.Load()),
			Found:              len(out),
			Truncated:          e.truncated.Load(),
		}
	}
	if err := chase.ContextErr(opt.ChaseOptions.Ctx); err != nil {
		return out, err
	}
	if e.truncated.Load() {
		return out, ErrEnumerationTruncated
	}
	return out, nil
}

// foundSol pairs a canonical-form solution with its sort/dedup key.
type foundSol struct {
	t   *instance.Instance
	key string
}

// stMatch is one precomputed s-t body match: a BodyPlan slot environment for
// conjunctive bodies, a Binding for FO bodies, plus the justification key.
type stMatch struct {
	env  query.Binding    // FO body match (nil when senv is set)
	senv []instance.Value // conjunctive body match, BodyPlan slot order
	key  string
}

// openMatch is one body match at a state's closure fixpoint: the potential
// justification (d, ū, v̄) identified by key, with the match kept as a slot
// environment (conjunctive bodies) or a Binding (FO s-t bodies). Fixpoint
// match lists are inherited by child states read-only: a child's instance is
// its parent's plus one new firing, so only the delta rounds differ.
type openMatch struct {
	d    *dependency.TGD
	senv []instance.Value // body match, BodyPlan slot order (nil for FO s-t)
	env  query.Binding    // FO s-t body match (nil when senv is set)
	key  string
}

type enumerator struct {
	s         *dependency.Setting
	src       *instance.Instance
	universal *instance.Instance
	opt       EnumOptions
	// stMatches holds the (constant) body matches of every s-t tgd, computed
	// once in Enumerate; matches and keys are shared read-only.
	stMatches map[*dependency.TGD][]stMatch
	allTGDs   []*dependency.TGD
	// srcDom is the source active domain (sorted); merged with each state's
	// target domain to form the witness candidate pool.
	srcDom []instance.Value

	// univCache memoizes the universality prune by target-reduct content:
	// whether a hom into the universal solution exists is a pure function of
	// the reduct's atom set, and sibling branches frequently reach identical
	// reducts. Sound because reducts are fresh instances never mutated after
	// the check. LRU-bounded at univCacheCap so adversarial settings cannot
	// grow it without limit; an eviction only costs a recomputation.
	univCache *univMemo

	sem chan struct{} // bounds extra walker goroutines (cap workers-1)
	wg  sync.WaitGroup

	states     atomic.Int64
	prunedEgd  atomic.Int64
	prunedUniv atomic.Int64
	truncated  atomic.Bool
	canceled   atomic.Bool

	mu    sync.Mutex
	found []*foundSol
	// seen memoizes emitted target reducts by exact content
	// (instance.ContentKey): distinct chase branches frequently complete in
	// the very same instance, and a repeat can change neither the
	// isomorphism classes nor their representatives, so its canonical-form
	// and isomorphism work is skipped. Sound only because emitted instances
	// are never mutated afterwards (emit stores a fresh canonical copy).
	seen map[string]struct{}
}

// stopped reports whether the search should unwind: a bound was hit or the
// context was canceled.
func (e *enumerator) stopped() bool {
	return e.truncated.Load() || e.canceled.Load()
}

// spawnOrWalk explores the state on a fresh goroutine when a worker slot is
// free, inline otherwise. cur, alpha and fireAtoms must be private to the
// callee; inherited, base and pending are shared read-only (see walk).
func (e *enumerator) spawnOrWalk(cur *instance.Instance, alpha map[string]query.Binding, nextNull int64, inherited []openMatch, fireAtoms []instance.Atom, base *hom.Search, pending []instance.Atom) {
	select {
	case e.sem <- struct{}{}:
		e.wg.Add(1)
		metrics.GoroutinesSpawned.Inc()
		go func() {
			defer func() { <-e.sem; e.wg.Done() }()
			e.walk(cur, alpha, nextNull, inherited, fireAtoms, base, pending)
		}()
	default:
		e.walk(cur, alpha, nextNull, inherited, fireAtoms, base, pending)
	}
}

// emit records a complete state's target reduct, deduplicating up to
// isomorphism. Each isomorphism class keeps the lexicographically least
// canonical form seen, so the final (sorted) output does not depend on
// discovery order and hence not on the worker count.
func (e *enumerator) emit(t *instance.Instance, ck string) {
	e.mu.Lock()
	if _, dup := e.seen[ck]; dup {
		e.mu.Unlock()
		return
	}
	if e.seen == nil {
		e.seen = make(map[string]struct{})
	}
	e.seen[ck] = struct{}{}
	e.mu.Unlock()
	c := hom.CanonicalNullForm(t)
	key := c.String()
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, prev := range e.found {
		if hom.Isomorphic(prev.t, c) {
			if key < prev.key {
				prev.t, prev.key = c, key
			}
			return
		}
	}
	e.found = append(e.found, &foundSol{t: c, key: key})
	if e.opt.MaxSolutions > 0 && len(e.found) >= e.opt.MaxSolutions {
		e.truncated.Store(true)
	}
}

// universality decides whether cur maps homomorphically into the universal
// solution, incrementally: the parent state's compiled search (base) is
// extended by the atoms added since it was compiled (pending, accumulated
// across memoized ancestors, plus this state's own additions since mBase)
// instead of recompiling cur from scratch; only the root state (base nil)
// compiles from scratch. The extended search runs in ExistsAC decision mode:
// the posting-list arc-consistency pass over the compiled occurrence lists
// refutes or confirms most states outright, and only genuinely ambiguous
// ones pay for backtracking. The materialized search is returned for the
// state's children to extend in turn.
func (e *enumerator) universality(cur *instance.Instance, base *hom.Search, pending []instance.Atom, mBase instance.Mark) (bool, *hom.Search) {
	var s *hom.Search
	if base == nil {
		s = hom.CompileSource(cur)
	} else {
		s = base.Extend(appendDelta(pending, cur, mBase))
	}
	return s.ExistsAC(e.universal), s
}

// appendDelta returns pending plus the atoms cur gained since the mark, with
// owned Args copies (EachAddedBetween hands out a shared scratch buffer).
// pending itself is never written: hand-off capacity-trimming makes the
// append reallocate, so sibling states sharing one pending list stay
// independent.
func appendDelta(pending []instance.Atom, cur *instance.Instance, since instance.Mark) []instance.Atom {
	out := pending
	cur.EachAddedBetween(since, cur.Mark(), func(a instance.Atom) bool {
		out = append(out, instance.Atom{Rel: a.Rel, Args: append([]instance.Value(nil), a.Args...)})
		return true
	})
	return out
}

// nfound returns the current number of isomorphism classes found.
func (e *enumerator) nfound() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.found)
}

// walk explores the state (cur, alpha), where cur is the state's target
// instance (the σ part of every state is the never-changing source, kept out
// of the per-state clones; all dependencies fired here are over τ): fire
// chosen justifications to closure, prune on egd violations, then branch on
// the first unresolved justification. nextNull is the next fresh null label
// for canonical naming. cur and alpha are owned by this call.
//
// inherited, when non-nil, is the parent state's fixpoint match list and
// fireAtoms the head atoms of the single newly resolved justification
// (instantiated by the parent's branch step, which already needed them for
// the pre-spawn refute): cur already contains every atom the parent fired,
// so instead of re-enumerating all tgd bodies from scratch the walk adds
// just the new firing's atoms and lets the semi-naive delta rounds discover
// the consequences. The inherited entries (and their environments) are
// shared read-only across sibling branches and goroutines; appends stay
// private because the slice is capacity-trimmed at hand-off. A nil inherited
// (the root state) builds the list with a full enumeration.
//
// base and pending thread the incremental universality check: base is the
// compiled hom search of the nearest ancestor state that materialized one,
// pending the atoms added between that compile and this state's clone point
// (states whose check was memoized or decided by the prefilter never
// compile, so their deltas accumulate). Both are shared read-only across
// siblings, pending under the same capacity-trim discipline as inherited.
func (e *enumerator) walk(cur *instance.Instance, alpha map[string]query.Binding, nextNull int64, inherited []openMatch, fireAtoms []instance.Atom, base *hom.Search, pending []instance.Atom) {
	if err := chase.ContextErr(e.opt.ChaseOptions.Ctx); err != nil {
		e.canceled.Store(true)
		return
	}
	if e.stopped() {
		return
	}
	metrics.EnumStates.Inc()
	if e.states.Add(1) > int64(e.opt.maxStates()) ||
		(e.opt.MaxSolutions > 0 && e.nfound() >= e.opt.MaxSolutions) {
		e.truncated.Store(true)
		return
	}
	if cur.NullCount() > e.opt.maxNulls() {
		e.truncated.Store(true)
		return
	}

	// Close under already-chosen justifications, semi-naively. An inherited
	// state starts from its parent's fixpoint: cur already holds every
	// previously fired atom, so only the one newly resolved justification is
	// fired and the delta rounds take it from there. The root state builds
	// the match list with a full enumeration and fires every chosen match.
	// Later rounds only join the atoms added by the previous round against
	// each target tgd (a new match of a monotone conjunctive body must use a
	// new atom); the delta is a watermark interval over cur's insertion log —
	// no copied atom sets; cur only grows during the closure, so marks stay
	// valid throughout. The accumulated match list — deduplicated by
	// justification key — is exactly the matches at the fixpoint, reused by
	// the first-unresolved scan below. s-t tgds use their precomputed
	// (constant) matches and can only fire in the first round; target tgds
	// (always conjunctive) stay on the slot path.
	var matches []openMatch
	mStart := cur.Mark()
	// The clone-point watermark: everything added from here to the fixpoint
	// is this state's delta over the atoms base already has compiled.
	mBase := mStart
	if inherited != nil {
		matches = inherited
		for _, a := range fireAtoms {
			cur.Add(a)
		}
	} else {
		for _, d := range e.allTGDs {
			if ms, ok := e.stMatches[d]; ok {
				for i := range ms {
					m := &ms[i]
					matches = append(matches, openMatch{d: d, senv: m.senv, env: m.env, key: m.key})
					w, chosen := alpha[m.key]
					if !chosen {
						continue
					}
					var atoms []instance.Atom
					if m.senv != nil {
						atoms = chase.HeadAtomsSlots(d, m.senv, w)
					} else {
						full := m.env.Clone()
						for z, v := range w {
							full[z] = v
						}
						atoms = chase.HeadAtoms(d, full)
					}
					for _, a := range atoms {
						cur.Add(a)
					}
				}
				continue
			}
			envs, keys := chase.BodyEnvsKeyed(d, cur)
			for i, senv := range envs {
				key := keys[i]
				matches = append(matches, openMatch{d: d, senv: senv, key: key})
				w, chosen := alpha[key]
				if !chosen {
					continue
				}
				for _, a := range chase.HeadAtomsSlots(d, senv, w) {
					cur.Add(a)
				}
			}
		}
	}
	var seenKeys map[string]bool
	for {
		mEnd := cur.Mark()
		if mEnd == mStart {
			break // previous round added nothing: fixpoint
		}
		if seenKeys == nil {
			seenKeys = make(map[string]bool, len(matches))
			for i := range matches {
				seenKeys[matches[i].key] = true
			}
		}
		var fresh []openMatch
		for _, d := range e.allTGDs {
			if _, ok := e.stMatches[d]; ok {
				continue
			}
			chase.DeltaBodyEnvsKeyedBetween(d, cur, mStart, mEnd, func(env []instance.Value, key string) bool {
				if seenKeys[key] {
					return true
				}
				seenKeys[key] = true
				senv := append([]instance.Value(nil), env...)
				fresh = append(fresh, openMatch{d: d, senv: senv, key: key})
				return true
			})
		}
		mStart = mEnd
		for _, m := range fresh {
			matches = append(matches, m)
			w, chosen := alpha[m.key]
			if !chosen {
				continue
			}
			for _, a := range chase.HeadAtomsSlots(m.d, m.senv, w) {
				cur.Add(a)
			}
		}
	}

	// Prune: a successful α-chase never violates an egd along the way
	// (adding atoms cannot repair a violation, and applying the egd would
	// contradict Lemma 4.5 for successful chases).
	for _, d := range e.s.EGDs {
		if !chase.SatisfiesEGD(d, cur) {
			e.prunedEgd.Add(1)
			return
		}
	}

	// Prune: universality is antitone in the atom set — if the current
	// target instance already has no homomorphism into the universal
	// solution, no superset can have one (restrict the hom), so the whole
	// subtree contains no CWA-solution (Theorem 4.8). The check is memoized
	// by content (sibling branches frequently reach the same instance); on a
	// miss it runs incrementally off the ancestor's compiled search — see
	// universality.
	ck := cur.ContentKey()
	univ, cached := e.univCache.get(ck)
	var search *hom.Search
	if !cached {
		univ, search = e.universality(cur, base, pending, mBase)
		e.univCache.put(ck, univ)
	}
	if !univ {
		e.prunedUniv.Add(1)
		return
	}
	// Hand the children the freshest compiled search: the one materialized
	// here (its delta is spent), or the ancestor's plus this state's delta.
	if search != nil {
		base, pending = search, nil
	} else {
		pending = appendDelta(pending, cur, mBase)
		pending = pending[:len(pending):len(pending)]
	}

	// Find the first unresolved justification, deterministically, among the
	// fixpoint matches collected above.
	var first *openMatch
	for i := range matches {
		cand := &matches[i]
		if _, chosen := alpha[cand.key]; chosen {
			continue
		}
		if first == nil || cand.key < first.key {
			first = cand
		}
	}

	if first == nil {
		// Complete: every justification resolved and fired; cur is the
		// target of a successful α-chase. Universality already held above.
		e.emit(cur, ck)
		return
	}

	// Branch over witness tuples for the unresolved justification: each
	// existential variable takes an existing domain value (source or target)
	// or a fresh null; fresh nulls are introduced in canonical order to cut
	// symmetry. Each complete witness explores its subtree on a free worker
	// if available. Children inherit this state's fixpoint match list
	// (capacity-trimmed so sibling appends never share a backing slot) and
	// fire only the justification resolved here.
	handoff := matches[:len(matches):len(matches)]
	dom := mergeDom(e.srcDom, cur.Dom())
	d := first.d
	k := len(d.Exists)
	assign := make([]instance.Value, k)
	var rec func(i int, freshUsed int64)
	rec = func(i int, freshUsed int64) {
		if e.stopped() {
			return
		}
		if i == k {
			w := make(query.Binding, k)
			for j, z := range d.Exists {
				w[z] = assign[j]
			}
			// The head atoms this witness would fire. Instantiated here —
			// before the clone — so the delta-only refute below can discard
			// the child without ever materializing it; survivors carry the
			// atoms along instead of re-instantiating in walk.
			var atoms []instance.Atom
			if first.senv != nil {
				atoms = chase.HeadAtomsSlots(d, first.senv, w)
			} else {
				full := first.env.Clone()
				for z, v := range w {
					full[z] = v
				}
				atoms = chase.HeadAtoms(d, full)
			}
			// Pre-spawn prune: the fired atoms are a subset of every instance
			// in the child's subtree, and universality is antitone in the atom
			// set, so if they alone cannot embed into the universal solution
			// (posting-list arc consistency) the subtree holds no CWA-solution
			// — skip the clone, the closure and the state entirely.
			if hom.PrecheckRefute(atoms, e.universal) {
				e.prunedUniv.Add(1)
				return
			}
			alpha2 := make(map[string]query.Binding, len(alpha)+1)
			for kk, vv := range alpha {
				alpha2[kk] = vv
			}
			alpha2[first.key] = w
			e.spawnOrWalk(cur.Clone(), alpha2, nextNull+freshUsed, handoff, atoms, base, pending)
			return
		}
		for _, v := range dom {
			assign[i] = v
			rec(i+1, freshUsed)
		}
		// Previously assigned fresh slots of this witness.
		for f := int64(0); f < freshUsed; f++ {
			assign[i] = instance.Null(nextNull + f)
			rec(i+1, freshUsed)
		}
		// One genuinely new fresh null (introducing more than one new label
		// at position i is symmetric to this choice).
		assign[i] = instance.Null(nextNull + freshUsed)
		rec(i+1, freshUsed+1)
	}
	rec(0, 0)
}

// mergeDom returns the sorted union of two sorted domains (the order of
// instance.Dom), so mergeDom(Dom(S), Dom(T)) == Dom(S ∪ T).
func mergeDom(a, b []instance.Value) []instance.Value {
	out := make([]instance.Value, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case instance.Less(a[i], b[j]):
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Incomparable returns the subsets of solutions that are pairwise
// incomparable: no one is a homomorphic image of another (Example 5.3's
// notion). It reports the solutions that are not a homomorphic image of any
// other solution in the list, along with the full pairwise matrix.
//
// Rows of the matrix are computed concurrently (up to GOMAXPROCS workers);
// the result is deterministic since the entries are independent.
func Incomparable(sols []*instance.Instance) (pairwise [][]bool, incomparable []int) {
	n := len(sols)
	pairwise = make([][]bool, n)
	for i := range pairwise {
		pairwise[i] = make([]bool, n)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers > 1 {
		rows := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			metrics.GoroutinesSpawned.Inc()
			go func() {
				defer wg.Done()
				for i := range rows {
					incomparableRow(sols, pairwise, i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			rows <- i
		}
		close(rows)
		wg.Wait()
	} else {
		for i := 0; i < n; i++ {
			incomparableRow(sols, pairwise, i)
		}
	}
	for j := 0; j < n; j++ {
		image := false
		for i := 0; i < n; i++ {
			if i != j && pairwise[i][j] {
				image = true
				break
			}
		}
		if !image {
			incomparable = append(incomparable, j)
		}
	}
	return pairwise, incomparable
}

// incomparableRow fills row i: pairwise[i][j] reports that sols[j] is a
// homomorphic image of sols[i]. Each call owns its row, so rows can be
// computed concurrently without synchronization.
func incomparableRow(sols []*instance.Instance, pairwise [][]bool, i int) {
	for j := range pairwise[i] {
		if i == j {
			continue
		}
		_, onto := hom.FindOnto(sols[i], sols[j], 0)
		pairwise[i][j] = onto
	}
}

// SortBySize orders instances by atom count then string, for stable output.
func SortBySize(sols []*instance.Instance) {
	sort.Slice(sols, func(i, j int) bool {
		if sols[i].Len() != sols[j].Len() {
			return sols[i].Len() < sols[j].Len()
		}
		return sols[i].String() < sols[j].String()
	})
}
