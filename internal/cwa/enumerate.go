package cwa

import (
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/chase"
	"repro/internal/dependency"
	"repro/internal/hom"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/query"
)

// EnumOptions bounds the exhaustive enumeration of CWA-solutions.
type EnumOptions struct {
	// MaxStates bounds the number of search states explored (default 200000).
	MaxStates int
	// MaxSolutions stops after this many CWA-solutions (0 = unbounded).
	MaxSolutions int
	// MaxNullsPerState prunes runaway branches (default 64).
	MaxNullsPerState int
	// ChaseOptions is used for the universality check; its Ctx also cancels
	// the enumeration itself (Enumerate then returns chase.ErrCanceled).
	ChaseOptions chase.Options
	// Workers bounds the number of goroutines expanding branches
	// concurrently (0 = GOMAXPROCS, 1 = sequential). The solution set is
	// identical for every worker count; with bounds in play, which states
	// are reached before truncation may differ.
	Workers int
	// Stats, if non-nil, receives search statistics.
	Stats *EnumStats
}

// EnumStats reports how an enumeration went.
type EnumStats struct {
	// States is the number of search states explored.
	States int
	// PrunedEgd counts states discarded for violating an egd.
	PrunedEgd int
	// PrunedUniversality counts states discarded because their target
	// reduct already had no homomorphism into the universal solution.
	PrunedUniversality int
	// Found is the number of CWA-solutions returned (up to isomorphism).
	Found int
	// Truncated reports whether a bound was hit.
	Truncated bool
}

func (o EnumOptions) maxStates() int {
	if o.MaxStates > 0 {
		return o.MaxStates
	}
	return 200000
}

func (o EnumOptions) maxNulls() int {
	if o.MaxNullsPerState > 0 {
		return o.MaxNullsPerState
	}
	return 64
}

func (o EnumOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ErrEnumerationTruncated reports that the search hit a bound, so the
// returned list may be incomplete.
var ErrEnumerationTruncated = errors.New("cwa: enumeration truncated by limits")

// Enumerate exhaustively enumerates the CWA-solutions for src under s, up
// to isomorphism (renaming of nulls).
//
// The search walks all successful α-chases: states are (instance, partial α)
// pairs; at each state every justification whose α-value is already chosen
// is fired to closure, then the first unresolved justification branches over
// its possible witness tuples. Candidate witness values are the current
// active domain plus fresh nulls in canonical order — sufficient for
// CWA-solutions because a universal solution cannot use constants beyond
// those forced by the source and the dependencies. States violating an egd
// are pruned (a successful chase never applies an egd, Lemma 4.5). Complete
// states are filtered by universality (Theorem 4.8) and deduplicated up to
// isomorphism.
//
// Branches are expanded by up to opt.Workers goroutines. Solutions are
// reported in canonical null form, with the lexicographically least member
// of each isomorphism class as representative, sorted — so the returned
// slice is identical for every worker count (absent truncation).
//
// The error is ErrEnumerationTruncated when a bound was hit (the result may
// then be incomplete), chase.ErrCanceled when opt.ChaseOptions.Ctx was
// canceled, or a chase error from the universality check.
func Enumerate(s *dependency.Setting, src *instance.Instance, opt EnumOptions) ([]*instance.Instance, error) {
	u, err := chase.UniversalSolution(s, src, opt.ChaseOptions)
	if err != nil {
		if chase.IsEgdFailure(err) {
			return nil, nil // no solutions at all
		}
		return nil, err
	}

	workers := opt.workers()
	e := &enumerator{
		s:         s,
		src:       src,
		universal: u,
		opt:       opt,
		sem:       make(chan struct{}, workers-1),
	}
	e.walk(src.Clone(), map[string]query.Binding{}, 0)
	e.wg.Wait()

	sort.Slice(e.found, func(i, j int) bool { return e.found[i].key < e.found[j].key })
	out := make([]*instance.Instance, len(e.found))
	for i, f := range e.found {
		out[i] = f.t
	}
	if opt.Stats != nil {
		*opt.Stats = EnumStats{
			States:             int(e.states.Load()),
			PrunedEgd:          int(e.prunedEgd.Load()),
			PrunedUniversality: int(e.prunedUniv.Load()),
			Found:              len(out),
			Truncated:          e.truncated.Load(),
		}
	}
	if err := chase.ContextErr(opt.ChaseOptions.Ctx); err != nil {
		return out, err
	}
	if e.truncated.Load() {
		return out, ErrEnumerationTruncated
	}
	return out, nil
}

// foundSol pairs a canonical-form solution with its sort/dedup key.
type foundSol struct {
	t   *instance.Instance
	key string
}

type enumerator struct {
	s         *dependency.Setting
	src       *instance.Instance
	universal *instance.Instance
	opt       EnumOptions

	sem chan struct{} // bounds extra walker goroutines (cap workers-1)
	wg  sync.WaitGroup

	states     atomic.Int64
	prunedEgd  atomic.Int64
	prunedUniv atomic.Int64
	truncated  atomic.Bool
	canceled   atomic.Bool

	mu    sync.Mutex
	found []*foundSol
}

// stopped reports whether the search should unwind: a bound was hit or the
// context was canceled.
func (e *enumerator) stopped() bool {
	return e.truncated.Load() || e.canceled.Load()
}

// spawnOrWalk explores the state on a fresh goroutine when a worker slot is
// free, inline otherwise. cur and alpha must be private to the callee.
func (e *enumerator) spawnOrWalk(cur *instance.Instance, alpha map[string]query.Binding, nextNull int64) {
	select {
	case e.sem <- struct{}{}:
		e.wg.Add(1)
		metrics.GoroutinesSpawned.Inc()
		go func() {
			defer func() { <-e.sem; e.wg.Done() }()
			e.walk(cur, alpha, nextNull)
		}()
	default:
		e.walk(cur, alpha, nextNull)
	}
}

// emit records a complete state's target reduct, deduplicating up to
// isomorphism. Each isomorphism class keeps the lexicographically least
// canonical form seen, so the final (sorted) output does not depend on
// discovery order and hence not on the worker count.
func (e *enumerator) emit(t *instance.Instance) {
	c := hom.CanonicalNullForm(t)
	key := c.String()
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, prev := range e.found {
		if hom.Isomorphic(prev.t, c) {
			if key < prev.key {
				prev.t, prev.key = c, key
			}
			return
		}
	}
	e.found = append(e.found, &foundSol{t: c, key: key})
	if e.opt.MaxSolutions > 0 && len(e.found) >= e.opt.MaxSolutions {
		e.truncated.Store(true)
	}
}

// nfound returns the current number of isomorphism classes found.
func (e *enumerator) nfound() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.found)
}

// walk explores the state (cur, alpha): fire chosen justifications to
// closure, prune on egd violations, then branch on the first unresolved
// justification. nextNull is the next fresh null label for canonical naming.
// cur and alpha are owned by this call; everything else reached through e is
// either read-only (s, src, universal) or synchronized.
func (e *enumerator) walk(cur *instance.Instance, alpha map[string]query.Binding, nextNull int64) {
	if err := chase.ContextErr(e.opt.ChaseOptions.Ctx); err != nil {
		e.canceled.Store(true)
		return
	}
	if e.stopped() {
		return
	}
	metrics.EnumStates.Inc()
	if e.states.Add(1) > int64(e.opt.maxStates()) ||
		(e.opt.MaxSolutions > 0 && e.nfound() >= e.opt.MaxSolutions) {
		e.truncated.Store(true)
		return
	}
	if len(cur.Nulls()) > e.opt.maxNulls() {
		e.truncated.Store(true)
		return
	}

	// Close under already-chosen justifications.
	for {
		progress := false
		for _, d := range e.s.AllTGDs() {
			for _, env := range chase.BodyMatches(e.s, d, cur) {
				key := chase.JustificationKeyOf(d, env)
				w, chosen := alpha[key]
				if !chosen {
					continue
				}
				full := env.Clone()
				for z, v := range w {
					full[z] = v
				}
				for _, a := range chase.HeadAtoms(d, full) {
					if cur.Add(a) {
						progress = true
					}
				}
			}
		}
		if !progress {
			break
		}
	}

	// Prune: a successful α-chase never violates an egd along the way
	// (adding atoms cannot repair a violation, and applying the egd would
	// contradict Lemma 4.5 for successful chases).
	for _, d := range e.s.EGDs {
		if !chase.SatisfiesEGD(d, cur) {
			e.prunedEgd.Add(1)
			return
		}
	}

	// Prune: universality is antitone in the atom set — if the current
	// target reduct already has no homomorphism into the universal solution,
	// no superset can have one (restrict the hom), so the whole subtree
	// contains no CWA-solution (Theorem 4.8).
	if !hom.Exists(cur.Reduct(e.s.Target), e.universal) {
		e.prunedUniv.Add(1)
		return
	}

	// Find the first unresolved justification, deterministically.
	type open struct {
		d   *dependency.TGD
		env query.Binding
		key string
	}
	var first *open
	for _, d := range e.s.AllTGDs() {
		for _, env := range chase.BodyMatches(e.s, d, cur) {
			key := chase.JustificationKeyOf(d, env)
			if _, chosen := alpha[key]; chosen {
				continue
			}
			cand := &open{d: d, env: env, key: key}
			if first == nil || cand.key < first.key {
				first = cand
			}
		}
	}

	if first == nil {
		// Complete: every justification resolved and fired; cur is the
		// result of a successful α-chase. Keep it if universal and new.
		t := cur.Reduct(e.s.Target)
		if !hom.Exists(t, e.universal) {
			return
		}
		e.emit(t)
		return
	}

	// Branch over witness tuples for the unresolved justification: each
	// existential variable takes an existing domain value or a fresh null;
	// fresh nulls are introduced in canonical order to cut symmetry. Each
	// complete witness explores its subtree on a free worker if available.
	dom := cur.Dom()
	d := first.d
	k := len(d.Exists)
	assign := make([]instance.Value, k)
	var rec func(i int, freshUsed int64)
	rec = func(i int, freshUsed int64) {
		if e.stopped() {
			return
		}
		if i == k {
			w := make(query.Binding, k)
			for j, z := range d.Exists {
				w[z] = assign[j]
			}
			alpha2 := make(map[string]query.Binding, len(alpha)+1)
			for kk, vv := range alpha {
				alpha2[kk] = vv
			}
			alpha2[first.key] = w
			e.spawnOrWalk(cur.Clone(), alpha2, nextNull+freshUsed)
			return
		}
		for _, v := range dom {
			assign[i] = v
			rec(i+1, freshUsed)
		}
		// Previously assigned fresh slots of this witness.
		for f := int64(0); f < freshUsed; f++ {
			assign[i] = instance.Null(nextNull + f)
			rec(i+1, freshUsed)
		}
		// One genuinely new fresh null (introducing more than one new label
		// at position i is symmetric to this choice).
		assign[i] = instance.Null(nextNull + freshUsed)
		rec(i+1, freshUsed+1)
	}
	rec(0, 0)
}

// Incomparable returns the subsets of solutions that are pairwise
// incomparable: no one is a homomorphic image of another (Example 5.3's
// notion). It reports the solutions that are not a homomorphic image of any
// other solution in the list, along with the full pairwise matrix.
//
// Rows of the matrix are computed concurrently (up to GOMAXPROCS workers);
// the result is deterministic since the entries are independent.
func Incomparable(sols []*instance.Instance) (pairwise [][]bool, incomparable []int) {
	n := len(sols)
	pairwise = make([][]bool, n)
	for i := range pairwise {
		pairwise[i] = make([]bool, n)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers > 1 {
		rows := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			metrics.GoroutinesSpawned.Inc()
			go func() {
				defer wg.Done()
				for i := range rows {
					incomparableRow(sols, pairwise, i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			rows <- i
		}
		close(rows)
		wg.Wait()
	} else {
		for i := 0; i < n; i++ {
			incomparableRow(sols, pairwise, i)
		}
	}
	for j := 0; j < n; j++ {
		image := false
		for i := 0; i < n; i++ {
			if i != j && pairwise[i][j] {
				image = true
				break
			}
		}
		if !image {
			incomparable = append(incomparable, j)
		}
	}
	return pairwise, incomparable
}

// incomparableRow fills row i: pairwise[i][j] reports that sols[j] is a
// homomorphic image of sols[i]. Each call owns its row, so rows can be
// computed concurrently without synchronization.
func incomparableRow(sols []*instance.Instance, pairwise [][]bool, i int) {
	for j := range pairwise[i] {
		if i == j {
			continue
		}
		_, onto := hom.FindOnto(sols[i], sols[j], 0)
		pairwise[i][j] = onto
	}
}

// SortBySize orders instances by atom count then string, for stable output.
func SortBySize(sols []*instance.Instance) {
	sort.Slice(sols, func(i, j int) bool {
		if sols[i].Len() != sols[j].Len() {
			return sols[i].Len() < sols[j].Len()
		}
		return sols[i].String() < sols[j].String()
	})
}
